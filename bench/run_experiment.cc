/**
 * @file
 * Standalone config-file front end: the whole sweep — workloads,
 * schemes, SimConfig variants, trace mode, report settings, artifact
 * cache, execution backend — comes from one JSON experiment config,
 * so experiments are versionable artifacts instead of bench-specific
 * conventions:
 *
 *   run_experiment configs/ci_smoke.json
 *   run_experiment configs/ci_smoke.json --trace-mode=stream \
 *       --format=json --out=smoke.json
 *   run_experiment configs/ci_smoke_stream.json \
 *       --execution subprocess --shards 4
 *
 * The config may be given positionally or via --config=FILE; the
 * other shared CLI flags (--format/--out/--threads/--workloads/
 * --suite/--trace-mode/--trace-compression/--execution/--shards/
 * --cache/--cache-dir/--scheduler/--stats-out) override the config
 * file as usual. Unlike the figure benches there
 * is no built-in matrix: no config is an error.
 *
 * The binary doubles as the shard worker of the subprocess executor
 * (it is its own default worker binary):
 *
 *   run_experiment --worker --manifest=shard-0.sm --out=shard-0.crs
 *
 * Worker mode reads a CASSSM1 shard manifest, loads the named
 * artifact snapshots, simulates its cells in-process and writes a
 * CASSCR1 cell-result set; errors go to stderr and a nonzero exit
 * (the coordinator retries the shard in-process).
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "bench/bench_util.hh"
#include "core/cell_executor.hh"
#include "core/experiment.hh"

using namespace cassandra;

namespace {

/**
 * This binary's own path, suitable for execv (which does not search
 * PATH the way the shell that launched us did): /proc/self/exe where
 * available, argv[0] otherwise.
 */
std::string
selfBinaryPath(const char *argv0)
{
#if !defined(_WIN32)
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
#endif
    return argv0;
}

/** The `--worker` entry: a shard of someone else's experiment. */
int
workerMain(int argc, char **argv)
{
    std::string manifest, out;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--worker")
            continue;
        if (arg.rfind("--manifest=", 0) == 0)
            manifest = arg.substr(std::strlen("--manifest="));
        else if (arg.rfind("--out=", 0) == 0)
            out = arg.substr(std::strlen("--out="));
        else {
            std::fprintf(stderr, "worker mode: unknown option %s\n",
                         arg.c_str());
            return 2;
        }
    }
    if (manifest.empty() || out.empty()) {
        std::fprintf(stderr,
                     "usage: %s --worker --manifest=FILE --out=FILE\n",
                     argv[0]);
        return 2;
    }
    return core::runShardWorker(
        manifest, out, crypto::WorkloadRegistry::global().resolver(),
        std::cerr);
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--worker") == 0)
            return workerMain(argc, argv);
    }

    // Accept the config file as the first positional argument by
    // rewriting it to the shared CLI's --config=FILE before parsing.
    // Space-form flag values ("--execution subprocess") must not be
    // mistaken for that positional.
    auto takes_space_value = [](const char *arg) {
        return std::strcmp(arg, "--config") == 0 ||
            std::strcmp(arg, "--execution") == 0 ||
            std::strcmp(arg, "--shards") == 0 ||
            std::strcmp(arg, "--cache") == 0 ||
            std::strcmp(arg, "--cache-dir") == 0 ||
            std::strcmp(arg, "--scheduler") == 0 ||
            std::strcmp(arg, "--stats-out") == 0;
    };
    std::vector<std::string> args;
    args.reserve(static_cast<size_t>(argc));
    bool have_positional = false;
    for (int i = 1; i < argc; i++) {
        if (takes_space_value(argv[i])) {
            args.push_back(argv[i]);
            if (i + 1 < argc)
                args.push_back(argv[++i]);
        } else if (argv[i][0] != '-' && !have_positional) {
            args.push_back(std::string("--config=") + argv[i]);
            have_positional = true;
        } else {
            args.push_back(argv[i]);
        }
    }
    std::vector<char *> cargv;
    cargv.push_back(argv[0]);
    for (std::string &arg : args)
        cargv.push_back(arg.data());

    auto opts = bench::parseCli(static_cast<int>(cargv.size()),
                                cargv.data());
    if (opts.configPath.empty()) {
        std::fprintf(stderr,
                     "usage: %s CONFIG.json [options]\n"
                     "       (see --help for the shared options)\n",
                     argv[0]);
        return 2;
    }

    core::ExperimentMatrix matrix;
    bench::matrixFromConfig(opts, matrix); // exits on malformed configs

    // This binary implements the --worker contract, so subprocess
    // execution shards onto itself unless the config names another
    // worker binary.
    if (opts.workerBinary.empty())
        opts.workerBinary = selfBinaryPath(argv[0]);

    auto exp = bench::runMatrix(matrix, opts);
    if (!bench::emitReport(exp, opts))
        core::TableReporter().write(exp, std::cout);
    return 0;
}
