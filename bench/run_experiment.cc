/**
 * @file
 * Standalone config-file front end: the whole sweep — workloads,
 * schemes, SimConfig variants, trace mode, report settings, artifact
 * cache, execution backend — comes from one JSON experiment config,
 * so experiments are versionable artifacts instead of bench-specific
 * conventions:
 *
 *   run_experiment configs/ci_smoke.json
 *   run_experiment configs/ci_smoke.json --trace-mode=stream \
 *       --format=json --out=smoke.json
 *   run_experiment configs/ci_smoke_stream.json \
 *       --execution subprocess --shards 4
 *
 * The config may be given positionally or via --config=FILE; the
 * other shared CLI flags (--format/--out/--threads/--workloads/
 * --suite/--trace-mode/--trace-compression/--execution/--shards/
 * --cache/--cache-dir/--scheduler/--stats-out) override the config
 * file as usual. Unlike the figure benches there
 * is no built-in matrix: no config is an error.
 *
 * The binary doubles as the shard worker of the subprocess executor
 * (it is its own default worker binary):
 *
 *   run_experiment --worker --manifest=shard-0.sm --out=shard-0.crs
 *
 * Worker mode reads a CASSSM1 shard manifest, loads the named
 * artifact snapshots, simulates its cells in-process and writes a
 * CASSCR1 cell-result set; errors go to stderr and a nonzero exit
 * (the coordinator retries the shard in-process).
 *
 * It is also the remote-execution agent and the experiment service:
 *
 *   run_experiment --agent --inbox=/shared/box        # poll for tasks
 *   run_experiment --serve --spool=/shared/spool \
 *       --cache=on --cache-dir=rc                     # coordinator
 *   run_experiment --submit sweep.json --spool=/shared/spool --wait
 *
 * Agent mode polls an ArtifactStore drop box for shard manifests,
 * fetches the content-addressed snapshots they reference, simulates
 * and publishes CASSCR1 results back. Serve mode claims queued job
 * configs from a spool directory, batches them through one shared
 * runner (cross-job cell dedup, shared analysis/result caches) and
 * writes per-job reports byte-identical to direct runs. Submit mode
 * queues a config and (with --wait) blocks until its status appears.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "bench/bench_util.hh"
#include "core/cell_executor.hh"
#include "core/experiment.hh"
#include "core/experiment_service.hh"
#include "core/remote_executor.hh"

using namespace cassandra;

namespace {

/**
 * This binary's own path, suitable for execv (which does not search
 * PATH the way the shell that launched us did): /proc/self/exe where
 * available, argv[0] otherwise.
 */
std::string
selfBinaryPath(const char *argv0)
{
#if !defined(_WIN32)
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
#endif
    return argv0;
}

/** The `--worker` entry: a shard of someone else's experiment. */
int
workerMain(int argc, char **argv)
{
    std::string manifest, out;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--worker")
            continue;
        if (arg.rfind("--manifest=", 0) == 0)
            manifest = arg.substr(std::strlen("--manifest="));
        else if (arg.rfind("--out=", 0) == 0)
            out = arg.substr(std::strlen("--out="));
        else {
            std::fprintf(stderr, "worker mode: unknown option %s\n",
                         arg.c_str());
            return 2;
        }
    }
    if (manifest.empty() || out.empty()) {
        std::fprintf(stderr,
                     "usage: %s --worker --manifest=FILE --out=FILE\n",
                     argv[0]);
        return 2;
    }
    return core::runShardWorker(
        manifest, out, crypto::WorkloadRegistry::global().resolver(),
        std::cerr);
}

/** Parse a non-negative integer flag value or die. */
uint64_t
uintValue(const char *flag, const std::string &text)
{
    char *end = nullptr;
    const unsigned long long n = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || *end != '\0' || text[0] == '-') {
        std::fprintf(stderr, "invalid %s=%s\n", flag, text.c_str());
        std::exit(2);
    }
    return n;
}

/** The `--agent` entry: poll a drop box for shard tasks, forever (or
 * until the stop flag / idle exit). */
int
agentMain(int argc, char **argv)
{
    core::AgentOptions aopts;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--agent")
            continue;
        if (arg.rfind("--inbox=", 0) == 0)
            aopts.inboxDir = arg.substr(std::strlen("--inbox="));
        else if (arg.rfind("--poll-ms=", 0) == 0)
            aopts.pollMs = uintValue(
                "--poll-ms", arg.substr(std::strlen("--poll-ms=")));
        else if (arg.rfind("--idle-exit-ms=", 0) == 0)
            aopts.idleExitMs = uintValue(
                "--idle-exit-ms",
                arg.substr(std::strlen("--idle-exit-ms=")));
        else if (arg.rfind("--threads=", 0) == 0)
            aopts.threads = static_cast<unsigned>(uintValue(
                "--threads", arg.substr(std::strlen("--threads="))));
        else {
            std::fprintf(stderr, "agent mode: unknown option %s\n",
                         arg.c_str());
            return 2;
        }
    }
    if (aopts.inboxDir.empty()) {
        std::fprintf(stderr,
                     "usage: %s --agent --inbox=DIR [--poll-ms=N]\n"
                     "       [--idle-exit-ms=N] [--threads=N]\n",
                     argv[0]);
        return 2;
    }
    return core::runShardAgent(
        aopts, crypto::WorkloadRegistry::global().resolver(), std::cerr);
}

/** The `--submit` entry: queue a config into a service spool. */
int
submitMain(int argc, char **argv)
{
    std::string config, spool;
    bool wait = false;
    uint64_t timeout_ms = 600000;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--submit")
            continue;
        if (arg.rfind("--spool=", 0) == 0)
            spool = arg.substr(std::strlen("--spool="));
        else if (arg == "--spool" && i + 1 < argc)
            spool = argv[++i];
        else if (arg == "--wait")
            wait = true;
        else if (arg.rfind("--timeout-ms=", 0) == 0)
            timeout_ms = uintValue(
                "--timeout-ms",
                arg.substr(std::strlen("--timeout-ms=")));
        else if (arg.rfind("--config=", 0) == 0)
            config = arg.substr(std::strlen("--config="));
        else if (arg[0] != '-' && config.empty())
            config = arg;
        else {
            std::fprintf(stderr, "submit mode: unknown option %s\n",
                         arg.c_str());
            return 2;
        }
    }
    if (config.empty() || spool.empty()) {
        std::fprintf(stderr,
                     "usage: %s --submit CONFIG.json --spool=DIR "
                     "[--wait] [--timeout-ms=N]\n",
                     argv[0]);
        return 2;
    }
    try {
        const std::string job =
            core::ExperimentService::submit(spool, config);
        std::printf("%s\n", job.c_str());
        if (!wait)
            return 0;
        const std::string status =
            core::ExperimentService::waitForJob(spool, job, timeout_ms);
        if (status.empty()) {
            std::fprintf(stderr, "job %s: no status after %llu ms\n",
                         job.c_str(),
                         static_cast<unsigned long long>(timeout_ms));
            return 1;
        }
        std::fputs(status.c_str(), stderr);
        return status.rfind("ok", 0) == 0 ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "submit: %s\n", e.what());
        return 1;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--worker") == 0)
            return workerMain(argc, argv);
        if (std::strcmp(argv[i], "--agent") == 0)
            return agentMain(argc, argv);
        if (std::strcmp(argv[i], "--submit") == 0)
            return submitMain(argc, argv);
    }

    // Accept the config file as the first positional argument by
    // rewriting it to the shared CLI's --config=FILE before parsing.
    // Space-form flag values ("--execution subprocess") must not be
    // mistaken for that positional.
    auto takes_space_value = [](const char *arg) {
        return std::strcmp(arg, "--config") == 0 ||
            std::strcmp(arg, "--execution") == 0 ||
            std::strcmp(arg, "--shards") == 0 ||
            std::strcmp(arg, "--cache") == 0 ||
            std::strcmp(arg, "--cache-dir") == 0 ||
            std::strcmp(arg, "--cache-gc-mb") == 0 ||
            std::strcmp(arg, "--scheduler") == 0 ||
            std::strcmp(arg, "--dedup") == 0 ||
            std::strcmp(arg, "--stats-out") == 0 ||
            std::strcmp(arg, "--dropbox") == 0 ||
            std::strcmp(arg, "--agents") == 0 ||
            std::strcmp(arg, "--task-timeout-ms") == 0 ||
            std::strcmp(arg, "--spool") == 0;
    };
    std::vector<std::string> args;
    args.reserve(static_cast<size_t>(argc));
    bool have_positional = false;
    for (int i = 1; i < argc; i++) {
        if (takes_space_value(argv[i])) {
            args.push_back(argv[i]);
            if (i + 1 < argc)
                args.push_back(argv[++i]);
        } else if (argv[i][0] != '-' && !have_positional) {
            args.push_back(std::string("--config=") + argv[i]);
            have_positional = true;
        } else {
            args.push_back(argv[i]);
        }
    }

    // `--serve` runs the spool coordinator; its own flags (--spool,
    // --poll-ms, --idle-exit-ms, --max-jobs) are peeled off here and
    // the rest go through the shared CLI as runner settings.
    bool serve = false;
    std::string spool;
    uint64_t serve_poll_ms = 100, serve_idle_exit_ms = 0;
    unsigned serve_max_jobs = 0;
    {
        std::vector<std::string> rest;
        for (size_t i = 0; i < args.size(); i++) {
            const std::string &arg = args[i];
            if (arg == "--serve")
                serve = true;
            else if (arg.rfind("--spool=", 0) == 0)
                spool = arg.substr(std::strlen("--spool="));
            else if (arg == "--spool" && i + 1 < args.size())
                spool = args[++i];
            else if (arg.rfind("--poll-ms=", 0) == 0)
                serve_poll_ms = uintValue(
                    "--poll-ms", arg.substr(std::strlen("--poll-ms=")));
            else if (arg.rfind("--idle-exit-ms=", 0) == 0)
                serve_idle_exit_ms = uintValue(
                    "--idle-exit-ms",
                    arg.substr(std::strlen("--idle-exit-ms=")));
            else if (arg.rfind("--max-jobs=", 0) == 0)
                serve_max_jobs = static_cast<unsigned>(uintValue(
                    "--max-jobs",
                    arg.substr(std::strlen("--max-jobs="))));
            else
                rest.push_back(arg);
        }
        if (serve)
            args = std::move(rest);
    }

    std::vector<char *> cargv;
    cargv.push_back(argv[0]);
    for (std::string &arg : args)
        cargv.push_back(arg.data());

    auto opts = bench::parseCli(static_cast<int>(cargv.size()),
                                cargv.data());

    if (serve) {
        if (spool.empty()) {
            std::fprintf(stderr,
                         "usage: %s --serve --spool=DIR [--poll-ms=N]\n"
                         "       [--idle-exit-ms=N] [--max-jobs=N]\n"
                         "       [shared runner flags: --threads, "
                         "--execution, --cache, ...]\n",
                         argv[0]);
            return 2;
        }
        if (opts.workerBinary.empty())
            opts.workerBinary = selfBinaryPath(argv[0]);
        return bench::serveSpool(spool, opts, serve_poll_ms,
                                 serve_idle_exit_ms, serve_max_jobs);
    }

    if (opts.configPath.empty()) {
        std::fprintf(stderr,
                     "usage: %s CONFIG.json [options]\n"
                     "       (see --help for the shared options)\n",
                     argv[0]);
        return 2;
    }

    core::ExperimentMatrix matrix;
    bench::matrixFromConfig(opts, matrix); // exits on malformed configs

    // This binary implements the --worker contract, so subprocess
    // execution shards onto itself unless the config names another
    // worker binary.
    if (opts.workerBinary.empty())
        opts.workerBinary = selfBinaryPath(argv[0]);

    auto exp = bench::runMatrix(matrix, opts);
    if (!bench::emitReport(exp, opts))
        core::TableReporter().write(exp, std::cout);
    return 0;
}
