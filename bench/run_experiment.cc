/**
 * @file
 * Standalone config-file front end: the whole sweep — workloads,
 * schemes, SimConfig variants, trace mode, report settings, artifact
 * cache — comes from one JSON experiment config, so experiments are
 * versionable artifacts instead of bench-specific conventions:
 *
 *   run_experiment configs/ci_smoke.json
 *   run_experiment configs/ci_smoke.json --trace-mode=stream \
 *       --format=json --out=smoke.json
 *
 * The config may be given positionally or via --config=FILE; the
 * other shared CLI flags (--format/--out/--threads/--workloads/
 * --suite/--trace-mode/--trace-compression) override the config file
 * as usual. Unlike the figure benches there is no built-in matrix: no
 * config is an error.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "core/experiment.hh"

using namespace cassandra;

int
main(int argc, char **argv)
{
    // Accept the config file as the first positional argument by
    // rewriting it to the shared CLI's --config=FILE before parsing.
    std::vector<std::string> args;
    args.reserve(static_cast<size_t>(argc));
    bool have_positional = false;
    for (int i = 1; i < argc; i++) {
        if (argv[i][0] != '-' && !have_positional &&
            std::strncmp(argv[i], "--", 2) != 0) {
            args.push_back(std::string("--config=") + argv[i]);
            have_positional = true;
        } else {
            args.push_back(argv[i]);
        }
    }
    std::vector<char *> cargv;
    cargv.push_back(argv[0]);
    for (std::string &arg : args)
        cargv.push_back(arg.data());

    auto opts = bench::parseCli(static_cast<int>(cargv.size()),
                                cargv.data());
    if (opts.configPath.empty()) {
        std::fprintf(stderr,
                     "usage: %s CONFIG.json [options]\n"
                     "       (see --help for the shared options)\n",
                     argv[0]);
        return 2;
    }

    core::ExperimentMatrix matrix;
    bench::matrixFromConfig(opts, matrix); // exits on malformed configs

    auto exp = bench::runMatrix(matrix, opts);
    if (!bench::emitReport(exp, opts))
        core::TableReporter().write(exp, std::cout);
    return 0;
}
