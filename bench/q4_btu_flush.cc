/**
 * @file
 * Reproduces §8 Q4: the upper-bound cost of flushing the BTU on
 * context switches. The paper flushes at 250 Hz (12M cycles at 3 GHz)
 * and sees the average improvement drop from 1.85% to 1.80%; our runs
 * are shorter, so we additionally sweep much more aggressive periods.
 * The flush period is swept as SimConfig variants of one matrix.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "crypto/workload_registry.hh"

using namespace cassandra;
using uarch::Scheme;

int
main(int argc, char **argv)
{
    auto opts = bench::parseCli(argc, argv);

    // A --config sweep replaces the built-in flush matrix; its cells
    // go through the generic reporters (the table below needs the
    // built-in "flush=..." config names).
    core::ExperimentMatrix config_matrix;
    if (bench::matrixFromConfig(opts, config_matrix)) {
        auto exp = bench::runMatrix(config_matrix, opts);
        if (!bench::emitReport(exp, opts))
            core::makeReporter("table")->write(exp, std::cout);
        return 0;
    }

    const uint64_t periods[] = {0, 12'000'000, 1'000'000, 100'000,
                                10'000};
    core::SimConfig base_cfg;
    core::ExperimentMatrix matrix;
    matrix.workloads =
        bench::selectWorkloads(bench::cryptoWorkloadNames(), opts);
    matrix.schemes = {Scheme::Cassandra};
    for (uint64_t p : periods) {
        std::string name = p == 0 ? "never" : std::to_string(p);
        matrix.configs.push_back(
            base_cfg.withFlushPeriod(p).named("flush=" + name));
    }
    // The baseline has no BTU to flush: run it once per workload, in
    // the same batch so every workload is analyzed exactly once.
    core::ExperimentMatrix base_matrix;
    base_matrix.workloads = matrix.workloads;
    base_matrix.schemes = {Scheme::UnsafeBaseline};
    base_matrix.configs = {base_cfg.named("flush=never")};

    auto exp = bench::runMatrices({base_matrix, matrix}, opts);
    if (bench::emitReport(exp, opts))
        return 0;

    std::printf("Q4: Cassandra speedup vs baseline under periodic BTU "
                "flushes\n\n");
    std::printf("%-14s", "flush period");
    for (uint64_t p : periods) {
        if (p == 0)
            std::printf("%12s", "never");
        else
            std::printf("%12llu", static_cast<unsigned long long>(p));
    }
    std::printf("\n");
    bench::printRule(14 + 12 * 5);

    std::vector<std::vector<double>> ratios(5);
    for (const std::string &name : matrix.workloads) {
        const auto *base =
            exp.find(name, Scheme::UnsafeBaseline, "flush=never");
        std::printf("%-14s", name.substr(0, 13).c_str());
        for (size_t i = 0; i < 5; i++) {
            std::string cfg = periods[i] == 0
                ? "flush=never"
                : "flush=" + std::to_string(periods[i]);
            const auto *cass = exp.find(name, Scheme::Cassandra, cfg);
            double r = static_cast<double>(cass->result.stats.cycles) /
                base->result.stats.cycles;
            ratios[i].push_back(r);
            std::printf("%12.4f", r);
        }
        std::printf("\n");
    }
    bench::printRule(14 + 12 * 5);
    std::printf("%-14s", "geomean");
    for (size_t i = 0; i < 5; i++)
        std::printf("%12.4f", bench::geomean(ratios[i]));
    std::printf("\n\nPaper reference: flushing at 250 Hz shaves the "
                "1.85%% improvement to 1.80%%; only absurdly\n"
                "aggressive flush periods should visibly hurt.\n");
    return 0;
}
