/**
 * @file
 * Reproduces §8 Q4: the upper-bound cost of flushing the BTU on
 * context switches. The paper flushes at 250 Hz (12M cycles at 3 GHz)
 * and sees the average improvement drop from 1.85% to 1.80%; our runs
 * are shorter, so we additionally sweep much more aggressive periods.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/system.hh"
#include "crypto/workloads.hh"

using namespace cassandra;
using uarch::Scheme;

int
main()
{
    const uint64_t periods[] = {0, 12'000'000, 1'000'000, 100'000,
                                10'000};
    std::printf("Q4: Cassandra speedup vs baseline under periodic BTU "
                "flushes\n\n");
    std::printf("%-14s", "flush period");
    for (uint64_t p : periods) {
        if (p == 0)
            std::printf("%12s", "never");
        else
            std::printf("%12llu", static_cast<unsigned long long>(p));
    }
    std::printf("\n");
    bench::printRule(14 + 12 * 5);

    std::vector<std::vector<double>> ratios(5);
    for (auto &w : crypto::allCryptoWorkloads()) {
        core::System sys(std::move(w));
        auto base = sys.run(Scheme::UnsafeBaseline);
        std::printf("%-14s", sys.workload().name.substr(0, 13).c_str());
        for (size_t i = 0; i < 5; i++) {
            uarch::CoreParams params;
            params.btuFlushPeriod = periods[i];
            auto cass = sys.run(Scheme::Cassandra, params);
            double r = static_cast<double>(cass.stats.cycles) /
                base.stats.cycles;
            ratios[i].push_back(r);
            std::printf("%12.4f", r);
        }
        std::printf("\n");
    }
    bench::printRule(14 + 12 * 5);
    std::printf("%-14s", "geomean");
    for (size_t i = 0; i < 5; i++)
        std::printf("%12.4f", bench::geomean(ratios[i]));
    std::printf("\n\nPaper reference: flushing at 250 Hz shaves the "
                "1.85%% improvement to 1.80%%; only absurdly\n"
                "aggressive flush periods should visibly hurt.\n");
    return 0;
}
