/**
 * @file
 * Microbenchmarks (google-benchmark) for trace replay throughput: the
 * scalar next() path versus the batched SoA nextBatch() paths, over
 * both source kinds (in-memory TraceSpanSource and on-disk
 * TraceCursor). Items processed = timing ops replayed, so the
 * items-per-second column reads directly as replay ops/sec; the
 * batch/scalar ratio is the tentpole speedup the SoA replay layer
 * claims (docs/ARCHITECTURE.md, "Performance").
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/serialize.hh"
#include "core/trace_stream.hh"
#include "crypto/workload_registry.hh"
#include "uarch/pipeline.hh"

using namespace cassandra;

namespace {

using core::TraceCompression;
using core::TraceCursor;
using core::TraceStreamWriter;
using uarch::OpBatch;
using uarch::TimingOp;
using uarch::TimingOpSource;
using uarch::TimingTrace;

/** The evaluation trace every benchmark replays (recorded once). */
const TimingTrace &
trace()
{
    static const TimingTrace t = uarch::recordTrace(
        crypto::WorkloadRegistry::global().make("ChaCha20_ct"), 2);
    return t;
}

const core::Workload &
workload()
{
    static const core::Workload w =
        crypto::WorkloadRegistry::global().make("ChaCha20_ct");
    return w;
}

/** Whole-trace SoA mirror shared by the zero-copy span benchmark. */
const uarch::OpBatchStorage &
mirror()
{
    static const uarch::OpBatchStorage soa = [] {
        uarch::OpBatchStorage s;
        uarch::buildOpBatchStorage(trace(), s);
        return s;
    }();
    return soa;
}

/** Stream file of the same trace (CASSTF1 raw / CASSTF2 delta). */
const std::string &
streamFile(TraceCompression compression)
{
    static std::string paths[2];
    std::string &path =
        paths[compression == TraceCompression::Delta ? 1 : 0];
    if (path.empty()) {
        path = std::string("/tmp/micro_replay-") +
            (compression == TraceCompression::Delta ? "tf2" : "tf1") +
            ".trace";
        TraceStreamWriter writer(
            path, core::programFingerprint(workload().program),
            core::traceStreamDefaultFrameOps, compression);
        for (const TimingOp &op : trace())
            writer.append(op);
        writer.finish();
    }
    return path;
}

/**
 * Hides a source's native nextBatch() behind the base-class adapter
 * (batching through next() one op at a time) — the scalar reference
 * the native batch paths are measured against.
 */
class ScalarOnly : public TimingOpSource
{
  public:
    explicit ScalarOnly(TimingOpSource &inner) : inner_(inner) {}

    const TimingOp *
    next() override
    {
        return inner_.next();
    }

  private:
    TimingOpSource &inner_;
};

/** Drain a source scalar-wise; returns a checksum the optimizer must
 * keep. */
uint64_t
drainScalar(TimingOpSource &src)
{
    uint64_t sum = 0;
    while (const TimingOp *op = src.next())
        sum += op->pc + op->memAddr + op->nextPc;
    return sum;
}

/** Drain a source batch-wise through the SoA columns. */
uint64_t
drainBatched(TimingOpSource &src)
{
    uint64_t sum = 0;
    OpBatch batch;
    while (size_t n = src.nextBatch(batch, uarch::timingOpBatchOps)) {
        for (size_t i = 0; i < n; i++)
            sum += batch.pc[i] + batch.memAddr[i] + batch.nextPc[i];
    }
    return sum;
}

void
BM_ReplaySpanScalar(benchmark::State &state)
{
    const TimingTrace &t = trace();
    for (auto _ : state) {
        uarch::TraceSpanSource src(t);
        benchmark::DoNotOptimize(drainScalar(src));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(t.size()));
}
BENCHMARK(BM_ReplaySpanScalar);

void
BM_ReplaySpanScalarAdapter(benchmark::State &state)
{
    // The base-class nextBatch adapter: batch API, scalar decode.
    const TimingTrace &t = trace();
    for (auto _ : state) {
        uarch::TraceSpanSource inner(t);
        ScalarOnly src(inner);
        benchmark::DoNotOptimize(drainBatched(src));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(t.size()));
}
BENCHMARK(BM_ReplaySpanScalarAdapter);

void
BM_ReplaySpanBatchTranspose(benchmark::State &state)
{
    // Native batch path without a shared mirror: one AoS -> SoA
    // transpose per 4K-op batch.
    const TimingTrace &t = trace();
    for (auto _ : state) {
        uarch::TraceSpanSource src(t);
        benchmark::DoNotOptimize(drainBatched(src));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(t.size()));
}
BENCHMARK(BM_ReplaySpanBatchTranspose);

void
BM_ReplaySpanBatchShared(benchmark::State &state)
{
    // The hot production path: zero-copy views into the whole-trace
    // mirror the analysis built once (AnalyzedWorkload::openOpSource).
    const TimingTrace &t = trace();
    const uarch::OpBatchStorage &soa = mirror();
    for (auto _ : state) {
        uarch::TraceSpanSource src(t, soa);
        benchmark::DoNotOptimize(drainBatched(src));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(t.size()));
}
BENCHMARK(BM_ReplaySpanBatchShared);

void
BM_ReplayCursorScalar(benchmark::State &state)
{
    const std::string &path = streamFile(TraceCompression::Delta);
    for (auto _ : state) {
        TraceCursor src(path, workload().program);
        benchmark::DoNotOptimize(drainScalar(src));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(trace().size()));
}
BENCHMARK(BM_ReplayCursorScalar);

void
BM_ReplayCursorBatchRaw(benchmark::State &state)
{
    // CASSTF1: raw 24 B/op frames, batch decode straight into SoA.
    const std::string &path = streamFile(TraceCompression::None);
    for (auto _ : state) {
        TraceCursor src(path, workload().program);
        benchmark::DoNotOptimize(drainBatched(src));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(trace().size()));
}
BENCHMARK(BM_ReplayCursorBatchRaw);

void
BM_ReplayCursorBatchDelta(benchmark::State &state)
{
    // CASSTF2: delta/zig-zag varint frames (decodeTraceFrameSoA).
    const std::string &path = streamFile(TraceCompression::Delta);
    for (auto _ : state) {
        TraceCursor src(path, workload().program);
        benchmark::DoNotOptimize(drainBatched(src));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(trace().size()));
}
BENCHMARK(BM_ReplayCursorBatchDelta);

} // namespace

BENCHMARK_MAIN();
