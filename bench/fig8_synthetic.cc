/**
 * @file
 * Reproduces Figure 8: execution time overhead of ProSpeCT and
 * Cassandra+ProSpeCT on the SpectreGuard-style synthetic mixes,
 * normalized to the Unsafe Baseline of each benchmark. The chacha20
 * mixes keep the stack public (HACL*-style); the curve25519 mixes
 * annotate the stack and field-element buffers as secret.
 *
 * Mixes are selected through the registry's parameterized names
 * ("synthetic/<kernel>/<sandbox-pct>"), so e.g.
 * --workloads=synthetic/chacha20/60 sweeps points outside the paper's
 * grid.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "crypto/workload_registry.hh"

using namespace cassandra;
using uarch::Scheme;

int
main(int argc, char **argv)
{
    auto opts = bench::parseCli(argc, argv);

    core::ExperimentMatrix matrix;
    if (!bench::matrixFromConfig(opts, matrix)) {
        matrix.workloads = bench::selectWorkloads(
            crypto::WorkloadRegistry::global().names("Synthetic"), opts);
        matrix.schemes = {Scheme::UnsafeBaseline, Scheme::Prospect,
                          Scheme::CassandraProspect};
    }

    auto exp = bench::runMatrix(matrix, opts);
    if (bench::emitReport(exp, opts))
        return 0;

    std::printf("Figure 8: overhead vs the Unsafe Baseline of each mix "
                "(negative = speedup)\n\n");
    std::printf("%-34s %12s %22s\n", "Mix", "ProSpeCT",
                "Cassandra+ProSpeCT");
    bench::printRule(72);
    std::string last_group;
    for (const std::string &name : matrix.workloads) {
        // "synthetic/<kernel>/<pct>"; other registry names (allowed
        // via --workloads) group under their own plain header.
        size_t a = name.find('/');
        size_t b = name.rfind('/');
        std::string group;
        if (a != std::string::npos && b > a) {
            std::string kernel = name.substr(a + 1, b - a - 1);
            group = kernel + (kernel == "chacha20" ? " (public stack)"
                                                   : " (secret stack)");
        } else {
            group = name;
        }
        if (group != last_group) {
            std::printf("-- %s --\n", group.c_str());
            last_group = group;
        }
        const auto *base = exp.find(name, Scheme::UnsafeBaseline);
        const auto *pros = exp.find(name, Scheme::Prospect);
        const auto *combo = exp.find(name, Scheme::CassandraProspect);
        if (!base || !pros || !combo) {
            std::printf("%-34s   (skipped: figure needs all three "
                        "schemes)\n",
                        name.c_str());
            continue;
        }
        double b_cycles = static_cast<double>(base->result.stats.cycles);
        std::printf("%-34s %11.2f%% %21.2f%%\n", name.c_str(),
                    (pros->result.stats.cycles / b_cycles - 1.0) * 100.0,
                    (combo->result.stats.cycles / b_cycles - 1.0) *
                        100.0);
    }
    std::printf("\nPaper reference: chacha20 0.0..0.8%% (ProSpeCT) vs "
                "-0.2..-2.8%% (Cassandra+ProSpeCT);\n"
                "curve25519 2.5..15.0%% vs -0.6..-6.7%% — ProSpeCT "
                "overhead grows with the crypto fraction when\n"
                "the stack is secret, while Cassandra+ProSpeCT "
                "improves with it.\n");
    return 0;
}
