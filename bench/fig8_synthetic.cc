/**
 * @file
 * Reproduces Figure 8: execution time overhead of ProSpeCT and
 * Cassandra+ProSpeCT on the SpectreGuard-style synthetic mixes,
 * normalized to the Unsafe Baseline of each benchmark. The chacha20
 * mixes keep the stack public (HACL*-style); the curve25519 mixes
 * annotate the stack and field-element buffers as secret.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/system.hh"
#include "crypto/workloads.hh"

using namespace cassandra;
using uarch::Scheme;

int
main()
{
    std::printf("Figure 8: overhead vs the Unsafe Baseline of each mix "
                "(negative = speedup)\n\n");
    std::printf("%-34s %12s %22s\n", "Mix", "ProSpeCT",
                "Cassandra+ProSpeCT");
    bench::printRule(72);
    for (const char *kernel : {"chacha20", "curve25519"}) {
        std::printf("-- %s (%s stack) --\n", kernel,
                    std::string(kernel) == "chacha20" ? "public"
                                                      : "secret");
        for (int pct : {90, 75, 50, 25, 0}) {
            auto w = crypto::syntheticMixWorkload(kernel, pct);
            core::System sys(std::move(w));
            auto base = sys.run(Scheme::UnsafeBaseline);
            auto pros = sys.run(Scheme::Prospect);
            auto combo = sys.run(Scheme::CassandraProspect);
            double b = static_cast<double>(base.stats.cycles);
            std::printf("%-34s %11.2f%% %21.2f%%\n",
                        sys.workload().name.c_str(),
                        (pros.stats.cycles / b - 1.0) * 100.0,
                        (combo.stats.cycles / b - 1.0) * 100.0);
        }
    }
    std::printf("\nPaper reference: chacha20 0.0..0.8%% (ProSpeCT) vs "
                "-0.2..-2.8%% (Cassandra+ProSpeCT);\n"
                "curve25519 2.5..15.0%% vs -0.6..-6.7%% — ProSpeCT "
                "overhead grows with the crypto fraction when\n"
                "the stack is secret, while Cassandra+ProSpeCT "
                "improves with it.\n");
    return 0;
}
