/**
 * @file
 * Ablation: BTU geometry and fill latency. The paper fixes 16 entries
 * of 16 elements (1.74 KiB); this sweep shows how entry count (working
 * set coverage) and trace-fill latency move the Cassandra/baseline
 * ratio on branch-rich workloads, justifying the design point.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/system.hh"
#include "crypto/workloads.hh"
#include "uarch/pipeline.hh"

using namespace cassandra;
using uarch::Scheme;

namespace {

double
ratioWith(core::System &sys, size_t ways, unsigned fill_latency,
          uint64_t base_cycles)
{
    const auto &image = sys.traces().image;
    uarch::CoreParams params;
    params.btuFillLatency = fill_latency;
    uarch::OooCore core(params, Scheme::Cassandra,
                        sys.workload().program, &image);
    // Rebuild the BTU with the requested geometry by running through a
    // custom unit: OooCore owns its BTU sized by BtuParams defaults,
    // so geometry is swept via the fill-latency knob and a dedicated
    // BTU stress below.
    (void)ways;
    auto stats = core.run(sys.timingTrace());
    return static_cast<double>(stats.cycles) / base_cycles;
}

} // namespace

int
main()
{
    std::printf("Ablation A: BTU trace-fill latency (Cassandra cycles "
                "normalized to Unsafe Baseline)\n\n");
    std::printf("%-18s %8s %8s %8s %8s\n", "Workload", "fill=5",
                "fill=14", "fill=40", "fill=200");
    bench::printRule(56);
    for (auto maker :
         {crypto::desCtWorkload, crypto::sha256BearsslWorkload,
          crypto::ecC25519Workload, crypto::chacha20CtWorkload}) {
        core::System sys(maker());
        auto base = sys.run(Scheme::UnsafeBaseline);
        std::printf("%-18s", sys.workload().name.c_str());
        for (unsigned lat : {5u, 14u, 40u, 200u}) {
            std::printf(" %8.4f",
                        ratioWith(sys, 16, lat, base.stats.cycles));
        }
        std::printf("\n");
    }

    std::printf("\nAblation B: BTU entry count (functional replay of "
                "the EC ladder's branch working set)\n\n");
    std::printf("%-10s %12s %12s %12s\n", "entries", "hits", "misses",
                "evictions");
    bench::printRule(50);
    {
        core::System sys(crypto::ecC25519Workload());
        const auto &image = sys.traces().image;
        for (size_t ways : {4u, 8u, 16u, 32u}) {
            btu::BtuParams bp;
            bp.sets = 1;
            bp.ways = ways;
            btu::Btu unit(image, bp);
            // Replay the branch stream through the BTU.
            sim::Machine m(sys.workload().program);
            sys.workload().setInput(m, 2);
            const auto &prog = sys.workload().program;
            m.branchProbe = [&](uint64_t pc, uint64_t, const ir::Inst &) {
                if (!prog.isCryptoPc(pc))
                    return;
                auto r = unit.fetchLookup(pc);
                if (r.outcome == btu::Btu::Outcome::Hit ||
                    r.outcome == btu::Btu::Outcome::MissFill) {
                    unit.commitBranch(pc);
                }
            };
            m.run(sys.workload().maxDynInsts);
            std::printf("%-10zu %12llu %12llu %12llu\n", ways,
                        static_cast<unsigned long long>(
                            unit.stats().hits),
                        static_cast<unsigned long long>(
                            unit.stats().misses),
                        static_cast<unsigned long long>(
                            unit.stats().evictions));
        }
    }
    std::printf("\nTakeaway: 16 entries cover the hot branch working "
                "set of most kernels (the generic-i31 EC ladder is the "
                "stress case); fill latency only matters through cold "
                "misses, which checkpointed refills keep rare.\n");
    return 0;
}
