/**
 * @file
 * Ablation: BTU geometry and fill latency. The paper fixes 16 entries
 * of 16 elements (1.74 KiB); this sweep shows how entry count (working
 * set coverage) and trace-fill latency move the Cassandra/baseline
 * ratio on branch-rich workloads, justifying the design point.
 *
 * Both sweeps are real SimConfig sweeps through the timing model: the
 * BtuParams of every cell flow from the matrix into the Btu owned by
 * that cell's OooCore — no more fill-latency-only proxies or
 * hand-replayed BTUs.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "crypto/workload_registry.hh"

using namespace cassandra;
using uarch::Scheme;

int
main(int argc, char **argv)
{
    auto opts = bench::parseCli(argc, argv);

    // A --config sweep replaces the built-in ablation matrix; its
    // cells go through the generic reporters (the paper-style tables
    // below only make sense for the built-in config names).
    core::ExperimentMatrix config_matrix;
    if (bench::matrixFromConfig(opts, config_matrix)) {
        auto exp = bench::runMatrix(config_matrix, opts);
        if (!bench::emitReport(exp, opts))
            core::makeReporter("table")->write(exp, std::cout);
        return 0;
    }

    const std::vector<std::string> stress_defaults = {
        "DES_ct", "SHA-256", "EC_c25519_i31", "ChaCha20_ct"};
    const unsigned fills[] = {5u, 14u, 40u, 200u};
    const size_t way_sweep[] = {1, 2, 4, 8, 16, 32};

    core::SimConfig base_cfg;
    core::ExperimentMatrix matrix;
    matrix.workloads = bench::selectWorkloads(stress_defaults, opts);
    matrix.schemes = {Scheme::Cassandra};
    matrix.configs.push_back(base_cfg); // "default": 1x16, fill 14
    for (unsigned lat : fills) {
        if (lat == base_cfg.btu.fillLatency)
            continue;
        matrix.configs.push_back(base_cfg.withBtuFillLatency(lat).named(
            "fill=" + std::to_string(lat)));
    }
    for (size_t ways : way_sweep) {
        if (ways == base_cfg.btu.ways)
            continue;
        matrix.configs.push_back(base_cfg.withBtuGeometry(1, ways).named(
            "ways=" + std::to_string(ways)));
    }
    // The baseline ignores BTU knobs: run it once per workload. Both
    // matrices run as one batch so every workload is analyzed once.
    core::ExperimentMatrix base_matrix;
    base_matrix.workloads = matrix.workloads;
    base_matrix.schemes = {Scheme::UnsafeBaseline};
    base_matrix.configs = {base_cfg};

    auto exp = bench::runMatrices({base_matrix, matrix}, opts);
    if (bench::emitReport(exp, opts))
        return 0;

    // Same predicates as the matrix-building loops above, so the
    // "default" aliasing can never drift from the BtuParams defaults.
    auto fill_config = [&](unsigned lat) -> std::string {
        return lat == base_cfg.btu.fillLatency
            ? "default"
            : "fill=" + std::to_string(lat);
    };
    auto ways_config = [&](size_t ways) -> std::string {
        return ways == base_cfg.btu.ways
            ? "default"
            : "ways=" + std::to_string(ways);
    };

    std::printf("Ablation A: BTU trace-fill latency (Cassandra cycles "
                "normalized to Unsafe Baseline)\n\n");
    std::printf("%-18s", "Workload");
    for (unsigned lat : fills)
        std::printf(" %8s", ("fill=" + std::to_string(lat)).c_str());
    std::printf("\n");
    bench::printRule(54);
    for (const std::string &name : matrix.workloads) {
        const auto *base =
            exp.find(name, Scheme::UnsafeBaseline, "default");
        std::printf("%-18s", name.c_str());
        for (unsigned lat : fills) {
            const auto *cass =
                exp.find(name, Scheme::Cassandra, fill_config(lat));
            std::printf(" %8.4f",
                        static_cast<double>(cass->result.stats.cycles) /
                            base->result.stats.cycles);
        }
        std::printf("\n");
    }

    std::printf("\nAblation B: BTU entry count (timing runs; 1 set x N "
                "ways, fill 14)\n\n");
    std::printf("%-18s %6s %10s %12s %12s %12s %12s\n", "Workload",
                "ways", "vs base", "hits", "misses", "evictions",
                "ckpt-rest");
    bench::printRule(88);
    for (const std::string &name : matrix.workloads) {
        const auto *base =
            exp.find(name, Scheme::UnsafeBaseline, "default");
        for (size_t ways : way_sweep) {
            const auto *cass =
                exp.find(name, Scheme::Cassandra, ways_config(ways));
            const auto &btu = cass->result.btu;
            std::printf(
                "%-18s %6zu %10.4f %12llu %12llu %12llu %12llu\n",
                ways == way_sweep[0] ? name.c_str() : "", ways,
                static_cast<double>(cass->result.stats.cycles) /
                    base->result.stats.cycles,
                static_cast<unsigned long long>(btu.hits),
                static_cast<unsigned long long>(btu.misses),
                static_cast<unsigned long long>(btu.evictions),
                static_cast<unsigned long long>(btu.checkpointRestores));
        }
    }
    std::printf("\nTakeaway: 16 entries cover the hot branch working "
                "set of most kernels (the generic-i31 EC ladder is the "
                "stress case); fewer ways force evictions whose "
                "checkpointed refills charge the fill latency, which "
                "is why the fill sweep only moves cold-miss-heavy "
                "workloads.\n");
    return 0;
}
