/**
 * @file
 * Reproduces §7.5: wall-clock runtime of the upfront trace-generation
 * procedure (Algorithm 2), broken down into the paper's steps:
 * A branch detection, B raw trace collection, C vanilla transform,
 * D DNA encoding, E k-mers compression, plus hint embedding.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/tracegen.hh"
#include "crypto/workloads.hh"

using namespace cassandra;

int
main()
{
    std::printf("Trace generation runtime per workload (seconds)\n\n");
    std::printf("%-22s %5s | %8s %8s %8s %8s %8s %8s\n", "Workload",
                "#br", "A:detect", "B:raw", "C:vanil", "D:dna",
                "E:kmers", "embed");
    bench::printRule(92);
    core::TraceGenTimings total;
    size_t branches = 0;
    for (const auto &w : crypto::allCryptoWorkloads()) {
        auto res = core::generateTraces(w);
        const auto &t = res.timings;
        std::printf("%-22s %5zu | %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
                    w.name.c_str(), res.records.size(), t.detectSec,
                    t.rawSec, t.vanillaSec, t.dnaSec, t.kmersSec,
                    t.embedSec);
        total.detectSec += t.detectSec;
        total.rawSec += t.rawSec;
        total.vanillaSec += t.vanillaSec;
        total.dnaSec += t.dnaSec;
        total.kmersSec += t.kmersSec;
        total.embedSec += t.embedSec;
        branches += res.records.size();
    }
    bench::printRule(92);
    std::printf("%-22s %5zu | %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
                "total", branches, total.detectSec, total.rawSec,
                total.vanillaSec, total.dnaSec, total.kmersSec,
                total.embedSec);
    std::printf("\nPaper reference (Pin on native x86, full inputs): "
                "detection 388 s/app, raw collection 14 s/branch,\n"
                "k-mers 3 s/branch. Our one-time analysis is a few "
                "seconds total because the traces come from the\n"
                "bundled functional simulator on scaled inputs; the "
                "step breakdown (collection dominates, compression\n"
                "cheap) matches the paper.\n");
    return 0;
}
