/**
 * @file
 * Microbenchmarks (google-benchmark) for the trace pipeline: run-
 * length encoding, DNA encoding and Algorithm 1 compression over
 * synthetic loop-nest traces of various lengths.
 */

#include <benchmark/benchmark.h>

#include <random>

#include "core/dna.hh"
#include "core/kmers.hh"
#include "core/trace_format.hh"

using namespace cassandra::core;

namespace {

VanillaTrace
loopNestTrace(size_t instances, int body)
{
    std::mt19937_64 rng(42);
    std::vector<RunElement> motif;
    for (int i = 0; i < body; i++)
        motif.push_back({0x1000 + 16 * (rng() % 32), 1 + rng() % 200});
    VanillaTrace v;
    for (size_t i = 0; i < instances; i++)
        for (auto e : motif)
            v.push_back(e);
    return toVanilla(expandVanilla(v));
}

void
BM_RunLength(benchmark::State &state)
{
    RawTrace raw;
    for (int i = 0; i < state.range(0); i++)
        raw.push_back(0x100 + 16 * ((i / 7) % 3));
    for (auto _ : state)
        benchmark::DoNotOptimize(toVanilla(raw));
    state.SetItemsProcessed(state.iterations() * raw.size());
}
BENCHMARK(BM_RunLength)->Arg(1024)->Arg(65536);

void
BM_DnaEncode(benchmark::State &state)
{
    auto v = loopNestTrace(state.range(0), 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(encodeDna(v));
    state.SetItemsProcessed(state.iterations() * v.size());
}
BENCHMARK(BM_DnaEncode)->Arg(256)->Arg(4096);

void
BM_KmersCompress(benchmark::State &state)
{
    auto v = loopNestTrace(state.range(0), 6);
    auto dna = encodeDna(v);
    for (auto _ : state)
        benchmark::DoNotOptimize(compressKmers(dna));
    state.SetItemsProcessed(state.iterations() * v.size());
}
BENCHMARK(BM_KmersCompress)->Arg(64)->Arg(512)->Arg(4096);

void
BM_KmersEncodeHardware(benchmark::State &state)
{
    auto v = loopNestTrace(state.range(0), 4);
    auto kmers = compressKmers(encodeDna(v));
    for (auto _ : state)
        benchmark::DoNotOptimize(encodeBranchTrace(0x10100, kmers));
}
BENCHMARK(BM_KmersEncodeHardware)->Arg(256)->Arg(4096);

} // namespace

BENCHMARK_MAIN();
