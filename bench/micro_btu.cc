/**
 * @file
 * Microbenchmarks (google-benchmark) for the Branch Trace Unit:
 * fetch-lookup/commit throughput on short rotating traces, long
 * streamed traces and eviction-heavy mixes.
 */

#include <benchmark/benchmark.h>

#include "btu/btu.hh"
#include "core/dna.hh"
#include "core/kmers.hh"

using namespace cassandra;

namespace {

core::BranchTrace
loopTrace(uint64_t pc, int trip, int instances)
{
    core::VanillaTrace v;
    for (int i = 0; i < instances; i++) {
        v.push_back({pc - 64, static_cast<uint64_t>(trip - 1)});
        v.push_back({pc + 4, 1});
    }
    v = core::toVanilla(core::expandVanilla(v));
    return core::encodeBranchTrace(
        pc, core::compressKmers(core::encodeDna(v)));
}

void
BM_BtuShortTraceReplay(benchmark::State &state)
{
    core::TraceImage image;
    uint64_t pc = 0x10100;
    image.add(loopTrace(pc, 8, 1));
    btu::Btu unit(image);
    for (auto _ : state) {
        auto r = unit.fetchLookup(pc);
        benchmark::DoNotOptimize(r);
        unit.commitBranch(pc);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtuShortTraceReplay);

void
BM_BtuLongTraceStream(benchmark::State &state)
{
    core::TraceImage image;
    uint64_t pc = 0x10100;
    // Varying trip counts defeat compression into a single element.
    core::VanillaTrace v;
    for (int i = 0; i < 64; i++) {
        v.push_back({pc - 64, static_cast<uint64_t>(2 + (i % 7))});
        v.push_back({pc + 4, 1});
    }
    v = core::toVanilla(core::expandVanilla(v));
    image.add(core::encodeBranchTrace(
        pc, core::compressKmers(core::encodeDna(v))));
    btu::Btu unit(image);
    for (auto _ : state) {
        auto r = unit.fetchLookup(pc);
        benchmark::DoNotOptimize(r);
        unit.commitBranch(pc);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtuLongTraceStream);

void
BM_BtuEvictionMix(benchmark::State &state)
{
    core::TraceImage image;
    const int branches = 32; // 2x the BTU capacity
    for (int b = 0; b < branches; b++)
        image.add(loopTrace(0x10100 + 64 * b, 4 + b % 5, 4));
    btu::Btu unit(image);
    int b = 0;
    for (auto _ : state) {
        uint64_t pc = 0x10100 + 64 * (b++ % branches);
        auto r = unit.fetchLookup(pc);
        benchmark::DoNotOptimize(r);
        if (r.outcome != btu::Btu::Outcome::StallResolve &&
            r.outcome != btu::Btu::Outcome::WindowStall) {
            unit.commitBranch(pc);
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtuEvictionMix);

} // namespace

BENCHMARK_MAIN();
