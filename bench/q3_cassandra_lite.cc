/**
 * @file
 * Reproduces §8 Q3: Cassandra-lite (single-target hints only, no BTU;
 * multi-target crypto branches stall until resolve) versus full
 * Cassandra, reported as per-suite slowdown plus the paper's callout
 * workloads (OpenSSL sha256, kyber512).
 */

#include <cstdio>
#include <map>

#include "bench/bench_util.hh"
#include "core/system.hh"
#include "crypto/workloads.hh"

using namespace cassandra;
using uarch::Scheme;

int
main()
{
    std::printf("Q3: Cassandra-lite slowdown over full Cassandra\n\n");
    std::printf("%-22s %10s %10s %10s\n", "Workload", "lite/cass",
                "lite/base", "cass/base");
    bench::printRule(58);

    std::map<std::string, std::vector<double>> suite_ratios;
    for (auto &w : crypto::allCryptoWorkloads()) {
        std::string suite = w.suite;
        core::System sys(std::move(w));
        auto base = sys.run(Scheme::UnsafeBaseline);
        auto cass = sys.run(Scheme::Cassandra);
        auto lite = sys.run(Scheme::CassandraLite);
        double lc = static_cast<double>(lite.stats.cycles) /
            cass.stats.cycles;
        std::printf("%-22s %10.4f %10.4f %10.4f\n",
                    sys.workload().name.c_str(), lc,
                    double(lite.stats.cycles) / base.stats.cycles,
                    double(cass.stats.cycles) / base.stats.cycles);
        suite_ratios[suite].push_back(lc);
    }
    bench::printRule(58);
    for (const auto &[suite, ratios] : suite_ratios) {
        std::printf("%-22s lite slowdown over Cassandra: %+.2f%%\n",
                    suite.c_str(),
                    (bench::geomean(ratios) - 1.0) * 100.0);
    }
    std::printf("\nPaper reference: 2.7%% (BearSSL), 6.7%% (OpenSSL), "
                "4.7%% (PQC) slowdown of lite over full\n"
                "Cassandra, with large outliers (22%% OpenSSL sha256, "
                "8%% kyber512) where conditional branches\n"
                "and returns dominate.\n");
    return 0;
}
