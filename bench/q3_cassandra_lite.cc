/**
 * @file
 * Reproduces §8 Q3: Cassandra-lite (single-target hints only, no BTU;
 * multi-target crypto branches stall until resolve) versus full
 * Cassandra, reported as per-suite slowdown plus the paper's callout
 * workloads (OpenSSL sha256, kyber512).
 */

#include <cstdio>
#include <map>

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "crypto/workload_registry.hh"

using namespace cassandra;
using uarch::Scheme;

int
main(int argc, char **argv)
{
    auto opts = bench::parseCli(argc, argv);

    core::ExperimentMatrix matrix;
    if (!bench::matrixFromConfig(opts, matrix)) {
        matrix.workloads =
            bench::selectWorkloads(bench::cryptoWorkloadNames(), opts);
        matrix.schemes = {Scheme::UnsafeBaseline, Scheme::Cassandra,
                          Scheme::CassandraLite};
    }

    auto exp = bench::runMatrix(matrix, opts);
    if (bench::emitReport(exp, opts))
        return 0;

    std::printf("Q3: Cassandra-lite slowdown over full Cassandra\n\n");
    std::printf("%-22s %10s %10s %10s\n", "Workload", "lite/cass",
                "lite/base", "cass/base");
    bench::printRule(58);

    std::map<std::string, std::vector<double>> suite_ratios;
    for (const std::string &name : matrix.workloads) {
        const auto *base = exp.find(name, Scheme::UnsafeBaseline);
        const auto *cass = exp.find(name, Scheme::Cassandra);
        const auto *lite = exp.find(name, Scheme::CassandraLite);
        if (!base || !cass || !lite) {
            std::printf("%-22s   (skipped: Q3 needs all three "
                        "schemes)\n",
                        name.c_str());
            continue;
        }
        double lc = static_cast<double>(lite->result.stats.cycles) /
            cass->result.stats.cycles;
        std::printf("%-22s %10.4f %10.4f %10.4f\n", name.c_str(), lc,
                    double(lite->result.stats.cycles) /
                        base->result.stats.cycles,
                    double(cass->result.stats.cycles) /
                        base->result.stats.cycles);
        suite_ratios[base->suite].push_back(lc);
    }
    bench::printRule(58);
    for (const auto &[suite, ratios] : suite_ratios) {
        std::printf("%-22s lite slowdown over Cassandra: %+.2f%%\n",
                    suite.c_str(),
                    (bench::geomean(ratios) - 1.0) * 100.0);
    }
    std::printf("\nPaper reference: 2.7%% (BearSSL), 6.7%% (OpenSSL), "
                "4.7%% (PQC) slowdown of lite over full\n"
                "Cassandra, with large outliers (22%% OpenSSL sha256, "
                "8%% kyber512) where conditional branches\n"
                "and returns dominate.\n");
    return 0;
}
