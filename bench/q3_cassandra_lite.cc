/**
 * @file
 * §8 Q3 grown into the flagship server macro benchmark.
 *
 * Default set: the composite server/<mix>/<n> request mixes under
 * UnsafeBaseline, full Cassandra and Cassandra-lite (single-target
 * hints only, no BTU). Server rows report requests/sec-equivalent
 * throughput — n requests over the simulated cycle count at a nominal
 * 3 GHz core clock — alongside raw cycles, because "how many requests
 * per second does the protected endpoint still serve" is the number a
 * deployment decision needs; cycles_vs_baseline alone buries it.
 *
 * Single-kernel workloads remain selectable (--workloads/--suite) and
 * fall back to the original Q3 lite-vs-full ratio table, so the paper
 * callouts (OpenSSL sha256, kyber512) are still one flag away.
 */

#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "crypto/workload_registry.hh"

using namespace cassandra;
using uarch::Scheme;

namespace {

/** Nominal core clock for requests/sec-equivalent throughput. The
 * absolute number is a presentation scale (the simulator has no wall
 * clock); ratios between schemes are clock-independent. */
constexpr double kNominalHz = 3e9;

/** Request count of a server/<mix>/<n> workload name; 0 when the name
 * is not a server mix (single-kernel rows have no request notion). */
uint64_t
serverRequests(const std::string &name)
{
    const std::string prefix = "server/";
    if (name.compare(0, prefix.size(), prefix) != 0)
        return 0;
    size_t slash = name.find('/', prefix.size());
    if (slash == std::string::npos || slash + 1 >= name.size())
        return 0;
    return std::strtoull(name.c_str() + slash + 1, nullptr, 10);
}

double
requestsPerSec(uint64_t requests, uint64_t cycles)
{
    return static_cast<double>(requests) * kNominalHz /
        static_cast<double>(cycles);
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseCli(argc, argv);

    core::ExperimentMatrix matrix;
    if (!bench::matrixFromConfig(opts, matrix)) {
        matrix.workloads = bench::selectWorkloads(
            {"server/tls/16", "server/tls/64"}, opts);
        matrix.schemes = {Scheme::UnsafeBaseline, Scheme::Cassandra,
                          Scheme::CassandraLite};
    }

    auto exp = bench::runMatrix(matrix, opts);
    if (bench::emitReport(exp, opts))
        return 0;

    // --- Server macro table: requests/sec per scheme ----------------
    bool any_server = false;
    for (const std::string &name : matrix.workloads)
        any_server |= serverRequests(name) != 0;
    if (any_server) {
        std::printf("Q3: server request-mix throughput "
                    "(requests/sec at a nominal %.0f GHz)\n\n",
                    kNominalHz / 1e9);
        std::printf("%-18s %-16s %12s %12s %10s\n", "Workload",
                    "Scheme", "cycles", "req/s", "vs base");
        bench::printRule(72);
        std::map<std::string, std::vector<double>> retention;
        for (const std::string &name : matrix.workloads) {
            uint64_t n = serverRequests(name);
            if (n == 0)
                continue;
            const auto *base = exp.find(name, Scheme::UnsafeBaseline);
            if (!base) {
                std::printf("%-18s   (skipped: no UnsafeBaseline "
                            "cell)\n",
                            name.c_str());
                continue;
            }
            for (Scheme s : matrix.schemes) {
                const auto *cell = exp.find(name, s);
                if (!cell)
                    continue;
                uint64_t cycles = cell->result.stats.cycles;
                double ratio = static_cast<double>(cycles) /
                    base->result.stats.cycles;
                std::printf("%-18s %-16s %12llu %12.0f %9.3fx\n",
                            name.c_str(), uarch::schemeName(s),
                            static_cast<unsigned long long>(cycles),
                            requestsPerSec(n, cycles), ratio);
                if (s != Scheme::UnsafeBaseline)
                    retention[std::string(uarch::schemeName(s))]
                        .push_back(1.0 / ratio);
            }
        }
        bench::printRule(72);
        for (const auto &[scheme, kept] : retention)
            std::printf("%-18s geomean throughput retention: "
                        "%.1f%% of baseline\n",
                        scheme.c_str(),
                        bench::geomean(kept) * 100.0);
        std::printf("\n");
        if (!std::getenv("Q3_FULL_TABLE"))
            return 0;
    }

    // --- Original Q3 table: lite slowdown over full Cassandra -------
    std::printf("Q3: Cassandra-lite slowdown over full Cassandra\n\n");
    std::printf("%-22s %10s %10s %10s\n", "Workload", "lite/cass",
                "lite/base", "cass/base");
    bench::printRule(58);

    std::map<std::string, std::vector<double>> suite_ratios;
    for (const std::string &name : matrix.workloads) {
        const auto *base = exp.find(name, Scheme::UnsafeBaseline);
        const auto *cass = exp.find(name, Scheme::Cassandra);
        const auto *lite = exp.find(name, Scheme::CassandraLite);
        if (!base || !cass || !lite) {
            std::printf("%-22s   (skipped: Q3 needs all three "
                        "schemes)\n",
                        name.c_str());
            continue;
        }
        double lc = static_cast<double>(lite->result.stats.cycles) /
            cass->result.stats.cycles;
        std::printf("%-22s %10.4f %10.4f %10.4f\n", name.c_str(), lc,
                    double(lite->result.stats.cycles) /
                        base->result.stats.cycles,
                    double(cass->result.stats.cycles) /
                        base->result.stats.cycles);
        suite_ratios[base->suite].push_back(lc);
    }
    bench::printRule(58);
    for (const auto &[suite, ratios] : suite_ratios) {
        std::printf("%-22s lite slowdown over Cassandra: %+.2f%%\n",
                    suite.c_str(),
                    (bench::geomean(ratios) - 1.0) * 100.0);
    }
    std::printf("\nPaper reference: 2.7%% (BearSSL), 6.7%% (OpenSSL), "
                "4.7%% (PQC) slowdown of lite over full\n"
                "Cassandra, with large outliers (22%% OpenSSL sha256, "
                "8%% kyber512) where conditional branches\n"
                "and returns dominate.\n");
    return 0;
}
