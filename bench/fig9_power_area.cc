/**
 * @file
 * Reproduces Figure 9: power and area of Cassandra relative to the
 * Unsafe Baseline, by component (Instruction Fetch Unit, Renaming
 * Unit, Load Store Unit, Execution Unit, Branch Trace Unit). Activity
 * counts are aggregated over the full Fig. 7 workload set.
 *
 * Runs on the two-phase experiment API: the workload x scheme matrix
 * executes in parallel over shared analysis artifacts, the shared CLI
 * filters workloads/threads, and --format=json/csv dumps the raw
 * per-cell counters the power model aggregates.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "crypto/workload_registry.hh"
#include "power/power_model.hh"

using namespace cassandra;
using uarch::Scheme;

namespace {

power::Activity
activityOf(const core::ExperimentResult &r)
{
    power::Activity a;
    a.cycles = r.stats.cycles;
    a.instructions = r.stats.instructions;
    a.bpuLookups = r.bpu.condLookups;
    a.bpuUpdates = r.bpu.updates;
    a.btbLookups = r.bpu.btbLookups;
    a.rsbOps = r.bpu.rsbPushes + r.bpu.rsbPops;
    a.btuLookups = r.btu.lookups;
    a.btuCommits = r.btu.commits;
    a.btuFills = r.btu.misses;
    a.l1iAccesses = r.caches.l1iAccesses;
    a.l1dAccesses = r.caches.l1dAccesses;
    a.l2Accesses = r.caches.l2Accesses;
    a.l3Accesses = r.caches.l3Accesses;
    a.loads = r.stats.loads;
    a.stores = r.stats.stores;
    a.intOps = r.stats.instructions - r.stats.loads - r.stats.stores;
    return a;
}

void
accumulate(power::Activity &into, const power::Activity &from)
{
    into.cycles += from.cycles;
    into.instructions += from.instructions;
    into.bpuLookups += from.bpuLookups;
    into.bpuUpdates += from.bpuUpdates;
    into.btbLookups += from.btbLookups;
    into.rsbOps += from.rsbOps;
    into.btuLookups += from.btuLookups;
    into.btuCommits += from.btuCommits;
    into.btuFills += from.btuFills;
    into.l1iAccesses += from.l1iAccesses;
    into.l1dAccesses += from.l1dAccesses;
    into.l2Accesses += from.l2Accesses;
    into.l3Accesses += from.l3Accesses;
    into.loads += from.loads;
    into.stores += from.stores;
    into.intOps += from.intOps;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseCli(argc, argv);

    core::ExperimentMatrix matrix;
    if (!bench::matrixFromConfig(opts, matrix)) {
        matrix.workloads =
            bench::selectWorkloads(bench::cryptoWorkloadNames(), opts);
        matrix.schemes = {Scheme::UnsafeBaseline, Scheme::Cassandra};
    }

    auto exp = bench::runMatrix(matrix, opts);
    if (bench::emitReport(exp, opts))
        return 0;

    power::Activity base_act, cass_act;
    size_t base_cells = 0, cass_cells = 0;
    for (const auto &cell : exp.cells) {
        if (cell.scheme == Scheme::UnsafeBaseline) {
            accumulate(base_act, activityOf(cell.result));
            base_cells++;
        } else if (cell.scheme == Scheme::Cassandra) {
            accumulate(cass_act, activityOf(cell.result));
            cass_cells++;
        }
    }
    if (base_cells == 0 || cass_cells == 0) {
        std::fprintf(stderr,
                     "figure 9 needs UnsafeBaseline and Cassandra "
                     "cells; use --format=json for other sweeps\n");
        return 1;
    }

    auto base = power::evaluatePower(base_act, /*include_btu=*/false);
    auto cass = power::evaluatePower(cass_act, /*include_btu=*/true);

    std::printf("Figure 9: power and area of Cassandra normalized to "
                "the Unsafe Baseline\n\n");
    std::printf("%-22s | %10s %10s | %10s %10s\n", "Component",
                "area-base", "area-cass", "pwr-base", "pwr-cass");
    bench::printRule(72);
    double bp = base.totalPower(), ba = base.totalArea();
    auto row = [&](const char *name, const power::ComponentReport &b,
                   const power::ComponentReport &c) {
        std::printf("%-22s | %9.2f%% %9.2f%% | %9.2f%% %9.2f%%\n", name,
                    100.0 * b.area / ba, 100.0 * c.area / ba,
                    100.0 * b.total() / bp, 100.0 * c.total() / bp);
    };
    row("InstructionFetchUnit", base.fetchUnit, cass.fetchUnit);
    row("RenamingUnit", base.renameUnit, cass.renameUnit);
    row("LoadStoreUnit", base.loadStoreUnit, cass.loadStoreUnit);
    row("ExecutionUnit", base.executionUnit, cass.executionUnit);
    row("BranchTraceUnit", base.btu, cass.btu);
    bench::printRule(72);
    std::printf("%-22s | %9.2f%% %9.2f%% | %9.2f%% %9.2f%%\n", "total",
                100.0, 100.0 * cass.totalArea() / ba, 100.0,
                100.0 * cass.totalPower() / bp);
    std::printf("\nPaper reference: Cassandra reduces power by 2.73%% "
                "(crypto branches skip the BPU) and the BTU\n"
                "adds 1.26%% area. Expected shape: fetch-unit power "
                "drops under Cassandra; the BTU adds a small\n"
                "area/power slice.\n");
    return 0;
}
