/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: math
 * utilities, the common experiment CLI (--format/--out/--threads/
 * --workloads/--suite/--list) and reporter plumbing.
 *
 * A migrated bench builds an ExperimentMatrix, runs it through the
 * ExperimentRunner, and either emits the machine-readable report the
 * user asked for (--format=json|csv) or falls through to its own
 * paper-style table:
 *
 *   auto opts = bench::parseCli(argc, argv);
 *   auto exp = bench::runMatrix(matrix, opts);
 *   if (bench::emitReport(exp, opts))
 *       return 0;
 *   ... printf the figure table from exp.cells ...
 */

#ifndef CASSANDRA_BENCH_BENCH_UTIL_HH
#define CASSANDRA_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "crypto/workload_registry.hh"

namespace cassandra::bench {

inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / xs.size());
}

inline void
printRule(int width)
{
    for (int i = 0; i < width; i++)
        std::putchar('-');
    std::putchar('\n');
}

/** Options shared by every experiment bench. */
struct CliOptions
{
    std::string format = "table"; ///< table | json | csv
    std::string out;              ///< output path; empty = stdout
    unsigned threads = 0;         ///< 0 = hardware concurrency
    std::vector<std::string> workloads; ///< filter; empty = bench set
    std::string suite;                  ///< filter; empty = all suites
};

inline void
printCliHelp(const char *prog)
{
    std::printf(
        "usage: %s [options]\n"
        "  --format=F     output format: table (default), json, csv\n"
        "  --out=PATH     write the report to PATH instead of stdout\n"
        "  --threads=N    worker threads (default: hardware "
        "concurrency)\n"
        "  --workloads=A,B  run only the named workloads\n"
        "  --suite=S      run only one suite (BearSSL, OpenSSL, PQC, "
        "Synthetic)\n"
        "  --list         list selectable workload names and exit\n"
        "  --help         this text\n",
        prog);
}

/**
 * Parse the shared flags; exits on --help/--list/parse errors so
 * benches only see well-formed options.
 */
inline CliOptions
parseCli(int argc, char **argv)
{
    CliOptions opts;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            size_t n = std::strlen(flag);
            if (arg.compare(0, n, flag) != 0 || arg.size() <= n ||
                arg[n] != '=')
                return nullptr;
            return arg.c_str() + n + 1;
        };
        if (arg == "--help" || arg == "-h") {
            printCliHelp(argv[0]);
            std::exit(0);
        } else if (arg == "--list") {
            const auto &reg = crypto::WorkloadRegistry::global();
            for (const std::string &name : reg.names())
                std::printf("%s (%s)\n", name.c_str(),
                            reg.suiteOf(name).c_str());
            std::exit(0);
        } else if (const char *v = value("--format")) {
            opts.format = v;
        } else if (const char *v = value("--out")) {
            opts.out = v;
        } else if (const char *v = value("--threads")) {
            char *end = nullptr;
            unsigned long n = std::strtoul(v, &end, 10);
            if (*v == '\0' || *end != '\0' || v[0] == '-' || n > 1024) {
                std::fprintf(stderr, "invalid --threads=%s\n", v);
                std::exit(2);
            }
            opts.threads = static_cast<unsigned>(n);
        } else if (const char *v = value("--suite")) {
            opts.suite = v;
        } else if (const char *v = value("--workloads")) {
            std::string list = v;
            size_t pos = 0;
            while (pos <= list.size()) {
                size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                if (comma > pos)
                    opts.workloads.push_back(
                        list.substr(pos, comma - pos));
                pos = comma + 1;
            }
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            printCliHelp(argv[0]);
            std::exit(2);
        }
    }
    if (opts.format != "table" && opts.format != "json" &&
        opts.format != "csv") {
        std::fprintf(stderr, "unknown --format=%s\n",
                     opts.format.c_str());
        std::exit(2);
    }
    return opts;
}

/** Registry names of the Fig. 7 crypto set (no synthetic mixes). */
inline std::vector<std::string>
cryptoWorkloadNames()
{
    const auto &reg = crypto::WorkloadRegistry::global();
    std::vector<std::string> out;
    for (const char *suite : {"BearSSL", "OpenSSL", "PQC"})
        for (const std::string &name : reg.names(suite))
            out.push_back(name);
    return out;
}

/**
 * Apply the --workloads/--suite filters to a bench's default workload
 * list. Unknown names in --workloads abort with a message.
 */
inline std::vector<std::string>
selectWorkloads(const std::vector<std::string> &defaults,
                const CliOptions &opts)
{
    const auto &reg = crypto::WorkloadRegistry::global();
    std::vector<std::string> out;
    if (!opts.workloads.empty()) {
        for (const std::string &name : opts.workloads) {
            if (!reg.contains(name)) {
                std::fprintf(stderr, "unknown workload: %s\n",
                             name.c_str());
                std::exit(2);
            }
            out.push_back(name);
        }
        return out;
    }
    for (const std::string &name : defaults) {
        if (opts.suite.empty() || reg.suiteOf(name) == opts.suite)
            out.push_back(name);
    }
    if (out.empty()) {
        std::fprintf(stderr, "no workloads selected\n");
        std::exit(2);
    }
    return out;
}

/** Run a matrix with the registry resolver and the CLI's thread count. */
inline core::Experiment
runMatrix(const core::ExperimentMatrix &matrix, const CliOptions &opts)
{
    core::ExperimentRunner runner(
        crypto::WorkloadRegistry::global().resolver(),
        core::RunnerOptions{opts.threads});
    return runner.run(matrix);
}

/**
 * Emit the machine-readable report when one was requested. Returns
 * true when the bench is done (json/csv written); false means the
 * caller should print its paper-style table.
 */
inline bool
emitReport(const core::Experiment &exp, const CliOptions &opts)
{
    if (opts.format == "table" && opts.out.empty())
        return false;
    auto reporter = core::makeReporter(opts.format);
    if (opts.out.empty()) {
        reporter->write(exp, std::cout);
        return true;
    }
    std::ofstream file(opts.out);
    if (!file) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     opts.out.c_str());
        std::exit(1);
    }
    reporter->write(exp, file);
    return true;
}

} // namespace cassandra::bench

#endif // CASSANDRA_BENCH_BENCH_UTIL_HH
