/**
 * @file
 * Shared helpers for the table/figure reproduction binaries.
 */

#ifndef CASSANDRA_BENCH_BENCH_UTIL_HH
#define CASSANDRA_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace cassandra::bench {

inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / xs.size());
}

inline void
printRule(int width)
{
    for (int i = 0; i < width; i++)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace cassandra::bench

#endif // CASSANDRA_BENCH_BENCH_UTIL_HH
