/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: math
 * utilities, the common experiment CLI (--format/--out/--threads/
 * --workloads/--suite/--config/--list) and reporter plumbing.
 *
 * A migrated bench builds an ExperimentMatrix — or takes one straight
 * from a JSON config file via --config — runs it through the shared
 * ExperimentRunner, and either emits the machine-readable report the
 * user asked for (--format=json|csv) or falls through to its own
 * paper-style table:
 *
 *   auto opts = bench::parseCli(argc, argv);
 *   core::ExperimentMatrix matrix;
 *   if (!bench::matrixFromConfig(opts, matrix)) {
 *       ... build the bench's default matrix ...
 *   }
 *   auto exp = bench::runMatrix(matrix, opts);
 *   if (bench::emitReport(exp, opts))
 *       return 0;
 *   ... printf the figure table from exp.cells ...
 *
 * Thread-pool sizing is decided in exactly one place — the runner
 * (RunnerOptions::resolveThreads) — benches only forward the CLI (or
 * config) thread count verbatim.
 */

#ifndef CASSANDRA_BENCH_BENCH_UTIL_HH
#define CASSANDRA_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/experiment_config.hh"
#include "core/experiment_service.hh"
#include "core/serialize.hh"
#include "crypto/workload_registry.hh"

namespace cassandra::bench {

inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / xs.size());
}

inline void
printRule(int width)
{
    for (int i = 0; i < width; i++)
        std::putchar('-');
    std::putchar('\n');
}

/** Options shared by every experiment bench. */
struct CliOptions
{
    std::string format = "table"; ///< table | json | csv
    std::string out;              ///< output path; empty = stdout
    unsigned threads = 0;         ///< 0 = runner decides
    std::vector<std::string> workloads; ///< filter; empty = bench set
    std::string suite;                  ///< filter; empty = all suites
    std::string configPath;             ///< --config JSON sweep file
    /// whole | stream (--trace-mode or the config's "trace_mode").
    core::TraceMode traceMode = core::TraceMode::Whole;
    /// none | delta (--trace-compression or "trace_compression").
    core::TraceCompression traceCompression =
        core::TraceCompression::Delta;

    /// inprocess | subprocess (--execution or "execution.mode").
    core::ExecutionMode execution = core::ExecutionMode::InProcess;
    /// Subprocess shard count (--shards or "execution.shards").
    unsigned shards = 0;
    /// Worker binary for subprocess mode ("execution.worker_binary";
    /// run_experiment defaults it to its own argv[0]).
    std::string workerBinary;

    /// off | on | readonly (--cache or the config's "cache.mode").
    core::CacheMode cacheMode = core::CacheMode::Off;
    /// Result-store directory (--cache-dir or "cache.dir"); empty =
    /// the runner's default ("result-cache").
    std::string cacheDir;
    /// contiguous | lpt (--scheduler or "execution.scheduler").
    core::ShardScheduler scheduler = core::ShardScheduler::Contiguous;
    /// Coordinator cell dedup (--dedup). Defaults on: identical cells
    /// (same workload/scheme/scheme-aware config hash) simulate once.
    bool dedupCells = true;
    /// Drop-box directory for remote execution (--dropbox or
    /// "execution.dropbox"); required with --execution=remote.
    std::string dropboxDir;
    /// Agents the remote executor spawns (--agents or
    /// "execution.agents"); 0 = rely on a standing pool.
    unsigned agents = 0;
    /// Remote per-task deadline in ms (--task-timeout-ms or
    /// "execution.task_timeout_ms"); 0 = the runner's default.
    uint64_t taskTimeoutMs = 0;
    /// Result-store disk budget in MiB (--cache-gc-mb or
    /// "cache.gc_mb"); 0 = unbounded.
    uint64_t cacheGcMb = 0;
    /// Telemetry JSON path (--stats-out or "report.stats_out"); the
    /// cache_stats/schedule document, kept out of the main report so
    /// warm and cold runs stay byte-identical.
    std::string statsOut;

    /// CLI flags beat config-file settings; track what was spelled.
    bool formatExplicit = false;
    bool outExplicit = false;
    bool threadsExplicit = false;
    bool traceModeExplicit = false;
    bool traceCompressionExplicit = false;
    bool executionExplicit = false;
    bool shardsExplicit = false;
    bool cacheModeExplicit = false;
    bool cacheDirExplicit = false;
    bool schedulerExplicit = false;
    bool statsOutExplicit = false;
    bool dropboxExplicit = false;
    bool agentsExplicit = false;
    bool taskTimeoutMsExplicit = false;
    bool cacheGcMbExplicit = false;

    /// Artifact snapshot directory (from the config file).
    std::string artifactDir;
    bool artifactSave = false;
};

inline void
printCliHelp(const char *prog)
{
    std::printf(
        "usage: %s [options]\n"
        "  --format=F     output format: table (default), json, csv\n"
        "  --out=PATH     write the report to PATH instead of stdout\n"
        "  --threads=N    worker threads (default: hardware "
        "concurrency)\n"
        "  --workloads=A,B  run only the named workloads\n"
        "  --suite=S      run only one suite (BearSSL, OpenSSL, PQC, "
        "Synthetic)\n"
        "  --config=FILE  load the full sweep (workloads, schemes,\n"
        "                 parameter overrides, report settings) from a\n"
        "                 JSON experiment config; CLI flags override\n"
        "  --trace-mode=M timing trace storage: whole (default, in\n"
        "                 memory) or stream (spill to chunked trace\n"
        "                 files, replay from disk; same cycles, flat\n"
        "                 peak memory)\n"
        "  --trace-compression=C  stream-file encoding: delta\n"
        "                 (default, compressed CASSTF2) or none (raw\n"
        "                 24 B/op CASSTF1); same cycles either way\n"
        "  --execution=E  phase-2 cell execution: inprocess (default,\n"
        "                 thread pool), subprocess (cells sharded\n"
        "                 across worker processes) or remote (cells\n"
        "                 dispatched through a drop-box directory to\n"
        "                 --agent processes); byte-identical reports\n"
        "                 either way\n"
        "  --shards=N     worker process count for --execution\n"
        "                 subprocess/remote (default: auto)\n"
        "  --dropbox=D    drop-box directory (the artifact store root)\n"
        "                 for --execution=remote\n"
        "  --agents=N     agent processes the remote executor spawns\n"
        "                 itself (default 0: a standing agent pool is\n"
        "                 already polling the drop box)\n"
        "  --task-timeout-ms=N  remote per-task deadline before the\n"
        "                 coordinator withdraws the task and retries\n"
        "                 its cells in-process (default 120000)\n"
        "  --cache=M      persistent cell-result store: off (default),\n"
        "                 on (reuse prior results, persist fresh ones)\n"
        "                 or readonly (reuse without writing)\n"
        "  --cache-dir=D  result-store directory (default:\n"
        "                 result-cache)\n"
        "  --cache-gc-mb=N  bound the result store to N MiB after the\n"
        "                 run (oldest-access entries evicted; default\n"
        "                 0: unbounded)\n"
        "  --scheduler=S  subprocess shard partitioning: contiguous\n"
        "                 (default) or lpt (cost-model bin packing;\n"
        "                 byte-identical reports either way)\n"
        "  --dedup=D      coordinator cell dedup: on (default —\n"
        "                 byte-identical cells simulate once and the\n"
        "                 result replicates into every slot) or off\n"
        "                 (every matrix cell dispatches; reports are\n"
        "                 byte-identical either way)\n"
        "  --stats-out=F  write the run's cache/scheduler telemetry\n"
        "                 JSON to F (separate from the report, which\n"
        "                 stays byte-identical warm vs. cold)\n"
        "  --list         list selectable workload names and exit\n"
        "  --help         this text\n",
        prog);
}

/**
 * Parse the shared flags; exits on --help/--list/parse errors so
 * benches only see well-formed options.
 */
inline CliOptions
parseCli(int argc, char **argv)
{
    CliOptions opts;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            size_t n = std::strlen(flag);
            if (arg.compare(0, n, flag) != 0 || arg.size() <= n ||
                arg[n] != '=')
                return nullptr;
            return arg.c_str() + n + 1;
        };
        if (arg == "--help" || arg == "-h") {
            printCliHelp(argv[0]);
            std::exit(0);
        } else if (arg == "--list") {
            const auto &reg = crypto::WorkloadRegistry::global();
            for (const std::string &name : reg.names())
                std::printf("%s (%s)\n", name.c_str(),
                            reg.suiteOf(name).c_str());
            std::exit(0);
        } else if (const char *v = value("--format")) {
            opts.format = v;
            opts.formatExplicit = true;
        } else if (const char *v = value("--out")) {
            opts.out = v;
            opts.outExplicit = true;
        } else if (const char *v = value("--threads")) {
            char *end = nullptr;
            unsigned long n = std::strtoul(v, &end, 10);
            if (*v == '\0' || *end != '\0' || v[0] == '-' || n > 1024) {
                std::fprintf(stderr, "invalid --threads=%s\n", v);
                std::exit(2);
            }
            opts.threads = static_cast<unsigned>(n);
            opts.threadsExplicit = true;
        } else if (const char *v = value("--suite")) {
            opts.suite = v;
        } else if (const char *v = value("--trace-mode")) {
            try {
                opts.traceMode = core::traceModeFromName(v);
            } catch (const std::invalid_argument &) {
                std::fprintf(stderr, "invalid --trace-mode=%s "
                                     "(expected whole or stream)\n",
                             v);
                std::exit(2);
            }
            opts.traceModeExplicit = true;
        } else if (const char *v = value("--trace-compression")) {
            try {
                opts.traceCompression =
                    core::traceCompressionFromName(v);
            } catch (const std::invalid_argument &) {
                std::fprintf(stderr,
                             "invalid --trace-compression=%s "
                             "(expected none or delta)\n",
                             v);
                std::exit(2);
            }
            opts.traceCompressionExplicit = true;
        } else if (const char *v = value("--config")) {
            opts.configPath = v;
        } else if (arg == "--config" && i + 1 < argc) {
            opts.configPath = argv[++i];
        } else if (value("--execution") ||
                   (arg == "--execution" && i + 1 < argc)) {
            const char *v = value("--execution");
            if (!v)
                v = argv[++i];
            try {
                opts.execution = core::executionModeFromName(v);
            } catch (const std::invalid_argument &) {
                std::fprintf(stderr,
                             "invalid --execution=%s (expected "
                             "inprocess, subprocess or remote)\n",
                             v);
                std::exit(2);
            }
            opts.executionExplicit = true;
        } else if (value("--shards") ||
                   (arg == "--shards" && i + 1 < argc)) {
            const char *v = value("--shards");
            if (!v)
                v = argv[++i];
            char *end = nullptr;
            unsigned long n = std::strtoul(v, &end, 10);
            if (*v == '\0' || *end != '\0' || v[0] == '-' || n == 0 ||
                n > 1024) {
                std::fprintf(stderr, "invalid --shards=%s\n", v);
                std::exit(2);
            }
            opts.shards = static_cast<unsigned>(n);
            opts.shardsExplicit = true;
        } else if (value("--cache") ||
                   (arg == "--cache" && i + 1 < argc)) {
            const char *v = value("--cache");
            if (!v)
                v = argv[++i];
            try {
                opts.cacheMode = core::cacheModeFromName(v);
            } catch (const std::invalid_argument &) {
                std::fprintf(stderr,
                             "invalid --cache=%s (expected off, on "
                             "or readonly)\n",
                             v);
                std::exit(2);
            }
            opts.cacheModeExplicit = true;
        } else if (value("--cache-dir") ||
                   (arg == "--cache-dir" && i + 1 < argc)) {
            const char *v = value("--cache-dir");
            if (!v)
                v = argv[++i];
            opts.cacheDir = v;
            opts.cacheDirExplicit = true;
        } else if (value("--scheduler") ||
                   (arg == "--scheduler" && i + 1 < argc)) {
            const char *v = value("--scheduler");
            if (!v)
                v = argv[++i];
            try {
                opts.scheduler = core::shardSchedulerFromName(v);
            } catch (const std::invalid_argument &) {
                std::fprintf(stderr,
                             "invalid --scheduler=%s (expected "
                             "contiguous or lpt)\n",
                             v);
                std::exit(2);
            }
            opts.schedulerExplicit = true;
        } else if (value("--dedup") ||
                   (arg == "--dedup" && i + 1 < argc)) {
            const char *v = value("--dedup");
            if (!v)
                v = argv[++i];
            if (std::strcmp(v, "on") == 0) {
                opts.dedupCells = true;
            } else if (std::strcmp(v, "off") == 0) {
                opts.dedupCells = false;
            } else {
                std::fprintf(stderr,
                             "invalid --dedup=%s (expected on or "
                             "off)\n",
                             v);
                std::exit(2);
            }
        } else if (value("--dropbox") ||
                   (arg == "--dropbox" && i + 1 < argc)) {
            const char *v = value("--dropbox");
            if (!v)
                v = argv[++i];
            opts.dropboxDir = v;
            opts.dropboxExplicit = true;
        } else if (value("--agents") ||
                   (arg == "--agents" && i + 1 < argc)) {
            const char *v = value("--agents");
            if (!v)
                v = argv[++i];
            char *end = nullptr;
            unsigned long n = std::strtoul(v, &end, 10);
            if (*v == '\0' || *end != '\0' || v[0] == '-' || n > 1024) {
                std::fprintf(stderr, "invalid --agents=%s\n", v);
                std::exit(2);
            }
            opts.agents = static_cast<unsigned>(n);
            opts.agentsExplicit = true;
        } else if (value("--task-timeout-ms") ||
                   (arg == "--task-timeout-ms" && i + 1 < argc)) {
            const char *v = value("--task-timeout-ms");
            if (!v)
                v = argv[++i];
            char *end = nullptr;
            unsigned long long n = std::strtoull(v, &end, 10);
            if (*v == '\0' || *end != '\0' || v[0] == '-' || n == 0) {
                std::fprintf(stderr, "invalid --task-timeout-ms=%s\n",
                             v);
                std::exit(2);
            }
            opts.taskTimeoutMs = n;
            opts.taskTimeoutMsExplicit = true;
        } else if (value("--cache-gc-mb") ||
                   (arg == "--cache-gc-mb" && i + 1 < argc)) {
            const char *v = value("--cache-gc-mb");
            if (!v)
                v = argv[++i];
            char *end = nullptr;
            unsigned long long n = std::strtoull(v, &end, 10);
            if (*v == '\0' || *end != '\0' || v[0] == '-') {
                std::fprintf(stderr, "invalid --cache-gc-mb=%s\n", v);
                std::exit(2);
            }
            opts.cacheGcMb = n;
            opts.cacheGcMbExplicit = true;
        } else if (value("--stats-out") ||
                   (arg == "--stats-out" && i + 1 < argc)) {
            const char *v = value("--stats-out");
            if (!v)
                v = argv[++i];
            opts.statsOut = v;
            opts.statsOutExplicit = true;
        } else if (const char *v = value("--workloads")) {
            std::string list = v;
            size_t pos = 0;
            while (pos <= list.size()) {
                size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                if (comma > pos)
                    opts.workloads.push_back(
                        list.substr(pos, comma - pos));
                pos = comma + 1;
            }
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            printCliHelp(argv[0]);
            std::exit(2);
        }
    }
    if (opts.format != "table" && opts.format != "json" &&
        opts.format != "csv") {
        std::fprintf(stderr, "unknown --format=%s\n",
                     opts.format.c_str());
        std::exit(2);
    }
    return opts;
}

/** Registry names of the Fig. 7 crypto set (no synthetic mixes). */
inline std::vector<std::string>
cryptoWorkloadNames()
{
    const auto &reg = crypto::WorkloadRegistry::global();
    std::vector<std::string> out;
    for (const char *suite : {"BearSSL", "OpenSSL", "PQC"})
        for (const std::string &name : reg.names(suite))
            out.push_back(name);
    return out;
}

/**
 * Apply the --workloads/--suite filters to a bench's default workload
 * list. Unknown names in --workloads abort with a message.
 */
inline std::vector<std::string>
selectWorkloads(const std::vector<std::string> &defaults,
                const CliOptions &opts)
{
    const auto &reg = crypto::WorkloadRegistry::global();
    std::vector<std::string> out;
    if (!opts.workloads.empty()) {
        for (const std::string &name : opts.workloads) {
            if (!reg.contains(name)) {
                std::fprintf(stderr, "unknown workload: %s\n",
                             name.c_str());
                std::exit(2);
            }
            out.push_back(name);
        }
        return out;
    }
    for (const std::string &name : defaults) {
        if (opts.suite.empty() || reg.suiteOf(name) == opts.suite)
            out.push_back(name);
    }
    if (out.empty()) {
        std::fprintf(stderr, "no workloads selected\n");
        std::exit(2);
    }
    return out;
}

/**
 * Load --config (when given), expand its suites through the registry,
 * fold its report/thread settings into opts (explicit CLI flags win)
 * and fill the matrix. Returns false — leaving matrix untouched —
 * when no config file drives this run. Exits with a message on
 * malformed configs, like the other CLI errors.
 */
inline bool
matrixFromConfig(CliOptions &opts, core::ExperimentMatrix &matrix)
{
    if (opts.configPath.empty())
        return false;
    core::ExperimentSpec spec;
    try {
        spec = core::loadExperimentSpec(opts.configPath);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: %s\n", opts.configPath.c_str(),
                     e.what());
        std::exit(2);
    }
    const auto &reg = crypto::WorkloadRegistry::global();
    std::vector<std::string> names = spec.matrix.workloads;
    for (const std::string &suite : spec.suites) {
        std::vector<std::string> expanded = reg.names(suite);
        if (expanded.empty()) {
            std::fprintf(stderr, "%s: suite \"%s\" names no workloads\n",
                         opts.configPath.c_str(), suite.c_str());
            std::exit(2);
        }
        names.insert(names.end(), expanded.begin(), expanded.end());
    }
    for (const std::string &name : names) {
        if (!reg.contains(name)) {
            std::fprintf(stderr, "%s: unknown workload \"%s\"\n",
                         opts.configPath.c_str(), name.c_str());
            std::exit(2);
        }
    }
    matrix = spec.matrix;
    // --workloads / --suite filter the configured list like they
    // filter a bench's default list.
    matrix.workloads = selectWorkloads(names, opts);

    if (!opts.formatExplicit && !spec.format.empty())
        opts.format = spec.format;
    if (!opts.outExplicit && !spec.out.empty())
        opts.out = spec.out;
    if (!opts.threadsExplicit && spec.threads != 0)
        opts.threads = spec.threads;
    if (!opts.traceModeExplicit && spec.traceModeSet)
        opts.traceMode = spec.traceMode;
    if (!opts.traceCompressionExplicit && spec.traceCompressionSet)
        opts.traceCompression = spec.traceCompression;
    if (!opts.executionExplicit && spec.executionModeSet)
        opts.execution = spec.executionMode;
    if (!opts.shardsExplicit && spec.shardsSet)
        opts.shards = spec.shards;
    if (opts.workerBinary.empty())
        opts.workerBinary = spec.workerBinary;
    if (!opts.cacheModeExplicit && spec.cacheModeSet)
        opts.cacheMode = spec.cacheMode;
    if (!opts.cacheDirExplicit && !spec.cacheDir.empty())
        opts.cacheDir = spec.cacheDir;
    if (!opts.schedulerExplicit && spec.schedulerSet)
        opts.scheduler = spec.scheduler;
    if (!opts.dropboxExplicit && !spec.dropboxDir.empty())
        opts.dropboxDir = spec.dropboxDir;
    if (!opts.agentsExplicit && spec.agentsSet)
        opts.agents = spec.agents;
    if (!opts.taskTimeoutMsExplicit && spec.taskTimeoutMsSet)
        opts.taskTimeoutMs = spec.taskTimeoutMs;
    if (!opts.cacheGcMbExplicit && spec.cacheGcMbSet)
        opts.cacheGcMb = spec.cacheGcMb;
    if (!opts.statsOutExplicit && !spec.statsOut.empty())
        opts.statsOut = spec.statsOut;
    opts.artifactDir = spec.artifactDir;
    opts.artifactSave = spec.artifactSave;
    return true;
}

/** Artifact snapshot path for a workload name ('/' is not a file
 * character; "synthetic/chacha20/75" -> "synthetic_chacha20_75.aw"). */
inline std::string
artifactPath(const std::string &dir, const std::string &name)
{
    std::string file = name;
    for (char &c : file) {
        if (c == '/' || c == '\\')
            c = '_';
    }
    return dir + "/" + file + ".aw";
}

/** Analysis options of one bench run: trace mode from the CLI/config,
 * stream files next to the artifact snapshots (or in the default
 * temp directory when no artifact dir is configured). */
inline core::AnalyzeOptions
analyzeOptions(const CliOptions &opts)
{
    core::AnalyzeOptions options;
    options.traceMode = opts.traceMode;
    options.compression = opts.traceCompression;
    if (!opts.artifactDir.empty())
        options.streamDir = opts.artifactDir;
    return options;
}

/**
 * Analysis cache for one bench run, preloaded from opts.artifactDir
 * when the config named one. Workloads without a loadable snapshot
 * analyze fresh; with artifactSave their names land in `missing` so
 * saveArtifacts can snapshot them afterwards. Snapshots with an
 * outdated container version or a mismatched fingerprint are evicted
 * (deleted) — a cache that silently re-analyzes around bad files
 * looks exactly like a working one while paying full analysis cost
 * forever.
 */
inline std::shared_ptr<core::AnalysisCache>
makeArtifactCache(const std::vector<std::string> &names,
                  const CliOptions &opts,
                  std::vector<std::string> &missing)
{
    auto resolver = crypto::WorkloadRegistry::global().resolver();
    auto cache = std::make_shared<core::AnalysisCache>(
        resolver, analyzeOptions(opts));
    if (opts.artifactDir.empty())
        return cache;
    for (const std::string &name : names) {
        if (cache->contains(name) ||
            std::find(missing.begin(), missing.end(), name) !=
                missing.end())
            continue;
        const std::string path = artifactPath(opts.artifactDir, name);
        try {
            // Rehydrated streams belong where fresh analyses put
            // theirs (the artifact dir), not in $TMPDIR.
            cache->put(name,
                       core::loadAnalyzedWorkload(
                           path, resolver,
                           analyzeOptions(opts).streamDir));
        } catch (const core::ArtifactError &e) {
            // Outdated container version or stale fingerprint: evict
            // the file so the next save rewrites it.
            std::fprintf(stderr, "%s: %s; evicting\n", path.c_str(),
                         e.what());
            std::remove(path.c_str());
            missing.push_back(name);
        } catch (const std::invalid_argument &e) {
            // The file exists but is corrupt (e.g. truncated write):
            // re-analyzing is correct, but say so.
            std::fprintf(stderr, "%s: %s; re-analyzing %s\n",
                         path.c_str(), e.what(), name.c_str());
            missing.push_back(name);
        } catch (const std::exception &) {
            // Not snapshotted yet: analyze fresh, quietly.
            missing.push_back(name);
        }
    }
    return cache;
}

/** Snapshot freshly analyzed artifacts back into opts.artifactDir. */
inline void
saveArtifacts(
    const std::map<std::string, core::AnalyzedWorkload::Ptr> &artifacts,
    const std::vector<std::string> &missing, const CliOptions &opts)
{
    if (opts.artifactDir.empty() || !opts.artifactSave)
        return;
    // Whole-mode sweeps never touch the stream layer, so the artifact
    // directory may not exist yet.
    try {
        core::ensureDirectories(opts.artifactDir);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "cannot create artifact dir %s: %s\n",
                     opts.artifactDir.c_str(), e.what());
        return;
    }
    for (const std::string &name : missing) {
        auto it = artifacts.find(name);
        if (it == artifacts.end())
            continue;
        try {
            core::saveAnalyzedWorkload(
                *it->second, artifactPath(opts.artifactDir, name),
                name);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "cannot save artifact for %s: %s\n",
                         name.c_str(), e.what());
        }
    }
}

/**
 * Runner options from the parsed CLI/config options — the one
 * translation both the direct-run path (runMatrices) and the service
 * front end (serveSpool) use, so a service-run job sees exactly the
 * execution backend a direct run would. Exits with a message when a
 * backend is missing its required settings.
 */
inline core::RunnerOptions
runnerOptionsFromCli(const CliOptions &opts)
{
    core::RunnerOptions runner_opts;
    runner_opts.threads = opts.threads;
    runner_opts.analyze = analyzeOptions(opts);
    runner_opts.execution = opts.execution;
    runner_opts.shards = opts.shards;
    runner_opts.workerBinary = opts.workerBinary;
    runner_opts.cacheMode = opts.cacheMode;
    runner_opts.cacheDir = opts.cacheDir;
    runner_opts.scheduler = opts.scheduler;
    runner_opts.dedupCells = opts.dedupCells;
    runner_opts.dropboxDir = opts.dropboxDir;
    runner_opts.agents = opts.agents;
    if (opts.taskTimeoutMs != 0)
        runner_opts.taskTimeoutMs = opts.taskTimeoutMs;
    runner_opts.cacheGcMb = opts.cacheGcMb;
    if (runner_opts.execution == core::ExecutionMode::Subprocess &&
        runner_opts.workerBinary.empty()) {
        std::fprintf(stderr,
                     "--execution subprocess needs a worker binary: "
                     "set \"execution\": {\"worker_binary\": ...} in "
                     "the config, or run through run_experiment "
                     "(which shards onto itself)\n");
        std::exit(2);
    }
    if (runner_opts.execution == core::ExecutionMode::Remote &&
        runner_opts.dropboxDir.empty()) {
        std::fprintf(stderr,
                     "--execution remote needs a drop-box directory: "
                     "pass --dropbox=DIR or set \"execution\": "
                     "{\"dropbox\": ...} in the config\n");
        std::exit(2);
    }
    if (runner_opts.execution == core::ExecutionMode::Remote &&
        runner_opts.agents != 0 && runner_opts.workerBinary.empty()) {
        std::fprintf(stderr,
                     "--agents needs an agent binary: run through "
                     "run_experiment (which spawns itself) or set "
                     "\"execution\": {\"worker_binary\": ...}\n");
        std::exit(2);
    }
    return runner_opts;
}

/**
 * Run the experiment service over `spool` with the registry resolver
 * and suite expander, using the same runner settings a direct CLI run
 * would (so service reports are byte-identical to direct ones).
 * Blocks until the stop flag / idle exit / max-jobs bound.
 */
inline int
serveSpool(const std::string &spool, const CliOptions &opts,
           uint64_t poll_ms, uint64_t idle_exit_ms, unsigned max_jobs)
{
    core::ExperimentService::Options sopts;
    sopts.spoolDir = spool;
    sopts.resolver = crypto::WorkloadRegistry::global().resolver();
    sopts.runner = runnerOptionsFromCli(opts);
    sopts.expandSuite = [](const std::string &suite) {
        return crypto::WorkloadRegistry::global().names(suite);
    };
    sopts.pollMs = poll_ms;
    sopts.idleExitMs = idle_exit_ms;
    sopts.maxJobs = max_jobs;
    core::ExperimentService service(std::move(sopts));
    return service.serve(std::cerr);
}

/**
 * Run a batch of matrices with the registry resolver, sharing one
 * analysis cache (and one analysis phase) across all of them; cells
 * concatenate in matrix order. When the config named an artifact
 * directory, snapshots are loaded from it instead of re-analyzing
 * and — with "save": true — freshly analyzed workloads are written
 * back.
 */
inline core::Experiment
runMatrices(const std::vector<core::ExperimentMatrix> &matrices,
            const CliOptions &opts)
{
    std::vector<std::string> names;
    for (const auto &matrix : matrices)
        names.insert(names.end(), matrix.workloads.begin(),
                     matrix.workloads.end());
    std::vector<std::string> missing;
    auto cache = makeArtifactCache(names, opts, missing);

    // An explicit --trace-mode/--trace-compression overrides whatever
    // the matrices' configs say, in both directions (config-file
    // settings are already baked into the parsed configs, so they
    // need no forcing).
    std::vector<core::ExperimentMatrix> resolved = matrices;
    if (opts.traceModeExplicit || opts.traceCompressionExplicit) {
        for (auto &matrix : resolved) {
            if (matrix.configs.empty() &&
                (opts.traceMode == core::TraceMode::Stream ||
                 opts.traceCompression ==
                     core::TraceCompression::None))
                matrix.configs.push_back(core::SimConfig{});
            for (auto &cfg : matrix.configs) {
                if (opts.traceModeExplicit)
                    cfg.traceMode = opts.traceMode;
                if (opts.traceCompressionExplicit)
                    cfg.traceCompression = opts.traceCompression;
            }
        }
    }

    core::RunnerOptions runner_opts = runnerOptionsFromCli(opts);
    core::ExperimentRunner runner(cache, runner_opts);
    core::Experiment exp = runner.run(resolved);
    saveArtifacts(exp.artifacts, missing, opts);
    if (!opts.statsOut.empty()) {
        std::ofstream file(opts.statsOut);
        if (!file) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         opts.statsOut.c_str());
            std::exit(1);
        }
        core::writeRunTelemetry(exp.telemetry, file);
    }
    return exp;
}

/** Run one matrix (see runMatrices). */
inline core::Experiment
runMatrix(const core::ExperimentMatrix &matrix, const CliOptions &opts)
{
    return runMatrices({matrix}, opts);
}

/**
 * Emit the machine-readable report when one was requested. Returns
 * true when the bench is done (json/csv written); false means the
 * caller should print its paper-style table.
 */
inline bool
emitReport(const core::Experiment &exp, const CliOptions &opts)
{
    if (opts.format == "table" && opts.out.empty())
        return false;
    auto reporter = core::makeReporter(opts.format);
    if (opts.out.empty()) {
        reporter->write(exp, std::cout);
        return true;
    }
    std::ofstream file(opts.out);
    if (!file) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     opts.out.c_str());
        std::exit(1);
    }
    reporter->write(exp, file);
    return true;
}

} // namespace cassandra::bench

#endif // CASSANDRA_BENCH_BENCH_UTIL_HH
