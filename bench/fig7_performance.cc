/**
 * @file
 * Reproduces Figure 7: execution time of Unsafe Baseline, Cassandra,
 * Cassandra+STL and SPT over the BearSSL / OpenSSL / PQC workloads,
 * normalized to the Unsafe Baseline (lower is better), with the
 * geometric mean over all workloads.
 *
 * Built on the two-phase experiment API: every workload is analyzed
 * once, then the workload x scheme matrix runs through the parallel
 * ExperimentRunner over the shared artifacts. --config replaces the
 * built-in matrix with a JSON sweep file, and --format=json/csv dumps
 * every counter of every cell through the structured reporters.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "crypto/workload_registry.hh"

using namespace cassandra;
using uarch::Scheme;

int
main(int argc, char **argv)
{
    auto opts = bench::parseCli(argc, argv);

    core::ExperimentMatrix matrix;
    if (!bench::matrixFromConfig(opts, matrix)) {
        matrix.workloads =
            bench::selectWorkloads(bench::cryptoWorkloadNames(), opts);
        matrix.schemes = {Scheme::UnsafeBaseline, Scheme::Cassandra,
                          Scheme::CassandraStl, Scheme::Spt};
    }

    auto exp = bench::runMatrix(matrix, opts);
    if (bench::emitReport(exp, opts))
        return 0;

    uarch::CoreParams params;
    std::printf("Core (Table 3): %u-wide F/I/C, ROB %u, IQ %u, "
                "LQ/SQ %u/%u, LTAGE-class BPU,\n"
                "L1D %u KB / L1I %u KB / L2 %u KB / L3 %u MB, "
                "BTU 16x16 entries (1.74 KiB)\n\n",
                params.fetchWidth, params.robSize, params.iqSize,
                params.lqSize, params.sqSize,
                params.l1d.sizeBytes / 1024, params.l1i.sizeBytes / 1024,
                params.l2.sizeBytes / 1024,
                params.l3.sizeBytes / (1024 * 1024));

    std::printf("Figure 7: execution time normalized to the Unsafe "
                "Baseline (lower is better)\n\n");
    std::printf("%-22s %10s %10s %14s %8s\n", "Workload", "insts",
                "Cassandra", "Cassandra+STL", "SPT");
    bench::printRule(70);

    std::vector<double> g_cass, g_stl, g_spt;
    std::string last_suite;
    for (const std::string &name : matrix.workloads) {
        const auto *base = exp.find(name, Scheme::UnsafeBaseline);
        const auto *cass = exp.find(name, Scheme::Cassandra);
        const auto *stl = exp.find(name, Scheme::CassandraStl);
        const auto *spt = exp.find(name, Scheme::Spt);
        if (!base || !cass || !stl || !spt) {
            // A custom --config may drop schemes of the figure; the
            // structured reporters still cover those cells.
            std::printf("%-22s   (skipped: figure needs all four "
                        "schemes)\n",
                        name.c_str());
            continue;
        }
        if (base->suite != last_suite) {
            std::printf("-- %s --\n", base->suite.c_str());
            last_suite = base->suite;
        }
        double b = static_cast<double>(base->result.stats.cycles);
        double rc = cass->result.stats.cycles / b;
        double rs = stl->result.stats.cycles / b;
        double rp = spt->result.stats.cycles / b;
        g_cass.push_back(rc);
        g_stl.push_back(rs);
        g_spt.push_back(rp);
        std::printf("%-22s %10llu %10.4f %14.4f %8.4f\n", name.c_str(),
                    static_cast<unsigned long long>(
                        base->result.stats.instructions),
                    rc, rs, rp);
    }
    bench::printRule(70);
    std::printf("%-22s %10s %10.4f %14.4f %8.4f\n", "geomean", "",
                bench::geomean(g_cass), bench::geomean(g_stl),
                bench::geomean(g_spt));
    std::printf("\nPaper reference: Cassandra 0.9815 (1.85%% speedup), "
                "Cassandra+STL 0.9886, SPT 1.1207.\n"
                "Expected shape: Cassandra at or slightly below 1.0 "
                "everywhere, +STL marginally above Cassandra,\n"
                "SPT above 1.0 with load-heavy kernels (bignum, DES) "
                "hit hardest.\n");
    return 0;
}
