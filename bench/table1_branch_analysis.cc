/**
 * @file
 * Reproduces Table 1: branch analysis of the cryptographic programs.
 * For every workload it reports, over multi-target static branches,
 * the vanilla trace size (avg/max), the k-mers size (avg/max, trace +
 * pattern set) and the per-branch compression rate (avg/max).
 *
 * Analysis-only bench on the two-phase API: ExperimentRunner::analyze
 * runs Algorithm 2 for all selected workloads in parallel (exactly
 * once each), and the shared CLI adds --workloads/--suite/--threads
 * plus JSON/CSV emission of the per-workload aggregates.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>

#include "bench/bench_util.hh"
#include "core/tracegen.hh"
#include "crypto/workload_registry.hh"

using namespace cassandra;

namespace {

/** Table 1 aggregates of one workload. */
struct BranchSummary
{
    std::string workload;
    std::string suite;
    size_t branches = 0; ///< multi-target, replayable branches
    double vanillaAvg = 0, vanillaMax = 0;
    double kmersAvg = 0, kmersMax = 0;
    double rateAvg = 0, rateMax = 0;
};

BranchSummary
summarize(const std::string &name, const core::AnalyzedWorkload &aw)
{
    BranchSummary s;
    s.workload = name;
    s.suite = aw.workload().suite;
    double v_sum = 0, k_sum = 0, r_sum = 0;
    for (const auto *rec : aw.traces().multiTarget()) {
        if (rec->inputDependent || rec->kmersSize == 0)
            continue;
        s.branches++;
        v_sum += rec->vanillaSize;
        k_sum += rec->kmersSize;
        r_sum += rec->compressionRate();
        s.vanillaMax = std::max(s.vanillaMax, double(rec->vanillaSize));
        s.kmersMax = std::max(s.kmersMax, double(rec->kmersSize));
        s.rateMax = std::max(s.rateMax, rec->compressionRate());
    }
    if (s.branches) {
        s.vanillaAvg = v_sum / s.branches;
        s.kmersAvg = k_sum / s.branches;
        s.rateAvg = r_sum / s.branches;
    }
    return s;
}

void
writeJson(const std::vector<BranchSummary> &rows, std::ostream &os)
{
    os << "{\n  \"results\": [";
    bool first = true;
    for (const BranchSummary &s : rows) {
        if (!first)
            os << ",";
        first = false;
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "\n    {\"workload\": \"%s\", \"suite\": \"%s\", "
            "\"branches\": %zu, \"vanilla_avg\": %.4f, "
            "\"vanilla_max\": %.0f, \"kmers_avg\": %.4f, "
            "\"kmers_max\": %.0f, \"rate_avg\": %.4f, "
            "\"rate_max\": %.4f}",
            s.workload.c_str(), s.suite.c_str(), s.branches,
            s.vanillaAvg, s.vanillaMax, s.kmersAvg, s.kmersMax,
            s.rateAvg, s.rateMax);
        os << buf;
    }
    os << "\n  ]\n}\n";
}

void
writeTable(const std::vector<BranchSummary> &rows, std::ostream &os)
{
    char buf[256];
    auto emit = [&os, &buf](const BranchSummary &s) {
        std::snprintf(buf, sizeof(buf),
                      "%-22s %5zu | %12.1f %12.0f | %8.1f %8.0f | "
                      "%12.1f %14.1f\n",
                      s.workload.c_str(), s.branches, s.vanillaAvg,
                      s.vanillaMax, s.kmersAvg, s.kmersMax, s.rateAvg,
                      s.rateMax);
        os << buf;
    };
    const std::string rule(110, '-');
    os << "Table 1: Branch analysis of cryptographic programs\n"
       << "(per multi-target static branch; single-target branches "
          "excluded as in the paper)\n\n";
    std::snprintf(buf, sizeof(buf),
                  "%-22s %5s | %12s %12s | %8s %8s | %12s %14s\n",
                  "Program", "#br", "vanilla-avg", "vanilla-max",
                  "kmers-avg", "kmers-max", "rate-avg", "rate-max");
    os << buf << rule << "\n";

    std::string last_suite;
    BranchSummary all;
    all.workload = "All";
    double v_sum = 0, k_sum = 0, r_sum = 0;
    for (const BranchSummary &s : rows) {
        if (s.suite != last_suite) {
            os << "-- " << s.suite << " --\n";
            last_suite = s.suite;
        }
        emit(s);
        v_sum += s.vanillaAvg * s.branches;
        k_sum += s.kmersAvg * s.branches;
        r_sum += s.rateAvg * s.branches;
        all.branches += s.branches;
        all.vanillaMax = std::max(all.vanillaMax, s.vanillaMax);
        all.kmersMax = std::max(all.kmersMax, s.kmersMax);
        all.rateMax = std::max(all.rateMax, s.rateMax);
    }
    os << rule << "\n";
    if (all.branches) {
        all.suite.clear();
        all.vanillaAvg = v_sum / all.branches;
        all.kmersAvg = k_sum / all.branches;
        all.rateAvg = r_sum / all.branches;
        emit(all);
    }
    os << "\nPaper reference (x86 gem5 traces, full-size inputs): "
          "vanilla avg 637,425.5, k-mers avg 19.9,\n"
          "compression rate avg 163,370.7x. Our scaled inputs "
          "produce shorter vanilla traces but the same shape:\n"
          "k-mers sizes of a few entries per branch and "
          "compression rates that grow with the trace length.\n";
}

void
writeCsv(const std::vector<BranchSummary> &rows, std::ostream &os)
{
    os << "workload,suite,branches,vanilla_avg,vanilla_max,kmers_avg,"
          "kmers_max,rate_avg,rate_max\n";
    for (const BranchSummary &s : rows) {
        char buf[512];
        std::snprintf(buf, sizeof(buf),
                      "%s,%s,%zu,%.4f,%.0f,%.4f,%.0f,%.4f,%.4f\n",
                      s.workload.c_str(), s.suite.c_str(), s.branches,
                      s.vanillaAvg, s.vanillaMax, s.kmersAvg,
                      s.kmersMax, s.rateAvg, s.rateMax);
        os << buf;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseCli(argc, argv);

    // Analysis-only: a --config still selects workloads and the
    // artifact snapshot directory (schemes and configs in the file do
    // not apply here).
    core::ExperimentMatrix matrix;
    std::vector<std::string> names;
    if (bench::matrixFromConfig(opts, matrix))
        names = matrix.workloads;
    else
        names = bench::selectWorkloads(bench::cryptoWorkloadNames(),
                                       opts);

    std::vector<std::string> missing;
    core::ExperimentRunner runner(
        bench::makeArtifactCache(names, opts, missing),
        core::RunnerOptions{opts.threads});
    auto artifacts = runner.analyze(names);
    std::map<std::string, core::AnalyzedWorkload::Ptr> by_name;
    for (size_t i = 0; i < names.size(); i++)
        by_name[names[i]] = artifacts[i];
    bench::saveArtifacts(by_name, missing, opts);

    std::vector<BranchSummary> rows;
    for (size_t i = 0; i < names.size(); i++) {
        BranchSummary s = summarize(names[i], *artifacts[i]);
        if (s.branches)
            rows.push_back(std::move(s));
    }

    // One output stream for every format, honoring --out like the
    // other benches.
    std::ofstream file;
    std::ostream *os = &std::cout;
    if (!opts.out.empty()) {
        file.open(opts.out);
        if (!file) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         opts.out.c_str());
            return 1;
        }
        os = &file;
    }
    if (opts.format == "csv") {
        writeCsv(rows, *os);
        return 0;
    }
    if (opts.format == "json") {
        writeJson(rows, *os);
        return 0;
    }
    writeTable(rows, *os);
    return 0;
}
