/**
 * @file
 * Reproduces Table 1: branch analysis of the cryptographic programs.
 * For every workload it reports, over multi-target static branches,
 * the vanilla trace size (avg/max), the k-mers size (avg/max, trace +
 * pattern set) and the per-branch compression rate (avg/max).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/tracegen.hh"
#include "crypto/workloads.hh"

using namespace cassandra;

int
main()
{
    std::printf("Table 1: Branch analysis of cryptographic programs\n");
    std::printf("(per multi-target static branch; single-target "
                "branches excluded as in the paper)\n\n");
    std::printf("%-22s %5s | %12s %12s | %8s %8s | %12s %14s\n",
                "Program", "#br", "vanilla-avg", "vanilla-max",
                "kmers-avg", "kmers-max", "rate-avg", "rate-max");
    bench::printRule(110);

    std::string last_suite;
    double all_v = 0, all_k = 0, all_r = 0;
    double all_vmax = 0, all_kmax = 0, all_rmax = 0;
    size_t all_n = 0;

    for (const auto &w : crypto::allCryptoWorkloads()) {
        if (w.suite != last_suite) {
            std::printf("-- %s --\n", w.suite.c_str());
            last_suite = w.suite;
        }
        auto res = core::generateTraces(w);
        double v_sum = 0, k_sum = 0, r_sum = 0;
        double v_max = 0, k_max = 0, r_max = 0;
        size_t n = 0;
        for (const auto *rec : res.multiTarget()) {
            if (rec->inputDependent || rec->kmersSize == 0)
                continue;
            n++;
            v_sum += rec->vanillaSize;
            k_sum += rec->kmersSize;
            r_sum += rec->compressionRate();
            v_max = std::max(v_max, double(rec->vanillaSize));
            k_max = std::max(k_max, double(rec->kmersSize));
            r_max = std::max(r_max, rec->compressionRate());
        }
        if (n == 0)
            continue;
        std::printf("%-22s %5zu | %12.1f %12.0f | %8.1f %8.0f | "
                    "%12.1f %14.1f\n",
                    w.name.c_str(), n, v_sum / n, v_max, k_sum / n,
                    k_max, r_sum / n, r_max);
        all_v += v_sum;
        all_k += k_sum;
        all_r += r_sum;
        all_n += n;
        all_vmax = std::max(all_vmax, v_max);
        all_kmax = std::max(all_kmax, k_max);
        all_rmax = std::max(all_rmax, r_max);
    }
    bench::printRule(110);
    std::printf("%-22s %5zu | %12.1f %12.0f | %8.1f %8.0f | "
                "%12.1f %14.1f\n",
                "All", all_n, all_v / all_n, all_vmax, all_k / all_n,
                all_kmax, all_r / all_n, all_rmax);
    std::printf("\nPaper reference (x86 gem5 traces, full-size inputs): "
                "vanilla avg 637,425.5, k-mers avg 19.9,\n"
                "compression rate avg 163,370.7x. Our scaled inputs "
                "produce shorter vanilla traces but the same shape:\n"
                "k-mers sizes of a few entries per branch and "
                "compression rates that grow with the trace length.\n");
    return 0;
}
