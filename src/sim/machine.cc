#include "sim/machine.hh"

#include <cstring>

namespace cassandra::sim {

using ir::Inst;
using ir::Opcode;

Machine::Machine(ir::Program prog) : prog_(std::move(prog))
{
    reset();
}

void
Machine::reset()
{
    regs_.fill(0);
    mem_.clear();
    pc_ = prog_.entry;
    halted_ = false;
    observations.clear();
    setReg(ir::regSp, ir::Program::stackTop);
    if (!prog_.dataImage.empty())
        writeBytes(ir::Program::dataBase, prog_.dataImage.data(),
                   prog_.dataImage.size());
}

Machine::Page &
Machine::pageFor(uint64_t addr)
{
    auto &slot = mem_[addr >> pageBits];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

const Machine::Page *
Machine::pageForRead(uint64_t addr) const
{
    auto it = mem_.find(addr >> pageBits);
    return it == mem_.end() ? nullptr : it->second.get();
}

uint8_t
Machine::read8(uint64_t addr) const
{
    const Page *p = pageForRead(addr);
    return p ? (*p)[addr & (pageSize - 1)] : 0;
}

void
Machine::write8(uint64_t addr, uint8_t v)
{
    pageFor(addr)[addr & (pageSize - 1)] = v;
}

uint64_t
Machine::read(uint64_t addr, int bytes) const
{
    uint64_t v = 0;
    for (int i = 0; i < bytes; i++)
        v |= static_cast<uint64_t>(read8(addr + i)) << (8 * i);
    return v;
}

void
Machine::write(uint64_t addr, uint64_t v, int bytes)
{
    for (int i = 0; i < bytes; i++)
        write8(addr + i, static_cast<uint8_t>(v >> (8 * i)));
}

void
Machine::readBytes(uint64_t addr, void *out, size_t len) const
{
    auto *dst = static_cast<uint8_t *>(out);
    for (size_t i = 0; i < len; i++)
        dst[i] = read8(addr + i);
}

void
Machine::writeBytes(uint64_t addr, const void *in, size_t len)
{
    const auto *src = static_cast<const uint8_t *>(in);
    for (size_t i = 0; i < len; i++)
        write8(addr + i, src[i]);
}

bool
Machine::step()
{
    if (halted_)
        return false;
    if (!prog_.validPc(pc_))
        throw SimError("invalid PC 0x" + std::to_string(pc_));

    const Inst &inst = prog_.at(pc_);
    uint64_t cur_pc = pc_;
    uint64_t next_pc = pc_ + ir::instBytes;
    uint64_t mem_addr = 0;
    bool crypto = prog_.isCryptoPc(cur_pc);

    uint64_t a = regs_[inst.rs1];
    uint64_t b = regs_[inst.rs2];
    int64_t sa = static_cast<int64_t>(a);
    int64_t sb = static_cast<int64_t>(b);
    uint64_t imm = static_cast<uint64_t>(inst.imm);

    auto set_rd = [&](uint64_t v) { setReg(inst.rd, v); };

    switch (inst.op) {
      case Opcode::Add: set_rd(a + b); break;
      case Opcode::Sub: set_rd(a - b); break;
      case Opcode::And: set_rd(a & b); break;
      case Opcode::Or: set_rd(a | b); break;
      case Opcode::Xor: set_rd(a ^ b); break;
      case Opcode::Shl: set_rd(a << (b & 63)); break;
      case Opcode::Shr: set_rd(a >> (b & 63)); break;
      case Opcode::Sar: set_rd(static_cast<uint64_t>(sa >> (b & 63))); break;
      case Opcode::Rotl:
      {
        unsigned s = b & 63;
        set_rd(s ? (a << s) | (a >> (64 - s)) : a);
        break;
      }
      case Opcode::Rotr:
      {
        unsigned s = b & 63;
        set_rd(s ? (a >> s) | (a << (64 - s)) : a);
        break;
      }
      case Opcode::Mul: set_rd(a * b); break;
      case Opcode::Mulh:
        set_rd(static_cast<uint64_t>(
            (static_cast<__int128>(sa) * static_cast<__int128>(sb)) >> 64));
        break;
      case Opcode::Mulhu:
        set_rd(static_cast<uint64_t>(
            (static_cast<unsigned __int128>(a) *
             static_cast<unsigned __int128>(b)) >> 64));
        break;
      case Opcode::Slt: set_rd(sa < sb ? 1 : 0); break;
      case Opcode::Sltu: set_rd(a < b ? 1 : 0); break;
      case Opcode::Addw: set_rd((a + b) & 0xffffffffull); break;
      case Opcode::Subw: set_rd((a - b) & 0xffffffffull); break;
      case Opcode::Mulw: set_rd((a * b) & 0xffffffffull); break;

      case Opcode::Addi: set_rd(a + imm); break;
      case Opcode::Andi: set_rd(a & imm); break;
      case Opcode::Ori: set_rd(a | imm); break;
      case Opcode::Xori: set_rd(a ^ imm); break;
      case Opcode::Shli: set_rd(a << (imm & 63)); break;
      case Opcode::Shri: set_rd(a >> (imm & 63)); break;
      case Opcode::Sari:
        set_rd(static_cast<uint64_t>(sa >> (imm & 63)));
        break;
      case Opcode::Rotli:
      {
        unsigned s = imm & 63;
        set_rd(s ? (a << s) | (a >> (64 - s)) : a);
        break;
      }
      case Opcode::Slti:
        set_rd(sa < static_cast<int64_t>(imm) ? 1 : 0);
        break;
      case Opcode::Sltiu: set_rd(a < imm ? 1 : 0); break;
      case Opcode::Addiw: set_rd((a + imm) & 0xffffffffull); break;
      case Opcode::Rotlwi:
      {
        uint32_t w = static_cast<uint32_t>(a);
        unsigned s = imm & 31;
        set_rd(s ? ((w << s) | (w >> (32 - s))) : w);
        break;
      }

      case Opcode::Li: set_rd(imm); break;
      case Opcode::Cmovnz:
        if (a != 0)
            set_rd(b);
        break;

      case Opcode::Ld: case Opcode::Lw: case Opcode::Lh: case Opcode::Lb:
        mem_addr = a + imm;
        set_rd(read(mem_addr, inst.memBytes()));
        if (recordObservations)
            observations.push_back({ObsKind::Load, mem_addr, crypto});
        break;
      case Opcode::Sd: case Opcode::Sw: case Opcode::Sh: case Opcode::Sb:
        mem_addr = a + imm;
        write(mem_addr, b, inst.memBytes());
        if (recordObservations)
            observations.push_back({ObsKind::Store, mem_addr, crypto});
        break;

      case Opcode::Beq: if (a == b) next_pc = imm; break;
      case Opcode::Bne: if (a != b) next_pc = imm; break;
      case Opcode::Blt: if (sa < sb) next_pc = imm; break;
      case Opcode::Bge: if (sa >= sb) next_pc = imm; break;
      case Opcode::Bltu: if (a < b) next_pc = imm; break;
      case Opcode::Bgeu: if (a >= b) next_pc = imm; break;

      case Opcode::Jal:
        set_rd(cur_pc + ir::instBytes);
        next_pc = imm;
        break;
      case Opcode::Jalr:
        next_pc = a + imm;
        set_rd(cur_pc + ir::instBytes);
        break;
      case Opcode::Ret:
        next_pc = a;
        break;

      case Opcode::Nop: break;
      case Opcode::Halt:
        halted_ = true;
        break;
    }

    if (inst.isControlFlow()) {
        if (branchProbe)
            branchProbe(cur_pc, next_pc, inst);
        if (branchBatchProbe) {
            BatchProbe &b = *branchBatchProbe;
            b.pc[b.size] = cur_pc;
            b.nextPc[b.size] = next_pc;
            if (++b.size == b.cap)
                b.full();
        }
        if (recordObservations) {
            ObsKind kind = ObsKind::Pc;
            switch (inst.execClass()) {
              case ir::ExecClass::DirectJump:
                kind = inst.isCall() ? ObsKind::Call : ObsKind::Pc;
                break;
              case ir::ExecClass::IndirectJump: kind = ObsKind::Jump; break;
              case ir::ExecClass::Return: kind = ObsKind::Ret; break;
              default: kind = ObsKind::Pc; break;
            }
            observations.push_back({kind, next_pc, crypto});
        }
    }

    if (instProbe)
        instProbe({cur_pc, mem_addr, next_pc});
    if (opBatchProbe) {
        BatchProbe &b = *opBatchProbe;
        b.pc[b.size] = cur_pc;
        b.memAddr[b.size] = mem_addr;
        b.nextPc[b.size] = next_pc;
        if (++b.size == b.cap)
            b.full();
    }

    pc_ = next_pc;
    return !halted_;
}

RunResult
Machine::run(uint64_t max_insts)
{
    RunResult res;
    while (res.instCount < max_insts) {
        bool more = step();
        res.instCount++;
        if (!more) {
            res.halted = true;
            break;
        }
    }
    return res;
}

} // namespace cassandra::sim
