/**
 * @file
 * Functional (architectural) simulator for the Cassandra IR.
 *
 * The Machine executes programs under the sequential execution model —
 * exactly the J.K^seq semantics the paper's constant-time contract is
 * defined over. It exposes three kinds of instrumentation:
 *
 *  - a branch probe (used by the branch-trace collection step B of
 *    Algorithm 2, standing in for Intel Pin / gem5 tracing),
 *  - an instruction probe emitting the full dynamic instruction stream
 *    (used to drive the trace-driven OoO timing model), and
 *  - an observation recorder producing the contract trace of the
 *    J.K^seq_ct leakage model (control flow + memory addresses, tagged
 *    with the crypto bit), used by the Appendix A contract checker.
 */

#ifndef CASSANDRA_SIM_MACHINE_HH
#define CASSANDRA_SIM_MACHINE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/program.hh"

namespace cassandra::sim {

/** Error thrown on invalid execution (bad PC, runaway, ...). */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &what)
        : std::runtime_error("sim: " + what)
    {}
};

/** One architecturally executed instruction, as seen by the probes. */
struct DynInst
{
    uint64_t pc = 0;
    /** Effective address for loads/stores; 0 otherwise. */
    uint64_t memAddr = 0;
    /** Actual next PC (branch target or fall-through). */
    uint64_t nextPc = 0;
};

/** Kind of a contract-level observation (paper Appendix A). */
enum class ObsKind : uint8_t
{
    Pc,    ///< pc n    — conditional branch outcome
    Call,  ///< call f  — call target
    Ret,   ///< ret n   — return target
    Jump,  ///< indirect jump target
    Load,  ///< load n  — load address
    Store, ///< store n — store address
};

/** A contract observation tau@t: kind, value, crypto tag. */
struct Obs
{
    ObsKind kind;
    uint64_t value;
    bool crypto;

    bool
    operator==(const Obs &o) const
    {
        return kind == o.kind && value == o.value && crypto == o.crypto;
    }
};

/** Result of Machine::run(). */
struct RunResult
{
    uint64_t instCount = 0;
    bool halted = false;
};

/** The architectural machine: registers, paged memory, and a PC. */
class Machine
{
  public:
    /** Default dynamic instruction budget for run(). */
    static constexpr uint64_t defaultMaxInsts = 1ull << 31;

    /** The machine keeps its own copy of the program. */
    explicit Machine(ir::Program prog);

    /** Reset registers, PC and memory to the program's initial image. */
    void reset();

    uint64_t reg(ir::RegId r) const { return regs_[r]; }
    void
    setReg(ir::RegId r, uint64_t v)
    {
        if (r != ir::regZero)
            regs_[r] = v;
    }
    uint64_t pc() const { return pc_; }

    /** Argument registers a0..a7. */
    void setArg(int i, uint64_t v) { setReg(ir::regA0 + i, v); }
    uint64_t arg(int i) const { return regs_[ir::regA0 + i]; }

    // Byte-granularity memory interface (little-endian).
    uint8_t read8(uint64_t addr) const;
    void write8(uint64_t addr, uint8_t v);
    uint64_t read(uint64_t addr, int bytes) const;
    void write(uint64_t addr, uint64_t v, int bytes);
    uint64_t read64(uint64_t addr) const { return read(addr, 8); }
    uint32_t
    read32(uint64_t addr) const
    {
        return static_cast<uint32_t>(read(addr, 4));
    }
    void write64(uint64_t addr, uint64_t v) { write(addr, v, 8); }
    void write32(uint64_t addr, uint32_t v) { write(addr, v, 4); }
    void readBytes(uint64_t addr, void *out, size_t len) const;
    void writeBytes(uint64_t addr, const void *in, size_t len);

    /**
     * Execute until Halt or until max_insts instructions retire.
     * @return instruction count and whether Halt was reached.
     */
    RunResult run(uint64_t max_insts = defaultMaxInsts);

    /** Execute exactly one instruction; returns false on Halt. */
    bool step();

    /** Called for every executed control-flow instruction. */
    std::function<void(uint64_t pc, uint64_t target, const ir::Inst &)>
        branchProbe;
    /** Called for every executed instruction. */
    std::function<void(const DynInst &)> instProbe;

    /**
     * SoA batch probe: the fused analysis pipeline's low-overhead
     * counterpart of instProbe/branchProbe. The machine writes
     * straight into the caller-provided columns (three stores and a
     * size bump per event — no per-op std::function dispatch) and
     * calls `full` once `size` reaches `cap`; `full` must leave the
     * probe with size < cap (typically by handing the span to
     * consumers and resetting size, or swapping in fresh columns).
     * The caller drains any partial tail after run() returns. Fires
     * at exactly the instProbe/branchProbe call sites, so the event
     * sequence is identical to the scalar probes by construction.
     */
    struct BatchProbe
    {
        uint64_t *pc = nullptr;
        uint64_t *memAddr = nullptr; ///< unused by the branch probe
        uint64_t *nextPc = nullptr;  ///< branch probe: the target
        size_t size = 0;
        size_t cap = 0;
        std::function<void()> full;
    };

    /** Every executed instruction ({pc, memAddr, nextPc}). */
    BatchProbe *opBatchProbe = nullptr;
    /** Every executed control-flow instruction ({pc, -, target}). */
    BatchProbe *branchBatchProbe = nullptr;

    /** When true, contract observations are appended to observations. */
    bool recordObservations = false;
    std::vector<Obs> observations;

    const ir::Program &program() const { return prog_; }

  private:
    static constexpr uint64_t pageBits = 12;
    static constexpr uint64_t pageSize = 1ull << pageBits;
    using Page = std::array<uint8_t, pageSize>;

    Page &pageFor(uint64_t addr);
    const Page *pageForRead(uint64_t addr) const;

    const ir::Program prog_;
    std::array<uint64_t, ir::numRegs> regs_{};
    uint64_t pc_ = 0;
    bool halted_ = false;
    std::unordered_map<uint64_t, std::unique_ptr<Page>> mem_;
};

} // namespace cassandra::sim

#endif // CASSANDRA_SIM_MACHINE_HH
