/**
 * @file
 * The two-phase simulation API: analyze once, simulate many.
 *
 * Phase 1 — analysis. AnalyzedWorkload::analyze(workload) records the
 * dynamic timing trace of the evaluation input exactly once and
 * prepares the remaining analyses demand-driven: the Algorithm 2 trace
 * generation (k-mers compression + trace image) and the ProSpeCT taint
 * pre-pass each run at most once, on the first consumer that actually
 * needs them — a baseline/SPT-only sweep never constructs a trace
 * image at all. Which phases ran is observable through the per-phase
 * counters of analysisPhaseRuns(). The result is an immutable,
 * thread-safe artifact held by shared_ptr, so any number of simulation
 * sessions — across threads — share one copy. Artifacts serialize
 * through core/serialize (saveAnalyzedWorkload / loadAnalyzedWorkload),
 * so repeated sweeps can skip analysis entirely.
 *
 * Memory: the taint pre-pass produces a 1 bit/op TaintBitmap (not a
 * duplicated annotated trace), and with AnalyzeOptions::traceMode ==
 * TraceMode::Stream the timing trace itself is spilled to a chunked
 * trace file at record time and replayed from disk through a
 * TraceCursor, so peak memory stays at one frame regardless of trace
 * length. Cycle results are bit-identical across modes.
 *
 * Phase 2 — simulation. A Simulation is a lightweight session over
 * one artifact that runs any number of SimConfigs; each run builds
 * its own OooCore, so results are deterministic and bit-identical to
 * a run over a freshly analyzed artifact:
 *
 *   auto aw = core::AnalyzedWorkload::analyze(
 *       crypto::WorkloadRegistry::global().make("ChaCha20_ct"));
 *   core::Simulation sim(aw);
 *   auto base = sim.run(uarch::Scheme::UnsafeBaseline);
 *   auto cass = sim.run(uarch::Scheme::Cassandra);
 *
 * AnalysisCache memoizes artifacts by registry name with
 * single-flight semantics: concurrent get() calls for one name block
 * on the same analysis, so a workload is analyzed exactly once per
 * cache no matter how many matrix cells want it.
 */

#ifndef CASSANDRA_CORE_ANALYZED_WORKLOAD_HH
#define CASSANDRA_CORE_ANALYZED_WORKLOAD_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/analysis_pipeline.hh"
#include "core/sim_config.hh"
#include "core/tracegen.hh"
#include "core/workload.hh"
#include "uarch/pipeline.hh"

namespace cassandra::core {

/** Per-level cache activity snapshot. */
struct CacheActivity
{
    uint64_t l1iAccesses = 0, l1iMisses = 0;
    uint64_t l1dAccesses = 0, l1dMisses = 0;
    uint64_t l2Accesses = 0, l2Misses = 0;
    uint64_t l3Accesses = 0, l3Misses = 0;
};

/** Everything measured in one timing run. */
struct ExperimentResult
{
    uarch::CoreStats stats;
    btu::BtuStats btu; ///< zeroed for non-BTU schemes
    uarch::BpuStats bpu;
    CacheActivity caches;
};

/** The independent analyses an artifact can hold, as mask bits. */
enum AnalysisPhase : unsigned
{
    /** Dynamic timing trace of the evaluation input (always runs). */
    PhaseTimingTrace = 1u << 0,
    /** Algorithm 2: k-mers compression + trace image (Cassandra). */
    PhaseTraceImage = 1u << 1,
    /** ProSpeCT taint pre-pass -> TaintBitmap (secret workloads). */
    PhaseTaint = 1u << 2,
};

using AnalysisPhaseMask = unsigned;

constexpr AnalysisPhaseMask allAnalysisPhases =
    PhaseTimingTrace | PhaseTraceImage | PhaseTaint;

/** Process-wide per-phase analysis counters (see analysisPhaseRuns). */
struct AnalysisPhaseRuns
{
    uint64_t timingTrace = 0;
    uint64_t traceImage = 0; ///< Algorithm 2 runs
    uint64_t taint = 0;      ///< taint pre-passes over secret workloads
};

/**
 * Analysis execution scheme. Fused runs every pending phase of one
 * ensurePhases() request in a single batch-pipeline machine pass
 * (core/analysis_pipeline); Reference keeps the serial per-phase
 * passes (scalar probes, count-then-record) that the fused path is
 * byte-compared against. Auto resolves to Fused unless the
 * CASSANDRA_ANALYSIS_FUSION environment variable says 0/off/reference.
 */
enum class AnalysisFusion
{
    Auto,
    Fused,
    Reference,
};

/** Knobs of one analysis (phase eagerness, trace storage). */
struct AnalyzeOptions
{
    KmersParams kmers;
    /**
     * Phases to run eagerly at analyze() time (concurrently across
     * workloads under the ExperimentRunner). Phases not listed —
     * including the timing-trace recording itself — run on demand,
     * lazily and exactly once, when a consumer first needs them. The
     * default is fully demand-driven: a sweep served entirely from
     * the result store never records a trace.
     */
    AnalysisPhaseMask phases = 0;
    /** Whole: in-memory trace. Stream: spill to a chunked file. */
    TraceMode traceMode = TraceMode::Whole;
    /** Stream-mode trace directory; empty = defaultTraceStreamDir(). */
    std::string streamDir;
    /** Stream-file encoding: raw CASSTF1 or delta-compressed CASSTF2
     * (the default; replay is bit-identical either way). */
    TraceCompression compression = TraceCompression::Delta;
    /** Fused single-pass analysis vs. the serial reference passes
     * (results are byte-identical; this only picks the machinery). */
    AnalysisFusion fusion = AnalysisFusion::Auto;
};

/** Immutable analysis artifact: workload + traces, shareable. */
class AnalyzedWorkload
{
  public:
    using Ptr = std::shared_ptr<const AnalyzedWorkload>;

    /**
     * Phase 1: build the analysis artifact and eagerly run the phases
     * in options.phases; everything else — the timing-trace recording
     * included — is computed demand-driven on first use. Counts one
     * analysisRuns() tick (recording ticks analysisPhaseRuns() when it
     * actually happens).
     */
    static Ptr analyze(Workload workload, const AnalyzeOptions &options);

    /** Whole-mode analysis with demand-driven image/taint phases. */
    static Ptr analyze(Workload workload, const KmersParams &params = {});

    /**
     * Rebuild an artifact from precomputed parts (the deserialization
     * path, trace image included). The timing trace must already be
     * relinked against workload.program; the taint pre-pass is
     * recomputed on demand (it is deterministic). Does not count as an
     * analysis run.
     */
    static Ptr fromParts(Workload workload, TraceGenResult traces,
                         uarch::TimingTrace trace);

    /** fromParts for a snapshot without a trace image: Algorithm 2
     * stays demand-driven on the rebuilt artifact. */
    static Ptr fromParts(Workload workload, uarch::TimingTrace trace);

    /**
     * Rebuild a *streamed* artifact around an existing trace stream
     * file (the stream-aware deserialization path): no op is ever
     * materialized in memory — consumers replay the file through
     * openOpSource(). The artifact takes ownership of the file and
     * deletes it with the last reference, exactly like a freshly
     * streamed analysis. The file's embedded fingerprint is checked
     * against workload.program on first open (TraceCursor).
     */
    static Ptr fromStreamParts(Workload workload, std::string streamPath,
                               uint64_t numOps);

    /** fromStreamParts with a deserialized Algorithm 2 image adopted
     * verbatim (no Algorithm 2 run, no counter tick). */
    static Ptr fromStreamParts(Workload workload, TraceGenResult traces,
                               std::string streamPath, uint64_t numOps);

    /** Streamed artifacts own their trace file: it is deleted here
     * (open TraceCursors keep reading via their descriptor/mapping,
     * but do not outlive the artifact you got them from). */
    ~AnalyzedWorkload();

    const Workload &workload() const { return workload_; }

    /**
     * Algorithm 2 output: trace image, branch records, timings.
     * Demand-driven — the first call runs Algorithm 2 (thread-safe,
     * exactly once) unless the phase already ran.
     */
    const TraceGenResult &traces() const;

    /** True if the Algorithm 2 phase has run (no side effects). */
    bool hasTraceImage() const
    {
        return imageReady_.load(std::memory_order_acquire);
    }

    /**
     * ProSpeCT per-op taint flags at 1 bit/op. Demand-driven like
     * traces(); empty (all clear) when the workload annotates no
     * secret regions.
     */
    const uarch::TaintBitmap &taintBitmap() const;

    /** True if the taint pre-pass has run (no side effects). */
    bool hasTaintBitmap() const
    {
        return taintReady_.load(std::memory_order_acquire);
    }

    /** Run every phase of `phases` that has not run yet. */
    void ensurePhases(AnalysisPhaseMask phases) const;

    /** Storage mode of the timing trace. */
    TraceMode traceMode() const { return traceMode_; }

    /** True when the trace lives in a stream file, not in memory. */
    bool streamed() const { return traceMode_ == TraceMode::Stream; }

    /** Stream-mode trace file path (empty in whole mode). */
    const std::string &streamPath() const { return streamPath_; }

    /** Dynamic op count of the timing trace (both modes). Triggers
     * the recording phase if it has not run yet. */
    uint64_t numOps() const;

    /** True if the timing trace has been recorded (no side effects). */
    bool hasTimingTrace() const
    {
        return traceReady_.load(std::memory_order_acquire);
    }

    /**
     * Dynamic instruction stream of the evaluation input.
     * @throws std::logic_error for streamed artifacts, which hold no
     *         in-memory trace — iterate openOpSource() instead.
     */
    const uarch::TimingTrace &timingTrace() const;

    /**
     * Iterate the timing trace: an in-memory span in whole mode, a
     * TraceCursor over the stream file in stream mode. Each call
     * returns an independent forward-only source.
     */
    std::unique_ptr<uarch::TimingOpSource> openOpSource() const;

    /** Functional run with output verification (evaluation input). */
    bool verifyOutput() const;

    /**
     * Process-wide count of workload analyses performed through
     * analyze(). The analyze-once guarantee of AnalysisCache and
     * ExperimentRunner is observable (and tested) through this.
     */
    static uint64_t analysisRuns();

    /**
     * Process-wide per-phase counters: how many timing-trace
     * recordings, Algorithm 2 runs and taint pre-passes happened.
     * Baseline/SPT-only sweeps leave traceImage untouched.
     */
    static AnalysisPhaseRuns analysisPhaseRuns();

  private:
    AnalyzedWorkload(Workload workload, KmersParams kmers,
                     TraceMode mode, uarch::TimingTrace trace,
                     std::string streamPath, uint64_t numOps);
    /** Deferred-recording constructor: the trace (whole or streamed)
     * is recorded by ensureTrace() on first use. */
    AnalyzedWorkload(Workload workload, const AnalyzeOptions &options,
                     std::string streamPath);

    /** Record the timing trace if it has not been recorded yet
     * (thread-safe, exactly once). Whole mode also materializes the
     * shared SoA mirror in the same pass. */
    void ensureTrace() const;

    /**
     * ensureTrace() plus fusion: when the trace has not been recorded
     * yet and fused analysis is enabled, phases of `extra` that can
     * ride the recording machine run (the taint walk; the stream
     * writer rides unconditionally) are computed by the same single
     * pass instead of a pass each.
     */
    void ensureTraceWith(AnalysisPhaseMask extra) const;

    /** Resolved fusion scheme (options + environment). */
    bool fusionEnabled() const;

    Workload workload_;
    KmersParams kmers_;
    AnalysisFusion fusion_ = AnalysisFusion::Auto;
    TraceMode traceMode_ = TraceMode::Whole;
    TraceCompression streamCompression_ = TraceCompression::Delta;
    mutable uarch::TimingTrace trace_; ///< whole mode (empty streamed)
    std::string streamPath_;           ///< stream mode
    mutable uint64_t numOps_ = 0;
    mutable std::once_flag traceOnce_;
    mutable std::atomic<bool> traceReady_{false};

    // Demand-driven phases: logically part of the immutable value,
    // computed at most once behind call_once.
    mutable std::once_flag imageOnce_;
    mutable TraceGenResult traces_;
    mutable std::atomic<bool> imageReady_{false};
    mutable std::once_flag taintOnce_;
    mutable uarch::TaintBitmap taint_;
    mutable std::atomic<bool> taintReady_{false};

    // Whole mode only: SoA mirror of trace_ shared by every
    // TraceSpanSource this artifact hands out, so a trace replayed by
    // many matrix cells is transposed once, not once per run (and not
    // at all when recording and mirroring fuse in ensureTrace).
    mutable std::once_flag soaOnce_;
    mutable uarch::OpBatchStorage soaMirror_;
    mutable std::atomic<bool> soaReady_{false};

    // Fused whole mode: the retained pipeline chunks ARE the trace
    // storage (SoA, produced by the single recording pass with no
    // pre-counting run); every ChunkSpanSource serves views into them.
    // trace_ stays empty until a caller demands the AoS form.
    mutable std::vector<AnalysisChunk> chunks_;
    mutable std::once_flag aosOnce_; ///< lazy trace_ from chunks_
};

/**
 * Phase 2: a simulation session over one shared artifact. Stateless
 * apart from the artifact handle — run() is const and thread-safe,
 * and every run is bit-identical for the same config, in either trace
 * mode.
 */
class Simulation
{
  public:
    explicit Simulation(AnalyzedWorkload::Ptr artifact);

    const AnalyzedWorkload &artifact() const { return *artifact_; }

    /** Run the timing model under a full configuration. */
    ExperimentResult run(const SimConfig &config) const;

    /** Run under a scheme with default core/BTU parameters. */
    ExperimentResult run(uarch::Scheme scheme) const;

  private:
    AnalyzedWorkload::Ptr artifact_;
};

/**
 * Thread-safe, single-flight artifact cache keyed by workload name
 * (case-insensitive, matching WorkloadRegistry lookup). Distinct
 * names analyze concurrently; concurrent requests for one name share
 * a single analysis.
 */
class AnalysisCache
{
  public:
    using Resolver = std::function<Workload(const std::string &)>;

    explicit AnalysisCache(Resolver resolver,
                           AnalyzeOptions options = {});

    /**
     * The artifact for a named workload, analyzing it on first
     * request. Blocks while another thread analyzes the same name;
     * analysis failures propagate to every waiter. `phases` (merged
     * with the cache's default phases) are guaranteed to have run on
     * the returned artifact; `mode` and `compression` override the
     * cache's trace mode/stream encoding for a first-request analysis
     * (cached artifacts keep the storage they were analyzed with —
     * results are identical either way).
     */
    AnalyzedWorkload::Ptr get(const std::string &name,
                              AnalysisPhaseMask phases, TraceMode mode,
                              TraceCompression compression) const;
    AnalyzedWorkload::Ptr get(const std::string &name,
                              AnalysisPhaseMask phases,
                              TraceMode mode) const;
    AnalyzedWorkload::Ptr get(const std::string &name,
                              AnalysisPhaseMask phases) const;
    AnalyzedWorkload::Ptr get(const std::string &name) const;

    /** Preload an artifact (e.g. deserialized) under a name. */
    void put(const std::string &name, AnalyzedWorkload::Ptr artifact);

    /** True if get(name) would not trigger a fresh analysis. */
    bool contains(const std::string &name) const;

    /** Number of cached (or in-flight) artifacts. */
    size_t size() const;

    /** The analysis options first-request analyses run with. */
    const AnalyzeOptions &options() const { return options_; }

  private:
    static std::string key(const std::string &name);

    Resolver resolver_;
    AnalyzeOptions options_;
    mutable std::mutex mutex_;
    mutable std::map<std::string,
                     std::shared_future<AnalyzedWorkload::Ptr>>
        entries_;
};

} // namespace cassandra::core

#endif // CASSANDRA_CORE_ANALYZED_WORKLOAD_HH
