/**
 * @file
 * The two-phase simulation API: analyze once, simulate many.
 *
 * Phase 1 — analysis. AnalyzedWorkload::analyze(workload) performs
 * every config-independent step exactly once: the Algorithm 2 trace
 * generation (k-mers compression + trace image), the dynamic timing
 * trace of the evaluation input, and the ProSpeCT taint pre-pass when
 * the workload annotates secret regions. The result is an immutable,
 * thread-safe artifact held by shared_ptr, so any number of
 * simulation sessions — across threads — share one copy. Artifacts
 * serialize through core/serialize (saveAnalyzedWorkload /
 * loadAnalyzedWorkload), so repeated sweeps can skip analysis
 * entirely.
 *
 * Phase 2 — simulation. A Simulation is a lightweight session over
 * one artifact that runs any number of SimConfigs; each run builds
 * its own OooCore, so results are deterministic and bit-identical to
 * a fresh end-to-end System run:
 *
 *   auto aw = core::AnalyzedWorkload::analyze(
 *       crypto::WorkloadRegistry::global().make("ChaCha20_ct"));
 *   core::Simulation sim(aw);
 *   auto base = sim.run(uarch::Scheme::UnsafeBaseline);
 *   auto cass = sim.run(uarch::Scheme::Cassandra);
 *
 * AnalysisCache memoizes artifacts by registry name with
 * single-flight semantics: concurrent get() calls for one name block
 * on the same analysis, so a workload is analyzed exactly once per
 * cache no matter how many matrix cells want it.
 */

#ifndef CASSANDRA_CORE_ANALYZED_WORKLOAD_HH
#define CASSANDRA_CORE_ANALYZED_WORKLOAD_HH

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/sim_config.hh"
#include "core/tracegen.hh"
#include "core/workload.hh"
#include "uarch/pipeline.hh"

namespace cassandra::core {

/** Per-level cache activity snapshot. */
struct CacheActivity
{
    uint64_t l1iAccesses = 0, l1iMisses = 0;
    uint64_t l1dAccesses = 0, l1dMisses = 0;
    uint64_t l2Accesses = 0, l2Misses = 0;
    uint64_t l3Accesses = 0, l3Misses = 0;
};

/** Everything measured in one timing run. */
struct ExperimentResult
{
    uarch::CoreStats stats;
    btu::BtuStats btu; ///< zeroed for non-BTU schemes
    uarch::BpuStats bpu;
    CacheActivity caches;
};

/** Immutable analysis artifact: workload + traces, shareable. */
class AnalyzedWorkload
{
  public:
    using Ptr = std::shared_ptr<const AnalyzedWorkload>;

    /**
     * Phase 1: run Algorithm 2, record the evaluation-input timing
     * trace and precompute the taint-annotated variant. Counts one
     * analysisRuns() tick.
     */
    static Ptr analyze(Workload workload, const KmersParams &params = {});

    /**
     * Rebuild an artifact from precomputed parts (the deserialization
     * path). The timing trace must already be relinked against
     * workload.program; the taint pre-pass is recomputed (it is
     * deterministic). Does not count as an analysis run.
     */
    static Ptr fromParts(Workload workload, TraceGenResult traces,
                         uarch::TimingTrace trace);

    const Workload &workload() const { return workload_; }

    /** Algorithm 2 output: trace image, branch records, timings. */
    const TraceGenResult &traces() const { return traces_; }

    /** Dynamic instruction stream of the evaluation input. */
    const uarch::TimingTrace &timingTrace() const { return trace_; }

    /**
     * Taint-annotated timing trace for the ProSpeCT schemes; aliases
     * timingTrace() when the workload has no secret regions.
     */
    const uarch::TimingTrace &taintedTrace() const
    {
        return tainted_.empty() ? trace_ : tainted_;
    }

    /** Functional run with output verification (evaluation input). */
    bool verifyOutput() const;

    /**
     * Process-wide count of Algorithm 2 analyses performed through
     * analyze(). The analyze-once guarantee of AnalysisCache and
     * ExperimentRunner is observable (and tested) through this.
     */
    static uint64_t analysisRuns();

  private:
    AnalyzedWorkload(Workload workload, TraceGenResult traces,
                     uarch::TimingTrace trace);

    Workload workload_;
    TraceGenResult traces_;
    uarch::TimingTrace trace_;
    uarch::TimingTrace tainted_; ///< empty when no secret regions
};

/**
 * Phase 2: a simulation session over one shared artifact. Stateless
 * apart from the artifact handle — run() is const and thread-safe,
 * and every run is bit-identical to a fresh System run of the same
 * config.
 */
class Simulation
{
  public:
    explicit Simulation(AnalyzedWorkload::Ptr artifact);

    const AnalyzedWorkload &artifact() const { return *artifact_; }

    /** Run the timing model under a full configuration. */
    ExperimentResult run(const SimConfig &config) const;

    /** Run under a scheme with default core/BTU parameters. */
    ExperimentResult run(uarch::Scheme scheme) const;

  private:
    AnalyzedWorkload::Ptr artifact_;
};

/**
 * Thread-safe, single-flight artifact cache keyed by workload name
 * (case-insensitive, matching WorkloadRegistry lookup). Distinct
 * names analyze concurrently; concurrent requests for one name share
 * a single analysis.
 */
class AnalysisCache
{
  public:
    using Resolver = std::function<Workload(const std::string &)>;

    explicit AnalysisCache(Resolver resolver);

    /**
     * The artifact for a named workload, analyzing it on first
     * request. Blocks while another thread analyzes the same name;
     * analysis failures propagate to every waiter.
     */
    AnalyzedWorkload::Ptr get(const std::string &name) const;

    /** Preload an artifact (e.g. deserialized) under a name. */
    void put(const std::string &name, AnalyzedWorkload::Ptr artifact);

    /** True if get(name) would not trigger a fresh analysis. */
    bool contains(const std::string &name) const;

    /** Number of cached (or in-flight) artifacts. */
    size_t size() const;

  private:
    static std::string key(const std::string &name);

    Resolver resolver_;
    mutable std::mutex mutex_;
    mutable std::map<std::string,
                     std::shared_future<AnalyzedWorkload::Ptr>>
        entries_;
};

} // namespace cassandra::core

#endif // CASSANDRA_CORE_ANALYZED_WORKLOAD_HH
