/**
 * @file
 * Remote shard dispatch over the content-addressed artifact store.
 *
 * RemoteShardExecutor is the third core::CellExecutor backend. Where
 * SubprocessShardExecutor hands shard manifests to fork/exec'd
 * children through a private scratch directory, the remote executor
 * publishes the same CASSSM1 manifests (and CASSAW4 snapshots) into a
 * shared ArtifactStore drop box and lets *agents* — independent
 * `run_experiment --agent --inbox=DIR` processes, on this host or any
 * host that can see the box — claim tasks, execute them and publish
 * CASSCR1 result sets back:
 *
 *   coordinator                      drop box              agents
 *   ----------                       --------              ------
 *   publishArtifactOnce(.aw) ---->   artifacts/
 *   publishTask(.sm)         ---->   tasks/inbox/   ---->  claimTask
 *                                    tasks/claimed/        execute
 *   poll results             <----   tasks/outbox/  <----  publishResult
 *
 * Differences from the subprocess backend that matter to callers:
 *
 *  - Snapshots are content-addressed (workload fingerprint + CASSAW
 *    version), so across runs, sweeps and coordinators each distinct
 *    workload uploads exactly once (ArtifactStore::Stats proves it).
 *  - Manifests carry store *keys*, not filesystem paths; agents
 *    resolve them through checksum-validated fetches and rehydrate
 *    trace streams into their own scratch.
 *  - Failure handling is deadline-based: a task with no result after
 *    Options::taskTimeoutMs is withdrawn and its cells retried once
 *    in-process (the PR 5 retry path) — covering lost agents, crashed
 *    agents (which publish an error report) and an empty agent pool
 *    alike. Run-unique task names make a late straggler result
 *    harmless.
 *
 * The executor can spawn its own local agent pool for the duration of
 * one execute() call (Options::agents / agentBinary) — the zero-setup
 * path the CLI uses — or publish into a box serviced by a standing
 * pool (Options::agents == 0), which is how a long-running service
 * host shares agents across many runs.
 */

#ifndef CASSANDRA_CORE_REMOTE_EXECUTOR_HH
#define CASSANDRA_CORE_REMOTE_EXECUTOR_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "core/cell_executor.hh"

namespace cassandra::core {

class ArtifactStore;

/** Agent-side knobs (the `run_experiment --agent` loop). */
struct AgentOptions
{
    /** Drop-box directory to poll (required). */
    std::string inboxDir;
    /** Thread budget per task; 0 honors the manifest's workerThreads. */
    unsigned threads = 0;
    /** Poll interval while the inbox is empty. */
    uint64_t pollMs = 50;
    /**
     * Exit after this long with no work (0 = poll until the box's
     * stop flag rises). Coordinator-spawned pools set a small value
     * so orphaned agents cannot outlive their run forever.
     */
    uint64_t idleExitMs = 0;
};

/**
 * The agent main loop: claim tasks from the box, fetch + validate the
 * referenced snapshots, execute the cells in-process and publish
 * CASSCR1 results (errors become error reports, not agent deaths).
 * Returns 0 on a clean stop (stop flag or idle exit). Honors the
 * CASSANDRA_TEST_WORKER_CRASH hook: a manifest whose shard index
 * matches publishes an injected-crash error report instead of results
 * (exercises the coordinator's retry path). `log` gets one line per
 * task for service logs.
 */
int runShardAgent(const AgentOptions &options,
                  const AnalysisCache::Resolver &resolver,
                  std::ostream &log);

/** Phase-2 cells dispatched through a drop box to agent processes. */
class RemoteShardExecutor : public CellExecutor
{
  public:
    struct Options
    {
        /** Drop-box directory (required unless `store` is injected). */
        std::string dropboxDir;
        /** Injected store (tests, custom transports); overrides
         * dropboxDir when set. */
        std::shared_ptr<ArtifactStore> store;
        /** Shard (task) count; 0 = auto (RunnerOptions::resolveShards). */
        unsigned shards = 0;
        /** Coordinator-side thread request; per-task budgets derive
         * from it exactly like the subprocess backend. */
        unsigned threads = 0;
        /**
         * Local agents to spawn for the duration of execute(); 0
         * relies on a standing pool already polling the box.
         */
        unsigned agents = 0;
        /** Binary implementing `--agent` (required when agents > 0). */
        std::string agentBinary;
        /** Per-task deadline before the coordinator gives up on the
         * box and retries the task's cells in-process. */
        uint64_t taskTimeoutMs = 120000;
        /** Coordinator poll interval for outbox results. */
        uint64_t pollMs = 20;
        /** Retry timed-out/failed tasks in-process before failing the
         * run (disabled, they raise WorkerError directly). */
        bool retryInProcess = true;
        /** Shard partitioning policy (see scheduleShards). */
        ShardScheduler scheduler = ShardScheduler::Contiguous;
        /** Prior-cycles source for the Lpt cost model (may be null). */
        std::shared_ptr<const ResultStore> costSource;
    };

    /** Cumulative backend counters. */
    struct Stats
    {
        uint64_t tasksPublished = 0;
        uint64_t tasksCompleted = 0; ///< merged from an outbox result
        uint64_t tasksFailed = 0;    ///< agent published an error
        uint64_t tasksTimedOut = 0;  ///< deadline passed, withdrawn
        uint64_t cellsRetried = 0;   ///< recovered in-process
        uint64_t agentsSpawned = 0;
    };

    /** @throws std::invalid_argument when neither dropboxDir nor
     * store is set, or agents > 0 with an empty agentBinary. */
    explicit RemoteShardExecutor(Options options);

    const char *name() const override { return "remote"; }
    std::vector<CellResult>
    execute(const std::vector<PlannedCell> &cells,
            const ArtifactMap &artifacts) override;

    ScheduleSummary lastSchedule() const override { return schedule_; }

    const Stats &stats() const { return stats_; }

    /** The store execute() publishes through (upload/reuse counters
     * live here — how tests prove upload-once per fingerprint). */
    ArtifactStore &store() const { return *store_; }

  private:
    Options options_;
    std::shared_ptr<ArtifactStore> store_;
    Stats stats_;
    ScheduleSummary schedule_;
};

} // namespace cassandra::core

#endif // CASSANDRA_CORE_REMOTE_EXECUTOR_HH
