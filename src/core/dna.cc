#include "core/dna.hh"

namespace cassandra::core {

DnaEncoding
encodeDna(const VanillaTrace &vanilla)
{
    DnaEncoding enc;
    std::map<std::pair<uint64_t, uint64_t>, Symbol> seen;
    for (const auto &e : vanilla) {
        auto key = std::make_pair(e.target, e.count);
        auto it = seen.find(key);
        Symbol s;
        if (it == seen.end()) {
            s = static_cast<Symbol>(enc.letterTable.size());
            seen.emplace(key, s);
            enc.letterTable.push_back(e);
        } else {
            s = it->second;
        }
        enc.seq.push_back(s);
    }
    return enc;
}

VanillaTrace
DnaEncoding::decode() const
{
    VanillaTrace out;
    for (Symbol s : seq) {
        const RunElement &e = letterTable[s];
        if (!out.empty() && out.back().target == e.target)
            out.back().count += e.count;
        else
            out.push_back(e);
    }
    return out;
}

std::string
symbolName(Symbol s)
{
    // Match the paper's examples: A, C, G, T first, then the rest of the
    // alphabet, then numbered letters for large alphabets.
    static const char *first = "ACGT";
    static const char *rest = "BDEFHIJKLMNOPQRSUVWXYZ";
    if (s < 4)
        return std::string(1, first[s]);
    if (s < 4 + 22)
        return std::string(1, rest[s - 4]);
    return "L" + std::to_string(s);
}

std::string
DnaEncoding::toString() const
{
    std::string out;
    for (Symbol s : seq)
        out += symbolName(s);
    return out;
}

} // namespace cassandra::core
