/**
 * @file
 * Workload abstraction shared by the analysis pipeline, the timing
 * model and the benches.
 *
 * A workload is an assembled program plus input bindings. Algorithm 2
 * runs the binary twice with two different inputs (indices 0 and 1) to
 * detect input-dependent branches; index 2 is the evaluation input used
 * for timing runs. The two analysis inputs must differ in secrets and,
 * where applicable, in public non-standard parameters (e.g. stream
 * lengths) so that stream loops are correctly flagged input-dependent.
 */

#ifndef CASSANDRA_CORE_WORKLOAD_HH
#define CASSANDRA_CORE_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "ir/program.hh"
#include "sim/machine.hh"

namespace cassandra::core {

/**
 * A run exhausted Workload::maxDynInsts before halting. Derives from
 * sim::SimError so existing catch sites keep working, but carries the
 * workload name and the instruction count in typed form so callers
 * (and tests) can distinguish budget exhaustion from other simulator
 * faults instead of silently truncating the run.
 */
class InstructionBudgetError : public sim::SimError
{
  public:
    InstructionBudgetError(const std::string &workload, uint64_t insts,
                           const std::string &context)
        : sim::SimError(workload + ": " + context +
                        " exceeded instruction budget (" +
                        std::to_string(insts) + " instructions)"),
          workload_(workload), instCount_(insts)
    {}

    const std::string &workload() const { return workload_; }
    uint64_t instCount() const { return instCount_; }

  private:
    std::string workload_;
    uint64_t instCount_;
};

/** Secret memory region annotation (used by the ProSpeCT model). */
struct SecretRegion
{
    uint64_t lo = 0;
    uint64_t hi = 0; ///< half-open

    bool contains(uint64_t addr) const { return addr >= lo && addr < hi; }
};

/** An executable workload with input bindings. */
struct Workload
{
    std::string name;
    /** Suite label: "BearSSL", "OpenSSL", "PQC" or "Synthetic". */
    std::string suite;
    ir::Program program;
    /**
     * Bind input #which (0/1 analysis, 2 evaluation) by writing the
     * machine's data memory / registers before the run.
     */
    std::function<void(sim::Machine &, int which)> setInput;
    /** Verify the output of an evaluation run (nullptr = skip). */
    std::function<bool(const sim::Machine &)> check;
    /** Dynamic instruction cap for a single run. */
    uint64_t maxDynInsts = 100'000'000;
    /** ProSpeCT secret annotations (empty = nothing tainted). */
    std::vector<SecretRegion> secretRegions;
    /** Fraction of dynamic work that is sandboxed code (Fig. 8 mixes). */
    double sandboxFraction = 0.0;
};

// ---------------------------------------------------------------------
// Composite workloads (server request mixes)
// ---------------------------------------------------------------------

/**
 * One per-request input binding of a composite segment: before every
 * firing of the segment, `length` bytes at data symbol + offset are
 * filled with a deterministic pseudo-random stream seeded by (binding
 * slot, analysis input, request index), emitted in-program so every
 * request processes distinct data without any per-request host-side
 * state.
 */
struct SegmentBinding
{
    enum class Kind
    {
        /** Secret input: differs across analysis inputs 0/1/2 and is
         * annotated as a secret region. */
        Secret,
        /** Public input that the two analysis runs vary (like a public
         * key seed): differs for inputs 0/1, fixed for evaluation. */
        PublicVaried,
        /** Public input held constant across all inputs. */
        PublicFixed,
    };

    std::string symbol;
    size_t offset = 0;
    /** Bytes to fill; must be a multiple of 8. */
    size_t length = 0;
    Kind kind = Kind::Secret;
};

/** One kernel segment of a composite workload. */
struct WorkloadSegment
{
    std::string name;
    /** Fire on requests r with r % every == 0 (1 = every request). */
    uint64_t every = 1;
    /** Emit the segment's functions + data allocations (once). */
    std::function<void(casm::Assembler &)> emitOnce;
    /** Emit the per-firing call sequence into main (non-crypto). */
    std::function<void(casm::Assembler &)> emitCall;
    std::vector<SegmentBinding> bindings;
    /** Dynamic-instruction estimate of one firing (sizes the budget). */
    uint64_t instsPerFiring = 0;
    /** Post-assembly hook for secret annotations beyond the Secret
     * bindings (work buffers, spill areas) — symbol addresses only
     * resolve once emitOnce has run. */
    std::function<void(const casm::Assembler &,
                       std::vector<SecretRegion> &)>
        annotateSecrets;
};

/**
 * Builder composing an ordered sequence of kernel segments into one
 * Workload that simulates `requests` requests: main loops over the
 * request index (held in memory — kernels may clobber every scratch
 * register), fires each segment on its cadence, and re-seeds each
 * binding from (slot, request) before the segment's calls so inputs
 * are per-request deterministic. maxDynInsts is sized from the
 * segment estimates and the request count rather than the global
 * default, so long mixes neither truncate nor hide runaway loops.
 */
class CompositeWorkloadBuilder
{
  public:
    CompositeWorkloadBuilder(std::string name, std::string suite,
                             uint64_t requests);

    CompositeWorkloadBuilder &addSegment(WorkloadSegment segment);
    /** Extra secret annotation beyond the Secret bindings (e.g. the
     * stack region a kernel spills secrets to). */
    CompositeWorkloadBuilder &addSecretRegion(SecretRegion region);

    uint64_t requests() const { return requests_; }

    /** Assemble the program and produce the workload. */
    Workload build();

  private:
    std::string name_;
    std::string suite_;
    uint64_t requests_;
    std::vector<WorkloadSegment> segments_;
    std::vector<SecretRegion> extraSecretRegions_;
};

} // namespace cassandra::core

#endif // CASSANDRA_CORE_WORKLOAD_HH
