/**
 * @file
 * Workload abstraction shared by the analysis pipeline, the timing
 * model and the benches.
 *
 * A workload is an assembled program plus input bindings. Algorithm 2
 * runs the binary twice with two different inputs (indices 0 and 1) to
 * detect input-dependent branches; index 2 is the evaluation input used
 * for timing runs. The two analysis inputs must differ in secrets and,
 * where applicable, in public non-standard parameters (e.g. stream
 * lengths) so that stream loops are correctly flagged input-dependent.
 */

#ifndef CASSANDRA_CORE_WORKLOAD_HH
#define CASSANDRA_CORE_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/program.hh"
#include "sim/machine.hh"

namespace cassandra::core {

/** Secret memory region annotation (used by the ProSpeCT model). */
struct SecretRegion
{
    uint64_t lo = 0;
    uint64_t hi = 0; ///< half-open

    bool contains(uint64_t addr) const { return addr >= lo && addr < hi; }
};

/** An executable workload with input bindings. */
struct Workload
{
    std::string name;
    /** Suite label: "BearSSL", "OpenSSL", "PQC" or "Synthetic". */
    std::string suite;
    ir::Program program;
    /**
     * Bind input #which (0/1 analysis, 2 evaluation) by writing the
     * machine's data memory / registers before the run.
     */
    std::function<void(sim::Machine &, int which)> setInput;
    /** Verify the output of an evaluation run (nullptr = skip). */
    std::function<bool(const sim::Machine &)> check;
    /** Dynamic instruction cap for a single run. */
    uint64_t maxDynInsts = 100'000'000;
    /** ProSpeCT secret annotations (empty = nothing tainted). */
    std::vector<SecretRegion> secretRegions;
    /** Fraction of dynamic work that is sandboxed code (Fig. 8 mixes). */
    double sandboxFraction = 0.0;
};

} // namespace cassandra::core

#endif // CASSANDRA_CORE_WORKLOAD_HH
