#include "core/remote_executor.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "core/artifact_store.hh"
#include "core/serialize.hh"
#include "core/trace_stream.hh"

#if !defined(_WIN32)
#define CASSANDRA_POSIX_AGENTS 1
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace cassandra::core {

namespace {

void
sleepMs(uint64_t ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::string
tempRoot()
{
    const char *tmp = std::getenv("TMPDIR");
    return (tmp && *tmp) ? tmp : "/tmp";
}

} // namespace

// ---------------------------------------------------------------------
// Agent loop (run_experiment --agent)
// ---------------------------------------------------------------------

int
runShardAgent(const AgentOptions &options,
              const AnalysisCache::Resolver &resolver, std::ostream &log)
{
    try {
        if (options.inboxDir.empty())
            throw std::invalid_argument(
                "agent mode needs a drop-box directory (--inbox=DIR)");
        ArtifactStore store(options.inboxDir);
        const std::string token = makeAgentToken();

        // Agent-local scratch for rehydrated trace streams; sweep
        // siblings abandoned by dead agents first (crashed agents
        // cannot clean up after themselves).
        const std::string root = tempRoot();
        sweepStaleProcessDirs(root, "cassandra-agent-");
        const std::string scratch =
            root + "/cassandra-agent-" + token;
        ensureDirectories(scratch);

        // Snapshots are content-addressed, so one fetch serves every
        // task that references the key for the life of the agent.
        std::map<std::string, AnalyzedWorkload::Ptr> by_key;

        uint64_t idle_ms = 0;
        while (!store.agentStopRequested()) {
            const std::string task = store.claimTask(token);
            if (task.empty()) {
                if (options.idleExitMs &&
                    idle_ms >= options.idleExitMs)
                    break;
                sleepMs(options.pollMs);
                idle_ms += options.pollMs;
                continue;
            }
            idle_ms = 0;
            try {
                const ShardManifest manifest = unpackShardManifest(
                    store.fetchClaimedTask(task, token));
                // Same fault hook the subprocess workers honor, so
                // the coordinator retry path is testable here too.
                if (const char *crash =
                        std::getenv("CASSANDRA_TEST_WORKER_CRASH")) {
                    if (std::to_string(manifest.shardIndex) == crash) {
                        store.publishError(
                            task, token,
                            "injected crash "
                            "(CASSANDRA_TEST_WORKER_CRASH)");
                        log << "agent " << token << ": " << task
                            << " injected crash" << std::endl;
                        continue;
                    }
                }
                ArtifactMap artifacts;
                for (const auto &[name, key] : manifest.artifacts) {
                    auto it = by_key.find(key);
                    if (it == by_key.end())
                        it = by_key
                                 .emplace(key,
                                          unpackAnalyzedWorkload(
                                              store.fetchArtifact(key),
                                              resolver, scratch))
                                 .first;
                    artifacts.emplace(name, it->second);
                }
                InProcessExecutor executor(
                    options.threads ? options.threads
                                    : manifest.workerThreads);
                std::vector<CellResult> results =
                    executor.execute(manifest.cells, artifacts);
                std::vector<IndexedCellResult> indexed;
                indexed.reserve(results.size());
                for (size_t i = 0; i < results.size(); i++)
                    indexed.push_back(
                        IndexedCellResult{manifest.indices[i],
                                          std::move(results[i])});
                store.publishResult(task, token,
                                    packCellResults(indexed));
                log << "agent " << token << ": " << task << " done ("
                    << indexed.size() << " cells)" << std::endl;
            } catch (const std::exception &e) {
                // A bad task must not kill the agent: report the
                // failure and keep polling.
                store.publishError(task, token, e.what());
                log << "agent " << token << ": " << task
                    << " failed: " << e.what() << std::endl;
            }
        }
        removeDirectoryTree(scratch);
        return 0;
    } catch (const std::exception &e) {
        log << "agent failed: " << e.what() << std::endl;
        return 1;
    }
}

// ---------------------------------------------------------------------
// RemoteShardExecutor
// ---------------------------------------------------------------------

RemoteShardExecutor::RemoteShardExecutor(Options options)
    : options_(std::move(options))
{
    if (options_.store)
        store_ = options_.store;
    else if (!options_.dropboxDir.empty())
        store_ = std::make_shared<ArtifactStore>(options_.dropboxDir);
    else
        throw std::invalid_argument(
            "remote execution needs a drop box (set "
            "RunnerOptions::dropboxDir or \"execution\": "
            "{\"dropbox\": ...})");
    if (options_.agents > 0 && options_.agentBinary.empty())
        throw std::invalid_argument(
            "remote execution with spawned agents needs an agent "
            "binary (the run_experiment binary)");
}

namespace {

/** One published task the coordinator is waiting on. */
struct RemoteTask
{
    unsigned shard = 0;
    std::string name;
    std::vector<uint32_t> indices; ///< global cell indices (sorted)
    std::chrono::steady_clock::time_point deadline;
    bool resolved = false;
    bool failed = false;
    std::string detail;
};

#if defined(CASSANDRA_POSIX_AGENTS)

pid_t
spawnAgent(const std::string &binary,
           const std::vector<std::string> &args)
{
    std::vector<char *> argv;
    argv.push_back(const_cast<char *>(binary.c_str()));
    for (const std::string &arg : args)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);
    const pid_t pid = fork();
    if (pid < 0)
        throw std::runtime_error("cannot fork shard agent");
    if (pid == 0) {
        execv(binary.c_str(), argv.data());
        _exit(127);
    }
    return pid;
}

#endif // CASSANDRA_POSIX_AGENTS

} // namespace

std::vector<CellResult>
RemoteShardExecutor::execute(const std::vector<PlannedCell> &cells,
                             const ArtifactMap &artifacts)
{
    if (cells.empty())
        return {};

    RunnerOptions base(options_.threads);
    base.shards = options_.shards;
    const unsigned shards = base.resolveShards(cells.size());
    const unsigned worker_threads =
        base.resolveThreads(cells.size(), shards);

    // Content-addressed snapshot publish: a fingerprint already in
    // the box (this run, a previous run, another coordinator) is
    // never uploaded again.
    std::map<std::string, std::string> snapshot_keys;
    for (const PlannedCell &cell : cells) {
        if (snapshot_keys.count(cell.workload))
            continue;
        const AnalyzedWorkload::Ptr &artifact =
            artifacts.at(cell.workload);
        const std::string key = ArtifactStore::artifactKey(
            workloadFingerprint(artifact->workload()),
            artifactFormatVersion);
        store_->publishArtifactOnce(
            key, packAnalyzedWorkload(*artifact, cell.workload));
        snapshot_keys.emplace(cell.workload, key);
    }

    const std::vector<uint64_t> costs =
        estimateCellCosts(cells, artifacts, options_.costSource.get());
    const std::vector<std::vector<uint32_t>> partition =
        scheduleShards(options_.scheduler, costs, shards);
    schedule_ = ScheduleSummary{};
    schedule_.valid = true;
    schedule_.scheduler = options_.scheduler;
    for (const std::vector<uint32_t> &assigned : partition) {
        uint64_t shard_cost = 0;
        for (uint32_t i : assigned)
            shard_cost += costs[i];
        schedule_.shardCosts.push_back(shard_cost);
    }

    // Run-unique task names: a straggler agent finishing a withdrawn
    // task from a previous run can never be mistaken for ours.
    static std::atomic<uint64_t> run_sequence{0};
    const std::string run_tag = "run-" + processUniqueSuffix() + "-" +
        std::to_string(run_sequence.fetch_add(1));

    std::vector<RemoteTask> tasks;
    const auto now = std::chrono::steady_clock::now();
    for (unsigned s = 0; s < shards; s++) {
        RemoteTask task;
        task.shard = s;
        task.name = run_tag + "-shard-" + std::to_string(s);
        task.indices = partition[s];
        task.deadline = now +
            std::chrono::milliseconds(options_.taskTimeoutMs);

        ShardManifest manifest;
        manifest.shardIndex = s;
        manifest.workerThreads = worker_threads;
        manifest.streamDir = ""; // agents rehydrate into own scratch
        for (uint32_t i : task.indices) {
            manifest.indices.push_back(i);
            manifest.cells.push_back(cells[i]);
        }
        for (const auto &[name, key] : snapshot_keys) {
            bool used = false;
            for (const PlannedCell &cell : manifest.cells)
                used = used || cell.workload == name;
            if (used)
                manifest.artifacts.emplace_back(name, key);
        }
        store_->publishTask(task.name, packShardManifest(manifest));
        stats_.tasksPublished++;
        tasks.push_back(std::move(task));
    }

    // Local agent pool for this run, when requested. Spawned agents
    // also idle-exit on their own, so a coordinator killed before the
    // reap below cannot leave immortal pollers behind.
    std::vector<long> agent_pids;
#if defined(CASSANDRA_POSIX_AGENTS)
    std::string box_dir = options_.dropboxDir;
    if (box_dir.empty() && options_.agents > 0) {
        // Injected store: spawned agents need a directory to poll.
        auto *local =
            dynamic_cast<LocalDirTransport *>(&store_->transport());
        if (!local)
            throw std::runtime_error(
                "cannot spawn local agents for a non-directory "
                "transport; run a standing agent pool instead");
        box_dir = local->root();
    }
    for (unsigned a = 0; a < options_.agents; a++) {
        agent_pids.push_back(spawnAgent(
            options_.agentBinary,
            {"--agent", "--inbox=" + box_dir,
             "--poll-ms=10",
             "--idle-exit-ms=" +
                 std::to_string(options_.taskTimeoutMs * 2)}));
        stats_.agentsSpawned++;
    }
#else
    if (options_.agents > 0)
        throw std::runtime_error(
            "spawning local agents is not supported on this platform");
#endif

    auto reap_agents = [&]() {
#if defined(CASSANDRA_POSIX_AGENTS)
        for (long pid : agent_pids) {
            kill(static_cast<pid_t>(pid), SIGTERM);
            int status = 0;
            while (waitpid(static_cast<pid_t>(pid), &status, 0) < 0 &&
                   errno == EINTR) {
            }
        }
        agent_pids.clear();
#endif
    };
    // Drop every key this run put into the box (inbox, outbox —
    // claimed entries belong to their agent; gc() requeues orphans).
    auto scrub_tasks = [&]() {
        for (const RemoteTask &task : tasks) {
            store_->withdrawTask(task.name);
            store_->transport().remove(
                ArtifactStore::resultKey(task.name));
            store_->transport().remove(
                ArtifactStore::errorKey(task.name));
        }
    };

    try {
        std::vector<CellResult> results(cells.size());
        std::vector<char> have(cells.size(), 0);

        size_t open = tasks.size();
        while (open > 0) {
            bool progressed = false;
            for (RemoteTask &task : tasks) {
                if (task.resolved)
                    continue;
                if (store_->transport().exists(
                        ArtifactStore::resultKey(task.name))) {
                    try {
                        std::vector<IndexedCellResult> partial =
                            unpackCellResults(store_->transport().fetch(
                                ArtifactStore::resultKey(task.name)));
                        if (partial.size() != task.indices.size())
                            throw std::invalid_argument(
                                "task returned " +
                                std::to_string(partial.size()) +
                                " cells, expected " +
                                std::to_string(task.indices.size()));
                        for (IndexedCellResult &entry : partial) {
                            if (!std::binary_search(
                                    task.indices.begin(),
                                    task.indices.end(), entry.index) ||
                                have[entry.index])
                                throw std::invalid_argument(
                                    "task returned cell index " +
                                    std::to_string(entry.index) +
                                    " outside its assignment");
                            results[entry.index] =
                                std::move(entry.cell);
                            have[entry.index] = 1;
                        }
                        stats_.tasksCompleted++;
                    } catch (const std::exception &e) {
                        task.failed = true;
                        task.detail = e.what();
                        stats_.tasksFailed++;
                    }
                    store_->transport().remove(
                        ArtifactStore::resultKey(task.name));
                    task.resolved = true;
                } else if (store_->transport().exists(
                               ArtifactStore::errorKey(task.name))) {
                    const std::vector<uint8_t> msg =
                        store_->transport().fetch(
                            ArtifactStore::errorKey(task.name));
                    store_->transport().remove(
                        ArtifactStore::errorKey(task.name));
                    task.failed = true;
                    task.detail = "agent reported: " +
                        std::string(msg.begin(), msg.end());
                    task.resolved = true;
                    stats_.tasksFailed++;
                } else if (std::chrono::steady_clock::now() >
                           task.deadline) {
                    // Unclaimed or lost: pull it back so no agent
                    // starts it after we have retried the cells.
                    store_->withdrawTask(task.name);
                    task.failed = true;
                    task.detail = "no result within " +
                        std::to_string(options_.taskTimeoutMs) +
                        " ms (agent pool empty, lost or stuck)";
                    task.resolved = true;
                    stats_.tasksTimedOut++;
                } else {
                    continue;
                }
                progressed = true;
                open--;
            }
            if (open > 0 && !progressed)
                sleepMs(options_.pollMs);
        }

        // Failed/timed-out tasks: one in-process retry before the run
        // fails — identical policy to the subprocess backend.
        for (const RemoteTask &task : tasks) {
            if (!task.failed)
                continue;
            if (!options_.retryInProcess)
                throw WorkerError(task.shard, task.detail, "");
            std::fprintf(stderr,
                         "remote task %s: %s; retrying its %zu cells "
                         "in-process\n",
                         task.name.c_str(), task.detail.c_str(),
                         task.indices.size());
            try {
                std::vector<PlannedCell> retry_cells;
                retry_cells.reserve(task.indices.size());
                for (uint32_t i : task.indices)
                    retry_cells.push_back(cells[i]);
                std::vector<CellResult> retried =
                    InProcessExecutor(options_.threads)
                        .execute(retry_cells, artifacts);
                for (size_t i = 0; i < retried.size(); i++) {
                    results[task.indices[i]] = std::move(retried[i]);
                    have[task.indices[i]] = 1;
                }
                stats_.cellsRetried += task.indices.size();
            } catch (const std::exception &e) {
                throw WorkerError(task.shard,
                                  task.detail +
                                      "; in-process retry failed: " +
                                      e.what(),
                                  "");
            }
        }

        for (size_t i = 0; i < cells.size(); i++) {
            if (!have[i])
                throw std::logic_error(
                    "remote merge left cell " + std::to_string(i) +
                    " unfilled");
        }
        reap_agents();
        scrub_tasks();
        return results;
    } catch (...) {
        reap_agents();
        scrub_tasks();
        throw;
    }
}

} // namespace cassandra::core
