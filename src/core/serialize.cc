#include "core/serialize.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>

#include "core/byte_io.hh"

namespace cassandra::core {

namespace {

/** Little-endian bit writer. */
class BitWriter
{
  public:
    void
    put(uint64_t value, int bits)
    {
        for (int i = 0; i < bits; i++) {
            if (bitPos_ == 0)
                bytes_.push_back(0);
            if ((value >> i) & 1)
                bytes_.back() |= static_cast<uint8_t>(1u << bitPos_);
            bitPos_ = (bitPos_ + 1) % 8;
        }
    }

    std::vector<uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
    int bitPos_ = 0;
};

/** Little-endian bit reader. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<uint8_t> &bytes) : bytes_(bytes)
    {
    }

    uint64_t
    get(int bits)
    {
        uint64_t v = 0;
        for (int i = 0; i < bits; i++) {
            size_t byte = pos_ / 8;
            int bit = static_cast<int>(pos_ % 8);
            if (byte < bytes_.size() && ((bytes_[byte] >> bit) & 1))
                v |= 1ull << i;
            pos_++;
        }
        return v;
    }

  private:
    const std::vector<uint8_t> &bytes_;
    size_t pos_ = 0;
};

} // namespace

std::vector<uint8_t>
packTrace(const BranchTrace &trace)
{
    BitWriter w;
    // Header: 5-bit pattern count, 12-bit element count (the
    // checkpoint trace-index width bounds trace length), 3 flag bits.
    w.put(trace.patternSet.size(), 5);
    w.put(trace.elements.size(), 12);
    w.put(trace.shortTrace ? 1 : 0, 1);
    w.put(trace.singleTarget ? 1 : 0, 1);
    w.put(trace.hasTrace() ? 1 : 0, 1);
    for (const auto &pe : trace.patternSet) {
        w.put(static_cast<uint64_t>(pe.targetOffset) &
                  ((1u << TraceLimits::offsetBits) - 1),
              TraceLimits::offsetBits);
        w.put(pe.repetitions, 8);
    }
    for (const auto &te : trace.elements) {
        w.put(te.patternIndex, 4);
        // patternSize is 1..16: store size-1 in 4 bits.
        w.put(static_cast<uint64_t>(te.patternSize - 1), 4);
        w.put(te.patternCounter, 16);
        w.put(te.traceCounter, 8);
    }
    return w.take();
}

BranchTrace
unpackTrace(const std::vector<uint8_t> &bytes, uint64_t branch_pc)
{
    BitReader r(bytes);
    BranchTrace trace;
    trace.branchPc = branch_pc;
    size_t patterns = r.get(5);
    size_t elements = r.get(12);
    trace.shortTrace = r.get(1) != 0;
    trace.singleTarget = r.get(1) != 0;
    bool has_trace = r.get(1) != 0;
    if (!has_trace)
        trace.rejection = TraceRejection::InputDependent;
    for (size_t i = 0; i < patterns; i++) {
        PatternElement pe;
        uint64_t raw = r.get(TraceLimits::offsetBits);
        // Sign-extend the 12-bit offset.
        int32_t off = static_cast<int32_t>(raw);
        if (off & (1 << (TraceLimits::offsetBits - 1)))
            off -= 1 << TraceLimits::offsetBits;
        pe.targetOffset = off;
        pe.repetitions = static_cast<uint32_t>(r.get(8));
        trace.patternSet.push_back(pe);
    }
    for (size_t i = 0; i < elements; i++) {
        TraceElement te;
        te.patternIndex = static_cast<uint8_t>(r.get(4));
        te.patternSize = static_cast<uint8_t>(r.get(4) + 1);
        te.patternCounter = static_cast<uint16_t>(r.get(16));
        te.traceCounter = static_cast<uint16_t>(r.get(8));
        trace.elements.push_back(te);
    }
    return trace;
}

size_t
packedTraceBytes(const BranchTrace &trace)
{
    size_t bits = 5 + 12 + 3 +
        trace.patternSet.size() * TraceLimits::patternElementBits +
        trace.elements.size() * TraceLimits::traceElementBits;
    return (bits + 7) / 8;
}

// ---------------------------------------------------------------------
// AnalyzedWorkload snapshots
// ---------------------------------------------------------------------

namespace {

/** "CASSAW" family magic; the 7th byte is the version digit. */
constexpr char artifactMagicBase[6] = {'C', 'A', 'S', 'S', 'A', 'W'};

/** Phase-presence flags of a snapshot (bit set = section present). */
constexpr uint8_t artifactHasTraceImage = 1u << 0;

/** Storage kind of the snapshot's trace section. */
constexpr uint8_t traceStorageInline = 0; ///< in-file ops, whole mode
constexpr uint8_t traceStorageStream = 1; ///< embedded CASSTF1/2 file

/** magic(8) + version(4) + metaLen(4). */
constexpr size_t snapshotPrefixBytes = 16;

/** Chunk size of the file<->file stream-section copies. */
constexpr size_t copyChunkBytes = 64 * 1024;

std::atomic<uint64_t> inline_ops_written{0};
std::atomic<uint64_t> inline_ops_read{0};
std::atomic<uint64_t> stream_bytes_copied{0};

} // namespace

namespace {

/** FNV-1a mixer shared by the fingerprint functions. */
struct Fnv
{
    uint64_t h = 14695981039346656037ull;

    void
    mix(uint64_t v)
    {
        for (int i = 0; i < 8; i++) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }
};

} // namespace

uint64_t
programFingerprint(const ir::Program &program)
{
    // FNV-1a over the decoded instruction stream plus the crypto
    // ranges: any change to the binary an artifact was analyzed
    // against flips the fingerprint.
    Fnv f;
    f.mix(program.insts.size());
    for (const auto &inst : program.insts) {
        f.mix(static_cast<uint64_t>(inst.op));
        f.mix((static_cast<uint64_t>(inst.rd) << 16) |
              (static_cast<uint64_t>(inst.rs1) << 8) | inst.rs2);
        f.mix(static_cast<uint64_t>(inst.imm));
    }
    for (const auto &r : program.cryptoRanges) {
        f.mix(r.lo);
        f.mix(r.hi);
    }
    return f.h;
}

uint64_t
workloadFingerprint(const Workload &workload)
{
    // Program plus every hashable run-relevant binding. setInput is a
    // closure and cannot be fingerprinted: changing input *data*
    // without touching the program is invisible here (documented in
    // the header).
    Fnv f;
    f.mix(programFingerprint(workload.program));
    f.mix(workload.maxDynInsts);
    f.mix(workload.secretRegions.size());
    for (const auto &r : workload.secretRegions) {
        f.mix(r.lo);
        f.mix(r.hi);
    }
    uint64_t frac;
    std::memcpy(&frac, &workload.sandboxFraction, sizeof frac);
    f.mix(frac);
    return f.h;
}

namespace {

/**
 * Pack the metadata section (name, fingerprint, phase flags, the
 * Algorithm 2 image when present) — everything except the trace
 * section, whose storage differs between whole and streamed
 * artifacts.
 */
std::vector<uint8_t>
packMeta(const AnalyzedWorkload &aw, const std::string &name)
{
    ByteWriter w;
    w.str(name.empty() ? aw.workload().name : name);
    w.u64(workloadFingerprint(aw.workload()));

    // Phase presence: only phases that actually ran are snapshotted —
    // packing a baseline-only artifact must not trigger Algorithm 2.
    const bool has_image = aw.hasTraceImage();
    w.u8(has_image ? artifactHasTraceImage : 0);

    if (has_image) {
        // Branch records.
        const TraceGenResult &tg = aw.traces();
        w.u32(static_cast<uint32_t>(tg.records.size()));
        for (const BranchRecord &rec : tg.records) {
            w.u64(rec.pc);
            w.u64(rec.vanillaSize);
            w.u64(rec.kmersSize);
            w.u8(static_cast<uint8_t>((rec.singleTarget ? 1 : 0) |
                                      (rec.inputDependent ? 2 : 0)));
            w.u8(static_cast<uint8_t>(rec.rejection));
        }

        // Analysis step timings (informational; not replayed).
        w.f64(tg.timings.detectSec);
        w.f64(tg.timings.rawSec);
        w.f64(tg.timings.vanillaSec);
        w.f64(tg.timings.dnaSec);
        w.f64(tg.timings.kmersSec);
        w.f64(tg.timings.embedSec);

        // Trace image: hint words, branch traces, layout counters.
        const TraceImage &image = tg.image;
        w.u32(static_cast<uint32_t>(image.numBranches()));
        // Hints are not directly iterable; the pc set comes from the
        // records (every analyzed branch owns exactly one of each).
        for (const BranchRecord &rec : tg.records) {
            const HintInfo *hint = image.hint(rec.pc);
            if (!hint)
                throw std::invalid_argument(
                    "inconsistent artifact: record without hint");
            w.u64(rec.pc);
            w.u8(static_cast<uint8_t>((hint->singleTarget ? 1 : 0) |
                                      (hint->shortTrace ? 2 : 0)));
            w.u64(hint->targetPc);
            w.u32(hint->traceOffset);
        }
        w.u32(static_cast<uint32_t>(image.traces().size()));
        for (const auto &[pc, trace] : image.traces()) {
            w.u64(pc);
            w.u8(static_cast<uint8_t>(trace.rejection));
            w.u8(static_cast<uint8_t>((trace.singleTarget ? 1 : 0) |
                                      (trace.shortTrace ? 2 : 0)));
            w.u64(trace.singleTargetPc);
            w.blob(packTrace(trace));
        }
        w.u64(image.traceBytes());
        w.u32(static_cast<uint32_t>(image.cryptoRanges.size()));
        for (const auto &r : image.cryptoRanges) {
            w.u64(r.lo);
            w.u64(r.hi);
        }
    }
    return w.take();
}

/** Everything parseMeta recovers from the metadata section. */
struct SnapshotMeta
{
    std::string name;
    Workload workload;
    bool hasImage = false;
    TraceGenResult tg;
};

/** The validated snapshot prefix: container version + meta length. */
struct SnapshotPrefix
{
    uint32_t version = 0;
    uint32_t metaLen = 0;
};

/**
 * Validate the fixed snapshot prefix (reader positioned at byte 0)
 * and return the container version and metadata-section length.
 * "CASSAW" identifies the container family; the version digit and the
 * explicit version field distinguish outdated snapshots (evict) from
 * arbitrary non-artifact files. Versions artifactMinReadVersion..
 * artifactFormatVersion parse; older revisions raise the typed
 * eviction error.
 */
SnapshotPrefix
checkSnapshotPrefix(ByteReader &r)
{
    uint8_t magic[8];
    for (uint8_t &b : magic)
        b = r.u8();
    if (std::memcmp(magic, artifactMagicBase, 6) != 0)
        throw ArtifactFormatError(
            "not an AnalyzedWorkload snapshot (bad magic)");
    const uint8_t digit = magic[6];
    if (digit < '1' || digit > '0' + artifactFormatVersion ||
        magic[7] != '\n')
        throw ArtifactFormatError(
            "AnalyzedWorkload snapshot has an unknown container "
            "revision; evict and re-analyze");
    SnapshotPrefix prefix;
    prefix.version = r.u32();
    if (prefix.version != static_cast<uint32_t>(digit - '0'))
        throw ArtifactFormatError(
            "AnalyzedWorkload snapshot magic and version field "
            "disagree; evict and re-analyze");
    if (prefix.version < artifactMinReadVersion)
        throw ArtifactFormatError(
            "AnalyzedWorkload snapshot has an outdated container "
            "format (version " + std::to_string(prefix.version) +
            ", oldest readable " +
            std::to_string(artifactMinReadVersion) +
            "); evict and re-analyze");
    prefix.metaLen = r.u32();
    return prefix;
}

/** Parse the metadata section and rebuild/validate the workload. */
SnapshotMeta
parseMeta(ByteReader &r, const AnalysisCache::Resolver &resolver)
{
    SnapshotMeta meta;
    meta.name = r.str();
    const uint64_t fingerprint = r.u64();

    meta.workload = resolver(meta.name);
    if (workloadFingerprint(meta.workload) != fingerprint)
        throw ArtifactStaleError(
            "stale AnalyzedWorkload snapshot for \"" + meta.name +
            "\": program fingerprint mismatch");

    const uint8_t phase_flags = r.u8();
    const bool has_image = (phase_flags & artifactHasTraceImage) != 0;
    meta.hasImage = has_image;

    TraceGenResult &tg = meta.tg;
    if (has_image) {
        uint32_t num_records = r.u32();
        tg.records.reserve(num_records);
        for (uint32_t i = 0; i < num_records; i++) {
            BranchRecord rec;
            rec.pc = r.u64();
            rec.vanillaSize = r.u64();
            rec.kmersSize = r.u64();
            uint8_t flags = r.u8();
            rec.singleTarget = (flags & 1) != 0;
            rec.inputDependent = (flags & 2) != 0;
            rec.rejection = static_cast<TraceRejection>(r.u8());
            tg.records.push_back(rec);
        }

        tg.timings.detectSec = r.f64();
        tg.timings.rawSec = r.f64();
        tg.timings.vanillaSec = r.f64();
        tg.timings.dnaSec = r.f64();
        tg.timings.kmersSec = r.f64();
        tg.timings.embedSec = r.f64();

        std::map<uint64_t, HintInfo> hints;
        uint32_t num_hints = r.u32();
        for (uint32_t i = 0; i < num_hints; i++) {
            uint64_t pc = r.u64();
            uint8_t flags = r.u8();
            HintInfo hint;
            hint.singleTarget = (flags & 1) != 0;
            hint.shortTrace = (flags & 2) != 0;
            hint.targetPc = r.u64();
            hint.traceOffset = r.u32();
            hints[pc] = hint;
        }
        std::map<uint64_t, BranchTrace> traces;
        uint32_t num_traces = r.u32();
        for (uint32_t i = 0; i < num_traces; i++) {
            uint64_t pc = r.u64();
            auto rejection = static_cast<TraceRejection>(r.u8());
            uint8_t flags = r.u8();
            uint64_t single_target_pc = r.u64();
            BranchTrace trace = unpackTrace(r.blob(), pc);
            // unpackTrace collapses flags into the hardware view;
            // restore the exact analysis-side metadata.
            trace.rejection = rejection;
            trace.singleTarget = (flags & 1) != 0;
            trace.shortTrace = (flags & 2) != 0;
            trace.singleTargetPc = single_target_pc;
            traces.emplace(pc, std::move(trace));
        }
        size_t trace_bytes = r.u64();
        tg.image.restore(std::move(hints), std::move(traces),
                         trace_bytes);
        uint32_t num_ranges = r.u32();
        tg.image.cryptoRanges.clear();
        for (uint32_t i = 0; i < num_ranges; i++) {
            ir::PcRange range;
            range.lo = r.u64();
            range.hi = r.u64();
            tg.image.cryptoRanges.push_back(range);
        }
    }
    return meta;
}

/** Serialize one op to its raw little-endian 24-byte form. */
void
opToBytes(const uarch::TimingOp &op, uint8_t *out)
{
    for (int b = 0; b < 8; b++) {
        out[b] = static_cast<uint8_t>(op.pc >> (8 * b));
        out[8 + b] = static_cast<uint8_t>(op.memAddr >> (8 * b));
        out[16 + b] = static_cast<uint8_t>(op.nextPc >> (8 * b));
    }
}

uarch::TimingOp
opFromBytes(const uint8_t *p)
{
    uarch::TimingOp op;
    for (int b = 0; b < 8; b++) {
        op.pc |= static_cast<uint64_t>(p[b]) << (8 * b);
        op.memAddr |= static_cast<uint64_t>(p[8 + b]) << (8 * b);
        op.nextPc |= static_cast<uint64_t>(p[16 + b]) << (8 * b);
    }
    return op;
}

/**
 * Parse a CASSAW4 inline trace section (u32 frameOps, then CASSTF2
 * codec frames) back into an in-memory trace. The reader's backing
 * bytes are contiguous, so each frame decodes in place.
 */
uarch::TimingTrace
readFramedOps(ByteReader &r, uint64_t num_ops)
{
    const uint32_t frame_ops = r.u32();
    if (num_ops > 0 && frame_ops == 0)
        throw std::invalid_argument(
            "AnalyzedWorkload snapshot has a zero frame size");
    // Bound the declared count before reserving: even the tightest
    // delta encoding spends >= 3 bytes per op (three varints), so a
    // garbage num_ops in a corrupt file must fail as truncated, not
    // as a multi-GB allocation.
    if (num_ops > r.remaining() / 3)
        throw std::invalid_argument(
            "truncated AnalyzedWorkload snapshot");
    uarch::TimingTrace trace;
    trace.reserve(num_ops);
    std::vector<uint8_t> decoded;
    uint64_t done = 0;
    while (done < num_ops) {
        const size_t n = static_cast<size_t>(
            std::min<uint64_t>(frame_ops, num_ops - done));
        // Frame header: u8 kind | u32 payloadBytes; the payload
        // follows contiguously, so `frame` spans the whole frame.
        const uint8_t *frame = r.raw(5);
        const uint32_t payload = static_cast<uint32_t>(frame[1]) |
            static_cast<uint32_t>(frame[2]) << 8 |
            static_cast<uint32_t>(frame[3]) << 16 |
            static_cast<uint32_t>(frame[4]) << 24;
        r.raw(payload);
        decoded.resize(n * traceStreamOpBytes);
        decodeTraceFrameInto(frame, 5 + payload, n, decoded.data());
        for (size_t i = 0; i < n; i++)
            trace.push_back(
                opFromBytes(decoded.data() + i * traceStreamOpBytes));
        done += n;
    }
    inline_ops_read.fetch_add(num_ops, std::memory_order_relaxed);
    return trace;
}

/** Assemble the artifact once the trace storage has been recovered. */
AnalyzedWorkload::Ptr
assembleWhole(SnapshotMeta meta, uarch::TimingTrace trace)
{
    uarch::relinkTimingTrace(trace, meta.workload.program);
    if (meta.hasImage)
        return AnalyzedWorkload::fromParts(std::move(meta.workload),
                                           std::move(meta.tg),
                                           std::move(trace));
    // No image section: Algorithm 2 stays demand-driven on the
    // rebuilt artifact, exactly like on a freshly analyzed one.
    return AnalyzedWorkload::fromParts(std::move(meta.workload),
                                       std::move(trace));
}

/**
 * A fresh path for a rehydrated trace stream, unique across loads
 * *and* processes: loading one snapshot twice — or from two processes
 * sharing an explicit stream_dir — must not hand two artifacts the
 * same file (each artifact owns, truncates and deletes its own).
 */
std::string
rehydratedStreamPath(const std::string &stream_dir,
                     const SnapshotMeta &meta)
{
    static std::atomic<uint64_t> sequence{0};
    const std::string dir =
        stream_dir.empty() ? defaultTraceStreamDir() : stream_dir;
    ensureDirectories(dir);
    return traceStreamPath(
        dir,
        meta.name + "-rh" + processUniqueSuffix() + "-" +
            std::to_string(sequence.fetch_add(1)),
        programFingerprint(meta.workload.program));
}

/**
 * Validate an extracted stream file and wrap it into a streamed
 * artifact. The TraceCursor construction re-checks the stream's own
 * magic/version/index and its program fingerprint against the rebuilt
 * workload; the file is deleted again if anything is off.
 */
AnalyzedWorkload::Ptr
assembleStreamed(SnapshotMeta meta, const std::string &trace_path,
                 uint64_t num_ops)
{
    try {
        TraceCursor cursor(trace_path, meta.workload.program,
                           TraceCursor::Backing::Buffered);
        if (cursor.numOps() != num_ops)
            throw ArtifactFormatError(
                "AnalyzedWorkload snapshot op count disagrees with "
                "its embedded trace stream");
    } catch (...) {
        std::remove(trace_path.c_str());
        throw;
    }
    if (meta.hasImage)
        return AnalyzedWorkload::fromStreamParts(
            std::move(meta.workload), std::move(meta.tg), trace_path,
            num_ops);
    return AnalyzedWorkload::fromStreamParts(std::move(meta.workload),
                                             trace_path, num_ops);
}

uint8_t
fileU8(std::ifstream &file)
{
    char b;
    if (!file.read(&b, 1))
        throw std::invalid_argument(
            "truncated AnalyzedWorkload snapshot");
    return static_cast<uint8_t>(b);
}

uint64_t
fileU64(std::ifstream &file)
{
    uint8_t buf[8];
    if (!file.read(reinterpret_cast<char *>(buf), 8))
        throw std::invalid_argument(
            "truncated AnalyzedWorkload snapshot");
    uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v |= static_cast<uint64_t>(buf[i]) << (8 * i);
    return v;
}

/** magic | version | metaLen | meta — the fixed snapshot head. */
void
writeSnapshotHead(ByteWriter &w, const std::vector<uint8_t> &meta)
{
    for (char c : artifactMagicBase)
        w.u8(static_cast<uint8_t>(c));
    w.u8(static_cast<uint8_t>('0' + artifactFormatVersion));
    w.u8(static_cast<uint8_t>('\n'));
    w.u32(artifactFormatVersion);
    w.u32(static_cast<uint32_t>(meta.size()));
    w.raw(meta.data(), meta.size());
}

/** Open an artifact's stream file, reporting its byte size. */
std::ifstream
openStreamFile(const AnalyzedWorkload &aw, uint64_t &size)
{
    // Phases are demand-driven: a lazily analyzed artifact only writes
    // its stream file on first use, and a snapshot embeds those bytes.
    aw.numOps();
    std::ifstream src(aw.streamPath(), std::ios::binary);
    if (!src)
        throw std::runtime_error("cannot open trace stream " +
                                 aw.streamPath());
    src.seekg(0, std::ios::end);
    size = static_cast<uint64_t>(src.tellg());
    src.seekg(0);
    return src;
}

/**
 * Copy `len` bytes from `src` into `sink(data, n)` in bounded chunks;
 * throws runtime_error naming `what` on a short read.
 */
template <typename Sink>
void
copyChunked(std::istream &src, uint64_t len, const std::string &what,
            Sink &&sink)
{
    std::vector<uint8_t> chunk(copyChunkBytes);
    uint64_t copied = 0;
    while (copied < len) {
        const size_t n = static_cast<size_t>(
            std::min<uint64_t>(chunk.size(), len - copied));
        if (!src.read(reinterpret_cast<char *>(chunk.data()),
                      static_cast<std::streamsize>(n)))
            throw std::runtime_error("short read from " + what);
        sink(chunk.data(), n);
        copied += n;
    }
}

/**
 * Extract an embedded stream section — `write(out)` produces the
 * blob's bytes — to a fresh rehydrated trace file and assemble the
 * streamed artifact. The one copy of the cleanup invariant: no
 * artifact ever owns a half-extracted file.
 */
template <typename Write>
AnalyzedWorkload::Ptr
extractStreamSection(SnapshotMeta meta, uint64_t num_ops,
                     uint64_t blob_len, const std::string &stream_dir,
                     Write &&write)
{
    const std::string trace_path = rehydratedStreamPath(stream_dir, meta);
    try {
        std::ofstream out(trace_path,
                          std::ios::binary | std::ios::trunc);
        if (!out)
            throw std::runtime_error("cannot open " + trace_path +
                                     " for writing");
        write(out);
        if (!out)
            throw std::runtime_error("short write to " + trace_path);
    } catch (...) {
        std::remove(trace_path.c_str());
        throw;
    }
    stream_bytes_copied.fetch_add(blob_len, std::memory_order_relaxed);
    return assembleStreamed(std::move(meta), trace_path, num_ops);
}

} // namespace

std::vector<uint8_t>
packAnalyzedWorkload(const AnalyzedWorkload &aw, const std::string &name)
{
    const std::vector<uint8_t> meta = packMeta(aw, name);
    ByteWriter w;
    writeSnapshotHead(w, meta);

    if (aw.streamed()) {
        // Embed the (typically delta-compressed) trace stream file
        // verbatim: the op vector is never materialized, and the
        // embedded file keeps its own fingerprint for load-time
        // validation. saveAnalyzedWorkload never even builds this
        // blob in memory — it chunk-copies file to file.
        uint64_t blob_len = 0;
        std::ifstream src = openStreamFile(aw, blob_len);
        w.u8(traceStorageStream);
        w.u64(aw.numOps());
        w.u64(blob_len);
        copyChunked(src, blob_len, aw.streamPath(),
                    [&](const uint8_t *data, size_t n) {
                        w.raw(data, n);
                    });
        stream_bytes_copied.fetch_add(blob_len,
                                      std::memory_order_relaxed);
        return w.take();
    }

    // Timing trace (instruction pointers relink from PCs on load; the
    // taint pre-pass is recomputed, so only the base stream is kept).
    // The ops are stored as CASSTF2-codec frames — the same delta +
    // zig-zag varint encoding (with per-frame raw fallback) trace
    // stream files use — instead of the historical raw 24 B/op.
    w.u8(traceStorageInline);
    w.u64(aw.numOps());
    w.u32(traceStreamDefaultFrameOps);
    std::vector<uint8_t> raw;
    raw.reserve(static_cast<size_t>(traceStreamDefaultFrameOps) *
                traceStreamOpBytes);
    auto flush = [&] {
        if (raw.empty())
            return;
        const std::vector<uint8_t> frame = encodeTraceFrame(raw);
        w.raw(frame.data(), frame.size());
        raw.clear();
    };
    auto src = aw.openOpSource();
    for (const uarch::TimingOp *op = src->next(); op; op = src->next()) {
        raw.resize(raw.size() + traceStreamOpBytes);
        opToBytes(*op, raw.data() + raw.size() - traceStreamOpBytes);
        if (raw.size() ==
            static_cast<size_t>(traceStreamDefaultFrameOps) *
                traceStreamOpBytes)
            flush();
    }
    flush();
    inline_ops_written.fetch_add(aw.numOps(), std::memory_order_relaxed);
    return w.take();
}

AnalyzedWorkload::Ptr
unpackAnalyzedWorkload(const std::vector<uint8_t> &bytes,
                       const AnalysisCache::Resolver &resolver,
                       const std::string &stream_dir)
{
    ByteReader r(bytes);
    const SnapshotPrefix prefix = checkSnapshotPrefix(r);
    if (prefix.metaLen > r.remaining())
        throw std::invalid_argument(
            "truncated AnalyzedWorkload snapshot");
    const size_t before_meta = r.remaining();
    SnapshotMeta meta = parseMeta(r, resolver);
    // The declared length locates the trace section in the streaming
    // load path; parseMeta must agree byte for byte or the two load
    // paths would read different sections of the same file.
    if (before_meta - r.remaining() != prefix.metaLen)
        throw std::invalid_argument(
            "AnalyzedWorkload snapshot metadata length mismatch");

    const uint8_t storage = r.u8();
    if (storage == traceStorageInline) {
        const uint64_t num_ops = r.u64();
        uarch::TimingTrace trace;
        if (prefix.version >= 4) {
            trace = readFramedOps(r, num_ops);
        } else {
            // CASSAW3: raw 24 B/op inline section.
            if (num_ops > r.remaining() / traceStreamOpBytes)
                throw std::invalid_argument(
                    "truncated AnalyzedWorkload snapshot");
            trace.reserve(num_ops);
            for (uint64_t i = 0; i < num_ops; i++)
                trace.push_back(
                    opFromBytes(r.raw(traceStreamOpBytes)));
            inline_ops_read.fetch_add(num_ops,
                                      std::memory_order_relaxed);
        }
        if (!r.done())
            throw std::invalid_argument(
                "trailing bytes in AnalyzedWorkload snapshot");
        return assembleWhole(std::move(meta), std::move(trace));
    }
    if (storage != traceStorageStream)
        throw std::invalid_argument(
            "AnalyzedWorkload snapshot has an unknown trace storage "
            "kind");

    const uint64_t num_ops = r.u64();
    const uint64_t blob_len = r.u64();
    if (blob_len != r.remaining())
        throw std::invalid_argument(
            "truncated AnalyzedWorkload snapshot");
    const uint8_t *blob = r.raw(static_cast<size_t>(blob_len));
    return extractStreamSection(
        std::move(meta), num_ops, blob_len, stream_dir,
        [&](std::ofstream &out) {
            out.write(reinterpret_cast<const char *>(blob),
                      static_cast<std::streamsize>(blob_len));
        });
}

void
saveAnalyzedWorkload(const AnalyzedWorkload &aw, const std::string &path,
                     const std::string &name)
{
    if (!aw.streamed()) {
        writeFileBytes(path, packAnalyzedWorkload(aw, name));
        return;
    }

    // Streamed artifact: metadata, then the trace stream file embedded
    // by chunked copy — neither the op vector nor the stream bytes are
    // ever whole in memory.
    const std::vector<uint8_t> meta = packMeta(aw, name);
    uint64_t blob_len = 0;
    std::ifstream src = openStreamFile(aw, blob_len);
    ByteWriter head;
    writeSnapshotHead(head, meta);
    head.u8(traceStorageStream);
    head.u64(aw.numOps());
    head.u64(blob_len);

    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file)
        throw std::runtime_error("cannot open " + path + " for writing");
    const std::vector<uint8_t> head_bytes = head.take();
    file.write(reinterpret_cast<const char *>(head_bytes.data()),
               static_cast<std::streamsize>(head_bytes.size()));
    copyChunked(src, blob_len, aw.streamPath(),
                [&](const uint8_t *data, size_t n) {
                    file.write(reinterpret_cast<const char *>(data),
                               static_cast<std::streamsize>(n));
                });
    if (!file)
        throw std::runtime_error("short write to " + path);
    stream_bytes_copied.fetch_add(blob_len, std::memory_order_relaxed);
}

AnalyzedWorkload::Ptr
loadAnalyzedWorkload(const std::string &path,
                     const AnalysisCache::Resolver &resolver,
                     const std::string &stream_dir)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        throw std::runtime_error("cannot open " + path);
    file.seekg(0, std::ios::end);
    const uint64_t file_len = static_cast<uint64_t>(file.tellg());
    file.seekg(0);

    std::vector<uint8_t> prefix(snapshotPrefixBytes);
    if (file_len < snapshotPrefixBytes ||
        !file.read(reinterpret_cast<char *>(prefix.data()),
                   snapshotPrefixBytes))
        throw std::invalid_argument(
            "truncated AnalyzedWorkload snapshot");
    ByteReader pr(prefix);
    const SnapshotPrefix snap = checkSnapshotPrefix(pr);
    const uint32_t meta_len = snap.metaLen;
    if (meta_len > file_len - snapshotPrefixBytes)
        throw std::invalid_argument(
            "truncated AnalyzedWorkload snapshot");

    std::vector<uint8_t> meta_bytes(meta_len);
    if (!file.read(reinterpret_cast<char *>(meta_bytes.data()),
                   static_cast<std::streamsize>(meta_len)))
        throw std::invalid_argument(
            "truncated AnalyzedWorkload snapshot");
    ByteReader mr(meta_bytes);
    SnapshotMeta meta = parseMeta(mr, resolver);
    if (!mr.done())
        throw std::invalid_argument(
            "trailing bytes in AnalyzedWorkload snapshot metadata");

    const uint8_t storage = fileU8(file);
    const uint64_t num_ops = fileU64(file);
    const uint64_t consumed = snapshotPrefixBytes + meta_len + 1 + 8;

    if (storage == traceStorageInline) {
        uarch::TimingTrace trace;
        if (snap.version >= 4) {
            // Frame-coded inline ops: the section is a few bytes per
            // op, so slurping the remainder keeps this path simple (a
            // whole-mode artifact materializes the trace anyway).
            std::vector<uint8_t> section(
                static_cast<size_t>(file_len - consumed));
            if (!section.empty() &&
                !file.read(reinterpret_cast<char *>(section.data()),
                           static_cast<std::streamsize>(section.size())))
                throw std::invalid_argument(
                    "truncated AnalyzedWorkload snapshot");
            ByteReader sr(section);
            trace = readFramedOps(sr, num_ops);
            if (!sr.done())
                throw std::invalid_argument(
                    "trailing bytes in AnalyzedWorkload snapshot");
        } else {
            // CASSAW3 raw 24 B/op section, read in bounded chunks.
            if (num_ops !=
                    (file_len - consumed) / traceStreamOpBytes ||
                file_len - consumed != num_ops * traceStreamOpBytes)
                throw std::invalid_argument(
                    "truncated AnalyzedWorkload snapshot");
            trace.reserve(num_ops);
            std::vector<uint8_t> chunk(
                copyChunkBytes - copyChunkBytes % traceStreamOpBytes);
            uint64_t read_ops = 0;
            while (read_ops < num_ops) {
                const uint64_t batch = std::min<uint64_t>(
                    chunk.size() / traceStreamOpBytes,
                    num_ops - read_ops);
                if (!file.read(
                        reinterpret_cast<char *>(chunk.data()),
                        static_cast<std::streamsize>(
                            batch * traceStreamOpBytes)))
                    throw std::invalid_argument(
                        "truncated AnalyzedWorkload snapshot");
                for (uint64_t i = 0; i < batch; i++)
                    trace.push_back(opFromBytes(
                        chunk.data() + i * traceStreamOpBytes));
                read_ops += batch;
            }
            inline_ops_read.fetch_add(num_ops,
                                      std::memory_order_relaxed);
        }
        return assembleWhole(std::move(meta), std::move(trace));
    }
    if (storage != traceStorageStream)
        throw std::invalid_argument(
            "AnalyzedWorkload snapshot has an unknown trace storage "
            "kind");

    const uint64_t blob_len = fileU64(file);
    if (blob_len != file_len - consumed - 8)
        throw std::invalid_argument(
            "truncated AnalyzedWorkload snapshot");
    return extractStreamSection(
        std::move(meta), num_ops, blob_len, stream_dir,
        [&](std::ofstream &out) {
            copyChunked(file, blob_len, path,
                        [&](const uint8_t *data, size_t n) {
                            out.write(
                                reinterpret_cast<const char *>(data),
                                static_cast<std::streamsize>(n));
                        });
        });
}

// ---------------------------------------------------------------------
// Shard cell-result sets (CASSCR1)
// ---------------------------------------------------------------------

namespace {

constexpr char cellResultMagic[8] = {'C', 'A', 'S', 'S',
                                     'C', 'R', '1', '\n'};
constexpr uint32_t cellResultVersion = 1;

/**
 * Every counter of an ExperimentResult, in a fixed order shared by
 * the pack and unpack sides. One list instead of two mirrored
 * functions: a field added here is automatically round-tripped.
 */
template <typename Fn>
void
eachResultCounter(ExperimentResult &r, Fn &&fn)
{
    uarch::CoreStats &s = r.stats;
    for (uint64_t *field :
         {&s.cycles, &s.instructions, &s.branches, &s.cryptoBranches,
          &s.condMispredicts, &s.indirectMispredicts,
          &s.returnMispredicts, &s.decodeRedirects, &s.integrityStalls,
          &s.resolveStalls, &s.btuFillStalls, &s.btuWindowStalls,
          &s.btuFlushes, &s.btuMismatches, &s.loads, &s.stores,
          &s.stlForwards, &s.schemeLoadDelays, &s.prospectBlocks,
          &s.icacheMissBubbles})
        fn(*field);
    btu::BtuStats &b = r.btu;
    for (uint64_t *field :
         {&b.lookups, &b.singleTargetHits, &b.hits, &b.misses,
          &b.evictions, &b.checkpointRestores, &b.stallResolve,
          &b.windowStalls, &b.prefetches, &b.flushes, &b.commits,
          &b.squashRewinds})
        fn(*field);
    uarch::BpuStats &p = r.bpu;
    for (uint64_t *field :
         {&p.condLookups, &p.condMispredicts, &p.loopOverrides,
          &p.btbLookups, &p.btbMisses, &p.indirectMispredicts,
          &p.rsbPushes, &p.rsbPops, &p.returnMispredicts, &p.updates})
        fn(*field);
    CacheActivity &c = r.caches;
    for (uint64_t *field :
         {&c.l1iAccesses, &c.l1iMisses, &c.l1dAccesses, &c.l1dMisses,
          &c.l2Accesses, &c.l2Misses, &c.l3Accesses, &c.l3Misses})
        fn(*field);
}

} // namespace

size_t
experimentResultCounterCount()
{
    size_t count = 0;
    ExperimentResult probe;
    eachResultCounter(probe, [&](uint64_t &) { count++; });
    return count;
}

void
packExperimentResult(ByteWriter &w, const ExperimentResult &result)
{
    ExperimentResult copy = result;
    eachResultCounter(copy, [&](uint64_t &field) { w.u64(field); });
}

ExperimentResult
unpackExperimentResult(ByteReader &r)
{
    ExperimentResult result;
    eachResultCounter(result, [&](uint64_t &field) { field = r.u64(); });
    return result;
}

std::vector<uint8_t>
packCellResults(const std::vector<IndexedCellResult> &cells)
{
    ByteWriter w;
    for (char c : cellResultMagic)
        w.u8(static_cast<uint8_t>(c));
    w.u32(cellResultVersion);
    w.u32(static_cast<uint32_t>(cells.size()));
    for (const IndexedCellResult &entry : cells) {
        w.u32(entry.index);
        w.str(entry.cell.workload);
        w.str(entry.cell.suite);
        w.str(uarch::schemeName(entry.cell.scheme));
        w.str(entry.cell.config);
        ExperimentResult result = entry.cell.result;
        eachResultCounter(result, [&](uint64_t &field) {
            w.u64(field);
        });
    }
    return w.take();
}

std::vector<IndexedCellResult>
unpackCellResults(const std::vector<uint8_t> &bytes)
{
    ByteReader r(bytes);
    uint8_t magic[8];
    for (uint8_t &b : magic)
        b = r.u8();
    if (std::memcmp(magic, cellResultMagic, 6) != 0)
        throw ArtifactFormatError(
            "not a cell-result set (bad magic)");
    if (std::memcmp(magic, cellResultMagic, 8) != 0)
        throw ArtifactFormatError(
            "cell-result set has an unknown container revision");
    const uint32_t version = r.u32();
    if (version != cellResultVersion)
        throw ArtifactFormatError(
            "cell-result set has format version " +
            std::to_string(version) + ", expected " +
            std::to_string(cellResultVersion));
    const uint32_t count = r.u32();
    // Bound the declared count before reserving: a garbage count in a
    // corrupt worker output must fail as truncated, not as a huge
    // allocation (corrupt shard files are an anticipated input — the
    // retry path exists for them). Minimum entry: index + four string
    // length prefixes + the counters.
    size_t num_counters = 0;
    {
        ExperimentResult probe;
        eachResultCounter(probe, [&](uint64_t &) { num_counters++; });
    }
    const size_t min_entry_bytes = 4 + 4 * 4 + num_counters * 8;
    if (count > r.remaining() / min_entry_bytes)
        throw std::invalid_argument("truncated cell-result set");
    std::vector<IndexedCellResult> cells;
    cells.reserve(count);
    for (uint32_t i = 0; i < count; i++) {
        IndexedCellResult entry;
        entry.index = r.u32();
        entry.cell.workload = r.str();
        entry.cell.suite = r.str();
        entry.cell.scheme = uarch::schemeFromName(r.str());
        entry.cell.config = r.str();
        eachResultCounter(entry.cell.result, [&](uint64_t &field) {
            field = r.u64();
        });
        cells.push_back(std::move(entry));
    }
    if (!r.done())
        throw std::invalid_argument(
            "trailing bytes in cell-result set");
    return cells;
}

void
saveCellResults(const std::vector<IndexedCellResult> &cells,
                const std::string &path)
{
    writeFileBytes(path, packCellResults(cells));
}

std::vector<IndexedCellResult>
loadCellResults(const std::string &path)
{
    return unpackCellResults(readFileBytes(path, "cell-result set"));
}

SnapshotIoStats
snapshotIoStats()
{
    SnapshotIoStats stats;
    stats.inlineOpsWritten =
        inline_ops_written.load(std::memory_order_relaxed);
    stats.inlineOpsRead = inline_ops_read.load(std::memory_order_relaxed);
    stats.streamBytesCopied =
        stream_bytes_copied.load(std::memory_order_relaxed);
    return stats;
}

uint16_t
packHint(const HintInfo &hint, uint64_t branch_pc)
{
    // 14 bits: single-target(1) | short-trace(1) | 12-bit offset. For
    // single-target branches the offset field carries the target delta
    // in instruction units; otherwise the trace-page offset.
    uint16_t word = 0;
    if (hint.singleTarget) {
        word |= 1u << 13;
        int64_t delta =
            (static_cast<int64_t>(hint.targetPc) -
             static_cast<int64_t>(branch_pc)) /
            static_cast<int64_t>(ir::instBytes);
        word |= static_cast<uint16_t>(delta & 0xfff);
    } else {
        if (hint.shortTrace)
            word |= 1u << 12;
        word |= static_cast<uint16_t>(hint.traceOffset & 0xfff);
    }
    return word;
}

} // namespace cassandra::core
