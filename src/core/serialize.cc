#include "core/serialize.hh"

namespace cassandra::core {

namespace {

/** Little-endian bit writer. */
class BitWriter
{
  public:
    void
    put(uint64_t value, int bits)
    {
        for (int i = 0; i < bits; i++) {
            if (bitPos_ == 0)
                bytes_.push_back(0);
            if ((value >> i) & 1)
                bytes_.back() |= static_cast<uint8_t>(1u << bitPos_);
            bitPos_ = (bitPos_ + 1) % 8;
        }
    }

    std::vector<uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
    int bitPos_ = 0;
};

/** Little-endian bit reader. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<uint8_t> &bytes) : bytes_(bytes)
    {
    }

    uint64_t
    get(int bits)
    {
        uint64_t v = 0;
        for (int i = 0; i < bits; i++) {
            size_t byte = pos_ / 8;
            int bit = static_cast<int>(pos_ % 8);
            if (byte < bytes_.size() && ((bytes_[byte] >> bit) & 1))
                v |= 1ull << i;
            pos_++;
        }
        return v;
    }

  private:
    const std::vector<uint8_t> &bytes_;
    size_t pos_ = 0;
};

} // namespace

std::vector<uint8_t>
packTrace(const BranchTrace &trace)
{
    BitWriter w;
    // Header: 5-bit pattern count, 12-bit element count (the
    // checkpoint trace-index width bounds trace length), 3 flag bits.
    w.put(trace.patternSet.size(), 5);
    w.put(trace.elements.size(), 12);
    w.put(trace.shortTrace ? 1 : 0, 1);
    w.put(trace.singleTarget ? 1 : 0, 1);
    w.put(trace.hasTrace() ? 1 : 0, 1);
    for (const auto &pe : trace.patternSet) {
        w.put(static_cast<uint64_t>(pe.targetOffset) &
                  ((1u << TraceLimits::offsetBits) - 1),
              TraceLimits::offsetBits);
        w.put(pe.repetitions, 8);
    }
    for (const auto &te : trace.elements) {
        w.put(te.patternIndex, 4);
        // patternSize is 1..16: store size-1 in 4 bits.
        w.put(static_cast<uint64_t>(te.patternSize - 1), 4);
        w.put(te.patternCounter, 16);
        w.put(te.traceCounter, 8);
    }
    return w.take();
}

BranchTrace
unpackTrace(const std::vector<uint8_t> &bytes, uint64_t branch_pc)
{
    BitReader r(bytes);
    BranchTrace trace;
    trace.branchPc = branch_pc;
    size_t patterns = r.get(5);
    size_t elements = r.get(12);
    trace.shortTrace = r.get(1) != 0;
    trace.singleTarget = r.get(1) != 0;
    bool has_trace = r.get(1) != 0;
    if (!has_trace)
        trace.rejection = TraceRejection::InputDependent;
    for (size_t i = 0; i < patterns; i++) {
        PatternElement pe;
        uint64_t raw = r.get(TraceLimits::offsetBits);
        // Sign-extend the 12-bit offset.
        int32_t off = static_cast<int32_t>(raw);
        if (off & (1 << (TraceLimits::offsetBits - 1)))
            off -= 1 << TraceLimits::offsetBits;
        pe.targetOffset = off;
        pe.repetitions = static_cast<uint32_t>(r.get(8));
        trace.patternSet.push_back(pe);
    }
    for (size_t i = 0; i < elements; i++) {
        TraceElement te;
        te.patternIndex = static_cast<uint8_t>(r.get(4));
        te.patternSize = static_cast<uint8_t>(r.get(4) + 1);
        te.patternCounter = static_cast<uint16_t>(r.get(16));
        te.traceCounter = static_cast<uint16_t>(r.get(8));
        trace.elements.push_back(te);
    }
    return trace;
}

size_t
packedTraceBytes(const BranchTrace &trace)
{
    size_t bits = 5 + 12 + 3 +
        trace.patternSet.size() * TraceLimits::patternElementBits +
        trace.elements.size() * TraceLimits::traceElementBits;
    return (bits + 7) / 8;
}

uint16_t
packHint(const HintInfo &hint, uint64_t branch_pc)
{
    // 14 bits: single-target(1) | short-trace(1) | 12-bit offset. For
    // single-target branches the offset field carries the target delta
    // in instruction units; otherwise the trace-page offset.
    uint16_t word = 0;
    if (hint.singleTarget) {
        word |= 1u << 13;
        int64_t delta =
            (static_cast<int64_t>(hint.targetPc) -
             static_cast<int64_t>(branch_pc)) /
            static_cast<int64_t>(ir::instBytes);
        word |= static_cast<uint16_t>(delta & 0xfff);
    } else {
        if (hint.shortTrace)
            word |= 1u << 12;
        word |= static_cast<uint16_t>(hint.traceOffset & 0xfff);
    }
    return word;
}

} // namespace cassandra::core
