#include "core/serialize.hh"

#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>

namespace cassandra::core {

namespace {

/** Little-endian bit writer. */
class BitWriter
{
  public:
    void
    put(uint64_t value, int bits)
    {
        for (int i = 0; i < bits; i++) {
            if (bitPos_ == 0)
                bytes_.push_back(0);
            if ((value >> i) & 1)
                bytes_.back() |= static_cast<uint8_t>(1u << bitPos_);
            bitPos_ = (bitPos_ + 1) % 8;
        }
    }

    std::vector<uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
    int bitPos_ = 0;
};

/** Little-endian bit reader. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<uint8_t> &bytes) : bytes_(bytes)
    {
    }

    uint64_t
    get(int bits)
    {
        uint64_t v = 0;
        for (int i = 0; i < bits; i++) {
            size_t byte = pos_ / 8;
            int bit = static_cast<int>(pos_ % 8);
            if (byte < bytes_.size() && ((bytes_[byte] >> bit) & 1))
                v |= 1ull << i;
            pos_++;
        }
        return v;
    }

  private:
    const std::vector<uint8_t> &bytes_;
    size_t pos_ = 0;
};

} // namespace

std::vector<uint8_t>
packTrace(const BranchTrace &trace)
{
    BitWriter w;
    // Header: 5-bit pattern count, 12-bit element count (the
    // checkpoint trace-index width bounds trace length), 3 flag bits.
    w.put(trace.patternSet.size(), 5);
    w.put(trace.elements.size(), 12);
    w.put(trace.shortTrace ? 1 : 0, 1);
    w.put(trace.singleTarget ? 1 : 0, 1);
    w.put(trace.hasTrace() ? 1 : 0, 1);
    for (const auto &pe : trace.patternSet) {
        w.put(static_cast<uint64_t>(pe.targetOffset) &
                  ((1u << TraceLimits::offsetBits) - 1),
              TraceLimits::offsetBits);
        w.put(pe.repetitions, 8);
    }
    for (const auto &te : trace.elements) {
        w.put(te.patternIndex, 4);
        // patternSize is 1..16: store size-1 in 4 bits.
        w.put(static_cast<uint64_t>(te.patternSize - 1), 4);
        w.put(te.patternCounter, 16);
        w.put(te.traceCounter, 8);
    }
    return w.take();
}

BranchTrace
unpackTrace(const std::vector<uint8_t> &bytes, uint64_t branch_pc)
{
    BitReader r(bytes);
    BranchTrace trace;
    trace.branchPc = branch_pc;
    size_t patterns = r.get(5);
    size_t elements = r.get(12);
    trace.shortTrace = r.get(1) != 0;
    trace.singleTarget = r.get(1) != 0;
    bool has_trace = r.get(1) != 0;
    if (!has_trace)
        trace.rejection = TraceRejection::InputDependent;
    for (size_t i = 0; i < patterns; i++) {
        PatternElement pe;
        uint64_t raw = r.get(TraceLimits::offsetBits);
        // Sign-extend the 12-bit offset.
        int32_t off = static_cast<int32_t>(raw);
        if (off & (1 << (TraceLimits::offsetBits - 1)))
            off -= 1 << TraceLimits::offsetBits;
        pe.targetOffset = off;
        pe.repetitions = static_cast<uint32_t>(r.get(8));
        trace.patternSet.push_back(pe);
    }
    for (size_t i = 0; i < elements; i++) {
        TraceElement te;
        te.patternIndex = static_cast<uint8_t>(r.get(4));
        te.patternSize = static_cast<uint8_t>(r.get(4) + 1);
        te.patternCounter = static_cast<uint16_t>(r.get(16));
        te.traceCounter = static_cast<uint16_t>(r.get(8));
        trace.elements.push_back(te);
    }
    return trace;
}

size_t
packedTraceBytes(const BranchTrace &trace)
{
    size_t bits = 5 + 12 + 3 +
        trace.patternSet.size() * TraceLimits::patternElementBits +
        trace.elements.size() * TraceLimits::traceElementBits;
    return (bits + 7) / 8;
}

// ---------------------------------------------------------------------
// AnalyzedWorkload snapshots
// ---------------------------------------------------------------------

namespace {

constexpr char artifactMagic[8] = {'C', 'A', 'S', 'S',
                                   'A', 'W', '2', '\n'};

/** Phase-presence flags of a snapshot (bit set = section present). */
constexpr uint8_t artifactHasTraceImage = 1u << 0;

/** Little-endian byte writer for the artifact container. */
class ByteWriter
{
  public:
    void
    u8(uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; i++)
            bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; i++)
            bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        uint64_t raw;
        std::memcpy(&raw, &v, sizeof raw);
        u64(raw);
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    void
    blob(const std::vector<uint8_t> &b)
    {
        u32(static_cast<uint32_t>(b.size()));
        bytes_.insert(bytes_.end(), b.begin(), b.end());
    }

    std::vector<uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
};

/** Bounds-checked little-endian byte reader. */
class ByteReader
{
  public:
    explicit ByteReader(const std::vector<uint8_t> &bytes)
        : bytes_(bytes)
    {
    }

    uint8_t
    u8()
    {
        need(1);
        return bytes_[pos_++];
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; i++)
            v |= static_cast<uint32_t>(bytes_[pos_++]) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; i++)
            v |= static_cast<uint64_t>(bytes_[pos_++]) << (8 * i);
        return v;
    }

    double
    f64()
    {
        uint64_t raw = u64();
        double v;
        std::memcpy(&v, &raw, sizeof v);
        return v;
    }

    std::string
    str()
    {
        uint32_t n = u32();
        need(n);
        std::string s(bytes_.begin() + pos_, bytes_.begin() + pos_ + n);
        pos_ += n;
        return s;
    }

    std::vector<uint8_t>
    blob()
    {
        uint32_t n = u32();
        need(n);
        std::vector<uint8_t> b(bytes_.begin() + pos_,
                               bytes_.begin() + pos_ + n);
        pos_ += n;
        return b;
    }

    bool done() const { return pos_ == bytes_.size(); }

  private:
    void
    need(size_t n)
    {
        if (bytes_.size() - pos_ < n)
            throw std::invalid_argument(
                "truncated AnalyzedWorkload snapshot");
    }

    const std::vector<uint8_t> &bytes_;
    size_t pos_ = 0;
};

} // namespace

namespace {

/** FNV-1a mixer shared by the fingerprint functions. */
struct Fnv
{
    uint64_t h = 14695981039346656037ull;

    void
    mix(uint64_t v)
    {
        for (int i = 0; i < 8; i++) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }
};

} // namespace

uint64_t
programFingerprint(const ir::Program &program)
{
    // FNV-1a over the decoded instruction stream plus the crypto
    // ranges: any change to the binary an artifact was analyzed
    // against flips the fingerprint.
    Fnv f;
    f.mix(program.insts.size());
    for (const auto &inst : program.insts) {
        f.mix(static_cast<uint64_t>(inst.op));
        f.mix((static_cast<uint64_t>(inst.rd) << 16) |
              (static_cast<uint64_t>(inst.rs1) << 8) | inst.rs2);
        f.mix(static_cast<uint64_t>(inst.imm));
    }
    for (const auto &r : program.cryptoRanges) {
        f.mix(r.lo);
        f.mix(r.hi);
    }
    return f.h;
}

uint64_t
workloadFingerprint(const Workload &workload)
{
    // Program plus every hashable run-relevant binding. setInput is a
    // closure and cannot be fingerprinted: changing input *data*
    // without touching the program is invisible here (documented in
    // the header).
    Fnv f;
    f.mix(programFingerprint(workload.program));
    f.mix(workload.maxDynInsts);
    f.mix(workload.secretRegions.size());
    for (const auto &r : workload.secretRegions) {
        f.mix(r.lo);
        f.mix(r.hi);
    }
    uint64_t frac;
    std::memcpy(&frac, &workload.sandboxFraction, sizeof frac);
    f.mix(frac);
    return f.h;
}

std::vector<uint8_t>
packAnalyzedWorkload(const AnalyzedWorkload &aw, const std::string &name)
{
    ByteWriter w;
    for (char c : artifactMagic)
        w.u8(static_cast<uint8_t>(c));
    w.u32(artifactFormatVersion);
    w.str(name.empty() ? aw.workload().name : name);
    w.u64(workloadFingerprint(aw.workload()));

    // Phase presence: only phases that actually ran are snapshotted —
    // packing a baseline-only artifact must not trigger Algorithm 2.
    const bool has_image = aw.hasTraceImage();
    w.u8(has_image ? artifactHasTraceImage : 0);

    if (has_image) {
        // Branch records.
        const TraceGenResult &tg = aw.traces();
        w.u32(static_cast<uint32_t>(tg.records.size()));
        for (const BranchRecord &rec : tg.records) {
            w.u64(rec.pc);
            w.u64(rec.vanillaSize);
            w.u64(rec.kmersSize);
            w.u8(static_cast<uint8_t>((rec.singleTarget ? 1 : 0) |
                                      (rec.inputDependent ? 2 : 0)));
            w.u8(static_cast<uint8_t>(rec.rejection));
        }

        // Analysis step timings (informational; not replayed).
        w.f64(tg.timings.detectSec);
        w.f64(tg.timings.rawSec);
        w.f64(tg.timings.vanillaSec);
        w.f64(tg.timings.dnaSec);
        w.f64(tg.timings.kmersSec);
        w.f64(tg.timings.embedSec);

        // Trace image: hint words, branch traces, layout counters.
        const TraceImage &image = tg.image;
        w.u32(static_cast<uint32_t>(image.numBranches()));
        // Hints are not directly iterable; the pc set comes from the
        // records (every analyzed branch owns exactly one of each).
        for (const BranchRecord &rec : tg.records) {
            const HintInfo *hint = image.hint(rec.pc);
            if (!hint)
                throw std::invalid_argument(
                    "inconsistent artifact: record without hint");
            w.u64(rec.pc);
            w.u8(static_cast<uint8_t>((hint->singleTarget ? 1 : 0) |
                                      (hint->shortTrace ? 2 : 0)));
            w.u64(hint->targetPc);
            w.u32(hint->traceOffset);
        }
        w.u32(static_cast<uint32_t>(image.traces().size()));
        for (const auto &[pc, trace] : image.traces()) {
            w.u64(pc);
            w.u8(static_cast<uint8_t>(trace.rejection));
            w.u8(static_cast<uint8_t>((trace.singleTarget ? 1 : 0) |
                                      (trace.shortTrace ? 2 : 0)));
            w.u64(trace.singleTargetPc);
            w.blob(packTrace(trace));
        }
        w.u64(image.traceBytes());
        w.u32(static_cast<uint32_t>(image.cryptoRanges.size()));
        for (const auto &r : image.cryptoRanges) {
            w.u64(r.lo);
            w.u64(r.hi);
        }
    }

    // Timing trace (instruction pointers relink from PCs on load; the
    // taint pre-pass is recomputed, so only the base stream is kept).
    // Iterating the op source covers streamed artifacts too.
    w.u64(aw.numOps());
    auto src = aw.openOpSource();
    for (const uarch::TimingOp *op = src->next(); op; op = src->next()) {
        w.u64(op->pc);
        w.u64(op->memAddr);
        w.u64(op->nextPc);
    }
    return w.take();
}

AnalyzedWorkload::Ptr
unpackAnalyzedWorkload(const std::vector<uint8_t> &bytes,
                       const AnalysisCache::Resolver &resolver)
{
    ByteReader r(bytes);
    // "CASSAW" identifies the container; the version byte and the
    // explicit version field distinguish outdated snapshots (evict)
    // from arbitrary non-artifact files.
    uint8_t magic[8];
    for (uint8_t &b : magic)
        b = r.u8();
    if (std::memcmp(magic, artifactMagic, 6) != 0)
        throw ArtifactFormatError(
            "not an AnalyzedWorkload snapshot (bad magic)");
    if (std::memcmp(magic, artifactMagic, 8) != 0)
        throw ArtifactFormatError(
            "AnalyzedWorkload snapshot has an outdated container "
            "format; evict and re-analyze");
    const uint32_t version = r.u32();
    if (version != artifactFormatVersion)
        throw ArtifactFormatError(
            "AnalyzedWorkload snapshot has format version " +
            std::to_string(version) + ", expected " +
            std::to_string(artifactFormatVersion) +
            "; evict and re-analyze");
    const std::string name = r.str();
    const uint64_t fingerprint = r.u64();

    Workload workload = resolver(name);
    if (workloadFingerprint(workload) != fingerprint)
        throw ArtifactStaleError(
            "stale AnalyzedWorkload snapshot for \"" + name +
            "\": program fingerprint mismatch");

    const uint8_t phase_flags = r.u8();
    const bool has_image = (phase_flags & artifactHasTraceImage) != 0;

    TraceGenResult tg;
    if (has_image) {
        uint32_t num_records = r.u32();
        tg.records.reserve(num_records);
        for (uint32_t i = 0; i < num_records; i++) {
            BranchRecord rec;
            rec.pc = r.u64();
            rec.vanillaSize = r.u64();
            rec.kmersSize = r.u64();
            uint8_t flags = r.u8();
            rec.singleTarget = (flags & 1) != 0;
            rec.inputDependent = (flags & 2) != 0;
            rec.rejection = static_cast<TraceRejection>(r.u8());
            tg.records.push_back(rec);
        }

        tg.timings.detectSec = r.f64();
        tg.timings.rawSec = r.f64();
        tg.timings.vanillaSec = r.f64();
        tg.timings.dnaSec = r.f64();
        tg.timings.kmersSec = r.f64();
        tg.timings.embedSec = r.f64();

        std::map<uint64_t, HintInfo> hints;
        uint32_t num_hints = r.u32();
        for (uint32_t i = 0; i < num_hints; i++) {
            uint64_t pc = r.u64();
            uint8_t flags = r.u8();
            HintInfo hint;
            hint.singleTarget = (flags & 1) != 0;
            hint.shortTrace = (flags & 2) != 0;
            hint.targetPc = r.u64();
            hint.traceOffset = r.u32();
            hints[pc] = hint;
        }
        std::map<uint64_t, BranchTrace> traces;
        uint32_t num_traces = r.u32();
        for (uint32_t i = 0; i < num_traces; i++) {
            uint64_t pc = r.u64();
            auto rejection = static_cast<TraceRejection>(r.u8());
            uint8_t flags = r.u8();
            uint64_t single_target_pc = r.u64();
            BranchTrace trace = unpackTrace(r.blob(), pc);
            // unpackTrace collapses flags into the hardware view;
            // restore the exact analysis-side metadata.
            trace.rejection = rejection;
            trace.singleTarget = (flags & 1) != 0;
            trace.shortTrace = (flags & 2) != 0;
            trace.singleTargetPc = single_target_pc;
            traces.emplace(pc, std::move(trace));
        }
        size_t trace_bytes = r.u64();
        tg.image.restore(std::move(hints), std::move(traces),
                         trace_bytes);
        uint32_t num_ranges = r.u32();
        tg.image.cryptoRanges.clear();
        for (uint32_t i = 0; i < num_ranges; i++) {
            ir::PcRange range;
            range.lo = r.u64();
            range.hi = r.u64();
            tg.image.cryptoRanges.push_back(range);
        }
    }

    uint64_t num_ops = r.u64();
    uarch::TimingTrace trace;
    trace.reserve(num_ops);
    for (uint64_t i = 0; i < num_ops; i++) {
        uarch::TimingOp op;
        op.pc = r.u64();
        op.memAddr = r.u64();
        op.nextPc = r.u64();
        trace.push_back(op);
    }
    if (!r.done())
        throw std::invalid_argument(
            "trailing bytes in AnalyzedWorkload snapshot");
    uarch::relinkTimingTrace(trace, workload.program);
    if (has_image)
        return AnalyzedWorkload::fromParts(
            std::move(workload), std::move(tg), std::move(trace));
    // No image section: Algorithm 2 stays demand-driven on the
    // rebuilt artifact, exactly like on a freshly analyzed one.
    return AnalyzedWorkload::fromParts(std::move(workload),
                                       std::move(trace));
}

void
saveAnalyzedWorkload(const AnalyzedWorkload &aw, const std::string &path,
                     const std::string &name)
{
    std::vector<uint8_t> bytes = packAnalyzedWorkload(aw, name);
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file)
        throw std::runtime_error("cannot open " + path + " for writing");
    file.write(reinterpret_cast<const char *>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    if (!file)
        throw std::runtime_error("short write to " + path);
}

AnalyzedWorkload::Ptr
loadAnalyzedWorkload(const std::string &path,
                     const AnalysisCache::Resolver &resolver)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        throw std::runtime_error("cannot open " + path);
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(file)),
        std::istreambuf_iterator<char>());
    return unpackAnalyzedWorkload(bytes, resolver);
}

uint16_t
packHint(const HintInfo &hint, uint64_t branch_pc)
{
    // 14 bits: single-target(1) | short-trace(1) | 12-bit offset. For
    // single-target branches the offset field carries the target delta
    // in instruction units; otherwise the trace-page offset.
    uint16_t word = 0;
    if (hint.singleTarget) {
        word |= 1u << 13;
        int64_t delta =
            (static_cast<int64_t>(hint.targetPc) -
             static_cast<int64_t>(branch_pc)) /
            static_cast<int64_t>(ir::instBytes);
        word |= static_cast<uint16_t>(delta & 0xfff);
    } else {
        if (hint.shortTrace)
            word |= 1u << 12;
        word |= static_cast<uint16_t>(hint.traceOffset & 0xfff);
    }
    return word;
}

} // namespace cassandra::core
