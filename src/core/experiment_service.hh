/**
 * @file
 * The long-running experiment service: queued sweep configs in, merged
 * cross-job batches through one shared runner, per-job reports out.
 *
 * Clients drop ordinary experiment-config JSON files into a spool
 * directory (`run_experiment --submit CONFIG` is the one-line client);
 * the service (`run_experiment --serve`) claims everything queued,
 * parses each job, and runs the whole batch as ONE
 * ExperimentRunner::run(matrices) call over a shared AnalysisCache and
 * ResultStore with RunnerOptions::dedupCells on — so overlapping
 * sweeps from different clients analyze each workload once and
 * simulate each distinct (workload, scheme, config-geometry) cell
 * once, no matter how many jobs asked for it. Cells split back to
 * their jobs by position (run(matrices) concatenates in matrix
 * order), so every job's report is byte-identical to a direct
 * single-process run of its config.
 *
 * Spool layout (all writes atomic tmp+rename, via LocalDirTransport):
 *
 *   <spool>/queue/<job>.job            submitted configs (FIFO-ish)
 *   <spool>/active/<job>.job.<pid>     claimed by a running service
 *   <spool>/done/<job>/report          the job's merged report
 *   <spool>/done/<job>/telemetry.json  batch RunTelemetry (dedup proof)
 *   <spool>/done/<job>/job.json        the submitted config, archived
 *   <spool>/done/<job>/status          "ok" | "error: ..." — written
 *                                      LAST, so its existence is the
 *                                      job-completion signal pollers
 *                                      wait on
 *   <spool>/stop                       makes the service exit its loop
 *   <spool>/service_stats.json         live service counters
 *
 * Claims carry the service pid, so concurrent services on one spool
 * never double-run a job (rename wins exactly once) and a restarted
 * service requeues only jobs whose owner is dead.
 *
 * Core stays registry-agnostic: suite tags in job configs expand
 * through the caller-supplied SuiteExpander hook (the bench layer
 * passes the WorkloadRegistry).
 */

#ifndef CASSANDRA_CORE_EXPERIMENT_SERVICE_HH
#define CASSANDRA_CORE_EXPERIMENT_SERVICE_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace cassandra::core {

/** Queued-sweep coordinator over a spool directory (file comment). */
class ExperimentService
{
  public:
    /** Suite tag -> workload names (empty result = unknown suite). */
    using SuiteExpander =
        std::function<std::vector<std::string>(const std::string &)>;

    struct Options
    {
        /** Spool directory (required; created with parents). */
        std::string spoolDir;
        /** Workload resolver for the shared analysis cache. */
        WorkloadResolver resolver;
        /**
         * Runner configuration shared by every batch (threads,
         * execution backend, result store, ...). dedupCells is
         * forced on — cross-job dedup is the point of the service.
         */
        RunnerOptions runner;
        /** Suite expansion hook; jobs naming suites fail without it. */
        SuiteExpander expandSuite;
        /** Queue poll interval while idle. */
        uint64_t pollMs = 100;
        /** Exit after this long with no work (0 = wait for stop). */
        uint64_t idleExitMs = 0;
        /** Exit after completing this many jobs (0 = unlimited) —
         * lets smoke tests run the real loop with a bounded life. */
        unsigned maxJobs = 0;
    };

    /** Observable service counters (also service_stats.json). */
    struct Stats
    {
        uint64_t jobsClaimed = 0;
        uint64_t jobsDone = 0;
        uint64_t jobsFailed = 0;
        uint64_t jobsRequeued = 0; ///< dead-service claims recovered
        uint64_t batches = 0;
        uint64_t cellsTotal = 0;     ///< across all jobs, pre-dedup
        uint64_t cellsDeduped = 0;   ///< cross-job duplicates collapsed
        uint64_t cellsCached = 0;    ///< replayed from the result store
        uint64_t cellsSimulated = 0; ///< actually dispatched
        /** Fused analysis-pipeline passes across all batches. */
        uint64_t analysisFusedPasses = 0;
        /** Decode-ahead frames served / stalled across all batches. */
        uint64_t prefetchBatches = 0;
        uint64_t prefetchStalls = 0;
    };

    /** @throws std::invalid_argument on a missing spool/resolver. */
    explicit ExperimentService(Options options);
    ~ExperimentService();

    /**
     * The serve loop: requeue dead claims, then claim/batch/run/report
     * until the stop flag rises (or idleExitMs/maxJobs). One line per
     * job and batch on `log`. Returns 0 on a clean stop, 1 when the
     * loop died on an unexpected exception.
     */
    int serve(std::ostream &log);

    const Stats &stats() const { return stats_; }

    /** The runner jobs batch through (tests inspect its store). */
    ExperimentRunner &runner() const { return *runner_; }

    // -- client side (static: no service instance needed) ------------

    /**
     * Queue a config file: atomically publish its bytes as
     * <spool>/queue/<job>.job. Returns the job id.
     * @throws std::runtime_error when the config cannot be read.
     */
    static std::string submit(const std::string &spool_dir,
                              const std::string &config_path);

    /**
     * Poll until the job's status file exists (or `timeout_ms`
     * passes). Returns the status text ("ok" / "error: ..."), empty
     * on timeout.
     */
    static std::string waitForJob(const std::string &spool_dir,
                                  const std::string &job,
                                  uint64_t timeout_ms,
                                  uint64_t poll_ms = 100);

    /** Raise the stop flag a running service's loop honors. */
    static void requestStop(const std::string &spool_dir);

    /** Spool-relative result paths of a job. */
    static std::string reportKey(const std::string &job);
    static std::string statusKey(const std::string &job);
    static std::string telemetryKey(const std::string &job);

  private:
    struct Job;

    void requeueDeadClaims(std::ostream &log);
    std::vector<Job> claimQueued(std::ostream &log);
    void runBatch(std::vector<Job> &batch, std::ostream &log);
    void finishJob(const Job &job, const Experiment &exp,
                   size_t cell_begin, size_t cell_count);
    void failJob(const Job &job, const std::string &message,
                 std::ostream &log);
    void writeServiceStats();

    Options options_;
    std::shared_ptr<class LocalDirTransport> spool_;
    std::unique_ptr<ExperimentRunner> runner_;
    Stats stats_;
};

} // namespace cassandra::core

#endif // CASSANDRA_CORE_EXPERIMENT_SERVICE_HH
