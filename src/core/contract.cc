#include "core/contract.hh"

namespace cassandra::core {

std::vector<sim::Obs>
contractTrace(const Workload &workload, int which)
{
    sim::Machine machine(workload.program);
    machine.recordObservations = true;
    if (workload.setInput)
        workload.setInput(machine, which);
    auto res = machine.run(workload.maxDynInsts);
    if (!res.halted)
        throw sim::SimError(workload.name + ": contract run did not halt");
    return std::move(machine.observations);
}

std::vector<sim::Obs>
cryptoCfSubtrace(const std::vector<sim::Obs> &full)
{
    std::vector<sim::Obs> out;
    for (const auto &o : full) {
        bool cf = o.kind == sim::ObsKind::Pc ||
            o.kind == sim::ObsKind::Call || o.kind == sim::ObsKind::Ret ||
            o.kind == sim::ObsKind::Jump;
        if (o.crypto && cf)
            out.push_back(o);
    }
    return out;
}

std::vector<sim::Obs>
cryptoSubtrace(const std::vector<sim::Obs> &full)
{
    std::vector<sim::Obs> out;
    for (const auto &o : full) {
        if (o.crypto)
            out.push_back(o);
    }
    return out;
}

bool
isConstantTime(const Workload &workload)
{
    auto a = cryptoSubtrace(contractTrace(workload, contractInputA));
    auto b = cryptoSubtrace(contractTrace(workload, contractInputB));
    return a == b;
}

} // namespace cassandra::core
