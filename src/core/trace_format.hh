/**
 * @file
 * Hardware trace representation (paper §5.2, Figure 4).
 *
 * Per static branch, a trace consists of (1) a pattern set built from
 * the k-mers patterns, storing all possible branch outcomes, and (2) a
 * branch trace built from the k-mers trace K. Bit widths:
 *
 *   Pattern element    = 12-bit signed target offset + 8-bit
 *                        repetitions                          (20 bits)
 *   Trace element      = 4-bit pattern index + 4-bit pattern size +
 *                        16-bit pattern counter + 8-bit trace
 *                        counter                              (32 bits)
 *   Checkpoint element = 12-bit trace index + 16-bit latest pattern
 *                        counter + 8-bit latest trace counter +
 *                        16-bit original pattern counter + 8-bit
 *                        original trace counter               (60 bits)
 *
 * With 16 entries of 16 elements in the PAT and TRC plus 16 checkpoint
 * elements, the BTU stores 14,272 bits = 1.74 KiB, matching Table 3.
 * (The figure in the paper lists field widths {4, 8, 16, 4}; we assign
 * 4 bits to the pattern size — which never exceeds 16 — and 8 to the
 * trace counter; the total is identical.)
 *
 * Counters that overflow a field are split across duplicated elements,
 * the paper's delta x 300 -> delta x 255 . delta x 45 rule.
 */

#ifndef CASSANDRA_CORE_TRACE_FORMAT_HH
#define CASSANDRA_CORE_TRACE_FORMAT_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/kmers.hh"

namespace cassandra::core {

/** Field-width limits of the hardware encoding. */
struct TraceLimits
{
    static constexpr int offsetBits = 12;       ///< pattern target offset
    static constexpr uint32_t maxRepetitions = 255;   ///< 8-bit
    static constexpr uint32_t maxPatternCounter = 65535; ///< 16-bit
    static constexpr uint32_t maxTraceCounter = 255;  ///< 8-bit
    static constexpr size_t entryElements = 16; ///< elements per BTU entry
    static constexpr int patternElementBits = 20;
    static constexpr int traceElementBits = 32;
    static constexpr int checkpointElementBits = 60;
    static constexpr int hintBitsPerBranch = 14; ///< paper §5.2
};

/** One pattern element: a branch outcome and its repetition count. */
struct PatternElement
{
    /** Signed (target - branch PC) in instruction units; 12-bit. */
    int32_t targetOffset = 0;
    /** Number of consecutive repetitions; 8-bit. */
    uint32_t repetitions = 0;

    bool
    operator==(const PatternElement &o) const
    {
        return targetOffset == o.targetOffset &&
            repetitions == o.repetitions;
    }
};

/** One trace element: which pattern to replay and how often. */
struct TraceElement
{
    uint8_t patternIndex = 0;   ///< 4-bit position in the pattern set
    uint8_t patternSize = 0;    ///< 4-bit count of pattern elements
    uint16_t patternCounter = 0;///< 16-bit branch executions per pass
    uint16_t traceCounter = 0;  ///< 8-bit passes before advancing
};

/** Architectural checkpoint of a branch's trace progress (Fig. 4(c)). */
struct CheckpointElement
{
    uint16_t traceIndex = 0;          ///< 12-bit index into the trace
    uint16_t latestPatternCounter = 0;///< remaining in current pattern
    uint16_t latestTraceCounter = 0;  ///< remaining passes
    uint16_t originalPatternCounter = 0; ///< refresh value (head)
    uint16_t originalTraceCounter = 0;   ///< refresh value (head)
};

/** Why a branch could not get a hardware trace. */
enum class TraceRejection : uint8_t
{
    None,
    InputDependent,  ///< K differs across inputs (Algorithm 2 diff)
    PatternOverflow, ///< merged pattern set exceeds 16 elements
    OffsetOverflow,  ///< a target offset exceeds 12 signed bits
};

/** The full hardware trace of one static branch. */
struct BranchTrace
{
    uint64_t branchPc = 0;
    /** Single-target branches carry only a hint, no trace. */
    bool singleTarget = false;
    uint64_t singleTargetPc = 0;
    /** Trace fits in one TRC entry (<= 16 elements). */
    bool shortTrace = false;
    /** No replayable trace; fetch stalls until the branch resolves. */
    TraceRejection rejection = TraceRejection::None;

    std::vector<PatternElement> patternSet; ///< <= 16 elements
    std::vector<TraceElement> elements;     ///< wraps at the end (EoT)

    bool hasTrace() const
    {
        return !singleTarget && rejection == TraceRejection::None;
    }

    /** Resolve a pattern element to an absolute target PC. */
    uint64_t
    targetOf(const PatternElement &pe) const
    {
        return branchPc +
            static_cast<int64_t>(pe.targetOffset) *
            static_cast<int64_t>(ir::instBytes);
    }

    /** Packed storage cost in bits (patterns + trace elements). */
    size_t storageBits() const;

    /** Expand the encoded trace back to a vanilla trace (for tests). */
    VanillaTrace expand() const;

    std::string toString() const;
};

/**
 * Encode a compressed k-mers result into the hardware format.
 *
 * Builds the compact overlapped pattern-set superstring (the paper's
 * ACT + CTA -> ACTA rule), splits counters to field widths and lays out
 * trace elements. Returns a BranchTrace whose rejection field records
 * any hardware limit that was exceeded.
 */
BranchTrace encodeBranchTrace(uint64_t branch_pc, const KmersResult &kmers);

/** Encode a single-target branch (hint only). */
BranchTrace makeSingleTarget(uint64_t branch_pc, uint64_t target_pc);

/** Encode an input-dependent branch (no trace, stall-until-resolve). */
BranchTrace makeInputDependent(uint64_t branch_pc);

} // namespace cassandra::core

#endif // CASSANDRA_CORE_TRACE_FORMAT_HH
