/**
 * @file
 * DNA encoding of vanilla traces (paper §4.2.1, step 3 of Figure 2).
 *
 * Each distinct (target, count) run element of a vanilla trace becomes
 * one letter of a custom alphabet (the paper uses scikit-bio with a
 * custom alphabet precisely because branches can have more than four
 * outcomes). The vanilla trace then reads as a "DNA sequence" over
 * those letters, ready for k-mers compression.
 */

#ifndef CASSANDRA_CORE_DNA_HH
#define CASSANDRA_CORE_DNA_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/branch_trace.hh"

namespace cassandra::core {

/** A letter of the (unbounded) DNA alphabet. */
using Symbol = uint32_t;

/** A DNA sequence: one letter per vanilla run element occurrence. */
using DnaSequence = std::vector<Symbol>;

/** DNA encoding of a vanilla trace. */
struct DnaEncoding
{
    /** The encoded sequence. */
    DnaSequence seq;
    /** letterTable[s] is the run element letter s stands for. */
    std::vector<RunElement> letterTable;

    /** Number of base letters (size of the used alphabet). */
    size_t alphabetSize() const { return letterTable.size(); }

    /** Decode back to a vanilla trace (adjacent equal runs re-merged). */
    VanillaTrace decode() const;

    /**
     * Render with A, C, G, T, then E, F, ... for display; mirrors the
     * paper's examples (e.g. "ACACG").
     */
    std::string toString() const;
};

/** Encode a vanilla trace as a DNA sequence. */
DnaEncoding encodeDna(const VanillaTrace &vanilla);

/** Display name of a DNA letter (A, C, G, T, E, F, ...). */
std::string symbolName(Symbol s);

} // namespace cassandra::core

#endif // CASSANDRA_CORE_DNA_HH
