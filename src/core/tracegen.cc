#include "core/tracegen.hh"

#include <chrono>

namespace cassandra::core {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Collect raw traces of all crypto branches under one input. */
std::map<uint64_t, RawTrace>
collectRun(const Workload &w, int which)
{
    sim::Machine machine(w.program);
    TraceCollector collector(machine, /*crypto_only=*/true);
    if (w.setInput)
        w.setInput(machine, which);
    auto res = machine.run(w.maxDynInsts);
    if (!res.halted) {
        throw sim::SimError(w.name + ": run exceeded instruction budget (" +
                            std::to_string(res.instCount) + ")");
    }
    return collector.raw();
}

} // namespace

std::vector<const BranchRecord *>
TraceGenResult::multiTarget() const
{
    std::vector<const BranchRecord *> out;
    for (const auto &r : records) {
        if (!r.singleTarget)
            out.push_back(&r);
    }
    return out;
}

TraceGenResult
generateTraces(const Workload &workload, const KmersParams &params)
{
    TraceGenResult out;
    out.image.cryptoRanges = workload.program.cryptoRanges;

    // Steps A + B: one instrumented run per analysis input collects the
    // raw traces of every static branch that appears during execution
    // (the per-branch loop of Algorithm 2 then walks the union set).
    auto t0 = Clock::now();
    auto raw1 = collectRun(workload, 0);
    auto raw2 = collectRun(workload, 1);
    out.timings.rawSec = secondsSince(t0);

    // Step A bookkeeping: the static branch set is the union of the
    // branches seen under either input.
    t0 = Clock::now();
    std::map<uint64_t, bool> unique_branches;
    for (const auto &[pc, trace] : raw1)
        unique_branches[pc] = true;
    for (const auto &[pc, trace] : raw2)
        unique_branches[pc] = true;
    out.timings.detectSec = secondsSince(t0);

    for (const auto &[pc, seen] : unique_branches) {
        BranchRecord rec;
        rec.pc = pc;

        auto it1 = raw1.find(pc);
        auto it2 = raw2.find(pc);
        if (it1 == raw1.end() || it2 == raw2.end()) {
            // Executed under only one input: control flow itself is
            // input-dependent.
            rec.inputDependent = true;
            rec.rejection = TraceRejection::InputDependent;
            out.image.add(makeInputDependent(pc));
            out.records.push_back(rec);
            continue;
        }

        // Step C: vanilla traces.
        t0 = Clock::now();
        VanillaTrace v1 = toVanilla(it1->second);
        VanillaTrace v2 = toVanilla(it2->second);
        out.timings.vanillaSec += secondsSince(t0);
        rec.vanillaSize = v1.size();

        // Single-target: every execution went to the same place under
        // both inputs (vanilla trace size is already 1).
        if (v1.size() == 1 && v2.size() == 1 &&
            v1[0].target == v2[0].target) {
            rec.singleTarget = true;
            out.image.add(makeSingleTarget(pc, v1[0].target));
            out.records.push_back(rec);
            continue;
        }

        // Input-dependence diff. Comparing the vanilla traces is
        // equivalent to the paper's diff(K1, K2): Algorithm 1 is
        // deterministic, so equal vanilla traces yield equal K and
        // unequal vanilla traces yield unequal expansions.
        if (!(v1 == v2)) {
            rec.inputDependent = true;
            rec.rejection = TraceRejection::InputDependent;
            out.image.add(makeInputDependent(pc));
            out.records.push_back(rec);
            continue;
        }

        // Steps D + E: DNA encoding and k-mers compression.
        t0 = Clock::now();
        DnaEncoding dna = encodeDna(v1);
        out.timings.dnaSec += secondsSince(t0);

        t0 = Clock::now();
        KmersResult kmers = compressKmers(dna, params);
        out.timings.kmersSec += secondsSince(t0);
        rec.kmersSize = kmers.totalSize();

        // Hardware encoding + embedding. If the merged pattern set of
        // a branch does not fit one PAT entry, recompress with smaller
        // maximum pattern sizes — the paper's §4.2.1 knob of "starting
        // with smaller and more frequent patterns".
        t0 = Clock::now();
        BranchTrace bt = encodeBranchTrace(pc, kmers);
        for (int retry_k = params.maxK / 2;
             bt.rejection == TraceRejection::PatternOverflow &&
             retry_k >= 2;
             retry_k /= 2) {
            KmersParams retry = params;
            retry.maxK = retry_k;
            bt = encodeBranchTrace(pc, compressKmers(dna, retry));
        }
        rec.rejection = bt.rejection;
        out.image.add(bt);
        out.timings.embedSec += secondsSince(t0);
        out.records.push_back(rec);
    }
    return out;
}

} // namespace cassandra::core
