#include "core/tracegen.hh"

#include <algorithm>
#include <chrono>

#include "core/analysis_pipeline.hh"

namespace cassandra::core {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Above this many logical run elements, a perfectly periodic branch
 * is encoded from one period instead of the full expansion (the BTU
 * replays traces cyclically, so the served element sequence is
 * identical). Gated high enough that no single-kernel workload ever
 * reaches it — trace size influences BTU pressure, so ungated
 * period-encoding would perturb existing timings.
 */
constexpr uint64_t kPeriodEncodeElems = uint64_t(1) << 20;

/** One instrumented run accumulating folded traces (steps A-C). */
struct FoldedRun
{
    std::map<uint64_t, FoldedTrace> traces;
    uint64_t heldBytes = 0;
    uint64_t peakBytes = 0;
};

FoldedRun
collectRun(const Workload &w, int which)
{
    sim::Machine machine(w.program);
    FoldedTraceCollector collector(machine, /*crypto_only=*/true);
    if (w.setInput)
        w.setInput(machine, which);
    auto res = machine.run(w.maxDynInsts);
    if (!res.halted)
        throw InstructionBudgetError(w.name, res.instCount,
                                     "Algorithm 2 analysis run");
    collector.finish();
    FoldedRun out;
    out.heldBytes = collector.heldBytes();
    out.peakBytes = collector.peakHeldBytes();
    out.traces = collector.take();
    return out;
}

/** collectRun through the fused batch pipeline: same accumulators,
 * same crypto filter, batched probe instead of per-branch callback. */
FoldedRun
collectRunFused(const Workload &w, int which)
{
    FusedBranchRun run =
        runFusedBranchPass(w, which, /*crypto_only=*/true);
    FoldedRun out;
    out.heldBytes = run.heldBytes;
    out.peakBytes = run.peakBytes;
    out.traces = std::move(run.traces);
    return out;
}

} // namespace

std::vector<const BranchRecord *>
TraceGenResult::multiTarget() const
{
    std::vector<const BranchRecord *> out;
    for (const auto &r : records) {
        if (!r.singleTarget)
            out.push_back(&r);
    }
    return out;
}

TraceGenResult
generateTraces(const Workload &workload, const KmersParams &params,
               bool fused)
{
    TraceGenResult out;
    out.image.cryptoRanges = workload.program.cryptoRanges;

    // Steps A + B + C fused: one instrumented run per analysis input
    // run-length-encodes every static branch's trace online (the
    // folded accumulators never hold the raw target stream), so
    // analysis memory is O(static branches + folded RLE size) no
    // matter how many dynamic instructions the run executes. Both
    // collectors feed one FoldedTrace::append sequence; run1's
    // accumulators stay resident while run2 executes in either mode,
    // preserving the peakAccumBytes accounting below.
    auto t0 = Clock::now();
    FoldedRun run1 =
        fused ? collectRunFused(workload, 0) : collectRun(workload, 0);
    FoldedRun run2 =
        fused ? collectRunFused(workload, 1) : collectRun(workload, 1);
    out.timings.rawSec = secondsSince(t0);

    // run1's accumulators stay resident while run2 executes, so the
    // process-level peak is run1's peak or run1's footprint plus
    // run2's peak, whichever is larger.
    out.peakAccumBytes =
        std::max(run1.peakBytes, run1.heldBytes + run2.peakBytes);

    // Step A bookkeeping: the static branch set is the union of the
    // branches seen under either input.
    t0 = Clock::now();
    std::map<uint64_t, bool> unique_branches;
    for (const auto &[pc, trace] : run1.traces)
        unique_branches[pc] = true;
    for (const auto &[pc, trace] : run2.traces)
        unique_branches[pc] = true;
    out.timings.detectSec = secondsSince(t0);

    for (const auto &[pc, seen] : unique_branches) {
        BranchRecord rec;
        rec.pc = pc;

        auto it1 = run1.traces.find(pc);
        auto it2 = run2.traces.find(pc);
        if (it1 == run1.traces.end() || it2 == run2.traces.end()) {
            // Executed under only one input: control flow itself is
            // input-dependent.
            rec.inputDependent = true;
            rec.rejection = TraceRejection::InputDependent;
            out.image.add(makeInputDependent(pc));
            out.records.push_back(rec);
            continue;
        }

        const FoldedTrace &f1 = it1->second;
        const FoldedTrace &f2 = it2->second;
        rec.vanillaSize = f1.logicalSize();

        // A branch that outgrew its accumulator cap gets the same
        // safe fallback as an undecodable one: stall until resolved.
        if (f1.capped() || f2.capped()) {
            rec.inputDependent = true;
            rec.rejection = TraceRejection::InputDependent;
            out.image.add(makeInputDependent(pc));
            out.records.push_back(rec);
            continue;
        }

        // Single-target: every execution went to the same place under
        // both inputs (vanilla trace size is already 1).
        if (f1.logicalSize() == 1 && f2.logicalSize() == 1 &&
            f1.frontTarget() == f2.frontTarget()) {
            rec.singleTarget = true;
            out.image.add(makeSingleTarget(pc, f1.frontTarget()));
            out.records.push_back(rec);
            continue;
        }

        // Input-dependence diff. Folding is deterministic in the
        // committed-element sequence, so structural equality of the
        // folded traces is exactly the paper's diff(K1, K2) on the
        // vanilla traces — no expansion needed to compare.
        if (!f1.sameAs(f2)) {
            rec.inputDependent = true;
            rec.rejection = TraceRejection::InputDependent;
            out.image.add(makeInputDependent(pc));
            out.records.push_back(rec);
            continue;
        }

        // Step C output: materialize the (small) vanilla trace for
        // the compression stages. Perfectly periodic traces past the
        // gate encode one period — cyclically identical replay.
        t0 = Clock::now();
        VanillaTrace v1;
        const VanillaTrace *period = f1.purePeriod();
        if (period && f1.logicalSize() > kPeriodEncodeElems)
            v1 = *period;
        else
            v1 = f1.expand();
        out.timings.vanillaSec += secondsSince(t0);

        // Steps D + E: DNA encoding and k-mers compression.
        t0 = Clock::now();
        DnaEncoding dna = encodeDna(v1);
        out.timings.dnaSec += secondsSince(t0);

        t0 = Clock::now();
        KmersResult kmers = compressKmers(dna, params);
        out.timings.kmersSec += secondsSince(t0);
        rec.kmersSize = kmers.totalSize();

        // Hardware encoding + embedding. If the merged pattern set of
        // a branch does not fit one PAT entry, recompress with smaller
        // maximum pattern sizes — the paper's §4.2.1 knob of "starting
        // with smaller and more frequent patterns".
        t0 = Clock::now();
        BranchTrace bt = encodeBranchTrace(pc, kmers);
        for (int retry_k = params.maxK / 2;
             bt.rejection == TraceRejection::PatternOverflow &&
             retry_k >= 2;
             retry_k /= 2) {
            KmersParams retry = params;
            retry.maxK = retry_k;
            bt = encodeBranchTrace(pc, compressKmers(dna, retry));
        }
        rec.rejection = bt.rejection;
        out.image.add(bt);
        out.timings.embedSec += secondsSince(t0);
        out.records.push_back(rec);
    }
    return out;
}

} // namespace cassandra::core
