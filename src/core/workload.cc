/**
 * @file
 * Composite workload builder (server request mixes).
 *
 * Layout note: la() resolves data symbols eagerly, so the driver loop
 * is emitted after every segment's emitOnce() has allocated its data
 * (finalize() starts programs at "main" wherever it is defined).
 */

#include "core/workload.hh"

#include <algorithm>

namespace cassandra::core {

namespace {

/** Argument registers (shared convention with the crypto kernels). */
constexpr ir::RegId kA0 = 10, kA1 = 11, kA2 = 12;

constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ull;

/** splitmix64 finalizer: host-side seed derivation. */
uint64_t
mix64(uint64_t x)
{
    x += kGolden;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Per-slot host seed for one analysis input. Secret slots differ
 * across every input; PublicVaried only across the two analysis
 * inputs (so Algorithm 2 flags dependence without perturbing the
 * evaluation run); PublicFixed never. */
uint64_t
slotSeed(size_t slot, SegmentBinding::Kind kind, int which)
{
    uint64_t variant = 0;
    switch (kind) {
    case SegmentBinding::Kind::Secret:
        variant = static_cast<uint64_t>(which) + 1;
        break;
    case SegmentBinding::Kind::PublicVaried:
        variant = (which == 0 || which == 1)
            ? static_cast<uint64_t>(which) + 1
            : 0;
        break;
    case SegmentBinding::Kind::PublicFixed:
        variant = 0;
        break;
    }
    return mix64(mix64(slot * 2654435761u) ^ variant * 0x100000001b3ull);
}

} // namespace

CompositeWorkloadBuilder::CompositeWorkloadBuilder(std::string name,
                                                   std::string suite,
                                                   uint64_t requests)
    : name_(std::move(name)), suite_(std::move(suite)),
      requests_(std::max<uint64_t>(1, requests))
{}

CompositeWorkloadBuilder &
CompositeWorkloadBuilder::addSegment(WorkloadSegment segment)
{
    segments_.push_back(std::move(segment));
    return *this;
}

CompositeWorkloadBuilder &
CompositeWorkloadBuilder::addSecretRegion(SecretRegion region)
{
    extraSecretRegions_.push_back(region);
    return *this;
}

Workload
CompositeWorkloadBuilder::build()
{
    casm::Assembler as;

    for (const WorkloadSegment &seg : segments_)
        if (seg.emitOnce)
            seg.emitOnce(as);

    // Driver state lives in the data segment: kernels may clobber
    // every scratch register (keccak uses up to x62), so the request
    // index and the per-segment countdowns never stay in registers
    // across a segment call.
    size_t slots = 0;
    for (const WorkloadSegment &seg : segments_)
        slots += seg.bindings.size();
    as.allocData("cw_seeds", std::max<size_t>(1, slots) * 8, 8);
    as.allocData("cw_req", 8, 8);
    as.allocData("cw_counters", std::max<size_t>(1, segments_.size()) * 8,
                 8);
    for (size_t i = 0; i < segments_.size(); i++)
        as.setData64("cw_counters", i, 0); // countdown 0: fire at r=0

    as.beginFunction("main", /*crypto=*/false);
    {
        casm::Assembler::Temp t(as);
        as.la(t, "cw_req");
        as.sd(ir::regZero, t, 0);
    }
    as.label(".cw_loop");
    size_t slot = 0;
    for (size_t i = 0; i < segments_.size(); i++) {
        const WorkloadSegment &seg = segments_[i];
        const std::string tag = std::to_string(i);
        if (seg.every > 1) {
            casm::Assembler::Temp t(as), t2(as);
            as.la(t, "cw_counters");
            as.ld(t2, t, static_cast<int64_t>(i) * 8);
            as.bnez(t2, ".cw_dec_" + tag);
            as.li(t2, static_cast<int64_t>(seg.every) - 1);
            as.sd(t2, t, static_cast<int64_t>(i) * 8);
            as.j(".cw_fire_" + tag);
            as.label(".cw_dec_" + tag);
            as.addi(t2, t2, -1);
            as.sd(t2, t, static_cast<int64_t>(i) * 8);
            as.j(".cw_skip_" + tag);
            as.label(".cw_fire_" + tag);
        }
        for (const SegmentBinding &b : seg.bindings) {
            // a2 = seeds[slot] ^ (req * golden + mix64(slot)): a
            // distinct deterministic stream per (binding, request).
            casm::Assembler::Temp t(as), t2(as);
            as.la(t, "cw_seeds");
            as.ld(kA2, t, static_cast<int64_t>(slot) * 8);
            as.la(t, "cw_req");
            as.ld(t, t, 0);
            as.li(t2, static_cast<int64_t>(kGolden));
            as.mul(t, t, t2);
            as.li(t2, static_cast<int64_t>(mix64(slot)));
            as.add(t, t, t2);
            as.xor_(kA2, kA2, t);
            as.la(kA0, b.symbol, static_cast<int64_t>(b.offset));
            as.li(kA1, static_cast<int64_t>(b.length));
            as.call("cw_fill");
            slot++;
        }
        if (seg.emitCall)
            seg.emitCall(as);
        if (seg.every > 1)
            as.label(".cw_skip_" + tag);
    }
    {
        casm::Assembler::Temp t(as), t2(as);
        as.la(t, "cw_req");
        as.ld(t2, t, 0);
        as.addi(t2, t2, 1);
        as.sd(t2, t, 0);
        as.li(t, static_cast<int64_t>(requests_));
        as.blt(t2, t, ".cw_loop");
    }
    as.halt();
    as.endFunction();

    // xorshift64 fill leaf: dst in a0, byte count (multiple of 8) in
    // a1, seed in a2. Non-crypto: its loop branch depends only on the
    // public length, so it is never analyzed or protected.
    as.beginFunction("cw_fill", /*crypto=*/false);
    {
        casm::Assembler::Temp t(as);
        as.label(".cw_fill_loop");
        as.shli(t, kA2, 13);
        as.xor_(kA2, kA2, t);
        as.shri(t, kA2, 7);
        as.xor_(kA2, kA2, t);
        as.shli(t, kA2, 17);
        as.xor_(kA2, kA2, t);
        as.sd(kA2, kA0, 0);
        as.addi(kA0, kA0, 8);
        as.addi(kA1, kA1, -8);
        as.bnez(kA1, ".cw_fill_loop");
        as.ret();
    }
    as.endFunction();

    Workload w;
    w.name = name_;
    w.suite = suite_;

    // Budget from n: per-request driver overhead plus each segment's
    // firing estimate, with 2x headroom — big enough that honest runs
    // never hit it, small enough that a runaway loop still trips the
    // typed InstructionBudgetError instead of spinning for hours.
    uint64_t budget = 1'000'000 + requests_ * 2'000;
    for (const WorkloadSegment &seg : segments_) {
        uint64_t firings =
            (requests_ + seg.every - 1) / std::max<uint64_t>(1, seg.every);
        budget += firings * seg.instsPerFiring;
    }
    w.maxDynInsts = budget * 2;

    struct SlotInfo
    {
        size_t slot;
        SegmentBinding::Kind kind;
    };
    std::vector<SlotInfo> slotInfo;
    slot = 0;
    for (const WorkloadSegment &seg : segments_) {
        for (const SegmentBinding &b : seg.bindings) {
            slotInfo.push_back({slot, b.kind});
            if (b.kind == SegmentBinding::Kind::Secret) {
                uint64_t lo = as.dataAddr(b.symbol) + b.offset;
                w.secretRegions.push_back({lo, lo + b.length});
            }
            slot++;
        }
    }
    for (const WorkloadSegment &seg : segments_)
        if (seg.annotateSecrets)
            seg.annotateSecrets(as, w.secretRegions);
    for (const SecretRegion &r : extraSecretRegions_)
        w.secretRegions.push_back(r);

    uint64_t seeds_addr = as.dataAddr("cw_seeds");
    w.setInput = [seeds_addr, slotInfo](sim::Machine &m, int which) {
        for (const SlotInfo &s : slotInfo) {
            uint64_t v = slotSeed(s.slot, s.kind, which);
            uint8_t bytes[8];
            for (int i = 0; i < 8; i++)
                bytes[i] = static_cast<uint8_t>(v >> (8 * i));
            m.writeBytes(seeds_addr + s.slot * 8, bytes, 8);
        }
    };

    w.program = as.finalize();
    return w;
}

} // namespace cassandra::core
