/**
 * @file
 * Automatic trace generation (paper §4.3, Algorithm 2).
 *
 * Steps:
 *   A detect all static branches appearing during execution;
 *   B collect raw traces per static branch (both analysis inputs);
 *   C transform to vanilla traces (run-length encoding);
 *   D transform to DNA sequences;
 *   E k-mers compression (Algorithm 1).
 *
 * Branches whose compressed traces differ between the two inputs are
 * input-dependent: they get no trace and the frontend stalls until they
 * resolve (paper footnote 4). Single-target branches get a hint word
 * only. Everything else is encoded into the hardware format and
 * embedded in the trace image.
 */

#ifndef CASSANDRA_CORE_TRACEGEN_HH
#define CASSANDRA_CORE_TRACEGEN_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/branch_trace.hh"
#include "core/kmers.hh"
#include "core/trace_image.hh"
#include "core/workload.hh"

namespace cassandra::core {

/** Per-static-branch analysis record (feeds Table 1). */
struct BranchRecord
{
    uint64_t pc = 0;
    size_t vanillaSize = 0;
    size_t kmersSize = 0; ///< trace size + pattern set size
    bool singleTarget = false;
    bool inputDependent = false;
    TraceRejection rejection = TraceRejection::None;

    /** Per-branch compression rate (vanilla / k-mers). */
    double
    compressionRate() const
    {
        return kmersSize ? static_cast<double>(vanillaSize) / kmersSize
                         : 0.0;
    }
};

/** Wall-clock timings of the Algorithm 2 steps (paper §7.5). */
struct TraceGenTimings
{
    double detectSec = 0;   ///< step A
    double rawSec = 0;      ///< step B
    double vanillaSec = 0;  ///< step C
    double dnaSec = 0;      ///< step D
    double kmersSec = 0;    ///< step E
    double embedSec = 0;    ///< hint embedding
};

/** Result of running Algorithm 2 on a workload. */
struct TraceGenResult
{
    TraceImage image;
    std::vector<BranchRecord> records;
    TraceGenTimings timings;
    /**
     * Peak bytes held by the folded per-branch accumulators across
     * both instrumented runs (steps A-C). O(static branches + folded
     * RLE size) by construction — independent of the dynamic
     * instruction count — which makes the bounded-memory claim
     * observable per run (surfaced through RunTelemetry).
     */
    uint64_t peakAccumBytes = 0;

    /** Records of multi-target branches (Table 1 excludes size-1). */
    std::vector<const BranchRecord *> multiTarget() const;
};

/**
 * Run Algorithm 2. With `fused` the two instrumented collection runs
 * (steps A-C) stream through the batch pipeline's branch probe
 * (runFusedBranchPass) instead of the per-branch std::function probe;
 * the accumulators, the diff, and every downstream step are shared, so
 * the result — image bytes, records, peakAccumBytes — is identical.
 * The default stays on the probe-driven reference path (the parity
 * oracle).
 */
TraceGenResult generateTraces(const Workload &workload,
                              const KmersParams &params = {},
                              bool fused = false);

} // namespace cassandra::core

#endif // CASSANDRA_CORE_TRACEGEN_HH
