/**
 * @file
 * Config-file front end: a full experiment sweep described as JSON.
 *
 * An ExperimentSpec is everything one sweep needs — workload names
 * (and/or whole suites), protection schemes, SimConfig variants with
 * core/BTU parameter overrides, reporter settings, a thread count and
 * an optional artifact-cache directory — loaded from a JSON file via
 * the shared bench CLI's --config flag, so sweeps are shareable,
 * versionable artifacts:
 *
 *   {
 *     "name": "fig7",
 *     "suites": ["BearSSL", "OpenSSL", "PQC"],
 *     "schemes": ["UnsafeBaseline", "Cassandra",
 *                 "Cassandra+STL", "SPT"],
 *     "configs": [
 *       {"name": "default"},
 *       {"name": "ways=4", "btu": {"sets": 1, "ways": 4}}
 *     ],
 *     "threads": 8,
 *     "report": {"format": "json", "out": "fig7.json"},
 *     "artifacts": {"dir": "aw-cache", "save": true},
 *     "execution": {"mode": "subprocess", "shards": 4,
 *                   "scheduler": "lpt",
 *                   "worker_binary": "./build/bench/run_experiment"},
 *     "cache": {"mode": "on", "dir": "result-cache"}
 *   }
 *
 * Suites expand against the WorkloadRegistry at the bench layer (core
 * stays registry-agnostic); scheme names accept both display and enum
 * spellings ("Cassandra+STL" / "CassandraStl"). Unknown keys are
 * errors so configs fail loudly instead of silently drifting.
 */

#ifndef CASSANDRA_CORE_EXPERIMENT_CONFIG_HH
#define CASSANDRA_CORE_EXPERIMENT_CONFIG_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace cassandra::core {

/** A declarative sweep: matrix + runner + reporter settings. */
struct ExperimentSpec
{
    /** Informational label. */
    std::string name;
    /** Matrix (workloads hold explicit names; suites are below). */
    ExperimentMatrix matrix;
    /** Suite tags to expand into workload names (bench layer). */
    std::vector<std::string> suites;
    /** Worker threads; 0 means decide in the runner. */
    unsigned threads = 0;
    /** Reporter format; empty means the caller's default. */
    std::string format;
    /** Report output path; empty means stdout. */
    std::string out;
    /** Directory of serialized AnalyzedWorkload snapshots. */
    std::string artifactDir;
    /** Save freshly analyzed artifacts back into artifactDir. */
    bool artifactSave = false;
    /**
     * Trace storage of every run of the sweep ("trace_mode": "whole"
     * or "stream"; per-config overrides win). Stream mode spills
     * timing traces to chunked files and replays them from disk, so
     * peak memory stays flat regardless of trace length.
     */
    TraceMode traceMode = TraceMode::Whole;
    /** Whether the config spelled trace_mode (CLI default handling). */
    bool traceModeSet = false;
    /**
     * Stream-file encoding of every run of the sweep
     * ("trace_compression": "none" or "delta"; per-config overrides
     * win). Only meaningful for streamed analyses: delta writes the
     * compressed CASSTF2 container, none the raw CASSTF1 one.
     */
    TraceCompression traceCompression = TraceCompression::Delta;
    /** Whether the config spelled trace_compression. */
    bool traceCompressionSet = false;
    /**
     * Phase-2 cell execution backend ("execution": {"mode":
     * "inprocess" | "subprocess"}). Subprocess mode shards the cells
     * across `worker_binary --worker` child processes.
     */
    ExecutionMode executionMode = ExecutionMode::InProcess;
    /** Whether the config spelled execution.mode. */
    bool executionModeSet = false;
    /** Shard count for subprocess execution; 0 = runner decides. */
    unsigned shards = 0;
    /** Whether the config spelled execution.shards. */
    bool shardsSet = false;
    /** Worker binary for subprocess execution; empty = caller's
     * default (run_experiment uses itself). */
    std::string workerBinary;
    /**
     * Persistent cell-result store ("cache": {"mode": "off" | "on" |
     * "readonly"}). On consults the store before dispatch and
     * persists fresh results; Readonly consults without writing.
     */
    CacheMode cacheMode = CacheMode::Off;
    /** Whether the config spelled cache.mode. */
    bool cacheModeSet = false;
    /** Result-store directory ("cache": {"dir": ...}); empty =
     * the runner's default ("result-cache"). */
    std::string cacheDir;
    /**
     * Shard partitioning policy ("execution": {"scheduler":
     * "contiguous" | "lpt"}). Lpt bin-packs cells onto shards by the
     * recorded cost model; reports stay byte-identical either way.
     */
    ShardScheduler scheduler = ShardScheduler::Contiguous;
    /** Whether the config spelled execution.scheduler. */
    bool schedulerSet = false;
    /** Drop-box directory for remote execution ("execution":
     * {"dropbox": ...}); required when the mode is "remote". */
    std::string dropboxDir;
    /** Agents the remote executor spawns ("execution": {"agents":
     * N}); 0 relies on a standing pool polling the box. */
    unsigned agents = 0;
    /** Whether the config spelled execution.agents. */
    bool agentsSet = false;
    /** Remote per-task deadline ("execution": {"task_timeout_ms":
     * N}) before the coordinator withdraws and retries in-process. */
    uint64_t taskTimeoutMs = 0;
    /** Whether the config spelled execution.task_timeout_ms. */
    bool taskTimeoutMsSet = false;
    /** Result-store disk budget in MiB ("cache": {"gc_mb": N});
     * 0 leaves the store unbounded. */
    uint64_t cacheGcMb = 0;
    /** Whether the config spelled cache.gc_mb. */
    bool cacheGcMbSet = false;
    /** Telemetry JSON path ("report": {"stats_out": ...}): the
     * cache_stats/schedule document; empty writes none. */
    std::string statsOut;
};

/**
 * Parse a spec from JSON text.
 * @throws std::invalid_argument on malformed JSON, unknown keys,
 *         unknown schemes or out-of-range values.
 */
ExperimentSpec parseExperimentSpec(const std::string &json);

/** Read + parse a JSON spec file (throws on I/O errors too). */
ExperimentSpec loadExperimentSpec(const std::string &path);

} // namespace cassandra::core

#endif // CASSANDRA_CORE_EXPERIMENT_CONFIG_HH
