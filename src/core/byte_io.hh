/**
 * @file
 * Little-endian byte writer/reader shared by the container formats
 * (AnalyzedWorkload snapshots, shard manifests, shard cell-result
 * sets). The writer appends into a growable byte vector; the reader is
 * bounds-checked and throws std::invalid_argument on truncation, so
 * every parser built on it fails loudly on short files instead of
 * reading past the end.
 */

#ifndef CASSANDRA_CORE_BYTE_IO_HH
#define CASSANDRA_CORE_BYTE_IO_HH

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

namespace cassandra::core {

/** Write a byte vector to a file (created/truncated); throws
 * std::runtime_error on open failures and short writes. */
inline void
writeFileBytes(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file)
        throw std::runtime_error("cannot open " + path + " for writing");
    file.write(reinterpret_cast<const char *>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    if (!file)
        throw std::runtime_error("short write to " + path);
}

/** Slurp a whole file; throws std::runtime_error naming `what` when
 * the file cannot be opened. */
inline std::vector<uint8_t>
readFileBytes(const std::string &path, const char *what)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        throw std::runtime_error(std::string("cannot open ") + what +
                                 " " + path);
    return std::vector<uint8_t>(
        (std::istreambuf_iterator<char>(file)),
        std::istreambuf_iterator<char>());
}

/** Little-endian byte writer for the container formats. */
class ByteWriter
{
  public:
    void
    u8(uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; i++)
            bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; i++)
            bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        uint64_t raw;
        std::memcpy(&raw, &v, sizeof raw);
        u64(raw);
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    void
    blob(const std::vector<uint8_t> &b)
    {
        u32(static_cast<uint32_t>(b.size()));
        bytes_.insert(bytes_.end(), b.begin(), b.end());
    }

    void
    raw(const uint8_t *data, size_t n)
    {
        bytes_.insert(bytes_.end(), data, data + n);
    }

    std::vector<uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
};

/** Bounds-checked little-endian byte reader. */
class ByteReader
{
  public:
    explicit ByteReader(const std::vector<uint8_t> &bytes)
        : bytes_(bytes)
    {
    }

    uint8_t
    u8()
    {
        need(1);
        return bytes_[pos_++];
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; i++)
            v |= static_cast<uint32_t>(bytes_[pos_++]) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; i++)
            v |= static_cast<uint64_t>(bytes_[pos_++]) << (8 * i);
        return v;
    }

    double
    f64()
    {
        uint64_t raw = u64();
        double v;
        std::memcpy(&v, &raw, sizeof v);
        return v;
    }

    std::string
    str()
    {
        uint32_t n = u32();
        need(n);
        std::string s(bytes_.begin() + pos_, bytes_.begin() + pos_ + n);
        pos_ += n;
        return s;
    }

    std::vector<uint8_t>
    blob()
    {
        uint32_t n = u32();
        need(n);
        std::vector<uint8_t> b(bytes_.begin() + pos_,
                               bytes_.begin() + pos_ + n);
        pos_ += n;
        return b;
    }

    /** Bounds-checked view of the next n bytes (consumed). */
    const uint8_t *
    raw(size_t n)
    {
        need(n);
        const uint8_t *p = bytes_.data() + pos_;
        pos_ += n;
        return p;
    }

    bool done() const { return pos_ == bytes_.size(); }
    size_t remaining() const { return bytes_.size() - pos_; }

  private:
    void
    need(size_t n)
    {
        if (bytes_.size() - pos_ < n)
            throw std::invalid_argument("truncated container (short read)");
    }

    const std::vector<uint8_t> &bytes_;
    size_t pos_ = 0;
};

} // namespace cassandra::core

#endif // CASSANDRA_CORE_BYTE_IO_HH
