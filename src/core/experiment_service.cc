#include "core/experiment_service.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#if !defined(_WIN32)
#define CASSANDRA_POSIX_SERVICE 1
#include <signal.h>
#endif

#include "core/artifact_store.hh"
#include "core/byte_io.hh"
#include "core/experiment_config.hh"
#include "core/trace_stream.hh"

namespace cassandra::core {

namespace {

constexpr const char *queuePrefix = "queue";
constexpr const char *activePrefix = "active";
constexpr const char *donePrefix = "done";
constexpr const char *stopKey = "stop";
constexpr const char *statsKey = "service_stats.json";
constexpr const char *jobSuffix = ".job";

std::vector<uint8_t>
textBytes(const std::string &text)
{
    return std::vector<uint8_t>(text.begin(), text.end());
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
        s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/** True when the pid baked into a claim suffix no longer runs. */
bool
claimOwnerDead(const std::string &suffix)
{
#if defined(CASSANDRA_POSIX_SERVICE)
    char *end = nullptr;
    const long pid = std::strtol(suffix.c_str(), &end, 10);
    if (pid <= 0 || end == suffix.c_str())
        return false; // unparsable owner: never steal
    if (*end != '\0' && *end != '-')
        return false;
    errno = 0;
    return ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH;
#else
    (void)suffix;
    return false;
#endif
}

void
sleepMs(uint64_t ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

} // namespace

/** One claimed queue entry, parsed as far as it got. */
struct ExperimentService::Job
{
    std::string id;           ///< queue name minus ".job"
    std::string claimedKey;   ///< our active/ entry
    std::vector<uint8_t> bytes; ///< the submitted config, verbatim
    ExperimentSpec spec;
    ExperimentMatrix matrix; ///< spec matrix with suites expanded
    std::string error;       ///< non-empty: failed before running
};

ExperimentService::ExperimentService(Options options)
    : options_(std::move(options))
{
    if (options_.spoolDir.empty())
        throw std::invalid_argument(
            "experiment service needs a spool directory");
    if (!options_.resolver)
        throw std::invalid_argument(
            "experiment service needs a workload resolver");
    spool_ = std::make_shared<LocalDirTransport>(options_.spoolDir);
    // Cross-job dedup is the service's whole value proposition.
    RunnerOptions runner_options = options_.runner;
    runner_options.dedupCells = true;
    runner_ = std::make_unique<ExperimentRunner>(
        options_.resolver, std::move(runner_options));
}

ExperimentService::~ExperimentService() = default;

std::string
ExperimentService::reportKey(const std::string &job)
{
    return std::string(donePrefix) + "/" + job + "/report";
}

std::string
ExperimentService::statusKey(const std::string &job)
{
    return std::string(donePrefix) + "/" + job + "/status";
}

std::string
ExperimentService::telemetryKey(const std::string &job)
{
    return std::string(donePrefix) + "/" + job + "/telemetry.json";
}

std::string
ExperimentService::submit(const std::string &spool_dir,
                          const std::string &config_path)
{
    const std::vector<uint8_t> bytes =
        readFileBytes(config_path, "experiment config");

    // Job ids lead with the config basename so operators can tell
    // jobs apart, then the submitter's process-unique suffix plus a
    // sequence so concurrent clients never collide.
    size_t slash = config_path.find_last_of('/');
    std::string base = slash == std::string::npos
        ? config_path
        : config_path.substr(slash + 1);
    const size_t dot = base.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        base = base.substr(0, dot);
    for (char &c : base) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok)
            c = '-';
    }
    if (base.empty())
        base = "job";

    static std::atomic<uint64_t> sequence{0};
    const std::string job = base + "-" + processUniqueSuffix() + "-" +
        std::to_string(sequence.fetch_add(1));

    LocalDirTransport spool(spool_dir);
    spool.publish(std::string(queuePrefix) + "/" + job + jobSuffix,
                  bytes);
    return job;
}

std::string
ExperimentService::waitForJob(const std::string &spool_dir,
                              const std::string &job, uint64_t timeout_ms,
                              uint64_t poll_ms)
{
    LocalDirTransport spool(spool_dir);
    const std::string key = statusKey(job);
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    for (;;) {
        if (spool.exists(key)) {
            const std::vector<uint8_t> bytes = spool.fetch(key);
            return std::string(bytes.begin(), bytes.end());
        }
        if (std::chrono::steady_clock::now() >= deadline)
            return "";
        sleepMs(poll_ms == 0 ? 1 : poll_ms);
    }
}

void
ExperimentService::requestStop(const std::string &spool_dir)
{
    LocalDirTransport(spool_dir).publish(stopKey, textBytes("stop\n"));
}

void
ExperimentService::requeueDeadClaims(std::ostream &log)
{
    for (const std::string &name : spool_->list(activePrefix)) {
        // active/<job>.job.<owner suffix>
        const size_t mark = name.rfind(jobSuffix + std::string("."));
        if (mark == std::string::npos)
            continue;
        const std::string owner =
            name.substr(mark + std::string(jobSuffix).size() + 1);
        if (!claimOwnerDead(owner))
            continue;
        const std::string queued =
            name.substr(0, mark + std::string(jobSuffix).size());
        if (spool_->rename(std::string(activePrefix) + "/" + name,
                           std::string(queuePrefix) + "/" + queued)) {
            stats_.jobsRequeued++;
            log << "service: requeued " << queued
                << " from dead service " << owner << "\n";
        }
    }
}

std::vector<ExperimentService::Job>
ExperimentService::claimQueued(std::ostream &log)
{
    std::vector<Job> batch;
    for (const std::string &name : spool_->list(queuePrefix)) {
        if (!endsWith(name, jobSuffix))
            continue;
        Job job;
        job.id = name.substr(0, name.size() -
                             std::string(jobSuffix).size());
        job.claimedKey = std::string(activePrefix) + "/" + name + "." +
            processUniqueSuffix();
        // Atomic claim: of N services polling one spool, exactly one
        // wins each job.
        if (!spool_->rename(std::string(queuePrefix) + "/" + name,
                            job.claimedKey))
            continue;
        stats_.jobsClaimed++;
        try {
            job.bytes = spool_->fetch(job.claimedKey);
            job.spec = parseExperimentSpec(
                std::string(job.bytes.begin(), job.bytes.end()));
            job.matrix = job.spec.matrix;
            // Same expansion the direct CLI run performs: explicit
            // workloads first, each suite's names appended in order.
            for (const std::string &suite : job.spec.suites) {
                if (!options_.expandSuite)
                    throw std::invalid_argument(
                        "job names suite \"" + suite +
                        "\" but this service has no suite expander");
                std::vector<std::string> expanded =
                    options_.expandSuite(suite);
                if (expanded.empty())
                    throw std::invalid_argument(
                        "suite \"" + suite + "\" names no workloads");
                job.matrix.workloads.insert(job.matrix.workloads.end(),
                                            expanded.begin(),
                                            expanded.end());
            }
            if (job.matrix.cellCount() == 0)
                throw std::invalid_argument(
                    "job describes an empty matrix");
        } catch (const std::exception &e) {
            job.error = e.what();
        }
        log << "service: claimed " << job.id << " ("
            << (job.error.empty()
                    ? std::to_string(job.matrix.cellCount()) + " cells"
                    : "invalid")
            << ")\n";
        batch.push_back(std::move(job));
    }
    return batch;
}

void
ExperimentService::finishJob(const Job &job, const Experiment &exp,
                             size_t cell_begin, size_t cell_count)
{
    // The job's slice of the batch, presented exactly as a direct
    // single-config run would present it (reports derive baselines
    // from the job's own cells only).
    Experiment job_exp;
    job_exp.telemetry = exp.telemetry;
    job_exp.artifacts = exp.artifacts;
    job_exp.cells.assign(exp.cells.begin() + cell_begin,
                         exp.cells.begin() + cell_begin + cell_count);

    const std::string format =
        job.spec.format.empty() ? "table" : job.spec.format;
    std::ostringstream report;
    makeReporter(format)->write(job_exp, report);
    spool_->publish(reportKey(job.id), textBytes(report.str()));

    std::ostringstream telemetry;
    writeRunTelemetry(exp.telemetry, telemetry);
    spool_->publish(telemetryKey(job.id), textBytes(telemetry.str()));

    spool_->publish(std::string(donePrefix) + "/" + job.id +
                        "/job.json",
                    job.bytes);
    // The status file is the completion signal pollers wait on, so it
    // goes last — every other result file is in place when it appears.
    spool_->publish(statusKey(job.id), textBytes("ok\n"));
    spool_->remove(job.claimedKey);
}

void
ExperimentService::failJob(const Job &job, const std::string &message,
                           std::ostream &log)
{
    if (!job.bytes.empty())
        spool_->publish(std::string(donePrefix) + "/" + job.id +
                            "/job.json",
                        job.bytes);
    spool_->publish(statusKey(job.id),
                    textBytes("error: " + message + "\n"));
    spool_->remove(job.claimedKey);
    stats_.jobsFailed++;
    log << "service: failed " << job.id << ": " << message << "\n";
}

void
ExperimentService::runBatch(std::vector<Job> &batch, std::ostream &log)
{
    stats_.batches++;
    std::vector<size_t> good;
    for (size_t i = 0; i < batch.size(); i++) {
        if (batch[i].error.empty())
            good.push_back(i);
        else
            failJob(batch[i], batch[i].error, log);
    }
    if (good.empty())
        return;

    std::vector<ExperimentMatrix> matrices;
    matrices.reserve(good.size());
    for (size_t g : good)
        matrices.push_back(batch[g].matrix);

    const auto account = [this](const Experiment &exp) {
        stats_.cellsTotal += exp.cells.size();
        stats_.cellsDeduped += exp.telemetry.dedupedCells;
        stats_.cellsCached += exp.telemetry.cachedCells;
        stats_.cellsSimulated += exp.telemetry.simulatedCells;
        stats_.analysisFusedPasses +=
            exp.telemetry.analysisFusedPasses;
        stats_.prefetchBatches += exp.telemetry.prefetchBatches;
        stats_.prefetchStalls += exp.telemetry.prefetchStalls;
    };

    try {
        // The whole batch as ONE run: one shared analysis phase, one
        // dedup pass across every job's cells, one dispatch.
        const Experiment exp = runner_->run(matrices);
        size_t offset = 0;
        for (size_t i = 0; i < good.size(); i++) {
            const size_t count = matrices[i].cellCount();
            finishJob(batch[good[i]], exp, offset, count);
            offset += count;
            stats_.jobsDone++;
            log << "service: done " << batch[good[i]].id << " ("
                << count << " cells)\n";
        }
        account(exp);
        log << "service: batch of " << good.size() << " job(s), "
            << exp.cells.size() << " cells, "
            << exp.telemetry.dedupedCells << " deduped, "
            << exp.telemetry.cachedCells << " cached, "
            << exp.telemetry.simulatedCells << " simulated\n";
        return;
    } catch (const std::exception &e) {
        log << "service: batch failed (" << e.what()
            << "); isolating jobs\n";
    }

    // One bad job (unknown workload, broken artifact) must not poison
    // its batch-mates: fall back to running each job alone.
    for (size_t g : good) {
        try {
            const Experiment exp = runner_->run(batch[g].matrix);
            finishJob(batch[g], exp, 0, exp.cells.size());
            account(exp);
            stats_.jobsDone++;
            log << "service: done " << batch[g].id << " (isolated, "
                << exp.cells.size() << " cells)\n";
        } catch (const std::exception &e) {
            failJob(batch[g], e.what(), log);
        }
    }
}

void
ExperimentService::writeServiceStats()
{
    std::ostringstream os;
    os << "{\n"
       << "  \"jobs\": {\"claimed\": " << stats_.jobsClaimed
       << ", \"done\": " << stats_.jobsDone
       << ", \"failed\": " << stats_.jobsFailed
       << ", \"requeued\": " << stats_.jobsRequeued << "},\n"
       << "  \"batches\": " << stats_.batches << ",\n"
       << "  \"cells\": {\"total\": " << stats_.cellsTotal
       << ", \"deduped\": " << stats_.cellsDeduped
       << ", \"cached\": " << stats_.cellsCached
       << ", \"simulated\": " << stats_.cellsSimulated << "},\n"
       << "  \"pipeline\": {\"analysis_fused_passes\": "
       << stats_.analysisFusedPasses
       << ", \"prefetch_batches\": " << stats_.prefetchBatches
       << ", \"prefetch_stalls\": " << stats_.prefetchStalls << "}\n"
       << "}\n";
    spool_->publish(statsKey, textBytes(os.str()));
}

int
ExperimentService::serve(std::ostream &log)
{
    try {
        log << "service: spool " << spool_->root() << ", execution "
            << executionModeName(options_.runner.execution) << "\n";
        requeueDeadClaims(log);
        uint64_t idle_ms = 0;
        for (;;) {
            if (spool_->exists(stopKey)) {
                log << "service: stop flag raised\n";
                break;
            }
            std::vector<Job> batch = claimQueued(log);
            if (batch.empty()) {
                if (options_.idleExitMs != 0 &&
                    idle_ms >= options_.idleExitMs) {
                    log << "service: idle for " << idle_ms
                        << " ms, exiting\n";
                    break;
                }
                const uint64_t step =
                    options_.pollMs == 0 ? 1 : options_.pollMs;
                sleepMs(step);
                idle_ms += step;
                continue;
            }
            idle_ms = 0;
            runBatch(batch, log);
            writeServiceStats();
            if (options_.maxJobs != 0 &&
                stats_.jobsDone + stats_.jobsFailed >=
                    options_.maxJobs) {
                log << "service: reached max jobs ("
                    << options_.maxJobs << "), exiting\n";
                break;
            }
        }
        writeServiceStats();
        return 0;
    } catch (const std::exception &e) {
        log << "service: fatal: " << e.what() << "\n";
        return 1;
    }
}

} // namespace cassandra::core
