/**
 * @file
 * One simulation configuration, bundled.
 *
 * A SimConfig carries everything that defines a timing run — the
 * protection scheme, the core parameters (Table 3) and the BTU
 * geometry/timing — and flows intact from Simulation::run through
 * OooCore into the Btu constructor.
 * Benches sweep any knob (BTU sets/ways/fill latency, core width, ROB
 * size, cache geometry, flush period) by deriving configs from a
 * base:
 *
 *   core::SimConfig cfg;
 *   cfg.scheme = uarch::Scheme::Cassandra;
 *   cfg.btu.ways = 4;
 *   auto res = sim.run(cfg);
 *
 * The fluent with*() helpers return modified copies so a sweep can be
 * written as a list of derived configs; configs also deserialize from
 * JSON sweep files (core/experiment_config) with snake_case field
 * overrides.
 */

#ifndef CASSANDRA_CORE_SIM_CONFIG_HH
#define CASSANDRA_CORE_SIM_CONFIG_HH

#include <stdexcept>
#include <string>
#include <utility>

#include "btu/btu.hh"
#include "uarch/params.hh"

namespace cassandra::core {

/**
 * How a run's timing trace is stored and iterated.
 *
 * Whole keeps the recorded trace as an in-memory vector (fastest, ~40
 * bytes/op resident). Stream spills it to a chunked trace file at
 * analysis time and replays it through a TraceCursor, so peak memory
 * stays at one frame regardless of trace length. Cycle results are
 * identical in both modes.
 */
enum class TraceMode
{
    Whole,
    Stream,
};

inline const char *
traceModeName(TraceMode mode)
{
    return mode == TraceMode::Stream ? "stream" : "whole";
}

inline TraceMode
traceModeFromName(const std::string &name)
{
    if (name == "whole")
        return TraceMode::Whole;
    if (name == "stream")
        return TraceMode::Stream;
    throw std::invalid_argument("unknown trace mode \"" + name +
                                "\" (expected whole or stream)");
}

/**
 * On-disk encoding of stream-mode trace files.
 *
 * None writes the raw 24 B/op CASSTF1 container. Delta writes the
 * CASSTF2 container: per-frame pc/nextPc/memAddr deltas in zig-zag
 * varints (dynamic instruction streams are overwhelmingly sequential,
 * so most ops shrink to a few bytes), falling back to a raw frame when
 * a frame does not compress. Readers accept both containers; replay is
 * bit-identical either way, so this only trades a little encode/decode
 * CPU against a lot of disk (and artifact-snapshot) size.
 */
enum class TraceCompression
{
    None,
    Delta,
};

inline const char *
traceCompressionName(TraceCompression compression)
{
    return compression == TraceCompression::None ? "none" : "delta";
}

inline TraceCompression
traceCompressionFromName(const std::string &name)
{
    if (name == "none" || name == "raw")
        return TraceCompression::None;
    if (name == "delta")
        return TraceCompression::Delta;
    throw std::invalid_argument("unknown trace compression \"" + name +
                                "\" (expected none or delta)");
}

/** Scheme + core + BTU parameters of one timing run. */
struct SimConfig
{
    /** Label used by the experiment reporters ("default" base). */
    std::string name = "default";
    uarch::Scheme scheme = uarch::Scheme::UnsafeBaseline;
    uarch::CoreParams core;
    btu::BtuParams btu;
    /**
     * Requested trace iteration mode. Cells that request Stream make
     * the ExperimentRunner analyze their workloads in stream mode (the
     * artifact's storage mode ultimately governs how Simulation::run
     * iterates; one artifact is shared by every cell of a workload, so
     * any streaming cell streams the whole workload).
     */
    TraceMode traceMode = TraceMode::Whole;
    /**
     * Requested stream-file encoding (only meaningful for streamed
     * analyses). Like traceMode this is resolved per workload at
     * analysis time: artifacts are shared across cells, so a single
     * cell requesting uncompressed (None) streams makes the runner
     * record that workload raw.
     */
    TraceCompression traceCompression = TraceCompression::Delta;

    /** Copy with a new report label. */
    SimConfig
    named(std::string n) const
    {
        SimConfig c = *this;
        c.name = std::move(n);
        return c;
    }

    /** Copy under another protection scheme. */
    SimConfig
    withScheme(uarch::Scheme s) const
    {
        SimConfig c = *this;
        c.scheme = s;
        return c;
    }

    /** Copy with a different BTU geometry. */
    SimConfig
    withBtuGeometry(size_t sets, size_t ways) const
    {
        SimConfig c = *this;
        c.btu.sets = sets;
        c.btu.ways = ways;
        return c;
    }

    /** Copy with a different BTU trace-fill latency. */
    SimConfig
    withBtuFillLatency(unsigned latency) const
    {
        SimConfig c = *this;
        c.btu.fillLatency = latency;
        return c;
    }

    /** Copy with a periodic BTU flush (paper Q4; 0 disables). */
    SimConfig
    withFlushPeriod(uint64_t period) const
    {
        SimConfig c = *this;
        c.core.btuFlushPeriod = period;
        return c;
    }

    /** Copy under another trace iteration mode. */
    SimConfig
    withTraceMode(TraceMode mode) const
    {
        SimConfig c = *this;
        c.traceMode = mode;
        return c;
    }

    /** Copy under another stream-file encoding. */
    SimConfig
    withTraceCompression(TraceCompression compression) const
    {
        SimConfig c = *this;
        c.traceCompression = compression;
        return c;
    }
};

} // namespace cassandra::core

#endif // CASSANDRA_CORE_SIM_CONFIG_HH
