#include "core/artifact_store.hh"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <set>
#include <stdexcept>

#if !defined(_WIN32)
#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#define CASSANDRA_POSIX_STORE 1
#endif

#include "core/byte_io.hh"
#include "core/cell_executor.hh"
#include "core/trace_stream.hh"

namespace cassandra::core {

namespace {

/** FNV-1a over raw bytes (the artifact checksum). */
uint64_t
fnvBytes(const std::vector<uint8_t> &bytes)
{
    uint64_t hash = 1469598103934665603ull;
    for (uint8_t b : bytes) {
        hash ^= b;
        hash *= 1099511628211ull;
    }
    return hash;
}

std::string
sumKey(const std::string &key)
{
    return key + ".sum";
}

/** Sidecar payload: magic, content hash, content size. */
std::string
sumText(const std::vector<uint8_t> &bytes)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "CASSUM1 %016" PRIx64 " %zu\n",
                  fnvBytes(bytes), bytes.size());
    return buf;
}

std::vector<uint8_t>
toBytes(const std::string &text)
{
    return std::vector<uint8_t>(text.begin(), text.end());
}

std::string
dirnameOf(const std::string &path)
{
    const size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash);
}

} // namespace

// ---------------------------------------------------------------------
// LocalDirTransport
// ---------------------------------------------------------------------

LocalDirTransport::LocalDirTransport(std::string root)
    : root_(std::move(root))
{
    if (root_.empty())
        throw std::invalid_argument("artifact store needs a directory");
    while (root_.size() > 1 && root_.back() == '/')
        root_.pop_back();
    ensureDirectories(root_);
}

bool
LocalDirTransport::exists(const std::string &key) const
{
#if defined(CASSANDRA_POSIX_STORE)
    struct stat st;
    return ::stat((root_ + "/" + key).c_str(), &st) == 0 &&
        S_ISREG(st.st_mode);
#else
    std::ifstream probe(root_ + "/" + key, std::ios::binary);
    return static_cast<bool>(probe);
#endif
}

void
LocalDirTransport::publish(const std::string &key,
                           const std::vector<uint8_t> &bytes)
{
    static std::atomic<uint64_t> sequence{0};
    const std::string path = root_ + "/" + key;
    const std::string parent = dirnameOf(path);
    if (!parent.empty())
        ensureDirectories(parent);
    // tmp+rename: a reader (or a concurrent publisher of the same
    // content-addressed key) never observes a torn object.
    const std::string tmp = path + ".tmp-" + processUniqueSuffix() +
        "-" + std::to_string(sequence.fetch_add(1));
    writeFileBytes(tmp, bytes);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("cannot publish " + path);
    }
}

std::vector<uint8_t>
LocalDirTransport::fetch(const std::string &key) const
{
    return readFileBytes(root_ + "/" + key, "drop-box object");
}

void
LocalDirTransport::remove(const std::string &key)
{
    std::remove((root_ + "/" + key).c_str());
}

std::vector<std::string>
LocalDirTransport::list(const std::string &prefix) const
{
    std::vector<std::string> out;
#if defined(CASSANDRA_POSIX_STORE)
    const std::string dir = root_ + "/" + prefix;
    if (DIR *d = opendir(dir.c_str())) {
        while (struct dirent *entry = readdir(d)) {
            const std::string name = entry->d_name;
            if (name != "." && name != "..")
                out.push_back(name);
        }
        closedir(d);
    }
    std::sort(out.begin(), out.end());
#else
    (void)prefix;
#endif
    return out;
}

bool
LocalDirTransport::rename(const std::string &from, const std::string &to)
{
    const std::string to_path = root_ + "/" + to;
    const std::string parent = dirnameOf(to_path);
    if (!parent.empty())
        ensureDirectories(parent);
    // rename(2) is the claim primitive: the source disappears with the
    // first successful rename, so exactly one caller wins.
    return std::rename((root_ + "/" + from).c_str(),
                       to_path.c_str()) == 0;
}

int64_t
LocalDirTransport::mtime(const std::string &key) const
{
#if defined(CASSANDRA_POSIX_STORE)
    struct stat st;
    if (::stat((root_ + "/" + key).c_str(), &st) == 0)
        return static_cast<int64_t>(st.st_mtime);
#else
    (void)key;
#endif
    return 0;
}

// ---------------------------------------------------------------------
// ArtifactStore
// ---------------------------------------------------------------------

ArtifactStore::ArtifactStore(std::shared_ptr<ArtifactTransport> transport)
    : transport_(std::move(transport))
{
    if (!transport_)
        throw std::invalid_argument("artifact store needs a transport");
}

ArtifactStore::ArtifactStore(const std::string &dir)
    : ArtifactStore(std::make_shared<LocalDirTransport>(dir))
{
}

std::string
ArtifactStore::artifactKey(uint64_t workload_fingerprint,
                           uint32_t format_version)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "artifacts/aw-%016" PRIx64 "-v%u.aw",
                  workload_fingerprint, format_version);
    return buf;
}

bool
ArtifactStore::hasValidArtifact(const std::string &key) const
{
    if (!transport_->exists(key) || !transport_->exists(sumKey(key)))
        return false;
    try {
        const std::vector<uint8_t> bytes = transport_->fetch(key);
        const std::vector<uint8_t> sum = transport_->fetch(sumKey(key));
        return std::string(sum.begin(), sum.end()) == sumText(bytes);
    } catch (const std::exception &) {
        return false;
    }
}

bool
ArtifactStore::publishArtifactOnce(const std::string &key,
                                   const std::vector<uint8_t> &bytes)
{
    if (hasValidArtifact(key)) {
        artifactReuses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (transport_->exists(key)) {
        // Present but failed validation: a torn copy or bit rot.
        // Evict both halves so no agent trusts it mid-upload.
        corruptRejected_.fetch_add(1, std::memory_order_relaxed);
        transport_->remove(sumKey(key));
        transport_->remove(key);
    }
    // Object first, sidecar last: a validating reader only accepts the
    // pair once both atomic publishes have landed.
    transport_->publish(key, bytes);
    transport_->publish(sumKey(key), toBytes(sumText(bytes)));
    artifactUploads_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

std::vector<uint8_t>
ArtifactStore::fetchArtifact(const std::string &key) const
{
    const std::vector<uint8_t> bytes = transport_->fetch(key);
    artifactFetches_.fetch_add(1, std::memory_order_relaxed);
    std::string sum;
    try {
        const std::vector<uint8_t> raw = transport_->fetch(sumKey(key));
        sum.assign(raw.begin(), raw.end());
    } catch (const std::exception &) {
        // fall through to the mismatch path
    }
    if (sum != sumText(bytes)) {
        // Evict the corrupt pair so the next publishArtifactOnce
        // re-uploads instead of endlessly reusing a bad copy.
        corruptRejected_.fetch_add(1, std::memory_order_relaxed);
        transport_->remove(sumKey(key));
        transport_->remove(key);
        throw ArtifactFormatError("drop-box artifact " + key +
                                  " failed checksum validation "
                                  "(corrupt or torn copy); evicted");
    }
    return bytes;
}

void
ArtifactStore::publishTask(const std::string &task,
                           const std::vector<uint8_t> &manifest_bytes)
{
    transport_->publish("tasks/inbox/" + task + ".sm", manifest_bytes);
    tasksPublished_.fetch_add(1, std::memory_order_relaxed);
}

std::string
ArtifactStore::claimedKey(const std::string &task,
                          const std::string &agent_token)
{
    return "tasks/claimed/" + task + ".sm." + agent_token;
}

std::string
ArtifactStore::claimTask(const std::string &agent_token)
{
    for (const std::string &name : transport_->list("tasks/inbox")) {
        if (name.size() <= 3 ||
            name.compare(name.size() - 3, 3, ".sm") != 0)
            continue;
        const std::string task = name.substr(0, name.size() - 3);
        if (transport_->rename("tasks/inbox/" + name,
                               claimedKey(task, agent_token))) {
            tasksClaimed_.fetch_add(1, std::memory_order_relaxed);
            return task;
        }
        // Another agent renamed it first; try the next task.
    }
    return "";
}

std::vector<uint8_t>
ArtifactStore::fetchClaimedTask(const std::string &task,
                                const std::string &agent_token) const
{
    return transport_->fetch(claimedKey(task, agent_token));
}

std::string
ArtifactStore::resultKey(const std::string &task)
{
    return "tasks/outbox/" + task + ".crs";
}

std::string
ArtifactStore::errorKey(const std::string &task)
{
    return "tasks/outbox/" + task + ".err";
}

void
ArtifactStore::publishResult(const std::string &task,
                             const std::string &agent_token,
                             const std::vector<uint8_t> &result_bytes)
{
    transport_->publish(resultKey(task), result_bytes);
    transport_->remove(claimedKey(task, agent_token));
    resultsPublished_.fetch_add(1, std::memory_order_relaxed);
}

void
ArtifactStore::publishError(const std::string &task,
                            const std::string &agent_token,
                            const std::string &message)
{
    transport_->publish(errorKey(task), toBytes(message));
    transport_->remove(claimedKey(task, agent_token));
}

void
ArtifactStore::withdrawTask(const std::string &task)
{
    transport_->remove("tasks/inbox/" + task + ".sm");
}

void
ArtifactStore::requestAgentStop()
{
    transport_->publish("agents/stop", toBytes("stop\n"));
}

void
ArtifactStore::clearAgentStop()
{
    transport_->remove("agents/stop");
}

bool
ArtifactStore::agentStopRequested() const
{
    return transport_->exists("agents/stop");
}

namespace {

/** Pid parsed from a claim token ("<pid>-<seq>"); 0 when the token is
 * not pid-shaped (random-token platforms — never treated as dead). */
long
tokenPid(const std::string &token)
{
    const size_t dash = token.find('-');
    const std::string head =
        dash == std::string::npos ? token : token.substr(0, dash);
    if (head.empty() ||
        head.find_first_not_of("0123456789") != std::string::npos)
        return 0;
    return std::strtol(head.c_str(), nullptr, 10);
}

bool
pidIsDead(long pid)
{
#if defined(CASSANDRA_POSIX_STORE)
    return pid > 0 && ::kill(static_cast<pid_t>(pid), 0) != 0 &&
        errno == ESRCH;
#else
    (void)pid;
    return false;
#endif
}

} // namespace

ArtifactStore::GcStats
ArtifactStore::gc(int64_t max_age_seconds)
{
    GcStats out;

    // Requeue claims whose agent died mid-task: the manifest goes back
    // to the inbox so another agent (or the coordinator's retry) can
    // still run the shard.
    for (const std::string &name : transport_->list("tasks/claimed")) {
        const size_t sm = name.find(".sm.");
        if (sm == std::string::npos)
            continue;
        const std::string token = name.substr(sm + 4);
        if (!pidIsDead(tokenPid(token)))
            continue;
        const std::string task = name.substr(0, sm);
        if (transport_->rename("tasks/claimed/" + name,
                               "tasks/inbox/" + task + ".sm"))
            out.staleClaims++;
    }

    // Live manifests pin their artifacts: recompute the reference set
    // from inbox + claimed instead of keeping a side database.
    std::set<std::string> referenced;
    auto collect = [&](const std::string &prefix) {
        for (const std::string &name : transport_->list(prefix)) {
            try {
                const ShardManifest manifest = unpackShardManifest(
                    transport_->fetch(prefix + "/" + name));
                for (const auto &[workload, key] : manifest.artifacts) {
                    (void)workload;
                    referenced.insert(key);
                }
            } catch (const std::exception &) {
                // Unreadable manifest: pins nothing.
            }
        }
    };
    collect("tasks/inbox");
    collect("tasks/claimed");

    const int64_t now = static_cast<int64_t>(std::time(nullptr));
    for (const std::string &name : transport_->list("artifacts")) {
        if (name.size() <= 3 ||
            name.compare(name.size() - 3, 3, ".aw") != 0)
            continue;
        const std::string key = "artifacts/" + name;
        if (referenced.count(key)) {
            out.keptReferenced++;
            continue;
        }
        const int64_t stamp = transport_->mtime(key);
        if (stamp == 0 || now - stamp < max_age_seconds) {
            // Unknown mtime keeps the artifact: never GC blind.
            out.keptFresh++;
            continue;
        }
        try {
            out.reclaimedBytes += transport_->fetch(key).size();
        } catch (const std::exception &) {
        }
        transport_->remove(sumKey(key));
        transport_->remove(key);
        out.removedArtifacts++;
        gcRemoved_.fetch_add(1, std::memory_order_relaxed);
    }

    // Outbox entries nobody collected (a coordinator that timed out
    // or died) age out the same way.
    for (const std::string &name : transport_->list("tasks/outbox")) {
        const std::string key = "tasks/outbox/" + name;
        const int64_t stamp = transport_->mtime(key);
        if (stamp != 0 && now - stamp >= max_age_seconds)
            transport_->remove(key);
    }
    return out;
}

ArtifactStore::Stats
ArtifactStore::stats() const
{
    Stats s;
    s.artifactUploads =
        artifactUploads_.load(std::memory_order_relaxed);
    s.artifactReuses = artifactReuses_.load(std::memory_order_relaxed);
    s.artifactFetches =
        artifactFetches_.load(std::memory_order_relaxed);
    s.corruptRejected =
        corruptRejected_.load(std::memory_order_relaxed);
    s.tasksPublished = tasksPublished_.load(std::memory_order_relaxed);
    s.tasksClaimed = tasksClaimed_.load(std::memory_order_relaxed);
    s.resultsPublished =
        resultsPublished_.load(std::memory_order_relaxed);
    s.gcRemoved = gcRemoved_.load(std::memory_order_relaxed);
    return s;
}

std::string
makeAgentToken()
{
    static std::atomic<uint64_t> sequence{0};
    return processUniqueSuffix() + "-" +
        std::to_string(sequence.fetch_add(1));
}

} // namespace cassandra::core
