/**
 * @file
 * Fused single-pass analysis pipeline.
 *
 * The reference analysis makes one functional machine run per
 * demand-driven phase: a counting run sizes the trace, a recording run
 * fills it (per-op through a std::function sink), and the taint
 * pre-pass replays the recorded ops once more. This pipeline collapses
 * them into ONE instrumented run: the machine's SoA batch probe fills
 * fixed-size AnalysisChunk spans (pc / memAddr / nextPc columns
 * straight from the interpreter loop, no per-op indirect call), each
 * full chunk is relinked (inst pointer + crypto flag from a
 * per-static-instruction table) and handed to every registered
 * BatchConsumer — trace retention, the CASSTF stream writer, the
 * incremental TaintWalker — before the next chunk is produced.
 *
 * Two execution modes share one code path:
 *  - Inline: the probe's flush callback relinks and consumes the chunk
 *    synchronously. This is the single-core mode; it is also the
 *    deterministic reference for the threaded mode.
 *  - Threaded: chunks flow through a bounded ring (free list + ready
 *    queue) to one consumer thread; the producer stalls — counted —
 *    when all ring chunks are in flight. Consumers run in submission
 *    order on one thread, so consumer state needs no locking and the
 *    observed op sequence is identical to Inline.
 *
 * Parity contract: the chunk column values equal, op for op, what the
 * scalar recordTrace sink observes (the batch probe fires at exactly
 * the instProbe site), so every consumer's output is byte-identical to
 * its reference-pass counterpart. The reference passes stay in-tree as
 * the oracle the parity suite compares against.
 */

#ifndef CASSANDRA_CORE_ANALYSIS_PIPELINE_HH
#define CASSANDRA_CORE_ANALYSIS_PIPELINE_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "core/branch_trace.hh"
#include "core/workload.hh"
#include "uarch/pipeline.hh"

namespace cassandra::core {

/** One span of consecutive dynamic ops in SoA form. */
struct AnalysisChunk
{
    uarch::OpBatchStorage ops;
    size_t size = 0;        ///< valid ops (columns may be larger)
    uint64_t baseIndex = 0; ///< dynamic index of ops column element 0

    /** View of the valid ops. */
    uarch::OpBatch
    view() const
    {
        return ops.view(0, size);
    }
};

/**
 * One consumer of the fused op pass. consume() is called once per
 * chunk, in dynamic-op order, from a single thread (the producer in
 * Inline mode, the consumer thread in Threaded mode); finish() after
 * the last chunk. The chunk is fully relinked (inst/crypto columns
 * valid, tainted zeroed) when consume() sees it.
 */
class BatchConsumer
{
  public:
    virtual ~BatchConsumer() = default;

    virtual void consume(const AnalysisChunk &chunk) = 0;

    /** Called once after the final chunk (stream writers finalize
     * here). Runs on the producer thread, after the pipeline drained. */
    virtual void
    finish()
    {
    }
};

/** Knobs of one fused pass. */
struct AnalysisPipelineOptions
{
    enum class Mode
    {
        Auto,     ///< Threaded when the host has >= 2 hardware threads
        Inline,   ///< synchronous consume in the probe callback
        Threaded, ///< bounded ring + one consumer thread
    };

    /** Ops per chunk. Power-of-two multiples of the replay batch size
     * keep nextBatch() views frame-aligned, but any value >= 1 is
     * correct — the parity suite runs odd sizes on purpose. */
    size_t chunkOps = size_t(1) << 15;
    /** Chunks in flight in Threaded mode (>= 1); the producer stalls
     * when all of them are queued or being consumed. Ignored when
     * chunks are retained — retention keeps every chunk live anyway. */
    size_t ringChunks = 4;
    Mode mode = Mode::Auto;
};

/** Counters of one fused pass (feeds RunTelemetry). */
struct FusedPassStats
{
    uint64_t numOps = 0;         ///< probe firings == trace ops
    uint64_t chunks = 0;         ///< chunks produced
    uint64_t producerStalls = 0; ///< acquire() waits (Threaded only)
    bool threaded = false;       ///< resolved execution mode
};

/**
 * Run the workload on analysis input `which` once, feeding every
 * executed op through `consumers` as relinked chunks. With `retain`
 * the consumed chunks are additionally moved there in order — the
 * whole-mode trace storage, produced by the same pass that feeds the
 * consumers. Throws InstructionBudgetError (context "timing trace",
 * matching the reference recordTrace) when the run does not halt.
 */
FusedPassStats
runFusedOpPass(const Workload &workload, int which,
               const std::vector<BatchConsumer *> &consumers,
               const AnalysisPipelineOptions &options = {},
               std::vector<AnalysisChunk> *retain = nullptr);

/** Result of one fused Algorithm 2 collection run (the batched
 * counterpart of tracegen's per-input instrumented run). */
struct FusedBranchRun
{
    std::map<uint64_t, FoldedTrace> traces;
    uint64_t heldBytes = 0;
    uint64_t peakBytes = 0;
    FusedPassStats stats;
};

/**
 * Fused Algorithm 2 collection: one machine run on input `which` whose
 * control-flow outcomes stream through the branch batch probe into a
 * detached FoldedTraceCollector (crypto-filtered like the probe-driven
 * collector). The folded traces and held/peak byte accounting are
 * identical to collectRun's — onBranch is the single shared seam.
 */
FusedBranchRun
runFusedBranchPass(const Workload &workload, int which,
                   bool crypto_only = true,
                   const AnalysisPipelineOptions &options = {});

/**
 * TimingOpSource over retained fused chunks: the whole-mode replay
 * source when analysis ran fused. nextBatch() serves zero-copy views
 * into the chunks (a batch never crosses a chunk boundary); next() is
 * the scalar adapter. `chunks` must outlive the source.
 */
class ChunkSpanSource final : public uarch::TimingOpSource
{
  public:
    explicit ChunkSpanSource(const std::vector<AnalysisChunk> &chunks)
        : chunks_(&chunks)
    {
    }

    const uarch::TimingOp *next() override;
    size_t nextBatch(uarch::OpBatch &out, size_t max_ops) override;

  private:
    /** Advance past exhausted chunks; false at end of stream. */
    bool settle();

    const std::vector<AnalysisChunk> *chunks_;
    size_t chunk_ = 0;
    size_t pos_ = 0; ///< within chunk_
    uarch::TimingOp op_;
};

/**
 * Process-wide count of fused analysis passes (op passes and branch
 * passes both count — each replaces at least one reference machine
 * run). Feeds the analysis_fused_passes telemetry field.
 */
uint64_t fusedAnalysisPasses();

} // namespace cassandra::core

#endif // CASSANDRA_CORE_ANALYSIS_PIPELINE_HH
