#include "core/trace_stream.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/serialize.hh"

#if defined(__unix__) || defined(__APPLE__)
#define CASSANDRA_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace cassandra::core {

namespace {

constexpr char streamMagic[8] = {'C', 'A', 'S', 'S', 'T', 'F', '1', '\n'};
constexpr uint32_t streamVersion = 1;
// magic(8) + version(4) + frameOps(4) + fingerprint(8) + numOps(8)
constexpr size_t headerBytes = 32;
constexpr size_t numOpsOffset = 24;
constexpr size_t footerBytes = 16; // indexPos(8) + numFrames(8)

void
putU32(uint8_t *dst, uint32_t v)
{
    for (int i = 0; i < 4; i++)
        dst[i] = static_cast<uint8_t>(v >> (8 * i));
}

void
putU64(uint8_t *dst, uint64_t v)
{
    for (int i = 0; i < 8; i++)
        dst[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t
getU32(const uint8_t *src)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; i++)
        v |= static_cast<uint32_t>(src[i]) << (8 * i);
    return v;
}

uint64_t
getU64(const uint8_t *src)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v |= static_cast<uint64_t>(src[i]) << (8 * i);
    return v;
}

} // namespace

// ---------------------------------------------------------------------
// TraceStreamWriter
// ---------------------------------------------------------------------

TraceStreamWriter::TraceStreamWriter(const std::string &path,
                                     uint64_t program_fingerprint,
                                     uint32_t frame_ops)
    : path_(path), frameOps_(frame_ops)
{
    if (frame_ops == 0)
        throw std::invalid_argument("TraceStreamWriter: frame_ops == 0");
    file_.open(path, std::ios::binary | std::ios::trunc);
    if (!file_)
        throw std::runtime_error("cannot open " + path + " for writing");
    uint8_t header[headerBytes];
    std::memcpy(header, streamMagic, sizeof streamMagic);
    putU32(header + 8, streamVersion);
    putU32(header + 12, frameOps_);
    putU64(header + 16, program_fingerprint);
    putU64(header + numOpsOffset, 0); // patched by finish()
    file_.write(reinterpret_cast<const char *>(header), headerBytes);
    frame_.reserve(static_cast<size_t>(frameOps_) * traceStreamOpBytes);
}

TraceStreamWriter::~TraceStreamWriter()
{
    try {
        finish();
    } catch (...) {
        // Destructors must not throw; an unfinished file fails loudly
        // at read time (numOps stays 0 / layout check fails).
    }
}

void
TraceStreamWriter::append(const uarch::TimingOp &op)
{
    if (finished_)
        throw std::logic_error("TraceStreamWriter: append after finish");
    uint8_t bytes[traceStreamOpBytes];
    putU64(bytes + 0, op.pc);
    putU64(bytes + 8, op.memAddr);
    putU64(bytes + 16, op.nextPc);
    frame_.insert(frame_.end(), bytes, bytes + traceStreamOpBytes);
    numOps_++;
    if (frame_.size() >=
        static_cast<size_t>(frameOps_) * traceStreamOpBytes)
        flushFrame();
}

void
TraceStreamWriter::flushFrame()
{
    if (frame_.empty())
        return;
    frameOffsets_.push_back(static_cast<uint64_t>(file_.tellp()));
    file_.write(reinterpret_cast<const char *>(frame_.data()),
                static_cast<std::streamsize>(frame_.size()));
    frame_.clear();
}

void
TraceStreamWriter::finish()
{
    if (finished_)
        return;
    flushFrame();
    const uint64_t index_pos = static_cast<uint64_t>(file_.tellp());
    std::vector<uint8_t> tail(frameOffsets_.size() * 8 + footerBytes);
    for (size_t i = 0; i < frameOffsets_.size(); i++)
        putU64(tail.data() + i * 8, frameOffsets_[i]);
    putU64(tail.data() + frameOffsets_.size() * 8, index_pos);
    putU64(tail.data() + frameOffsets_.size() * 8 + 8,
           frameOffsets_.size());
    file_.write(reinterpret_cast<const char *>(tail.data()),
                static_cast<std::streamsize>(tail.size()));
    uint8_t ops[8];
    putU64(ops, numOps_);
    file_.seekp(numOpsOffset);
    file_.write(reinterpret_cast<const char *>(ops), 8);
    file_.flush();
    if (!file_)
        throw std::runtime_error("short write to " + path_);
    file_.close();
    finished_ = true;
}

// ---------------------------------------------------------------------
// TraceCursor
// ---------------------------------------------------------------------

TraceCursor::TraceCursor(const std::string &path,
                         const ir::Program &program, Backing backing)
    : program_(program)
{
    file_.open(path, std::ios::binary);
    if (!file_)
        throw std::runtime_error("cannot open trace stream " + path);
    file_.seekg(0, std::ios::end);
    const uint64_t file_len = static_cast<uint64_t>(file_.tellg());
    file_.seekg(0);
    if (file_len < headerBytes + footerBytes)
        throw ArtifactFormatError("trace stream " + path +
                                  " is truncated");

    uint8_t header[headerBytes];
    file_.read(reinterpret_cast<char *>(header), headerBytes);
    if (std::memcmp(header, streamMagic, sizeof streamMagic) != 0)
        throw ArtifactFormatError(path + " is not a trace stream file");
    if (getU32(header + 8) != streamVersion)
        throw ArtifactFormatError(
            "trace stream " + path + " has format version " +
            std::to_string(getU32(header + 8)) + ", expected " +
            std::to_string(streamVersion));
    frameOps_ = getU32(header + 12);
    const uint64_t fingerprint = getU64(header + 16);
    numOps_ = getU64(header + numOpsOffset);
    if (frameOps_ == 0)
        throw ArtifactFormatError("trace stream " + path +
                                  " has zero frame size");
    // The fingerprint of the caller's program must match the one the
    // trace was recorded against.
    if (fingerprint != programFingerprint(program))
        throw ArtifactStaleError(
            "trace stream " + path +
            ": program fingerprint mismatch (stale trace)");

    // Footer + index.
    uint8_t footer[footerBytes];
    file_.seekg(static_cast<std::streamoff>(file_len - footerBytes));
    file_.read(reinterpret_cast<char *>(footer), footerBytes);
    const uint64_t index_pos = getU64(footer);
    numFrames_ = getU64(footer + 8);
    const uint64_t expect_frames =
        (numOps_ + frameOps_ - 1) / frameOps_;
    if (numFrames_ != expect_frames ||
        index_pos + numFrames_ * 8 + footerBytes != file_len)
        throw ArtifactFormatError("trace stream " + path +
                                  " has an inconsistent index");
    frameOffsets_.resize(numFrames_);
    file_.seekg(static_cast<std::streamoff>(index_pos));
    std::vector<uint8_t> raw(numFrames_ * 8);
    file_.read(reinterpret_cast<char *>(raw.data()),
               static_cast<std::streamsize>(raw.size()));
    if (!file_)
        throw ArtifactFormatError("trace stream " + path +
                                  " has a truncated index");
    for (uint64_t f = 0; f < numFrames_; f++) {
        frameOffsets_[f] = getU64(raw.data() + f * 8);
        const uint64_t expect =
            headerBytes +
            f * static_cast<uint64_t>(frameOps_) * traceStreamOpBytes;
        if (frameOffsets_[f] != expect)
            throw ArtifactFormatError("trace stream " + path +
                                      " has an inconsistent index");
    }

#ifdef CASSANDRA_HAVE_MMAP
    if (backing != Backing::Buffered) {
        int fd = ::open(path.c_str(), O_RDONLY);
        if (fd >= 0) {
            void *m = ::mmap(nullptr, static_cast<size_t>(file_len),
                             PROT_READ, MAP_PRIVATE, fd, 0);
            ::close(fd); // the mapping keeps its own reference
            if (m != MAP_FAILED) {
                map_ = static_cast<const uint8_t *>(m);
                mapLen_ = static_cast<size_t>(file_len);
#ifdef MADV_SEQUENTIAL
                ::madvise(const_cast<uint8_t *>(map_), mapLen_,
                          MADV_SEQUENTIAL);
#endif
            }
        }
    }
#endif
    if (!map_ && backing == Backing::Mmap)
        throw std::runtime_error("mmap unavailable for " + path);
    if (!map_)
        frame_.resize(static_cast<size_t>(frameOps_) *
                      traceStreamOpBytes);
}

TraceCursor::~TraceCursor()
{
#ifdef CASSANDRA_HAVE_MMAP
    if (map_)
        ::munmap(const_cast<uint8_t *>(map_), mapLen_);
#endif
}

void
TraceCursor::loadFrame(uint64_t frame)
{
    const uint64_t first = frame * frameOps_;
    const uint64_t ops =
        std::min<uint64_t>(frameOps_, numOps_ - first);
    file_.seekg(static_cast<std::streamoff>(frameOffsets_[frame]));
    file_.read(reinterpret_cast<char *>(frame_.data()),
               static_cast<std::streamsize>(ops * traceStreamOpBytes));
    if (!file_)
        throw ArtifactFormatError("trace stream read failed (frame " +
                                  std::to_string(frame) + ")");
    loadedFrame_ = frame;
}

const uint8_t *
TraceCursor::opBytes(uint64_t index)
{
    const uint64_t frame = index / frameOps_;
    const uint64_t within = index % frameOps_;
    if (map_) {
#ifdef CASSANDRA_HAVE_MMAP
        // Drop consumed frames so resident memory stays at ~one frame
        // even for multi-GB traces (clean file-backed pages refault on
        // demand if re-read).
        while (droppedFrames_ < frame) {
            const size_t page = 4096;
            size_t lo = static_cast<size_t>(
                frameOffsets_[droppedFrames_] & ~(page - 1));
            size_t hi = static_cast<size_t>(
                frameOffsets_[droppedFrames_] +
                static_cast<size_t>(frameOps_) * traceStreamOpBytes);
            hi &= ~(page - 1); // keep the page the next frame starts in
            if (hi > lo)
                ::madvise(const_cast<uint8_t *>(map_) + lo, hi - lo,
                          MADV_DONTNEED);
            droppedFrames_++;
        }
#endif
        return map_ + frameOffsets_[frame] + within * traceStreamOpBytes;
    }
    if (loadedFrame_ != frame)
        loadFrame(frame);
    return frame_.data() + within * traceStreamOpBytes;
}

const uarch::TimingOp *
TraceCursor::next()
{
    if (pos_ >= numOps_)
        return nullptr;
    const uint8_t *bytes = opBytes(pos_);
    op_.pc = getU64(bytes + 0);
    op_.memAddr = getU64(bytes + 8);
    op_.nextPc = getU64(bytes + 16);
    if (!program_.validPc(op_.pc))
        throw ArtifactStaleError(
            "trace stream op pc outside program (stale trace)");
    op_.inst = &program_.at(op_.pc);
    op_.crypto = program_.isCryptoPc(op_.pc);
    op_.tainted = false;
    pos_++;
    return &op_;
}

// ---------------------------------------------------------------------
// Paths
// ---------------------------------------------------------------------

void
ensureDirectories(const std::string &dir)
{
    if (dir.empty())
        return;
    std::string partial;
    size_t pos = 0;
    while (pos <= dir.size()) {
        size_t slash = dir.find('/', pos);
        if (slash == std::string::npos)
            slash = dir.size();
        partial = dir.substr(0, slash);
        pos = slash + 1;
        if (partial.empty() || partial == ".")
            continue;
#ifdef CASSANDRA_HAVE_MMAP
        if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST)
            throw std::runtime_error("cannot create directory " +
                                     partial);
#else
        // No POSIX mkdir: require the directory to exist already.
        std::ofstream probe(partial + "/.cassandra-probe");
        if (!probe)
            throw std::runtime_error("directory " + partial +
                                     " does not exist");
        probe.close();
        std::remove((partial + "/.cassandra-probe").c_str());
#endif
    }
}

std::string
defaultTraceStreamDir()
{
    const char *tmp = std::getenv("TMPDIR");
    std::string base = tmp && *tmp ? tmp : "/tmp";
    if (!base.empty() && base.back() == '/')
        base.pop_back();
#ifdef CASSANDRA_HAVE_MMAP
    return base + "/cassandra-traces-" + std::to_string(::getpid());
#else
    return base + "/cassandra-traces";
#endif
}

std::string
traceStreamPath(const std::string &dir, const std::string &workload_name)
{
    std::string file = workload_name;
    for (char &c : file) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_';
        if (!ok)
            c = '_';
    }
    return dir + "/" + file + ".trace";
}

} // namespace cassandra::core
