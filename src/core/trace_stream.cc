#include "core/trace_stream.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <random>
#include <thread>

#include "core/serialize.hh"

#if defined(__unix__) || defined(__APPLE__)
#define CASSANDRA_HAVE_MMAP 1
#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace cassandra::core {

namespace {

constexpr char streamMagicV1[8] = {'C', 'A', 'S', 'S', 'T', 'F', '1', '\n'};
constexpr char streamMagicV2[8] = {'C', 'A', 'S', 'S', 'T', 'F', '2', '\n'};
// magic(8) + version(4) + frameOps(4) + fingerprint(8) + numOps(8)
constexpr size_t headerBytes = 32;
constexpr size_t numOpsOffset = 24;
constexpr size_t footerBytes = 16; // indexPos(8) + numFrames(8)

// CASSTF2 frame header: u8 kind + u32 payloadBytes.
constexpr size_t frameHeaderBytes = 5;
constexpr uint8_t frameKindRaw = 0;
constexpr uint8_t frameKindDelta = 1;

void
putU32(uint8_t *dst, uint32_t v)
{
    for (int i = 0; i < 4; i++)
        dst[i] = static_cast<uint8_t>(v >> (8 * i));
}

void
putU64(uint8_t *dst, uint64_t v)
{
    for (int i = 0; i < 8; i++)
        dst[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t
getU32(const uint8_t *src)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; i++)
        v |= static_cast<uint32_t>(src[i]) << (8 * i);
    return v;
}

uint64_t
getU64(const uint8_t *src)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v |= static_cast<uint64_t>(src[i]) << (8 * i);
    return v;
}

void
putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

uint64_t
zigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
        static_cast<uint64_t>(v >> 63);
}

int64_t
unzigzag(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

} // namespace

// ---------------------------------------------------------------------
// CASSTF2 frame codec
// ---------------------------------------------------------------------

std::vector<uint8_t>
encodeTraceFrame(const std::vector<uint8_t> &raw_ops)
{
    if (raw_ops.size() % traceStreamOpBytes != 0)
        throw std::invalid_argument(
            "encodeTraceFrame: raw bytes are not whole ops");
    const size_t ops = raw_ops.size() / traceStreamOpBytes;

    // Delta attempt: pc chains off the previous op's nextPc, memAddr
    // off the previous memAddr, nextPc off the fall-through pc. All
    // three are zero-delta for straight-line code.
    std::vector<uint8_t> payload;
    payload.reserve(raw_ops.size() / 4);
    uint64_t prev_mem = 0, prev_next = 0;
    for (size_t i = 0; i < ops; i++) {
        const uint8_t *src = raw_ops.data() + i * traceStreamOpBytes;
        const uint64_t pc = getU64(src + 0);
        const uint64_t mem = getU64(src + 8);
        const uint64_t next = getU64(src + 16);
        if (i == 0) {
            putVarint(payload, pc);
            putVarint(payload, mem);
        } else {
            putVarint(payload,
                      zigzag(static_cast<int64_t>(pc - prev_next)));
            putVarint(payload,
                      zigzag(static_cast<int64_t>(mem - prev_mem)));
        }
        putVarint(payload,
                  zigzag(static_cast<int64_t>(next -
                                              (pc + ir::instBytes))));
        prev_mem = mem;
        prev_next = next;
    }

    // Raw fallback: a frame that does not compress is stored verbatim,
    // bounding worst-case file growth at the 5-byte frame headers.
    const bool use_delta = payload.size() < raw_ops.size();
    const std::vector<uint8_t> &body = use_delta ? payload : raw_ops;
    if (body.size() > 0xffffffffull)
        throw std::invalid_argument(
            "encodeTraceFrame: frame body exceeds the u32 "
            "payload-length field");
    std::vector<uint8_t> frame;
    frame.reserve(frameHeaderBytes + body.size());
    frame.push_back(use_delta ? frameKindDelta : frameKindRaw);
    uint8_t len[4];
    putU32(len, static_cast<uint32_t>(body.size()));
    frame.insert(frame.end(), len, len + 4);
    frame.insert(frame.end(), body.begin(), body.end());
    return frame;
}

void
decodeTraceFrameInto(const uint8_t *frame, size_t frame_len,
                     size_t num_ops, uint8_t *out)
{
    if (frame_len < frameHeaderBytes)
        throw ArtifactFormatError("trace stream frame is truncated");
    const uint8_t kind = frame[0];
    const size_t payload_len = getU32(frame + 1);
    if (payload_len > frame_len - frameHeaderBytes)
        throw ArtifactFormatError("trace stream frame is truncated");
    const uint8_t *p = frame + frameHeaderBytes;

    if (kind == frameKindRaw) {
        if (payload_len != num_ops * traceStreamOpBytes)
            throw ArtifactFormatError(
                "trace stream raw frame has a wrong op count");
        std::memcpy(out, p, payload_len);
        return;
    }
    if (kind != frameKindDelta)
        throw ArtifactFormatError(
            "trace stream frame has an unknown encoding kind");

    size_t pos = 0;
    auto varint = [&]() -> uint64_t {
        uint64_t v = 0;
        for (int shift = 0; shift < 70; shift += 7) {
            if (pos >= payload_len)
                throw ArtifactFormatError(
                    "trace stream delta frame is truncated");
            const uint8_t byte = p[pos++];
            v |= static_cast<uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return v;
        }
        throw ArtifactFormatError(
            "trace stream delta frame has an overlong varint");
    };

    uint64_t prev_mem = 0, prev_next = 0;
    for (size_t i = 0; i < num_ops; i++) {
        uint64_t pc, mem;
        if (i == 0) {
            pc = varint();
            mem = varint();
        } else {
            pc = prev_next + static_cast<uint64_t>(unzigzag(varint()));
            mem = prev_mem + static_cast<uint64_t>(unzigzag(varint()));
        }
        const uint64_t next = pc + ir::instBytes +
            static_cast<uint64_t>(unzigzag(varint()));
        uint8_t *dst = out + i * traceStreamOpBytes;
        putU64(dst + 0, pc);
        putU64(dst + 8, mem);
        putU64(dst + 16, next);
        prev_mem = mem;
        prev_next = next;
    }
    if (pos != payload_len)
        throw ArtifactFormatError(
            "trailing bytes in trace stream delta frame");
}

std::vector<uint8_t>
decodeTraceFrame(const uint8_t *frame, size_t frame_len, size_t num_ops)
{
    std::vector<uint8_t> out(num_ops * traceStreamOpBytes);
    decodeTraceFrameInto(frame, frame_len, num_ops, out.data());
    return out;
}

void
decodeTraceFrameSoA(const uint8_t *frame, size_t frame_len,
                    size_t num_ops, uint64_t *pc, uint64_t *mem_addr,
                    uint64_t *next_pc)
{
    if (frame_len < frameHeaderBytes)
        throw ArtifactFormatError("trace stream frame is truncated");
    const uint8_t kind = frame[0];
    const size_t payload_len = getU32(frame + 1);
    if (payload_len > frame_len - frameHeaderBytes)
        throw ArtifactFormatError("trace stream frame is truncated");
    const uint8_t *p = frame + frameHeaderBytes;

    if (kind == frameKindRaw) {
        if (payload_len != num_ops * traceStreamOpBytes)
            throw ArtifactFormatError(
                "trace stream raw frame has a wrong op count");
        for (size_t i = 0; i < num_ops; i++) {
            const uint8_t *src = p + i * traceStreamOpBytes;
            pc[i] = getU64(src + 0);
            mem_addr[i] = getU64(src + 8);
            next_pc[i] = getU64(src + 16);
        }
        return;
    }
    if (kind != frameKindDelta)
        throw ArtifactFormatError(
            "trace stream frame has an unknown encoding kind");

    size_t pos = 0;
    auto varint = [&]() -> uint64_t {
        uint64_t v = 0;
        for (int shift = 0; shift < 70; shift += 7) {
            if (pos >= payload_len)
                throw ArtifactFormatError(
                    "trace stream delta frame is truncated");
            const uint8_t byte = p[pos++];
            v |= static_cast<uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return v;
        }
        throw ArtifactFormatError(
            "trace stream delta frame has an overlong varint");
    };

    uint64_t prev_mem = 0, prev_next = 0;
    for (size_t i = 0; i < num_ops; i++) {
        uint64_t cur_pc, mem;
        if (i == 0) {
            cur_pc = varint();
            mem = varint();
        } else {
            cur_pc =
                prev_next + static_cast<uint64_t>(unzigzag(varint()));
            mem = prev_mem + static_cast<uint64_t>(unzigzag(varint()));
        }
        const uint64_t next = cur_pc + ir::instBytes +
            static_cast<uint64_t>(unzigzag(varint()));
        pc[i] = cur_pc;
        mem_addr[i] = mem;
        next_pc[i] = next;
        prev_mem = mem;
        prev_next = next;
    }
    if (pos != payload_len)
        throw ArtifactFormatError(
            "trailing bytes in trace stream delta frame");
}

// ---------------------------------------------------------------------
// TraceStreamWriter
// ---------------------------------------------------------------------

TraceStreamWriter::TraceStreamWriter(const std::string &path,
                                     uint64_t program_fingerprint,
                                     uint32_t frame_ops,
                                     TraceCompression compression)
    : path_(path), frameOps_(frame_ops), compression_(compression)
{
    if (frame_ops == 0)
        throw std::invalid_argument("TraceStreamWriter: frame_ops == 0");
    // A raw frame body must fit the CASSTF2 u32 payload-length field,
    // or encodeTraceFrame would silently truncate its framing.
    if (static_cast<uint64_t>(frame_ops) * traceStreamOpBytes >
        0xffffffffull - 64)
        throw std::invalid_argument(
            "TraceStreamWriter: frame_ops too large for the frame "
            "length field");
    file_.open(path, std::ios::binary | std::ios::trunc);
    if (!file_)
        throw std::runtime_error("cannot open " + path + " for writing");
    uint8_t header[headerBytes];
    const bool v2 = compression_ == TraceCompression::Delta;
    std::memcpy(header, v2 ? streamMagicV2 : streamMagicV1,
                sizeof streamMagicV1);
    putU32(header + 8, v2 ? 2u : 1u);
    putU32(header + 12, frameOps_);
    putU64(header + 16, program_fingerprint);
    putU64(header + numOpsOffset, 0); // patched by finish()
    file_.write(reinterpret_cast<const char *>(header), headerBytes);
    checkStream("header write");
    frame_.reserve(static_cast<size_t>(frameOps_) * traceStreamOpBytes);
}

TraceStreamWriter::~TraceStreamWriter()
{
    try {
        finish();
    } catch (...) {
        // Destructors must not throw; an unfinished file fails loudly
        // at read time (numOps stays 0 / layout check fails).
    }
}

void
TraceStreamWriter::checkStream(const char *what) const
{
    if (!file_)
        throw std::runtime_error(std::string("trace stream ") + what +
                                 " failed for " + path_ +
                                 " (disk full?)");
}

void
TraceStreamWriter::append(const uarch::TimingOp &op)
{
    if (finished_)
        throw std::logic_error("TraceStreamWriter: append after finish");
    uint8_t bytes[traceStreamOpBytes];
    putU64(bytes + 0, op.pc);
    putU64(bytes + 8, op.memAddr);
    putU64(bytes + 16, op.nextPc);
    frame_.insert(frame_.end(), bytes, bytes + traceStreamOpBytes);
    numOps_++;
    if (frame_.size() >=
        static_cast<size_t>(frameOps_) * traceStreamOpBytes)
        flushFrame();
}

void
TraceStreamWriter::appendBatch(const uarch::OpBatch &batch)
{
    if (finished_)
        throw std::logic_error("TraceStreamWriter: append after finish");
    for (size_t i = 0; i < batch.size; i++) {
        uint8_t bytes[traceStreamOpBytes];
        putU64(bytes + 0, batch.pc[i]);
        putU64(bytes + 8, batch.memAddr[i]);
        putU64(bytes + 16, batch.nextPc[i]);
        frame_.insert(frame_.end(), bytes, bytes + traceStreamOpBytes);
        numOps_++;
        if (frame_.size() >=
            static_cast<size_t>(frameOps_) * traceStreamOpBytes)
            flushFrame();
    }
}

void
TraceStreamWriter::flushFrame()
{
    if (frame_.empty())
        return;
    // A poisoned stream would report tellp() == -1 and corrupt every
    // later index entry: fail fast instead of finishing garbage.
    checkStream("write");
    const std::streampos pos = file_.tellp();
    if (pos == std::streampos(-1))
        throw std::runtime_error("cannot position in " + path_);
    frameOffsets_.push_back(static_cast<uint64_t>(pos));
    if (compression_ == TraceCompression::Delta) {
        const std::vector<uint8_t> encoded = encodeTraceFrame(frame_);
        file_.write(reinterpret_cast<const char *>(encoded.data()),
                    static_cast<std::streamsize>(encoded.size()));
    } else {
        file_.write(reinterpret_cast<const char *>(frame_.data()),
                    static_cast<std::streamsize>(frame_.size()));
    }
    checkStream("frame write");
    frame_.clear();
}

void (*TraceStreamWriter::finishSeamHook)(const std::string &path) =
    nullptr;

void
TraceStreamWriter::finish()
{
    if (finished_)
        return;
    flushFrame();
    // The durability seam: every data frame must be durable before a
    // single index/footer byte is issued, or a crash could leave a
    // footer that validates against truncated data. One flush drains
    // the stream buffer in write order; the fsync orders it against
    // kernel writeback.
    file_.flush();
    checkStream("data flush");
#if defined(__unix__) || defined(__APPLE__)
    {
        const int fd = ::open(path_.c_str(), O_WRONLY);
        if (fd < 0 || ::fsync(fd) != 0) {
            if (fd >= 0)
                ::close(fd);
            throw std::runtime_error("cannot sync " + path_);
        }
        ::close(fd);
    }
#endif
    if (finishSeamHook)
        finishSeamHook(path_);
    const std::streampos raw_pos = file_.tellp();
    if (raw_pos == std::streampos(-1))
        throw std::runtime_error("cannot position in " + path_);
    const uint64_t index_pos = static_cast<uint64_t>(raw_pos);
    std::vector<uint8_t> tail(frameOffsets_.size() * 8 + footerBytes);
    for (size_t i = 0; i < frameOffsets_.size(); i++)
        putU64(tail.data() + i * 8, frameOffsets_[i]);
    putU64(tail.data() + frameOffsets_.size() * 8, index_pos);
    putU64(tail.data() + frameOffsets_.size() * 8 + 8,
           frameOffsets_.size());
    file_.write(reinterpret_cast<const char *>(tail.data()),
                static_cast<std::streamsize>(tail.size()));
    uint8_t ops[8];
    putU64(ops, numOps_);
    file_.seekp(numOpsOffset);
    file_.write(reinterpret_cast<const char *>(ops), 8);
    file_.flush();
    if (!file_)
        throw std::runtime_error("short write to " + path_);
    file_.close();
    finished_ = true;
}

// ---------------------------------------------------------------------
// TraceCursor
// ---------------------------------------------------------------------

TraceCursor::TraceCursor(const std::string &path,
                         const ir::Program &program, Backing backing)
    : program_(program), path_(path)
{
    file_.open(path, std::ios::binary);
    if (!file_)
        throw std::runtime_error("cannot open trace stream " + path);
    file_.seekg(0, std::ios::end);
    const uint64_t file_len = static_cast<uint64_t>(file_.tellg());
    file_.seekg(0);
    if (file_len < headerBytes + footerBytes)
        throw ArtifactFormatError("trace stream " + path +
                                  " is truncated");

    uint8_t header[headerBytes];
    file_.read(reinterpret_cast<char *>(header), headerBytes);
    if (std::memcmp(header, streamMagicV1, 6) != 0)
        throw ArtifactFormatError(path + " is not a trace stream file");
    const uint32_t version_field = getU32(header + 8);
    if (std::memcmp(header, streamMagicV1, 8) == 0 &&
        version_field == 1) {
        version_ = 1;
    } else if (std::memcmp(header, streamMagicV2, 8) == 0 &&
               version_field == 2) {
        version_ = 2;
    } else {
        // Unknown container revision, or a magic/version-field
        // mismatch (e.g. a CASSTF2 file relabeled as CASSTF1).
        throw ArtifactFormatError(
            "trace stream " + path + " has format version " +
            std::to_string(version_field) +
            ", expected a matching CASSTF1 or CASSTF2 header");
    }
    frameOps_ = getU32(header + 12);
    const uint64_t fingerprint = getU64(header + 16);
    numOps_ = getU64(header + numOpsOffset);
    if (frameOps_ == 0)
        throw ArtifactFormatError("trace stream " + path +
                                  " has zero frame size");
    // The fingerprint of the caller's program must match the one the
    // trace was recorded against.
    if (fingerprint != programFingerprint(program))
        throw ArtifactStaleError(
            "trace stream " + path +
            ": program fingerprint mismatch (stale trace)");

    // Footer + index. Every bound is checked by subtraction against
    // file_len before any multiplication or allocation, so a corrupt
    // footer cannot pass the consistency check via uint64 wrap-around
    // and then trigger a numFrames_-sized allocation.
    uint8_t footer[footerBytes];
    file_.seekg(static_cast<std::streamoff>(file_len - footerBytes));
    file_.read(reinterpret_cast<char *>(footer), footerBytes);
    const uint64_t index_pos = getU64(footer);
    numFrames_ = getU64(footer + 8);
    const uint64_t expect_frames =
        (numOps_ + frameOps_ - 1) / frameOps_;
    const uint64_t payload_bytes = file_len - headerBytes - footerBytes;
    if (numFrames_ != expect_frames || numFrames_ > payload_bytes / 8 ||
        index_pos != file_len - footerBytes - numFrames_ * 8 ||
        index_pos < headerBytes)
        throw ArtifactFormatError("trace stream " + path +
                                  " has an inconsistent index");
    // Bound the header's size fields against the file before sizing
    // any buffer from them: the writer never exceeds the u32 frame
    // length field, and every op costs at least 3 encoded bytes (24
    // raw in v1), so a corrupt frameOps/numOps pair cannot coerce the
    // frame buffer into an allocation beyond ~8x the file size.
    const uint64_t frame_payload = index_pos - headerBytes;
    const uint64_t min_op_bytes =
        version_ == 1 ? traceStreamOpBytes : 3;
    if (static_cast<uint64_t>(frameOps_) * traceStreamOpBytes >
            0xffffffffull - 64 ||
        numOps_ > frame_payload / min_op_bytes ||
        (version_ == 1 &&
         numOps_ * traceStreamOpBytes != frame_payload))
        throw ArtifactFormatError("trace stream " + path +
                                  " has inconsistent size fields");
    indexPos_ = index_pos;
    frameOffsets_.resize(numFrames_);
    file_.seekg(static_cast<std::streamoff>(index_pos));
    std::vector<uint8_t> raw(numFrames_ * 8);
    file_.read(reinterpret_cast<char *>(raw.data()),
               static_cast<std::streamsize>(raw.size()));
    if (!file_)
        throw ArtifactFormatError("trace stream " + path +
                                  " has a truncated index");
    for (uint64_t f = 0; f < numFrames_; f++) {
        frameOffsets_[f] = getU64(raw.data() + f * 8);
        bool ok;
        if (version_ == 1) {
            // Raw frames sit at exactly computable offsets.
            ok = frameOffsets_[f] ==
                headerBytes +
                    f * static_cast<uint64_t>(frameOps_) *
                        traceStreamOpBytes;
        } else {
            // Compressed frames vary in size: offsets must start at
            // the header, strictly increase, and leave room for at
            // least a frame header before the index.
            ok = (f == 0 ? frameOffsets_[f] == headerBytes
                         : frameOffsets_[f] >
                              frameOffsets_[f - 1] + frameHeaderBytes) &&
                frameOffsets_[f] + frameHeaderBytes <= indexPos_;
        }
        if (!ok)
            throw ArtifactFormatError("trace stream " + path +
                                      " has an inconsistent index");
    }

#ifdef CASSANDRA_HAVE_MMAP
    if (backing != Backing::Buffered) {
        int fd = ::open(path.c_str(), O_RDONLY);
        if (fd >= 0) {
            void *m = ::mmap(nullptr, static_cast<size_t>(file_len),
                             PROT_READ, MAP_PRIVATE, fd, 0);
            ::close(fd); // the mapping keeps its own reference
            if (m != MAP_FAILED) {
                map_ = static_cast<const uint8_t *>(m);
                mapLen_ = static_cast<size_t>(file_len);
#ifdef MADV_SEQUENTIAL
                ::madvise(const_cast<uint8_t *>(map_), mapLen_,
                          MADV_SEQUENTIAL);
#endif
            }
        }
    }
#endif
    if (!map_ && backing == Backing::Mmap)
        throw std::runtime_error("mmap unavailable for " + path);
    // v1 + mmap serves ops straight from the mapping; every other
    // combination decodes/reads one frame into frame_ (sized for the
    // largest frame the validated op count allows).
    if (version_ != 1 || !map_)
        frame_.resize(static_cast<size_t>(
                          std::min<uint64_t>(frameOps_, numOps_)) *
                      traceStreamOpBytes);
    // Relink table for the batch path: crypto flag per static
    // instruction, so per-op relinking is a bounds check plus two
    // table loads instead of a linear crypto-range scan.
    cryptoByIndex_.resize(program.size());
    for (size_t idx = 0; idx < cryptoByIndex_.size(); idx++)
        cryptoByIndex_[idx] =
            program.isCryptoPc(ir::Program::pcOf(idx)) ? 1 : 0;
}

TraceCursor::~TraceCursor()
{
    // Stop the decode-ahead worker before the mapping (and this
    // object's geometry) goes away.
    prefetch_.reset();
#ifdef CASSANDRA_HAVE_MMAP
    if (map_)
        ::munmap(const_cast<uint8_t *>(map_), mapLen_);
#endif
}

uint64_t
TraceCursor::frameOps(uint64_t frame) const
{
    const uint64_t first = frame * frameOps_;
    return std::min<uint64_t>(frameOps_, numOps_ - first);
}

uint64_t
TraceCursor::frameEnd(uint64_t frame) const
{
    return frame + 1 < numFrames_ ? frameOffsets_[frame + 1] : indexPos_;
}

void
TraceCursor::dropConsumedFrames(uint64_t upto)
{
#ifdef CASSANDRA_HAVE_MMAP
    // Drop consumed frames so resident memory stays at ~one frame even
    // for multi-GB traces (clean file-backed pages refault on demand if
    // re-read).
    while (droppedFrames_ < upto) {
        const size_t page = 4096;
        size_t lo = static_cast<size_t>(frameOffsets_[droppedFrames_] &
                                        ~(page - 1));
        size_t hi = static_cast<size_t>(frameEnd(droppedFrames_));
        hi &= ~(page - 1); // keep the page the next frame starts in
        if (hi > lo)
            ::madvise(const_cast<uint8_t *>(map_) + lo, hi - lo,
                      MADV_DONTNEED);
        droppedFrames_++;
    }
#else
    (void)upto;
#endif
}

void
TraceCursor::loadFrame(uint64_t frame)
{
    const uint64_t ops = frameOps(frame);
    if (version_ == 1) {
        file_.seekg(static_cast<std::streamoff>(frameOffsets_[frame]));
        file_.read(reinterpret_cast<char *>(frame_.data()),
                   static_cast<std::streamsize>(ops *
                                                traceStreamOpBytes));
        if (!file_)
            throw ArtifactFormatError(
                "trace stream read failed (frame " +
                std::to_string(frame) + ")");
    } else {
        const uint64_t start = frameOffsets_[frame];
        const size_t len = static_cast<size_t>(frameEnd(frame) - start);
        const uint8_t *enc;
        if (map_) {
            enc = map_ + start;
        } else {
            scratch_.resize(len);
            file_.seekg(static_cast<std::streamoff>(start));
            file_.read(reinterpret_cast<char *>(scratch_.data()),
                       static_cast<std::streamsize>(len));
            if (!file_)
                throw ArtifactFormatError(
                    "trace stream read failed (frame " +
                    std::to_string(frame) + ")");
            enc = scratch_.data();
        }
        // Decode in place: frame_ was sized for a full frame once at
        // construction, so the replay hot path never allocates.
        decodeTraceFrameInto(enc, len, static_cast<size_t>(ops),
                             frame_.data());
    }
    loadedFrame_ = frame;
}

const uint8_t *
TraceCursor::opBytes(uint64_t index)
{
    const uint64_t frame = index / frameOps_;
    const uint64_t within = index % frameOps_;
    if (version_ == 1 && map_) {
        dropConsumedFrames(frame);
        return map_ + frameOffsets_[frame] + within * traceStreamOpBytes;
    }
    if (loadedFrame_ != frame) {
        loadFrame(frame);
        if (map_)
            dropConsumedFrames(frame);
    }
    return frame_.data() + within * traceStreamOpBytes;
}

void
TraceCursor::decodeFrame(uint64_t frame, uarch::OpBatchStorage &out,
                         std::ifstream &file,
                         std::vector<uint8_t> &scratch) const
{
    const size_t ops = static_cast<size_t>(frameOps(frame));
    out.resize(ops);
    const uint64_t start = frameOffsets_[frame];
    if (version_ == 1) {
        const uint8_t *raw;
        if (map_) {
            raw = map_ + start;
        } else {
            scratch.resize(ops * traceStreamOpBytes);
            file.seekg(static_cast<std::streamoff>(start));
            file.read(reinterpret_cast<char *>(scratch.data()),
                      static_cast<std::streamsize>(scratch.size()));
            if (!file)
                throw ArtifactFormatError(
                    "trace stream read failed (frame " +
                    std::to_string(frame) + ")");
            raw = scratch.data();
        }
        for (size_t i = 0; i < ops; i++) {
            const uint8_t *src = raw + i * traceStreamOpBytes;
            out.pc[i] = getU64(src + 0);
            out.memAddr[i] = getU64(src + 8);
            out.nextPc[i] = getU64(src + 16);
        }
    } else {
        const size_t len = static_cast<size_t>(frameEnd(frame) - start);
        const uint8_t *enc;
        if (map_) {
            enc = map_ + start;
        } else {
            scratch.resize(len);
            file.seekg(static_cast<std::streamoff>(start));
            file.read(reinterpret_cast<char *>(scratch.data()),
                      static_cast<std::streamsize>(len));
            if (!file)
                throw ArtifactFormatError(
                    "trace stream read failed (frame " +
                    std::to_string(frame) + ")");
            enc = scratch.data();
        }
        decodeTraceFrameSoA(enc, len, ops, out.pc.data(),
                            out.memAddr.data(), out.nextPc.data());
    }

    // Relink: the off-based check accepts exactly the pcs
    // program_.validPc accepts (an out-of-range or misaligned pc means
    // a stale trace, same as the scalar path).
    const ir::Inst *insts = program_.insts.data();
    const uint64_t limit = cryptoByIndex_.size() * ir::instBytes;
    for (size_t i = 0; i < ops; i++) {
        const uint64_t off = out.pc[i] - ir::Program::codeBase;
        if (off >= limit || off % ir::instBytes != 0)
            throw ArtifactStaleError(
                "trace stream op pc outside program (stale trace)");
        const size_t idx = static_cast<size_t>(off / ir::instBytes);
        out.inst[i] = insts + idx;
        out.crypto[i] = cryptoByIndex_[idx];
        out.tainted[i] = 0;
    }
}

void
TraceCursor::loadFrameSoA(uint64_t frame)
{
    decodeFrame(frame, soa_, file_, scratch_);
    if (map_)
        dropConsumedFrames(frame);
    soaFrame_ = frame;
}

namespace {

std::atomic<uint64_t> prefetch_batches{0};
std::atomic<uint64_t> prefetch_stalls{0};

/** CASSANDRA_STREAM_PREFETCH resolution. Read per cursor (not cached
 * in a static) so tests can flip it between cursors. */
bool
prefetchWanted()
{
    const char *e = std::getenv("CASSANDRA_STREAM_PREFETCH");
    std::string v = e ? e : "auto";
    for (char &c : v)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (v == "0" || v == "off")
        return false;
    if (v == "1" || v == "on")
        return true;
    return std::thread::hardware_concurrency() >= 2;
}

} // namespace

/**
 * Decode-ahead worker: one thread, one frame of look-ahead, its own
 * read state (stream + scratch + output columns), so the only shared
 * data is the cursor's immutable geometry and the read-only mapping.
 * The protocol is strict double-buffering — request(F+1) is issued
 * when F is swapped in, take(F) either swaps the finished buffer or
 * waits for the in-flight decode (a counted stall).
 */
struct TraceCursor::Prefetch
{
    Prefetch(const TraceCursor &cursor, const std::string &path)
        : cursor_(cursor)
    {
        if (!cursor.map_) {
            file_.open(path, std::ios::binary);
            if (!file_)
                throw std::runtime_error(
                    "cannot reopen trace stream " + path);
        }
        worker_ = std::thread([this] { loop(); });
    }

    ~Prefetch()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        worker_.join();
    }

    /** Ask the worker to decode `frame` next (drops any unconsumed
     * previously finished frame). */
    void
    request(uint64_t frame)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            want_ = frame;
            pending_ = true;
            hasDone_ = false;
        }
        cv_.notify_all();
    }

    /**
     * Obtain `frame` from the worker: swap its buffer into `out` and
     * return true, waiting (stalled = true) when the decode is still
     * in flight. False when the worker was never asked for it — the
     * caller decodes synchronously. Rethrows worker-side decode
     * errors at the frame boundary, exactly where the synchronous
     * path would throw them.
     */
    bool
    take(uint64_t frame, uarch::OpBatchStorage &out, bool &stalled)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stalled = false;
        for (;;) {
            if (hasDone_ && done_ == frame) {
                hasDone_ = false;
                if (error_) {
                    std::exception_ptr e = error_;
                    error_ = nullptr;
                    std::rethrow_exception(e);
                }
                std::swap(out, buf_);
                return true;
            }
            if ((pending_ && want_ == frame) ||
                (busy_ && current_ == frame)) {
                stalled = true;
                cv_.wait(lock);
                continue;
            }
            return false;
        }
    }

  private:
    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            cv_.wait(lock, [this] { return stop_ || pending_; });
            if (stop_)
                return;
            current_ = want_;
            pending_ = false;
            busy_ = true;
            lock.unlock();
            std::exception_ptr err;
            try {
                cursor_.decodeFrame(current_, buf_, file_, scratch_);
            } catch (...) {
                err = std::current_exception();
            }
            lock.lock();
            busy_ = false;
            // A request that arrived mid-decode supersedes this
            // result; otherwise publish it.
            if (!pending_) {
                done_ = current_;
                hasDone_ = true;
                error_ = err;
            }
            cv_.notify_all();
        }
    }

    const TraceCursor &cursor_;
    std::ifstream file_; ///< own handle (unused with mmap backing)
    std::vector<uint8_t> scratch_;
    uarch::OpBatchStorage buf_;

    std::mutex mutex_;
    std::condition_variable cv_;
    uint64_t want_ = 0;
    uint64_t current_ = 0;
    uint64_t done_ = 0;
    bool pending_ = false;
    bool busy_ = false;
    bool hasDone_ = false;
    bool stop_ = false;
    std::exception_ptr error_;
    std::thread worker_;
};

void
TraceCursor::maybeStartPrefetch()
{
    if (prefetchChecked_)
        return;
    prefetchChecked_ = true;
    // One frame of look-ahead needs a second frame to exist; a worker
    // that cannot start (thread/file limits) just leaves the cursor
    // on the synchronous path.
    if (numFrames_ < 2 || !prefetchWanted())
        return;
    try {
        prefetch_ = std::make_unique<Prefetch>(*this, path_);
    } catch (...) {
        prefetch_.reset();
    }
}

void
TraceCursor::ensureFrameSoA(uint64_t frame)
{
    maybeStartPrefetch();
    if (!prefetch_) {
        loadFrameSoA(frame);
        return;
    }
    bool stalled = false;
    if (prefetch_->take(frame, soa_, stalled)) {
        prefetch_batches.fetch_add(1, std::memory_order_relaxed);
        if (stalled)
            prefetch_stalls.fetch_add(1, std::memory_order_relaxed);
        if (map_)
            dropConsumedFrames(frame);
        soaFrame_ = frame;
    } else {
        loadFrameSoA(frame);
    }
    if (frame + 1 < numFrames_)
        prefetch_->request(frame + 1);
}

uint64_t
TraceCursor::prefetchBatches()
{
    return prefetch_batches.load(std::memory_order_relaxed);
}

uint64_t
TraceCursor::prefetchStalls()
{
    return prefetch_stalls.load(std::memory_order_relaxed);
}

size_t
TraceCursor::nextBatch(uarch::OpBatch &out, size_t max_ops)
{
    if (pos_ >= numOps_ || max_ops == 0)
        return 0;
    const uint64_t frame = pos_ / frameOps_;
    if (soaFrame_ != frame)
        ensureFrameSoA(frame);
    const size_t within = static_cast<size_t>(pos_ % frameOps_);
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(max_ops, frameOps(frame) - within));
    pos_ += n;
    out = soa_.view(within, n);
    return n;
}

const uarch::TimingOp *
TraceCursor::next()
{
    if (pos_ >= numOps_)
        return nullptr;
    const uint8_t *bytes = opBytes(pos_);
    op_.pc = getU64(bytes + 0);
    op_.memAddr = getU64(bytes + 8);
    op_.nextPc = getU64(bytes + 16);
    if (!program_.validPc(op_.pc))
        throw ArtifactStaleError(
            "trace stream op pc outside program (stale trace)");
    op_.inst = &program_.at(op_.pc);
    op_.crypto = program_.isCryptoPc(op_.pc);
    op_.tainted = false;
    pos_++;
    return &op_;
}

// ---------------------------------------------------------------------
// Paths
// ---------------------------------------------------------------------

void
ensureDirectories(const std::string &dir)
{
    if (dir.empty())
        return;
    std::string partial;
    size_t pos = 0;
    while (pos <= dir.size()) {
        size_t slash = dir.find('/', pos);
        if (slash == std::string::npos)
            slash = dir.size();
        partial = dir.substr(0, slash);
        pos = slash + 1;
        if (partial.empty() || partial == ".")
            continue;
#ifdef CASSANDRA_HAVE_MMAP
        if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST)
            throw std::runtime_error("cannot create directory " +
                                     partial);
#else
        // No POSIX mkdir: require the directory to exist already.
        std::ofstream probe(partial + "/.cassandra-probe");
        if (!probe)
            throw std::runtime_error("directory " + partial +
                                     " does not exist");
        probe.close();
        std::remove((partial + "/.cassandra-probe").c_str());
#endif
    }
}

std::string
processUniqueSuffix()
{
#ifdef CASSANDRA_HAVE_MMAP
    return std::to_string(::getpid());
#else
    static const std::string token = [] {
        std::random_device rd;
        const uint64_t t =
            (static_cast<uint64_t>(rd()) << 32) ^ rd();
        char buf[24];
        std::snprintf(buf, sizeof buf, "%016" PRIx64, t);
        return std::string(buf);
    }();
    return token;
#endif
}

std::string
defaultTraceStreamDir()
{
    const char *tmp = std::getenv("TMPDIR");
    std::string base = tmp && *tmp ? tmp : "/tmp";
    if (!base.empty() && base.back() == '/')
        base.pop_back();
    return base + "/cassandra-traces-" + processUniqueSuffix();
}

void
removeDirectoryTree(const std::string &path)
{
#ifdef CASSANDRA_HAVE_MMAP
    if (DIR *dir = opendir(path.c_str())) {
        std::vector<std::string> entries;
        while (struct dirent *entry = readdir(dir)) {
            const std::string name = entry->d_name;
            if (name != "." && name != "..")
                entries.push_back(name);
        }
        closedir(dir);
        for (const std::string &name : entries) {
            const std::string full = path + "/" + name;
            struct stat st;
            // lstat: a symlink into the scratch dir must not make the
            // sweep follow it out of the tree.
            if (::lstat(full.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
                removeDirectoryTree(full);
            else
                std::remove(full.c_str());
        }
    }
    ::rmdir(path.c_str());
#else
    (void)path;
#endif
}

unsigned
sweepStaleProcessDirs(const std::string &root, const std::string &prefix)
{
#ifdef CASSANDRA_HAVE_MMAP
    DIR *dir = opendir(root.c_str());
    if (!dir)
        return 0;
    std::vector<std::string> victims;
    while (struct dirent *entry = readdir(dir)) {
        const std::string name = entry->d_name;
        if (prefix.empty() || name.rfind(prefix, 0) != 0)
            continue;
        const std::string tail = name.substr(prefix.size());
        const size_t digits = tail.find_first_not_of("0123456789");
        const size_t pid_len =
            digits == std::string::npos ? tail.size() : digits;
        // Only "<pid>" or "<pid>-..." suffixes qualify: anything else
        // was not stamped by processUniqueSuffix() and stays.
        if (pid_len == 0 ||
            (pid_len < tail.size() && tail[pid_len] != '-'))
            continue;
        const long pid =
            std::strtol(tail.substr(0, pid_len).c_str(), nullptr, 10);
        errno = 0;
        if (pid <= 0 || ::kill(static_cast<pid_t>(pid), 0) == 0 ||
            errno != ESRCH)
            continue;
        victims.push_back(root + "/" + name);
    }
    closedir(dir);
    for (const std::string &victim : victims)
        removeDirectoryTree(victim);
    return static_cast<unsigned>(victims.size());
#else
    (void)root;
    (void)prefix;
    return 0;
#endif
}

std::string
traceStreamPath(const std::string &dir, const std::string &workload_name,
                uint64_t program_fingerprint)
{
    std::string file = workload_name;
    for (char &c : file) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_';
        if (!ok)
            c = '_';
    }
    // Sanitization is lossy ("synthetic/aes/25" and "synthetic_aes_25"
    // collapse to one string): the program fingerprint keeps distinct
    // workloads on distinct files.
    char fp[24];
    std::snprintf(fp, sizeof fp, "-%016" PRIx64, program_fingerprint);
    return dir + "/" + file + fp + ".trace";
}

} // namespace cassandra::core
