/**
 * @file
 * End-to-end Cassandra system API.
 *
 * A System owns a workload and lazily produces everything an experiment
 * needs: the Algorithm 2 trace image, the recorded dynamic instruction
 * stream, and timing runs under any protection scheme. This is the
 * primary entry point for examples and benches:
 *
 *   core::System sys(crypto::chacha20Bearssl());
 *   auto base = sys.run(uarch::Scheme::UnsafeBaseline);
 *   auto cass = sys.run(uarch::Scheme::Cassandra);
 *   double speedup = double(base.stats.cycles) / cass.stats.cycles;
 */

#ifndef CASSANDRA_CORE_SYSTEM_HH
#define CASSANDRA_CORE_SYSTEM_HH

#include <memory>
#include <optional>

#include "btu/btu.hh"
#include "core/sim_config.hh"
#include "core/tracegen.hh"
#include "core/workload.hh"
#include "uarch/pipeline.hh"

namespace cassandra::core {

/** Per-level cache activity snapshot. */
struct CacheActivity
{
    uint64_t l1iAccesses = 0, l1iMisses = 0;
    uint64_t l1dAccesses = 0, l1dMisses = 0;
    uint64_t l2Accesses = 0, l2Misses = 0;
    uint64_t l3Accesses = 0, l3Misses = 0;
};

/** Everything measured in one timing run. */
struct ExperimentResult
{
    uarch::CoreStats stats;
    btu::BtuStats btu; ///< zeroed for non-BTU schemes
    uarch::BpuStats bpu;
    CacheActivity caches;
};

/** Orchestrates analysis + simulation for one workload. */
class System
{
  public:
    explicit System(Workload workload);

    const Workload &workload() const { return workload_; }

    /** Algorithm 2 output (computed once, cached). */
    const TraceGenResult &traces();

    /** Dynamic instruction stream of the evaluation input (cached). */
    const uarch::TimingTrace &timingTrace();

    /**
     * Run the timing model under a full configuration. The config's
     * scheme, core parameters and BTU geometry all take effect; this
     * is the primary entry point of the experiment API.
     */
    ExperimentResult run(const SimConfig &config);

    /** Run under a scheme with default core/BTU parameters. */
    ExperimentResult run(uarch::Scheme scheme);
    /** Run with explicit core parameters (default BTU geometry). */
    ExperimentResult run(uarch::Scheme scheme,
                         const uarch::CoreParams &params);

    /** Functional run with output verification (eval input). */
    bool verifyOutput() const;

  private:
    Workload workload_;
    std::optional<TraceGenResult> traces_;
    std::optional<uarch::TimingTrace> trace_;
    bool taintAnnotated_ = false;
};

} // namespace cassandra::core

#endif // CASSANDRA_CORE_SYSTEM_HH
