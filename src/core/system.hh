/**
 * @file
 * End-to-end Cassandra system API — compatibility shim.
 *
 * @deprecated System bundles both phases of the two-phase API behind
 * the PR 1 interface and is kept for source compatibility. New code
 * should split the phases explicitly — analyze once, simulate many:
 *
 *   auto aw = core::AnalyzedWorkload::analyze(workload);
 *   core::Simulation sim(aw);
 *   auto base = sim.run(uarch::Scheme::UnsafeBaseline);
 *   auto cass = sim.run(uarch::Scheme::Cassandra);
 *
 * A System lazily analyzes its workload on first use (traces(),
 * timingTrace() or run()) and then delegates every run to a
 * Simulation over the shared artifact. Results are bit-identical to
 * the historical per-run behavior; the artifact is additionally
 * shareable via artifact().
 */

#ifndef CASSANDRA_CORE_SYSTEM_HH
#define CASSANDRA_CORE_SYSTEM_HH

#include <memory>

#include "core/analyzed_workload.hh"
#include "core/sim_config.hh"
#include "core/tracegen.hh"
#include "core/workload.hh"
#include "uarch/pipeline.hh"

namespace cassandra::core {

/**
 * Orchestrates analysis + simulation for one workload.
 * @deprecated Prefer AnalyzedWorkload::analyze + Simulation.
 */
class System
{
  public:
    explicit System(Workload workload);
    /** Wrap an existing artifact (no analysis will run). */
    explicit System(AnalyzedWorkload::Ptr artifact);

    const Workload &workload() const { return workload_; }

    /** The shared analysis artifact (analyzed on first call). */
    const AnalyzedWorkload::Ptr &artifact();

    /** Algorithm 2 output (computed once, cached). */
    const TraceGenResult &traces();

    /** Dynamic instruction stream of the evaluation input (cached). */
    const uarch::TimingTrace &timingTrace();

    /**
     * Run the timing model under a full configuration. The config's
     * scheme, core parameters and BTU geometry all take effect.
     */
    ExperimentResult run(const SimConfig &config);

    /** Run under a scheme with default core/BTU parameters. */
    ExperimentResult run(uarch::Scheme scheme);
    /** Run with explicit core parameters (default BTU geometry). */
    ExperimentResult run(uarch::Scheme scheme,
                         const uarch::CoreParams &params);

    /** Functional run with output verification (eval input). */
    bool verifyOutput() const;

  private:
    Workload workload_;
    AnalyzedWorkload::Ptr artifact_;
};

} // namespace cassandra::core

#endif // CASSANDRA_CORE_SYSTEM_HH
