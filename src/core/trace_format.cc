#include "core/trace_format.hh"

#include <algorithm>
#include <sstream>

namespace cassandra::core {

namespace {

/** Split a run element into <=255-repetition pattern elements. */
void
appendSplit(std::vector<PatternElement> &out, int32_t offset, uint64_t count)
{
    while (count > 0) {
        uint32_t step = static_cast<uint32_t>(
            std::min<uint64_t>(count, TraceLimits::maxRepetitions));
        out.push_back({offset, step});
        count -= step;
    }
}

/** Length of the longest suffix of a that is a prefix of b. */
size_t
overlapLen(const std::vector<PatternElement> &a,
           const std::vector<PatternElement> &b)
{
    size_t max_len = std::min(a.size(), b.size());
    for (size_t len = max_len; len > 0; len--) {
        if (std::equal(b.begin(), b.begin() + len, a.end() - len))
            return len;
    }
    return 0;
}

/** True if needle occurs as a substring of hay. */
bool
contains(const std::vector<PatternElement> &hay,
         const std::vector<PatternElement> &needle)
{
    if (needle.size() > hay.size())
        return false;
    for (size_t i = 0; i + needle.size() <= hay.size(); i++) {
        if (std::equal(needle.begin(), needle.end(), hay.begin() + i))
            return true;
    }
    return false;
}

/** Position of needle in hay; hay must contain needle. */
size_t
findIn(const std::vector<PatternElement> &hay,
       const std::vector<PatternElement> &needle)
{
    for (size_t i = 0; i + needle.size() <= hay.size(); i++) {
        if (std::equal(needle.begin(), needle.end(), hay.begin() + i))
            return i;
    }
    return hay.size(); // unreachable by contract
}

/**
 * Greedy superstring of the pattern strings (compact pattern-set form,
 * paper §5.2: patterns ACT and CTA stored as ACTA).
 */
std::vector<PatternElement>
mergePatterns(std::vector<std::vector<PatternElement>> strings)
{
    // Drop strings contained in another string.
    std::vector<std::vector<PatternElement>> kept;
    for (size_t i = 0; i < strings.size(); i++) {
        bool redundant = false;
        for (size_t j = 0; j < strings.size() && !redundant; j++) {
            if (i == j)
                continue;
            if (strings[i].size() < strings[j].size() &&
                contains(strings[j], strings[i])) {
                redundant = true;
            } else if (strings[i] == strings[j] && j < i) {
                redundant = true;
            }
        }
        if (!redundant)
            kept.push_back(strings[i]);
    }
    // Greedily merge the pair with the largest overlap.
    while (kept.size() > 1) {
        size_t best_i = 0, best_j = 1, best_ov = 0;
        bool found = false;
        for (size_t i = 0; i < kept.size(); i++) {
            for (size_t j = 0; j < kept.size(); j++) {
                if (i == j)
                    continue;
                size_t ov = overlapLen(kept[i], kept[j]);
                if (ov > best_ov) {
                    best_ov = ov;
                    best_i = i;
                    best_j = j;
                    found = true;
                }
            }
        }
        if (!found) {
            // No overlaps left; concatenate everything.
            std::vector<PatternElement> all;
            for (const auto &s : kept)
                all.insert(all.end(), s.begin(), s.end());
            return all;
        }
        std::vector<PatternElement> merged = kept[best_i];
        merged.insert(merged.end(), kept[best_j].begin() + best_ov,
                      kept[best_j].end());
        if (best_i > best_j)
            std::swap(best_i, best_j);
        kept.erase(kept.begin() + best_j);
        kept.erase(kept.begin() + best_i);
        kept.push_back(merged);
    }
    return kept.empty() ? std::vector<PatternElement>{} : kept[0];
}

} // namespace

BranchTrace
makeSingleTarget(uint64_t branch_pc, uint64_t target_pc)
{
    BranchTrace bt;
    bt.branchPc = branch_pc;
    bt.singleTarget = true;
    bt.singleTargetPc = target_pc;
    return bt;
}

BranchTrace
makeInputDependent(uint64_t branch_pc)
{
    BranchTrace bt;
    bt.branchPc = branch_pc;
    bt.rejection = TraceRejection::InputDependent;
    return bt;
}

BranchTrace
encodeBranchTrace(uint64_t branch_pc, const KmersResult &kmers)
{
    BranchTrace bt;
    bt.branchPc = branch_pc;

    // Distinct symbols of K in first-use order, expanded to split
    // pattern-element strings.
    std::vector<Symbol> distinct;
    for (Symbol s : kmers.seq) {
        if (std::find(distinct.begin(), distinct.end(), s) ==
            distinct.end()) {
            distinct.push_back(s);
        }
    }

    std::vector<std::vector<PatternElement>> pattern_strings;
    int64_t min_off = -(1 << (TraceLimits::offsetBits - 1));
    int64_t max_off = (1 << (TraceLimits::offsetBits - 1)) - 1;
    for (Symbol s : distinct) {
        std::vector<PatternElement> str;
        for (const RunElement &e : kmers.expandSymbol(s)) {
            int64_t delta =
                (static_cast<int64_t>(e.target) -
                 static_cast<int64_t>(branch_pc)) /
                static_cast<int64_t>(ir::instBytes);
            if (delta < min_off || delta > max_off) {
                bt.rejection = TraceRejection::OffsetOverflow;
                return bt;
            }
            appendSplit(str, static_cast<int32_t>(delta), e.count);
        }
        pattern_strings.push_back(std::move(str));
    }

    bt.patternSet = mergePatterns(pattern_strings);
    if (bt.patternSet.size() > TraceLimits::entryElements) {
        bt.rejection = TraceRejection::PatternOverflow;
        bt.patternSet.clear();
        return bt;
    }

    // Lay out trace elements from the RLE'd K.
    for (const auto &te : kmers.traceRle()) {
        // Locate this symbol's (split) pattern string in the merged set.
        std::vector<PatternElement> str;
        uint64_t pattern_counter = 0;
        for (const RunElement &e : kmers.expandSymbol(te.symbol)) {
            int64_t delta =
                (static_cast<int64_t>(e.target) -
                 static_cast<int64_t>(branch_pc)) /
                static_cast<int64_t>(ir::instBytes);
            appendSplit(str, static_cast<int32_t>(delta), e.count);
            pattern_counter += e.count;
        }
        if (pattern_counter > TraceLimits::maxPatternCounter) {
            bt.rejection = TraceRejection::PatternOverflow;
            bt.patternSet.clear();
            bt.elements.clear();
            return bt;
        }
        size_t pos = findIn(bt.patternSet, str);
        uint64_t passes = te.count;
        while (passes > 0) {
            uint16_t step = static_cast<uint16_t>(
                std::min<uint64_t>(passes, TraceLimits::maxTraceCounter));
            TraceElement el;
            el.patternIndex = static_cast<uint8_t>(pos);
            el.patternSize = static_cast<uint8_t>(str.size());
            el.patternCounter = static_cast<uint16_t>(pattern_counter);
            el.traceCounter = step;
            bt.elements.push_back(el);
            passes -= step;
        }
    }

    bt.shortTrace = bt.elements.size() <= TraceLimits::entryElements;
    return bt;
}

size_t
BranchTrace::storageBits() const
{
    if (singleTarget || !hasTrace())
        return 0;
    return patternSet.size() * TraceLimits::patternElementBits +
        elements.size() * TraceLimits::traceElementBits;
}

VanillaTrace
BranchTrace::expand() const
{
    VanillaTrace out;
    auto push = [&](uint64_t target, uint64_t count) {
        if (!out.empty() && out.back().target == target)
            out.back().count += count;
        else
            out.push_back({target, count});
    };
    for (const TraceElement &el : elements) {
        for (uint32_t pass = 0; pass < el.traceCounter; pass++) {
            for (uint8_t i = 0; i < el.patternSize; i++) {
                const PatternElement &pe =
                    patternSet[el.patternIndex + i];
                push(targetOf(pe), pe.repetitions);
            }
        }
    }
    return out;
}

std::string
BranchTrace::toString() const
{
    std::ostringstream os;
    os << "branch 0x" << std::hex << branchPc << std::dec;
    if (singleTarget) {
        os << " single-target -> 0x" << std::hex << singleTargetPc
           << std::dec;
        return os.str();
    }
    if (rejection == TraceRejection::InputDependent)
        return os.str() + " input-dependent (stall)";
    if (rejection != TraceRejection::None)
        return os.str() + " rejected (stall)";
    os << " patterns[" << patternSet.size() << "] trace["
       << elements.size() << "]" << (shortTrace ? " short" : "");
    return os.str();
}

} // namespace cassandra::core
