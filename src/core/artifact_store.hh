/**
 * @file
 * Content-addressed artifact store ("drop box") for multi-process and
 * multi-host shard dispatch.
 *
 * The coordinator/worker protocol of the subprocess executor is
 * already host-agnostic: CASSSM1 manifests plus self-contained CASSAW4
 * snapshots in, CASSCR1 result sets out. What ties it to one machine
 * is the scratch directory whose paths only make sense inside one
 * process tree. The ArtifactStore replaces that scratch directory with
 * a shared drop box:
 *
 *   <root>/artifacts/aw-<workload fp>-v<format>.aw   snapshots
 *   <root>/artifacts/...aw.sum                       checksum sidecars
 *   <root>/tasks/inbox/<task>.sm                     shard manifests
 *   <root>/tasks/claimed/<task>.sm.<agent token>     claimed work
 *   <root>/tasks/outbox/<task>.crs | <task>.err      results / errors
 *   <root>/agents/stop                               agent stop flag
 *
 * Artifacts are *content-addressed*: the key of a snapshot is its
 * workload fingerprint plus the CASSAW container version, so a
 * snapshot uploads once per fingerprint no matter how many sweeps,
 * jobs or coordinators reference it. Every publish is atomic (write a
 * process-unique `.tmp` sibling, rename(2) into place) and carries a
 * checksum sidecar; readers validate the checksum, so a corrupt or
 * partially-copied artifact is rejected (typed ArtifactFormatError),
 * evicted and re-uploaded by the next publishArtifactOnce instead of
 * silently feeding agents garbage.
 *
 * Agents claim work by atomically renaming an inbox manifest into
 * claimed/ — exactly one agent wins a task, with no locks and no
 * server process. Results are published back into outbox/ with the
 * same tmp+rename discipline.
 *
 * All I/O goes through the small ArtifactTransport interface. The
 * LocalDirTransport backend ships here (a shared directory — local
 * disk, NFS, or anything rsync'd); an ssh/object-store backend can
 * slot in later without touching the executor or the agents.
 *
 * GC: gc() removes artifacts that are (a) not referenced by any live
 * manifest in inbox/ or claimed/ and (b) older than a caller-given
 * age, plus claimed tasks and stop-gap files left by dead agents.
 * Refcounts are recomputed from the manifests themselves, so the
 * store needs no side database.
 */

#ifndef CASSANDRA_CORE_ARTIFACT_STORE_HH
#define CASSANDRA_CORE_ARTIFACT_STORE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cassandra::core {

/**
 * Minimal transport the store talks through. Keys are relative,
 * '/'-separated paths under the store root ("artifacts/aw-....aw").
 * publish() must be atomic: a reader never observes a torn object.
 */
class ArtifactTransport
{
  public:
    virtual ~ArtifactTransport() = default;

    /** Human-readable endpoint ("dir:/path/to/box"). */
    virtual std::string endpoint() const = 0;

    virtual bool exists(const std::string &key) const = 0;

    /** Atomically create `key` with `bytes` (overwrites). */
    virtual void publish(const std::string &key,
                         const std::vector<uint8_t> &bytes) = 0;

    /** @throws std::runtime_error when the object is missing. */
    virtual std::vector<uint8_t> fetch(const std::string &key) const = 0;

    virtual void remove(const std::string &key) = 0;

    /**
     * Keys directly under `prefix` (a directory key), without the
     * prefix. Missing prefixes list empty.
     */
    virtual std::vector<std::string>
    list(const std::string &prefix) const = 0;

    /**
     * Atomically move `from` to `to`; false when another party moved
     * it first (the claim race losing is not an error).
     */
    virtual bool rename(const std::string &from,
                        const std::string &to) = 0;

    /** Seconds since epoch of the object's last modification; 0 when
     * missing or unsupported (disables age-based GC for the key). */
    virtual int64_t mtime(const std::string &key) const = 0;
};

/** A shared directory as the drop box (local disk, NFS, ...). */
class LocalDirTransport : public ArtifactTransport
{
  public:
    /** Creates `root` (and parents) when absent. */
    explicit LocalDirTransport(std::string root);

    const std::string &root() const { return root_; }

    std::string endpoint() const override { return "dir:" + root_; }
    bool exists(const std::string &key) const override;
    void publish(const std::string &key,
                 const std::vector<uint8_t> &bytes) override;
    std::vector<uint8_t> fetch(const std::string &key) const override;
    void remove(const std::string &key) override;
    std::vector<std::string>
    list(const std::string &prefix) const override;
    bool rename(const std::string &from, const std::string &to) override;
    int64_t mtime(const std::string &key) const override;

  private:
    std::string root_;
};

/** Content-addressed artifact store over a transport (file comment). */
class ArtifactStore
{
  public:
    /** Observable lifetime counters. */
    struct Stats
    {
        uint64_t artifactUploads = 0; ///< snapshots actually published
        uint64_t artifactReuses = 0;  ///< presence check saved an upload
        uint64_t artifactFetches = 0;
        uint64_t corruptRejected = 0; ///< checksum-failed artifacts evicted
        uint64_t tasksPublished = 0;
        uint64_t tasksClaimed = 0;
        uint64_t resultsPublished = 0;
        uint64_t gcRemoved = 0;
    };

    /** GC outcome (see gc()). */
    struct GcStats
    {
        uint64_t removedArtifacts = 0;
        uint64_t keptReferenced = 0; ///< live manifests pinned these
        uint64_t keptFresh = 0;      ///< younger than the age floor
        uint64_t reclaimedBytes = 0;
        uint64_t staleClaims = 0; ///< dead-agent claims requeued
    };

    explicit ArtifactStore(std::shared_ptr<ArtifactTransport> transport);
    /** Convenience: LocalDirTransport over `dir`. */
    explicit ArtifactStore(const std::string &dir);

    ArtifactTransport &transport() const { return *transport_; }

    // -- content-addressed snapshots ---------------------------------

    /** Store key of a workload snapshot: fingerprint + CASSAW format
     * version ("artifacts/aw-<16 hex>-v<version>.aw"). */
    static std::string artifactKey(uint64_t workload_fingerprint,
                                   uint32_t format_version);

    /**
     * True when `key` exists with a matching checksum sidecar — the
     * presence check publishArtifactOnce uses. A key whose sidecar is
     * missing or stale (torn copy, bit rot) is treated as absent.
     */
    bool hasValidArtifact(const std::string &key) const;

    /**
     * Upload `bytes` under `key` unless a valid copy already exists.
     * Returns true when this call uploaded (counts an upload), false
     * when the presence check saved the transfer (counts a reuse). A
     * corrupt existing copy is evicted and re-uploaded.
     */
    bool publishArtifactOnce(const std::string &key,
                             const std::vector<uint8_t> &bytes);

    /**
     * Fetch + checksum-validate an artifact.
     * @throws ArtifactFormatError when the checksum (or sidecar) does
     *         not match the bytes — the corrupt copy is evicted first,
     *         so the next publisher re-uploads; std::runtime_error
     *         when the key is missing entirely.
     */
    std::vector<uint8_t> fetchArtifact(const std::string &key) const;

    // -- task plumbing (manifests in, results out) -------------------

    /** Publish a shard manifest as tasks/inbox/<task>.sm. */
    void publishTask(const std::string &task,
                     const std::vector<uint8_t> &manifest_bytes);

    /**
     * Claim any inbox task: atomically rename it into claimed/ with
     * `agent_token` appended. Returns the task name, or empty when the
     * inbox is empty (or every candidate was claimed first). Oldest
     * (lexicographically first) task wins, so submission order is
     * roughly FIFO.
     */
    std::string claimTask(const std::string &agent_token);

    /** Claimed-manifest key of a task this agent owns. */
    static std::string claimedKey(const std::string &task,
                                  const std::string &agent_token);

    /** Fetch the manifest bytes of a claimed task. */
    std::vector<uint8_t>
    fetchClaimedTask(const std::string &task,
                     const std::string &agent_token) const;

    /** Publish a CASSCR1 result set for `task` and drop the claim. */
    void publishResult(const std::string &task,
                       const std::string &agent_token,
                       const std::vector<uint8_t> &result_bytes);

    /** Publish an error report for `task` and drop the claim. */
    void publishError(const std::string &task,
                      const std::string &agent_token,
                      const std::string &message);

    /** Task result/error keys the coordinator polls. */
    static std::string resultKey(const std::string &task);
    static std::string errorKey(const std::string &task);

    /**
     * Withdraw a task the coordinator gave up on (timeout): removes
     * the inbox entry when still unclaimed. Late results for the task
     * are ignored by construction (run-unique task names).
     */
    void withdrawTask(const std::string &task);

    /** Raise (or clear) the flag that makes agents exit their poll
     * loop after the current task. */
    void requestAgentStop();
    void clearAgentStop();
    bool agentStopRequested() const;

    // -- GC ----------------------------------------------------------

    /**
     * Remove artifacts not referenced by any manifest in inbox/ or
     * claimed/ and older than `max_age_seconds`, stale outbox entries
     * of the same age, and claimed tasks whose agent pid (parsed from
     * the claim token) is dead — those manifests are requeued into the
     * inbox so their shards are not lost.
     */
    GcStats gc(int64_t max_age_seconds);

    Stats stats() const;

  private:
    std::shared_ptr<ArtifactTransport> transport_;
    std::atomic<uint64_t> artifactUploads_{0};
    std::atomic<uint64_t> artifactReuses_{0};
    // Mutated from const fetch paths — observability, not state.
    mutable std::atomic<uint64_t> artifactFetches_{0};
    mutable std::atomic<uint64_t> corruptRejected_{0};
    std::atomic<uint64_t> tasksPublished_{0};
    std::atomic<uint64_t> tasksClaimed_{0};
    std::atomic<uint64_t> resultsPublished_{0};
    std::atomic<uint64_t> gcRemoved_{0};
};

/**
 * Agent token for task claims: "<processUniqueSuffix>-<sequence>",
 * unique across processes (pid-based where the platform allows) and
 * across agents inside one process.
 */
std::string makeAgentToken();

} // namespace cassandra::core

#endif // CASSANDRA_CORE_ARTIFACT_STORE_HH
