#include "core/cell_executor.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <algorithm>
#include <numeric>

#include "core/byte_io.hh"
#include "core/remote_executor.hh"
#include "core/result_store.hh"
#include "core/serialize.hh"
#include "core/trace_stream.hh"

#if !defined(_WIN32)
#define CASSANDRA_POSIX_SPAWN 1
#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace cassandra::core {

void
runParallel(unsigned threads, size_t work,
            const std::function<void(size_t)> &fn)
{
    if (work == 0)
        return;
    std::atomic<size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto worker = [&] {
        for (;;) {
            size_t i = next.fetch_add(1);
            if (i >= work)
                return;
            {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (first_error)
                    return; // fail fast, keep remaining slots empty
            }
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                return;
            }
        }
    };

    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; t++)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    if (first_error)
        std::rethrow_exception(first_error);
}

// ---------------------------------------------------------------------
// Cost model + shard scheduling
// ---------------------------------------------------------------------

std::vector<uint64_t>
estimateCellCosts(const std::vector<PlannedCell> &cells,
                  const ArtifactMap &artifacts, const ResultStore *store)
{
    std::vector<uint64_t> costs;
    costs.reserve(cells.size());
    for (const PlannedCell &cell : cells) {
        const AnalyzedWorkload::Ptr &artifact =
            artifacts.at(cell.workload);
        uint64_t cost = 0;
        if (store) {
            SimConfig cfg = cell.config;
            cfg.scheme = cell.scheme;
            cost = store->peekCycles(resultStoreKey(
                artifact->workload(), cell.scheme, cfg));
        }
        if (cost == 0)
            cost = artifact->numOps();
        costs.push_back(std::max<uint64_t>(cost, 1));
    }
    return costs;
}

std::vector<std::vector<uint32_t>>
scheduleShards(ShardScheduler scheduler,
               const std::vector<uint64_t> &costs, unsigned shards)
{
    const size_t work = costs.size();
    const unsigned s =
        std::max(1u, std::min<unsigned>(shards, std::max<size_t>(work, 1)));
    std::vector<std::vector<uint32_t>> partition(s);
    if (work == 0)
        return partition;

    if (scheduler == ShardScheduler::Contiguous) {
        const size_t per_shard = work / s;
        const size_t remainder = work % s;
        size_t begin = 0;
        for (unsigned i = 0; i < s; i++) {
            const size_t count = per_shard + (i < remainder ? 1 : 0);
            for (size_t j = begin; j < begin + count; j++)
                partition[i].push_back(static_cast<uint32_t>(j));
            begin += count;
        }
        return partition;
    }

    // LPT: descending cost (stable: equal costs keep index order),
    // each cell onto the currently least-loaded shard (lowest index
    // on ties) — deterministic, and with work >= s every shard gets
    // at least one cell before any shard gets two.
    std::vector<uint32_t> order(work);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                         return costs[a] > costs[b];
                     });
    std::vector<uint64_t> load(s, 0);
    for (uint32_t index : order) {
        unsigned target = 0;
        for (unsigned i = 1; i < s; i++) {
            if (load[i] < load[target])
                target = i;
        }
        partition[target].push_back(index);
        load[target] += costs[index];
    }
    // Ascending indices inside each shard: manifests stay readable
    // and the assignment is independent of the greedy visit order.
    for (std::vector<uint32_t> &shard : partition)
        std::sort(shard.begin(), shard.end());
    return partition;
}

// ---------------------------------------------------------------------
// InProcessExecutor
// ---------------------------------------------------------------------

InProcessExecutor::InProcessExecutor(unsigned threads) : threads_(threads)
{
}

std::vector<CellResult>
InProcessExecutor::execute(const std::vector<PlannedCell> &cells,
                           const ArtifactMap &artifacts)
{
    std::vector<CellResult> results(cells.size());
    runParallel(
        RunnerOptions(threads_).resolveThreads(cells.size()),
        cells.size(), [&](size_t i) {
            const PlannedCell &cell = cells[i];
            const AnalyzedWorkload::Ptr &artifact =
                artifacts.at(cell.workload);
            CellResult &out = results[i];
            // Keyed by the matrix name (not Workload::name) so
            // Experiment::find works with whatever the caller
            // spelled, parameterized entries included.
            out.workload = cell.workload;
            out.suite = artifact->workload().suite;
            out.scheme = cell.scheme;
            out.config = cell.config.name;
            SimConfig cfg = cell.config;
            cfg.scheme = cell.scheme;
            out.result = Simulation(artifact).run(cfg);
        });
    return results;
}

// ---------------------------------------------------------------------
// Shard manifests (CASSSM1)
// ---------------------------------------------------------------------

namespace {

constexpr char manifestMagic[8] = {'C', 'A', 'S', 'S',
                                   'S', 'M', '1', '\n'};
constexpr uint32_t manifestVersion = 1;

void
packCacheParams(ByteWriter &w, const uarch::CacheParams &c)
{
    w.u32(c.sizeBytes);
    w.u32(c.lineBytes);
    w.u32(c.ways);
    w.u32(c.latency);
}

void
unpackCacheParams(ByteReader &r, uarch::CacheParams &c)
{
    c.sizeBytes = r.u32();
    c.lineBytes = r.u32();
    c.ways = r.u32();
    c.latency = r.u32();
}

/**
 * SimConfig over the wire, field by field: a worker must simulate
 * with exactly the coordinator's parameters or the merged report
 * would silently diverge from the in-process run.
 */
void
packSimConfig(ByteWriter &w, const SimConfig &cfg)
{
    w.str(cfg.name);
    const uarch::CoreParams &c = cfg.core;
    w.u32(c.fetchWidth);
    w.u32(c.commitWidth);
    w.u32(c.issueWidth);
    w.u32(c.robSize);
    w.u32(c.iqSize);
    w.u32(c.lqSize);
    w.u32(c.sqSize);
    w.u32(c.intRegs);
    w.u32(c.frontendDepth);
    w.u32(c.decodeRedirect);
    w.u32(c.redirectPenalty);
    w.u32(c.numAlu);
    w.u32(c.numMul);
    w.u32(c.numLsu);
    w.u32(c.aluLatency);
    w.u32(c.mulLatency);
    w.u32(c.storeLatency);
    packCacheParams(w, c.l1i);
    packCacheParams(w, c.l1d);
    packCacheParams(w, c.l2);
    packCacheParams(w, c.l3);
    w.u32(c.memLatency);
    w.u64(c.btuFlushPeriod);
    w.u64(cfg.btu.sets);
    w.u64(cfg.btu.ways);
    w.u32(cfg.btu.fillLatency);
    w.u8(cfg.traceMode == TraceMode::Stream ? 1 : 0);
    w.u8(cfg.traceCompression == TraceCompression::None ? 0 : 1);
}

SimConfig
unpackSimConfig(ByteReader &r)
{
    SimConfig cfg;
    cfg.name = r.str();
    uarch::CoreParams &c = cfg.core;
    c.fetchWidth = r.u32();
    c.commitWidth = r.u32();
    c.issueWidth = r.u32();
    c.robSize = r.u32();
    c.iqSize = r.u32();
    c.lqSize = r.u32();
    c.sqSize = r.u32();
    c.intRegs = r.u32();
    c.frontendDepth = r.u32();
    c.decodeRedirect = r.u32();
    c.redirectPenalty = r.u32();
    c.numAlu = r.u32();
    c.numMul = r.u32();
    c.numLsu = r.u32();
    c.aluLatency = r.u32();
    c.mulLatency = r.u32();
    c.storeLatency = r.u32();
    unpackCacheParams(r, c.l1i);
    unpackCacheParams(r, c.l1d);
    unpackCacheParams(r, c.l2);
    unpackCacheParams(r, c.l3);
    c.memLatency = r.u32();
    c.btuFlushPeriod = r.u64();
    cfg.btu.sets = static_cast<size_t>(r.u64());
    cfg.btu.ways = static_cast<size_t>(r.u64());
    cfg.btu.fillLatency = r.u32();
    cfg.traceMode = r.u8() ? TraceMode::Stream : TraceMode::Whole;
    cfg.traceCompression =
        r.u8() ? TraceCompression::Delta : TraceCompression::None;
    return cfg;
}

} // namespace

std::vector<uint8_t>
packShardManifest(const ShardManifest &manifest)
{
    if (manifest.indices.size() != manifest.cells.size())
        throw std::invalid_argument(
            "shard manifest indices/cells size mismatch");
    ByteWriter w;
    for (char c : manifestMagic)
        w.u8(static_cast<uint8_t>(c));
    w.u32(manifestVersion);
    w.u32(manifest.shardIndex);
    w.u32(manifest.workerThreads);
    w.str(manifest.streamDir);
    w.u32(static_cast<uint32_t>(manifest.artifacts.size()));
    for (const auto &[name, path] : manifest.artifacts) {
        w.str(name);
        w.str(path);
    }
    w.u32(static_cast<uint32_t>(manifest.cells.size()));
    for (size_t i = 0; i < manifest.cells.size(); i++) {
        const PlannedCell &cell = manifest.cells[i];
        w.u32(manifest.indices[i]);
        w.str(cell.workload);
        w.str(uarch::schemeName(cell.scheme));
        packSimConfig(w, cell.config);
    }
    return w.take();
}

ShardManifest
unpackShardManifest(const std::vector<uint8_t> &bytes)
{
    ByteReader r(bytes);
    uint8_t magic[8];
    for (uint8_t &b : magic)
        b = r.u8();
    if (std::memcmp(magic, manifestMagic, 6) != 0)
        throw ArtifactFormatError("not a shard manifest (bad magic)");
    if (std::memcmp(magic, manifestMagic, 8) != 0)
        throw ArtifactFormatError(
            "shard manifest has an unknown container revision");
    const uint32_t version = r.u32();
    if (version != manifestVersion)
        throw ArtifactFormatError(
            "shard manifest has format version " +
            std::to_string(version) + ", expected " +
            std::to_string(manifestVersion));

    ShardManifest m;
    m.shardIndex = r.u32();
    m.workerThreads = r.u32();
    m.streamDir = r.str();
    const uint32_t num_artifacts = r.u32();
    for (uint32_t i = 0; i < num_artifacts; i++) {
        std::string name = r.str();
        std::string path = r.str();
        m.artifacts.emplace_back(std::move(name), std::move(path));
    }
    const uint32_t num_cells = r.u32();
    for (uint32_t i = 0; i < num_cells; i++) {
        m.indices.push_back(r.u32());
        PlannedCell cell;
        cell.workload = r.str();
        cell.scheme = uarch::schemeFromName(r.str());
        cell.config = unpackSimConfig(r);
        m.cells.push_back(std::move(cell));
    }
    if (!r.done())
        throw std::invalid_argument("trailing bytes in shard manifest");
    return m;
}

void
saveShardManifest(const ShardManifest &manifest, const std::string &path)
{
    writeFileBytes(path, packShardManifest(manifest));
}

ShardManifest
loadShardManifest(const std::string &path)
{
    return unpackShardManifest(readFileBytes(path, "shard manifest"));
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

int
runShardWorker(const std::string &manifest_path,
               const std::string &out_path,
               const AnalysisCache::Resolver &resolver, std::ostream &err)
{
    try {
        const ShardManifest manifest = loadShardManifest(manifest_path);
        // Fault-injection hook for the crashed-worker retry tests: a
        // matching shard index dies before doing any work.
        if (const char *crash =
                std::getenv("CASSANDRA_TEST_WORKER_CRASH")) {
            if (std::to_string(manifest.shardIndex) == crash) {
                err << "worker shard " << manifest.shardIndex
                    << ": injected crash (CASSANDRA_TEST_WORKER_CRASH)"
                    << std::endl;
                return 42;
            }
        }
        ArtifactMap artifacts;
        for (const auto &[name, path] : manifest.artifacts)
            artifacts.emplace(name,
                              loadAnalyzedWorkload(path, resolver,
                                                   manifest.streamDir));
        InProcessExecutor executor(manifest.workerThreads);
        std::vector<CellResult> results =
            executor.execute(manifest.cells, artifacts);
        std::vector<IndexedCellResult> indexed;
        indexed.reserve(results.size());
        for (size_t i = 0; i < results.size(); i++)
            indexed.push_back(IndexedCellResult{manifest.indices[i],
                                                std::move(results[i])});
        saveCellResults(indexed, out_path);
        return 0;
    } catch (const std::exception &e) {
        err << "worker failed: " << e.what() << std::endl;
        return 1;
    }
}

// ---------------------------------------------------------------------
// SubprocessShardExecutor
// ---------------------------------------------------------------------

WorkerError::WorkerError(unsigned shard, const std::string &detail,
                         std::string stderr_text)
    : std::runtime_error(
          "shard " + std::to_string(shard) + " failed: " + detail +
          (stderr_text.empty() ? std::string()
                               : "\n--- worker stderr ---\n" +
                                     stderr_text)),
      shard_(shard), stderrText_(std::move(stderr_text))
{
}

SubprocessShardExecutor::SubprocessShardExecutor(Options options)
    : options_(std::move(options))
{
    if (options_.workerBinary.empty())
        throw std::invalid_argument(
            "subprocess execution needs a worker binary (set "
            "RunnerOptions::workerBinary or \"execution\": "
            "{\"worker_binary\": ...})");
}

namespace {

/**
 * Scratch snapshot file stem for a workload: the sanitized name plus
 * the workload fingerprint in hex. Like traceStreamPath, the
 * fingerprint keeps distinct workloads whose names sanitize to the
 * same string ("synthetic/aes/25" vs "synthetic_aes_25") from
 * silently clobbering each other's snapshots.
 */
std::string
scratchFileName(const std::string &name, const Workload &workload)
{
    std::string file = name;
    for (char &c : file) {
        if (c == '/' || c == '\\')
            c = '_';
    }
    char fp[24];
    std::snprintf(fp, sizeof(fp), "-%016llx",
                  static_cast<unsigned long long>(
                      workloadFingerprint(workload)));
    return file + fp;
}

/** Bounded tail of a worker's captured stderr file. */
std::string
stderrTail(const std::string &path)
{
    constexpr size_t maxBytes = 8192;
    std::ifstream file(path, std::ios::binary);
    if (!file)
        return "";
    file.seekg(0, std::ios::end);
    const std::streamoff len = file.tellg();
    const std::streamoff start =
        len > static_cast<std::streamoff>(maxBytes)
            ? len - static_cast<std::streamoff>(maxBytes)
            : 0;
    file.seekg(start);
    std::string text((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
    if (start > 0)
        text = "..." + text;
    while (!text.empty() && text.back() == '\n')
        text.pop_back();
    return text;
}

/**
 * A fresh scratch directory unique across processes and calls — a
 * subdirectory of `base` (or of the temp directory) suffixed with the
 * process-unique token, so two coordinators configured with the same
 * scratch directory never share or unlink each other's files.
 */
std::string
makeScratchDir(const std::string &base)
{
    static std::atomic<uint64_t> sequence{0};
    std::string root = base;
    if (root.empty()) {
        const char *tmp = std::getenv("TMPDIR");
        root = (tmp && *tmp) ? tmp : "/tmp";
    }
    // A coordinator that crashed (or was SIGKILLed) kept its scratch
    // for debugging but can never delete it; reclaim any sibling
    // whose owning pid is gone before adding our own.
    sweepStaleProcessDirs(root, "cassandra-shards-");
    root += "/cassandra-shards-" + processUniqueSuffix() + "-" +
        std::to_string(sequence.fetch_add(1));
    ensureDirectories(root);
    return root;
}

#if defined(CASSANDRA_POSIX_SPAWN)

struct ShardProcess
{
    unsigned shard = 0;
    pid_t pid = -1;
    std::vector<uint32_t> indices; ///< global cell indices (sorted)
    std::string outPath;
    std::string stderrPath;
    bool reaped = false; ///< waitpid collected the child
    bool failed = false;
    std::string detail; ///< failure description (exit status, parse)
};

/** fork/exec one worker with stderr captured to a file. */
pid_t
spawnWorker(const std::string &binary,
            const std::vector<std::string> &args,
            const std::string &stderr_path)
{
    std::vector<char *> argv;
    argv.push_back(const_cast<char *>(binary.c_str()));
    for (const std::string &arg : args)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = fork();
    if (pid < 0)
        throw std::runtime_error("cannot fork shard worker");
    if (pid == 0) {
        // Child: only async-signal-safe calls until execv.
        int fd = open(stderr_path.c_str(),
                      O_WRONLY | O_CREAT | O_TRUNC, 0600);
        if (fd >= 0) {
            dup2(fd, 2);
            if (fd != 2)
                close(fd);
        }
        execv(binary.c_str(), argv.data());
        // exec failed: 127 like the shell, reason on the captured fd.
        const char msg[] = "cannot exec worker binary\n";
        ssize_t ignored = write(2, msg, sizeof(msg) - 1);
        (void)ignored;
        _exit(127);
    }
    return pid;
}

/** waitpid + decode the exit status into a human-readable detail. */
bool
waitWorker(ShardProcess &proc)
{
    int status = 0;
    for (;;) {
        const pid_t r = waitpid(proc.pid, &status, 0);
        if (r == proc.pid)
            break;
        if (r < 0 && errno == EINTR)
            continue;
        proc.detail = "waitpid failed";
        return false;
    }
    proc.reaped = true;
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0)
        return true;
    if (WIFEXITED(status))
        proc.detail =
            "worker exited with status " +
            std::to_string(WEXITSTATUS(status));
    else if (WIFSIGNALED(status))
        proc.detail = "worker killed by signal " +
            std::to_string(WTERMSIG(status));
    else
        proc.detail = "worker ended abnormally";
    return false;
}

#endif // CASSANDRA_POSIX_SPAWN

} // namespace

std::vector<CellResult>
SubprocessShardExecutor::execute(const std::vector<PlannedCell> &cells,
                                 const ArtifactMap &artifacts)
{
#if !defined(CASSANDRA_POSIX_SPAWN)
    (void)cells;
    (void)artifacts;
    throw std::runtime_error(
        "subprocess shard execution is not supported on this platform");
#else
    if (cells.empty())
        return {};

    RunnerOptions base(options_.threads);
    base.shards = options_.shards;
    const unsigned shards = base.resolveShards(cells.size());
    const unsigned worker_threads =
        base.resolveThreads(cells.size(), shards);

    const std::string scratch = makeScratchDir(options_.scratchDir);
    std::vector<ShardProcess> procs;
    // Sweep the whole process-unique scratch directory (flat, we
    // created it) after a successful run: a killed worker leaves
    // behind rehydrated trace streams its destructors never deleted,
    // so per-file tracking on the coordinator side would leak them.
    // A failed run keeps the directory — manifests and captured
    // worker stderr are the debugging evidence.
    auto cleanup = [&]() {
        if (DIR *dir = opendir(scratch.c_str())) {
            while (struct dirent *entry = readdir(dir)) {
                const std::string name = entry->d_name;
                if (name != "." && name != "..")
                    std::remove((scratch + "/" + name).c_str());
            }
            closedir(dir);
        }
        rmdir(scratch.c_str());
    };
    // On any escape path, no child may outlive its scratch files:
    // kill and reap every worker not already collected before
    // cleanup() unlinks what they are reading.
    auto reap_all = [&]() {
        for (ShardProcess &proc : procs) {
            if (proc.pid <= 0 || proc.reaped)
                continue;
            kill(proc.pid, SIGKILL);
            int status = 0;
            while (waitpid(proc.pid, &status, 0) < 0 &&
                   errno == EINTR) {
            }
            proc.reaped = true;
        }
    };

    try {
        // Ship each distinct workload once: one .aw snapshot serves
        // every shard that touches the workload.
        std::map<std::string, std::string> snapshot_paths;
        for (const PlannedCell &cell : cells) {
            if (snapshot_paths.count(cell.workload))
                continue;
            const AnalyzedWorkload::Ptr &artifact =
                artifacts.at(cell.workload);
            const std::string path = scratch + "/" +
                scratchFileName(cell.workload, artifact->workload()) +
                ".aw";
            saveAnalyzedWorkload(*artifact, path, cell.workload);
            snapshot_paths.emplace(cell.workload, path);
        }

        // Partition by the configured scheduler (contiguous blocks or
        // LPT over the cost model); merging by global index makes the
        // partition (and completion order) invisible in the result.
        const std::vector<uint64_t> costs = estimateCellCosts(
            cells, artifacts, options_.costSource.get());
        const std::vector<std::vector<uint32_t>> partition =
            scheduleShards(options_.scheduler, costs, shards);
        schedule_ = ScheduleSummary{};
        schedule_.valid = true;
        schedule_.scheduler = options_.scheduler;
        for (const std::vector<uint32_t> &assigned : partition) {
            uint64_t shard_cost = 0;
            for (uint32_t i : assigned)
                shard_cost += costs[i];
            schedule_.shardCosts.push_back(shard_cost);
        }

        for (unsigned s = 0; s < shards; s++) {
            ShardProcess proc;
            proc.shard = s;
            proc.indices = partition[s];

            ShardManifest manifest;
            manifest.shardIndex = s;
            manifest.workerThreads = worker_threads;
            manifest.streamDir = scratch;
            for (uint32_t i : proc.indices) {
                manifest.indices.push_back(i);
                manifest.cells.push_back(cells[i]);
            }
            for (const auto &[name, path] : snapshot_paths) {
                bool used = false;
                for (const PlannedCell &cell : manifest.cells)
                    used = used || cell.workload == name;
                if (used)
                    manifest.artifacts.emplace_back(name, path);
            }

            const std::string stem =
                scratch + "/shard-" + std::to_string(s);
            const std::string manifest_path = stem + ".sm";
            proc.outPath = stem + ".crs";
            proc.stderrPath = stem + ".stderr";
            saveShardManifest(manifest, manifest_path);

            proc.pid = spawnWorker(
                options_.workerBinary,
                {"--worker", "--manifest=" + manifest_path,
                 "--out=" + proc.outPath},
                proc.stderrPath);
            stats_.shardsLaunched++;
            procs.push_back(std::move(proc));
        }

        // Merge by global index: any shard partition, any completion
        // order, identical result vector.
        std::vector<CellResult> results(cells.size());
        std::vector<char> have(cells.size(), 0);
        for (ShardProcess &proc : procs) {
            proc.failed = !waitWorker(proc);
            if (proc.failed)
                continue;
            try {
                std::vector<IndexedCellResult> partial =
                    loadCellResults(proc.outPath);
                if (partial.size() != proc.indices.size())
                    throw std::invalid_argument(
                        "shard returned " +
                        std::to_string(partial.size()) +
                        " cells, expected " +
                        std::to_string(proc.indices.size()));
                for (IndexedCellResult &entry : partial) {
                    if (!std::binary_search(proc.indices.begin(),
                                            proc.indices.end(),
                                            entry.index) ||
                        have[entry.index])
                        throw std::invalid_argument(
                            "shard returned cell index " +
                            std::to_string(entry.index) +
                            " outside its assignment");
                    results[entry.index] = std::move(entry.cell);
                    have[entry.index] = 1;
                }
            } catch (const std::exception &e) {
                proc.failed = true;
                proc.detail = e.what();
            }
        }

        // Crashed shards: one in-process retry before the run fails.
        for (const ShardProcess &proc : procs) {
            if (!proc.failed)
                continue;
            stats_.shardsFailed++;
            const std::string stderr_text = stderrTail(proc.stderrPath);
            if (!options_.retryInProcess)
                throw WorkerError(proc.shard, proc.detail, stderr_text);
            std::fprintf(stderr,
                         "shard %u: %s; retrying its %zu cells "
                         "in-process\n",
                         proc.shard, proc.detail.c_str(),
                         proc.indices.size());
            try {
                std::vector<PlannedCell> retry_cells;
                retry_cells.reserve(proc.indices.size());
                for (uint32_t i : proc.indices)
                    retry_cells.push_back(cells[i]);
                // The other shards are done by the time a retry
                // runs, so it gets the full coordinator budget, not
                // the per-shard cap.
                std::vector<CellResult> retried =
                    InProcessExecutor(options_.threads)
                        .execute(retry_cells, artifacts);
                for (size_t i = 0; i < retried.size(); i++) {
                    results[proc.indices[i]] = std::move(retried[i]);
                    have[proc.indices[i]] = 1;
                }
                stats_.cellsRetried += proc.indices.size();
            } catch (const std::exception &e) {
                throw WorkerError(proc.shard,
                                  proc.detail +
                                      "; in-process retry failed: " +
                                      e.what(),
                                  stderr_text);
            }
        }

        for (size_t i = 0; i < cells.size(); i++) {
            if (!have[i])
                throw std::logic_error(
                    "shard merge left cell " + std::to_string(i) +
                    " unfilled");
        }
        cleanup();
        return results;
    } catch (...) {
        // Keep the scratch directory: its manifests and captured
        // worker stderr are what a failed run gets debugged from.
        reap_all();
        std::fprintf(stderr,
                     "shard run failed; keeping scratch directory %s "
                     "for debugging\n",
                     scratch.c_str());
        throw;
    }
#endif // CASSANDRA_POSIX_SPAWN
}

std::shared_ptr<CellExecutor>
makeCellExecutor(const RunnerOptions &options,
                 std::shared_ptr<const ResultStore> costSource)
{
    if (options.execution == ExecutionMode::Subprocess) {
        SubprocessShardExecutor::Options opts;
        opts.shards = options.shards;
        opts.workerBinary = options.workerBinary;
        opts.threads = options.threads;
        opts.scratchDir = options.scratchDir;
        opts.scheduler = options.scheduler;
        opts.costSource = std::move(costSource);
        return std::make_shared<SubprocessShardExecutor>(opts);
    }
    if (options.execution == ExecutionMode::Remote) {
        RemoteShardExecutor::Options opts;
        opts.dropboxDir = options.dropboxDir;
        opts.shards = options.shards;
        opts.threads = options.threads;
        opts.agents = options.agents;
        opts.agentBinary = options.workerBinary;
        opts.taskTimeoutMs = options.taskTimeoutMs;
        opts.scheduler = options.scheduler;
        opts.costSource = std::move(costSource);
        return std::make_shared<RemoteShardExecutor>(opts);
    }
    return std::make_shared<InProcessExecutor>(options.threads);
}

} // namespace cassandra::core
