#include "core/experiment.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>

namespace cassandra::core {

const CellResult *
Experiment::find(const std::string &workload, uarch::Scheme scheme,
                 const std::string &config) const
{
    for (const CellResult &c : cells) {
        if (c.workload == workload && c.scheme == scheme &&
            (config.empty() || c.config == config))
            return &c;
    }
    return nullptr;
}

ExperimentRunner::ExperimentRunner(WorkloadResolver resolver,
                                   RunnerOptions options)
    : resolver_(std::move(resolver)), options_(options)
{
    if (!resolver_)
        throw std::invalid_argument(
            "ExperimentRunner needs a workload resolver");
}

Experiment
ExperimentRunner::run(const ExperimentMatrix &matrix) const
{
    // Flatten the cross product up front so workers index into a
    // fixed slot array: result order never depends on scheduling.
    const std::vector<SimConfig> default_configs{SimConfig{}};
    const std::vector<SimConfig> &configs =
        matrix.configs.empty() ? default_configs : matrix.configs;

    struct Cell
    {
        const std::string *workload;
        uarch::Scheme scheme;
        const SimConfig *config;
    };
    std::vector<Cell> cells;
    cells.reserve(matrix.cellCount());
    for (const std::string &w : matrix.workloads)
        for (uarch::Scheme s : matrix.schemes)
            for (const SimConfig &c : configs)
                cells.push_back(Cell{&w, s, &c});

    Experiment exp;
    exp.cells.resize(cells.size());

    unsigned threads = options_.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<unsigned>(
        threads, std::max<size_t>(cells.size(), 1));

    std::atomic<size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto worker = [&] {
        for (;;) {
            size_t i = next.fetch_add(1);
            if (i >= cells.size())
                return;
            {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (first_error)
                    return; // fail fast, keep remaining cells empty
            }
            try {
                const Cell &cell = cells[i];
                Workload w = resolver_(*cell.workload);
                CellResult &out = exp.cells[i];
                // Keyed by the matrix name (not Workload::name) so
                // Experiment::find works with whatever the caller
                // spelled, parameterized entries included.
                out.workload = *cell.workload;
                out.suite = w.suite;
                out.scheme = cell.scheme;
                out.config = cell.config->name;
                SimConfig cfg = *cell.config;
                cfg.scheme = cell.scheme;
                System sys(std::move(w));
                out.result = sys.run(cfg);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                return;
            }
        }
    };

    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; t++)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    if (first_error)
        std::rethrow_exception(first_error);
    return exp;
}

// ---------------------------------------------------------------------
// Reporters
// ---------------------------------------------------------------------

namespace {

/** JSON string escaping (control chars, quotes, backslash). */
std::string
jsonEscaped(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

/** One key/value emitter keeping track of comma placement. */
class JsonObject
{
  public:
    JsonObject(std::ostream &os, int indent) : os_(os), indent_(indent) {}

    void
    field(const char *key, uint64_t v)
    {
        prefix(key);
        os_ << v;
    }

    void
    field(const char *key, double v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6f", v);
        prefix(key);
        os_ << buf;
    }

    void
    field(const char *key, const std::string &v)
    {
        prefix(key);
        os_ << '"' << jsonEscaped(v) << '"';
    }

    std::ostream &
    object(const char *key)
    {
        prefix(key);
        return os_;
    }

  private:
    void
    prefix(const char *key)
    {
        if (!first_)
            os_ << ",";
        first_ = false;
        os_ << "\n";
        for (int i = 0; i < indent_; i++)
            os_ << ' ';
        os_ << '"' << key << "\": ";
    }

    std::ostream &os_;
    int indent_;
    bool first_ = true;
};

void
writeCacheLevel(JsonObject &parent, const char *key, uint64_t accesses,
                uint64_t misses)
{
    std::ostream &os = parent.object(key);
    os << "{\"accesses\": " << accesses << ", \"misses\": " << misses
       << "}";
}

} // namespace

void
TableReporter::write(const Experiment &exp, std::ostream &os) const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-28s %-10s %-18s %-14s %12s %12s %6s %10s %10s\n",
                  "workload", "suite", "scheme", "config", "cycles",
                  "insts", "ipc", "btu_hits", "mispred");
    os << buf;
    os << std::string(127, '-') << "\n";
    for (const CellResult &c : exp.cells) {
        std::snprintf(
            buf, sizeof(buf),
            "%-28s %-10s %-18s %-14s %12llu %12llu %6.2f %10llu %10llu\n",
            c.workload.c_str(), c.suite.c_str(),
            uarch::schemeName(c.scheme), c.config.c_str(),
            static_cast<unsigned long long>(c.result.stats.cycles),
            static_cast<unsigned long long>(c.result.stats.instructions),
            c.result.stats.ipc(),
            static_cast<unsigned long long>(c.result.btu.hits +
                                            c.result.btu.singleTargetHits),
            static_cast<unsigned long long>(
                c.result.stats.condMispredicts));
        os << buf;
    }
}

void
JsonReporter::write(const Experiment &exp, std::ostream &os) const
{
    os << "{\n  \"results\": [";
    bool first_cell = true;
    for (const CellResult &c : exp.cells) {
        if (!first_cell)
            os << ",";
        first_cell = false;
        os << "\n    {";
        JsonObject o(os, 6);
        o.field("workload", c.workload);
        o.field("suite", c.suite);
        o.field("scheme", std::string(uarch::schemeName(c.scheme)));
        o.field("config", c.config);
        const uarch::CoreStats &s = c.result.stats;
        o.field("cycles", s.cycles);
        o.field("instructions", s.instructions);
        o.field("ipc", s.ipc());
        {
            std::ostream &core_os = o.object("core");
            core_os << "{";
            JsonObject co(os, 8);
            co.field("branches", s.branches);
            co.field("crypto_branches", s.cryptoBranches);
            co.field("cond_mispredicts", s.condMispredicts);
            co.field("indirect_mispredicts", s.indirectMispredicts);
            co.field("return_mispredicts", s.returnMispredicts);
            co.field("decode_redirects", s.decodeRedirects);
            co.field("integrity_stalls", s.integrityStalls);
            co.field("resolve_stalls", s.resolveStalls);
            co.field("btu_fill_stalls", s.btuFillStalls);
            co.field("btu_window_stalls", s.btuWindowStalls);
            co.field("btu_flushes", s.btuFlushes);
            co.field("btu_mismatches", s.btuMismatches);
            co.field("loads", s.loads);
            co.field("stores", s.stores);
            co.field("stl_forwards", s.stlForwards);
            co.field("scheme_load_delays", s.schemeLoadDelays);
            co.field("prospect_blocks", s.prospectBlocks);
            co.field("icache_miss_bubbles", s.icacheMissBubbles);
            core_os << "\n      }";
        }
        {
            const btu::BtuStats &b = c.result.btu;
            std::ostream &btu_os = o.object("btu");
            btu_os << "{";
            JsonObject bo(os, 8);
            bo.field("lookups", b.lookups);
            bo.field("single_target_hits", b.singleTargetHits);
            bo.field("hits", b.hits);
            bo.field("misses", b.misses);
            bo.field("evictions", b.evictions);
            bo.field("checkpoint_restores", b.checkpointRestores);
            bo.field("stall_resolve", b.stallResolve);
            bo.field("window_stalls", b.windowStalls);
            bo.field("prefetches", b.prefetches);
            bo.field("flushes", b.flushes);
            bo.field("commits", b.commits);
            bo.field("squash_rewinds", b.squashRewinds);
            btu_os << "\n      }";
        }
        {
            const uarch::BpuStats &b = c.result.bpu;
            std::ostream &bpu_os = o.object("bpu");
            bpu_os << "{";
            JsonObject bo(os, 8);
            bo.field("cond_lookups", b.condLookups);
            bo.field("cond_mispredicts", b.condMispredicts);
            bo.field("loop_overrides", b.loopOverrides);
            bo.field("btb_lookups", b.btbLookups);
            bo.field("btb_misses", b.btbMisses);
            bo.field("indirect_mispredicts", b.indirectMispredicts);
            bo.field("rsb_pushes", b.rsbPushes);
            bo.field("rsb_pops", b.rsbPops);
            bo.field("return_mispredicts", b.returnMispredicts);
            bo.field("updates", b.updates);
            bpu_os << "\n      }";
        }
        {
            const CacheActivity &ca = c.result.caches;
            std::ostream &cache_os = o.object("caches");
            cache_os << "{";
            JsonObject co(os, 8);
            writeCacheLevel(co, "l1i", ca.l1iAccesses, ca.l1iMisses);
            writeCacheLevel(co, "l1d", ca.l1dAccesses, ca.l1dMisses);
            writeCacheLevel(co, "l2", ca.l2Accesses, ca.l2Misses);
            writeCacheLevel(co, "l3", ca.l3Accesses, ca.l3Misses);
            cache_os << "\n      }";
        }
        os << "\n    }";
    }
    os << "\n  ]\n}\n";
}

void
CsvReporter::write(const Experiment &exp, std::ostream &os) const
{
    os << "workload,suite,scheme,config,cycles,instructions,ipc,"
          "branches,crypto_branches,cond_mispredicts,resolve_stalls,"
          "btu_lookups,btu_hits,btu_misses,btu_evictions,"
          "l1i_accesses,l1i_misses,l1d_accesses,l1d_misses,"
          "l2_accesses,l2_misses,l3_accesses,l3_misses\n";
    for (const CellResult &c : exp.cells) {
        // Commas inside names (none today) would corrupt rows; quote
        // defensively when present.
        auto cell = [](const std::string &s) {
            if (s.find(',') == std::string::npos &&
                s.find('"') == std::string::npos)
                return s;
            std::string quoted = "\"";
            for (char ch : s) {
                if (ch == '"')
                    quoted += '"';
                quoted += ch;
            }
            quoted += '"';
            return quoted;
        };
        const uarch::CoreStats &s = c.result.stats;
        const btu::BtuStats &b = c.result.btu;
        const CacheActivity &ca = c.result.caches;
        char ipc_buf[32];
        std::snprintf(ipc_buf, sizeof(ipc_buf), "%.6f", s.ipc());
        os << cell(c.workload) << ',' << cell(c.suite) << ','
           << uarch::schemeName(c.scheme) << ',' << cell(c.config) << ','
           << s.cycles << ',' << s.instructions << ',' << ipc_buf << ','
           << s.branches << ',' << s.cryptoBranches << ','
           << s.condMispredicts << ',' << s.resolveStalls << ','
           << b.lookups << ',' << b.hits + b.singleTargetHits << ','
           << b.misses << ',' << b.evictions << ',' << ca.l1iAccesses
           << ',' << ca.l1iMisses << ',' << ca.l1dAccesses << ','
           << ca.l1dMisses << ',' << ca.l2Accesses << ',' << ca.l2Misses
           << ',' << ca.l3Accesses << ',' << ca.l3Misses << "\n";
    }
}

std::unique_ptr<Reporter>
makeReporter(const std::string &format)
{
    if (format == "table")
        return std::make_unique<TableReporter>();
    if (format == "json")
        return std::make_unique<JsonReporter>();
    if (format == "csv")
        return std::make_unique<CsvReporter>();
    throw std::invalid_argument("unknown report format \"" + format +
                                "\" (expected table, json or csv)");
}

} // namespace cassandra::core
