#include "core/experiment.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "core/analysis_pipeline.hh"
#include "core/cell_executor.hh"
#include "core/result_store.hh"
#include "core/trace_stream.hh"

namespace cassandra::core {

const CellResult *
Experiment::find(const std::string &workload, uarch::Scheme scheme,
                 const std::string &config) const
{
    for (const CellResult &c : cells) {
        if (c.workload == workload && c.scheme == scheme &&
            (config.empty() || c.config == config))
            return &c;
    }
    return nullptr;
}

const char *
executionModeName(ExecutionMode mode)
{
    switch (mode) {
      case ExecutionMode::Subprocess:
        return "subprocess";
      case ExecutionMode::Remote:
        return "remote";
      default:
        return "inprocess";
    }
}

ExecutionMode
executionModeFromName(const std::string &name)
{
    if (name == "inprocess" || name == "in-process" ||
        name == "threads")
        return ExecutionMode::InProcess;
    if (name == "subprocess")
        return ExecutionMode::Subprocess;
    if (name == "remote")
        return ExecutionMode::Remote;
    throw std::invalid_argument(
        "unknown execution mode \"" + name +
        "\" (expected inprocess, subprocess or remote)");
}

const char *
cacheModeName(CacheMode mode)
{
    switch (mode) {
      case CacheMode::On:
        return "on";
      case CacheMode::Readonly:
        return "readonly";
      default:
        return "off";
    }
}

CacheMode
cacheModeFromName(const std::string &name)
{
    if (name == "off")
        return CacheMode::Off;
    if (name == "on")
        return CacheMode::On;
    if (name == "readonly" || name == "read-only")
        return CacheMode::Readonly;
    throw std::invalid_argument(
        "unknown cache mode \"" + name +
        "\" (expected off, on or readonly)");
}

const char *
shardSchedulerName(ShardScheduler scheduler)
{
    return scheduler == ShardScheduler::Lpt ? "lpt" : "contiguous";
}

ShardScheduler
shardSchedulerFromName(const std::string &name)
{
    if (name == "contiguous")
        return ShardScheduler::Contiguous;
    if (name == "lpt")
        return ShardScheduler::Lpt;
    throw std::invalid_argument(
        "unknown shard scheduler \"" + name +
        "\" (expected contiguous or lpt)");
}

unsigned
RunnerOptions::resolveThreads(size_t work) const
{
    unsigned n = threads;
    if (n == 0)
        n = std::max(1u, std::thread::hardware_concurrency());
    return std::min<unsigned>(n, std::max<size_t>(work, 1));
}

unsigned
RunnerOptions::resolveThreads(size_t work, unsigned shard_count) const
{
    // The documented cap: an even split of the machine-wide budget
    // (shards x threads never exceeds resolveThreads(work)), clamped
    // to the largest per-shard cell count so no worker idles threads.
    const unsigned s = std::max(1u, shard_count);
    const unsigned budget = std::max(1u, resolveThreads(work) / s);
    const size_t per_shard_cells =
        work == 0 ? 1 : (work + s - 1) / s;
    return std::min<unsigned>(budget,
                              std::max<size_t>(per_shard_cells, 1));
}

unsigned
RunnerOptions::resolveShards(size_t work) const
{
    unsigned n = shards;
    if (n == 0)
        n = std::min(4u,
                     std::max(1u, std::thread::hardware_concurrency()));
    return std::min<unsigned>(n, std::max<size_t>(work, 1));
}

ExperimentRunner::ExperimentRunner(WorkloadResolver resolver,
                                   RunnerOptions options)
    : ExperimentRunner(std::make_shared<AnalysisCache>(
                           std::move(resolver), options.analyze),
                       options)
{
}

ExperimentRunner::ExperimentRunner(std::shared_ptr<AnalysisCache> cache,
                                   RunnerOptions options)
    : ExperimentRunner(std::move(cache), options, nullptr)
{
}

ExperimentRunner::ExperimentRunner(std::shared_ptr<AnalysisCache> cache,
                                   RunnerOptions options,
                                   std::shared_ptr<CellExecutor> executor)
    : cache_(std::move(cache)), options_(options),
      executor_(std::move(executor))
{
    if (!cache_)
        throw std::invalid_argument(
            "ExperimentRunner needs an analysis cache");
    if (options_.cacheMode != CacheMode::Off)
        store_ = std::make_shared<ResultStore>(
            options_.cacheDir.empty() ? "result-cache"
                                      : options_.cacheDir);
    if (!executor_)
        executor_ = makeCellExecutor(options_, store_);
}

namespace {

/** Distinct names in first-appearance order (registry spelling). */
std::vector<std::string>
distinctNames(const std::vector<std::string> &names)
{
    std::vector<std::string> out;
    std::unordered_set<std::string> seen;
    for (const std::string &name : names) {
        if (seen.insert(name).second)
            out.push_back(name);
    }
    return out;
}

} // namespace

std::vector<AnalyzedWorkload::Ptr>
ExperimentRunner::analyze(const std::vector<std::string> &names,
                          AnalysisPhaseMask phases, TraceMode mode,
                          TraceCompression compression) const
{
    // Phase 1: each distinct workload analyzed exactly once, distinct
    // workloads concurrently. The cache's single-flight get() makes
    // duplicates (and races with other runners on the same cache)
    // share one analysis.
    const std::vector<std::string> distinct = distinctNames(names);
    std::vector<AnalyzedWorkload::Ptr> artifacts(distinct.size());
    runParallel(options_.resolveThreads(distinct.size()),
                distinct.size(), [&](size_t i) {
                    artifacts[i] = cache_->get(distinct[i], phases, mode,
                                               compression);
                });

    std::map<std::string, AnalyzedWorkload::Ptr> by_name;
    for (size_t i = 0; i < distinct.size(); i++)
        by_name[distinct[i]] = artifacts[i];
    std::vector<AnalyzedWorkload::Ptr> out;
    out.reserve(names.size());
    for (const std::string &name : names)
        out.push_back(by_name[name]);
    return out;
}

std::vector<AnalyzedWorkload::Ptr>
ExperimentRunner::analyze(const std::vector<std::string> &names,
                          AnalysisPhaseMask phases, TraceMode mode) const
{
    return analyze(names, phases, mode, cache_->options().compression);
}

std::vector<AnalyzedWorkload::Ptr>
ExperimentRunner::analyze(const std::vector<std::string> &names) const
{
    return analyze(names, 0, cache_->options().traceMode);
}

AnalysisPhaseMask
ExperimentRunner::neededPhases(
    const std::vector<ExperimentMatrix> &matrices)
{
    AnalysisPhaseMask phases = PhaseTimingTrace;
    for (const ExperimentMatrix &matrix : matrices) {
        for (uarch::Scheme s : matrix.schemes) {
            if (uarch::schemeIsCassandra(s))
                phases |= PhaseTraceImage;
            if (s == uarch::Scheme::Prospect ||
                s == uarch::Scheme::CassandraProspect)
                phases |= PhaseTaint;
        }
    }
    return phases;
}

Experiment
ExperimentRunner::run(const ExperimentMatrix &matrix) const
{
    return run(std::vector<ExperimentMatrix>{matrix});
}

Experiment
ExperimentRunner::run(const std::vector<ExperimentMatrix> &matrices) const
{
    // Plan: flatten the cross products up front so executors fill a
    // fixed slot array — result order never depends on scheduling,
    // threads or shard partitions.
    const std::vector<SimConfig> default_configs{SimConfig{}};

    std::vector<PlannedCell> cells;
    std::vector<std::string> names;
    for (const ExperimentMatrix &matrix : matrices) {
        const std::vector<SimConfig> &configs =
            matrix.configs.empty() ? default_configs : matrix.configs;
        for (const std::string &w : matrix.workloads) {
            names.push_back(w);
            for (uarch::Scheme s : matrix.schemes)
                for (const SimConfig &c : configs)
                    cells.push_back(PlannedCell{w, s, c});
        }
    }

    // Phase 1: analyze once per distinct workload (analyze() dedups),
    // requesting only the phases the matrices' schemes consume, and
    // streaming the traces when any cell config asks for it.
    const AnalysisPhaseMask phases = neededPhases(matrices);
    TraceMode mode = cache_->options().traceMode;
    TraceCompression compression = cache_->options().compression;
    for (const ExperimentMatrix &matrix : matrices) {
        for (const SimConfig &c : matrix.configs) {
            if (c.traceMode == TraceMode::Stream)
                mode = TraceMode::Stream;
            // One artifact serves every cell of a workload, so the
            // non-default (raw CASSTF1) request wins the tie.
            if (c.traceCompression == TraceCompression::None)
                compression = TraceCompression::None;
        }
    }
    Experiment exp;
    // Pipeline counters are process-wide cumulative; the telemetry of
    // one dispatch is the delta across it.
    const uint64_t fused_base = fusedAnalysisPasses();
    const uint64_t prefetch_base = TraceCursor::prefetchBatches();
    const uint64_t stall_base = TraceCursor::prefetchStalls();
    // Resolve the artifacts without any phases: recording is
    // demand-driven, so workloads whose cells all replay from the
    // result store are never analyzed at all. Phases for the cells
    // that do simulate run in parallel after the store filter below.
    std::vector<AnalyzedWorkload::Ptr> artifacts =
        analyze(names, 0, mode, compression);
    for (size_t i = 0; i < names.size(); i++)
        exp.artifacts.emplace(names[i], artifacts[i]);

    // Result store: replay every cell whose key hits, dispatch only
    // the misses. Filtering happens here in the coordinator, so both
    // executors (and any custom one) get the cache for free and the
    // merged vector stays byte-identical to an uncached run.
    exp.telemetry.cacheEnabled = store_ != nullptr;
    exp.telemetry.cacheMode = cacheModeName(options_.cacheMode);
    if (store_)
        exp.telemetry.cacheDir = store_->dir();

    std::vector<CellResult> results(cells.size());
    std::vector<ResultStoreKey> keys;
    std::vector<size_t> pending_slots;
    std::vector<PlannedCell> pending;
    if (store_) {
        keys.reserve(cells.size());
        for (size_t i = 0; i < cells.size(); i++) {
            const PlannedCell &cell = cells[i];
            const AnalyzedWorkload::Ptr &artifact =
                exp.artifacts.at(cell.workload);
            SimConfig cfg = cell.config;
            cfg.scheme = cell.scheme;
            keys.push_back(resultStoreKey(artifact->workload(),
                                          cell.scheme, cfg));
            ExperimentResult cached;
            if (store_->lookup(keys.back(), cached)) {
                // Rebuild the naming fields exactly like the
                // executors do — a replayed cell must be
                // indistinguishable from a fresh one.
                CellResult &out = results[i];
                out.workload = cell.workload;
                out.suite = artifact->workload().suite;
                out.scheme = cell.scheme;
                out.config = cell.config.name;
                out.result = cached;
            } else {
                pending_slots.push_back(i);
                pending.push_back(cell);
            }
        }
    } else {
        pending = cells;
        pending_slots.resize(cells.size());
        for (size_t i = 0; i < cells.size(); i++)
            pending_slots[i] = i;
    }
    exp.telemetry.cachedCells = cells.size() - pending.size();
    exp.telemetry.simulatedCells = pending.size();

    // Phase 2: dispatch the missing cells to the executor and merge.
    // Every executor fills the same fixed slots, so the cells come
    // back in matrix order whatever the backend did to run them.
    if (!pending.empty()) {
        // Phase 1b: analyze once per distinct workload that still has
        // cells to simulate — concurrently, requesting exactly the
        // phases the pending schemes consume.
        std::vector<AnalyzedWorkload::Ptr> todo;
        std::unordered_set<std::string> seen_names;
        for (const PlannedCell &cell : pending)
            if (seen_names.insert(cell.workload).second)
                todo.push_back(exp.artifacts.at(cell.workload));
        runParallel(options_.resolveThreads(todo.size()), todo.size(),
                    [&](size_t i) { todo[i]->ensurePhases(phases); });

        // Opt-in dedup (the cross-job service path): identical cells
        // — same workload, scheme and canonical sim parameters —
        // dispatch once; executors are required to be byte-identical
        // per cell, so replicating the result into every requesting
        // slot (with each slot's own naming fields) cannot change any
        // report. owner[j] is pending[j]'s representative in `unique`.
        std::vector<size_t> owner(pending.size());
        std::vector<PlannedCell> unique;
        if (options_.dedupCells) {
            std::map<std::string, size_t> reps;
            for (size_t j = 0; j < pending.size(); j++) {
                const PlannedCell &cell = pending[j];
                SimConfig cfg = cell.config;
                cfg.scheme = cell.scheme;
                char hash[24];
                std::snprintf(hash, sizeof hash, "%016llx",
                              static_cast<unsigned long long>(
                                  canonicalSimConfigHash(
                                      cfg, cell.scheme)));
                const std::string key = cell.workload + '\0' +
                    uarch::schemeName(cell.scheme) + '\0' + hash;
                const auto [it, inserted] =
                    reps.emplace(key, unique.size());
                if (inserted)
                    unique.push_back(cell);
                owner[j] = it->second;
            }
        } else {
            unique = pending;
            for (size_t j = 0; j < pending.size(); j++)
                owner[j] = j;
        }
        exp.telemetry.dedupedCells = pending.size() - unique.size();
        exp.telemetry.simulatedCells = unique.size();

        std::vector<CellResult> fresh =
            executor_->execute(unique, exp.artifacts);
        if (fresh.size() != unique.size())
            throw std::logic_error("cell executor returned a result "
                                   "vector of the wrong size");
        std::vector<char> stored(unique.size(), 0);
        for (size_t j = 0; j < pending.size(); j++) {
            const PlannedCell &cell = pending[j];
            if (store_ && options_.cacheMode == CacheMode::On &&
                !stored[owner[j]]) {
                // Duplicates share a store key by construction (the
                // canonical hash is the key), so one write suffices.
                store_->store(keys[pending_slots[j]],
                              fresh[owner[j]].result);
                stored[owner[j]] = 1;
            }
            CellResult &out = results[pending_slots[j]];
            out.workload = cell.workload;
            out.suite =
                exp.artifacts.at(cell.workload)->workload().suite;
            out.scheme = cell.scheme;
            out.config = cell.config.name;
            out.result = fresh[owner[j]].result;
        }
        const ScheduleSummary schedule = executor_->lastSchedule();
        if (schedule.valid) {
            exp.telemetry.scheduled = true;
            exp.telemetry.scheduler =
                shardSchedulerName(schedule.scheduler);
            exp.telemetry.shardCosts = schedule.shardCosts;
        }
    }
    exp.cells = std::move(results);

    // Analysis observability: every artifact whose Algorithm 2 phase
    // ran (or was adopted from a snapshot) reports its accumulator
    // peak. Keyed by name and emitted in map order so the stats
    // document is deterministic across thread schedules.
    for (const auto &[name, artifact] : exp.artifacts) {
        if (artifact->hasTraceImage())
            exp.telemetry.analysisPeaks.emplace_back(
                name, artifact->traces().peakAccumBytes);
    }

    if (store_) {
        // Size-bound GC after the run's writes: long-running service
        // hosts keep their `.cr` directory under the configured
        // budget instead of growing without limit.
        if (options_.cacheGcMb > 0 &&
            options_.cacheMode == CacheMode::On)
            exp.telemetry.cacheGcEvictions =
                store_->gc(options_.cacheGcMb * 1024 * 1024);
        const ResultStore::Stats stats = store_->stats();
        exp.telemetry.cacheHits = stats.hits;
        exp.telemetry.cacheMisses = stats.misses;
        exp.telemetry.cacheStores = stats.stores;
        exp.telemetry.cacheEvictions = stats.evictions;
    }
    exp.telemetry.analysisFusedPasses =
        fusedAnalysisPasses() - fused_base;
    exp.telemetry.prefetchBatches =
        TraceCursor::prefetchBatches() - prefetch_base;
    exp.telemetry.prefetchStalls =
        TraceCursor::prefetchStalls() - stall_base;
    return exp;
}

// ---------------------------------------------------------------------
// Derived metrics
// ---------------------------------------------------------------------

DerivedMetrics
computeDerived(const Experiment &exp)
{
    DerivedMetrics d;
    d.cyclesVsBaseline.assign(exp.cells.size(),
                              std::numeric_limits<double>::quiet_NaN());

    // One indexing pass over the baseline cells (first match wins,
    // like Experiment::find) keeps the whole computation linear.
    std::unordered_map<std::string, uint64_t> base_by_config;
    std::unordered_map<std::string, uint64_t> base_by_workload;
    auto config_key = [](const CellResult &c) {
        return c.workload + '\0' + c.config;
    };
    for (const CellResult &cell : exp.cells) {
        if (cell.scheme != uarch::Scheme::UnsafeBaseline)
            continue;
        base_by_config.emplace(config_key(cell),
                               cell.result.stats.cycles);
        base_by_workload.emplace(cell.workload,
                                 cell.result.stats.cycles);
    }

    for (size_t i = 0; i < exp.cells.size(); i++) {
        const CellResult &cell = exp.cells[i];
        // Prefer the baseline run of the same config variant; fall
        // back to any baseline of the workload (sweeps like Q4 pair
        // one baseline config against many scheme configs).
        uint64_t base_cycles = 0;
        auto it = base_by_config.find(config_key(cell));
        if (it != base_by_config.end()) {
            base_cycles = it->second;
        } else {
            auto fallback = base_by_workload.find(cell.workload);
            if (fallback != base_by_workload.end())
                base_cycles = fallback->second;
        }
        if (base_cycles)
            d.cyclesVsBaseline[i] =
                static_cast<double>(cell.result.stats.cycles) /
                static_cast<double>(base_cycles);
    }

    struct Acc
    {
        double logSum = 0.0;
        size_t n = 0;
    };
    std::vector<Acc> accs;
    for (size_t i = 0; i < exp.cells.size(); i++) {
        double v = d.cyclesVsBaseline[i];
        if (!std::isfinite(v) || v <= 0.0)
            continue;
        const CellResult &cell = exp.cells[i];
        size_t g = 0;
        for (; g < d.geomeans.size(); g++) {
            if (d.geomeans[g].scheme == cell.scheme &&
                d.geomeans[g].config == cell.config)
                break;
        }
        if (g == d.geomeans.size()) {
            DerivedMetrics::Geomean gm;
            gm.scheme = cell.scheme;
            gm.config = cell.config;
            d.geomeans.push_back(gm);
            accs.push_back(Acc{});
        }
        accs[g].logSum += std::log(v);
        accs[g].n++;
    }
    for (size_t g = 0; g < d.geomeans.size(); g++) {
        d.geomeans[g].cyclesVsBaseline =
            std::exp(accs[g].logSum / accs[g].n);
        d.geomeans[g].workloads = accs[g].n;
    }
    return d;
}

// ---------------------------------------------------------------------
// Reporters
// ---------------------------------------------------------------------

namespace {

/** JSON string escaping (control chars, quotes, backslash). */
std::string
jsonEscaped(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

/** One key/value emitter keeping track of comma placement. */
class JsonObject
{
  public:
    JsonObject(std::ostream &os, int indent) : os_(os), indent_(indent) {}

    void
    field(const char *key, uint64_t v)
    {
        prefix(key);
        os_ << v;
    }

    void
    field(const char *key, double v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6f", v);
        prefix(key);
        os_ << buf;
    }

    void
    field(const char *key, const std::string &v)
    {
        prefix(key);
        os_ << '"' << jsonEscaped(v) << '"';
    }

    std::ostream &
    object(const char *key)
    {
        prefix(key);
        return os_;
    }

  private:
    void
    prefix(const char *key)
    {
        if (!first_)
            os_ << ",";
        first_ = false;
        os_ << "\n";
        for (int i = 0; i < indent_; i++)
            os_ << ' ';
        os_ << '"' << key << "\": ";
    }

    std::ostream &os_;
    int indent_;
    bool first_ = true;
};

void
writeCacheLevel(JsonObject &parent, const char *key, uint64_t accesses,
                uint64_t misses)
{
    std::ostream &os = parent.object(key);
    os << "{\"accesses\": " << accesses << ", \"misses\": " << misses
       << "}";
}

} // namespace

void
TableReporter::write(const Experiment &exp, std::ostream &os) const
{
    const DerivedMetrics derived = computeDerived(exp);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-28s %-10s %-18s %-14s %12s %12s %6s %10s %10s %8s\n",
                  "workload", "suite", "scheme", "config", "cycles",
                  "insts", "ipc", "btu_hits", "mispred", "vs_base");
    os << buf;
    os << std::string(136, '-') << "\n";
    for (size_t i = 0; i < exp.cells.size(); i++) {
        const CellResult &c = exp.cells[i];
        char vs_base[16];
        if (std::isfinite(derived.cyclesVsBaseline[i]))
            std::snprintf(vs_base, sizeof(vs_base), "%.4f",
                          derived.cyclesVsBaseline[i]);
        else
            std::snprintf(vs_base, sizeof(vs_base), "-");
        std::snprintf(
            buf, sizeof(buf),
            "%-28s %-10s %-18s %-14s %12llu %12llu %6.2f %10llu %10llu "
            "%8s\n",
            c.workload.c_str(), c.suite.c_str(),
            uarch::schemeName(c.scheme), c.config.c_str(),
            static_cast<unsigned long long>(c.result.stats.cycles),
            static_cast<unsigned long long>(c.result.stats.instructions),
            c.result.stats.ipc(),
            static_cast<unsigned long long>(c.result.btu.hits +
                                            c.result.btu.singleTargetHits),
            static_cast<unsigned long long>(
                c.result.stats.condMispredicts),
            vs_base);
        os << buf;
    }
    if (!derived.geomeans.empty()) {
        os << std::string(136, '-') << "\n";
        for (const auto &g : derived.geomeans) {
            std::snprintf(
                buf, sizeof(buf),
                "%-28s %-10s %-18s %-14s %12s %12s %6s %10s %10s %8.4f\n",
                "geomean", "", uarch::schemeName(g.scheme),
                g.config.c_str(), "", "", "", "", "",
                g.cyclesVsBaseline);
            os << buf;
        }
    }
}

void
JsonReporter::write(const Experiment &exp, std::ostream &os) const
{
    const DerivedMetrics derived = computeDerived(exp);
    os << "{\n  \"results\": [";
    bool first_cell = true;
    for (size_t i = 0; i < exp.cells.size(); i++) {
        const CellResult &c = exp.cells[i];
        if (!first_cell)
            os << ",";
        first_cell = false;
        os << "\n    {";
        JsonObject o(os, 6);
        o.field("workload", c.workload);
        o.field("suite", c.suite);
        o.field("scheme", std::string(uarch::schemeName(c.scheme)));
        o.field("config", c.config);
        const uarch::CoreStats &s = c.result.stats;
        o.field("cycles", s.cycles);
        o.field("instructions", s.instructions);
        o.field("ipc", s.ipc());
        if (std::isfinite(derived.cyclesVsBaseline[i]))
            o.field("cycles_vs_baseline", derived.cyclesVsBaseline[i]);
        {
            std::ostream &core_os = o.object("core");
            core_os << "{";
            JsonObject co(os, 8);
            co.field("branches", s.branches);
            co.field("crypto_branches", s.cryptoBranches);
            co.field("cond_mispredicts", s.condMispredicts);
            co.field("indirect_mispredicts", s.indirectMispredicts);
            co.field("return_mispredicts", s.returnMispredicts);
            co.field("decode_redirects", s.decodeRedirects);
            co.field("integrity_stalls", s.integrityStalls);
            co.field("resolve_stalls", s.resolveStalls);
            co.field("btu_fill_stalls", s.btuFillStalls);
            co.field("btu_window_stalls", s.btuWindowStalls);
            co.field("btu_flushes", s.btuFlushes);
            co.field("btu_mismatches", s.btuMismatches);
            co.field("loads", s.loads);
            co.field("stores", s.stores);
            co.field("stl_forwards", s.stlForwards);
            co.field("scheme_load_delays", s.schemeLoadDelays);
            co.field("prospect_blocks", s.prospectBlocks);
            co.field("icache_miss_bubbles", s.icacheMissBubbles);
            core_os << "\n      }";
        }
        {
            const btu::BtuStats &b = c.result.btu;
            std::ostream &btu_os = o.object("btu");
            btu_os << "{";
            JsonObject bo(os, 8);
            bo.field("lookups", b.lookups);
            bo.field("single_target_hits", b.singleTargetHits);
            bo.field("hits", b.hits);
            bo.field("misses", b.misses);
            bo.field("evictions", b.evictions);
            bo.field("checkpoint_restores", b.checkpointRestores);
            bo.field("stall_resolve", b.stallResolve);
            bo.field("window_stalls", b.windowStalls);
            bo.field("prefetches", b.prefetches);
            bo.field("flushes", b.flushes);
            bo.field("commits", b.commits);
            bo.field("squash_rewinds", b.squashRewinds);
            btu_os << "\n      }";
        }
        {
            const uarch::BpuStats &b = c.result.bpu;
            std::ostream &bpu_os = o.object("bpu");
            bpu_os << "{";
            JsonObject bo(os, 8);
            bo.field("cond_lookups", b.condLookups);
            bo.field("cond_mispredicts", b.condMispredicts);
            bo.field("loop_overrides", b.loopOverrides);
            bo.field("btb_lookups", b.btbLookups);
            bo.field("btb_misses", b.btbMisses);
            bo.field("indirect_mispredicts", b.indirectMispredicts);
            bo.field("rsb_pushes", b.rsbPushes);
            bo.field("rsb_pops", b.rsbPops);
            bo.field("return_mispredicts", b.returnMispredicts);
            bo.field("updates", b.updates);
            bpu_os << "\n      }";
        }
        {
            const CacheActivity &ca = c.result.caches;
            std::ostream &cache_os = o.object("caches");
            cache_os << "{";
            JsonObject co(os, 8);
            writeCacheLevel(co, "l1i", ca.l1iAccesses, ca.l1iMisses);
            writeCacheLevel(co, "l1d", ca.l1dAccesses, ca.l1dMisses);
            writeCacheLevel(co, "l2", ca.l2Accesses, ca.l2Misses);
            writeCacheLevel(co, "l3", ca.l3Accesses, ca.l3Misses);
            cache_os << "\n      }";
        }
        os << "\n    }";
    }
    os << "\n  ],\n  \"geomeans\": [";
    bool first_geo = true;
    for (const auto &g : derived.geomeans) {
        if (!first_geo)
            os << ",";
        first_geo = false;
        os << "\n    {";
        JsonObject o(os, 6);
        o.field("scheme", std::string(uarch::schemeName(g.scheme)));
        o.field("config", g.config);
        o.field("cycles_vs_baseline", g.cyclesVsBaseline);
        o.field("workloads", static_cast<uint64_t>(g.workloads));
        os << "\n    }";
    }
    os << "\n  ]\n}\n";
}

void
CsvReporter::write(const Experiment &exp, std::ostream &os) const
{
    const DerivedMetrics derived = computeDerived(exp);
    os << "workload,suite,scheme,config,cycles,instructions,ipc,"
          "branches,crypto_branches,cond_mispredicts,resolve_stalls,"
          "btu_lookups,btu_hits,btu_misses,btu_evictions,"
          "l1i_accesses,l1i_misses,l1d_accesses,l1d_misses,"
          "l2_accesses,l2_misses,l3_accesses,l3_misses,"
          "cycles_vs_baseline\n";
    // Commas inside names (none today) would corrupt rows; quote
    // defensively when present.
    auto cell = [](const std::string &s) {
        if (s.find(',') == std::string::npos &&
            s.find('"') == std::string::npos)
            return s;
        std::string quoted = "\"";
        for (char ch : s) {
            if (ch == '"')
                quoted += '"';
            quoted += ch;
        }
        quoted += '"';
        return quoted;
    };
    for (size_t i = 0; i < exp.cells.size(); i++) {
        const CellResult &c = exp.cells[i];
        const uarch::CoreStats &s = c.result.stats;
        const btu::BtuStats &b = c.result.btu;
        const CacheActivity &ca = c.result.caches;
        char ipc_buf[32];
        std::snprintf(ipc_buf, sizeof(ipc_buf), "%.6f", s.ipc());
        char vs_buf[32] = "";
        if (std::isfinite(derived.cyclesVsBaseline[i]))
            std::snprintf(vs_buf, sizeof(vs_buf), "%.6f",
                          derived.cyclesVsBaseline[i]);
        os << cell(c.workload) << ',' << cell(c.suite) << ','
           << uarch::schemeName(c.scheme) << ',' << cell(c.config) << ','
           << s.cycles << ',' << s.instructions << ',' << ipc_buf << ','
           << s.branches << ',' << s.cryptoBranches << ','
           << s.condMispredicts << ',' << s.resolveStalls << ','
           << b.lookups << ',' << b.hits + b.singleTargetHits << ','
           << b.misses << ',' << b.evictions << ',' << ca.l1iAccesses
           << ',' << ca.l1iMisses << ',' << ca.l1dAccesses << ','
           << ca.l1dMisses << ',' << ca.l2Accesses << ',' << ca.l2Misses
           << ',' << ca.l3Accesses << ',' << ca.l3Misses << ','
           << vs_buf << "\n";
    }
    // Per-scheme geomean rows: the 19 counter columns stay empty, the
    // derived column carries the geometric mean.
    for (const auto &g : derived.geomeans) {
        char geo_buf[32];
        std::snprintf(geo_buf, sizeof(geo_buf), "%.6f",
                      g.cyclesVsBaseline);
        os << "geomean,," << uarch::schemeName(g.scheme) << ','
           << cell(g.config);
        for (int col = 0; col < 19; col++)
            os << ',';
        os << ',' << geo_buf << "\n";
    }
}

void
writeRunTelemetry(const RunTelemetry &telemetry, std::ostream &os)
{
    os << "{\n  \"cache_stats\": {";
    {
        JsonObject o(os, 4);
        o.field("mode", telemetry.cacheMode.empty()
                    ? std::string("off")
                    : telemetry.cacheMode);
        if (telemetry.cacheEnabled) {
            o.field("dir", telemetry.cacheDir);
            o.field("hits", telemetry.cacheHits);
            o.field("misses", telemetry.cacheMisses);
            o.field("stores", telemetry.cacheStores);
            o.field("evictions", telemetry.cacheEvictions);
        }
        o.field("cached_cells", telemetry.cachedCells);
        o.field("simulated_cells", telemetry.simulatedCells);
        o.field("deduped_cells", telemetry.dedupedCells);
        o.field("gc_evictions", telemetry.cacheGcEvictions);
    }
    os << "\n  },\n  \"pipeline\": {";
    {
        JsonObject o(os, 4);
        o.field("analysis_fused_passes", telemetry.analysisFusedPasses);
        o.field("prefetch_batches", telemetry.prefetchBatches);
        o.field("prefetch_stalls", telemetry.prefetchStalls);
    }
    os << "\n  },\n  \"analysis\": ";
    if (telemetry.analysisPeaks.empty()) {
        os << "null";
    } else {
        os << "{";
        JsonObject o(os, 4);
        o.field("image_runs",
                static_cast<uint64_t>(telemetry.analysisPeaks.size()));
        o.field("peak_accum_bytes", telemetry.analysisPeakAccumBytes());
        std::ostream &peaks_os = o.object("workloads");
        peaks_os << "{";
        bool first = true;
        for (const auto &[name, bytes] : telemetry.analysisPeaks) {
            peaks_os << (first ? "" : ", ") << '"' << name << "\": "
                     << bytes;
            first = false;
        }
        peaks_os << "}";
        os << "\n  }";
    }
    os << ",\n  \"schedule\": ";
    if (!telemetry.scheduled) {
        os << "null";
    } else {
        os << "{";
        JsonObject o(os, 4);
        o.field("scheduler", telemetry.scheduler);
        o.field("shards",
                static_cast<uint64_t>(telemetry.shardCosts.size()));
        std::ostream &costs_os = o.object("shard_costs");
        costs_os << "[";
        for (size_t i = 0; i < telemetry.shardCosts.size(); i++)
            costs_os << (i ? ", " : "") << telemetry.shardCosts[i];
        costs_os << "]";
        o.field("max_shard_cost", telemetry.maxShardCost());
        o.field("total_cost", telemetry.totalCost());
        os << "\n  }";
    }
    os << "\n}\n";
}

std::unique_ptr<Reporter>
makeReporter(const std::string &format)
{
    if (format == "table")
        return std::make_unique<TableReporter>();
    if (format == "json")
        return std::make_unique<JsonReporter>();
    if (format == "csv")
        return std::make_unique<CsvReporter>();
    throw std::invalid_argument("unknown report format \"" + format +
                                "\" (expected table, json or csv)");
}

} // namespace cassandra::core
