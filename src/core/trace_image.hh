/**
 * @file
 * Binary-embedded trace image (paper §5.2, "Embedding hint information").
 *
 * The trace image is what Algorithm 2 attaches to a binary: per static
 * branch a 14-bit hint word (single-target mark, 12-bit trace
 * address offset, short-trace mark) plus data pages holding the
 * serialized pattern sets and branch traces, and a memory-backed
 * checkpoint area used across BTU evictions and interrupts.
 */

#ifndef CASSANDRA_CORE_TRACE_IMAGE_HH
#define CASSANDRA_CORE_TRACE_IMAGE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "core/trace_format.hh"
#include "ir/program.hh"

namespace cassandra::core {

/** Decoded per-branch hint word (14 bits in hardware). */
struct HintInfo
{
    bool singleTarget = false;
    bool shortTrace = false;
    /** Target PC for single-target branches. */
    uint64_t targetPc = 0;
    /** Byte offset of the trace in the data pages (multi-target). */
    uint32_t traceOffset = 0;
};

/** The embedded traces + hints of one analyzed binary. */
class TraceImage
{
  public:
    /** Register the trace of a static branch. */
    void add(const BranchTrace &trace);

    /**
     * Restore an image verbatim from serialized parts (core/serialize
     * deserialization path); replaces any existing contents.
     */
    void restore(std::map<uint64_t, HintInfo> hints,
                 std::map<uint64_t, BranchTrace> traces,
                 size_t trace_bytes);

    /** True if the branch was analyzed (hint information exists). */
    bool known(uint64_t pc) const { return hints_.count(pc) != 0; }

    /** Hint word of a branch, or nullptr if unanalyzed. */
    const HintInfo *hint(uint64_t pc) const;

    /**
     * Full trace of a multi-target branch, or nullptr (single-target
     * and unanalyzed branches have none).
     */
    const BranchTrace *trace(uint64_t pc) const;

    /** All traces (for iteration in benches). */
    const std::map<uint64_t, BranchTrace> &traces() const
    {
        return traces_;
    }

    /** Number of analyzed static branches. */
    size_t numBranches() const { return hints_.size(); }

    /** Total serialized size of the trace data pages, in bytes. */
    size_t traceBytes() const { return traceBytes_; }

    /** Total hint bits (14 per static branch). */
    size_t hintBits() const
    {
        return hints_.size() * TraceLimits::hintBitsPerBranch;
    }

    /** Crypto PC ranges (copied into the status register by the OS). */
    std::vector<ir::PcRange> cryptoRanges;

  private:
    std::map<uint64_t, HintInfo> hints_;
    std::map<uint64_t, BranchTrace> traces_;
    size_t traceBytes_ = 0;
};

} // namespace cassandra::core

#endif // CASSANDRA_CORE_TRACE_IMAGE_HH
