/**
 * @file
 * Raw and vanilla branch traces (paper §4.2, steps 1-2 of Figure 1).
 *
 * A raw trace logs, per static branch, the target PC of every dynamic
 * execution of that branch (fall-through PC for not-taken conditional
 * branches). A vanilla trace is its run-length encoding: repeating
 * outcomes are aggregated into (target, count) run elements.
 */

#ifndef CASSANDRA_CORE_BRANCH_TRACE_HH
#define CASSANDRA_CORE_BRANCH_TRACE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "sim/machine.hh"

namespace cassandra::core {

/** Raw trace of a static branch: targets in execution order. */
using RawTrace = std::vector<uint64_t>;

/** One run element of a vanilla trace: target repeated count times. */
struct RunElement
{
    uint64_t target = 0;
    uint64_t count = 0;

    bool
    operator==(const RunElement &o) const
    {
        return target == o.target && count == o.count;
    }
};

/** Vanilla trace: run-length-encoded raw trace. */
using VanillaTrace = std::vector<RunElement>;

/** Build the vanilla trace (RLE) of a raw trace. */
VanillaTrace toVanilla(const RawTrace &raw);

/** Expand a vanilla trace back into a raw trace (for tests). */
RawTrace expandVanilla(const VanillaTrace &vanilla);

/** Total number of dynamic branch executions covered by a vanilla trace. */
uint64_t vanillaDynamicCount(const VanillaTrace &vanilla);

/**
 * Branch trace collector: attaches to a Machine's branch probe and
 * records the raw trace of every executed static branch (step B of
 * Algorithm 2). Only branches inside the program's crypto PC ranges are
 * recorded when cryptoOnly is set.
 */
class TraceCollector
{
  public:
    explicit TraceCollector(sim::Machine &machine, bool crypto_only = true);

    /** Raw traces keyed by static branch PC. */
    const std::map<uint64_t, RawTrace> &raw() const { return raw_; }

    /** Vanilla traces of all collected branches. */
    std::map<uint64_t, VanillaTrace> vanilla() const;

  private:
    std::map<uint64_t, RawTrace> raw_;
};

} // namespace cassandra::core

#endif // CASSANDRA_CORE_BRANCH_TRACE_HH
