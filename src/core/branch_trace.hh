/**
 * @file
 * Raw, vanilla and folded branch traces (paper §4.2, steps 1-2 of
 * Figure 1).
 *
 * A raw trace logs, per static branch, the target PC of every dynamic
 * execution of that branch (fall-through PC for not-taken conditional
 * branches). A vanilla trace is its run-length encoding: repeating
 * outcomes are aggregated into (target, count) run elements.
 *
 * A FoldedTrace is the incremental form of the same encoding: run
 * elements are committed online as the branch executes (never holding
 * the raw target stream), and committed elements are periodically
 * folded into (pattern x repeats) chunks when the element sequence is
 * periodic — the shape every counted loop produces. Memory held per
 * branch is O(folded RLE size), independent of the dynamic execution
 * count, which is what makes Algorithm 2 tractable on long composite
 * server traces. expand() provably reproduces toVanilla(raw): elements
 * are committed exactly on target changes, so neither chunk-internal
 * wraps nor chunk boundaries can merge adjacent runs.
 */

#ifndef CASSANDRA_CORE_BRANCH_TRACE_HH
#define CASSANDRA_CORE_BRANCH_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "sim/machine.hh"

namespace cassandra::core {

/** Raw trace of a static branch: targets in execution order. */
using RawTrace = std::vector<uint64_t>;

/** One run element of a vanilla trace: target repeated count times. */
struct RunElement
{
    uint64_t target = 0;
    uint64_t count = 0;

    bool
    operator==(const RunElement &o) const
    {
        return target == o.target && count == o.count;
    }
};

/** Vanilla trace: run-length-encoded raw trace. */
using VanillaTrace = std::vector<RunElement>;

/** Build the vanilla trace (RLE) of a raw trace. */
VanillaTrace toVanilla(const RawTrace &raw);

/** Expand a vanilla trace back into a raw trace (for tests). */
RawTrace expandVanilla(const VanillaTrace &vanilla);

/** Total number of dynamic branch executions covered by a vanilla trace. */
uint64_t vanillaDynamicCount(const VanillaTrace &vanilla);

/**
 * Branch trace collector: attaches to a Machine's branch probe and
 * records the raw trace of every executed static branch (step B of
 * Algorithm 2). Only branches inside the program's crypto PC ranges are
 * recorded when cryptoOnly is set.
 */
class TraceCollector
{
  public:
    explicit TraceCollector(sim::Machine &machine, bool crypto_only = true);

    /** Raw traces keyed by static branch PC. */
    const std::map<uint64_t, RawTrace> &raw() const { return raw_; }

    /** Vanilla traces of all collected branches. */
    std::map<uint64_t, VanillaTrace> vanilla() const;

  private:
    std::map<uint64_t, RawTrace> raw_;
};

/**
 * Online run-length-encoded branch trace with periodic folding.
 *
 * append() consumes one dynamic branch outcome; finish() commits the
 * trailing run. Storage is a sequence of frozen chunks (pattern,
 * full-repeat count, partial prefix) followed by either an actively
 * matching chunk or a flat buffer of committed elements awaiting a
 * period. Folding decisions depend only on the committed-element
 * prefix, so two traces with equal logical content always have equal
 * structure — sameAs() compares structure in O(held elements).
 *
 * A per-branch element cap (kMaxHeldElements) bounds memory on
 * pathologically aperiodic branches: a capped trace frees its storage
 * but keeps the logical counters, and callers treat it as
 * input-dependent (stall-until-resolve), the same safe fallback the
 * paper applies to undecodable branches.
 */
class FoldedTrace
{
  public:
    /** One frozen folded section: pattern repeated `repeats` times,
     * then the first `partial` pattern elements once more. */
    struct Chunk
    {
        VanillaTrace pattern;
        uint64_t repeats = 1;
        size_t partial = 0;

        bool
        operator==(const Chunk &o) const
        {
            return repeats == o.repeats && partial == o.partial &&
                   pattern == o.pattern;
        }
    };

    /** Flat buffer size that triggers the first fold attempt. */
    static constexpr size_t kFoldBase = 64;
    /** Stored-element cap; beyond it the trace drops storage. */
    static constexpr size_t kMaxHeldElements = size_t(1) << 22;

    /** Record one dynamic execution of this branch. */
    void append(uint64_t target);
    /** Commit the trailing run; call once, after the last append(). */
    void finish();

    /** Run elements in the logical vanilla trace (valid after finish). */
    uint64_t logicalSize() const { return logicalElems_; }
    /** Total dynamic executions recorded. */
    uint64_t dynamicCount() const { return dynCount_; }
    /** True when the per-branch storage cap was exceeded. */
    bool capped() const { return capped_; }
    /** Target of the first run element (logicalSize() >= 1 only). */
    uint64_t frontTarget() const;

    /** Bytes currently held by this accumulator (O(1)). */
    uint64_t heldBytes() const;

    /** Logical-content equality with another finished trace. */
    bool sameAs(const FoldedTrace &o) const;

    /** Reconstruct the vanilla trace (finished, uncapped traces). */
    VanillaTrace expand() const;

    /**
     * When the whole logical trace is exactly one pattern repeated a
     * whole number of times, returns that pattern; else nullptr.
     * Callers may encode just the period for very long traces: the
     * BTU replays traces cyclically, so one period serves the same
     * element sequence as the full expansion.
     */
    const VanillaTrace *purePeriod() const;

  private:
    void commitElement(const RunElement &e);
    void tryFold();

    std::vector<Chunk> chunks_; ///< frozen sections, oldest first
    /** Actively matching chunk (valid when matching_). Incoming
     * committed elements must equal pattern[pos] or the chunk
     * freezes. */
    Chunk active_;
    size_t activePos_ = 0;
    bool matching_ = false;
    /** Committed elements awaiting a period (when !matching_). */
    VanillaTrace open_;
    size_t nextFoldAttempt_ = kFoldBase;

    uint64_t runTarget_ = 0; ///< in-progress run (runCount_ > 0)
    uint64_t runCount_ = 0;
    bool finished_ = false;

    uint64_t logicalElems_ = 0;
    uint64_t dynCount_ = 0;
    size_t storedElems_ = 0; ///< pattern + open elements held
    bool capped_ = false;
};

/**
 * Incremental branch trace collector: the bounded-memory counterpart
 * of TraceCollector (step B of Algorithm 2 without the raw stream).
 * Tracks the total and peak bytes held across all branch accumulators
 * so the bounded-memory claim is observable per analysis run.
 */
class FoldedTraceCollector
{
  public:
    explicit FoldedTraceCollector(sim::Machine &machine,
                                  bool crypto_only = true);

    /**
     * Detached collector: nothing is probed automatically; the caller
     * feeds pre-filtered branch outcomes through onBranch(). This is
     * the fused pipeline's entry point — batch consumers replay the
     * exact append sequence the machine-probe constructor produces.
     */
    FoldedTraceCollector() = default;

    /** Record one dynamic branch outcome (identical bookkeeping to
     * the machine-probe path; the caller applies any crypto filter). */
    void
    onBranch(uint64_t pc, uint64_t target)
    {
        FoldedTrace &t = traces_[pc];
        uint64_t before = t.heldBytes();
        t.append(target);
        held_ += t.heldBytes() - before;
        if (held_ > peak_)
            peak_ = held_;
    }

    /** Commit trailing runs on every branch; call after the run. */
    void finish();

    /** Folded traces keyed by static branch PC (after finish()). */
    const std::map<uint64_t, FoldedTrace> &traces() const
    {
        return traces_;
    }

    /** Move the traces out (the collector is spent afterwards). */
    std::map<uint64_t, FoldedTrace> take() { return std::move(traces_); }

    /** Bytes currently held across all accumulators. */
    uint64_t heldBytes() const { return held_; }
    /** Peak of heldBytes() over the whole run. */
    uint64_t peakHeldBytes() const { return peak_; }

  private:
    std::map<uint64_t, FoldedTrace> traces_;
    uint64_t held_ = 0;
    uint64_t peak_ = 0;
};

} // namespace cassandra::core

#endif // CASSANDRA_CORE_BRANCH_TRACE_HH
