#include "core/system.hh"

namespace cassandra::core {

System::System(Workload workload) : workload_(std::move(workload)) {}

const TraceGenResult &
System::traces()
{
    if (!traces_)
        traces_ = generateTraces(workload_);
    return *traces_;
}

const uarch::TimingTrace &
System::timingTrace()
{
    if (!trace_)
        trace_ = uarch::recordTrace(workload_, /*which=*/2);
    return *trace_;
}

ExperimentResult
System::run(uarch::Scheme scheme)
{
    SimConfig config;
    config.scheme = scheme;
    return run(config);
}

ExperimentResult
System::run(uarch::Scheme scheme, const uarch::CoreParams &params)
{
    SimConfig config;
    config.scheme = scheme;
    config.core = params;
    return run(config);
}

ExperimentResult
System::run(const SimConfig &config)
{
    const uarch::Scheme scheme = config.scheme;
    const uarch::TimingTrace &base = timingTrace();

    // ProSpeCT schemes need the taint pre-pass; run it on a copy so
    // other schemes see the pristine trace.
    const bool needs_taint = scheme == uarch::Scheme::Prospect ||
        scheme == uarch::Scheme::CassandraProspect;

    const TraceImage *image = nullptr;
    if (uarch::schemeIsCassandra(scheme))
        image = &traces().image;

    uarch::OooCore core(config, workload_.program, image);
    ExperimentResult result;
    if (needs_taint && !workload_.secretRegions.empty()) {
        uarch::TimingTrace tainted = base;
        uarch::annotateTaint(tainted, workload_.program,
                             workload_.secretRegions);
        result.stats = core.run(tainted);
    } else {
        result.stats = core.run(base);
    }

    if (core.btuUnit())
        result.btu = core.btuUnit()->stats();
    result.bpu = core.tage().stats();
    const auto &mem = core.memory();
    result.caches.l1iAccesses = mem.l1i().stats().accesses;
    result.caches.l1iMisses = mem.l1i().stats().misses;
    result.caches.l1dAccesses = mem.l1d().stats().accesses;
    result.caches.l1dMisses = mem.l1d().stats().misses;
    result.caches.l2Accesses = mem.l2().stats().accesses;
    result.caches.l2Misses = mem.l2().stats().misses;
    result.caches.l3Accesses = mem.l3().stats().accesses;
    result.caches.l3Misses = mem.l3().stats().misses;
    return result;
}

bool
System::verifyOutput() const
{
    if (!workload_.check)
        return true;
    sim::Machine machine(workload_.program);
    if (workload_.setInput)
        workload_.setInput(machine, 2);
    auto res = machine.run(workload_.maxDynInsts);
    if (!res.halted)
        return false;
    return workload_.check(machine);
}

} // namespace cassandra::core
