#include "core/system.hh"

#include <stdexcept>

namespace cassandra::core {

System::System(Workload workload) : workload_(std::move(workload)) {}

System::System(AnalyzedWorkload::Ptr artifact)
{
    if (!artifact)
        throw std::invalid_argument("System needs an artifact");
    workload_ = artifact->workload();
    artifact_ = std::move(artifact);
}

const AnalyzedWorkload::Ptr &
System::artifact()
{
    if (!artifact_)
        artifact_ = AnalyzedWorkload::analyze(workload_);
    return artifact_;
}

const TraceGenResult &
System::traces()
{
    return artifact()->traces();
}

const uarch::TimingTrace &
System::timingTrace()
{
    return artifact()->timingTrace();
}

ExperimentResult
System::run(uarch::Scheme scheme)
{
    SimConfig config;
    config.scheme = scheme;
    return run(config);
}

ExperimentResult
System::run(uarch::Scheme scheme, const uarch::CoreParams &params)
{
    SimConfig config;
    config.scheme = scheme;
    config.core = params;
    return run(config);
}

ExperimentResult
System::run(const SimConfig &config)
{
    return Simulation(artifact()).run(config);
}

bool
System::verifyOutput() const
{
    if (artifact_)
        return artifact_->verifyOutput();
    if (!workload_.check)
        return true;
    sim::Machine machine(workload_.program);
    if (workload_.setInput)
        workload_.setInput(machine, 2);
    auto res = machine.run(workload_.maxDynInsts);
    if (!res.halted)
        return false;
    return workload_.check(machine);
}

} // namespace cassandra::core
