#include "core/trace_image.hh"

#include <utility>

namespace cassandra::core {

void
TraceImage::add(const BranchTrace &trace)
{
    HintInfo hint;
    hint.singleTarget = trace.singleTarget;
    hint.shortTrace = trace.shortTrace;
    hint.targetPc = trace.singleTargetPc;
    hint.traceOffset = static_cast<uint32_t>(traceBytes_);
    hints_[trace.branchPc] = hint;
    if (!trace.singleTarget) {
        traces_[trace.branchPc] = trace;
        // Serialized layout: 4-byte header (element/pattern counts) +
        // bit-packed pattern and trace elements, byte-rounded.
        traceBytes_ += 4 + (trace.storageBits() + 7) / 8;
    }
}

void
TraceImage::restore(std::map<uint64_t, HintInfo> hints,
                    std::map<uint64_t, BranchTrace> traces,
                    size_t trace_bytes)
{
    hints_ = std::move(hints);
    traces_ = std::move(traces);
    traceBytes_ = trace_bytes;
}

const HintInfo *
TraceImage::hint(uint64_t pc) const
{
    auto it = hints_.find(pc);
    return it == hints_.end() ? nullptr : &it->second;
}

const BranchTrace *
TraceImage::trace(uint64_t pc) const
{
    auto it = traces_.find(pc);
    return it == traces_.end() ? nullptr : &it->second;
}

} // namespace cassandra::core
