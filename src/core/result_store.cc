#include "core/result_store.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#if !defined(_WIN32)
#define CASSANDRA_POSIX_STAT 1
#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

#include "core/byte_io.hh"
#include "core/serialize.hh"
#include "core/trace_stream.hh"

namespace cassandra::core {

namespace {

constexpr char storeMagic[8] = {'C', 'A', 'S', 'S', 'R', 'S', '1', '\n'};

/** FNV-1a, the same scheme the artifact fingerprints use. */
struct Fnv
{
    uint64_t hash = 1469598103934665603ull;

    void
    mix(uint64_t v)
    {
        for (int i = 0; i < 8; i++) {
            hash ^= (v >> (8 * i)) & 0xff;
            hash *= 1099511628211ull;
        }
    }
};

void
mixCacheParams(Fnv &fnv, const uarch::CacheParams &c)
{
    fnv.mix(c.sizeBytes);
    fnv.mix(c.lineBytes);
    fnv.mix(c.ways);
    fnv.mix(c.latency);
}

/**
 * Parse + verify one entry. Returns false on a key mismatch (a hash
 * collision or an overwritten file); throws on corrupt bytes or a
 * stale version, exactly like the other container readers.
 */
bool
parseEntry(const std::vector<uint8_t> &bytes, const ResultStoreKey &key,
           ExperimentResult &out)
{
    ByteReader r(bytes);
    for (char expected : storeMagic) {
        if (r.u8() != static_cast<uint8_t>(expected))
            throw ArtifactFormatError(
                "not a result-store entry (bad magic)");
    }
    const uint32_t version = r.u32();
    if (version != resultStoreVersion)
        throw ArtifactFormatError(
            "result-store entry has version " + std::to_string(version) +
            ", expected " + std::to_string(resultStoreVersion));
    const uint64_t workload_fp = r.u64();
    const std::string scheme = r.str();
    const uint64_t config_hash = r.u64();
    const uint32_t counters = r.u32();
    if (counters != experimentResultCounterCount())
        throw ArtifactFormatError(
            "result-store entry records " + std::to_string(counters) +
            " counters, expected " +
            std::to_string(experimentResultCounterCount()));
    if (workload_fp != key.workloadFingerprint ||
        scheme != uarch::schemeName(key.scheme) ||
        config_hash != key.configHash)
        return false;
    out = unpackExperimentResult(r);
    if (!r.done())
        throw std::invalid_argument(
            "trailing bytes in result-store entry");
    return true;
}

std::vector<uint8_t>
packEntry(const ResultStoreKey &key, const ExperimentResult &result)
{
    ByteWriter w;
    for (char c : storeMagic)
        w.u8(static_cast<uint8_t>(c));
    w.u32(resultStoreVersion);
    w.u64(key.workloadFingerprint);
    w.str(uarch::schemeName(key.scheme));
    w.u64(key.configHash);
    w.u32(static_cast<uint32_t>(experimentResultCounterCount()));
    packExperimentResult(w, result);
    return w.take();
}

} // namespace

namespace {

uint64_t
hashSimConfig(const SimConfig &config, bool include_btu)
{
    Fnv fnv;
    const uarch::CoreParams &c = config.core;
    fnv.mix(c.fetchWidth);
    fnv.mix(c.commitWidth);
    fnv.mix(c.issueWidth);
    fnv.mix(c.robSize);
    fnv.mix(c.iqSize);
    fnv.mix(c.lqSize);
    fnv.mix(c.sqSize);
    fnv.mix(c.intRegs);
    fnv.mix(c.frontendDepth);
    fnv.mix(c.decodeRedirect);
    fnv.mix(c.redirectPenalty);
    fnv.mix(c.numAlu);
    fnv.mix(c.numMul);
    fnv.mix(c.numLsu);
    fnv.mix(c.aluLatency);
    fnv.mix(c.mulLatency);
    fnv.mix(c.storeLatency);
    mixCacheParams(fnv, c.l1i);
    mixCacheParams(fnv, c.l1d);
    mixCacheParams(fnv, c.l2);
    mixCacheParams(fnv, c.l3);
    fnv.mix(c.memLatency);
    if (include_btu) {
        fnv.mix(c.btuFlushPeriod);
        fnv.mix(config.btu.sets);
        fnv.mix(config.btu.ways);
        fnv.mix(config.btu.fillLatency);
    }
    return fnv.hash;
}

} // namespace

uint64_t
canonicalSimConfigHash(const SimConfig &config)
{
    return hashSimConfig(config, true);
}

uint64_t
canonicalSimConfigHash(const SimConfig &config, uarch::Scheme scheme)
{
    return hashSimConfig(config, uarch::schemeUsesBtu(scheme));
}

ResultStoreKey
resultStoreKey(const Workload &workload, uarch::Scheme scheme,
               const SimConfig &config)
{
    ResultStoreKey key;
    key.workloadFingerprint = workloadFingerprint(workload);
    key.scheme = scheme;
    key.configHash = canonicalSimConfigHash(config, scheme);
    return key;
}

uint64_t
ResultStore::keyHash(const ResultStoreKey &key)
{
    Fnv fnv;
    fnv.mix(resultStoreVersion);
    fnv.mix(key.workloadFingerprint);
    for (const char *p = uarch::schemeName(key.scheme); *p; p++)
        fnv.mix(static_cast<uint64_t>(*p));
    fnv.mix(key.configHash);
    return fnv.hash;
}

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        throw std::invalid_argument(
            "result store needs a directory");
    ensureDirectories(dir_);
}

std::string
ResultStore::entryPath(const ResultStoreKey &key) const
{
    char name[24];
    std::snprintf(name, sizeof(name), "%016llx",
                  static_cast<unsigned long long>(keyHash(key)));
    return dir_ + "/" + name + ".cr";
}

bool
ResultStore::lookup(const ResultStoreKey &key, ExperimentResult &out)
{
    const std::string path = entryPath(key);
    std::vector<uint8_t> bytes;
    try {
        bytes = readFileBytes(path, "result-store entry");
    } catch (const std::exception &) {
        // Not stored yet (or unreadable): a plain miss.
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    try {
        if (parseEntry(bytes, key, out)) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        // A well-formed entry for a *different* key: a 64-bit hash
        // collision or a clobbered file. Evict it — the store() after
        // re-simulation rewrites the slot for this key.
    } catch (const std::exception &) {
        // Corrupt, truncated or version-stale: evict and re-simulate.
    }
    std::remove(path.c_str());
    evictions_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void
ResultStore::store(const ResultStoreKey &key,
                   const ExperimentResult &result)
{
    static std::atomic<uint64_t> sequence{0};
    const std::string path = entryPath(key);
    const std::string tmp = path + ".tmp-" + processUniqueSuffix() +
        "-" + std::to_string(sequence.fetch_add(1));
    writeFileBytes(tmp, packEntry(key, result));
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error(
            "cannot commit result-store entry " + path);
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t
ResultStore::peekCycles(const ResultStoreKey &key) const
{
    try {
        const std::vector<uint8_t> bytes =
            readFileBytes(entryPath(key), "result-store entry");
        ExperimentResult result;
        if (parseEntry(bytes, key, result))
            return result.stats.cycles;
    } catch (const std::exception &) {
        // The cost model falls back to the static estimate.
    }
    return 0;
}

uint64_t
ResultStore::gc(uint64_t max_bytes)
{
#if defined(CASSANDRA_POSIX_STAT)
    struct Entry
    {
        std::string path;
        uint64_t size = 0;
        int64_t stamp = 0; ///< atime (LRU) with mtime fallback
    };
    std::vector<Entry> entries;
    uint64_t total = 0;

    DIR *dir = opendir(dir_.c_str());
    if (!dir)
        return 0;
    while (struct dirent *ent = readdir(dir)) {
        const std::string name = ent->d_name;
        if (name == "." || name == "..")
            continue;
        const std::string path = dir_ + "/" + name;
        // A dead writer's temp file is garbage, never an entry: a
        // live writer's rename would win any race with this unlink.
        if (name.find(".tmp-") != std::string::npos) {
            const size_t at = name.find(".tmp-") + 5;
            const size_t dash = name.find('-', at);
            const long pid = std::strtol(
                name.substr(at, dash == std::string::npos
                                    ? std::string::npos
                                    : dash - at)
                    .c_str(),
                nullptr, 10);
            errno = 0;
            if (pid > 0 && ::kill(static_cast<pid_t>(pid), 0) != 0 &&
                errno == ESRCH)
                std::remove(path.c_str());
            continue;
        }
        if (name.size() <= 3 ||
            name.compare(name.size() - 3, 3, ".cr") != 0)
            continue;
        struct stat st;
        if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode))
            continue;
        Entry e;
        e.path = path;
        e.size = static_cast<uint64_t>(st.st_size);
        e.stamp = st.st_atime > 0
            ? static_cast<int64_t>(st.st_atime)
            : static_cast<int64_t>(st.st_mtime);
        total += e.size;
        entries.push_back(std::move(e));
    }
    closedir(dir);

    if (total <= max_bytes)
        return 0;
    // Oldest access first; equal stamps (coarse atime granularity)
    // break on path so concurrent GC passes pick the same victims.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.stamp != b.stamp ? a.stamp < b.stamp
                                            : a.path < b.path;
              });
    uint64_t evicted = 0;
    for (const Entry &e : entries) {
        if (total <= max_bytes)
            break;
        std::remove(e.path.c_str());
        total -= e.size;
        evicted++;
    }
    gcEvictions_.fetch_add(evicted, std::memory_order_relaxed);
    return evicted;
#else
    (void)max_bytes;
    return 0;
#endif
}

ResultStore::Stats
ResultStore::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.stores = stores_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.gcEvictions = gcEvictions_.load(std::memory_order_relaxed);
    return s;
}

} // namespace cassandra::core
