/**
 * @file
 * Bit-exact serialization of branch traces into data pages.
 *
 * This is the wire format Algorithm 2 embeds in the binary and the BTU
 * fill path reads: a small header (pattern / trace element counts and
 * flags) followed by bit-packed 20-bit pattern elements and 32-bit
 * trace elements at the Figure 4 field widths. The simulator normally
 * passes decoded structures around for speed; this module exists to
 * pin down the storage format, validate the bit-width accounting and
 * support the round-trip property tests.
 */

#ifndef CASSANDRA_CORE_SERIALIZE_HH
#define CASSANDRA_CORE_SERIALIZE_HH

#include <cstdint>
#include <vector>

#include "core/trace_format.hh"
#include "core/trace_image.hh"

namespace cassandra::core {

/** Pack a multi-target branch trace into its data-page bytes. */
std::vector<uint8_t> packTrace(const BranchTrace &trace);

/**
 * Decode a data-page image back into a trace.
 *
 * @param bytes packed image from packTrace
 * @param branch_pc the branch the trace belongs to (offsets are
 *        PC-relative)
 */
BranchTrace unpackTrace(const std::vector<uint8_t> &bytes,
                        uint64_t branch_pc);

/** Exact packed size in bytes (header + bit-packed payload). */
size_t packedTraceBytes(const BranchTrace &trace);

/** Pack a 14-bit hint word (Figure: single-target, offset, short). */
uint16_t packHint(const HintInfo &hint, uint64_t branch_pc);

} // namespace cassandra::core

#endif // CASSANDRA_CORE_SERIALIZE_HH
