/**
 * @file
 * Bit-exact serialization of branch traces into data pages.
 *
 * This is the wire format Algorithm 2 embeds in the binary and the BTU
 * fill path reads: a small header (pattern / trace element counts and
 * flags) followed by bit-packed 20-bit pattern elements and 32-bit
 * trace elements at the Figure 4 field widths. The simulator normally
 * passes decoded structures around for speed; this module exists to
 * pin down the storage format, validate the bit-width accounting and
 * support the round-trip property tests.
 *
 * On top of the per-branch wire format, this module snapshots whole
 * AnalyzedWorkload artifacts (magic "CASSAW4\n" + format version):
 * workload name + program fingerprint, which analysis phases ran, the
 * Algorithm 2 results (when that phase ran) and the recorded timing
 * trace. Reloading resolves the workload by name (normally through
 * WorkloadRegistry::global().resolver()), verifies the version and
 * fingerprint so outdated or stale artifacts fail loudly with typed
 * errors (ArtifactFormatError / ArtifactStaleError from
 * core/trace_stream.hh — cache layers evict such files instead of
 * silently re-analyzing around them), and relinks the timing trace
 * against the rebuilt program — repeated sweeps skip analysis
 * entirely.
 *
 * Snapshots are stream-aware: a whole-mode artifact inlines its ops
 * as CASSTF2-codec frames (delta + zig-zag varint with per-frame raw
 * fallback — the same codec trace stream files use, typically ~7x
 * smaller than the historical 24 B/op section), while a streamed
 * artifact embeds its trace *stream file* (CASSTF1/2, typically
 * delta-compressed) by chunked copy — saving and loading never
 * materialize the op vector. Writers emit CASSAW4; readers accept
 * CASSAW3 (raw 24 B/op inline ops) and CASSAW4, while the older
 * CASSAW1/2 revisions raise the typed eviction error.
 * loadAnalyzedWorkload extracts an embedded stream back to a trace
 * file and rehydrates straight into stream mode, validating both the
 * snapshot's workload fingerprint and the stream's own program
 * fingerprint. The snapshotIoStats() counters make the "no
 * materialization" guarantee observable: a streamed save/load round
 * trip moves stream bytes but zero inline ops.
 *
 * The module also defines the CASSCR1 cell-result set: the partial
 * `Experiment` a shard worker hands back to the coordinator (one
 * CellResult per global cell index). SubprocessShardExecutor merges
 * these sets into the final result vector byte-identically to an
 * in-process run.
 */

#ifndef CASSANDRA_CORE_SERIALIZE_HH
#define CASSANDRA_CORE_SERIALIZE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/analyzed_workload.hh"
#include "core/byte_io.hh"
#include "core/experiment.hh"
#include "core/trace_format.hh"
#include "core/trace_image.hh"
#include "core/trace_stream.hh"

namespace cassandra::core {

/**
 * Container format version written for AnalyzedWorkload snapshots.
 * Bumped on every incompatible layout change; loaders additionally
 * accept artifactMinReadVersion..artifactFormatVersion and reject
 * anything else with ArtifactFormatError so stale caches evict
 * instead of drifting.
 */
constexpr uint32_t artifactFormatVersion = 4;

/** Oldest snapshot version loaders still read (CASSAW3: raw inline
 * ops instead of CASSTF2-codec frames; stream sections identical). */
constexpr uint32_t artifactMinReadVersion = 3;

/** Pack a multi-target branch trace into its data-page bytes. */
std::vector<uint8_t> packTrace(const BranchTrace &trace);

/**
 * Decode a data-page image back into a trace.
 *
 * @param bytes packed image from packTrace
 * @param branch_pc the branch the trace belongs to (offsets are
 *        PC-relative)
 */
BranchTrace unpackTrace(const std::vector<uint8_t> &bytes,
                        uint64_t branch_pc);

/** Exact packed size in bytes (header + bit-packed payload). */
size_t packedTraceBytes(const BranchTrace &trace);

/** Pack a 14-bit hint word (Figure: single-target, offset, short). */
uint16_t packHint(const HintInfo &hint, uint64_t branch_pc);

// ---------------------------------------------------------------------
// AnalyzedWorkload snapshots (analyze once, reload forever)
// ---------------------------------------------------------------------

/** Structural fingerprint of a program (guards stale artifacts). */
uint64_t programFingerprint(const ir::Program &program);

/**
 * Fingerprint of everything hashable that shapes a workload's runs:
 * the program, maxDynInsts, secret regions and the sandbox fraction.
 * Caveat: setInput/check are closures and cannot be hashed — a
 * change to input *data* that leaves the program identical is not
 * detected; delete stale snapshot directories after such edits.
 */
uint64_t workloadFingerprint(const Workload &workload);

/**
 * Snapshot a full analysis artifact into bytes. `name` is the
 * resolver (registry) name stored for reloading; empty uses
 * Workload::name, which differs from the registry spelling for
 * parameterized entries like "synthetic/chacha20/75".
 */
std::vector<uint8_t> packAnalyzedWorkload(const AnalyzedWorkload &aw,
                                          const std::string &name = "");

/**
 * Rebuild an artifact from packAnalyzedWorkload bytes. The workload
 * is rebuilt by name through the resolver and its program must match
 * the stored fingerprint. Phases absent from the snapshot (e.g. the
 * trace image of a baseline-only sweep) stay demand-driven on the
 * rebuilt artifact. A snapshot of a streamed artifact rehydrates into
 * stream mode: its embedded trace stream is extracted to a fresh file
 * under `stream_dir` (empty = defaultTraceStreamDir()) owned by the
 * returned artifact.
 * @throws ArtifactFormatError on bad magic or a version mismatch,
 *         ArtifactStaleError on a fingerprint mismatch,
 *         std::invalid_argument on corrupt bytes (and whatever the
 *         resolver throws on unknown names).
 */
AnalyzedWorkload::Ptr
unpackAnalyzedWorkload(const std::vector<uint8_t> &bytes,
                       const AnalysisCache::Resolver &resolver,
                       const std::string &stream_dir = "");

/**
 * packAnalyzedWorkload straight to a file (throws on I/O errors).
 * Streamed artifacts embed their trace stream file by chunked copy —
 * the op vector is never materialized in memory.
 */
void saveAnalyzedWorkload(const AnalyzedWorkload &aw,
                          const std::string &path,
                          const std::string &name = "");

/**
 * Load + unpack an artifact file. Streamed snapshots are extracted by
 * chunked copy into a trace file under `stream_dir` (empty =
 * defaultTraceStreamDir()) and rehydrate straight into stream mode —
 * the whole trace is never resident.
 */
AnalyzedWorkload::Ptr
loadAnalyzedWorkload(const std::string &path,
                     const AnalysisCache::Resolver &resolver,
                     const std::string &stream_dir = "");

/**
 * Process-wide snapshot I/O counters: ops written/read through the
 * inline (whole-mode) trace section and bytes moved through embedded
 * stream sections. The stream-aware save/load paths are *observably*
 * zero-materialization: a streamed round trip leaves inlineOpsWritten
 * and inlineOpsRead untouched.
 */
struct SnapshotIoStats
{
    uint64_t inlineOpsWritten = 0;
    uint64_t inlineOpsRead = 0;
    uint64_t streamBytesCopied = 0;
};

SnapshotIoStats snapshotIoStats();

// ---------------------------------------------------------------------
// Shard cell-result sets (CASSCR1)
// ---------------------------------------------------------------------

/** One executed cell plus its global index in the coordinator's
 * cell plan (the unit a shard worker reports back). */
struct IndexedCellResult
{
    uint32_t index = 0;
    CellResult cell;
};

/** Serialize a partial cell-result set (magic "CASSCR1\n"). Every
 * counter of every cell is stored, so a merged report is
 * byte-identical to an in-process run. */
std::vector<uint8_t>
packCellResults(const std::vector<IndexedCellResult> &cells);

/**
 * Parse CASSCR1 bytes.
 * @throws ArtifactFormatError on bad magic or version,
 *         std::invalid_argument on truncated/corrupt bytes (unknown
 *         scheme names included).
 */
std::vector<IndexedCellResult>
unpackCellResults(const std::vector<uint8_t> &bytes);

/** packCellResults straight to a file (throws on I/O errors). */
void saveCellResults(const std::vector<IndexedCellResult> &cells,
                     const std::string &path);

/** Load + unpack a CASSCR1 file (throws like unpackCellResults). */
std::vector<IndexedCellResult>
loadCellResults(const std::string &path);

/**
 * Number of u64 counters in an ExperimentResult (the CASSCR1 fixed
 * field list). Containers embedding counter blocks (shard result
 * sets, the result store) record this count and treat a mismatch as
 * a stale format — a counter added to the simulator must not be
 * silently replayed as zero from old entries.
 */
size_t experimentResultCounterCount();

/** Append every counter of `result` in the CASSCR1 field order. */
void packExperimentResult(ByteWriter &w, const ExperimentResult &result);

/** Read experimentResultCounterCount() u64 counters back (CASSCR1
 * field order; throws std::invalid_argument when truncated). */
ExperimentResult unpackExperimentResult(ByteReader &r);

} // namespace cassandra::core

#endif // CASSANDRA_CORE_SERIALIZE_HH
