#include "core/analyzed_workload.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/serialize.hh"
#include "core/trace_stream.hh"

namespace cassandra::core {

namespace {

std::atomic<uint64_t> analysis_runs{0};
std::atomic<uint64_t> phase_timing_runs{0};
std::atomic<uint64_t> phase_image_runs{0};
std::atomic<uint64_t> phase_taint_runs{0};

/** AnalysisFusion::Auto resolution, from the environment once. */
bool
fusionDefault()
{
    static const bool on = [] {
        const char *e = std::getenv("CASSANDRA_ANALYSIS_FUSION");
        if (!e)
            return true;
        std::string v(e);
        for (char &c : v)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        return v != "0" && v != "off" && v != "reference";
    }();
    return on;
}

/** Fused-pass consumer writing chunks into a trace stream file. */
class StreamWriteConsumer final : public BatchConsumer
{
  public:
    explicit StreamWriteConsumer(TraceStreamWriter &writer)
        : writer_(&writer)
    {
    }

    void
    consume(const AnalysisChunk &chunk) override
    {
        writer_->appendBatch(chunk.view());
    }

    void
    finish() override
    {
        writer_->finish();
    }

  private:
    TraceStreamWriter *writer_;
};

/**
 * Fused-pass consumer running the incremental taint walk. Bits
 * accumulate in growable words because the fused pass discovers the op
 * count as it goes (there is no counting pre-run to size a bitmap).
 */
class TaintConsumer final : public BatchConsumer
{
  public:
    explicit TaintConsumer(const std::vector<SecretRegion> &regions)
        : walker_(regions)
    {
    }

    void
    consume(const AnalysisChunk &chunk) override
    {
        for (size_t i = 0; i < chunk.size; i++) {
            if (walker_.feed(*chunk.ops.inst[i], chunk.ops.memAddr[i],
                             chunk.ops.crypto[i] != 0)) {
                const uint64_t bit = chunk.baseIndex + i;
                const size_t word = static_cast<size_t>(bit >> 6);
                if (word >= words_.size())
                    words_.resize(word + 1, 0);
                words_[word] |= 1ull << (bit & 63);
            }
        }
    }

    uarch::TaintBitmap
    take(uint64_t num_ops)
    {
        return uarch::TaintBitmap::fromWords(
            static_cast<size_t>(num_ops), std::move(words_));
    }

  private:
    uarch::TaintWalker walker_;
    std::vector<uint64_t> words_;
};

} // namespace

AnalyzedWorkload::AnalyzedWorkload(Workload workload, KmersParams kmers,
                                   TraceMode mode,
                                   uarch::TimingTrace trace,
                                   std::string streamPath,
                                   uint64_t numOps)
    : workload_(std::move(workload)), kmers_(kmers), traceMode_(mode),
      trace_(std::move(trace)), streamPath_(std::move(streamPath)),
      numOps_(numOps)
{
    traceReady_.store(true, std::memory_order_release);
}

AnalyzedWorkload::AnalyzedWorkload(Workload workload,
                                   const AnalyzeOptions &options,
                                   std::string streamPath)
    : workload_(std::move(workload)), kmers_(options.kmers),
      fusion_(options.fusion), traceMode_(options.traceMode),
      streamCompression_(options.compression),
      streamPath_(std::move(streamPath))
{
}

bool
AnalyzedWorkload::fusionEnabled() const
{
    switch (fusion_) {
      case AnalysisFusion::Fused: return true;
      case AnalysisFusion::Reference: return false;
      case AnalysisFusion::Auto: break;
    }
    return fusionDefault();
}

AnalyzedWorkload::~AnalyzedWorkload()
{
    if (streamed() && !streamPath_.empty() &&
        traceReady_.load(std::memory_order_acquire)) {
        // The analysis created the file; releasing the last artifact
        // reference reclaims the disk. Best-effort: also drop the
        // containing directory when this was its last trace.
        std::remove(streamPath_.c_str());
        const size_t slash = streamPath_.rfind('/');
        if (slash != std::string::npos && slash > 0)
            std::remove(streamPath_.substr(0, slash).c_str());
    }
}

AnalyzedWorkload::Ptr
AnalyzedWorkload::analyze(Workload workload, const AnalyzeOptions &options)
{
    analysis_runs.fetch_add(1, std::memory_order_relaxed);

    // The artifact is constructed without recording anything: the
    // trace (and every later phase) materializes demand-driven, so a
    // sweep whose cells all replay from the result store never pays
    // for analysis. Only the stream path is fixed eagerly — it names
    // the artifact's on-disk identity.
    std::string path;
    if (options.traceMode == TraceMode::Stream) {
        const std::string dir = options.streamDir.empty()
            ? defaultTraceStreamDir()
            : options.streamDir;
        ensureDirectories(dir);
        path = traceStreamPath(dir, workload.name,
                               programFingerprint(workload.program));
    }
    Ptr artifact(new AnalyzedWorkload(std::move(workload), options,
                                      std::move(path)));
    artifact->ensurePhases(options.phases);
    return artifact;
}

void
AnalyzedWorkload::ensureTrace() const
{
    ensureTraceWith(0);
}

void
AnalyzedWorkload::ensureTraceWith(AnalysisPhaseMask extra) const
{
    if (traceReady_.load(std::memory_order_acquire))
        return;
    std::call_once(traceOnce_, [this, extra] {
        phase_timing_runs.fetch_add(1, std::memory_order_relaxed);
        if (!fusionEnabled()) {
            // Reference passes: count-then-record into the AoS trace
            // plus SoA mirror (whole), or the scalar sink into the
            // stream writer. Kept as the oracle the fused path is
            // byte-compared against.
            if (traceMode_ == TraceMode::Stream) {
                TraceStreamWriter writer(
                    streamPath_, programFingerprint(workload_.program),
                    traceStreamDefaultFrameOps, streamCompression_);
                numOps_ = uarch::recordTrace(
                    workload_, /*which=*/2,
                    [&](const uarch::TimingOp &op) {
                        writer.append(op);
                    });
                writer.finish();
            } else {
                // Record the AoS trace and its SoA replay mirror in
                // one pass; every TraceSpanSource then shares the
                // mirror with no transpose step.
                numOps_ = uarch::recordTrace(workload_, /*which=*/2,
                                             trace_, soaMirror_);
                soaReady_.store(true, std::memory_order_release);
            }
            traceReady_.store(true, std::memory_order_release);
            return;
        }

        // Fused single pass: one machine run records the trace (SoA
        // chunks retained in whole mode, streamed to disk in stream
        // mode) with no counting pre-run, and any fusable pending
        // phase consumes the same chunks as they are produced.
        std::vector<BatchConsumer *> consumers;
        std::unique_ptr<TraceStreamWriter> writer;
        std::unique_ptr<StreamWriteConsumer> writeConsumer;
        std::unique_ptr<TaintConsumer> taintConsumer;
        if (traceMode_ == TraceMode::Stream) {
            writer = std::make_unique<TraceStreamWriter>(
                streamPath_, programFingerprint(workload_.program),
                traceStreamDefaultFrameOps, streamCompression_);
            writeConsumer =
                std::make_unique<StreamWriteConsumer>(*writer);
            consumers.push_back(writeConsumer.get());
        }
        const bool fuse_taint = (extra & PhaseTaint) != 0 &&
            !taintReady_.load(std::memory_order_acquire) &&
            !workload_.secretRegions.empty();
        if (fuse_taint) {
            taintConsumer =
                std::make_unique<TaintConsumer>(workload_.secretRegions);
            consumers.push_back(taintConsumer.get());
        }
        const FusedPassStats stats = runFusedOpPass(
            workload_, /*which=*/2, consumers, {},
            streamed() ? nullptr : &chunks_);
        numOps_ = stats.numOps;
        if (fuse_taint) {
            taint_ = taintConsumer->take(numOps_);
            phase_taint_runs.fetch_add(1, std::memory_order_relaxed);
            taintReady_.store(true, std::memory_order_release);
        }
        traceReady_.store(true, std::memory_order_release);
    });
}

uint64_t
AnalyzedWorkload::numOps() const
{
    ensureTrace();
    return numOps_;
}

AnalyzedWorkload::Ptr
AnalyzedWorkload::analyze(Workload workload, const KmersParams &params)
{
    AnalyzeOptions options;
    options.kmers = params;
    return analyze(std::move(workload), options);
}

AnalyzedWorkload::Ptr
AnalyzedWorkload::fromParts(Workload workload, TraceGenResult traces,
                            uarch::TimingTrace trace)
{
    const uint64_t ops = trace.size();
    auto *raw = new AnalyzedWorkload(std::move(workload), {},
                                     TraceMode::Whole, std::move(trace),
                                     "", ops);
    // The deserialized image is adopted verbatim: the phase is marked
    // done without running (and without counting) Algorithm 2.
    raw->traces_ = std::move(traces);
    raw->imageReady_.store(true, std::memory_order_release);
    return Ptr(raw);
}

AnalyzedWorkload::Ptr
AnalyzedWorkload::fromParts(Workload workload, uarch::TimingTrace trace)
{
    const uint64_t ops = trace.size();
    return Ptr(new AnalyzedWorkload(std::move(workload), {},
                                    TraceMode::Whole, std::move(trace),
                                    "", ops));
}

AnalyzedWorkload::Ptr
AnalyzedWorkload::fromStreamParts(Workload workload,
                                  std::string streamPath, uint64_t numOps)
{
    return Ptr(new AnalyzedWorkload(std::move(workload), {},
                                    TraceMode::Stream, {},
                                    std::move(streamPath), numOps));
}

AnalyzedWorkload::Ptr
AnalyzedWorkload::fromStreamParts(Workload workload, TraceGenResult traces,
                                  std::string streamPath, uint64_t numOps)
{
    auto *raw = new AnalyzedWorkload(std::move(workload), {},
                                     TraceMode::Stream, {},
                                     std::move(streamPath), numOps);
    raw->traces_ = std::move(traces);
    raw->imageReady_.store(true, std::memory_order_release);
    return Ptr(raw);
}

const TraceGenResult &
AnalyzedWorkload::traces() const
{
    if (!imageReady_.load(std::memory_order_acquire)) {
        std::call_once(imageOnce_, [this] {
            traces_ = generateTraces(workload_, kmers_,
                                     fusionEnabled());
            phase_image_runs.fetch_add(1, std::memory_order_relaxed);
            imageReady_.store(true, std::memory_order_release);
        });
    }
    return traces_;
}

const uarch::TaintBitmap &
AnalyzedWorkload::taintBitmap() const
{
    if (!taintReady_.load(std::memory_order_acquire)) {
        std::call_once(taintOnce_, [this] {
            // A concurrent fused recording pass may compute the bitmap
            // while this thread blocks on the trace; settle the trace
            // first, then re-check before walking.
            ensureTrace();
            if (taintReady_.load(std::memory_order_acquire))
                return;
            if (!workload_.secretRegions.empty()) {
                auto src = openOpSource();
                taint_ = uarch::computeTaintBitmap(
                    *src, workload_.secretRegions, numOps_);
                phase_taint_runs.fetch_add(1,
                                           std::memory_order_relaxed);
            }
            taintReady_.store(true, std::memory_order_release);
        });
    }
    return taint_;
}

void
AnalyzedWorkload::ensurePhases(AnalysisPhaseMask phases) const
{
    // The taint walk needs the recorded ops anyway, so when both are
    // pending the fused pipeline computes them in one machine run —
    // ensureTraceWith fuses every requested phase that can ride the
    // recording pass; the per-phase ensures below then find their
    // phase already done.
    if (phases & (PhaseTimingTrace | PhaseTaint))
        ensureTraceWith(phases);
    if (phases & PhaseTraceImage)
        traces();
    if (phases & PhaseTaint)
        taintBitmap();
}

const uarch::TimingTrace &
AnalyzedWorkload::timingTrace() const
{
    if (streamed())
        throw std::logic_error(
            "streamed AnalyzedWorkload holds no in-memory timing "
            "trace; iterate openOpSource() instead");
    ensureTrace();
    // Fused analyses keep the trace as SoA chunks; the AoS form is
    // materialized lazily for the few consumers (serialization,
    // tests) that want TimingOp structs.
    std::call_once(aosOnce_, [this] {
        if (chunks_.empty())
            return;
        trace_.reserve(numOps_);
        for (const AnalysisChunk &c : chunks_) {
            for (size_t i = 0; i < c.size; i++) {
                uarch::TimingOp op;
                op.pc = c.ops.pc[i];
                op.memAddr = c.ops.memAddr[i];
                op.nextPc = c.ops.nextPc[i];
                op.inst = c.ops.inst[i];
                op.crypto = c.ops.crypto[i] != 0;
                op.tainted = c.ops.tainted[i] != 0;
                trace_.push_back(op);
            }
        }
    });
    return trace_;
}

std::unique_ptr<uarch::TimingOpSource>
AnalyzedWorkload::openOpSource() const
{
    ensureTrace();
    if (streamed())
        return std::make_unique<TraceCursor>(streamPath_,
                                             workload_.program);
    if (!chunks_.empty())
        return std::make_unique<ChunkSpanSource>(chunks_);
    if (!soaReady_.load(std::memory_order_acquire)) {
        std::call_once(soaOnce_, [this] {
            uarch::buildOpBatchStorage(trace_, soaMirror_);
            soaReady_.store(true, std::memory_order_release);
        });
    }
    return std::make_unique<uarch::TraceSpanSource>(trace_, soaMirror_);
}

bool
AnalyzedWorkload::verifyOutput() const
{
    if (!workload_.check)
        return true;
    sim::Machine machine(workload_.program);
    if (workload_.setInput)
        workload_.setInput(machine, 2);
    auto res = machine.run(workload_.maxDynInsts);
    if (!res.halted) {
        // Previously a silent `false`, indistinguishable from a wrong
        // answer; budget exhaustion is an analysis-setup bug and gets
        // the typed error.
        throw InstructionBudgetError(workload_.name, res.instCount,
                                     "output verification run");
    }
    return workload_.check(machine);
}

uint64_t
AnalyzedWorkload::analysisRuns()
{
    return analysis_runs.load(std::memory_order_relaxed);
}

AnalysisPhaseRuns
AnalyzedWorkload::analysisPhaseRuns()
{
    AnalysisPhaseRuns runs;
    runs.timingTrace = phase_timing_runs.load(std::memory_order_relaxed);
    runs.traceImage = phase_image_runs.load(std::memory_order_relaxed);
    runs.taint = phase_taint_runs.load(std::memory_order_relaxed);
    return runs;
}

Simulation::Simulation(AnalyzedWorkload::Ptr artifact)
    : artifact_(std::move(artifact))
{
    if (!artifact_)
        throw std::invalid_argument("Simulation needs an artifact");
}

ExperimentResult
Simulation::run(const SimConfig &config) const
{
    const AnalyzedWorkload &aw = *artifact_;
    const uarch::Scheme scheme = config.scheme;

    // ProSpeCT schemes consult the per-op taint bitmap; everything
    // else replays the pristine stream.
    const bool needs_taint = scheme == uarch::Scheme::Prospect ||
        scheme == uarch::Scheme::CassandraProspect;

    // Demand-driven Algorithm 2: only Cassandra-family cells touch the
    // trace image, so baseline/SPT sweeps never construct one.
    const TraceImage *image = nullptr;
    if (uarch::schemeIsCassandra(scheme))
        image = &aw.traces().image;

    const uarch::TaintBitmap *taint = nullptr;
    if (needs_taint && !aw.workload().secretRegions.empty())
        taint = &aw.taintBitmap();

    uarch::OooCore core(config, aw.workload().program, image);
    ExperimentResult result;
    // The artifact's storage decides the iteration: whole artifacts
    // replay the in-memory span, streamed artifacts a disk cursor
    // (config.traceMode selects the storage upstream, at analysis).
    auto src = aw.openOpSource();
    result.stats = core.run(*src, taint);

    if (core.btuUnit())
        result.btu = core.btuUnit()->stats();
    result.bpu = core.tage().stats();
    const auto &mem = core.memory();
    result.caches.l1iAccesses = mem.l1i().stats().accesses;
    result.caches.l1iMisses = mem.l1i().stats().misses;
    result.caches.l1dAccesses = mem.l1d().stats().accesses;
    result.caches.l1dMisses = mem.l1d().stats().misses;
    result.caches.l2Accesses = mem.l2().stats().accesses;
    result.caches.l2Misses = mem.l2().stats().misses;
    result.caches.l3Accesses = mem.l3().stats().accesses;
    result.caches.l3Misses = mem.l3().stats().misses;
    return result;
}

ExperimentResult
Simulation::run(uarch::Scheme scheme) const
{
    SimConfig config;
    config.scheme = scheme;
    return run(config);
}

AnalysisCache::AnalysisCache(Resolver resolver, AnalyzeOptions options)
    : resolver_(std::move(resolver)), options_(std::move(options))
{
    if (!resolver_)
        throw std::invalid_argument(
            "AnalysisCache needs a workload resolver");
}

std::string
AnalysisCache::key(const std::string &name)
{
    // Same normalization as WorkloadRegistry lookup, so spelling
    // variants of one entry share one artifact.
    std::string k = name;
    for (char &c : k)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return k;
}

AnalyzedWorkload::Ptr
AnalysisCache::get(const std::string &name, AnalysisPhaseMask phases,
                   TraceMode mode, TraceCompression compression) const
{
    const std::string k = key(name);
    const AnalysisPhaseMask want = options_.phases | phases;
    std::promise<AnalyzedWorkload::Ptr> promise;
    std::shared_future<AnalyzedWorkload::Ptr> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(k);
        if (it != entries_.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            entries_.emplace(k, future);
            owner = true;
        }
    }
    if (!owner) {
        // Blocks (outside the lock) while another thread analyzes.
        AnalyzedWorkload::Ptr artifact = future.get();
        // Phases requested beyond what the first analysis ran are
        // computed demand-driven (exactly once) on the shared value.
        artifact->ensurePhases(want);
        return artifact;
    }
    try {
        AnalyzeOptions options = options_;
        options.phases = want;
        options.traceMode = mode;
        options.compression = compression;
        auto artifact =
            AnalyzedWorkload::analyze(resolver_(name), options);
        promise.set_value(artifact);
        return artifact;
    } catch (...) {
        promise.set_exception(std::current_exception());
        // A failed analysis is not cached: current waiters see the
        // exception, later get() calls may legitimately retry.
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.erase(k);
        throw;
    }
}

AnalyzedWorkload::Ptr
AnalysisCache::get(const std::string &name, AnalysisPhaseMask phases,
                   TraceMode mode) const
{
    return get(name, phases, mode, options_.compression);
}

AnalyzedWorkload::Ptr
AnalysisCache::get(const std::string &name,
                   AnalysisPhaseMask phases) const
{
    return get(name, phases, options_.traceMode);
}

AnalyzedWorkload::Ptr
AnalysisCache::get(const std::string &name) const
{
    return get(name, 0, options_.traceMode);
}

void
AnalysisCache::put(const std::string &name, AnalyzedWorkload::Ptr artifact)
{
    if (!artifact)
        throw std::invalid_argument("AnalysisCache::put: null artifact");
    std::promise<AnalyzedWorkload::Ptr> ready;
    ready.set_value(std::move(artifact));
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[key(name)] = ready.get_future().share();
}

bool
AnalysisCache::contains(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(key(name)) != 0;
}

size_t
AnalysisCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace cassandra::core
