#include "core/analyzed_workload.hh"

#include <atomic>
#include <cctype>
#include <stdexcept>
#include <utility>

namespace cassandra::core {

namespace {

std::atomic<uint64_t> analysis_runs{0};

} // namespace

AnalyzedWorkload::AnalyzedWorkload(Workload workload,
                                   TraceGenResult traces,
                                   uarch::TimingTrace trace)
    : workload_(std::move(workload)), traces_(std::move(traces)),
      trace_(std::move(trace))
{
    if (!workload_.secretRegions.empty()) {
        tainted_ = trace_;
        uarch::annotateTaint(tainted_, workload_.program,
                             workload_.secretRegions);
    }
}

AnalyzedWorkload::Ptr
AnalyzedWorkload::analyze(Workload workload, const KmersParams &params)
{
    analysis_runs.fetch_add(1, std::memory_order_relaxed);
    TraceGenResult traces = generateTraces(workload, params);
    uarch::TimingTrace trace = uarch::recordTrace(workload, /*which=*/2);
    return Ptr(new AnalyzedWorkload(std::move(workload),
                                    std::move(traces), std::move(trace)));
}

AnalyzedWorkload::Ptr
AnalyzedWorkload::fromParts(Workload workload, TraceGenResult traces,
                            uarch::TimingTrace trace)
{
    return Ptr(new AnalyzedWorkload(std::move(workload),
                                    std::move(traces), std::move(trace)));
}

bool
AnalyzedWorkload::verifyOutput() const
{
    if (!workload_.check)
        return true;
    sim::Machine machine(workload_.program);
    if (workload_.setInput)
        workload_.setInput(machine, 2);
    auto res = machine.run(workload_.maxDynInsts);
    if (!res.halted)
        return false;
    return workload_.check(machine);
}

uint64_t
AnalyzedWorkload::analysisRuns()
{
    return analysis_runs.load(std::memory_order_relaxed);
}

Simulation::Simulation(AnalyzedWorkload::Ptr artifact)
    : artifact_(std::move(artifact))
{
    if (!artifact_)
        throw std::invalid_argument("Simulation needs an artifact");
}

ExperimentResult
Simulation::run(const SimConfig &config) const
{
    const AnalyzedWorkload &aw = *artifact_;
    const uarch::Scheme scheme = config.scheme;

    // ProSpeCT schemes replay the taint-annotated variant; everything
    // else sees the pristine trace.
    const bool needs_taint = scheme == uarch::Scheme::Prospect ||
        scheme == uarch::Scheme::CassandraProspect;

    const TraceImage *image = nullptr;
    if (uarch::schemeIsCassandra(scheme))
        image = &aw.traces().image;

    uarch::OooCore core(config, aw.workload().program, image);
    ExperimentResult result;
    if (needs_taint && !aw.workload().secretRegions.empty())
        result.stats = core.run(aw.taintedTrace());
    else
        result.stats = core.run(aw.timingTrace());

    if (core.btuUnit())
        result.btu = core.btuUnit()->stats();
    result.bpu = core.tage().stats();
    const auto &mem = core.memory();
    result.caches.l1iAccesses = mem.l1i().stats().accesses;
    result.caches.l1iMisses = mem.l1i().stats().misses;
    result.caches.l1dAccesses = mem.l1d().stats().accesses;
    result.caches.l1dMisses = mem.l1d().stats().misses;
    result.caches.l2Accesses = mem.l2().stats().accesses;
    result.caches.l2Misses = mem.l2().stats().misses;
    result.caches.l3Accesses = mem.l3().stats().accesses;
    result.caches.l3Misses = mem.l3().stats().misses;
    return result;
}

ExperimentResult
Simulation::run(uarch::Scheme scheme) const
{
    SimConfig config;
    config.scheme = scheme;
    return run(config);
}

AnalysisCache::AnalysisCache(Resolver resolver)
    : resolver_(std::move(resolver))
{
    if (!resolver_)
        throw std::invalid_argument(
            "AnalysisCache needs a workload resolver");
}

std::string
AnalysisCache::key(const std::string &name)
{
    // Same normalization as WorkloadRegistry lookup, so spelling
    // variants of one entry share one artifact.
    std::string k = name;
    for (char &c : k)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return k;
}

AnalyzedWorkload::Ptr
AnalysisCache::get(const std::string &name) const
{
    const std::string k = key(name);
    std::promise<AnalyzedWorkload::Ptr> promise;
    std::shared_future<AnalyzedWorkload::Ptr> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(k);
        if (it != entries_.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            entries_.emplace(k, future);
            owner = true;
        }
    }
    if (!owner) {
        // Blocks (outside the lock) while another thread analyzes.
        return future.get();
    }
    try {
        auto artifact = AnalyzedWorkload::analyze(resolver_(name));
        promise.set_value(artifact);
        return artifact;
    } catch (...) {
        promise.set_exception(std::current_exception());
        // A failed analysis is not cached: current waiters see the
        // exception, later get() calls may legitimately retry.
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.erase(k);
        throw;
    }
}

void
AnalysisCache::put(const std::string &name, AnalyzedWorkload::Ptr artifact)
{
    if (!artifact)
        throw std::invalid_argument("AnalysisCache::put: null artifact");
    std::promise<AnalyzedWorkload::Ptr> ready;
    ready.set_value(std::move(artifact));
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[key(name)] = ready.get_future().share();
}

bool
AnalysisCache::contains(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(key(name)) != 0;
}

size_t
AnalysisCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace cassandra::core
