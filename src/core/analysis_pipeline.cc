#include "core/analysis_pipeline.hh"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "sim/machine.hh"

namespace cassandra::core {

namespace {

std::atomic<uint64_t> fused_passes{0};

/** Crypto flag per static instruction — the same relink table
 * TraceCursor builds, so fused relinking matches the cursor's. */
std::vector<uint8_t>
cryptoTable(const ir::Program &prog)
{
    std::vector<uint8_t> table(prog.size());
    for (size_t idx = 0; idx < table.size(); idx++)
        table[idx] = prog.isCryptoPc(ir::Program::pcOf(idx)) ? 1 : 0;
    return table;
}

/** Fill the inst/crypto/tainted columns from the pc column. Executed
 * pcs were validated by Machine::step before the probe fired, so no
 * range check is needed (unlike the cursor, which reads from disk). */
void
relinkChunk(AnalysisChunk &chunk, const ir::Program &prog,
            const std::vector<uint8_t> &crypto)
{
    const ir::Inst *insts = prog.insts.data();
    for (size_t i = 0; i < chunk.size; i++) {
        const size_t idx = static_cast<size_t>(
            (chunk.ops.pc[i] - ir::Program::codeBase) / ir::instBytes);
        chunk.ops.inst[i] = insts + idx;
        chunk.ops.crypto[i] = crypto[idx];
        chunk.ops.tainted[i] = 0;
    }
}

/**
 * The bounded chunk ring between the machine run and the consumers.
 * Inline mode degenerates to a direct call in submit(); Threaded mode
 * runs `process` on one consumer thread in submission order, recycling
 * storage through a free list (unless chunks are retained, in which
 * case storage is never recycled and acquire() never stalls — the
 * retained set holds every chunk regardless of queue depth).
 */
class ChunkPipeline
{
  public:
    using Process = std::function<void(AnalysisChunk &)>;

    ChunkPipeline(const AnalysisPipelineOptions &options, Process process,
                  std::vector<AnalysisChunk> *retain)
        : process_(std::move(process)), retain_(retain),
          chunkOps_(options.chunkOps ? options.chunkOps : 1),
          ringChunks_(options.ringChunks ? options.ringChunks : 1)
    {
        using Mode = AnalysisPipelineOptions::Mode;
        threaded_ = options.mode == Mode::Threaded ||
            (options.mode == Mode::Auto &&
             std::thread::hardware_concurrency() >= 2);
        if (threaded_)
            consumer_ = std::thread([this] { consumerLoop(); });
    }

    ~ChunkPipeline()
    {
        // Abandoned pipeline (an exception is unwinding the producer):
        // stop the consumer without processing the backlog.
        if (consumer_.joinable()) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                aborted_ = true;
                done_ = true;
            }
            consumerCv_.notify_all();
            consumer_.join();
        }
    }

    bool threaded() const { return threaded_; }
    uint64_t producerStalls() const { return producerStalls_; }

    /** A chunk ready for the probe: columns sized chunkOps_, size 0,
     * baseIndex at the current stream position. Blocks in Threaded
     * mode while every ring chunk is in flight. */
    AnalysisChunk
    acquire()
    {
        AnalysisChunk chunk;
        if (!threaded_) {
            if (!free_.empty()) {
                chunk = std::move(free_.back());
                free_.pop_back();
            }
        } else {
            std::unique_lock<std::mutex> lock(mutex_);
            if (error_)
                std::rethrow_exception(error_);
            if (!free_.empty()) {
                chunk = std::move(free_.back());
                free_.pop_back();
            } else if (retain_ || allocated_ < ringChunks_) {
                allocated_++;
            } else {
                producerStalls_++;
                producerCv_.wait(lock, [this] {
                    return !free_.empty() || error_ != nullptr;
                });
                if (error_)
                    std::rethrow_exception(error_);
                chunk = std::move(free_.back());
                free_.pop_back();
            }
        }
        chunk.ops.resize(chunkOps_);
        chunk.size = 0;
        chunk.baseIndex = nextBase_;
        return chunk;
    }

    /** Hand a filled chunk (size set by the caller) downstream. */
    void
    submit(AnalysisChunk chunk)
    {
        nextBase_ += chunk.size;
        if (!threaded_) {
            processOne(chunk);
            return;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.push_back(std::move(chunk));
        }
        consumerCv_.notify_one();
    }

    /** Wait for the backlog to drain, join the consumer, and rethrow
     * any consumer-side exception. The pipeline is spent afterwards. */
    void
    drain()
    {
        if (threaded_) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                done_ = true;
            }
            consumerCv_.notify_all();
            consumer_.join();
            if (error_)
                std::rethrow_exception(error_);
        }
        free_.clear();
    }

  private:
    void
    processOne(AnalysisChunk &chunk)
    {
        process_(chunk);
        if (retain_)
            retain_->push_back(std::move(chunk));
        else if (!threaded_)
            free_.push_back(std::move(chunk));
    }

    void
    consumerLoop()
    {
        for (;;) {
            AnalysisChunk chunk;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                consumerCv_.wait(lock, [this] {
                    return !queue_.empty() || done_;
                });
                if (aborted_ || (queue_.empty() && done_))
                    return;
                chunk = std::move(queue_.front());
                queue_.pop_front();
            }
            try {
                process_(chunk);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                error_ = std::current_exception();
                producerCv_.notify_all();
                return;
            }
            if (retain_) {
                // Single consumer, FIFO queue: retention preserves
                // dynamic order without touching the lock.
                retain_->push_back(std::move(chunk));
            } else {
                std::lock_guard<std::mutex> lock(mutex_);
                free_.push_back(std::move(chunk));
                producerCv_.notify_one();
            }
        }
    }

    Process process_;
    std::vector<AnalysisChunk> *retain_;
    size_t chunkOps_;
    size_t ringChunks_;
    bool threaded_ = false;

    uint64_t nextBase_ = 0;
    uint64_t producerStalls_ = 0;

    // Threaded-mode state (mutex-guarded); free_ doubles as the
    // inline-mode recycle list (producer-only, no locking).
    std::mutex mutex_;
    std::condition_variable producerCv_;
    std::condition_variable consumerCv_;
    std::deque<AnalysisChunk> queue_;
    std::vector<AnalysisChunk> free_;
    size_t allocated_ = 0;
    bool done_ = false;
    bool aborted_ = false;
    std::exception_ptr error_;
    std::thread consumer_;
};

} // namespace

FusedPassStats
runFusedOpPass(const Workload &workload, int which,
               const std::vector<BatchConsumer *> &consumers,
               const AnalysisPipelineOptions &options,
               std::vector<AnalysisChunk> *retain)
{
    fused_passes.fetch_add(1, std::memory_order_relaxed);
    const ir::Program &prog = workload.program;
    const std::vector<uint8_t> crypto = cryptoTable(prog);

    FusedPassStats stats;
    ChunkPipeline pipeline(
        options,
        [&](AnalysisChunk &chunk) {
            relinkChunk(chunk, prog, crypto);
            for (BatchConsumer *consumer : consumers)
                consumer->consume(chunk);
        },
        retain);
    stats.threaded = pipeline.threaded();

    sim::Machine machine(prog);
    if (workload.setInput)
        workload.setInput(machine, which);

    sim::Machine::BatchProbe probe;
    AnalysisChunk cur = pipeline.acquire();
    auto attach = [&] {
        probe.pc = cur.ops.pc.data();
        probe.memAddr = cur.ops.memAddr.data();
        probe.nextPc = cur.ops.nextPc.data();
        probe.cap = cur.ops.pc.size();
        probe.size = 0;
    };
    attach();
    probe.full = [&] {
        cur.size = probe.size;
        stats.numOps += cur.size;
        stats.chunks++;
        pipeline.submit(std::move(cur));
        cur = pipeline.acquire();
        attach();
    };
    machine.opBatchProbe = &probe;

    auto res = machine.run(workload.maxDynInsts);
    if (!res.halted)
        throw InstructionBudgetError(workload.name, res.instCount,
                                     "timing trace");
    if (probe.size) {
        cur.size = probe.size;
        stats.numOps += cur.size;
        stats.chunks++;
        pipeline.submit(std::move(cur));
    }
    pipeline.drain();
    for (BatchConsumer *consumer : consumers)
        consumer->finish();
    stats.producerStalls = pipeline.producerStalls();
    return stats;
}

FusedBranchRun
runFusedBranchPass(const Workload &workload, int which, bool crypto_only,
                   const AnalysisPipelineOptions &options)
{
    fused_passes.fetch_add(1, std::memory_order_relaxed);
    const ir::Program &prog = workload.program;
    const std::vector<uint8_t> crypto = cryptoTable(prog);

    FusedBranchRun out;
    FoldedTraceCollector collector;
    ChunkPipeline pipeline(
        options,
        [&](AnalysisChunk &chunk) {
            // Branch chunks carry pc/nextPc only; the crypto filter
            // indexes the relink table directly (every recorded pc was
            // executed, hence valid).
            for (size_t i = 0; i < chunk.size; i++) {
                const uint64_t pc = chunk.ops.pc[i];
                if (crypto_only) {
                    const size_t idx = static_cast<size_t>(
                        (pc - ir::Program::codeBase) / ir::instBytes);
                    if (!crypto[idx])
                        continue;
                }
                collector.onBranch(pc, chunk.ops.nextPc[i]);
            }
        },
        nullptr);
    out.stats.threaded = pipeline.threaded();

    sim::Machine machine(prog);
    if (workload.setInput)
        workload.setInput(machine, which);

    sim::Machine::BatchProbe probe;
    AnalysisChunk cur = pipeline.acquire();
    auto attach = [&] {
        probe.pc = cur.ops.pc.data();
        probe.nextPc = cur.ops.nextPc.data();
        probe.cap = cur.ops.pc.size();
        probe.size = 0;
    };
    attach();
    probe.full = [&] {
        cur.size = probe.size;
        out.stats.numOps += cur.size;
        out.stats.chunks++;
        pipeline.submit(std::move(cur));
        cur = pipeline.acquire();
        attach();
    };
    machine.branchBatchProbe = &probe;

    auto res = machine.run(workload.maxDynInsts);
    if (!res.halted)
        throw InstructionBudgetError(workload.name, res.instCount,
                                     "Algorithm 2 analysis run");
    if (probe.size) {
        cur.size = probe.size;
        out.stats.numOps += cur.size;
        out.stats.chunks++;
        pipeline.submit(std::move(cur));
    }
    pipeline.drain();
    collector.finish();
    out.stats.producerStalls = pipeline.producerStalls();
    out.heldBytes = collector.heldBytes();
    out.peakBytes = collector.peakHeldBytes();
    out.traces = collector.take();
    return out;
}

bool
ChunkSpanSource::settle()
{
    while (chunk_ < chunks_->size() && pos_ >= (*chunks_)[chunk_].size) {
        chunk_++;
        pos_ = 0;
    }
    return chunk_ < chunks_->size();
}

const uarch::TimingOp *
ChunkSpanSource::next()
{
    if (!settle())
        return nullptr;
    const AnalysisChunk &c = (*chunks_)[chunk_];
    op_.pc = c.ops.pc[pos_];
    op_.memAddr = c.ops.memAddr[pos_];
    op_.nextPc = c.ops.nextPc[pos_];
    op_.inst = c.ops.inst[pos_];
    op_.crypto = c.ops.crypto[pos_] != 0;
    op_.tainted = c.ops.tainted[pos_] != 0;
    pos_++;
    return &op_;
}

size_t
ChunkSpanSource::nextBatch(uarch::OpBatch &out, size_t max_ops)
{
    if (max_ops == 0 || !settle())
        return 0;
    const AnalysisChunk &c = (*chunks_)[chunk_];
    const size_t n = std::min(max_ops, c.size - pos_);
    out = c.ops.view(pos_, n);
    pos_ += n;
    return n;
}

uint64_t
fusedAnalysisPasses()
{
    return fused_passes.load(std::memory_order_relaxed);
}

} // namespace cassandra::core
