#include "core/branch_trace.hh"

namespace cassandra::core {

VanillaTrace
toVanilla(const RawTrace &raw)
{
    VanillaTrace out;
    for (uint64_t target : raw) {
        if (!out.empty() && out.back().target == target)
            out.back().count++;
        else
            out.push_back({target, 1});
    }
    return out;
}

RawTrace
expandVanilla(const VanillaTrace &vanilla)
{
    RawTrace out;
    for (const auto &e : vanilla)
        for (uint64_t i = 0; i < e.count; i++)
            out.push_back(e.target);
    return out;
}

uint64_t
vanillaDynamicCount(const VanillaTrace &vanilla)
{
    uint64_t n = 0;
    for (const auto &e : vanilla)
        n += e.count;
    return n;
}

TraceCollector::TraceCollector(sim::Machine &machine, bool crypto_only)
{
    const ir::Program &prog = machine.program();
    machine.branchProbe = [this, &prog, crypto_only](
        uint64_t pc, uint64_t target, const ir::Inst &) {
        if (crypto_only && !prog.isCryptoPc(pc))
            return;
        raw_[pc].push_back(target);
    };
}

std::map<uint64_t, VanillaTrace>
TraceCollector::vanilla() const
{
    std::map<uint64_t, VanillaTrace> out;
    for (const auto &[pc, raw] : raw_)
        out.emplace(pc, toVanilla(raw));
    return out;
}

// ---------------------------------------------------------------------
// FoldedTrace
// ---------------------------------------------------------------------

void
FoldedTrace::append(uint64_t target)
{
    dynCount_++;
    if (runCount_ && target == runTarget_) {
        runCount_++;
        return;
    }
    if (runCount_)
        commitElement({runTarget_, runCount_});
    runTarget_ = target;
    runCount_ = 1;
}

void
FoldedTrace::finish()
{
    if (runCount_) {
        commitElement({runTarget_, runCount_});
        runCount_ = 0;
    }
    finished_ = true;
}

void
FoldedTrace::commitElement(const RunElement &e)
{
    logicalElems_++;
    if (capped_)
        return;

    if (matching_) {
        if (e == active_.pattern[activePos_]) {
            if (++activePos_ == active_.pattern.size()) {
                activePos_ = 0;
                active_.repeats++;
            }
            return;
        }
        // Mismatch: freeze the chunk at its current partial prefix and
        // start a fresh flat buffer with the diverging element.
        active_.partial = activePos_;
        chunks_.push_back(std::move(active_));
        active_ = {};
        activePos_ = 0;
        matching_ = false;
        nextFoldAttempt_ = kFoldBase;
    }

    open_.push_back(e);
    storedElems_++;
    if (storedElems_ > kMaxHeldElements) {
        capped_ = true;
        chunks_ = {};
        active_ = {};
        open_ = {};
        matching_ = false;
        activePos_ = 0;
        storedElems_ = 0;
        return;
    }
    if (open_.size() >= nextFoldAttempt_)
        tryFold();
}

void
FoldedTrace::tryFold()
{
    // Smallest period of the committed buffer via the KMP failure
    // function (p = L - border(L); the period property s[i] == s[i+p]
    // implies s[i] == s[i mod p], so a non-dividing period still folds
    // with a partial prefix).
    const size_t L = open_.size();
    std::vector<size_t> fail(L + 1, 0);
    size_t k = 0;
    for (size_t i = 1; i < L; i++) {
        while (k && !(open_[i] == open_[k]))
            k = fail[k];
        if (open_[i] == open_[k])
            k++;
        fail[i + 1] = k;
    }
    const size_t p = L - fail[L];
    if (2 * p > L) {
        // Not periodic (yet): retry when the buffer doubles.
        nextFoldAttempt_ *= 2;
        return;
    }
    active_.pattern.assign(open_.begin(),
                           open_.begin() + static_cast<long>(p));
    active_.repeats = L / p;
    active_.partial = 0;
    activePos_ = L % p;
    matching_ = true;
    storedElems_ -= L - p;
    open_ = {};
    nextFoldAttempt_ = kFoldBase;
}

uint64_t
FoldedTrace::frontTarget() const
{
    if (!chunks_.empty())
        return chunks_.front().pattern.front().target;
    if (matching_)
        return active_.pattern.front().target;
    if (!open_.empty())
        return open_.front().target;
    return runTarget_;
}

uint64_t
FoldedTrace::heldBytes() const
{
    return storedElems_ * sizeof(RunElement) +
           chunks_.size() * sizeof(Chunk) + sizeof(FoldedTrace);
}

bool
FoldedTrace::sameAs(const FoldedTrace &o) const
{
    // Folding is a deterministic function of the committed-element
    // sequence, so structural equality is logical equality.
    if (capped_ || o.capped_)
        return false;
    return logicalElems_ == o.logicalElems_ && dynCount_ == o.dynCount_ &&
           matching_ == o.matching_ && activePos_ == o.activePos_ &&
           active_.repeats == o.active_.repeats &&
           active_.pattern == o.active_.pattern && chunks_ == o.chunks_ &&
           open_ == o.open_;
}

const VanillaTrace *
FoldedTrace::purePeriod() const
{
    if (!capped_ && chunks_.empty() && matching_ && activePos_ == 0 &&
        open_.empty() && !active_.pattern.empty())
        return &active_.pattern;
    return nullptr;
}

VanillaTrace
FoldedTrace::expand() const
{
    VanillaTrace out;
    out.reserve(logicalElems_);
    auto emitChunk = [&out](const Chunk &c, size_t partial) {
        for (uint64_t r = 0; r < c.repeats; r++)
            out.insert(out.end(), c.pattern.begin(), c.pattern.end());
        out.insert(out.end(), c.pattern.begin(),
                   c.pattern.begin() + static_cast<long>(partial));
    };
    for (const Chunk &c : chunks_)
        emitChunk(c, c.partial);
    if (matching_)
        emitChunk(active_, activePos_);
    out.insert(out.end(), open_.begin(), open_.end());
    return out;
}

// ---------------------------------------------------------------------
// FoldedTraceCollector
// ---------------------------------------------------------------------

FoldedTraceCollector::FoldedTraceCollector(sim::Machine &machine,
                                           bool crypto_only)
{
    const ir::Program &prog = machine.program();
    machine.branchProbe = [this, &prog, crypto_only](
        uint64_t pc, uint64_t target, const ir::Inst &) {
        if (crypto_only && !prog.isCryptoPc(pc))
            return;
        onBranch(pc, target);
    };
}

void
FoldedTraceCollector::finish()
{
    for (auto &[pc, t] : traces_) {
        uint64_t before = t.heldBytes();
        t.finish();
        held_ += t.heldBytes() - before;
    }
    if (held_ > peak_)
        peak_ = held_;
}

} // namespace cassandra::core
