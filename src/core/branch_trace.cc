#include "core/branch_trace.hh"

namespace cassandra::core {

VanillaTrace
toVanilla(const RawTrace &raw)
{
    VanillaTrace out;
    for (uint64_t target : raw) {
        if (!out.empty() && out.back().target == target)
            out.back().count++;
        else
            out.push_back({target, 1});
    }
    return out;
}

RawTrace
expandVanilla(const VanillaTrace &vanilla)
{
    RawTrace out;
    for (const auto &e : vanilla)
        for (uint64_t i = 0; i < e.count; i++)
            out.push_back(e.target);
    return out;
}

uint64_t
vanillaDynamicCount(const VanillaTrace &vanilla)
{
    uint64_t n = 0;
    for (const auto &e : vanilla)
        n += e.count;
    return n;
}

TraceCollector::TraceCollector(sim::Machine &machine, bool crypto_only)
{
    const ir::Program &prog = machine.program();
    machine.branchProbe = [this, &prog, crypto_only](
        uint64_t pc, uint64_t target, const ir::Inst &) {
        if (crypto_only && !prog.isCryptoPc(pc))
            return;
        raw_[pc].push_back(target);
    };
}

std::map<uint64_t, VanillaTrace>
TraceCollector::vanilla() const
{
    std::map<uint64_t, VanillaTrace> out;
    for (const auto &[pc, raw] : raw_)
        out.emplace(pc, toVanilla(raw));
    return out;
}

} // namespace cassandra::core
