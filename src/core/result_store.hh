/**
 * @file
 * Persistent, content-addressed cache of per-cell simulation results.
 *
 * A finished experiment cell is a pure function of three things: the
 * workload (program + run-shaping parameters), the protection scheme,
 * and the simulation-relevant SimConfig fields. The ResultStore keys
 * each cell by exactly that triple — plus a store format/code version
 * — and persists its 50-counter ExperimentResult to a small on-disk
 * entry, so re-running a sweep replays unchanged cells instead of
 * re-simulating them. Editing one scheme or one workload invalidates
 * only that sliver of the matrix; everything else is a hit.
 *
 * Key derivation
 *   - `workloadFingerprint(Workload)` (core/serialize): FNV-1a over
 *     the program plus maxDynInsts, secret regions and the sandbox
 *     fraction. The setInput/check closures are not hashable — see
 *     the caveat on workloadFingerprint; delete the store after
 *     changing input *data* that leaves the program identical.
 *   - the scheme name (the matrix scheme, which replaces the config's
 *     scheme field per cell).
 *   - `canonicalSimConfigHash(SimConfig)`: FNV-1a over every core and
 *     BTU parameter that feeds the timing model. The report label
 *     (`name`) and the trace storage knobs (`traceMode`,
 *     `traceCompression`) are *excluded*: they are presentation and
 *     storage details with byte-identical cycle results (a CI-
 *     enforced invariant), so "default" and "default-streamed" cells
 *     of the same geometry share one entry.
 *   - `resultStoreVersion`, bumped on any entry-layout or simulator-
 *     semantics change; the counter count is stored per entry as an
 *     extra guard (a counter added to ExperimentResult must not
 *     replay as garbage from old entries).
 *
 * Directory layout: one flat directory, one entry file per key named
 * `<16-hex key hash>.cr` ("CASSRS1\n" magic). The full key components
 * are stored inside each entry and verified on read, so a hash
 * collision degrades to a miss instead of replaying a wrong result.
 *
 * Writes are atomic: entries are written to a process-unique `.tmp`
 * sibling and committed with rename(2), so a crashed or concurrent
 * writer can never leave a torn entry behind. Corrupt, truncated or
 * version-stale entries found by lookup() are evicted (unlinked) and
 * counted, and the cell simply re-simulates.
 *
 * All counters (hits/misses/stores/evictions) are observable through
 * stats() and surface in the run's cache_stats telemetry block.
 */

#ifndef CASSANDRA_CORE_RESULT_STORE_HH
#define CASSANDRA_CORE_RESULT_STORE_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "core/analyzed_workload.hh"
#include "core/sim_config.hh"
#include "core/workload.hh"

namespace cassandra::core {

/**
 * Entry-layout/code version of the store. Bump on any change to the
 * entry format or to simulator semantics that invalidates recorded
 * counters wholesale.
 */
constexpr uint32_t resultStoreVersion = 1;

/**
 * FNV-1a over every simulation-relevant SimConfig field (all core
 * widths/windows/latencies/caches, the BTU geometry and fill latency,
 * the flush period). Excludes `name`, `scheme` (keyed separately),
 * `traceMode` and `traceCompression` — see the file comment.
 */
uint64_t canonicalSimConfigHash(const SimConfig &config);

/**
 * Scheme-aware variant: identical to the 1-arg hash for schemes that
 * use the BTU (`uarch::schemeUsesBtu`), but for all other schemes the
 * BTU geometry/fill latency and the flush period are skipped — the
 * simulator never constructs a BTU for them, so cells that differ
 * only in BTU knobs are byte-identical and share one entry. This is
 * the hash the store key and the coordinator's cell dedup use; the
 * 1-arg form remains the scheme-agnostic reference.
 */
uint64_t canonicalSimConfigHash(const SimConfig &config,
                                uarch::Scheme scheme);

/** The content-address of one cell result. */
struct ResultStoreKey
{
    uint64_t workloadFingerprint = 0;
    uarch::Scheme scheme = uarch::Scheme::UnsafeBaseline;
    uint64_t configHash = 0;
};

/** Key for one planned cell: workload fingerprint + matrix scheme +
 * canonical config hash. */
ResultStoreKey resultStoreKey(const Workload &workload,
                              uarch::Scheme scheme,
                              const SimConfig &config);

/** Persistent on-disk cell-result cache (see file comment). */
class ResultStore
{
  public:
    /** Observable lifetime counters. */
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t stores = 0;
        uint64_t evictions = 0;   ///< corrupt/stale entries unlinked
        uint64_t gcEvictions = 0; ///< entries removed by the size bound
    };

    /**
     * Open (and create, with parents) the store directory.
     * @throws std::runtime_error when the directory cannot be created.
     */
    explicit ResultStore(std::string dir);

    const std::string &dir() const { return dir_; }

    /**
     * Load the entry for `key` into `out`. A well-formed entry whose
     * stored key matches counts a hit; a missing file counts a miss;
     * a corrupt, truncated, version-stale or key-mismatched entry is
     * evicted (unlinked), counts an eviction *and* a miss, and the
     * caller re-simulates.
     */
    bool lookup(const ResultStoreKey &key, ExperimentResult &out);

    /**
     * Persist `result` under `key`: write a process-unique temp file
     * in the store directory, then rename(2) it over the entry path
     * (atomic on POSIX), replacing any previous entry.
     * @throws std::runtime_error on I/O errors.
     */
    void store(const ResultStoreKey &key, const ExperimentResult &result);

    /**
     * Read-only probe for the cost model: like lookup() but counts
     * nothing and never evicts. Returns the recorded cycle count of a
     * valid matching entry, 0 otherwise.
     */
    uint64_t peekCycles(const ResultStoreKey &key) const;

    /** Entry file path of a key (`dir/<16-hex hash>.cr`). */
    std::string entryPath(const ResultStoreKey &key) const;

    /**
     * Bound the store on disk: while the summed size of `.cr` entries
     * exceeds `max_bytes`, evict the least-recently-used entry (atime
     * where the filesystem tracks it, mtime otherwise) — a hit
     * refreshes atime, so hot sweep results survive and abandoned
     * ones age out. Stale `.tmp` droppings of dead writers are
     * removed first and do not count toward the budget. Returns the
     * number of entries evicted (also counted in Stats::gcEvictions).
     */
    uint64_t gc(uint64_t max_bytes);

    /** Combined 64-bit content hash of a key (the entry file name). */
    static uint64_t keyHash(const ResultStoreKey &key);

    Stats stats() const;

  private:
    std::string dir_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> stores_{0};
    std::atomic<uint64_t> evictions_{0};
    std::atomic<uint64_t> gcEvictions_{0};
};

} // namespace cassandra::core

#endif // CASSANDRA_CORE_RESULT_STORE_HH
