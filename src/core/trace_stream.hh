/**
 * @file
 * Chunked on-disk timing traces: fixed-size frames + index.
 *
 * A trace stream file holds the dynamic instruction stream of one
 * workload run (pc, memAddr, nextPc per op — the inst pointer and
 * crypto flag relink from the PC on read), grouped into frames of a
 * fixed op count followed by a frame-offset index and a footer. Two
 * container versions share the header/index/footer layout and differ
 * only in how a frame stores its ops:
 *
 *   CASSTF1 — raw frames, 24 B/op:
 *     "CASSTF1\n" | u32 version=1 | u32 frameOps | u64 fingerprint
 *     | u64 numOps | frames (ops * 24 B each) ...
 *     | index (u64 offset per frame) | u64 indexPos | u64 numFrames
 *
 *   CASSTF2 — compressed frames:
 *     "CASSTF2\n" | u32 version=2 | ... same header fields ...
 *     | frames (u8 kind | u32 payloadBytes | payload) ...
 *     | index | footer as above
 *
 * A CASSTF2 delta frame (kind 1) exploits that a dynamic instruction
 * stream is overwhelmingly sequential: the first op stores pc /
 * memAddr / nextPc as plain varints, every later op stores
 * zig-zag varints of (pc - prev.nextPc), (memAddr - prev.memAddr) and
 * (nextPc - (pc + instBytes)) — all three are zero for straight-line
 * code, so typical ops take 3 bytes instead of 24. Frames stay
 * independently decodable (random access needs no history across
 * frames), and a frame whose delta encoding would not beat 24 B/op is
 * written raw (kind 0), so adversarial streams never grow past CASSTF1
 * plus the 5-byte frame headers.
 *
 * TraceStreamWriter produces either container incrementally (one frame
 * buffer resident, never the whole trace) and fails fast on I/O errors
 * so a disk-full run cannot leave a silently-corrupt index behind;
 * TraceCursor replays both containers as a uarch::TimingOpSource
 * through an mmap-backed view (with sequential madvise and per-frame
 * drop of consumed pages) or a buffered one-frame reader, so peak
 * memory stays at one frame regardless of trace length. The program
 * fingerprint guards stale files exactly like AnalyzedWorkload
 * snapshots guard stale artifacts.
 */

#ifndef CASSANDRA_CORE_TRACE_STREAM_HH
#define CASSANDRA_CORE_TRACE_STREAM_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/sim_config.hh"
#include "ir/program.hh"
#include "uarch/pipeline.hh"

namespace cassandra::core {

/**
 * Base of the evictable artifact-file errors: a cached file raising
 * one of these should be deleted and re-created, not silently
 * re-analyzed around.
 */
class ArtifactError : public std::invalid_argument
{
  public:
    using std::invalid_argument::invalid_argument;
};

/**
 * A persisted artifact (trace stream or AnalyzedWorkload snapshot)
 * with an unrecognized or outdated container format: bad magic, a
 * format-version mismatch, or inconsistent/corrupt framing.
 */
class ArtifactFormatError : public ArtifactError
{
  public:
    using ArtifactError::ArtifactError;
};

/**
 * A persisted artifact whose fingerprint does not match the workload
 * it is being loaded against (the binary changed since analysis).
 */
class ArtifactStaleError : public ArtifactError
{
  public:
    using ArtifactError::ArtifactError;
};

/** Bytes per raw serialized op (pc, memAddr, nextPc). */
constexpr size_t traceStreamOpBytes = 24;

/** Default ops per frame (raw 24 B/op -> 768 KiB frames). */
constexpr uint32_t traceStreamDefaultFrameOps = 1u << 15;

/**
 * Encode one CASSTF2 frame from raw 24 B/op bytes: delta + zig-zag
 * varint when that wins, raw fallback otherwise. Returns the complete
 * frame (u8 kind | u32 payloadBytes | payload). Exposed for the
 * format tests; the writer uses it per frame.
 */
std::vector<uint8_t> encodeTraceFrame(const std::vector<uint8_t> &raw_ops);

/**
 * Decode one CASSTF2 frame back into raw 24 B/op bytes.
 * @param frame the full frame as written by encodeTraceFrame
 * @param frame_len bytes available at `frame`
 * @param num_ops expected op count of the frame
 * @throws ArtifactFormatError on truncated or inconsistent frames
 */
std::vector<uint8_t> decodeTraceFrame(const uint8_t *frame,
                                      size_t frame_len, size_t num_ops);

/** decodeTraceFrame into a caller-owned buffer of at least
 * num_ops * traceStreamOpBytes bytes (the replay hot path reuses one
 * frame buffer instead of allocating per frame). */
void decodeTraceFrameInto(const uint8_t *frame, size_t frame_len,
                          size_t num_ops, uint8_t *out);

/**
 * Decode one CASSTF2 frame directly into structure-of-arrays replay
 * buffers: parallel pc/memAddr/nextPc arrays of num_ops elements each.
 * Produces exactly the values decodeTraceFrameInto would, without the
 * intermediate 24 B/op AoS form — this is the batched replay path's
 * decoder (TraceCursor::nextBatch).
 */
void decodeTraceFrameSoA(const uint8_t *frame, size_t frame_len,
                         size_t num_ops, uint64_t *pc, uint64_t *mem_addr,
                         uint64_t *next_pc);

/** Incremental writer of a chunked trace stream file. */
class TraceStreamWriter
{
  public:
    /**
     * @param path output file (created/truncated)
     * @param program_fingerprint core::programFingerprint of the
     *        program the trace belongs to
     * @param frame_ops ops per frame (>0)
     * @param compression None writes CASSTF1, Delta writes CASSTF2
     */
    TraceStreamWriter(
        const std::string &path, uint64_t program_fingerprint,
        uint32_t frame_ops = traceStreamDefaultFrameOps,
        TraceCompression compression = TraceCompression::Delta);
    ~TraceStreamWriter();

    TraceStreamWriter(const TraceStreamWriter &) = delete;
    TraceStreamWriter &operator=(const TraceStreamWriter &) = delete;

    /** Append one op (buffered; flushed per frame). */
    void append(const uarch::TimingOp &op);

    /** Append a whole batch (column-wise; same bytes as op-by-op). */
    void appendBatch(const uarch::OpBatch &batch);

    /**
     * Flush the tail frame, make the data frames durable (flush +
     * fsync — the single durability seam), then write index + footer
     * and patch the header. Ordering contract: the index/footer are
     * never issued to the filesystem before every data frame they
     * describe is durable, so a crash at any point leaves a file
     * whose footer is either absent (fails loudly at open) or
     * describes fully-written frames — never footer-valid-but-
     * truncated data. Idempotent; throws on I/O errors.
     */
    void finish();

    /**
     * Test-only fault-injection hook, called by finish() exactly at
     * the durability seam: after the data frames are flushed and
     * synced, before any index/footer byte is issued. Tests snapshot
     * or abandon the file here to model a crash mid-pass. Not
     * thread-safe; reset to nullptr after use.
     */
    static void (*finishSeamHook)(const std::string &path);

    uint64_t numOps() const { return numOps_; }
    const std::string &path() const { return path_; }
    TraceCompression compression() const { return compression_; }

  private:
    void flushFrame();
    void checkStream(const char *what) const;

    std::string path_;
    std::ofstream file_;
    uint32_t frameOps_;
    TraceCompression compression_;
    uint64_t numOps_ = 0;
    std::vector<uint8_t> frame_;
    std::vector<uint64_t> frameOffsets_;
    bool finished_ = false;
};

/**
 * Replays a trace stream file (either container version) as a
 * TimingOpSource, relinking each op against `program` (which must
 * outlive the cursor and match the stored fingerprint).
 */
class TraceCursor final : public uarch::TimingOpSource
{
  public:
    enum class Backing
    {
        Auto,     ///< mmap where available, else buffered
        Mmap,     ///< throws std::runtime_error if mmap is unavailable
        Buffered, ///< one-frame read buffer
    };

    TraceCursor(const std::string &path, const ir::Program &program,
                Backing backing = Backing::Auto);
    ~TraceCursor() override;

    TraceCursor(const TraceCursor &) = delete;
    TraceCursor &operator=(const TraceCursor &) = delete;

    const uarch::TimingOp *next() override;

    /**
     * Native batch path: frames decode straight into structure-of-
     * arrays buffers (decodeTraceFrameSoA) and batches are served as
     * zero-copy views into the decoded frame, so a batch never crosses
     * a frame boundary. Relinking (inst pointer + crypto flag) uses a
     * per-static-instruction table instead of the per-op range scan.
     *
     * Decode-ahead: while the caller replays frame N's batches, a
     * background worker decodes + relinks frame N+1 into a second SoA
     * buffer (its own file handle, so no I/O state is shared), and the
     * frame boundary becomes a buffer swap instead of a synchronous
     * decode. The served values are byte-identical to the synchronous
     * path — the worker runs the same decodeFrame — and frames are
     * consumed strictly in order either way. Controlled by the
     * CASSANDRA_STREAM_PREFETCH environment variable: "on"/"1" forces
     * it, "off"/"0" disables it, unset/"auto" enables it on hosts with
     * >= 2 hardware threads. Observable through prefetchBatches() /
     * prefetchStalls().
     */
    size_t nextBatch(uarch::OpBatch &out, size_t max_ops) override;

    uint64_t numOps() const { return numOps_; }
    bool mmapped() const { return map_ != nullptr; }
    /** Container version of the open file (1 = CASSTF1 raw frames,
     * 2 = CASSTF2 compressed frames). */
    uint32_t formatVersion() const { return version_; }

    /** True once this cursor's decode-ahead worker is running. */
    bool prefetching() const { return prefetch_ != nullptr; }

    /** Process-wide count of frames served from the decode-ahead
     * buffer (ready or awaited) across all cursors. */
    static uint64_t prefetchBatches();
    /** Process-wide count of frame waits on an in-flight decode (the
     * replay outran the prefetcher). */
    static uint64_t prefetchStalls();

  private:
    struct Prefetch; ///< decode-ahead worker (trace_stream.cc)

    void loadFrame(uint64_t frame);
    void loadFrameSoA(uint64_t frame);
    /** loadFrameSoA through the prefetcher when enabled (starting it
     * lazily on the first batched frame). */
    void ensureFrameSoA(uint64_t frame);
    void maybeStartPrefetch();
    /**
     * Decode + relink one frame into `out`, reading through the
     * caller-owned stream/scratch (the mmap view is shared read-only).
     * Touches no mutable cursor state, so the prefetch worker and the
     * main thread can each run it concurrently on their own buffers.
     */
    void decodeFrame(uint64_t frame, uarch::OpBatchStorage &out,
                     std::ifstream &file,
                     std::vector<uint8_t> &scratch) const;
    void dropConsumedFrames(uint64_t upto);
    const uint8_t *opBytes(uint64_t index);
    uint64_t frameOps(uint64_t frame) const;
    uint64_t frameEnd(uint64_t frame) const;

    const ir::Program &program_;
    std::string path_;
    std::ifstream file_;
    uint32_t version_ = 0;
    uint64_t numOps_ = 0;
    uint32_t frameOps_ = 0;
    uint64_t numFrames_ = 0;
    uint64_t indexPos_ = 0;
    std::vector<uint64_t> frameOffsets_;

    // mmap backing
    const uint8_t *map_ = nullptr;
    size_t mapLen_ = 0;
    uint64_t droppedFrames_ = 0; ///< frames already madvise()d away

    // one decoded/buffered frame (all backings for v2; non-mmap for v1)
    std::vector<uint8_t> frame_;
    std::vector<uint8_t> scratch_; ///< encoded v2 frame (buffered read)
    uint64_t loadedFrame_ = ~0ull;

    // batch path: one frame decoded SoA + relinked, served as views
    uarch::OpBatchStorage soa_;
    uint64_t soaFrame_ = ~0ull;
    std::vector<uint8_t> cryptoByIndex_; ///< crypto flag per static inst

    // decode-ahead worker (lazily started by the first batched frame)
    std::unique_ptr<Prefetch> prefetch_;
    bool prefetchChecked_ = false;

    uint64_t pos_ = 0;
    uarch::TimingOp op_;
};

/**
 * Create `dir` and any missing parents (mkdir -p). Throws
 * std::runtime_error when a component cannot be created.
 */
void ensureDirectories(const std::string &dir);

/**
 * A string unique to this process on every platform: the pid where
 * available, a cached random token otherwise. Used wherever two
 * concurrent processes must never resolve to the same file
 * (defaultTraceStreamDir, rehydrated snapshot streams).
 */
std::string processUniqueSuffix();

/**
 * Directory for trace stream files when the caller names none:
 * $TMPDIR (or /tmp) / cassandra-traces-<processUniqueSuffix()>, so
 * concurrent runs never share — and never clobber — each other's
 * trace files.
 */
std::string defaultTraceStreamDir();

/**
 * Remove sibling scratch directories abandoned by dead processes:
 * every entry of `root` named `<prefix><pid>` or `<prefix><pid>-...`
 * whose pid no longer exists is deleted recursively (the convention
 * makeScratchDir/defaultTraceStreamDir-style paths follow, where the
 * suffix starts with processUniqueSuffix()). Entries of live
 * processes — including this one — are untouched, as are names whose
 * suffix is not pid-shaped (random-token platforms). Returns the
 * number of directories removed; removal races with a concurrent
 * sweeper are ignored. Coordinators and agents call this on startup
 * so crashed predecessors cannot leak scratch forever.
 */
unsigned sweepStaleProcessDirs(const std::string &root,
                               const std::string &prefix);

/**
 * Delete `path` recursively (rm -rf, symlinks not followed). Missing
 * paths and removal races are ignored; no-op on platforms without
 * POSIX directory I/O.
 */
void removeDirectoryTree(const std::string &path);

/**
 * Stream file path for a workload: the sanitized name ('/' and other
 * non-file characters become '_') plus the program fingerprint in hex.
 * The fingerprint keeps distinct workloads whose names sanitize to the
 * same string (e.g. "synthetic/aes/25" vs "synthetic_aes_25") from
 * silently clobbering each other's trace files.
 */
std::string traceStreamPath(const std::string &dir,
                            const std::string &workload_name,
                            uint64_t program_fingerprint);

} // namespace cassandra::core

#endif // CASSANDRA_CORE_TRACE_STREAM_HH
