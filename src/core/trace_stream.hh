/**
 * @file
 * Chunked on-disk timing traces: fixed-size frames + index.
 *
 * A trace stream file holds the dynamic instruction stream of one
 * workload run at 24 bytes/op (pc, memAddr, nextPc — the inst pointer
 * and crypto flag relink from the PC on read), grouped into fixed-size
 * frames followed by a frame-offset index and a footer:
 *
 *   "CASSTF1\n" | u32 version | u32 frameOps | u64 fingerprint
 *   | u64 numOps | frames... | index (u64 offset per frame)
 *   | u64 indexPos | u64 numFrames
 *
 * TraceStreamWriter produces the file incrementally (one frame buffer
 * resident, never the whole trace); TraceCursor replays it as a
 * uarch::TimingOpSource through an mmap-backed view (with sequential
 * madvise and per-frame drop of consumed pages) or a buffered
 * one-frame reader, so peak memory stays at one frame regardless of
 * trace length. The program fingerprint guards stale files exactly
 * like AnalyzedWorkload snapshots guard stale artifacts.
 */

#ifndef CASSANDRA_CORE_TRACE_STREAM_HH
#define CASSANDRA_CORE_TRACE_STREAM_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/program.hh"
#include "uarch/pipeline.hh"

namespace cassandra::core {

/**
 * Base of the evictable artifact-file errors: a cached file raising
 * one of these should be deleted and re-created, not silently
 * re-analyzed around.
 */
class ArtifactError : public std::invalid_argument
{
  public:
    using std::invalid_argument::invalid_argument;
};

/**
 * A persisted artifact (trace stream or AnalyzedWorkload snapshot)
 * with an unrecognized or outdated container format: bad magic or a
 * format-version mismatch.
 */
class ArtifactFormatError : public ArtifactError
{
  public:
    using ArtifactError::ArtifactError;
};

/**
 * A persisted artifact whose fingerprint does not match the workload
 * it is being loaded against (the binary changed since analysis).
 */
class ArtifactStaleError : public ArtifactError
{
  public:
    using ArtifactError::ArtifactError;
};

/** Bytes per serialized op (pc, memAddr, nextPc). */
constexpr size_t traceStreamOpBytes = 24;

/** Default ops per frame (24 B/op -> 768 KiB frames). */
constexpr uint32_t traceStreamDefaultFrameOps = 1u << 15;

/** Incremental writer of a chunked trace stream file. */
class TraceStreamWriter
{
  public:
    /**
     * @param path output file (created/truncated)
     * @param program_fingerprint core::programFingerprint of the
     *        program the trace belongs to
     * @param frame_ops ops per frame (>0)
     */
    TraceStreamWriter(const std::string &path,
                      uint64_t program_fingerprint,
                      uint32_t frame_ops = traceStreamDefaultFrameOps);
    ~TraceStreamWriter();

    TraceStreamWriter(const TraceStreamWriter &) = delete;
    TraceStreamWriter &operator=(const TraceStreamWriter &) = delete;

    /** Append one op (buffered; flushed per frame). */
    void append(const uarch::TimingOp &op);

    /** Flush the tail frame, write index + footer, patch the header.
     * Idempotent; throws on I/O errors. */
    void finish();

    uint64_t numOps() const { return numOps_; }
    const std::string &path() const { return path_; }

  private:
    void flushFrame();

    std::string path_;
    std::ofstream file_;
    uint32_t frameOps_;
    uint64_t numOps_ = 0;
    std::vector<uint8_t> frame_;
    std::vector<uint64_t> frameOffsets_;
    bool finished_ = false;
};

/**
 * Replays a trace stream file as a TimingOpSource, relinking each op
 * against `program` (which must outlive the cursor and match the
 * stored fingerprint).
 */
class TraceCursor final : public uarch::TimingOpSource
{
  public:
    enum class Backing
    {
        Auto,     ///< mmap where available, else buffered
        Mmap,     ///< throws std::runtime_error if mmap is unavailable
        Buffered, ///< one-frame read buffer
    };

    TraceCursor(const std::string &path, const ir::Program &program,
                Backing backing = Backing::Auto);
    ~TraceCursor() override;

    TraceCursor(const TraceCursor &) = delete;
    TraceCursor &operator=(const TraceCursor &) = delete;

    const uarch::TimingOp *next() override;

    uint64_t numOps() const { return numOps_; }
    bool mmapped() const { return map_ != nullptr; }

  private:
    void loadFrame(uint64_t frame);
    const uint8_t *opBytes(uint64_t index);

    const ir::Program &program_;
    std::ifstream file_;
    uint64_t numOps_ = 0;
    uint32_t frameOps_ = 0;
    uint64_t numFrames_ = 0;
    std::vector<uint64_t> frameOffsets_;

    // mmap backing
    const uint8_t *map_ = nullptr;
    size_t mapLen_ = 0;
    uint64_t droppedFrames_ = 0; ///< frames already madvise()d away

    // buffered backing
    std::vector<uint8_t> frame_;
    uint64_t loadedFrame_ = ~0ull;

    uint64_t pos_ = 0;
    uarch::TimingOp op_;
};

/**
 * Create `dir` and any missing parents (mkdir -p). Throws
 * std::runtime_error when a component cannot be created.
 */
void ensureDirectories(const std::string &dir);

/**
 * Directory for trace stream files when the caller names none:
 * $TMPDIR (or /tmp) / cassandra-traces-<pid>.
 */
std::string defaultTraceStreamDir();

/** Stream file path for a workload name ('/' and other non-file
 * characters become '_'; "synthetic/chacha20/75" ->
 * "<dir>/synthetic_chacha20_75.trace"). */
std::string traceStreamPath(const std::string &dir,
                            const std::string &workload_name);

} // namespace cassandra::core

#endif // CASSANDRA_CORE_TRACE_STREAM_HH
