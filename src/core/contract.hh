/**
 * @file
 * Hardware-software contract machinery (paper Appendix A).
 *
 * The J.K^seq_ct contract trace of a program is the sequence of control
 * flow and memory-address observations produced by sequential
 * execution, each tagged with the crypto bit. Definition 1's crypto
 * control flow trace C is the subtrace of crypto-tagged control flow
 * observations — exactly what the BTU replays. Definition 3 (contract
 * satisfaction) is checked end-to-end in the test suite by comparing
 * hardware observation digests across secret inputs.
 */

#ifndef CASSANDRA_CORE_CONTRACT_HH
#define CASSANDRA_CORE_CONTRACT_HH

#include <vector>

#include "core/workload.hh"
#include "sim/machine.hh"

namespace cassandra::core {

/** Input indices for contract checks: same public parameters, two
 * different secrets. Workloads bind these in setInput. */
inline constexpr int contractInputA = 3;
inline constexpr int contractInputB = 4;

/** Full J.K^seq_ct contract trace of a workload under input which. */
std::vector<sim::Obs> contractTrace(const Workload &workload, int which);

/** Definition 1: crypto control flow subtrace C^seq_ct. */
std::vector<sim::Obs> cryptoCfSubtrace(const std::vector<sim::Obs> &full);

/** Crypto-tagged observations only (control flow + memory). */
std::vector<sim::Obs> cryptoSubtrace(const std::vector<sim::Obs> &full);

/**
 * Constant-time check: the crypto-tagged observation traces under two
 * secret-only input variants must be identical. This is the program
 * property (J.K^seq_ct security) Cassandra assumes.
 */
bool isConstantTime(const Workload &workload);

} // namespace cassandra::core

#endif // CASSANDRA_CORE_CONTRACT_HH
