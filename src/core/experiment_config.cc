#include "core/experiment_config.hh"

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace cassandra::core {

namespace {

// -----------------------------------------------------------------
// Minimal JSON value + recursive-descent parser (no dependencies).
// Supports the full JSON grammar except \uXXXX surrogate pairs,
// which the config schema never needs.
// -----------------------------------------------------------------

struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    get(const std::string &key) const
    {
        for (const auto &[k, v] : object) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        size_t line = 1, col = 1;
        for (size_t i = 0; i < pos_ && i < text_.size(); i++) {
            if (text_[i] == '\n') {
                line++;
                col = 1;
            } else {
                col++;
            }
        }
        throw std::invalid_argument(
            "JSON parse error at line " + std::to_string(line) +
            ", column " + std::to_string(col) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            pos_++;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        pos_++;
    }

    bool
    consume(const char *word)
    {
        size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        char c = peek();
        switch (c) {
          case '{':
            return objectValue();
          case '[':
            return arrayValue();
          case '"':
            return stringValue();
          case 't':
          case 'f':
            return boolValue();
          case 'n':
            if (!consume("null"))
                fail("bad literal");
            return JsonValue{};
          default:
            return numberValue();
        }
    }

    JsonValue
    objectValue()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            pos_++;
            return v;
        }
        for (;;) {
            if (peek() != '"')
                fail("object keys must be strings");
            std::string key = rawString();
            expect(':');
            v.object.emplace_back(std::move(key), value());
            char c = peek();
            if (c == ',') {
                pos_++;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    arrayValue()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            pos_++;
            return v;
        }
        for (;;) {
            v.array.push_back(value());
            char c = peek();
            if (c == ',') {
                pos_++;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    stringValue()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = rawString();
        return v;
    }

    std::string
    rawString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("unterminated escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"':
                  case '\\':
                  case '/':
                    out += e;
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; i++) {
                        char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            fail("bad \\u escape");
                    }
                    if (code > 0x7f)
                        fail("non-ASCII \\u escapes are unsupported");
                    out += static_cast<char>(code);
                    break;
                  }
                  default:
                    fail("unknown escape");
                }
                continue;
            }
            out += c;
        }
        fail("unterminated string");
    }

    JsonValue
    boolValue()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        skipWs();
        if (consume("true"))
            v.boolean = true;
        else if (consume("false"))
            v.boolean = false;
        else
            fail("bad literal");
        return v;
    }

    JsonValue
    numberValue()
    {
        skipWs();
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            pos_++;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            pos_++;
        if (pos_ == start)
            fail("expected a value");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        try {
            size_t used = 0;
            v.number = std::stod(text_.substr(start, pos_ - start), &used);
            if (used != pos_ - start)
                fail("malformed number");
        } catch (const std::exception &) {
            fail("malformed number");
        }
        return v;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

// -----------------------------------------------------------------
// Schema mapping
// -----------------------------------------------------------------

[[noreturn]] void
schemaFail(const std::string &where, const std::string &what)
{
    throw std::invalid_argument("experiment config: " + where + ": " +
                                what);
}

const JsonValue &
expectKind(const JsonValue &v, JsonValue::Kind kind,
           const std::string &where, const char *kind_name)
{
    if (v.kind != kind)
        schemaFail(where, std::string("expected ") + kind_name);
    return v;
}

std::vector<std::string>
stringList(const JsonValue &v, const std::string &where)
{
    expectKind(v, JsonValue::Kind::Array, where, "an array");
    std::vector<std::string> out;
    for (const JsonValue &item : v.array) {
        expectKind(item, JsonValue::Kind::String, where,
                   "an array of strings");
        out.push_back(item.string);
    }
    return out;
}

uint64_t
uintField(const JsonValue &v, const std::string &where, uint64_t max)
{
    expectKind(v, JsonValue::Kind::Number, where,
               "a non-negative integer");
    if (v.number < 0 || v.number != std::floor(v.number) ||
        v.number > static_cast<double>(max))
        schemaFail(where, "value out of range");
    return static_cast<uint64_t>(v.number);
}

void
applyCacheOverrides(uarch::CacheParams &cache, const JsonValue &v,
                    const std::string &where)
{
    expectKind(v, JsonValue::Kind::Object, where, "an object");
    for (const auto &[key, field] : v.object) {
        const std::string at = where + "." + key;
        if (key == "size_bytes")
            cache.sizeBytes = static_cast<uint32_t>(
                uintField(field, at, 1u << 30));
        else if (key == "size_kb")
            cache.sizeBytes = static_cast<uint32_t>(
                uintField(field, at, 1u << 20) * 1024);
        else if (key == "line_bytes")
            cache.lineBytes =
                static_cast<uint32_t>(uintField(field, at, 4096));
        else if (key == "ways")
            cache.ways =
                static_cast<uint32_t>(uintField(field, at, 1024));
        else if (key == "latency")
            cache.latency =
                static_cast<uint32_t>(uintField(field, at, 100000));
        else
            schemaFail(at, "unknown cache key");
    }
}

void
applyCoreOverrides(uarch::CoreParams &core, const JsonValue &v,
                   const std::string &where)
{
    expectKind(v, JsonValue::Kind::Object, where, "an object");
    for (const auto &[key, field] : v.object) {
        const std::string at = where + "." + key;
        auto u32 = [&](uint64_t max) {
            return static_cast<uint32_t>(uintField(field, at, max));
        };
        if (key == "fetch_width")
            core.fetchWidth = u32(64);
        else if (key == "commit_width")
            core.commitWidth = u32(64);
        else if (key == "issue_width")
            core.issueWidth = u32(64);
        else if (key == "rob_size")
            core.robSize = u32(1 << 20);
        else if (key == "iq_size")
            core.iqSize = u32(1 << 20);
        else if (key == "lq_size")
            core.lqSize = u32(1 << 20);
        else if (key == "sq_size")
            core.sqSize = u32(1 << 20);
        else if (key == "int_regs")
            core.intRegs = u32(1 << 20);
        else if (key == "frontend_depth")
            core.frontendDepth = u32(1024);
        else if (key == "decode_redirect")
            core.decodeRedirect = u32(1024);
        else if (key == "redirect_penalty")
            core.redirectPenalty = u32(1024);
        else if (key == "num_alu")
            core.numAlu = u32(64);
        else if (key == "num_mul")
            core.numMul = u32(64);
        else if (key == "num_lsu")
            core.numLsu = u32(64);
        else if (key == "alu_latency")
            core.aluLatency = u32(1024);
        else if (key == "mul_latency")
            core.mulLatency = u32(1024);
        else if (key == "store_latency")
            core.storeLatency = u32(1024);
        else if (key == "mem_latency")
            core.memLatency = u32(100000);
        else if (key == "btu_flush_period")
            core.btuFlushPeriod = uintField(field, at, ~0ull >> 1);
        else if (key == "l1i")
            applyCacheOverrides(core.l1i, field, at);
        else if (key == "l1d")
            applyCacheOverrides(core.l1d, field, at);
        else if (key == "l2")
            applyCacheOverrides(core.l2, field, at);
        else if (key == "l3")
            applyCacheOverrides(core.l3, field, at);
        else
            schemaFail(at, "unknown core key");
    }
}

void
applyBtuOverrides(btu::BtuParams &btu, const JsonValue &v,
                  const std::string &where)
{
    expectKind(v, JsonValue::Kind::Object, where, "an object");
    for (const auto &[key, field] : v.object) {
        const std::string at = where + "." + key;
        if (key == "sets")
            btu.sets = static_cast<size_t>(uintField(field, at, 1 << 20));
        else if (key == "ways")
            btu.ways = static_cast<size_t>(uintField(field, at, 1 << 20));
        else if (key == "fill_latency")
            btu.fillLatency =
                static_cast<unsigned>(uintField(field, at, 1 << 20));
        else
            schemaFail(at, "unknown btu key");
    }
}

TraceMode
parseTraceMode(const JsonValue &v, const std::string &where)
{
    expectKind(v, JsonValue::Kind::String, where, "a string");
    try {
        return traceModeFromName(v.string);
    } catch (const std::invalid_argument &e) {
        schemaFail(where, e.what());
    }
}

TraceCompression
parseTraceCompression(const JsonValue &v, const std::string &where)
{
    expectKind(v, JsonValue::Kind::String, where, "a string");
    try {
        return traceCompressionFromName(v.string);
    } catch (const std::invalid_argument &e) {
        schemaFail(where, e.what());
    }
}

SimConfig
parseSimConfig(const JsonValue &v, size_t index, TraceMode sweep_mode,
               TraceCompression sweep_compression)
{
    const std::string where = "configs[" + std::to_string(index) + "]";
    expectKind(v, JsonValue::Kind::Object, where, "an object");
    SimConfig cfg;
    cfg.traceMode = sweep_mode;
    cfg.traceCompression = sweep_compression;
    for (const auto &[key, field] : v.object) {
        const std::string at = where + "." + key;
        if (key == "name") {
            expectKind(field, JsonValue::Kind::String, at, "a string");
            cfg.name = field.string;
        } else if (key == "core") {
            applyCoreOverrides(cfg.core, field, at);
        } else if (key == "btu") {
            applyBtuOverrides(cfg.btu, field, at);
        } else if (key == "trace_mode") {
            cfg.traceMode = parseTraceMode(field, at);
        } else if (key == "trace_compression") {
            cfg.traceCompression = parseTraceCompression(field, at);
        } else {
            schemaFail(at, "unknown config key");
        }
    }
    return cfg;
}

} // namespace

ExperimentSpec
parseExperimentSpec(const std::string &json)
{
    JsonValue root = JsonParser(json).parse();
    if (root.kind != JsonValue::Kind::Object)
        schemaFail("top level", "expected an object");

    ExperimentSpec spec;
    // The sweep-level trace mode/compression seed every config's
    // fields, so resolve them before the configs array (JSON key order
    // must not matter).
    if (const JsonValue *tm = root.get("trace_mode")) {
        spec.traceMode = parseTraceMode(*tm, "trace_mode");
        spec.traceModeSet = true;
    }
    if (const JsonValue *tc = root.get("trace_compression")) {
        spec.traceCompression =
            parseTraceCompression(*tc, "trace_compression");
        spec.traceCompressionSet = true;
    }
    for (const auto &[key, v] : root.object) {
        if (key == "trace_mode" || key == "trace_compression") {
            // handled above
        } else if (key == "name") {
            expectKind(v, JsonValue::Kind::String, key, "a string");
            spec.name = v.string;
        } else if (key == "workloads") {
            spec.matrix.workloads = stringList(v, key);
        } else if (key == "suites") {
            spec.suites = stringList(v, key);
        } else if (key == "schemes") {
            for (const std::string &name : stringList(v, key))
                spec.matrix.schemes.push_back(
                    uarch::schemeFromName(name));
        } else if (key == "configs") {
            expectKind(v, JsonValue::Kind::Array, key, "an array");
            for (size_t i = 0; i < v.array.size(); i++)
                spec.matrix.configs.push_back(
                    parseSimConfig(v.array[i], i, spec.traceMode,
                                   spec.traceCompression));
        } else if (key == "threads") {
            spec.threads =
                static_cast<unsigned>(uintField(v, key, 1024));
        } else if (key == "report") {
            expectKind(v, JsonValue::Kind::Object, key, "an object");
            for (const auto &[rkey, rv] : v.object) {
                const std::string at = "report." + rkey;
                if (rkey == "format") {
                    expectKind(rv, JsonValue::Kind::String, at,
                               "a string");
                    spec.format = rv.string;
                } else if (rkey == "out") {
                    expectKind(rv, JsonValue::Kind::String, at,
                               "a string");
                    spec.out = rv.string;
                } else if (rkey == "stats_out") {
                    expectKind(rv, JsonValue::Kind::String, at,
                               "a string");
                    spec.statsOut = rv.string;
                } else {
                    schemaFail(at, "unknown report key");
                }
            }
        } else if (key == "execution") {
            expectKind(v, JsonValue::Kind::Object, key, "an object");
            for (const auto &[ekey, ev] : v.object) {
                const std::string at = "execution." + ekey;
                if (ekey == "mode") {
                    expectKind(ev, JsonValue::Kind::String, at,
                               "a string");
                    try {
                        spec.executionMode =
                            executionModeFromName(ev.string);
                    } catch (const std::invalid_argument &e) {
                        schemaFail(at, e.what());
                    }
                    spec.executionModeSet = true;
                } else if (ekey == "shards") {
                    spec.shards = static_cast<unsigned>(
                        uintField(ev, at, 1024));
                    spec.shardsSet = true;
                } else if (ekey == "worker_binary") {
                    expectKind(ev, JsonValue::Kind::String, at,
                               "a string");
                    spec.workerBinary = ev.string;
                } else if (ekey == "scheduler") {
                    expectKind(ev, JsonValue::Kind::String, at,
                               "a string");
                    try {
                        spec.scheduler =
                            shardSchedulerFromName(ev.string);
                    } catch (const std::invalid_argument &e) {
                        schemaFail(at, e.what());
                    }
                    spec.schedulerSet = true;
                } else if (ekey == "dropbox") {
                    expectKind(ev, JsonValue::Kind::String, at,
                               "a string");
                    spec.dropboxDir = ev.string;
                } else if (ekey == "agents") {
                    spec.agents = static_cast<unsigned>(
                        uintField(ev, at, 1024));
                    spec.agentsSet = true;
                } else if (ekey == "task_timeout_ms") {
                    spec.taskTimeoutMs =
                        uintField(ev, at, ~0ull >> 1);
                    spec.taskTimeoutMsSet = true;
                } else {
                    schemaFail(at, "unknown execution key");
                }
            }
        } else if (key == "cache") {
            expectKind(v, JsonValue::Kind::Object, key, "an object");
            for (const auto &[ckey, cv] : v.object) {
                const std::string at = "cache." + ckey;
                if (ckey == "mode") {
                    expectKind(cv, JsonValue::Kind::String, at,
                               "a string");
                    try {
                        spec.cacheMode = cacheModeFromName(cv.string);
                    } catch (const std::invalid_argument &e) {
                        schemaFail(at, e.what());
                    }
                    spec.cacheModeSet = true;
                } else if (ckey == "dir") {
                    expectKind(cv, JsonValue::Kind::String, at,
                               "a string");
                    spec.cacheDir = cv.string;
                } else if (ckey == "gc_mb") {
                    spec.cacheGcMb = uintField(cv, at, 1ull << 32);
                    spec.cacheGcMbSet = true;
                } else {
                    schemaFail(at, "unknown cache key");
                }
            }
        } else if (key == "artifacts") {
            expectKind(v, JsonValue::Kind::Object, key, "an object");
            for (const auto &[akey, av] : v.object) {
                const std::string at = "artifacts." + akey;
                if (akey == "dir") {
                    expectKind(av, JsonValue::Kind::String, at,
                               "a string");
                    spec.artifactDir = av.string;
                } else if (akey == "save") {
                    expectKind(av, JsonValue::Kind::Bool, at,
                               "a boolean");
                    spec.artifactSave = av.boolean;
                } else {
                    schemaFail(at, "unknown artifacts key");
                }
            }
        } else {
            schemaFail(key, "unknown top-level key");
        }
    }

    // A sweep-level stream/compression request must reach the runner
    // even without an explicit configs array (the runner's implicit
    // default config would otherwise run whole-trace, delta).
    if ((spec.traceModeSet || spec.traceCompressionSet) &&
        spec.matrix.configs.empty()) {
        SimConfig cfg;
        cfg.traceMode = spec.traceMode;
        cfg.traceCompression = spec.traceCompression;
        spec.matrix.configs.push_back(cfg);
    }

    if (spec.matrix.workloads.empty() && spec.suites.empty())
        schemaFail("workloads",
                   "config selects no workloads (and no suites)");
    if (spec.matrix.schemes.empty())
        schemaFail("schemes", "config lists no schemes");
    if (!spec.format.empty() && spec.format != "table" &&
        spec.format != "json" && spec.format != "csv")
        schemaFail("report.format",
                   "expected table, json or csv, got \"" + spec.format +
                       "\"");
    return spec;
}

ExperimentSpec
loadExperimentSpec(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        throw std::runtime_error("cannot open experiment config " +
                                 path);
    std::ostringstream text;
    text << file.rdbuf();
    return parseExperimentSpec(text.str());
}

} // namespace cassandra::core
