/**
 * @file
 * Declarative experiment matrices, the parallel two-phase runner and
 * the result reporters.
 *
 * An ExperimentMatrix names workloads (resolved through a name ->
 * Workload factory, normally crypto::WorkloadRegistry::global()
 * .resolver()), protection schemes, and SimConfig variants; the
 * runner executes the full workload x scheme x config cross product
 * in two phases. Phase 1 analyzes each distinct workload exactly once
 * (concurrently across workloads, memoized in an AnalysisCache);
 * phase 2 hands the planned cells to a pluggable core::CellExecutor —
 * the in-process thread pool by default, or the subprocess shard
 * executor (RunnerOptions::execution) which partitions cells across
 * `run_experiment --worker` child processes over serialized artifact
 * snapshots. The runner itself is a pure coordinator: plan cells ->
 * acquire artifacts -> dispatch -> merge. Each cell still builds its
 * own core, so the result vector is deterministic for any thread or
 * shard count and always in matrix order (workload-major, then
 * scheme, then config) — executors are required to be byte-identical
 * to one another.
 *
 *   core::ExperimentMatrix m;
 *   m.workloads = {"ChaCha20_ct", "kyber768"};
 *   m.schemes = {Scheme::UnsafeBaseline, Scheme::Cassandra};
 *   core::ExperimentRunner runner(
 *       crypto::WorkloadRegistry::global().resolver());
 *   core::Experiment exp = runner.run(m);
 *   core::makeReporter("json")->write(exp, std::cout);
 *
 * Reporters additionally emit derived metrics: per-cell cycles
 * normalized to the workload's UnsafeBaseline cell and per-scheme
 * geometric means over the normalized ratios.
 */

#ifndef CASSANDRA_CORE_EXPERIMENT_HH
#define CASSANDRA_CORE_EXPERIMENT_HH

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/analyzed_workload.hh"
#include "core/sim_config.hh"

namespace cassandra::core {

class CellExecutor;
class ResultStore;

/** Name -> Workload factory used to resolve matrix entries. */
using WorkloadResolver = AnalysisCache::Resolver;

/** The workload x scheme x config cross product to execute. */
struct ExperimentMatrix
{
    /** Workload names, resolved through the runner's resolver. */
    std::vector<std::string> workloads;
    /** Schemes; overrides the scheme field of each config. */
    std::vector<uarch::Scheme> schemes;
    /**
     * SimConfig variants (scheme field ignored — the matrix schemes
     * take its place per cell). Empty means one default config.
     */
    std::vector<SimConfig> configs;

    size_t
    cellCount() const
    {
        return workloads.size() * schemes.size() *
            (configs.empty() ? 1 : configs.size());
    }
};

/** One executed cell of the matrix. */
struct CellResult
{
    std::string workload; ///< the matrix (registry) name of the cell
    std::string suite;
    uarch::Scheme scheme = uarch::Scheme::UnsafeBaseline;
    std::string config; ///< SimConfig::name of the variant
    ExperimentResult result;
};

/**
 * Side-band observability of one runner dispatch: result-store
 * counters and the shard schedule. Deliberately *not* part of any
 * report format — reports must stay byte-identical between cold and
 * warm runs — telemetry is emitted as its own JSON document
 * (writeRunTelemetry, `--stats-out`).
 */
struct RunTelemetry
{
    /** A result store was consulted this run. */
    bool cacheEnabled = false;
    std::string cacheMode; ///< "off", "on" or "readonly"
    std::string cacheDir;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t cacheStores = 0;
    uint64_t cacheEvictions = 0;
    /** Cells replayed from the store (never dispatched). */
    uint64_t cachedCells = 0;
    /** Cells handed to the executor (simulated fresh). */
    uint64_t simulatedCells = 0;
    /** Cells answered by an identical cell in the same dispatch
     * (RunnerOptions::dedupCells — the cross-job service path). */
    uint64_t dedupedCells = 0;
    /** Entries the post-run size-bound GC removed from the store
     * (RunnerOptions::cacheGcMb). */
    uint64_t cacheGcEvictions = 0;

    /** Fused analysis passes executed during this dispatch (batched
     * single-pass Machine runs; 0 when CASSANDRA_ANALYSIS_FUSION
     * selects the per-phase reference path). */
    uint64_t analysisFusedPasses = 0;
    /** Stream-replay frames served by the TraceCursor decode-ahead
     * worker during this dispatch, and how many of those the replay
     * loop had to wait for (decode slower than simulation). */
    uint64_t prefetchBatches = 0;
    uint64_t prefetchStalls = 0;

    /** Algorithm 2 accumulator peak of each workload whose image
     * phase ran in this dispatch (name -> peak bytes, matrix order).
     * The load-bearing boundedness observable: for the composite
     * server mixes this number must stay flat as the request count
     * grows (docs/ARCHITECTURE.md, "Memory bounds"). */
    std::vector<std::pair<std::string, uint64_t>> analysisPeaks;

    /** Max over analysisPeaks (0 when no image phase ran). */
    uint64_t
    analysisPeakAccumBytes() const
    {
        uint64_t max = 0;
        for (const auto &[name, bytes] : analysisPeaks)
            max = bytes > max ? bytes : max;
        return max;
    }

    /** A subprocess shard schedule was computed this run. */
    bool scheduled = false;
    std::string scheduler; ///< "contiguous" or "lpt"
    /** Estimated cost (model units) assigned to each shard. */
    std::vector<uint64_t> shardCosts;

    uint64_t
    maxShardCost() const
    {
        uint64_t max = 0;
        for (uint64_t c : shardCosts)
            max = c > max ? c : max;
        return max;
    }

    uint64_t
    totalCost() const
    {
        uint64_t sum = 0;
        for (uint64_t c : shardCosts)
            sum += c;
        return sum;
    }
};

/** Emit telemetry as a standalone JSON document with `cache_stats`
 * and `schedule` blocks (the `--stats-out` payload). */
void writeRunTelemetry(const RunTelemetry &telemetry, std::ostream &os);

/** All cells of one matrix run, in matrix order. */
struct Experiment
{
    std::vector<CellResult> cells;

    /** Cache/schedule observability of the run that produced this
     * experiment (not serialized by any Reporter). */
    RunTelemetry telemetry;

    /**
     * The shared analysis artifacts of the run, keyed by matrix
     * workload name — benches read Algorithm 2 results from here
     * without re-analyzing.
     */
    std::map<std::string, AnalyzedWorkload::Ptr> artifacts;

    /**
     * First cell matching workload + scheme (+ config when non-empty);
     * null when absent.
     */
    const CellResult *find(const std::string &workload,
                           uarch::Scheme scheme,
                           const std::string &config = "") const;
};

/** How phase-2 cells are executed. */
enum class ExecutionMode
{
    /** Thread pool inside this process (the default). */
    InProcess,
    /** Cells sharded across `run_experiment --worker` subprocesses. */
    Subprocess,
    /** Cells dispatched through an ArtifactStore drop box to
     * `run_experiment --agent` processes (core/remote_executor.hh). */
    Remote,
};

const char *executionModeName(ExecutionMode mode);

/**
 * Parse an execution mode name ("inprocess", "subprocess" or
 * "remote").
 * @throws std::invalid_argument on anything else.
 */
ExecutionMode executionModeFromName(const std::string &name);

/** Whether (and how) the persistent cell-result store is consulted. */
enum class CacheMode
{
    /** No store: every cell simulates (the default). */
    Off,
    /** Consult the store before dispatch; persist fresh results. */
    On,
    /** Consult but never write (shared read-only store). */
    Readonly,
};

const char *cacheModeName(CacheMode mode);

/**
 * Parse a cache mode name ("off", "on" or "readonly").
 * @throws std::invalid_argument on anything else.
 */
CacheMode cacheModeFromName(const std::string &name);

/** How SubprocessShardExecutor partitions cells across shards. */
enum class ShardScheduler
{
    /** Equal-size contiguous index blocks (the default). */
    Contiguous,
    /** Longest-processing-time bin packing over the per-cell cost
     * model (prior cached cycles, ops-count fallback). */
    Lpt,
};

const char *shardSchedulerName(ShardScheduler scheduler);

/**
 * Parse a scheduler name ("contiguous" or "lpt").
 * @throws std::invalid_argument on anything else.
 */
ShardScheduler shardSchedulerFromName(const std::string &name);

/** Runner knobs. */
struct RunnerOptions
{
    RunnerOptions() = default;
    RunnerOptions(unsigned threads, AnalyzeOptions analyze = {})
        : threads(threads), analyze(std::move(analyze))
    {
    }

    /** Worker threads; 0 means hardware concurrency. */
    unsigned threads = 0;

    /**
     * Analysis options of the runner-owned cache (trace mode, stream
     * directory, eagerly-run phases). Ignored when the runner shares a
     * caller-owned cache (the cache's own options apply there).
     */
    AnalyzeOptions analyze;

    /** Phase-2 cell execution backend. */
    ExecutionMode execution = ExecutionMode::InProcess;

    /**
     * Shard (worker process) count for subprocess execution; 0 means
     * auto (see resolveShards). Ignored in-process.
     */
    unsigned shards = 0;

    /**
     * Binary spawned per shard in subprocess mode; it must implement
     * the `--worker --manifest=F --out=F` contract (run_experiment
     * does). Required when execution == Subprocess.
     */
    std::string workerBinary;

    /**
     * Directory for shard scratch files (artifact snapshots,
     * manifests, worker outputs); empty picks a per-process temp
     * directory. The executor deletes its scratch files after a
     * successful run and keeps them for debugging when the run fails.
     */
    std::string scratchDir;

    /**
     * Persistent cell-result store: Off (default) simulates every
     * cell; On consults the store before dispatch, executes only the
     * missing cells and persists fresh results; Readonly consults
     * without writing.
     */
    CacheMode cacheMode = CacheMode::Off;

    /** Result-store directory; empty defaults to "result-cache". */
    std::string cacheDir;

    /**
     * Shard partitioning policy for subprocess execution: Contiguous
     * equal blocks (default) or Lpt cost-model bin packing. Merging by
     * global index makes the choice invisible in the report (ignored
     * in-process, where the thread pool self-balances).
     */
    ShardScheduler scheduler = ShardScheduler::Contiguous;

    /**
     * Drop-box directory for remote execution (the ArtifactStore
     * root). Required when execution == Remote.
     */
    std::string dropboxDir;

    /**
     * Local agents the remote executor spawns per run (the
     * `--agent` processes); 0 relies on a standing pool already
     * polling the box. Ignored outside remote execution.
     */
    unsigned agents = 0;

    /** Per-task deadline of remote execution before the coordinator
     * withdraws the task and retries its cells in-process. */
    uint64_t taskTimeoutMs = 120000;

    /**
     * Collapse identical pending cells (same workload, scheme and
     * canonical sim parameters) into one dispatched simulation whose
     * result fills every requesting slot. Off by default — a direct
     * run's executor sees exactly its matrix cells; the experiment
     * service turns it on to dedup across concurrently-batched jobs.
     */
    bool dedupCells = false;

    /**
     * Disk budget (MiB) for the result store; after a run that wrote
     * fresh entries, oldest entries are evicted until the store fits.
     * 0 (default) leaves the store unbounded.
     */
    uint64_t cacheGcMb = 0;

    /**
     * The one place thread-pool sizing is decided: the requested
     * count (or hardware concurrency) clamped to the work at hand.
     */
    unsigned resolveThreads(size_t work) const;

    /**
     * Per-worker thread budget of a sharded run. The machine-wide
     * budget resolveThreads(work) is divided evenly across the shard
     * workers and clamped to the largest per-shard cell count, so the
     * product shards x threads never oversubscribes the machine and no
     * worker holds more threads than it has cells:
     *
     *   perWorker = min(max(1, resolveThreads(work) / shards),
     *                   ceil(work / shards))
     */
    unsigned resolveThreads(size_t work, unsigned shards) const;

    /**
     * Shard count actually launched for `work` cells: the requested
     * count (or, when 0, an automatic min(4, hardware concurrency))
     * clamped to the cell count so no worker starts empty.
     */
    unsigned resolveShards(size_t work) const;
};

/**
 * Coordinates experiment matrices: plans the cell cross product,
 * acquires analysis artifacts (phase 1), dispatches the cells to its
 * CellExecutor (phase 2) and merges the results in matrix order.
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(WorkloadResolver resolver,
                              RunnerOptions options = {});
    /** Share a caller-owned cache (artifacts persist across runs). */
    explicit ExperimentRunner(std::shared_ptr<AnalysisCache> cache,
                              RunnerOptions options = {});
    /**
     * Inject a custom phase-2 executor (null builds one from
     * options.execution: InProcessExecutor or SubprocessShardExecutor
     * from core/cell_executor.hh).
     */
    ExperimentRunner(std::shared_ptr<AnalysisCache> cache,
                     RunnerOptions options,
                     std::shared_ptr<CellExecutor> executor);

    /**
     * Run every cell of the matrix. Distinct workloads are analyzed
     * once (phase 1) with exactly the analysis phases the matrix's
     * schemes need — baseline/SPT-only sweeps never run Algorithm 2,
     * ProSpeCT-free sweeps never run the taint pre-pass — then cells
     * execute concurrently over the shared artifacts (phase 2); the
     * returned cells are in matrix order and bit-identical for any
     * thread count. Any cell config requesting TraceMode::Stream makes
     * the analysis spill its traces to disk, and any cell config
     * requesting TraceCompression::None makes streamed traces record
     * raw CASSTF1 instead of delta-compressed CASSTF2 (artifacts are
     * shared per workload, so the non-default request wins). Worker
     * exceptions (e.g. unknown workload names) are rethrown here.
     */
    Experiment run(const ExperimentMatrix &matrix) const;

    /**
     * Run several matrices as one batch sharing one analysis phase;
     * cells are concatenated in matrix order.
     */
    Experiment run(const std::vector<ExperimentMatrix> &matrices) const;

    /**
     * Phase 1 only: analyze the named workloads in parallel (each
     * distinct name exactly once), guaranteeing `phases` beyond the
     * cache's defaults. Returns artifacts in input order.
     */
    std::vector<AnalyzedWorkload::Ptr>
    analyze(const std::vector<std::string> &names,
            AnalysisPhaseMask phases, TraceMode mode,
            TraceCompression compression) const;

    /** analyze() with the cache's default stream encoding. */
    std::vector<AnalyzedWorkload::Ptr>
    analyze(const std::vector<std::string> &names,
            AnalysisPhaseMask phases, TraceMode mode) const;

    /** analyze() with the cache's default phases and trace mode. */
    std::vector<AnalyzedWorkload::Ptr>
    analyze(const std::vector<std::string> &names) const;

    /** Analysis phases the matrix's schemes will consume. */
    static AnalysisPhaseMask
    neededPhases(const std::vector<ExperimentMatrix> &matrices);

    /** The artifact cache backing this runner. */
    AnalysisCache &cache() const { return *cache_; }

    /** The phase-2 executor cells are dispatched to. */
    CellExecutor &executor() const { return *executor_; }

    /** The persistent cell-result store; null when cacheMode is Off
     * (or a custom executor was injected with no store). */
    const std::shared_ptr<ResultStore> &resultStore() const
    {
        return store_;
    }

  private:
    std::shared_ptr<AnalysisCache> cache_;
    RunnerOptions options_;
    std::shared_ptr<ResultStore> store_;
    std::shared_ptr<CellExecutor> executor_;
};

/** Derived metrics computed over a finished experiment. */
struct DerivedMetrics
{
    /**
     * Per-cell cycles normalized to the same workload's
     * UnsafeBaseline cell (same config preferred, any config as
     * fallback); NaN when the experiment has no baseline for the
     * workload. Parallel to Experiment::cells.
     */
    std::vector<double> cyclesVsBaseline;

    /** Geometric mean of cyclesVsBaseline per (scheme, config). */
    struct Geomean
    {
        uarch::Scheme scheme = uarch::Scheme::UnsafeBaseline;
        std::string config;
        double cyclesVsBaseline = 0.0;
        size_t workloads = 0; ///< cells contributing to the mean
    };
    std::vector<Geomean> geomeans; ///< in first-appearance order
};

/** Compute normalized ratios and per-scheme geomeans. */
DerivedMetrics computeDerived(const Experiment &exp);

/** Serializes an Experiment to a stream. */
class Reporter
{
  public:
    virtual ~Reporter() = default;
    virtual void write(const Experiment &exp, std::ostream &os) const = 0;
};

/** Fixed-width text table (cycles, IPC, BTU/BPU headline counters,
 * baseline-normalized cycles, per-scheme geomean rows). */
class TableReporter : public Reporter
{
  public:
    void write(const Experiment &exp, std::ostream &os) const override;
};

/** Full structured dump: every CoreStats/BtuStats/BpuStats/cache
 * counter of every cell as {"results": [...]}, plus derived
 * per-cell "cycles_vs_baseline" and a "geomeans" section. */
class JsonReporter : public Reporter
{
  public:
    void write(const Experiment &exp, std::ostream &os) const override;
};

/** Flat spreadsheet-friendly rows (headline counters per cell, a
 * cycles_vs_baseline column, geomean rows appended). */
class CsvReporter : public Reporter
{
  public:
    void write(const Experiment &exp, std::ostream &os) const override;
};

/**
 * Reporter by format name: "table", "json" or "csv".
 * @throws std::invalid_argument on anything else.
 */
std::unique_ptr<Reporter> makeReporter(const std::string &format);

} // namespace cassandra::core

#endif // CASSANDRA_CORE_EXPERIMENT_HH
