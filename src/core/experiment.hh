/**
 * @file
 * Declarative experiment matrices, the parallel runner and the result
 * reporters.
 *
 * An ExperimentMatrix names workloads (resolved through a name ->
 * Workload factory, normally crypto::WorkloadRegistry::global()
 * .resolver()), protection schemes, and SimConfig variants; the
 * runner executes the full workload x scheme x config cross product
 * over a thread pool. Each cell builds its own System, so results are
 * deterministic regardless of thread count, and the result vector is
 * always in matrix order (workload-major, then scheme, then config).
 *
 *   core::ExperimentMatrix m;
 *   m.workloads = {"ChaCha20_ct", "kyber768"};
 *   m.schemes = {Scheme::UnsafeBaseline, Scheme::Cassandra};
 *   core::ExperimentRunner runner(
 *       crypto::WorkloadRegistry::global().resolver());
 *   core::Experiment exp = runner.run(m);
 *   core::makeReporter("json")->write(exp, std::cout);
 */

#ifndef CASSANDRA_CORE_EXPERIMENT_HH
#define CASSANDRA_CORE_EXPERIMENT_HH

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/sim_config.hh"
#include "core/system.hh"

namespace cassandra::core {

/** Name -> Workload factory used to resolve matrix entries. */
using WorkloadResolver = std::function<Workload(const std::string &)>;

/** The workload x scheme x config cross product to execute. */
struct ExperimentMatrix
{
    /** Workload names, resolved through the runner's resolver. */
    std::vector<std::string> workloads;
    /** Schemes; overrides the scheme field of each config. */
    std::vector<uarch::Scheme> schemes;
    /**
     * SimConfig variants (scheme field ignored — the matrix schemes
     * take its place per cell). Empty means one default config.
     */
    std::vector<SimConfig> configs;

    size_t
    cellCount() const
    {
        return workloads.size() * schemes.size() *
            (configs.empty() ? 1 : configs.size());
    }
};

/** One executed cell of the matrix. */
struct CellResult
{
    std::string workload; ///< the matrix (registry) name of the cell
    std::string suite;
    uarch::Scheme scheme = uarch::Scheme::UnsafeBaseline;
    std::string config; ///< SimConfig::name of the variant
    ExperimentResult result;
};

/** All cells of one matrix run, in matrix order. */
struct Experiment
{
    std::vector<CellResult> cells;

    /**
     * First cell matching workload + scheme (+ config when non-empty);
     * null when absent.
     */
    const CellResult *find(const std::string &workload,
                           uarch::Scheme scheme,
                           const std::string &config = "") const;
};

/** Runner knobs. */
struct RunnerOptions
{
    /** Worker threads; 0 means hardware concurrency. */
    unsigned threads = 0;
};

/** Executes experiment matrices across a thread pool. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(WorkloadResolver resolver,
                              RunnerOptions options = {});

    /**
     * Run every cell of the matrix. Cells execute concurrently, each
     * on its own System; the returned cells are in matrix order and
     * bit-identical for any thread count. Worker exceptions (e.g.
     * unknown workload names) are rethrown here.
     */
    Experiment run(const ExperimentMatrix &matrix) const;

  private:
    WorkloadResolver resolver_;
    RunnerOptions options_;
};

/** Serializes an Experiment to a stream. */
class Reporter
{
  public:
    virtual ~Reporter() = default;
    virtual void write(const Experiment &exp, std::ostream &os) const = 0;
};

/** Fixed-width text table (cycles, IPC, BTU/BPU headline counters). */
class TableReporter : public Reporter
{
  public:
    void write(const Experiment &exp, std::ostream &os) const override;
};

/** Full structured dump: every CoreStats/BtuStats/BpuStats/cache
 * counter of every cell, as {"results": [...]}. */
class JsonReporter : public Reporter
{
  public:
    void write(const Experiment &exp, std::ostream &os) const override;
};

/** Flat spreadsheet-friendly rows (headline counters per cell). */
class CsvReporter : public Reporter
{
  public:
    void write(const Experiment &exp, std::ostream &os) const override;
};

/**
 * Reporter by format name: "table", "json" or "csv".
 * @throws std::invalid_argument on anything else.
 */
std::unique_ptr<Reporter> makeReporter(const std::string &format);

} // namespace cassandra::core

#endif // CASSANDRA_CORE_EXPERIMENT_HH
