/**
 * @file
 * k-mers branch compression (paper §4.2.1, Algorithm 1).
 *
 * The compressor repeatedly counts all k-mers (substrings of length k,
 * 2 <= k <= maxK) of the DNA sequence, picks the one with the highest
 * coverage (k * frequency / sequence length) among those occurring more
 * than once whose expanded size still fits in maxK base elements, and
 * replaces its non-overlapping occurrences with a fresh letter. The
 * loop stops when the sequence stops shrinking. Discovered patterns may
 * nest (a pattern may contain letters that are themselves patterns);
 * expansion is recursive.
 *
 * This is a from-scratch implementation of the role scikit-bio's k-mers
 * counting plays in the paper; per the paper, results do not depend on
 * the specific tool.
 */

#ifndef CASSANDRA_CORE_KMERS_HH
#define CASSANDRA_CORE_KMERS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/dna.hh"

namespace cassandra::core {

/** Tuning parameters of Algorithm 1. */
struct KmersParams
{
    /**
     * Maximum pattern size in *expanded* base run elements. 16 matches
     * one Pattern Table entry of the BTU.
     */
    int maxK = 16;
    /** Safety bound on compression iterations. */
    int maxIterations = 256;
    /**
     * Sequences longer than this are analyzed on a prefix of this
     * length for pattern *discovery*; the full sequence is still
     * compressed with the discovered dictionary. 0 disables the cap.
     */
    size_t discoveryCap = 0;
};

/** One element of the run-length-encoded k-mers trace K. */
struct KmersTraceElement
{
    Symbol symbol = 0;
    uint64_t count = 0;

    bool
    operator==(const KmersTraceElement &o) const
    {
        return symbol == o.symbol && count == o.count;
    }
};

/** Output of Algorithm 1 plus the metrics Table 1 reports. */
struct KmersResult
{
    /** Compressed sequence K over the extended alphabet. */
    DnaSequence seq;
    /**
     * Pattern dictionary: super-symbol (baseAlphabetSize + i) maps to
     * patterns[i], a string over the alphabet that existed when the
     * pattern was discovered (so patterns may nest).
     */
    std::vector<DnaSequence> patterns;
    /** Number of base letters. */
    size_t baseAlphabetSize = 0;
    /** Base-letter meaning (copied from the DNA encoding). */
    std::vector<RunElement> letterTable;

    /** True if s indexes the pattern dictionary. */
    bool
    isPattern(Symbol s) const
    {
        return s >= baseAlphabetSize;
    }

    /** Fully expand a symbol to base run elements. */
    std::vector<RunElement> expandSymbol(Symbol s) const;

    /** Expand the whole result back to the vanilla trace (for tests). */
    VanillaTrace expand() const;

    /** Run-length-encoded K — the paper's "k-mers trace" (p0 x 2 ...). */
    std::vector<KmersTraceElement> traceRle() const;

    /** Number of elements in the RLE'd k-mers trace. */
    size_t traceSize() const { return traceRle().size(); }

    /**
     * Pattern-set size: total expanded run elements across the distinct
     * symbols referenced by K (base letters used directly in K count as
     * one-element patterns, as in the paper's BR1 example).
     */
    size_t patternSetSize() const;

    /** Table 1 "k-mers size": trace size + pattern set size. */
    size_t totalSize() const { return traceSize() + patternSetSize(); }

    /** Pretty form like "p0 x 2 . p1 x 1" for examples. */
    std::string traceToString() const;
    /** Pretty pattern set like "{p0: PCa x 2 . PCb x 5, ...}". */
    std::string patternsToString() const;
};

/** Run Algorithm 1 on a DNA-encoded vanilla trace. */
KmersResult compressKmers(const DnaEncoding &dna,
                          const KmersParams &params = {});

} // namespace cassandra::core

#endif // CASSANDRA_CORE_KMERS_HH
