/**
 * @file
 * The pluggable phase-2 cell-execution layer.
 *
 * ExperimentRunner plans the workload x scheme x config cross product
 * and acquires the analysis artifacts; a CellExecutor then turns the
 * planned cells into CellResults. Executors must be interchangeable:
 * given the same cells and artifacts, every executor produces
 * byte-identical results in cell order, regardless of threads, shard
 * counts or scheduling.
 *
 * Two backends ship here:
 *
 *  - InProcessExecutor runs the cells over a thread pool in this
 *    process (the historical ExperimentRunner behavior).
 *
 *  - SubprocessShardExecutor partitions the cells into shards and
 *    spawns one worker process per shard (`<worker_binary> --worker
 *    --manifest=F --out=F`, the contract run_experiment implements).
 *    Each worker receives a CASSSM1 shard manifest naming its cells
 *    and the serialized `.aw` artifact snapshot of every workload it
 *    touches, simulates its cells and writes a CASSCR1 cell-result
 *    set (core/serialize); the coordinator merges the partial sets
 *    back into one result vector by global cell index, so any shard
 *    partition — and any completion order — yields the identical
 *    report. A crashed worker (nonzero exit, missing or corrupt
 *    output) has its cells retried once on an in-process executor;
 *    only when that retry also fails does the run fail, with a
 *    WorkerError carrying the shard's stderr.
 *
 * This seam is what multi-host dispatch will plug into next: a future
 * executor can ship the same manifests + snapshots to remote hosts
 * and merge the same CASSCR1 sets.
 */

#ifndef CASSANDRA_CORE_CELL_EXECUTOR_HH
#define CASSANDRA_CORE_CELL_EXECUTOR_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace cassandra::core {

class ResultStore;

/**
 * Run fn(0..work) over a pool of `threads` workers, failing fast on
 * the first exception (rethrown here). Shared by the runner's analysis
 * phase and the in-process executor.
 */
void runParallel(unsigned threads, size_t work,
                 const std::function<void(size_t)> &fn);

/** One planned phase-2 cell (the matrix cross product, flattened). */
struct PlannedCell
{
    std::string workload; ///< matrix (registry) spelling
    uarch::Scheme scheme = uarch::Scheme::UnsafeBaseline;
    /** Config variant; its scheme field is replaced by `scheme`. */
    SimConfig config;
};

/** Shared analysis artifacts, keyed by matrix workload name. */
using ArtifactMap = std::map<std::string, AnalyzedWorkload::Ptr>;

/**
 * The shard partition an executor chose for its last execute() call
 * (telemetry; empty for executors that do not shard).
 */
struct ScheduleSummary
{
    bool valid = false;
    ShardScheduler scheduler = ShardScheduler::Contiguous;
    /** Estimated cost (model units) assigned to each shard. */
    std::vector<uint64_t> shardCosts;
};

/**
 * Per-cell cost estimates for the shard scheduler, in cost-model
 * units. For each cell, a prior run's recorded cycle count from the
 * result store when a matching entry exists (`store` may be null),
 * falling back to the workload artifact's static ops count — both are
 * proportional to simulated work, so mixed sources still rank cells
 * usefully. Every estimate is at least 1.
 */
std::vector<uint64_t>
estimateCellCosts(const std::vector<PlannedCell> &cells,
                  const ArtifactMap &artifacts,
                  const ResultStore *store);

/**
 * Partition cell indices 0..costs.size() into `shards` groups.
 * Contiguous reproduces the historical equal-size blocks; Lpt sorts
 * by descending cost and greedily assigns each cell to the least-
 * loaded shard (longest-processing-time bin packing), so one huge
 * cell no longer serializes a shard behind a pile of cheap ones.
 * Deterministic (stable tie-breaks); with shards <= cells, no shard
 * is left empty. The merged report is byte-identical either way —
 * results merge by global index.
 */
std::vector<std::vector<uint32_t>>
scheduleShards(ShardScheduler scheduler,
               const std::vector<uint64_t> &costs, unsigned shards);

/** Executes planned cells over shared artifacts. */
class CellExecutor
{
  public:
    virtual ~CellExecutor() = default;

    /** Diagnostic backend name ("inprocess", "subprocess", ...). */
    virtual const char *name() const = 0;

    /**
     * Execute every cell; the result vector is parallel to `cells`
     * and must be byte-identical across executors and schedules.
     * Artifacts must cover every cell's workload.
     */
    virtual std::vector<CellResult>
    execute(const std::vector<PlannedCell> &cells,
            const ArtifactMap &artifacts) = 0;

    /** The shard partition of the last execute() call (invalid for
     * backends that do not shard). */
    virtual ScheduleSummary lastSchedule() const { return {}; }
};

/** Phase-2 cells over a thread pool in this process. */
class InProcessExecutor : public CellExecutor
{
  public:
    /** @param threads worker threads; 0 = hardware concurrency
     * (resolved through RunnerOptions::resolveThreads). */
    explicit InProcessExecutor(unsigned threads = 0);

    const char *name() const override { return "inprocess"; }
    std::vector<CellResult>
    execute(const std::vector<PlannedCell> &cells,
            const ArtifactMap &artifacts) override;

  private:
    unsigned threads_;
};

/**
 * A worker process failed and its cells could not be recovered: the
 * shard crashed (or produced corrupt output) and the in-process retry
 * failed too. what() includes the shard's captured stderr.
 */
class WorkerError : public std::runtime_error
{
  public:
    WorkerError(unsigned shard, const std::string &detail,
                std::string stderr_text);

    unsigned shard() const { return shard_; }
    /** Captured stderr of the failed worker (tail, bounded). */
    const std::string &stderrText() const { return stderrText_; }

  private:
    unsigned shard_;
    std::string stderrText_;
};

/**
 * One shard's work order, serialized as a CASSSM1 manifest file: the
 * artifact snapshot per workload, the planned cells with their global
 * indices, and the worker's thread budget.
 */
struct ShardManifest
{
    uint32_t shardIndex = 0;
    /** Worker thread-pool size (pre-capped by the coordinator so
     * shards x threads never oversubscribes the machine). */
    uint32_t workerThreads = 1;
    /** Directory for rehydrated trace streams in the worker. */
    std::string streamDir;
    /** Workload name -> .aw snapshot path, for every cell workload. */
    std::vector<std::pair<std::string, std::string>> artifacts;
    /** Global cell index of cells[i] in the coordinator's plan. */
    std::vector<uint32_t> indices;
    std::vector<PlannedCell> cells;
};

std::vector<uint8_t> packShardManifest(const ShardManifest &manifest);

/**
 * Parse CASSSM1 bytes back into a manifest.
 * @throws ArtifactFormatError on bad magic/version,
 *         std::invalid_argument on truncated or inconsistent bytes.
 */
ShardManifest unpackShardManifest(const std::vector<uint8_t> &bytes);

void saveShardManifest(const ShardManifest &manifest,
                       const std::string &path);
ShardManifest loadShardManifest(const std::string &path);

/**
 * The worker side of the subprocess contract (what `run_experiment
 * --worker` runs): load the manifest, rehydrate the artifact
 * snapshots through `resolver`, execute the cells in-process and
 * write the CASSCR1 cell-result set to `out_path`. Errors are
 * reported on `err` and turn into a nonzero return (the coordinator
 * retries the shard in-process). Honors the CASSANDRA_TEST_WORKER_CRASH
 * fault-injection hook: a worker whose shard index matches the
 * variable exits early with status 42 (exercises the retry path).
 */
int runShardWorker(const std::string &manifest_path,
                   const std::string &out_path,
                   const AnalysisCache::Resolver &resolver,
                   std::ostream &err);

/**
 * Phase-2 cells sharded across worker subprocesses (POSIX only;
 * execute() throws std::runtime_error elsewhere).
 */
class SubprocessShardExecutor : public CellExecutor
{
  public:
    struct Options
    {
        /** Shard count; 0 = auto (RunnerOptions::resolveShards). */
        unsigned shards = 0;
        /** Binary implementing the --worker contract (required). */
        std::string workerBinary;
        /** Coordinator-side thread request; per-worker budgets derive
         * from it via RunnerOptions::resolveThreads(work, shards). */
        unsigned threads = 0;
        /** Scratch directory; empty = per-process temp dir. Scratch
         * files are removed after a successful run and kept (with a
         * stderr note naming the directory) when the run fails, so
         * manifests and worker stderr survive for debugging. */
        std::string scratchDir;
        /** Retry a crashed shard's cells in-process before failing.
         * Disabled, a crashed shard raises WorkerError directly. */
        bool retryInProcess = true;
        /** Shard partitioning policy (see scheduleShards). */
        ShardScheduler scheduler = ShardScheduler::Contiguous;
        /** Prior-cycles source for the Lpt cost model; null falls
         * back to the static ops-count estimate for every cell. */
        std::shared_ptr<const ResultStore> costSource;
    };

    /** Cumulative backend counters (observable in tests/telemetry). */
    struct Stats
    {
        uint64_t shardsLaunched = 0;
        uint64_t shardsFailed = 0;
        uint64_t cellsRetried = 0; ///< recovered on the in-process path
    };

    /** @throws std::invalid_argument when workerBinary is empty. */
    explicit SubprocessShardExecutor(Options options);

    const char *name() const override { return "subprocess"; }
    std::vector<CellResult>
    execute(const std::vector<PlannedCell> &cells,
            const ArtifactMap &artifacts) override;

    ScheduleSummary lastSchedule() const override { return schedule_; }

    const Stats &stats() const { return stats_; }

  private:
    Options options_;
    Stats stats_;
    ScheduleSummary schedule_;
};

/**
 * Executor for RunnerOptions::execution: InProcessExecutor or
 * SubprocessShardExecutor configured from the options. `costSource`
 * (may be null) feeds the subprocess executor's cost model with prior
 * cycles from the result store.
 */
std::shared_ptr<CellExecutor>
makeCellExecutor(const RunnerOptions &options,
                 std::shared_ptr<const ResultStore> costSource = nullptr);

} // namespace cassandra::core

#endif // CASSANDRA_CORE_CELL_EXECUTOR_HH
