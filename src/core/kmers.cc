#include "core/kmers.hh"

#include <algorithm>
#include <functional>
#include <sstream>
#include <cstring>
#include <unordered_map>

namespace cassandra::core {

namespace {

/** Byte-string key for a window of symbols (hashable). */
std::string
windowKey(const DnaSequence &seq, size_t pos, size_t k)
{
    return std::string(reinterpret_cast<const char *>(seq.data() + pos),
                       k * sizeof(Symbol));
}

DnaSequence
keyToSymbols(const std::string &key)
{
    DnaSequence out(key.size() / sizeof(Symbol));
    std::memcpy(out.data(), key.data(), key.size());
    return out;
}

/** Expanded size (in base run elements) of one symbol. */
size_t
expandedSize(Symbol s, size_t base, const std::vector<DnaSequence> &patterns,
             std::vector<size_t> &memo)
{
    if (s < base)
        return 1;
    size_t idx = s - base;
    if (memo[idx])
        return memo[idx];
    size_t n = 0;
    for (Symbol t : patterns[idx])
        n += expandedSize(t, base, patterns, memo);
    memo[idx] = n;
    return n;
}

/** Replace non-overlapping occurrences of kmer in seq with letter. */
DnaSequence
replaceAndMerge(const DnaSequence &seq, const DnaSequence &kmer,
                Symbol letter)
{
    DnaSequence out;
    out.reserve(seq.size());
    size_t i = 0;
    while (i < seq.size()) {
        if (i + kmer.size() <= seq.size() &&
            std::equal(kmer.begin(), kmer.end(), seq.begin() + i)) {
            out.push_back(letter);
            i += kmer.size();
        } else {
            out.push_back(seq[i]);
            i++;
        }
    }
    return out;
}

} // namespace

KmersResult
compressKmers(const DnaEncoding &dna, const KmersParams &params)
{
    KmersResult res;
    res.baseAlphabetSize = dna.alphabetSize();
    res.letterTable = dna.letterTable;
    res.seq = dna.seq;

    std::vector<size_t> size_memo; // per pattern, expanded size
    Symbol next_letter = static_cast<Symbol>(res.baseAlphabetSize);

    size_t current_len = res.seq.size() + 1;
    int iterations = 0;
    while (res.seq.size() < current_len &&
           iterations++ < params.maxIterations) {
        current_len = res.seq.size();
        if (current_len < 4)
            break;

        // Pattern discovery window (full sequence unless capped).
        size_t window = current_len;
        if (params.discoveryCap && window > params.discoveryCap)
            window = params.discoveryCap;

        // count_kmers for k = 2..maxK; track the best coverage.
        double best_cov = 0.0;
        std::string best_key;
        size_t max_k = static_cast<size_t>(params.maxK);
        for (size_t k = 2; k <= std::min(max_k, window / 2); k++) {
            std::unordered_map<std::string, uint32_t> freqs;
            freqs.reserve(window);
            for (size_t i = 0; i + k <= window; i++)
                freqs[windowKey(res.seq, i, k)]++;
            for (const auto &[key, freq] : freqs) {
                if (freq <= 1)
                    continue;
                // Size(kmer): expanded length must still fit maxK.
                DnaSequence kmer = keyToSymbols(key);
                // Homogeneous repetitions of one letter are already
                // covered by the run-length trace-counter of the trace
                // elements; compressing them into patterns only wastes
                // pattern-set space.
                if (std::adjacent_find(kmer.begin(), kmer.end(),
                                       std::not_equal_to<>()) ==
                    kmer.end()) {
                    continue;
                }
                size_t exp_size = 0;
                for (Symbol s : kmer) {
                    exp_size += expandedSize(s, res.baseAlphabetSize,
                                             res.patterns, size_memo);
                }
                if (exp_size > max_k)
                    continue;
                // count_kmers counts overlapping windows, so coverage
                // can exceed 1 on periodic sequences; saturate it so
                // that fully covering patterns tie and the smaller one
                // wins below.
                double cov = std::min(
                    1.0, static_cast<double>(k) * freq /
                        static_cast<double>(current_len));
                // Deterministic tie-break: prefer higher coverage, then
                // the smaller and more frequent pattern (paper §4.2.1),
                // then lexicographically smaller key.
                if (cov > best_cov ||
                    (cov == best_cov && (key.size() < best_key.size() ||
                                         (key.size() == best_key.size() &&
                                          key < best_key)))) {
                    best_cov = cov;
                    best_key = key;
                }
            }
        }
        if (best_key.empty())
            break; // no repeating pattern left

        DnaSequence kmer = keyToSymbols(best_key);
        res.patterns.push_back(kmer);
        size_memo.push_back(0);
        res.seq = replaceAndMerge(res.seq, kmer, next_letter);
        next_letter++;
    }
    return res;
}

std::vector<RunElement>
KmersResult::expandSymbol(Symbol s) const
{
    std::vector<RunElement> out;
    if (!isPattern(s)) {
        out.push_back(letterTable[s]);
        return out;
    }
    for (Symbol t : patterns[s - baseAlphabetSize]) {
        auto sub = expandSymbol(t);
        out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
}

VanillaTrace
KmersResult::expand() const
{
    VanillaTrace out;
    for (Symbol s : seq) {
        for (const RunElement &e : expandSymbol(s)) {
            if (!out.empty() && out.back().target == e.target)
                out.back().count += e.count;
            else
                out.push_back(e);
        }
    }
    return out;
}

std::vector<KmersTraceElement>
KmersResult::traceRle() const
{
    std::vector<KmersTraceElement> out;
    for (Symbol s : seq) {
        if (!out.empty() && out.back().symbol == s)
            out.back().count++;
        else
            out.push_back({s, 1});
    }
    return out;
}

size_t
KmersResult::patternSetSize() const
{
    std::vector<Symbol> distinct;
    for (Symbol s : seq) {
        if (std::find(distinct.begin(), distinct.end(), s) == distinct.end())
            distinct.push_back(s);
    }
    size_t n = 0;
    for (Symbol s : distinct)
        n += expandSymbol(s).size();
    return n;
}

std::string
KmersResult::traceToString() const
{
    // Name the distinct symbols of K p0, p1, ... in first-use order.
    std::vector<Symbol> distinct;
    for (Symbol s : seq) {
        if (std::find(distinct.begin(), distinct.end(), s) == distinct.end())
            distinct.push_back(s);
    }
    std::ostringstream os;
    bool first = true;
    for (const auto &e : traceRle()) {
        size_t idx = std::find(distinct.begin(), distinct.end(), e.symbol) -
            distinct.begin();
        if (!first)
            os << " . ";
        os << "p" << idx << " x " << e.count;
        first = false;
    }
    return os.str();
}

std::string
KmersResult::patternsToString() const
{
    std::vector<Symbol> distinct;
    for (Symbol s : seq) {
        if (std::find(distinct.begin(), distinct.end(), s) == distinct.end())
            distinct.push_back(s);
    }
    std::ostringstream os;
    os << "{";
    for (size_t i = 0; i < distinct.size(); i++) {
        if (i)
            os << ", ";
        os << "p" << i << ": ";
        auto elems = expandSymbol(distinct[i]);
        for (size_t j = 0; j < elems.size(); j++) {
            if (j)
                os << " . ";
            os << "0x" << std::hex << elems[j].target << std::dec << " x "
               << elems[j].count;
        }
    }
    os << "}";
    return os.str();
}

} // namespace cassandra::core
