#include "power/power_model.hh"

#include <cmath>
#include <sstream>

namespace cassandra::power {

namespace {

/**
 * Structure-level CACTI-like scaling. Area in model-mm^2 per bit with a
 * port/control overhead multiplier; per-access energy grows with the
 * square root of the structure's bit count (wordline/bitline scaling).
 */
struct Sram
{
    double bits;
    double overhead; ///< ports + control logic multiplier

    double area() const { return bits * 2.5e-6 * overhead; }
    double accessEnergy() const { return std::sqrt(bits) * 1.0e-3; }
    double leakPerCycle() const { return area() * 2.0e-4; }
};

// Structure sizes (bits).
// BPU: bimodal 8K x 2b, 6 TAGE tables 1K x 14b, loop table 128 x 64b,
// BTB 4096 x 64b, RSB 32 x 64b -- a Golden-Cove-class frontend.
constexpr double bpuBits = 8192.0 * 2 + 6 * 1024 * 14 + 128 * 64 +
    4096 * 64 + 32 * 64;
// BTU: 16 x 16 x (20 + 32) + 16 x 60 bits = 14,272 bits = 1.74 KiB.
constexpr double btuBits = 16.0 * 16 * (20 + 32) + 16 * 60;
// Other fetch-path storage (fetch queue, decode queues, microcode).
constexpr double fetchMiscBits = 24.0 * 1024 * 8;
// Rename: RAT + free lists + ROB payload.
constexpr double renameBits = 512.0 * 96 + 2 * 64 * 10 + 280 * 8;
// LSU: LQ/SQ CAMs + L1D tag/control share.
constexpr double lsuBits = (192.0 + 114) * 96 + 48 * 1024 * 8 * 0.15;
// EXE: register file + bypass + scheduler.
constexpr double exeBits = (280.0 + 332) * 64 + 96 * 80;

} // namespace

PowerReport
evaluatePower(const Activity &a, bool include_btu)
{
    PowerReport r;

    Sram bpu{bpuBits, 2.0};        // multiported, heavily banked
    Sram fetch_misc{fetchMiscBits, 1.5};
    Sram rename{renameBits, 3.0};  // CAM-heavy
    Sram lsu{lsuBits, 3.0};        // CAM-heavy
    Sram exe{exeBits, 4.0};        // many RF ports
    Sram btu{btuBits, 2.0};

    double cycles = static_cast<double>(a.cycles);

    // Fetch unit: BPU + I-fetch bookkeeping.
    r.fetchUnit.area = bpu.area() + fetch_misc.area();
    r.fetchUnit.dynamic =
        (a.bpuLookups + a.bpuUpdates) * bpu.accessEnergy() +
        a.btbLookups * bpu.accessEnergy() * 0.6 +
        a.rsbOps * bpu.accessEnergy() * 0.1 +
        a.l1iAccesses * fetch_misc.accessEnergy();
    r.fetchUnit.leakage =
        (bpu.leakPerCycle() + fetch_misc.leakPerCycle()) * cycles;

    r.renameUnit.area = rename.area();
    r.renameUnit.dynamic = a.instructions * rename.accessEnergy() * 0.8;
    r.renameUnit.leakage = rename.leakPerCycle() * cycles;

    r.loadStoreUnit.area = lsu.area();
    r.loadStoreUnit.dynamic =
        (a.loads + a.stores) * lsu.accessEnergy() +
        a.l1dAccesses * lsu.accessEnergy() * 0.5 +
        a.l2Accesses * lsu.accessEnergy() * 1.5 +
        a.l3Accesses * lsu.accessEnergy() * 3.0;
    r.loadStoreUnit.leakage = lsu.leakPerCycle() * cycles;

    r.executionUnit.area = exe.area();
    r.executionUnit.dynamic = a.intOps * exe.accessEnergy() * 0.9;
    r.executionUnit.leakage = exe.leakPerCycle() * cycles;

    if (include_btu) {
        r.btu.area = btu.area();
        r.btu.dynamic = (a.btuLookups + a.btuCommits) * btu.accessEnergy() +
            a.btuFills * btu.accessEnergy() * 4.0;
        r.btu.leakage = btu.leakPerCycle() * cycles;
    }
    return r;
}

double
PowerReport::totalArea() const
{
    return fetchUnit.area + renameUnit.area + loadStoreUnit.area +
        executionUnit.area + btu.area;
}

double
PowerReport::totalPower() const
{
    return fetchUnit.total() + renameUnit.total() + loadStoreUnit.total() +
        executionUnit.total() + btu.total();
}

std::string
PowerReport::toString() const
{
    std::ostringstream os;
    auto row = [&](const char *name, const ComponentReport &c) {
        os << "  " << name << ": area=" << c.area
           << " dynamic=" << c.dynamic << " leakage=" << c.leakage << "\n";
    };
    row("InstructionFetchUnit", fetchUnit);
    row("RenamingUnit", renameUnit);
    row("LoadStoreUnit", loadStoreUnit);
    row("ExecutionUnit", executionUnit);
    row("BranchTraceUnit", btu);
    os << "  total: area=" << totalArea() << " power=" << totalPower()
       << "\n";
    return os.str();
}

} // namespace cassandra::power
