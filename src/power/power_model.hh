/**
 * @file
 * Analytic power & area model (stands in for McPAT 1.3 + CACTI 6.5).
 *
 * Components follow the paper's Figure 9 breakdown: Instruction Fetch
 * Unit (which contains the BPU), Renaming Unit, Load Store Unit,
 * Execution Unit, and the Branch Trace Unit. SRAM-dominated structures
 * get area proportional to their bit count (with a per-structure port/
 * control overhead factor) and per-access dynamic energy proportional
 * to sqrt(bits); leakage power is proportional to area. Activity counts
 * come from the timing model. Absolute units are arbitrary-but-fixed;
 * the experiments only use relative comparisons, exactly like Fig. 9.
 */

#ifndef CASSANDRA_POWER_POWER_MODEL_HH
#define CASSANDRA_POWER_POWER_MODEL_HH

#include <cstdint>
#include <cstddef>
#include <string>

namespace cassandra::power {

/** Activity counters consumed by the model (filled from a timing run). */
struct Activity
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;

    uint64_t bpuLookups = 0; ///< TAGE lookups (all tables probed)
    uint64_t bpuUpdates = 0;
    uint64_t btbLookups = 0;
    uint64_t rsbOps = 0;

    uint64_t btuLookups = 0;
    uint64_t btuCommits = 0;
    uint64_t btuFills = 0;

    uint64_t l1iAccesses = 0;
    uint64_t l1dAccesses = 0;
    uint64_t l2Accesses = 0;
    uint64_t l3Accesses = 0;

    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t intOps = 0; ///< executed non-memory ops
};

/** Per-component area/power result. */
struct ComponentReport
{
    double area = 0;   ///< mm^2 (model units)
    double dynamic = 0;///< dynamic energy (model units)
    double leakage = 0;///< leakage energy over the run
    double total() const { return dynamic + leakage; }
};

/** Full Figure 9 style report. */
struct PowerReport
{
    ComponentReport fetchUnit;   ///< I-fetch + BPU structures
    ComponentReport renameUnit;
    ComponentReport loadStoreUnit;
    ComponentReport executionUnit;
    ComponentReport btu;

    double totalArea() const;
    double totalPower() const;
    std::string toString() const;
};

/** Evaluate the model for one run. include_btu sizes the BTU in. */
PowerReport evaluatePower(const Activity &activity, bool include_btu);

} // namespace cassandra::power

#endif // CASSANDRA_POWER_POWER_MODEL_HH
