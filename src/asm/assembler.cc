#include "asm/assembler.hh"

#include <cstring>

namespace cassandra::casm {

using ir::Inst;
using ir::Opcode;

Assembler::Assembler()
{
    // Scratch pool: x18..x62. x0..x17 are reserved (zero, ra, sp,
    // args); x63 is reserved for assembler macros (loop bounds) so
    // that kernels owning fixed scratch registers can still use
    // forLoop safely.
    regFree_.assign(ir::numRegs, false);
    for (int r = 18; r < ir::numRegs - 1; r++)
        regFree_[r] = true;
}

void
Assembler::emit(Inst inst)
{
    if (finalized_)
        throw AsmError("emit after finalize");
    prog_.insts.push_back(inst);
}

uint64_t
Assembler::here() const
{
    return ir::Program::pcOf(prog_.insts.size());
}

std::string
Assembler::freshLabel(const std::string &stem)
{
    return ".L" + stem + std::to_string(freshLabelId_++);
}

// --- ALU -----------------------------------------------------------------

#define DEF_RRR(name, opc)                                                  \
    void Assembler::name(RegId rd, RegId rs1, RegId rs2)                    \
    {                                                                       \
        emit({Opcode::opc, rd, rs1, rs2, 0});                               \
    }

DEF_RRR(add, Add)
DEF_RRR(sub, Sub)
DEF_RRR(and_, And)
DEF_RRR(or_, Or)
DEF_RRR(xor_, Xor)
DEF_RRR(shl, Shl)
DEF_RRR(shr, Shr)
DEF_RRR(sar, Sar)
DEF_RRR(rotl, Rotl)
DEF_RRR(rotr, Rotr)
DEF_RRR(mul, Mul)
DEF_RRR(mulh, Mulh)
DEF_RRR(mulhu, Mulhu)
DEF_RRR(slt, Slt)
DEF_RRR(sltu, Sltu)
DEF_RRR(addw, Addw)
DEF_RRR(subw, Subw)
DEF_RRR(mulw, Mulw)
#undef DEF_RRR

#define DEF_RRI(name, opc)                                                  \
    void Assembler::name(RegId rd, RegId rs1, int64_t imm)                  \
    {                                                                       \
        emit({Opcode::opc, rd, rs1, 0, imm});                               \
    }

DEF_RRI(addi, Addi)
DEF_RRI(andi, Andi)
DEF_RRI(ori, Ori)
DEF_RRI(xori, Xori)
DEF_RRI(shli, Shli)
DEF_RRI(shri, Shri)
DEF_RRI(sari, Sari)
DEF_RRI(rotli, Rotli)
DEF_RRI(slti, Slti)
DEF_RRI(sltiu, Sltiu)
DEF_RRI(addiw, Addiw)
DEF_RRI(rotlwi, Rotlwi)
#undef DEF_RRI

void
Assembler::li(RegId rd, int64_t imm)
{
    emit({Opcode::Li, rd, 0, 0, imm});
}

void
Assembler::la(RegId rd, const std::string &sym, int64_t offset)
{
    li(rd, static_cast<int64_t>(dataAddr(sym)) + offset);
}

void
Assembler::mv(RegId rd, RegId rs)
{
    addi(rd, rs, 0);
}

void
Assembler::cmovnz(RegId rd, RegId rs1, RegId rs2)
{
    emit({Opcode::Cmovnz, rd, rs1, rs2, 0});
}

// --- Memory ----------------------------------------------------------------

#define DEF_LOAD(name, opc)                                                 \
    void Assembler::name(RegId rd, RegId base, int64_t offset)              \
    {                                                                       \
        emit({Opcode::opc, rd, base, 0, offset});                           \
    }

DEF_LOAD(ld, Ld)
DEF_LOAD(lw, Lw)
DEF_LOAD(lh, Lh)
DEF_LOAD(lb, Lb)
#undef DEF_LOAD

#define DEF_STORE(name, opc)                                                \
    void Assembler::name(RegId rs, RegId base, int64_t offset)              \
    {                                                                       \
        emit({Opcode::opc, 0, base, rs, offset});                           \
    }

DEF_STORE(sd, Sd)
DEF_STORE(sw, Sw)
DEF_STORE(sh, Sh)
DEF_STORE(sb, Sb)
#undef DEF_STORE

// --- Control flow -----------------------------------------------------------

void
Assembler::emitBranchTo(Opcode op, RegId rs1, RegId rs2,
                        const std::string &target)
{
    fixups_.push_back({prog_.insts.size(), target});
    emit({op, 0, rs1, rs2, 0});
}

void
Assembler::beq(RegId rs1, RegId rs2, const std::string &target)
{
    emitBranchTo(Opcode::Beq, rs1, rs2, target);
}

void
Assembler::bne(RegId rs1, RegId rs2, const std::string &target)
{
    emitBranchTo(Opcode::Bne, rs1, rs2, target);
}

void
Assembler::blt(RegId rs1, RegId rs2, const std::string &target)
{
    emitBranchTo(Opcode::Blt, rs1, rs2, target);
}

void
Assembler::bge(RegId rs1, RegId rs2, const std::string &target)
{
    emitBranchTo(Opcode::Bge, rs1, rs2, target);
}

void
Assembler::bltu(RegId rs1, RegId rs2, const std::string &target)
{
    emitBranchTo(Opcode::Bltu, rs1, rs2, target);
}

void
Assembler::bgeu(RegId rs1, RegId rs2, const std::string &target)
{
    emitBranchTo(Opcode::Bgeu, rs1, rs2, target);
}

void
Assembler::beqz(RegId rs, const std::string &target)
{
    beq(rs, ir::regZero, target);
}

void
Assembler::bnez(RegId rs, const std::string &target)
{
    bne(rs, ir::regZero, target);
}

void
Assembler::call(const std::string &target)
{
    fixups_.push_back({prog_.insts.size(), target});
    emit({Opcode::Jal, ir::regRa, 0, 0, 0});
}

void
Assembler::j(const std::string &target)
{
    fixups_.push_back({prog_.insts.size(), target});
    emit({Opcode::Jal, ir::regZero, 0, 0, 0});
}

void
Assembler::jalr(RegId rd, RegId rs1, int64_t offset)
{
    emit({Opcode::Jalr, rd, rs1, 0, offset});
}

void
Assembler::ret()
{
    emit({Opcode::Ret, 0, ir::regRa, 0, 0});
}

void
Assembler::nop()
{
    emit({Opcode::Nop, 0, 0, 0, 0});
}

void
Assembler::halt()
{
    emit({Opcode::Halt, 0, 0, 0, 0});
}

void
Assembler::push(RegId rs)
{
    addi(ir::regSp, ir::regSp, -8);
    sd(rs, ir::regSp, 0);
}

void
Assembler::pop(RegId rd)
{
    ld(rd, ir::regSp, 0);
    addi(ir::regSp, ir::regSp, 8);
}

// --- Structure -------------------------------------------------------------

void
Assembler::label(const std::string &name)
{
    auto [it, inserted] = prog_.labels.emplace(name, here());
    if (!inserted)
        throw AsmError("duplicate label: " + name);
}

void
Assembler::beginFunction(const std::string &name, bool crypto)
{
    openFuncs_.push_back({name, here(), crypto});
    label(name);
}

void
Assembler::endFunction()
{
    if (openFuncs_.empty())
        throw AsmError("endFunction without beginFunction");
    OpenFunc f = openFuncs_.back();
    openFuncs_.pop_back();
    prog_.functions.push_back({f.name, f.entry, here()});
    if (f.crypto)
        prog_.cryptoRanges.push_back({f.entry, here()});
}

void
Assembler::forLoop(RegId counter, int64_t begin, int64_t end,
                   const std::function<void()> &body, int64_t step)
{
    constexpr RegId macro_reg = ir::numRegs - 1; // x63, reserved
    std::string head = freshLabel("loop");
    li(counter, begin);
    label(head);
    body();
    addi(counter, counter, step);
    li(macro_reg, end);
    if (step > 0)
        blt(counter, macro_reg, head);
    else
        blt(macro_reg, counter, head);
}

void
Assembler::forLoopReg(RegId counter, int64_t begin, RegId end_reg,
                      const std::function<void()> &body, int64_t step)
{
    std::string head = freshLabel("loopr");
    li(counter, begin);
    label(head);
    body();
    addi(counter, counter, step);
    blt(counter, end_reg, head);
}

// --- Data segment ------------------------------------------------------------

uint64_t
Assembler::allocData(const std::string &sym, size_t bytes, size_t align)
{
    if (dataSyms_.count(sym))
        throw AsmError("duplicate data symbol: " + sym);
    if (align == 0 || (align & (align - 1)))
        throw AsmError("alignment must be a power of two");
    dataCursor_ = (dataCursor_ + align - 1) & ~(align - 1);
    uint64_t addr = ir::Program::dataBase + dataCursor_;
    dataSyms_[sym] = addr;
    dataCursor_ += bytes;
    if (prog_.dataImage.size() < dataCursor_)
        prog_.dataImage.resize(dataCursor_, 0);
    return addr;
}

uint64_t
Assembler::dataAddr(const std::string &sym) const
{
    auto it = dataSyms_.find(sym);
    if (it == dataSyms_.end())
        throw AsmError("undefined data symbol: " + sym);
    return it->second;
}

void
Assembler::setData(const std::string &sym, size_t offset, const void *bytes,
                   size_t len)
{
    uint64_t addr = dataAddr(sym) - ir::Program::dataBase + offset;
    if (addr + len > prog_.dataImage.size())
        throw AsmError("setData out of range for " + sym);
    std::memcpy(prog_.dataImage.data() + addr, bytes, len);
}

void
Assembler::setData64(const std::string &sym, size_t index, uint64_t value)
{
    uint8_t buf[8];
    for (int i = 0; i < 8; i++)
        buf[i] = static_cast<uint8_t>(value >> (8 * i));
    setData(sym, index * 8, buf, 8);
}

void
Assembler::setData32(const std::string &sym, size_t index, uint32_t value)
{
    uint8_t buf[4];
    for (int i = 0; i < 4; i++)
        buf[i] = static_cast<uint8_t>(value >> (8 * i));
    setData(sym, index * 4, buf, 4);
}

// --- Scratch registers -----------------------------------------------------

RegId
Assembler::temp()
{
    for (int r = 18; r < ir::numRegs - 1; r++) {
        if (regFree_[r]) {
            regFree_[r] = false;
            return static_cast<RegId>(r);
        }
    }
    throw AsmError("scratch register pool exhausted");
}

void
Assembler::release(RegId reg)
{
    if (reg < 18 || reg >= ir::numRegs)
        throw AsmError("release of non-scratch register");
    regFree_[reg] = true;
}

// --- Finalize ---------------------------------------------------------------

ir::Program
Assembler::finalize()
{
    if (!openFuncs_.empty())
        throw AsmError("unterminated function: " + openFuncs_.back().name);
    for (const auto &fix : fixups_) {
        auto it = prog_.labels.find(fix.target);
        if (it == prog_.labels.end())
            throw AsmError("undefined label: " + fix.target);
        prog_.insts[fix.instIndex].imm =
            static_cast<int64_t>(it->second);
    }
    fixups_.clear();
    // Programs start at "main" when defined (it need not come first).
    auto main_it = prog_.labels.find("main");
    if (main_it != prog_.labels.end())
        prog_.entry = main_it->second;
    finalized_ = true;
    return prog_;
}

} // namespace cassandra::casm
