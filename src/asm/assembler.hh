/**
 * @file
 * Macro-assembler for the Cassandra IR.
 *
 * Cryptographic kernels are authored in C++ against this builder: it
 * provides one emitter per opcode, labels with forward references,
 * function symbols with a per-function crypto tag (the paper's @kappa
 * instruction tag, realized as Crypto PC Ranges), a data segment with
 * named symbols, a trivial scratch-register allocator, and structured
 * helpers for counted loops and calls.
 */

#ifndef CASSANDRA_ASM_ASSEMBLER_HH
#define CASSANDRA_ASM_ASSEMBLER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/program.hh"

namespace cassandra::casm {

using ir::RegId;

/** Error thrown on malformed assembly (undefined label, etc.). */
class AsmError : public std::runtime_error
{
  public:
    explicit AsmError(const std::string &what)
        : std::runtime_error("asm: " + what)
    {}
};

/** Builder producing ir::Program objects. */
class Assembler
{
  public:
    Assembler();

    // ALU register-register -------------------------------------------
    void add(RegId rd, RegId rs1, RegId rs2);
    void sub(RegId rd, RegId rs1, RegId rs2);
    void and_(RegId rd, RegId rs1, RegId rs2);
    void or_(RegId rd, RegId rs1, RegId rs2);
    void xor_(RegId rd, RegId rs1, RegId rs2);
    void shl(RegId rd, RegId rs1, RegId rs2);
    void shr(RegId rd, RegId rs1, RegId rs2);
    void sar(RegId rd, RegId rs1, RegId rs2);
    void rotl(RegId rd, RegId rs1, RegId rs2);
    void rotr(RegId rd, RegId rs1, RegId rs2);
    void mul(RegId rd, RegId rs1, RegId rs2);
    void mulh(RegId rd, RegId rs1, RegId rs2);
    void mulhu(RegId rd, RegId rs1, RegId rs2);
    void slt(RegId rd, RegId rs1, RegId rs2);
    void sltu(RegId rd, RegId rs1, RegId rs2);
    /** 32-bit word forms; results zero-extended. */
    void addw(RegId rd, RegId rs1, RegId rs2);
    void subw(RegId rd, RegId rs1, RegId rs2);
    void mulw(RegId rd, RegId rs1, RegId rs2);

    // ALU register-immediate ------------------------------------------
    void addi(RegId rd, RegId rs1, int64_t imm);
    void andi(RegId rd, RegId rs1, int64_t imm);
    void ori(RegId rd, RegId rs1, int64_t imm);
    void xori(RegId rd, RegId rs1, int64_t imm);
    void shli(RegId rd, RegId rs1, int64_t imm);
    void shri(RegId rd, RegId rs1, int64_t imm);
    void sari(RegId rd, RegId rs1, int64_t imm);
    void rotli(RegId rd, RegId rs1, int64_t imm);
    void slti(RegId rd, RegId rs1, int64_t imm);
    void sltiu(RegId rd, RegId rs1, int64_t imm);
    void addiw(RegId rd, RegId rs1, int64_t imm);
    /** 32-bit rotate-left by immediate (zero-extended result). */
    void rotlwi(RegId rd, RegId rs1, int64_t imm);

    // Constants and moves ---------------------------------------------
    void li(RegId rd, int64_t imm);
    /** rd = address of a data symbol (+ byte offset). */
    void la(RegId rd, const std::string &sym, int64_t offset = 0);
    /** Register move (addi rd, rs, 0). */
    void mv(RegId rd, RegId rs);
    /** Constant-time move: rd = (rs1 != 0) ? rs2 : rd. */
    void cmovnz(RegId rd, RegId rs1, RegId rs2);

    // Memory ------------------------------------------------------------
    void ld(RegId rd, RegId base, int64_t offset = 0);
    void lw(RegId rd, RegId base, int64_t offset = 0);
    void lh(RegId rd, RegId base, int64_t offset = 0);
    void lb(RegId rd, RegId base, int64_t offset = 0);
    void sd(RegId rs, RegId base, int64_t offset = 0);
    void sw(RegId rs, RegId base, int64_t offset = 0);
    void sh(RegId rs, RegId base, int64_t offset = 0);
    void sb(RegId rs, RegId base, int64_t offset = 0);

    // Control flow ------------------------------------------------------
    void beq(RegId rs1, RegId rs2, const std::string &target);
    void bne(RegId rs1, RegId rs2, const std::string &target);
    void blt(RegId rs1, RegId rs2, const std::string &target);
    void bge(RegId rs1, RegId rs2, const std::string &target);
    void bltu(RegId rs1, RegId rs2, const std::string &target);
    void bgeu(RegId rs1, RegId rs2, const std::string &target);
    /** Branch if rs == 0 / rs != 0 (compares against x0). */
    void beqz(RegId rs, const std::string &target);
    void bnez(RegId rs, const std::string &target);
    /** Call: jal ra, target. */
    void call(const std::string &target);
    /** Unconditional jump: jal x0, target. */
    void j(const std::string &target);
    /** Indirect jump/call. */
    void jalr(RegId rd, RegId rs1, int64_t offset = 0);
    void ret();
    void nop();
    void halt();

    // Stack helpers ------------------------------------------------------
    /** Push a register on the stack (sp-adjust + store). */
    void push(RegId rs);
    /** Pop a register from the stack. */
    void pop(RegId rd);

    // Structure ----------------------------------------------------------
    /** Define a label at the current PC. */
    void label(const std::string &name);
    /**
     * Begin a function symbol. All code emitted until endFunction() is
     * attributed to it; if crypto is true the PC range is added to the
     * program's Crypto PC Ranges.
     */
    void beginFunction(const std::string &name, bool crypto);
    void endFunction();

    /**
     * Emit a counted loop: for (i = begin; i < end; i += step) body().
     * The loop back-edge is a single conditional branch whose sequential
     * trace is the classic PC1 x n . PC0 x 1 shape from the paper.
     *
     * @param counter register used as the loop counter (live in body)
     * @param begin initial value
     * @param end exclusive bound (constant)
     * @param body callback emitting the loop body
     * @param step increment
     */
    void forLoop(RegId counter, int64_t begin, int64_t end,
                 const std::function<void()> &body, int64_t step = 1);
    /** Counted loop with the bound in a register. */
    void forLoopReg(RegId counter, int64_t begin, RegId end_reg,
                    const std::function<void()> &body, int64_t step = 1);

    // Data segment ---------------------------------------------------------
    /** Reserve bytes in the data segment under a symbol; returns address. */
    uint64_t allocData(const std::string &sym, size_t bytes,
                       size_t align = 8);
    /** Address of a previously allocated data symbol. */
    uint64_t dataAddr(const std::string &sym) const;
    /** Initialize bytes at sym+offset in the data image. */
    void setData(const std::string &sym, size_t offset,
                 const void *bytes, size_t len);
    /** Initialize a 64-bit little-endian word at sym + index*8. */
    void setData64(const std::string &sym, size_t index, uint64_t value);
    /** Initialize a 32-bit little-endian word at sym + index*4. */
    void setData32(const std::string &sym, size_t index, uint32_t value);

    // Scratch registers ------------------------------------------------------
    /** Grab a scratch register (x18..x63); throws when exhausted. */
    RegId temp();
    /** Return a scratch register to the pool. */
    void release(RegId reg);
    /** RAII scratch register. */
    class Temp
    {
      public:
        explicit Temp(Assembler &as) : as_(as), reg_(as.temp()) {}
        ~Temp() { as_.release(reg_); }
        Temp(const Temp &) = delete;
        Temp &operator=(const Temp &) = delete;
        operator RegId() const { return reg_; }
        RegId reg() const { return reg_; }

      private:
        Assembler &as_;
        RegId reg_;
    };

    /** Current PC (address the next instruction will get). */
    uint64_t here() const;

    /** Resolve labels and produce the program. */
    ir::Program finalize();

  private:
    void emit(ir::Inst inst);
    void emitBranchTo(ir::Opcode op, RegId rs1, RegId rs2,
                      const std::string &target);
    uint64_t freshLabelId_ = 0;
    std::string freshLabel(const std::string &stem);

    ir::Program prog_;
    std::map<std::string, uint64_t> dataSyms_;
    uint64_t dataCursor_ = 0;
    struct Fixup
    {
        size_t instIndex;
        std::string target;
    };
    std::vector<Fixup> fixups_;
    struct OpenFunc
    {
        std::string name;
        uint64_t entry;
        bool crypto;
    };
    std::vector<OpenFunc> openFuncs_;
    std::vector<bool> regFree_;
    bool finalized_ = false;
};

} // namespace cassandra::casm

#endif // CASSANDRA_ASM_ASSEMBLER_HH
