#include "crypto/workloads.hh"

#include "crypto/kernels/keccak_kernel.hh"
#include "crypto/ref/chacha20.hh"
#include "crypto/ref/x25519.hh"
#include "crypto/workload_registry.hh"

namespace cassandra::crypto {

namespace {

/**
 * Emit the SpectreGuard-style (s)andboxed region: a branchy, memory-
 * heavy loop (bounds-checked table walk with data-dependent branches)
 * that stands in for untrusted non-crypto code.
 *
 * @param iters outer iterations (scales the sandbox fraction)
 */
void
emitSandbox(Assembler &as, int64_t iters)
{
    as.allocData("sb_table", 4096, 8);
    as.allocData("sb_acc", 8, 8);

    as.beginFunction("sandbox_region", /*crypto=*/false);
    constexpr RegId si = 18, sj = 19, sv = 20, sp_ = 21, sacc = 22,
                    st = 23, st2 = 24;
    as.la(sp_, "sb_table");
    as.li(sacc, 0);
    as.forLoop(si, 0, std::max<int64_t>(1, iters), [&] {
        as.forLoop(sj, 0, 64, [&] {
            // index = (acc * 29 + j * 13) % 512 words
            as.li(st, 29);
            as.mul(sv, sacc, st);
            as.li(st, 13);
            as.mul(st2, sj, st);
            as.add(sv, sv, st2);
            as.andi(sv, sv, 511);
            as.shli(sv, sv, 3);
            as.add(sv, sp_, sv);
            as.ld(st, sv, 0);
            as.add(sacc, sacc, st);
            // data-dependent branch (bounds-check style)
            as.andi(st2, sacc, 7);
            as.slti(st2, st2, 4);
            as.beq(st2, ir::regZero, ".sb_skip");
            as.xori(sacc, sacc, 0x5a5a);
            as.label(".sb_skip");
            as.sd(sacc, sv, 0);
        });
    });
    as.la(st, "sb_acc");
    as.sd(sacc, st, 0);
    as.ret();
    as.endFunction();
}

} // namespace

Workload
syntheticMixWorkload(const std::string &crypto_kernel, int sandbox_pct)
{
    // Rough dynamic-cost calibration: one sandbox outer iteration is
    // ~1.3k instructions; the crypto regions cost ~80k (chacha20 over
    // 4 KB) and ~3M (one X25519 ladder). Iteration counts are chosen
    // so the sandbox share of dynamic instructions approximates
    // sandbox_pct (the paper's 90s/10c .. all-crypto mixes).
    const bool use_chacha = crypto_kernel == "chacha20";
    const double crypto_insts = use_chacha ? 80000.0 : 3000000.0;
    const int64_t sandbox_iters = sandbox_pct == 0
        ? 0
        : static_cast<int64_t>(crypto_insts * sandbox_pct /
                               (100 - sandbox_pct) / 1300.0);

    Assembler as;
    const int64_t msg_len = 4096;
    if (use_chacha) {
        as.allocData("key", 32, 8);
        as.allocData("nonce", 12, 4);
        as.allocData("msg", static_cast<size_t>(msg_len), 64);
        as.allocData("out", static_cast<size_t>(msg_len), 64);
    }

    as.beginFunction("main", false);
    if (sandbox_iters > 0)
        as.call("sandbox_region");
    if (use_chacha) {
        as.la(a0, "out");
        as.la(a1, "msg");
        as.li(a2, msg_len);
        as.la(a3, "key");
        as.la(a4, "nonce");
        as.li(a5, 1);
        as.call("chacha20_xor");
    } else {
        as.call("x25519_ladder");
    }
    if (sandbox_iters > 0)
        as.call("sandbox_region");
    as.halt();
    as.endFunction();

    if (sandbox_iters > 0)
        emitSandbox(as, std::max<int64_t>(1, sandbox_iters / 2));
    if (use_chacha) {
        emitChaCha20(as, /*unroll=*/false);
    } else {
        emitX25519Ladder(as);
        // Flat (donna-style) bignum code: the fixed 8-limb loops are
        // unrolled so the hot branch working set fits the 16-entry BTU.
        emitBignum(as, /*unroll_inner=*/true, 8);
    }

    Workload w;
    w.name = "synthetic-" + crypto_kernel + "-" +
        (sandbox_pct == 0 ? std::string("all-crypto")
                          : std::to_string(sandbox_pct) + "s" +
                              std::to_string(100 - sandbox_pct) + "c");
    w.suite = "Synthetic";
    w.program = as.finalize();
    w.sandboxFraction = sandbox_pct / 100.0;

    if (sandbox_iters > 0) {
        uint64_t table_addr = as.dataAddr("sb_table");
        // Table contents are public data.
        w.setInput = [table_addr](sim::Machine &m, int) {
            pokeBytes(m, table_addr, patternBytes(4096, 0x61));
        };
    }

    if (use_chacha) {
        uint64_t key_addr = as.dataAddr("key");
        uint64_t nonce_addr = as.dataAddr("nonce");
        uint64_t msg_addr = as.dataAddr("msg");
        auto base_input = w.setInput;
        w.setInput = [=](sim::Machine &m, int which) {
            if (base_input)
                base_input(m, which);
            pokeBytes(m, key_addr,
                      patternBytes(32, static_cast<uint8_t>(which + 7)));
            pokeBytes(m, nonce_addr, patternBytes(12, 0x40));
            pokeBytes(m, msg_addr,
                      patternBytes(static_cast<size_t>(msg_len), 0x50));
        };
        // HACL* chacha20 keeps secrets out of the stack: only the key
        // and message regions are annotated (paper Fig. 8, left).
        w.secretRegions = {
            {key_addr, key_addr + 32},
            {msg_addr, msg_addr + static_cast<uint64_t>(msg_len)}};
    } else {
        uint64_t scalar_addr = as.dataAddr("ec_scalar");
        uint64_t point_addr = as.dataAddr("ec_point");
        auto base_input = w.setInput;
        w.setInput = [=](sim::Machine &m, int which) {
            if (base_input)
                base_input(m, which);
            pokeBytes(m, scalar_addr,
                      patternBytes(32, static_cast<uint8_t>(which + 60)));
            auto base = ref::x25519BasePoint();
            pokeBytes(m, point_addr, {base.begin(), base.end()});
        };
        // curve25519 spills secrets: the scalar, the field-element
        // work buffers and the stack are all annotated secret
        // (paper Fig. 8, right).
        uint64_t stack_lo = ir::Program::stackTop - 65536;
        w.secretRegions = {
            {scalar_addr, scalar_addr + 32},
            {as.dataAddr("ec_x1"), as.dataAddr("ec_zinv") + 32},
            {stack_lo, ir::Program::stackTop}};
    }
    return w;
}

std::vector<Workload>
allCryptoWorkloads()
{
    // The registry holds the Fig. 7 order; the synthetic mixes
    // (Fig. 8) are registered but not part of the crypto set.
    const auto &reg = WorkloadRegistry::global();
    std::vector<Workload> out;
    for (const char *suite : {"BearSSL", "OpenSSL", "PQC"}) {
        for (auto &w : reg.makeSuite(suite))
            out.push_back(std::move(w));
    }
    return out;
}

std::vector<Workload>
suiteWorkloads(const std::string &suite)
{
    return WorkloadRegistry::global().makeSuite(suite);
}

} // namespace cassandra::crypto
