/**
 * @file
 * String-keyed workload registry.
 *
 * Every benchmark the paper evaluates is registered under a stable
 * name (the Workload::name it produces) with its suite tag, so
 * scenarios are selectable by name from CLIs, configs and the
 * ExperimentRunner:
 *
 *   auto w = crypto::WorkloadRegistry::global().make("kyber768");
 *
 * Lookup is case-insensitive ("chacha20_ct" finds "ChaCha20_ct").
 * Parameterized entries are spelled as paths: the Fig. 8 mixes are
 * pre-registered as "synthetic/<kernel>/<sandbox-pct>" (for example
 * "synthetic/chacha20/75"), and any other percentage in [0, 99] is
 * synthesized on demand from the same pattern. The composite server
 * mixes follow the same scheme as "server/<mix>/<n>" — standard sizes
 * (server/tls/16, /64, /256) are pre-registered and any other request
 * count in [1, 999999] builds on demand. Unknown names raise
 * std::invalid_argument listing the available entries.
 */

#ifndef CASSANDRA_CRYPTO_WORKLOAD_REGISTRY_HH
#define CASSANDRA_CRYPTO_WORKLOAD_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/workload.hh"

namespace cassandra::crypto {

/** Name -> factory table with suite tags. */
class WorkloadRegistry
{
  public:
    using Factory = std::function<core::Workload()>;

    /** One registered scenario. */
    struct Entry
    {
        /** Canonical name. Equals Workload::name for the crypto
         * suites; synthetic entries use the path spelling
         * ("synthetic/chacha20/75") while the built Workload carries
         * its own descriptive name. */
        std::string name;
        std::string suite; ///< "BearSSL", "OpenSSL", "PQC", "Synthetic"
        Factory factory;
    };

    /** The registry preloaded with every paper workload. */
    static const WorkloadRegistry &global();

    /** Register a scenario; later registrations shadow earlier ones. */
    void add(std::string name, std::string suite, Factory factory);

    /** True if make(name) would succeed. */
    bool contains(const std::string &name) const;

    /**
     * Build the workload registered (or parameterized) as `name`.
     * @throws std::invalid_argument for unknown names.
     */
    core::Workload make(const std::string &name) const;

    /** Suite tag of a registered name (throws on unknown names). */
    const std::string &suiteOf(const std::string &name) const;

    /** Canonical names, in registration (paper) order. */
    std::vector<std::string> names() const;

    /** Canonical names of one suite, in registration order. */
    std::vector<std::string> names(const std::string &suite) const;

    /** Distinct suite tags, in first-appearance order. */
    std::vector<std::string> suites() const;

    /** Build every workload of one suite. */
    std::vector<core::Workload> makeSuite(const std::string &suite) const;

    /** Name-based factory adapter for core::ExperimentRunner. */
    std::function<core::Workload(const std::string &)> resolver() const;

  private:
    const Entry *find(const std::string &name) const;
    /** Parse "synthetic/<kernel>/<pct>"; null if not of that shape. */
    static bool parseSynthetic(const std::string &name,
                               std::string &kernel, int &pct);
    /** Parse "server/<mix>/<n>"; false if not of that shape. */
    static bool parseServer(const std::string &name, std::string &mix,
                            uint64_t &n);

    std::vector<Entry> entries_;
    std::map<std::string, size_t> index_; ///< lowercased name -> entry
};

} // namespace cassandra::crypto

#endif // CASSANDRA_CRYPTO_WORKLOAD_REGISTRY_HH
