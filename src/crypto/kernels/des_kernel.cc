/**
 * @file
 * Constant-time DES IR kernel in the spirit of BearSSL's des_ct: the
 * permutations are table-driven loops over public tables and the
 * S-boxes are read with a full cmov scan (every entry is touched for
 * every lookup, so no address depends on secret data).
 */

#include "crypto/kernels/common.hh"
#include "crypto/ref/des.hh"

namespace cassandra::crypto {

namespace {

// FIPS 46-3 tables (same values as the reference implementation).
constexpr int kIp[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
};
constexpr int kExpansion[48] = {
    32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,
    8,  9,  10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
};
constexpr int kPerm[32] = {
    16, 7,  20, 21, 29, 12, 28, 17, 1,  15, 23, 26, 5,  18, 31, 10,
    2,  8,  24, 14, 32, 27, 3,  9,  19, 13, 30, 6,  22, 11, 4,  25,
};

// permute registers: x18..x25
constexpr RegId pv = 18, pr = 19, pi_ = 20, pt = 21, ptbl = 22, pn = 23,
                pb = 24, pt2 = 25;
// sbox scan: x26..x31
constexpr RegId xj = 26, xv = 27, xres = 28, xt = 29, xt2 = 30, xt3 = 31;
// round function: x32..x44
constexpr RegId dl = 32, dr = 33, drnd = 34, dk = 35, de = 36, df = 37,
                dt = 38, dt2 = 39, dbx = 40, din = 41, dout = 42,
                doff = 43, dlen = 44;

/** Emit the table for a permutation as 1 byte per entry. */
void
pokeTable(Assembler &as, const std::string &sym, const int *table, int n)
{
    as.allocData(sym, static_cast<size_t>(n), 8);
    std::vector<uint8_t> bytes(n);
    for (int i = 0; i < n; i++)
        bytes[i] = static_cast<uint8_t>(table[i]);
    as.setData(sym, 0, bytes.data(), bytes.size());
}

} // namespace

Workload
desCtWorkload()
{
    Assembler as;
    pokeTable(as, "des_ip", kIp, 64);
    pokeTable(as, "des_e", kExpansion, 48);
    pokeTable(as, "des_p", kPerm, 32);
    // The inverse permutation table (computed at build time).
    {
        int fp[64];
        for (int i = 0; i < 64; i++) {
            for (int j = 0; j < 64; j++) {
                if (kIp[j] == i + 1) {
                    fp[i] = j + 1;
                    break;
                }
            }
        }
        pokeTable(as, "des_fp", fp, 64);
    }

    {
        const auto &sboxes = ref::desSboxes();
        as.allocData("des_sbox", 8 * 64, 8);
        std::vector<uint8_t> flat;
        for (const auto &box : sboxes)
            flat.insert(flat.end(), box.begin(), box.end());
        as.setData("des_sbox", 0, flat.data(), flat.size());
    }
    as.allocData("des_key", 8, 8);
    as.allocData("des_rk", 16 * 8, 8); // 48-bit round keys as u64
    as.allocData("des_msg", 64, 8);
    as.allocData("des_out", 64, 8);

    // des_permute(a0 = value, a1 = table, a2 = out_bits, a3 = in_bits)
    // -> a0 (MSB-first bit numbering, as in the spec).
    as.beginFunction("des_permute", true);
    as.mv(pv, a0);
    as.li(pr, 0);
    as.mv(ptbl, a1);
    as.mv(pn, a2);
    as.forLoopReg(pi_, 0, pn, [&] {
        as.add(pt, ptbl, pi_);
        as.lb(pb, pt, 0); // 1-based source bit
        as.sub(pt, a3, pb);
        as.shr(pt2, pv, pt);
        as.andi(pt2, pt2, 1);
        as.shli(pr, pr, 1);
        as.or_(pr, pr, pt2);
    });
    as.mv(a0, pr);
    as.ret();
    as.endFunction();

    // des_sbox_lookup(a0 = box index 0..7, a1 = 6-bit input) -> a0
    // via a constant-time scan of all 64 entries.
    as.beginFunction("des_sbox_lookup", true);
    as.la(xt, "des_sbox");
    as.shli(xt2, a0, 6);
    as.add(xt, xt, xt2); // &sbox[box][0]
    as.li(xres, 0);
    as.forLoop(xj, 0, 64, [&] {
        as.add(xt2, xt, xj);
        as.lb(xv, xt2, 0);
        as.xor_(xt3, xj, a1);
        as.sltiu(xt3, xt3, 1); // 1 when j == input
        as.cmovnz(xres, xt3, xv);
    });
    as.mv(a0, xres);
    as.ret();
    as.endFunction();

    // des_encrypt(a0 = out8, a1 = in8, a2 = rk)
    as.beginFunction("des_encrypt", true);
    as.push(ir::regRa);
    as.mv(dout, a0);
    as.mv(din, a1);
    as.mv(dk, a2);
    // Load the 64-bit block big-endian.
    as.li(dt, 0);
    for (int i = 0; i < 8; i++) {
        as.lb(dt2, din, i);
        as.shli(dt, dt, 8);
        as.or_(dt, dt, dt2);
    }
    as.mv(a0, dt);
    as.la(a1, "des_ip");
    as.li(a2, 64);
    as.li(a3, 64);
    as.call("des_permute");
    as.shri(dl, a0, 32);
    as.li(dt, 0xffffffff);
    as.and_(dr, a0, dt);

    as.forLoop(drnd, 0, 16, [&] {
        // e = E(r) ^ rk[round]
        as.mv(a0, dr);
        as.la(a1, "des_e");
        as.li(a2, 48);
        as.li(a3, 32);
        as.call("des_permute");
        as.shli(dt, drnd, 3);
        as.add(dt, dk, dt);
        as.ld(dt, dt, 0);
        as.xor_(de, a0, dt);
        // f = S-boxes over the 8 six-bit groups.
        as.li(df, 0);
        as.forLoop(dbx, 0, 8, [&] {
            // idx = (e >> (42 - 6*box)) & 0x3f
            as.shli(dt, dbx, 2);
            as.shli(dt2, dbx, 1);
            as.add(dt, dt, dt2); // 6*box
            as.li(dt2, 42);
            as.sub(dt2, dt2, dt);
            as.shr(dt, de, dt2);
            as.andi(a1, dt, 0x3f);
            as.mv(a0, dbx);
            as.call("des_sbox_lookup");
            as.shli(df, df, 4);
            as.or_(df, df, a0);
        });
        as.mv(a0, df);
        as.la(a1, "des_p");
        as.li(a2, 32);
        as.li(a3, 32);
        as.call("des_permute");
        as.xor_(dt, dl, a0);
        as.mv(dl, dr);
        as.mv(dr, dt);
    });

    // Final permutation = IP^-1 of (R || L): invert by scanning IP.
    // Build preout and apply the inverse via the identity
    // FP(x)[kIp[j]] = x[j]; we emit the inverse table at build time.
    as.shli(dt, dr, 32);
    as.or_(dt, dt, dl);
    as.mv(a0, dt);
    as.la(a1, "des_fp");
    as.li(a2, 64);
    as.li(a3, 64);
    as.call("des_permute");
    // Store big-endian.
    for (int i = 0; i < 8; i++) {
        as.shri(dt, a0, 56 - 8 * i);
        as.andi(dt, dt, 0xff);
        as.sb(dt, dout, i);
    }
    as.pop(ir::regRa);
    as.ret();
    as.endFunction();

    // des_ecb(): key schedule precomputed on the host and bound as
    // data (the schedule itself is also constant-time; the workload
    // focuses on the block function, like the BearSSL test).
    as.beginFunction("des_ecb", true);
    as.push(ir::regRa);
    as.li(doff, 0);
    as.li(dlen, 64);
    as.label(".des_blk");
    as.la(a0, "des_out");
    as.add(a0, a0, doff);
    as.la(a1, "des_msg");
    as.add(a1, a1, doff);
    as.la(a2, "des_rk");
    as.call("des_encrypt");
    as.addi(doff, doff, 8);
    as.bltu(doff, dlen, ".des_blk");
    as.pop(ir::regRa);
    as.ret();
    as.endFunction();

    as.beginFunction("main", false);
    as.call("des_ecb");
    as.halt();
    as.endFunction();

    Workload w;
    w.name = "DES_ct";
    w.suite = "BearSSL";
    w.program = as.finalize();
    uint64_t key_addr = as.dataAddr("des_key");
    uint64_t rk_addr = as.dataAddr("des_rk");
    uint64_t msg_addr = as.dataAddr("des_msg");
    uint64_t out_addr = as.dataAddr("des_out");

    w.setInput = [=](sim::Machine &m, int which) {
        auto key = patternBytes(8, static_cast<uint8_t>(which + 120));
        pokeBytes(m, key_addr, key);
        auto rk = ref::desKeySchedule(key.data());
        for (int i = 0; i < 16; i++)
            m.write64(rk_addr + 8 * i, rk[i]);
        pokeBytes(m, msg_addr, patternBytes(64, 0x55));
    };
    w.check = [=](const sim::Machine &m) {
        auto key = patternBytes(8, 122);
        auto msg = patternBytes(64, 0x55);
        auto expect = ref::desEcbEncrypt(key.data(), msg);
        return peekBytes(m, out_addr, 64) == expect;
    };
    w.secretRegions = {{key_addr, key_addr + 8},
                       {rk_addr, rk_addr + 16 * 8}};
    return w;
}

} // namespace cassandra::crypto
