/**
 * @file
 * Poly1305 emitter (RFC 8439, donna 26-bit-limb layout), reusable by
 * composite workloads.
 */

#ifndef CASSANDRA_CRYPTO_KERNELS_POLY1305_KERNEL_HH
#define CASSANDRA_CRYPTO_KERNELS_POLY1305_KERNEL_HH

#include "crypto/kernels/common.hh"

namespace cassandra::crypto {

/** Emit the poly1305 function: a0 = out16, a1 = key32, a2 = msg,
 * a3 = length in bytes (must be a multiple of 16). */
void emitPoly1305(Assembler &as);

} // namespace cassandra::crypto

#endif // CASSANDRA_CRYPTO_KERNELS_POLY1305_KERNEL_HH
