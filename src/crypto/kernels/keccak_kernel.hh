/**
 * @file
 * Keccak-f[1600] / SHAKE IR kernel (FIPS 202) and the SHAKE workload.
 * The permutation keeps all 25 lanes in registers; the sponge keeps
 * the state in memory between permutations.
 */

#ifndef CASSANDRA_CRYPTO_KERNELS_KECCAK_KERNEL_HH
#define CASSANDRA_CRYPTO_KERNELS_KECCAK_KERNEL_HH

#include "crypto/kernels/common.hh"

namespace cassandra::crypto {

/**
 * Define keccak_f(a0 = state200) and
 * shake(a0 = out, a1 = outlen, a2 = in, a3 = inlen, a4 = rate)
 * (rate 168 = SHAKE128, 136 = SHAKE256; XOF domain 0x1f).
 */
void emitKeccak(Assembler &as);

} // namespace cassandra::crypto

#endif // CASSANDRA_CRYPTO_KERNELS_KECCAK_KERNEL_HH
