/**
 * @file
 * SHA-256 IR kernel (FIPS 180-4) plus HMAC-SHA256 and the TLS 1.2 PRF
 * built on top of it, and their workloads.
 *
 * The BearSSL-style workload keeps the message schedule and round
 * computation in counted loops; the OpenSSL-style workload emits the
 * 64 rounds straight-line (different branch profile, same function).
 */

#ifndef CASSANDRA_CRYPTO_KERNELS_SHA256_KERNEL_HH
#define CASSANDRA_CRYPTO_KERNELS_SHA256_KERNEL_HH

#include "crypto/kernels/common.hh"

namespace cassandra::crypto {

/**
 * Define sha256_init(state), sha256_compress(state, block) and
 * sha256_full(out, msg, len) in the assembler. Scratch data symbols
 * are allocated with the given prefix.
 */
void emitSha256(Assembler &as, bool unroll_rounds);

/**
 * Define hmac_sha256(out, key, keylen, msg, msglen); requires
 * emitSha256 to have been emitted into the same program.
 */
void emitHmacSha256(Assembler &as);

/** BearSSL-style SHA-256 workload (rolled loops). */
Workload sha256BearsslWorkload();
/** OpenSSL-style SHA-256 workload (unrolled rounds). */
Workload sha256OpensslWorkload();
/** TLS 1.2 PRF workload (P_SHA256 expansion loop). */
Workload tlsPrfWorkload();
/** MultiHash workload: SHA-256 over several message slices. */
Workload multiHashWorkload();

} // namespace cassandra::crypto

#endif // CASSANDRA_CRYPTO_KERNELS_SHA256_KERNEL_HH
