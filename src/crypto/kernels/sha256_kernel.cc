#include "crypto/kernels/sha256_kernel.hh"

#include "crypto/ref/sha256.hh"

namespace cassandra::crypto {

namespace {

constexpr uint32_t kInit[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                               0xa54ff53a, 0x510e527f, 0x9b05688c,
                               0x1f83d9ab, 0x5be0cd19};

constexpr uint32_t kRound[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

// Register plan.
constexpr RegId rA = 18; // a..h in x18..x25
constexpr RegId rw = 26, rk = 27, rt1 = 28, rt2 = 29;
constexpr RegId tA = 30, tB = 31, tC = 32;
constexpr RegId rcnt = 33, rp1 = 34, rp2 = 35, rt3 = 36;

RegId
hreg(int i)
{
    return static_cast<RegId>(rA + i);
}

/** rd = bswap32(rs); clobbers t1, t2. */
void
emitBswap32(Assembler &as, RegId rd, RegId rs, RegId t1, RegId t2)
{
    as.shri(t1, rs, 24);
    as.shri(t2, rs, 8);
    as.andi(t2, t2, 0xff00);
    as.or_(t1, t1, t2);
    as.shli(t2, rs, 8);
    as.andi(t2, t2, 0xff0000);
    as.or_(t1, t1, t2);
    as.shli(t2, rs, 24);
    as.andi(t2, t2, 0xff000000);
    as.or_(rd, t1, t2);
}

/** rd = rotr32(rs, n) (via the 32-bit rotate-left). */
void
emitRotr32(Assembler &as, RegId rd, RegId rs, int n)
{
    as.rotlwi(rd, rs, (32 - n) % 32);
}

/** Message-schedule step for w[i] given pointers set up. */
void
emitScheduleStep(Assembler &as)
{
    // w[i] = w[i-16] + s0(w[i-15]) + w[i-7] + s1(w[i-2])
    as.lw(rw, rp1, -16 * 4);
    as.lw(rt1, rp1, -15 * 4);
    emitRotr32(as, tA, rt1, 7);
    emitRotr32(as, tB, rt1, 18);
    as.shri(tC, rt1, 3);
    as.xor_(tA, tA, tB);
    as.xor_(tA, tA, tC);
    as.addw(rw, rw, tA);
    as.lw(rt1, rp1, -7 * 4);
    as.addw(rw, rw, rt1);
    as.lw(rt1, rp1, -2 * 4);
    emitRotr32(as, tA, rt1, 17);
    emitRotr32(as, tB, rt1, 19);
    as.shri(tC, rt1, 10);
    as.xor_(tA, tA, tB);
    as.xor_(tA, tA, tC);
    as.addw(rw, rw, tA);
    as.sw(rw, rp1, 0);
}

/** One round with w in rw and k in rk; rotates the working registers. */
void
emitRound(Assembler &as)
{
    // t1 = h + S1(e) + ch(e,f,g) + k + w
    emitRotr32(as, tA, hreg(4), 6);
    emitRotr32(as, tB, hreg(4), 11);
    as.xor_(tA, tA, tB);
    emitRotr32(as, tB, hreg(4), 25);
    as.xor_(tA, tA, tB); // S1
    as.and_(tB, hreg(4), hreg(5));
    as.li(tC, 0xffffffff);
    as.xor_(tC, hreg(4), tC);
    as.and_(tC, tC, hreg(6));
    as.xor_(tB, tB, tC); // ch
    as.addw(rt1, hreg(7), tA);
    as.addw(rt1, rt1, tB);
    as.addw(rt1, rt1, rk);
    as.addw(rt1, rt1, rw);
    // t2 = S0(a) + maj(a,b,c)
    emitRotr32(as, tA, hreg(0), 2);
    emitRotr32(as, tB, hreg(0), 13);
    as.xor_(tA, tA, tB);
    emitRotr32(as, tB, hreg(0), 22);
    as.xor_(tA, tA, tB); // S0
    as.and_(tB, hreg(0), hreg(1));
    as.and_(tC, hreg(0), hreg(2));
    as.xor_(tB, tB, tC);
    as.and_(tC, hreg(1), hreg(2));
    as.xor_(tB, tB, tC); // maj
    as.addw(rt2, tA, tB);
    // rotate h..a
    as.mv(hreg(7), hreg(6));
    as.mv(hreg(6), hreg(5));
    as.mv(hreg(5), hreg(4));
    as.addw(hreg(4), hreg(3), rt1);
    as.mv(hreg(3), hreg(2));
    as.mv(hreg(2), hreg(1));
    as.mv(hreg(1), hreg(0));
    as.addw(hreg(0), rt1, rt2);
}

} // namespace

void
emitSha256(Assembler &as, bool unroll_rounds)
{
    as.allocData("sha_k", 64 * 4, 4);
    for (int i = 0; i < 64; i++)
        as.setData32("sha_k", i, kRound[i]);
    as.allocData("sha_w", 64 * 4, 4);

    // sha256_init(a0 = state)
    as.beginFunction("sha256_init", true);
    for (int i = 0; i < 8; i++) {
        as.li(rt1, kInit[i]);
        as.sw(rt1, a0, 4 * i);
    }
    as.ret();
    as.endFunction();

    // sha256_compress(a0 = state, a1 = block)
    as.beginFunction("sha256_compress", true);
    // Load big-endian message words into sha_w[0..15].
    as.la(rp1, "sha_w");
    for (int i = 0; i < 16; i++) {
        as.lw(rt1, a1, 4 * i);
        emitBswap32(as, rw, rt1, tA, tB);
        as.sw(rw, rp1, 4 * i);
    }
    // Schedule w[16..63].
    if (unroll_rounds) {
        for (int i = 16; i < 64; i++) {
            as.la(rp1, "sha_w", 4 * i);
            emitScheduleStep(as);
        }
    } else {
        as.la(rp1, "sha_w", 16 * 4);
        as.forLoop(rcnt, 16, 64, [&] {
            emitScheduleStep(as);
            as.addi(rp1, rp1, 4);
        });
    }
    // Load working registers a..h.
    for (int i = 0; i < 8; i++)
        as.lw(hreg(i), a0, 4 * i);
    // 64 rounds.
    if (unroll_rounds) {
        for (int i = 0; i < 64; i++) {
            as.la(rp1, "sha_w", 4 * i);
            as.lw(rw, rp1, 0);
            as.li(rk, kRound[i]);
            emitRound(as);
        }
    } else {
        as.la(rp1, "sha_w");
        as.la(rp2, "sha_k");
        as.forLoop(rcnt, 0, 64, [&] {
            as.lw(rw, rp1, 0);
            as.lw(rk, rp2, 0);
            emitRound(as);
            as.addi(rp1, rp1, 4);
            as.addi(rp2, rp2, 4);
        });
    }
    // state += working registers.
    for (int i = 0; i < 8; i++) {
        as.lw(rt1, a0, 4 * i);
        as.addw(rt1, rt1, hreg(i));
        as.sw(rt1, a0, 4 * i);
    }
    as.ret();
    as.endFunction();

    // sha256_full(a0 = out, a1 = msg, a2 = len)
    as.allocData("sha_state", 32, 4);
    as.allocData("sha_pad", 128, 8);
    as.beginFunction("sha256_full", true);
    as.push(ir::regRa);
    // Save args in callee-stable registers (x37..x39 are not touched
    // by init/compress).
    constexpr RegId rout = 37, rmsg = 38, rlen = 39, roff = 40;
    as.mv(rout, a0);
    as.mv(rmsg, a1);
    as.mv(rlen, a2);

    as.la(a0, "sha_state");
    as.call("sha256_init");

    // Full 64-byte blocks.
    as.li(roff, 0);
    as.label(".sha_blocks");
    as.addi(rt1, roff, 64);
    as.bltu(rlen, rt1, ".sha_tail"); // len < off + 64 ?
    as.la(a0, "sha_state");
    as.add(a1, rmsg, roff);
    as.call("sha256_compress");
    as.addi(roff, roff, 64);
    as.j(".sha_blocks");

    as.label(".sha_tail");
    // Zero the 128-byte pad buffer.
    as.la(rp1, "sha_pad");
    as.forLoop(rcnt, 0, 16, [&] {
        as.sd(ir::regZero, rp1, 0);
        as.addi(rp1, rp1, 8);
    });
    // Copy the remaining bytes.
    as.sub(rt2, rlen, roff); // rem
    as.la(rp1, "sha_pad");
    as.add(rp2, rmsg, roff);
    as.li(rcnt, 0);
    as.label(".sha_copy");
    as.bge(rcnt, rt2, ".sha_copied");
    as.add(rt1, rp2, rcnt);
    as.lb(rt1, rt1, 0);
    as.add(rt3, rp1, rcnt);
    as.sb(rt1, rt3, 0);
    as.addi(rcnt, rcnt, 1);
    as.j(".sha_copy");
    as.label(".sha_copied");
    // Append 0x80.
    as.add(rt1, rp1, rt2);
    as.li(rt3, 0x80);
    as.sb(rt3, rt1, 0);
    // Length in bits, big-endian, at the end of the last block:
    // if rem >= 56 two blocks are needed.
    as.shli(rt3, rlen, 3); // bit length
    emitBswap32(as, rw, rt3, tA, tB); // low 32 bits, swapped
    as.slti(rt1, rt2, 56);
    as.bne(rt1, ir::regZero, ".sha_one_block");
    // two blocks: length at sha_pad[124]
    as.sw(rw, rp1, 124);
    as.la(a0, "sha_state");
    as.mv(a1, rp1);
    as.call("sha256_compress");
    as.la(rp1, "sha_pad");
    as.la(a0, "sha_state");
    as.addi(a1, rp1, 64);
    as.call("sha256_compress");
    as.j(".sha_out");
    as.label(".sha_one_block");
    as.sw(rw, rp1, 60);
    as.la(a0, "sha_state");
    as.mv(a1, rp1);
    as.call("sha256_compress");

    as.label(".sha_out");
    // Byte-swap the state into out.
    as.la(rp1, "sha_state");
    for (int i = 0; i < 8; i++) {
        as.lw(rt1, rp1, 4 * i);
        emitBswap32(as, rw, rt1, tA, tB);
        as.sw(rw, rout, 4 * i);
    }
    as.pop(ir::regRa);
    as.ret();
    as.endFunction();
}

void
emitHmacSha256(Assembler &as)
{
    as.allocData("hmac_pad", 64 + 256, 8); // ipad||msg scratch
    as.allocData("hmac_opad", 64 + 32, 8);
    as.allocData("hmac_inner", 32, 4);

    // hmac_sha256(a0 = out, a1 = key, a2 = keylen(<=64), a3 = msg,
    //             a4 = msglen(<=256))
    as.beginFunction("hmac_sha256", true);
    as.push(ir::regRa);
    constexpr RegId rout = 41, rkey = 42, rkl = 43, rmsg = 44, rml = 45;
    constexpr RegId rc = 46, rt = 47, rt2b = 48;
    as.mv(rout, a0);
    as.mv(rkey, a1);
    as.mv(rkl, a2);
    as.mv(rmsg, a3);
    as.mv(rml, a4);

    // Build ipad and opad: key padded to 64 bytes XOR 0x36 / 0x5c.
    as.la(rp1, "hmac_pad");
    as.la(rp2, "hmac_opad");
    as.li(rc, 0);
    as.label(".hmac_kpad");
    // byte = i < keylen ? key[i] : 0
    as.li(rt, 0);
    as.slt(rt2b, rc, rkl);
    as.beq(rt2b, ir::regZero, ".hmac_kzero");
    as.add(rt, rkey, rc);
    as.lb(rt, rt, 0);
    as.label(".hmac_kzero");
    as.xori(rt2b, rt, 0x36);
    as.add(rt3, rp1, rc);
    as.sb(rt2b, rt3, 0);
    as.xori(rt2b, rt, 0x5c);
    as.add(rt3, rp2, rc);
    as.sb(rt2b, rt3, 0);
    as.addi(rc, rc, 1);
    as.slti(rt2b, rc, 64);
    as.bne(rt2b, ir::regZero, ".hmac_kpad");

    // inner = sha256(ipad || msg)
    as.li(rc, 0);
    as.label(".hmac_mcopy");
    as.bge(rc, rml, ".hmac_mdone");
    as.add(rt, rmsg, rc);
    as.lb(rt, rt, 0);
    as.add(rt3, rp1, rc);
    as.sb(rt, rt3, 64);
    as.addi(rc, rc, 1);
    as.j(".hmac_mcopy");
    as.label(".hmac_mdone");
    as.la(a0, "hmac_inner");
    as.mv(a1, rp1);
    as.addi(a2, rml, 64);
    as.call("sha256_full");

    // out = sha256(opad || inner)
    as.la(rp2, "hmac_opad");
    as.la(rp1, "hmac_inner");
    as.forLoop(rc, 0, 32, [&] {
        as.add(rt, rp1, rc);
        as.lb(rt, rt, 0);
        as.add(rt3, rp2, rc);
        as.sb(rt, rt3, 64);
    });
    as.mv(a0, rout);
    as.la(a1, "hmac_opad");
    as.li(a2, 96);
    as.call("sha256_full");
    as.pop(ir::regRa);
    as.ret();
    as.endFunction();
}

namespace {

Workload
makeSha256(const std::string &name, const std::string &suite, bool unroll,
           size_t msg_len)
{
    Assembler as;
    as.allocData("msg", 1024, 8);
    as.allocData("out", 32, 4);
    as.allocData("len", 8);

    as.beginFunction("main", false);
    as.la(a0, "out");
    as.la(a1, "msg");
    as.la(rt1, "len");
    as.ld(a2, rt1, 0);
    as.call("sha256_full");
    as.halt();
    as.endFunction();

    emitSha256(as, unroll);

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = as.finalize();
    uint64_t msg_addr = as.dataAddr("msg");
    uint64_t out_addr = as.dataAddr("out");
    uint64_t len_addr = as.dataAddr("len");

    w.setInput = [=](sim::Machine &m, int which) {
        pokeBytes(m, msg_addr,
                  patternBytes(msg_len, static_cast<uint8_t>(which + 9)));
        m.write64(len_addr, msg_len);
    };
    w.check = [=](const sim::Machine &m) {
        auto msg = patternBytes(msg_len, 11);
        auto expect = ref::sha256(msg);
        auto got = peekBytes(m, out_addr, 32);
        return std::equal(expect.begin(), expect.end(), got.begin());
    };
    w.secretRegions = {{msg_addr, msg_addr + 1024}};
    return w;
}

} // namespace

Workload
sha256BearsslWorkload()
{
    return makeSha256("SHA-256", "BearSSL", /*unroll=*/false, 640);
}

Workload
sha256OpensslWorkload()
{
    return makeSha256("sha256", "OpenSSL", /*unroll=*/true, 640);
}

Workload
tlsPrfWorkload()
{
    Assembler as;
    as.allocData("secret", 32, 8);
    as.allocData("seed", 48, 8);
    as.allocData("a_buf", 32 + 48, 8); // A(i) || label_seed
    as.allocData("out", 128, 8);

    // TLS 1.2 P_SHA256: A(0) = seed; A(i) = HMAC(secret, A(i-1));
    // out += HMAC(secret, A(i) || seed).
    as.beginFunction("main", false);
    as.call("tls_prf");
    as.halt();
    as.endFunction();

    as.beginFunction("tls_prf", true);
    as.push(ir::regRa);
    constexpr RegId riter = 49, rcopy = 50, rt = 51, rt2b = 52, rp = 53;
    // a_buf[0..31] = HMAC(secret, seed) after first round; start by
    // computing A(1) directly.
    as.la(a0, "a_buf");
    as.la(a1, "secret");
    as.li(a2, 32);
    as.la(a3, "seed");
    as.li(a4, 48);
    as.call("hmac_sha256");
    // Copy seed behind A.
    as.la(rp, "a_buf");
    as.la(rt2b, "seed");
    as.forLoop(rcopy, 0, 48, [&] {
        as.add(rt, rt2b, rcopy);
        as.lb(rt, rt, 0);
        as.add(a0, rp, rcopy);
        as.sb(rt, a0, 32);
    });
    // Four output blocks of 32 bytes.
    as.forLoop(riter, 0, 4, [&] {
        as.push(riter);
        // out[i*32..] = HMAC(secret, A || seed)
        as.la(a0, "out");
        as.shli(rt, riter, 5);
        as.add(a0, a0, rt);
        as.la(a1, "secret");
        as.li(a2, 32);
        as.la(a3, "a_buf");
        as.li(a4, 80);
        as.call("hmac_sha256");
        // A = HMAC(secret, A)
        as.la(a0, "a_buf");
        as.la(a1, "secret");
        as.li(a2, 32);
        as.la(a3, "a_buf");
        as.li(a4, 32);
        as.call("hmac_sha256");
        as.pop(riter);
    });
    as.pop(ir::regRa);
    as.ret();
    as.endFunction();

    emitSha256(as, /*unroll=*/false);
    emitHmacSha256(as);

    Workload w;
    w.name = "TLS PRF";
    w.suite = "BearSSL";
    w.program = as.finalize();
    uint64_t secret_addr = as.dataAddr("secret");
    uint64_t seed_addr = as.dataAddr("seed");
    uint64_t out_addr = as.dataAddr("out");

    w.setInput = [=](sim::Machine &m, int which) {
        pokeBytes(m, secret_addr,
                  patternBytes(32, static_cast<uint8_t>(which + 20)));
        pokeBytes(m, seed_addr, patternBytes(48, 0x77));
    };
    w.check = [=](const sim::Machine &m) {
        auto secret = patternBytes(32, 22);
        auto seed = patternBytes(48, 0x77);
        auto expect = ref::tls12Prf(secret, seed, 128);
        return peekBytes(m, out_addr, 128) == expect;
    };
    w.secretRegions = {{secret_addr, secret_addr + 32}};
    return w;
}

Workload
multiHashWorkload()
{
    // BearSSL's MultiHash runs several digests over the same input; we
    // hash four slices of the message in one crypto routine.
    Assembler as;
    as.allocData("msg", 512, 8);
    as.allocData("out", 4 * 32, 8);

    as.beginFunction("main", false);
    as.call("multihash");
    as.halt();
    as.endFunction();

    as.beginFunction("multihash", true);
    as.push(ir::regRa);
    constexpr RegId riter = 49, rt = 50;
    as.forLoop(riter, 0, 4, [&] {
        as.push(riter);
        as.la(a0, "out");
        as.shli(rt, riter, 5);
        as.add(a0, a0, rt);
        as.la(a1, "msg");
        // Slice lengths 512, 384, 256, 128.
        as.li(a2, 512);
        as.shli(rt, riter, 7);
        as.sub(a2, a2, rt);
        as.call("sha256_full");
        as.pop(riter);
    });
    as.pop(ir::regRa);
    as.ret();
    as.endFunction();

    emitSha256(as, /*unroll=*/false);

    Workload w;
    w.name = "MultiHash";
    w.suite = "BearSSL";
    w.program = as.finalize();
    uint64_t msg_addr = as.dataAddr("msg");
    uint64_t out_addr = as.dataAddr("out");

    w.setInput = [=](sim::Machine &m, int which) {
        pokeBytes(m, msg_addr,
                  patternBytes(512, static_cast<uint8_t>(which + 30)));
    };
    w.check = [=](const sim::Machine &m) {
        auto msg = patternBytes(512, 32);
        for (int i = 0; i < 4; i++) {
            std::vector<uint8_t> slice(msg.begin(),
                                       msg.begin() + (512 - 128 * i));
            auto expect = ref::sha256(slice);
            auto got = peekBytes(m, out_addr + 32 * i, 32);
            if (!std::equal(expect.begin(), expect.end(), got.begin()))
                return false;
        }
        return true;
    };
    w.secretRegions = {{msg_addr, msg_addr + 512}};
    return w;
}

} // namespace cassandra::crypto
