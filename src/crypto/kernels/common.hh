/**
 * @file
 * Shared helpers for authoring constant-time IR kernels.
 *
 * Kernels are emitted by C++ functions into an Assembler; reusable
 * routines (sha256 compression, keccak permutation, Montgomery bignum,
 * AES rounds, ...) are IR *functions* defined once per program and
 * called by the workload's main. Register convention: a0..a7 carry
 * arguments, x18..x63 are scratch; callee clobbers everything (callers
 * save what they need).
 */

#ifndef CASSANDRA_CRYPTO_KERNELS_COMMON_HH
#define CASSANDRA_CRYPTO_KERNELS_COMMON_HH

#include <cstdint>
#include <vector>

#include "asm/assembler.hh"
#include "core/workload.hh"

namespace cassandra::crypto {

using casm::Assembler;
using core::Workload;
using ir::RegId;

/** Argument registers. */
inline constexpr RegId a0 = 10, a1 = 11, a2 = 12, a3 = 13, a4 = 14,
                       a5 = 15, a6 = 16, a7 = 17;

/** Write a byte vector into a machine's memory at a data symbol. */
void pokeBytes(sim::Machine &machine, uint64_t addr,
               const std::vector<uint8_t> &bytes);

/** Read bytes back from machine memory. */
std::vector<uint8_t> peekBytes(const sim::Machine &machine, uint64_t addr,
                               size_t len);

/** Deterministic pseudo-random test bytes (tagged by seed). */
std::vector<uint8_t> patternBytes(size_t len, uint8_t seed);

} // namespace cassandra::crypto

#endif // CASSANDRA_CRYPTO_KERNELS_COMMON_HH
