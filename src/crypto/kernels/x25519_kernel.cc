/**
 * @file
 * X25519 Montgomery-ladder and ECDSA-like workloads built on the
 * generic Montgomery bignum IR library (see bigint_kernel.hh). Field
 * arithmetic mod p = 2^255 - 19 runs in the Montgomery domain with
 * 8 x 32-bit limbs; the ladder is the RFC 7748 constant-time ladder
 * with cswap-based conditional swaps.
 */

#include "crypto/kernels/bigint_kernel.hh"

#include "crypto/kernels/sha256_kernel.hh"
#include "crypto/ref/bignum.hh"
#include "crypto/ref/sha256.hh"
#include "crypto/ref/x25519.hh"

namespace cassandra::crypto {

namespace {

constexpr int kFeLimbs = 8;

// Ladder driver registers (survive leaf calls which use x18..x35 and
// mont_pow which uses x40..x50).
constexpr RegId lbit = 54, lswap = 55, lt = 56, lt2 = 57, lt3 = 58;

/** p = 2^255 - 19 as 8 little-endian 32-bit limbs. */
ref::Limbs
curvePrime()
{
    ref::Limbs p(kFeLimbs, 0xffffffffu);
    p[0] = 0xffffffed;
    p[7] = 0x7fffffff;
    return p;
}

/** Group order q = 2^252 + 27742317777372353535851937790883648493. */
ref::Limbs
groupOrder()
{
    return {0x5cf5d3ed, 0x5812631a, 0xa2f79cd6, 0x14def9de,
            0, 0, 0, 0x10000000};
}

std::vector<uint8_t>
limbBytes(const ref::Limbs &limbs)
{
    std::vector<uint8_t> out;
    for (uint32_t limb : limbs) {
        for (int i = 0; i < 4; i++)
            out.push_back(static_cast<uint8_t>(limb >> (8 * i)));
    }
    return out;
}

ref::Limbs
limbsFromBytes(const std::vector<uint8_t> &bytes)
{
    ref::Limbs out(bytes.size() / 4);
    for (size_t i = 0; i < out.size(); i++) {
        out[i] = static_cast<uint32_t>(bytes[4 * i]) |
            (static_cast<uint32_t>(bytes[4 * i + 1]) << 8) |
            (static_cast<uint32_t>(bytes[4 * i + 2]) << 16) |
            (static_cast<uint32_t>(bytes[4 * i + 3]) << 24);
    }
    return out;
}

/** Call mont_mul(dst, x, y) with the curve modulus bound. */
void
feMulCall(Assembler &as, const std::string &dst, const std::string &x,
          const std::string &y)
{
    as.la(a0, dst);
    as.la(a1, x);
    as.la(a2, y);
    as.la(a3, "ec_p");
    as.la(a4, "ec_n0");
    as.ld(a4, a4, 0);
    as.li(a5, kFeLimbs);
    as.call("mont_mul");
}

void
feAddCall(Assembler &as, const std::string &dst, const std::string &x,
          const std::string &y)
{
    as.la(a0, dst);
    as.la(a1, x);
    as.la(a2, y);
    as.la(a3, "ec_p");
    as.li(a4, kFeLimbs);
    as.call("mod_add");
}

void
feSubCall(Assembler &as, const std::string &dst, const std::string &x,
          const std::string &y)
{
    as.la(a0, dst);
    as.la(a1, x);
    as.la(a2, y);
    as.la(a3, "ec_p");
    as.li(a4, kFeLimbs);
    as.call("mod_sub");
}

} // namespace

/**
 * Emit the x25519_ladder() crypto function plus its data symbols.
 * Inputs: ec_scalar (32 bytes), ec_point (32 bytes). Output: ec_out
 * (32 bytes, canonical little-endian u-coordinate).
 */
void
emitX25519Ladder(Assembler &as)
{
    ref::Limbs p = curvePrime();
    ref::MontCtx ctx = ref::montInit(p);

    as.allocData("ec_scalar", 32, 8);
    as.allocData("ec_point", 32, 8);
    as.allocData("ec_out", 32, 8);
    as.allocData("ec_p", 32, 8);
    as.allocData("ec_rr", 32, 8);
    as.allocData("ec_n0", 8, 8);
    as.allocData("ec_pm2", 32, 8);
    as.allocData("ec_a24m", 32, 8);
    as.allocData("ec_onebn", 32, 8);
    for (const char *sym : {"ec_x1", "ec_x2", "ec_z2", "ec_x3", "ec_z3",
                            "ec_A", "ec_B", "ec_AA", "ec_BB", "ec_E",
                            "ec_C", "ec_D", "ec_DA", "ec_CB", "ec_T0",
                            "ec_T1", "ec_T2", "ec_zinv"}) {
        as.allocData(sym, 32, 8);
    }

    // Embed the public curve constants into the data image.
    auto poke = [&](const std::string &sym, const ref::Limbs &v) {
        auto bytes = limbBytes(v);
        as.setData(sym, 0, bytes.data(), bytes.size());
    };
    poke("ec_p", p);
    poke("ec_rr", ctx.rr);
    as.setData64("ec_n0", 0, ctx.n0inv);
    ref::Limbs pm2 = p;
    pm2[0] -= 2; // p - 2 (no borrow: low limb is ...ffed)
    poke("ec_pm2", pm2);
    ref::Limbs a24(kFeLimbs, 0);
    a24[0] = 121666;
    poke("ec_a24m", ref::montMul(ctx, a24, ctx.rr));
    ref::Limbs one(kFeLimbs, 0);
    one[0] = 1;
    poke("ec_onebn", one);

    as.beginFunction("x25519_ladder", true);
    as.push(ir::regRa);

    // Clamp the scalar (RFC 7748).
    as.la(lt, "ec_scalar");
    as.lb(lt2, lt, 0);
    as.andi(lt2, lt2, 248);
    as.sb(lt2, lt, 0);
    as.lb(lt2, lt, 31);
    as.andi(lt2, lt2, 127);
    as.ori(lt2, lt2, 64);
    as.sb(lt2, lt, 31);

    // Mask the point's top bit and convert to the Montgomery domain.
    as.la(lt, "ec_point");
    as.lw(lt2, lt, 28);
    as.li(lt3, 0x7fffffff);
    as.and_(lt2, lt2, lt3);
    as.sw(lt2, lt, 28);
    feMulCall(as, "ec_x1", "ec_point", "ec_rr");

    // x2 = 1m, z2 = 0, x3 = x1, z3 = 1m.
    feMulCall(as, "ec_x2", "ec_onebn", "ec_rr");
    as.la(lt, "ec_z2");
    as.forLoop(lt2, 0, kFeLimbs, [&] {
        as.sw(ir::regZero, lt, 0);
        as.addi(lt, lt, 4);
    });
    as.la(a0, "ec_x3");
    as.la(a1, "ec_x1");
    as.li(a2, kFeLimbs);
    as.call("bn_copy");
    feMulCall(as, "ec_z3", "ec_onebn", "ec_rr");

    // Ladder over bits 254..0.
    as.li(lswap, 0);
    as.li(lbit, 255);
    as.label(".lad_loop");
    as.addi(lbit, lbit, -1);
    // bit = (scalar[lbit >> 3] >> (lbit & 7)) & 1
    as.la(lt, "ec_scalar");
    as.shri(lt2, lbit, 3);
    as.add(lt, lt, lt2);
    as.lb(lt, lt, 0);
    as.andi(lt2, lbit, 7);
    as.shr(lt, lt, lt2);
    as.andi(lt, lt, 1);
    // swap ^= bit; cswap(x2,x3,swap); cswap(z2,z3,swap); swap = bit.
    as.xor_(lswap, lswap, lt);
    as.la(a0, "ec_x2");
    as.la(a1, "ec_x3");
    as.mv(a2, lswap);
    as.li(a3, kFeLimbs);
    as.push(lt);
    as.call("bn_cswap");
    as.la(a0, "ec_z2");
    as.la(a1, "ec_z3");
    as.mv(a2, lswap);
    as.li(a3, kFeLimbs);
    as.call("bn_cswap");
    as.pop(lt);
    as.mv(lswap, lt);

    // Ladder step (RFC 7748 formulas).
    feAddCall(as, "ec_A", "ec_x2", "ec_z2");
    feSubCall(as, "ec_B", "ec_x2", "ec_z2");
    feMulCall(as, "ec_AA", "ec_A", "ec_A");
    feMulCall(as, "ec_BB", "ec_B", "ec_B");
    feMulCall(as, "ec_x2", "ec_AA", "ec_BB");
    feSubCall(as, "ec_E", "ec_AA", "ec_BB");
    feAddCall(as, "ec_C", "ec_x3", "ec_z3");
    feSubCall(as, "ec_D", "ec_x3", "ec_z3");
    feMulCall(as, "ec_DA", "ec_D", "ec_A");
    feMulCall(as, "ec_CB", "ec_C", "ec_B");
    feAddCall(as, "ec_T0", "ec_DA", "ec_CB");
    feMulCall(as, "ec_x3", "ec_T0", "ec_T0");
    feSubCall(as, "ec_T1", "ec_DA", "ec_CB");
    feMulCall(as, "ec_T2", "ec_T1", "ec_T1");
    feMulCall(as, "ec_z3", "ec_T2", "ec_x1");
    feMulCall(as, "ec_T0", "ec_E", "ec_a24m");
    feAddCall(as, "ec_T1", "ec_BB", "ec_T0");
    feMulCall(as, "ec_z2", "ec_E", "ec_T1");

    as.bne(lbit, ir::regZero, ".lad_loop");

    // Final swap.
    as.la(a0, "ec_x2");
    as.la(a1, "ec_x3");
    as.mv(a2, lswap);
    as.li(a3, kFeLimbs);
    as.call("bn_cswap");
    as.la(a0, "ec_z2");
    as.la(a1, "ec_z3");
    as.mv(a2, lswap);
    as.li(a3, kFeLimbs);
    as.call("bn_cswap");

    // out = x2 / z2: z = fromMont(z2); zinv = z^(p-2); back to the
    // Montgomery domain; multiply; normalize.
    feMulCall(as, "ec_T0", "ec_z2", "ec_onebn");
    as.la(a0, "ec_zinv");
    as.la(a1, "ec_T0");
    as.la(a2, "ec_pm2");
    as.la(a3, "ec_p");
    as.la(a4, "ec_n0");
    as.ld(a4, a4, 0);
    as.li(a5, kFeLimbs);
    as.la(a6, "ec_rr");
    as.call("mont_pow");
    feMulCall(as, "ec_T1", "ec_zinv", "ec_rr");
    feMulCall(as, "ec_T2", "ec_x2", "ec_T1");
    feMulCall(as, "ec_out", "ec_T2", "ec_onebn");

    as.pop(ir::regRa);
    as.ret();
    as.endFunction();
}

namespace {

Workload
makeX25519(const std::string &name, const std::string &suite, bool unroll)
{
    Assembler as;
    as.beginFunction("main", false);
    as.call("x25519_ladder");
    as.halt();
    as.endFunction();

    emitX25519Ladder(as);
    emitBignum(as, unroll, kFeLimbs);

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = as.finalize();
    uint64_t scalar_addr = as.dataAddr("ec_scalar");
    uint64_t point_addr = as.dataAddr("ec_point");
    uint64_t out_addr = as.dataAddr("ec_out");

    w.setInput = [=](sim::Machine &m, int which) {
        pokeBytes(m, scalar_addr,
                  patternBytes(32, static_cast<uint8_t>(which + 60)));
        auto base = ref::x25519BasePoint();
        pokeBytes(m, point_addr, {base.begin(), base.end()});
    };
    w.check = [=](const sim::Machine &m) {
        auto scalar = patternBytes(32, 62);
        auto base = ref::x25519BasePoint();
        auto expect = ref::x25519(scalar.data(), base.data());
        auto got = peekBytes(m, out_addr, 32);
        return std::equal(expect.begin(), expect.end(), got.begin());
    };
    w.secretRegions = {{scalar_addr, scalar_addr + 32}};
    return w;
}

} // namespace

Workload
ecC25519Workload()
{
    return makeX25519("EC_c25519_i31", "BearSSL", /*unroll=*/false);
}

Workload
curve25519OpensslWorkload()
{
    return makeX25519("curve25519", "OpenSSL", /*unroll=*/true);
}

Workload
ecdsaWorkload()
{
    // ECDSA-like signature over the curve25519 group (see DESIGN.md):
    //   z = SHA-256(msg) reduced mod q
    //   r = X(k * G) reduced mod q
    //   s = k^(q-2) * (z + r * d) mod q
    ref::Limbs q = groupOrder();
    ref::MontCtx qctx = ref::montInit(q);

    Assembler as;
    as.allocData("dsa_msg", 128, 8);
    as.allocData("dsa_d", 32, 8);   // private key
    as.allocData("dsa_z", 32, 8);
    as.allocData("dsa_q", 32, 8);
    as.allocData("dsa_qrr", 32, 8);
    as.allocData("dsa_qn0", 8, 8);
    as.allocData("dsa_qm2", 32, 8);
    as.allocData("dsa_one", 32, 8);
    for (const char *sym : {"dsa_rm", "dsa_zm", "dsa_dm", "dsa_t",
                            "dsa_kinv", "dsa_kim", "dsa_sm", "dsa_r",
                            "dsa_s"}) {
        as.allocData(sym, 32, 8);
    }

    auto poke = [&](const std::string &sym, const ref::Limbs &v) {
        auto bytes = limbBytes(v);
        as.setData(sym, 0, bytes.data(), bytes.size());
    };
    poke("dsa_q", q);
    poke("dsa_qrr", qctx.rr);
    as.setData64("dsa_qn0", 0, qctx.n0inv);
    ref::Limbs qm2 = q;
    qm2[0] -= 2;
    poke("dsa_qm2", qm2);
    ref::Limbs one(kFeLimbs, 0);
    one[0] = 1;
    poke("dsa_one", one);

    auto qmul = [&](const std::string &dst, const std::string &x,
                    const std::string &y) {
        as.la(a0, dst);
        as.la(a1, x);
        as.la(a2, y);
        as.la(a3, "dsa_q");
        as.la(a4, "dsa_qn0");
        as.ld(a4, a4, 0);
        as.li(a5, kFeLimbs);
        as.call("mont_mul");
    };

    // Emit the substrate first so its data symbols exist for the
    // address references below.
    emitX25519Ladder(as);
    emitBignum(as);
    emitSha256(as, /*unroll=*/false);

    as.beginFunction("main", false);
    as.call("ecdsa_sign");
    as.halt();
    as.endFunction();

    as.beginFunction("ecdsa_sign", true);
    as.push(ir::regRa);
    // z = SHA-256(msg) -> dsa_z (bytes reused as limbs).
    as.la(a0, "dsa_z");
    as.la(a1, "dsa_msg");
    as.li(a2, 128);
    as.call("sha256_full");
    // r = X(k * G): the nonce k lives in ec_scalar, G in ec_point
    // (bound by setInput).
    as.call("x25519_ladder");
    // Reduce r and z mod q via a Montgomery round trip (valid for any
    // input < 2^256 since RR < q).
    qmul("dsa_rm", "ec_out", "dsa_qrr");
    qmul("dsa_r", "dsa_rm", "dsa_one");
    qmul("dsa_zm", "dsa_z", "dsa_qrr");
    qmul("dsa_dm", "dsa_d", "dsa_qrr");
    // t = zm + rm * dm
    qmul("dsa_t", "dsa_rm", "dsa_dm");
    as.la(a0, "dsa_t");
    as.la(a1, "dsa_zm");
    as.la(a2, "dsa_t");
    as.la(a3, "dsa_q");
    as.li(a4, kFeLimbs);
    as.call("mod_add");
    // kinv = k^(q-2) mod q (normal domain), then to Montgomery.
    as.la(a0, "dsa_kinv");
    as.la(a1, "ec_scalar");
    as.la(a2, "dsa_qm2");
    as.la(a3, "dsa_q");
    as.la(a4, "dsa_qn0");
    as.ld(a4, a4, 0);
    as.li(a5, kFeLimbs);
    as.la(a6, "dsa_qrr");
    as.call("mont_pow");
    qmul("dsa_kim", "dsa_kinv", "dsa_qrr");
    // s = fromMont(kim * t)
    qmul("dsa_sm", "dsa_kim", "dsa_t");
    qmul("dsa_s", "dsa_sm", "dsa_one");
    as.pop(ir::regRa);
    as.ret();
    as.endFunction();

    Workload w;
    w.name = "ECDSA_i31";
    w.suite = "BearSSL";
    w.program = as.finalize();
    uint64_t msg_addr = as.dataAddr("dsa_msg");
    uint64_t d_addr = as.dataAddr("dsa_d");
    uint64_t scalar_addr = as.dataAddr("ec_scalar");
    uint64_t point_addr = as.dataAddr("ec_point");
    uint64_t r_addr = as.dataAddr("dsa_r");
    uint64_t s_addr = as.dataAddr("dsa_s");

    auto scalar_for = [](int which) {
        auto k = patternBytes(32, static_cast<uint8_t>(which + 70));
        return k;
    };

    w.setInput = [=](sim::Machine &m, int which) {
        pokeBytes(m, msg_addr, patternBytes(128, 0x31));
        pokeBytes(m, d_addr,
                  patternBytes(32, static_cast<uint8_t>(which + 80)));
        pokeBytes(m, scalar_addr, scalar_for(which));
        auto base = ref::x25519BasePoint();
        pokeBytes(m, point_addr, {base.begin(), base.end()});
    };
    w.check = [=](const sim::Machine &m) {
        // Recompute the expected signature with the reference pieces.
        auto msg = patternBytes(128, 0x31);
        auto digest = ref::sha256(msg);
        auto k = scalar_for(2);
        auto base = ref::x25519BasePoint();
        auto ru = ref::x25519(k.data(), base.data());

        auto to_q = [&](const std::vector<uint8_t> &bytes) {
            ref::Limbs v = limbsFromBytes(bytes);
            ref::Limbs m1 = ref::montMul(qctx, v, qctx.rr);
            ref::Limbs one_l(kFeLimbs, 0);
            one_l[0] = 1;
            return ref::montMul(qctx, m1, one_l);
        };
        ref::Limbs z = to_q({digest.begin(), digest.end()});
        ref::Limbs r = to_q({ru.begin(), ru.end()});
        ref::Limbs d = to_q(patternBytes(32, 82));

        // s = k^(q-2) (z + r d) mod q, all via the reference ops.
        ref::Limbs zm = ref::montMul(qctx, z, qctx.rr);
        ref::Limbs rm = ref::montMul(qctx, r, qctx.rr);
        ref::Limbs dm = ref::montMul(qctx, d, qctx.rr);
        ref::Limbs t = ref::montMul(qctx, rm, dm);
        // mod-q addition
        ref::Limbs sum(kFeLimbs);
        uint64_t carry = 0;
        for (int i = 0; i < kFeLimbs; i++) {
            uint64_t v = static_cast<uint64_t>(zm[i]) + t[i] + carry;
            sum[i] = static_cast<uint32_t>(v);
            carry = v >> 32;
        }
        if (carry || ref::geq(sum, q))
            sum = ref::subLimbs(sum, q);
        // kinv
        ref::Limbs kl = limbsFromBytes(scalar_for(2));
        // the ladder clamps its scalar in place; mirror the clamp
        std::vector<uint8_t> kb = scalar_for(2);
        kb[0] &= 248;
        kb[31] = static_cast<uint8_t>((kb[31] & 127) | 64);
        kl = limbsFromBytes(kb);
        ref::Limbs qm2_l = q;
        qm2_l[0] -= 2;
        ref::Limbs kinv = ref::modPow(qctx, kl, qm2_l);
        ref::Limbs kim = ref::montMul(qctx, kinv, qctx.rr);
        ref::Limbs sm = ref::montMul(qctx, kim, sum);
        ref::Limbs one_l(kFeLimbs, 0);
        one_l[0] = 1;
        ref::Limbs s = ref::montMul(qctx, sm, one_l);

        auto got_r = limbsFromBytes(peekBytes(m, r_addr, 32));
        auto got_s = limbsFromBytes(peekBytes(m, s_addr, 32));
        return got_r == r && got_s == s;
    };
    w.secretRegions = {{d_addr, d_addr + 32},
                       {scalar_addr, scalar_addr + 32}};
    return w;
}

} // namespace cassandra::crypto
