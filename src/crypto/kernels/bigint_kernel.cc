#include "crypto/kernels/bigint_kernel.hh"

#include <functional>

#include "crypto/kernels/sha256_kernel.hh"
#include "crypto/ref/bignum.hh"
#include "crypto/ref/sha256.hh"
#include "crypto/ref/x25519.hh"

namespace cassandra::crypto {

namespace {

/** Maximum limb count supported by the scratch buffers. */
constexpr int kMaxLimbs = 18;

// Register plan for the leaf routines (x18..x35).
constexpr RegId ri = 18, rj = 19, rcar = 20, rai = 21, rm = 22, rv = 23,
                rt = 24, rt2 = 25, rtp = 26, rxp = 27, ryp = 28,
                rmask = 29, rn = 30, rtj = 31, rborrow = 32, rneed = 33,
                rt3 = 34, rt4 = 35;

// Register plan for mont_pow / ladder drivers (x40..x59); these must
// survive calls into the leaf routines.
constexpr RegId pd = 40, pb = 41, pe = 42, pm = 43, pn0 = 44, pn = 45,
                prr = 46, pbit = 47, ptake = 48, pt = 49, pt2 = 50;

/**
 * Emit a loop over limbs: counted (bound in a register) by default, or
 * fully unrolled straight-line when unroll_count > 0 (donna-style flat
 * code, which also frees BTU entries for the hot outer branches).
 */
void
limbLoop(Assembler &as, RegId counter, RegId bound_reg, int unroll_count,
         const std::function<void()> &body)
{
    if (unroll_count > 0) {
        for (int i = 0; i < unroll_count; i++)
            body();
    } else {
        as.forLoopReg(counter, 0, bound_reg, body);
    }
}

/** Emit one CIOS multiply-accumulate step:
 * v = t[j] + x * y + carry; t[j] = lo32(v); carry = hi32(v).
 * x in rai, y loaded from (ryp + 4*j as provided by caller into rtj),
 * t slot address in rt3. */
void
emitMacStep(Assembler &as)
{
    as.ld(rv, rt3, 0);       // t[j] (64-bit slot)
    as.mul(rt, rai, rtj);    // x*y (fits: 32x32)
    as.add(rv, rv, rt);
    as.add(rv, rv, rcar);
    as.and_(rt, rv, rmask);
    as.sd(rt, rt3, 0);
    as.shri(rcar, rv, 32);
}

/**
 * Emit mont_mul(a0=dst, a1=a, a2=b, a3=mod, a4=n0inv, a5=nlimbs).
 * Scratch: data symbol bn_t (kMaxLimbs+2 64-bit slots).
 */
void
emitMontMul(Assembler &as, bool unroll_inner, int fixed_limbs)
{
    as.beginFunction("mont_mul", true);
    as.li(rmask, 0xffffffff);
    as.mv(rn, a5);

    // Clear t.
    as.la(rtp, "bn_t");
    as.mv(rt3, rtp);
    as.addi(rt, rn, 2);
    limbLoop(as, rj, rt, unroll_inner ? fixed_limbs + 2 : 0, [&] {
        as.sd(ir::regZero, rt3, 0);
        as.addi(rt3, rt3, 8);
    });

    auto inner_pass = [&](RegId src_ptr) {
        // for j: v = t[j] + rai * src[j] + carry
        if (unroll_inner) {
            for (int j = 0; j < fixed_limbs; j++) {
                as.lw(rtj, src_ptr, 4 * j);
                as.addi(rt3, rtp, 8 * j);
                emitMacStep(as);
            }
        } else {
            as.mv(rt3, rtp);
            as.mv(rt4, src_ptr);
            limbLoop(as, rj, rn, unroll_inner ? fixed_limbs : 0, [&] {
                as.lw(rtj, rt4, 0);
                emitMacStep(as);
                as.addi(rt3, rt3, 8);
                as.addi(rt4, rt4, 4);
            });
            as.shli(rt3, rn, 3);
            as.add(rt3, rtp, rt3);
        }
        if (unroll_inner)
            as.addi(rt3, rtp, 8 * fixed_limbs);
        // v = t[n] + carry; t[n] = lo; t[n+1] += hi
        as.ld(rv, rt3, 0);
        as.add(rv, rv, rcar);
        as.and_(rt, rv, rmask);
        as.sd(rt, rt3, 0);
        as.shri(rt, rv, 32);
        as.ld(rv, rt3, 8);
        as.add(rv, rv, rt);
        as.sd(rv, rt3, 8);
    };

    // Outer loop over a's limbs.
    as.mv(rxp, a1);
    as.forLoopReg(ri, 0, rn, [&] {
        as.lw(rai, rxp, 0);
        as.addi(rxp, rxp, 4);
        as.li(rcar, 0);
        inner_pass(a2);

        // m = lo32(t[0] * n0inv)
        as.ld(rt, rtp, 0);
        as.mul(rm, rt, a4);
        as.and_(rai, rm, rmask);
        as.li(rcar, 0);
        inner_pass(a3);

        // shift t down one limb.
        as.mv(rt3, rtp);
        as.addi(rt, rn, 1);
        limbLoop(as, rj, rt, unroll_inner ? fixed_limbs + 1 : 0, [&] {
            as.ld(rv, rt3, 8);
            as.sd(rv, rt3, 0);
            as.addi(rt3, rt3, 8);
        });
        as.sd(ir::regZero, rt3, 0);
    });

    // Conditional subtract: need = (t[n] != 0) | (t - mod borrow == 0).
    // Compute r - mod into bn_s while scanning.
    as.la(rt4, "bn_s");
    as.mv(rt3, rtp);
    as.mv(rxp, a3);
    as.li(rborrow, 0);
    limbLoop(as, rj, rn, unroll_inner ? fixed_limbs : 0, [&] {
        as.ld(rv, rt3, 0);
        as.lw(rtj, rxp, 0);
        as.sub(rv, rv, rtj);
        as.sub(rv, rv, rborrow);
        // borrow = (v >> 63) & 1 on 64-bit wrap of 32-bit values
        as.shri(rborrow, rv, 63);
        as.and_(rv, rv, rmask);
        as.sw(rv, rt4, 0);
        as.addi(rt3, rt3, 8);
        as.addi(rxp, rxp, 4);
        as.addi(rt4, rt4, 4);
    });
    as.ld(rt, rt3, 0); // t[n] overflow limb
    as.xori(rborrow, rborrow, 1); // no-borrow flag
    as.or_(rneed, rt, rborrow);   // subtract if overflow or r >= mod

    // dst[j] = need ? s[j] : t[j]
    as.mv(rt3, rtp);
    as.la(rt4, "bn_s");
    as.mv(rxp, a0);
    limbLoop(as, rj, rn, unroll_inner ? fixed_limbs : 0, [&] {
        as.ld(rv, rt3, 0);
        as.lw(rt, rt4, 0);
        as.cmovnz(rv, rneed, rt);
        as.sw(rv, rxp, 0);
        as.addi(rt3, rt3, 8);
        as.addi(rt4, rt4, 4);
        as.addi(rxp, rxp, 4);
    });
    as.ret();
    as.endFunction();
}

/** mod_add(dst, a, b, mod, n): (a + b) mod m, constant-time. */
void
emitModAdd(Assembler &as, bool unroll_inner, int fixed_limbs)
{
    as.beginFunction("mod_add", true);
    as.li(rmask, 0xffffffff);
    as.mv(rn, a4);
    // sum into bn_s with carry; difference sum-mod into bn_t.
    as.la(rt4, "bn_s");
    as.li(rcar, 0);
    as.mv(rxp, a1);
    as.mv(ryp, a2);
    limbLoop(as, rj, rn, unroll_inner ? fixed_limbs : 0, [&] {
        as.lw(rv, rxp, 0);
        as.lw(rt, ryp, 0);
        as.add(rv, rv, rt);
        as.add(rv, rv, rcar);
        as.shri(rcar, rv, 32);
        as.and_(rv, rv, rmask);
        as.sw(rv, rt4, 0);
        as.addi(rxp, rxp, 4);
        as.addi(ryp, ryp, 4);
        as.addi(rt4, rt4, 4);
    });
    // subtract mod
    as.la(rt4, "bn_s");
    as.la(rt3, "bn_t");
    as.mv(rxp, a3);
    as.li(rborrow, 0);
    limbLoop(as, rj, rn, unroll_inner ? fixed_limbs : 0, [&] {
        as.lw(rv, rt4, 0);
        as.lw(rt, rxp, 0);
        as.sub(rv, rv, rt);
        as.sub(rv, rv, rborrow);
        as.shri(rborrow, rv, 63);
        as.and_(rv, rv, rmask);
        as.sw(rv, rt3, 0);
        as.addi(rt4, rt4, 4);
        as.addi(rxp, rxp, 4);
        as.addi(rt3, rt3, 4);
    });
    // need_sub = carry_out | !borrow
    as.xori(rborrow, rborrow, 1);
    as.or_(rneed, rcar, rborrow);
    as.la(rt4, "bn_s");
    as.la(rt3, "bn_t");
    as.mv(rxp, a0);
    limbLoop(as, rj, rn, unroll_inner ? fixed_limbs : 0, [&] {
        as.lw(rv, rt4, 0);
        as.lw(rt, rt3, 0);
        as.cmovnz(rv, rneed, rt);
        as.sw(rv, rxp, 0);
        as.addi(rt4, rt4, 4);
        as.addi(rt3, rt3, 4);
        as.addi(rxp, rxp, 4);
    });
    as.ret();
    as.endFunction();
}

/** mod_sub(dst, a, b, mod, n): (a - b) mod m, constant-time. */
void
emitModSub(Assembler &as, bool unroll_inner, int fixed_limbs)
{
    as.beginFunction("mod_sub", true);
    as.li(rmask, 0xffffffff);
    as.mv(rn, a4);
    // diff into bn_s with borrow.
    as.la(rt4, "bn_s");
    as.li(rborrow, 0);
    as.mv(rxp, a1);
    as.mv(ryp, a2);
    limbLoop(as, rj, rn, unroll_inner ? fixed_limbs : 0, [&] {
        as.lw(rv, rxp, 0);
        as.lw(rt, ryp, 0);
        as.sub(rv, rv, rt);
        as.sub(rv, rv, rborrow);
        as.shri(rborrow, rv, 63);
        as.and_(rv, rv, rmask);
        as.sw(rv, rt4, 0);
        as.addi(rxp, rxp, 4);
        as.addi(ryp, ryp, 4);
        as.addi(rt4, rt4, 4);
    });
    // bn_t = diff + mod (used when borrow).
    as.la(rt4, "bn_s");
    as.la(rt3, "bn_t");
    as.mv(rxp, a3);
    as.li(rcar, 0);
    as.mv(rneed, rborrow);
    limbLoop(as, rj, rn, unroll_inner ? fixed_limbs : 0, [&] {
        as.lw(rv, rt4, 0);
        as.lw(rt, rxp, 0);
        as.add(rv, rv, rt);
        as.add(rv, rv, rcar);
        as.shri(rcar, rv, 32);
        as.and_(rv, rv, rmask);
        as.sw(rv, rt3, 0);
        as.addi(rt4, rt4, 4);
        as.addi(rxp, rxp, 4);
        as.addi(rt3, rt3, 4);
    });
    as.la(rt4, "bn_s");
    as.la(rt3, "bn_t");
    as.mv(rxp, a0);
    limbLoop(as, rj, rn, unroll_inner ? fixed_limbs : 0, [&] {
        as.lw(rv, rt4, 0);
        as.lw(rt, rt3, 0);
        as.cmovnz(rv, rneed, rt);
        as.sw(rv, rxp, 0);
        as.addi(rt4, rt4, 4);
        as.addi(rt3, rt3, 4);
        as.addi(rxp, rxp, 4);
    });
    as.ret();
    as.endFunction();
}

/** bn_copy(dst, src, n) and bn_cswap(a, b, bit, n). */
void
emitCopySwap(Assembler &as, bool unroll_inner, int fixed_limbs)
{
    as.beginFunction("bn_copy", true);
    as.mv(rn, a2);
    as.mv(rxp, a1);
    as.mv(ryp, a0);
    limbLoop(as, rj, rn, unroll_inner ? fixed_limbs : 0, [&] {
        as.lw(rv, rxp, 0);
        as.sw(rv, ryp, 0);
        as.addi(rxp, rxp, 4);
        as.addi(ryp, ryp, 4);
    });
    as.ret();
    as.endFunction();

    as.beginFunction("bn_cswap", true);
    as.mv(rn, a3);
    // mask = -bit
    as.sub(rt2, ir::regZero, a2);
    as.mv(rxp, a0);
    as.mv(ryp, a1);
    limbLoop(as, rj, rn, unroll_inner ? fixed_limbs : 0, [&] {
        as.lw(rv, rxp, 0);
        as.lw(rt, ryp, 0);
        as.xor_(rt3, rv, rt);
        as.and_(rt3, rt3, rt2);
        as.xor_(rv, rv, rt3);
        as.xor_(rt, rt, rt3);
        as.sw(rv, rxp, 0);
        as.sw(rt, ryp, 0);
        as.addi(rxp, rxp, 4);
        as.addi(ryp, ryp, 4);
    });
    as.ret();
    as.endFunction();
}

/**
 * mont_pow(a0=dst, a1=base, a2=exp, a3=mod, a4=n0inv, a5=nlimbs,
 *          a6=rr): normal-domain base^exp mod m via square-and-
 * multiply-always (constant multiply count).
 */
void
emitMontPow(Assembler &as)
{
    as.allocData("bn_pow_x", kMaxLimbs * 4, 8);
    as.allocData("bn_pow_acc", kMaxLimbs * 4, 8);
    as.allocData("bn_pow_mul", kMaxLimbs * 4, 8);
    as.allocData("bn_pow_one", kMaxLimbs * 4, 8);

    as.beginFunction("mont_pow", true);
    as.push(ir::regRa);
    as.mv(pd, a0);
    as.mv(pb, a1);
    as.mv(pe, a2);
    as.mv(pm, a3);
    as.mv(pn0, a4);
    as.mv(pn, a5);
    as.mv(prr, a6);

    // one = 1, zero-extended to n limbs.
    as.la(pt, "bn_pow_one");
    as.forLoopReg(pt2, 0, pn, [&] {
        as.sw(ir::regZero, pt, 0);
        as.addi(pt, pt, 4);
    });
    as.la(pt, "bn_pow_one");
    as.li(pt2, 1);
    as.sw(pt2, pt, 0);

    // x = montmul(base, rr); acc = montmul(one, rr) (= R mod m).
    as.la(a0, "bn_pow_x");
    as.mv(a1, pb);
    as.mv(a2, prr);
    as.mv(a3, pm);
    as.mv(a4, pn0);
    as.mv(a5, pn);
    as.call("mont_mul");
    as.la(a0, "bn_pow_acc");
    as.la(a1, "bn_pow_one");
    as.mv(a2, prr);
    as.mv(a3, pm);
    as.mv(a4, pn0);
    as.mv(a5, pn);
    as.call("mont_mul");

    // bit loop: from n*32-1 down to 0.
    as.shli(pbit, pn, 5);
    as.label(".pow_loop");
    as.addi(pbit, pbit, -1);
    // acc = acc * acc
    as.la(a0, "bn_pow_acc");
    as.la(a1, "bn_pow_acc");
    as.la(a2, "bn_pow_acc");
    as.mv(a3, pm);
    as.mv(a4, pn0);
    as.mv(a5, pn);
    as.call("mont_mul");
    // mul = acc * x
    as.la(a0, "bn_pow_mul");
    as.la(a1, "bn_pow_acc");
    as.la(a2, "bn_pow_x");
    as.mv(a3, pm);
    as.mv(a4, pn0);
    as.mv(a5, pn);
    as.call("mont_mul");
    // take = (exp[bit/32] >> (bit%32)) & 1
    as.shri(pt, pbit, 5);
    as.shli(pt, pt, 2);
    as.add(pt, pe, pt);
    as.lw(pt, pt, 0);
    as.andi(pt2, pbit, 31);
    as.shr(pt, pt, pt2);
    as.andi(ptake, pt, 1);
    // acc = take ? mul : acc via cswap-style select (always executed).
    as.la(a0, "bn_pow_acc");
    as.la(a1, "bn_pow_mul");
    as.mv(a2, ptake);
    as.mv(a3, pn);
    as.call("bn_cswap");
    as.bne(pbit, ir::regZero, ".pow_loop");

    // dst = montmul(acc, one): out of the Montgomery domain.
    as.mv(a0, pd);
    as.la(a1, "bn_pow_acc");
    as.la(a2, "bn_pow_one");
    as.mv(a3, pm);
    as.mv(a4, pn0);
    as.mv(a5, pn);
    as.call("mont_mul");
    as.pop(ir::regRa);
    as.ret();
    as.endFunction();
}

} // namespace

void
emitBignum(Assembler &as, bool unroll_inner, int fixed_limbs)
{
    as.allocData("bn_t", (kMaxLimbs + 2) * 8, 8);
    as.allocData("bn_s", kMaxLimbs * 4, 8);
    emitMontMul(as, unroll_inner, fixed_limbs);
    emitModAdd(as, unroll_inner, fixed_limbs);
    emitModSub(as, unroll_inner, fixed_limbs);
    emitCopySwap(as, unroll_inner, fixed_limbs);
    emitMontPow(as);
}

namespace {

/** Pack 32-bit limbs into bytes for the data image. */
std::vector<uint8_t>
limbBytes(const ref::Limbs &limbs)
{
    std::vector<uint8_t> out;
    for (uint32_t limb : limbs) {
        for (int i = 0; i < 4; i++)
            out.push_back(static_cast<uint8_t>(limb >> (8 * i)));
    }
    return out;
}

ref::Limbs
limbsFromBytes(const std::vector<uint8_t> &bytes)
{
    ref::Limbs out(bytes.size() / 4);
    for (size_t i = 0; i < out.size(); i++) {
        out[i] = static_cast<uint32_t>(bytes[4 * i]) |
            (static_cast<uint32_t>(bytes[4 * i + 1]) << 8) |
            (static_cast<uint32_t>(bytes[4 * i + 2]) << 16) |
            (static_cast<uint32_t>(bytes[4 * i + 3]) << 24);
    }
    return out;
}

/** Deterministic odd modulus / operand limbs. */
ref::Limbs
randomLimbs(int n, uint8_t seed, bool make_odd_top)
{
    auto bytes = patternBytes(static_cast<size_t>(n) * 4, seed);
    ref::Limbs limbs = limbsFromBytes(bytes);
    if (make_odd_top) {
        limbs[0] |= 1;                 // odd (Montgomery-friendly)
        limbs[n - 1] |= 0x80000000u;   // full width
    }
    return limbs;
}

/** Shared ModPow/RSA workload builder. */
Workload
makeModPow(const std::string &name, const std::string &suite, int nlimbs,
           uint8_t seed)
{
    Assembler as;
    as.allocData("mp_base", kMaxLimbs * 4, 8);
    as.allocData("mp_exp", kMaxLimbs * 4, 8);
    as.allocData("mp_mod", kMaxLimbs * 4, 8);
    as.allocData("mp_rr", kMaxLimbs * 4, 8);
    as.allocData("mp_out", kMaxLimbs * 4, 8);
    as.allocData("mp_n0", 8, 8);

    as.beginFunction("main", false);
    as.la(a0, "mp_out");
    as.la(a1, "mp_base");
    as.la(a2, "mp_exp");
    as.la(a3, "mp_mod");
    as.la(a4, "mp_n0");
    as.ld(a4, a4, 0);
    as.li(a5, nlimbs);
    as.la(a6, "mp_rr");
    as.call("mont_pow");
    as.halt();
    as.endFunction();

    emitBignum(as);

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = as.finalize();
    uint64_t base_addr = as.dataAddr("mp_base");
    uint64_t exp_addr = as.dataAddr("mp_exp");
    uint64_t mod_addr = as.dataAddr("mp_mod");
    uint64_t rr_addr = as.dataAddr("mp_rr");
    uint64_t out_addr = as.dataAddr("mp_out");
    uint64_t n0_addr = as.dataAddr("mp_n0");

    // The modulus is a public parameter: fixed across inputs. The
    // base/exponent (the secrets) differ per input.
    ref::Limbs mod = randomLimbs(nlimbs, seed, true);
    ref::MontCtx ctx = ref::montInit(mod);

    w.setInput = [=](sim::Machine &m, int which) {
        ref::Limbs base = randomLimbs(
            nlimbs, static_cast<uint8_t>(seed + 1 + which), false);
        base[nlimbs - 1] &= 0x7fffffffu; // keep base < mod
        ref::Limbs exp = randomLimbs(
            nlimbs, static_cast<uint8_t>(seed + 40 + which), false);
        pokeBytes(m, base_addr, limbBytes(base));
        pokeBytes(m, exp_addr, limbBytes(exp));
        pokeBytes(m, mod_addr, limbBytes(mod));
        pokeBytes(m, rr_addr, limbBytes(ctx.rr));
        m.write64(n0_addr, ctx.n0inv);
    };
    w.check = [=](const sim::Machine &m) {
        ref::Limbs base =
            randomLimbs(nlimbs, static_cast<uint8_t>(seed + 3), false);
        base[nlimbs - 1] &= 0x7fffffffu;
        ref::Limbs exp =
            randomLimbs(nlimbs, static_cast<uint8_t>(seed + 42), false);
        auto expect = ref::modPow(ctx, base, exp);
        auto got = limbsFromBytes(
            peekBytes(m, out_addr, static_cast<size_t>(nlimbs) * 4));
        return got == expect;
    };
    w.secretRegions = {{base_addr, base_addr + kMaxLimbs * 4},
                       {exp_addr, exp_addr + kMaxLimbs * 4}};
    return w;
}

} // namespace

Workload
modPowWorkload()
{
    return makeModPow("ModPow_i31", "BearSSL", /*nlimbs=*/8, 0x11);
}

Workload
rsaWorkload()
{
    return makeModPow("RSA_i62", "BearSSL", /*nlimbs=*/16, 0x23);
}

} // namespace cassandra::crypto
