/**
 * @file
 * Poly1305 IR kernel (RFC 8439) in the donna 26-bit-limb layout —
 * the analog of BearSSL's poly1305_ctmul. Message length must be a
 * multiple of 16 (the workload uses a 256-byte message).
 */

#include "crypto/kernels/common.hh"
#include "crypto/ref/poly1305.hh"

namespace cassandra::crypto {

namespace {

// h0..h4: x18..x22, r0..r4: x23..x27, s1..s4: x28..x31,
// d0..d4: x32..x36, scratch: x37..x44.
constexpr RegId rh = 18, rr0 = 23, rs1 = 28, rd0 = 32;
constexpr RegId rc = 37, rt = 38, rt2 = 39, rmsgp = 40, rcnt = 41,
                rmask = 42, rt3 = 43;

RegId
h(int i) { return static_cast<RegId>(rh + i); }
RegId
r(int i) { return static_cast<RegId>(rr0 + i); }
RegId
s(int i) { return static_cast<RegId>(rs1 + i - 1); }
RegId
d(int i) { return static_cast<RegId>(rd0 + i); }

} // namespace

void
emitPoly1305(Assembler &as)
{
    // poly1305(a0 = out16, a1 = key32, a2 = msg, a3 = len)
    as.beginFunction("poly1305", true);
    as.li(rmask, 0x3ffffff);

    // r limbs with the RFC clamp masks.
    as.lw(r(0), a1, 0);
    as.and_(r(0), r(0), rmask);
    as.lw(r(1), a1, 3);
    as.shri(r(1), r(1), 2);
    as.li(rt, 0x3ffff03);
    as.and_(r(1), r(1), rt);
    as.lw(r(2), a1, 6);
    as.shri(r(2), r(2), 4);
    as.li(rt, 0x3ffc0ff);
    as.and_(r(2), r(2), rt);
    as.lw(r(3), a1, 9);
    as.shri(r(3), r(3), 6);
    as.li(rt, 0x3f03fff);
    as.and_(r(3), r(3), rt);
    as.lw(r(4), a1, 12);
    as.shri(r(4), r(4), 8);
    as.li(rt, 0x00fffff);
    as.and_(r(4), r(4), rt);
    for (int i = 1; i <= 4; i++) {
        as.shli(rt, r(i), 2);
        as.add(s(i), rt, r(i)); // s = 5r
    }
    for (int i = 0; i < 5; i++)
        as.li(h(i), 0);

    // Block loop.
    as.mv(rmsgp, a2);
    as.li(rcnt, 0);
    as.label(".poly_blk");
    // m limbs from unaligned 32-bit loads.
    as.lw(rt, rmsgp, 0);
    as.and_(rt, rt, rmask);
    as.add(h(0), h(0), rt);
    as.lw(rt, rmsgp, 3);
    as.shri(rt, rt, 2);
    as.and_(rt, rt, rmask);
    as.add(h(1), h(1), rt);
    as.lw(rt, rmsgp, 6);
    as.shri(rt, rt, 4);
    as.and_(rt, rt, rmask);
    as.add(h(2), h(2), rt);
    as.lw(rt, rmsgp, 9);
    as.shri(rt, rt, 6);
    as.and_(rt, rt, rmask);
    as.add(h(3), h(3), rt);
    as.lw(rt, rmsgp, 12);
    as.shri(rt, rt, 8);
    as.li(rt2, 1 << 24); // full-block high bit
    as.or_(rt, rt, rt2);
    as.add(h(4), h(4), rt);

    // d = h * r (schoolbook mod 2^130-5 with 5r folding).
    auto mac = [&](int di, RegId x, RegId y, bool first) {
        as.mul(rt, x, y);
        if (first)
            as.mv(d(di), rt);
        else
            as.add(d(di), d(di), rt);
    };
    mac(0, h(0), r(0), true);
    mac(0, h(1), s(4), false);
    mac(0, h(2), s(3), false);
    mac(0, h(3), s(2), false);
    mac(0, h(4), s(1), false);
    mac(1, h(0), r(1), true);
    mac(1, h(1), r(0), false);
    mac(1, h(2), s(4), false);
    mac(1, h(3), s(3), false);
    mac(1, h(4), s(2), false);
    mac(2, h(0), r(2), true);
    mac(2, h(1), r(1), false);
    mac(2, h(2), r(0), false);
    mac(2, h(3), s(4), false);
    mac(2, h(4), s(3), false);
    mac(3, h(0), r(3), true);
    mac(3, h(1), r(2), false);
    mac(3, h(2), r(1), false);
    mac(3, h(3), r(0), false);
    mac(3, h(4), s(4), false);
    mac(4, h(0), r(4), true);
    mac(4, h(1), r(3), false);
    mac(4, h(2), r(2), false);
    mac(4, h(3), r(1), false);
    mac(4, h(4), r(0), false);

    // Carry chain.
    as.shri(rc, d(0), 26);
    as.and_(d(0), d(0), rmask);
    for (int i = 1; i < 5; i++) {
        as.add(d(i), d(i), rc);
        as.shri(rc, d(i), 26);
        as.and_(d(i), d(i), rmask);
    }
    as.shli(rt, rc, 2);
    as.add(rt, rt, rc); // c * 5
    as.add(d(0), d(0), rt);
    as.shri(rc, d(0), 26);
    as.and_(d(0), d(0), rmask);
    as.add(d(1), d(1), rc);
    for (int i = 0; i < 5; i++)
        as.mv(h(i), d(i));

    as.addi(rmsgp, rmsgp, 16);
    as.addi(rcnt, rcnt, 16);
    as.bltu(rcnt, a3, ".poly_blk");

    // Final reduction.
    as.shri(rc, h(1), 26);
    as.and_(h(1), h(1), rmask);
    for (int i = 2; i < 5; i++) {
        as.add(h(i), h(i), rc);
        as.shri(rc, h(i), 26);
        as.and_(h(i), h(i), rmask);
    }
    as.shli(rt, rc, 2);
    as.add(rt, rt, rc);
    as.add(h(0), h(0), rt);
    as.shri(rc, h(0), 26);
    as.and_(h(0), h(0), rmask);
    as.add(h(1), h(1), rc);

    // g = h + 5 - 2^130; select h or g constant-time.
    as.addi(d(0), h(0), 5);
    as.shri(rc, d(0), 26);
    as.and_(d(0), d(0), rmask);
    for (int i = 1; i < 5; i++) {
        as.add(d(i), h(i), rc);
        if (i < 4) {
            as.shri(rc, d(i), 26);
            as.and_(d(i), d(i), rmask);
        }
    }
    as.li(rt, 1 << 26);
    as.sub(d(4), d(4), rt);
    as.shri(rt2, d(4), 63); // 1 when g < 0 (h < p)
    as.xori(rt2, rt2, 1);   // take g when h >= p
    for (int i = 0; i < 5; i++) {
        if (i == 4)
            as.and_(d(4), d(4), rmask);
        as.cmovnz(h(i), rt2, d(i));
    }

    // Serialize to 128 bits and add s = key[16..31].
    as.shli(rt, h(1), 26);
    as.or_(d(0), h(0), rt);
    as.li(rt, 0xffffffff);
    as.and_(d(0), d(0), rt);
    as.shri(d(1), h(1), 6);
    as.shli(rt2, h(2), 20);
    as.or_(d(1), d(1), rt2);
    as.and_(d(1), d(1), rt);
    as.shri(d(2), h(2), 12);
    as.shli(rt2, h(3), 14);
    as.or_(d(2), d(2), rt2);
    as.and_(d(2), d(2), rt);
    as.shri(d(3), h(3), 18);
    as.shli(rt2, h(4), 8);
    as.or_(d(3), d(3), rt2);
    as.and_(d(3), d(3), rt);

    as.li(rc, 0);
    for (int i = 0; i < 4; i++) {
        as.lw(rt2, a1, 16 + 4 * i);
        as.add(d(i), d(i), rt2);
        as.add(d(i), d(i), rc);
        as.shri(rc, d(i), 32);
        as.and_(d(i), d(i), rt);
        as.sw(d(i), a0, 4 * i);
    }
    as.ret();
    as.endFunction();
    (void)rt3;
}

Workload
poly1305Workload()
{
    Assembler as;
    as.allocData("p_key", 32, 8);
    as.allocData("p_msg", 256, 8);
    as.allocData("p_out", 16, 8);

    as.beginFunction("main", false);
    as.la(a0, "p_out");
    as.la(a1, "p_key");
    as.la(a2, "p_msg");
    as.li(a3, 256);
    as.call("poly1305");
    as.halt();
    as.endFunction();

    emitPoly1305(as);

    Workload w;
    w.name = "Poly1305_ctmul";
    w.suite = "BearSSL";
    w.program = as.finalize();
    uint64_t key_addr = as.dataAddr("p_key");
    uint64_t msg_addr = as.dataAddr("p_msg");
    uint64_t out_addr = as.dataAddr("p_out");

    w.setInput = [=](sim::Machine &m, int which) {
        pokeBytes(m, key_addr,
                  patternBytes(32, static_cast<uint8_t>(which + 90)));
        pokeBytes(m, msg_addr, patternBytes(256, 0x66));
    };
    w.check = [=](const sim::Machine &m) {
        auto key = patternBytes(32, 92);
        auto msg = patternBytes(256, 0x66);
        auto expect = ref::poly1305Mac(key.data(), msg);
        auto got = peekBytes(m, out_addr, 16);
        return std::equal(expect.begin(), expect.end(), got.begin());
    };
    w.secretRegions = {{key_addr, key_addr + 32}};
    return w;
}

} // namespace cassandra::crypto
