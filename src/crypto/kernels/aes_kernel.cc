#include "crypto/kernels/aes_kernel.hh"

#include "crypto/ref/aes128.hh"

namespace cassandra::crypto {

namespace {

// gf_mul register plan (leaf): x18..x23.
constexpr RegId gp = 18, ga = 19, gb = 20, gi = 21, gt = 22, gt2 = 23;
// sbox/inverse plan: x24..x27 (live across gf_mul calls? no - gf_mul
// clobbers x18..x23 only).
constexpr RegId sq = 24, sr = 25, sb2 = 26, si = 27;
// aes_block plan: x28..x38.
constexpr RegId bst = 28, bout = 29, bin = 30, brk = 31, brnd = 32,
                bi = 33, bt = 34, bt2 = 35, bt3 = 36, bt4 = 37, bt5 = 38;
// ctr/cbc drivers: x39..x45.
constexpr RegId coff = 39, clen = 40, cmsg = 41, cout = 42, ct = 43,
                ct2 = 44, ct3 = 45;

/** Inline xtime: rd = ((rs << 1) ^ (0x1b if rs & 0x80)) & 0xff.
 * Branchless; clobbers t. */
void
emitXtime(Assembler &as, RegId rd, RegId rs, RegId t)
{
    as.shri(t, rs, 7);
    as.sub(t, ir::regZero, t); // mask = -(rs >> 7)
    as.andi(t, t, 0x1b);
    as.shli(rd, rs, 1);
    as.andi(rd, rd, 0xff);
    as.xor_(rd, rd, t);
}

} // namespace

void
emitAes(Assembler &as)
{
    as.allocData("aes_st", 16, 8);
    as.allocData("aes_t2", 16, 8);

    // Inline branchless GF(2^8) product: dst = x * y; clobbers ga, gb,
    // gt, gt2 and dst. x/y may alias ga/gb.
    auto gf_mul_inline = [&](RegId dst, RegId x, RegId y) {
        if (y != gb)
            as.mv(gb, y);
        if (x != ga)
            as.mv(ga, x);
        as.li(gp, 0);
        for (int i = 0; i < 8; i++) {
            as.andi(gt, gb, 1);
            as.sub(gt, ir::regZero, gt); // mask
            as.and_(gt, gt, ga);
            as.xor_(gp, gp, gt);
            if (i < 7) {
                emitXtime(as, ga, ga, gt2);
                as.shri(gb, gb, 1);
            }
        }
        if (dst != gp)
            as.mv(dst, gp);
    };

    // aes_sbox(a0) -> a0: GF inverse (x^254, straight-line square-and-
    // multiply chain) + affine map. Zero maps to zero automatically
    // since every product factor is zero.
    as.beginFunction("aes_sbox", true);
    as.mv(sq, a0);
    as.li(sr, 1);
    bool first = true;
    for (int k = 1; k <= 7; k++) {
        gf_mul_inline(sq, sq, sq); // sq = sq^2
        if (first) {
            as.mv(sr, sq);
            first = false;
        } else {
            gf_mul_inline(sr, sr, sq);
        }
    }
    // affine: x = r; y = r; 4x (y = rotl8(y); x ^= y); x ^= 0x63.
    as.mv(sb2, sr);
    for (int i = 0; i < 4; i++) {
        as.shli(gt, sr, 1);
        as.shri(gt2, sr, 7);
        as.or_(sr, gt, gt2);
        as.andi(sr, sr, 0xff);
        as.xor_(sb2, sb2, sr);
    }
    as.xori(a0, sb2, 0x63);
    as.ret();
    as.endFunction();

    // aes_expand(a0 = rk176, a1 = key16)
    as.beginFunction("aes_expand", true);
    as.push(ir::regRa);
    constexpr RegId erk = 46, ei = 47, ercon = 48, et = 49, et2 = 50,
                    et3 = 51;
    as.mv(erk, a0);
    for (int i = 0; i < 16; i++) {
        as.lb(et, a1, i);
        as.sb(et, erk, i);
    }
    as.li(ercon, 1);
    as.li(ei, 16);
    as.label(".aes_exp");
    // t[0..3] = rk[i-4 .. i-1]
    as.add(et3, erk, ei);
    // every 16 bytes: rotword+subword+rcon
    as.andi(et, ei, 15);
    as.bne(et, ir::regZero, ".aes_exp_plain");
    // t0 = sbox(rk[i-3]) ^ rcon ; t1 = sbox(rk[i-2]) ;
    // t2 = sbox(rk[i-1]) ; t3 = sbox(rk[i-4])
    as.lb(a0, et3, -3);
    as.call("aes_sbox");
    as.xor_(et, a0, ercon);
    as.lb(a0, et3, -2);
    as.call("aes_sbox");
    as.mv(et2, a0);
    // stash t0/t1 on the stack around further calls
    as.push(et);
    as.push(et2);
    as.lb(a0, et3, -1);
    as.call("aes_sbox");
    as.mv(et2, a0); // t2
    as.lb(a0, et3, -4);
    as.call("aes_sbox"); // t3 in a0
    as.mv(et3, a0);
    // update rcon = xtime(rcon)
    emitXtime(as, ercon, ercon, et);
    // reload t1, t0
    as.pop(bt);  // t1
    as.pop(bt2); // t0
    // rk[i+j] = rk[i-16+j] ^ t[j]
    as.add(et, erk, ei);
    as.lb(bt3, et, -16);
    as.xor_(bt3, bt3, bt2);
    as.sb(bt3, et, 0);
    as.lb(bt3, et, -15);
    as.xor_(bt3, bt3, bt);
    as.sb(bt3, et, 1);
    as.lb(bt3, et, -14);
    as.xor_(bt3, bt3, et2);
    as.sb(bt3, et, 2);
    as.lb(bt3, et, -13);
    as.xor_(bt3, bt3, et3);
    as.sb(bt3, et, 3);
    as.j(".aes_exp_next");

    as.label(".aes_exp_plain");
    as.add(et, erk, ei);
    for (int j = 0; j < 4; j++) {
        as.lb(et2, et, -16 + j);
        as.lb(et3, et, -4 + j);
        as.xor_(et2, et2, et3);
        as.sb(et2, et, j);
    }
    as.label(".aes_exp_next");
    as.addi(ei, ei, 4);
    as.slti(et, ei, 176);
    as.bne(et, ir::regZero, ".aes_exp");
    as.pop(ir::regRa);
    as.ret();
    as.endFunction();

    // aes_block(a0 = out, a1 = in, a2 = rk)
    as.beginFunction("aes_block", true);
    as.push(ir::regRa);
    as.mv(bout, a0);
    as.mv(bin, a1);
    as.mv(brk, a2);
    as.la(bst, "aes_st");
    // initial AddRoundKey
    for (int i = 0; i < 16; i++) {
        as.lb(bt, bin, i);
        as.lb(bt2, brk, i);
        as.xor_(bt, bt, bt2);
        as.sb(bt, bst, i);
    }
    as.forLoop(brnd, 1, 11, [&] {
        // SubBytes
        as.forLoop(bi, 0, 16, [&] {
            as.add(bt, bst, bi);
            as.push(bi);
            as.lb(a0, bt, 0);
            as.push(bt);
            as.call("aes_sbox");
            as.pop(bt);
            as.sb(a0, bt, 0);
            as.pop(bi);
        });
        // ShiftRows into aes_t2 (column-major layout).
        as.la(bt3, "aes_t2");
        for (int col = 0; col < 4; col++) {
            for (int row = 0; row < 4; row++) {
                as.lb(bt, bst, 4 * ((col + row) % 4) + row);
                as.sb(bt, bt3, 4 * col + row);
            }
        }
        // MixColumns for rounds 1..9; copy back for round 10. The
        // round test branch depends only on the public round counter.
        as.slti(bt, brnd, 10);
        as.beq(bt, ir::regZero, ".aes_last_round");
        for (int col = 0; col < 4; col++) {
            // load column a0..a3 into bt..bt3? need 4 + temps; reuse
            // registers bt, bt2, bt4, bt5 for the column.
            as.la(bt3, "aes_t2");
            as.lb(bt, bt3, 4 * col + 0);
            as.lb(bt2, bt3, 4 * col + 1);
            as.lb(bt4, bt3, 4 * col + 2);
            as.lb(bt5, bt3, 4 * col + 3);
            // s0 = xt(a0) ^ xt(a1) ^ a1 ^ a2 ^ a3
            RegId x1 = 46, x2 = 47, acc = 48; // reuse expand temps
            emitXtime(as, x1, bt, x2);
            as.mv(acc, x1);
            emitXtime(as, x1, bt2, x2);
            as.xor_(acc, acc, x1);
            as.xor_(acc, acc, bt2);
            as.xor_(acc, acc, bt4);
            as.xor_(acc, acc, bt5);
            as.sb(acc, bst, 4 * col + 0);
            // s1 = a0 ^ xt(a1) ^ xt(a2) ^ a2 ^ a3
            emitXtime(as, x1, bt2, x2);
            as.xor_(acc, bt, x1);
            emitXtime(as, x1, bt4, x2);
            as.xor_(acc, acc, x1);
            as.xor_(acc, acc, bt4);
            as.xor_(acc, acc, bt5);
            as.sb(acc, bst, 4 * col + 1);
            // s2 = a0 ^ a1 ^ xt(a2) ^ xt(a3) ^ a3
            emitXtime(as, x1, bt4, x2);
            as.xor_(acc, bt, bt2);
            as.xor_(acc, acc, x1);
            emitXtime(as, x1, bt5, x2);
            as.xor_(acc, acc, x1);
            as.xor_(acc, acc, bt5);
            as.sb(acc, bst, 4 * col + 2);
            // s3 = xt(a0) ^ a0 ^ a1 ^ a2 ^ xt(a3)
            emitXtime(as, x1, bt, x2);
            as.xor_(acc, x1, bt);
            as.xor_(acc, acc, bt2);
            as.xor_(acc, acc, bt4);
            emitXtime(as, x1, bt5, x2);
            as.xor_(acc, acc, x1);
            as.sb(acc, bst, 4 * col + 3);
        }
        as.j(".aes_addkey");
        as.label(".aes_last_round");
        as.la(bt3, "aes_t2");
        for (int i = 0; i < 16; i++) {
            as.lb(bt, bt3, i);
            as.sb(bt, bst, i);
        }
        as.label(".aes_addkey");
        as.shli(bt2, brnd, 4); // round * 16
        as.add(bt2, brk, bt2);
        for (int i = 0; i < 16; i++) {
            as.lb(bt, bst, i);
            as.lb(bt4, bt2, i);
            as.xor_(bt, bt, bt4);
            as.sb(bt, bst, i);
        }
    });
    for (int i = 0; i < 16; i++) {
        as.lb(bt, bst, i);
        as.sb(bt, bout, i);
    }
    as.pop(ir::regRa);
    as.ret();
    as.endFunction();

    // aes_block2(a0 = out, a1 = in, a2 = rk): two full AES rounds
    // (Haraka-style permutation; both rounds include MixColumns).
    as.beginFunction("aes_block2", true);
    as.push(ir::regRa);
    as.mv(bout, a0);
    as.mv(bin, a1);
    as.mv(brk, a2);
    as.la(bst, "aes_st");
    for (int i = 0; i < 16; i++) {
        as.lb(bt, bin, i);
        as.lb(bt2, brk, i);
        as.xor_(bt, bt, bt2);
        as.sb(bt, bst, i);
    }
    for (int round = 1; round <= 2; round++) {
        as.forLoop(bi, 0, 16, [&] {
            as.add(bt, bst, bi);
            as.lb(a0, bt, 0);
            as.push(bt);
            as.call("aes_sbox");
            as.pop(bt);
            as.sb(a0, bt, 0);
        });
        as.la(bt3, "aes_t2");
        for (int col = 0; col < 4; col++) {
            for (int row = 0; row < 4; row++) {
                as.lb(bt, bst, 4 * ((col + row) % 4) + row);
                as.sb(bt, bt3, 4 * col + row);
            }
        }
        for (int col = 0; col < 4; col++) {
            as.la(bt3, "aes_t2");
            as.lb(bt, bt3, 4 * col + 0);
            as.lb(bt2, bt3, 4 * col + 1);
            as.lb(bt4, bt3, 4 * col + 2);
            as.lb(bt5, bt3, 4 * col + 3);
            RegId x1 = 46, x2 = 47, acc = 48;
            emitXtime(as, x1, bt, x2);
            as.mv(acc, x1);
            emitXtime(as, x1, bt2, x2);
            as.xor_(acc, acc, x1);
            as.xor_(acc, acc, bt2);
            as.xor_(acc, acc, bt4);
            as.xor_(acc, acc, bt5);
            as.sb(acc, bst, 4 * col + 0);
            emitXtime(as, x1, bt2, x2);
            as.xor_(acc, bt, x1);
            emitXtime(as, x1, bt4, x2);
            as.xor_(acc, acc, x1);
            as.xor_(acc, acc, bt4);
            as.xor_(acc, acc, bt5);
            as.sb(acc, bst, 4 * col + 1);
            emitXtime(as, x1, bt4, x2);
            as.xor_(acc, bt, bt2);
            as.xor_(acc, acc, x1);
            emitXtime(as, x1, bt5, x2);
            as.xor_(acc, acc, x1);
            as.xor_(acc, acc, bt5);
            as.sb(acc, bst, 4 * col + 2);
            emitXtime(as, x1, bt, x2);
            as.xor_(acc, x1, bt);
            as.xor_(acc, acc, bt2);
            as.xor_(acc, acc, bt4);
            emitXtime(as, x1, bt5, x2);
            as.xor_(acc, acc, x1);
            as.sb(acc, bst, 4 * col + 3);
        }
        for (int i = 0; i < 16; i++) {
            as.lb(bt, bst, i);
            as.lb(bt4, brk, 16 * round + i);
            as.xor_(bt, bt, bt4);
            as.sb(bt, bst, i);
        }
    }
    for (int i = 0; i < 16; i++) {
        as.lb(bt, bst, i);
        as.sb(bt, bout, i);
    }
    as.pop(ir::regRa);
    as.ret();
    as.endFunction();
}

namespace {

/** Shared CTR/CBC workload builder; mode selects the loop kernel. */
Workload
makeAesMode(const std::string &name, bool ctr_mode, size_t msg_len)
{
    Assembler as;
    as.allocData("a_key", 16, 8);
    as.allocData("a_iv", 16, 8);
    as.allocData("a_rk", 176, 8);
    as.allocData("a_msg", 256, 8);
    as.allocData("a_out", 256, 8);
    as.allocData("a_ctr", 16, 8);
    as.allocData("a_ks", 16, 8);

    as.beginFunction("main", false);
    as.call(ctr_mode ? "aes_ctr" : "aes_cbc");
    as.halt();
    as.endFunction();

    if (ctr_mode) {
        as.beginFunction("aes_ctr", true);
        as.push(ir::regRa);
        as.la(a0, "a_rk");
        as.la(a1, "a_key");
        as.call("aes_expand");
        // counter block = iv
        as.la(ct, "a_iv");
        as.la(ct2, "a_ctr");
        for (int i = 0; i < 16; i++) {
            as.lb(ct3, ct, i);
            as.sb(ct3, ct2, i);
        }
        as.li(coff, 0);
        as.li(clen, static_cast<int64_t>(msg_len));
        as.label(".ctr_loop");
        as.la(a0, "a_ks");
        as.la(a1, "a_ctr");
        as.la(a2, "a_rk");
        as.call("aes_block");
        // out = msg ^ ks
        as.la(cmsg, "a_msg");
        as.add(cmsg, cmsg, coff);
        as.la(cout, "a_out");
        as.add(cout, cout, coff);
        as.la(ct, "a_ks");
        for (int i = 0; i < 16; i++) {
            as.lb(ct2, cmsg, i);
            as.lb(ct3, ct, i);
            as.xor_(ct2, ct2, ct3);
            as.sb(ct2, cout, i);
        }
        // increment the big-endian counter (public data; the early
        // exit depends only on the block index).
        as.la(ct, "a_ctr");
        as.li(ct2, 15);
        as.label(".ctr_inc");
        as.add(ct3, ct, ct2);
        as.lb(bt, ct3, 0);
        as.addi(bt, bt, 1);
        as.andi(bt, bt, 0xff);
        as.sb(bt, ct3, 0);
        as.bne(bt, ir::regZero, ".ctr_done");
        as.addi(ct2, ct2, -1);
        as.bge(ct2, ir::regZero, ".ctr_inc");
        as.label(".ctr_done");
        as.addi(coff, coff, 16);
        as.bltu(coff, clen, ".ctr_loop");
        as.pop(ir::regRa);
        as.ret();
        as.endFunction();
    } else {
        as.beginFunction("aes_cbc", true);
        as.push(ir::regRa);
        as.la(a0, "a_rk");
        as.la(a1, "a_key");
        as.call("aes_expand");
        // chain = iv (kept in a_ctr)
        as.la(ct, "a_iv");
        as.la(ct2, "a_ctr");
        for (int i = 0; i < 16; i++) {
            as.lb(ct3, ct, i);
            as.sb(ct3, ct2, i);
        }
        as.li(coff, 0);
        as.li(clen, static_cast<int64_t>(msg_len));
        as.label(".cbc_loop");
        // ks = msg ^ chain
        as.la(cmsg, "a_msg");
        as.add(cmsg, cmsg, coff);
        as.la(ct, "a_ctr");
        as.la(ct2, "a_ks");
        for (int i = 0; i < 16; i++) {
            as.lb(ct3, cmsg, i);
            as.lb(bt, ct, i);
            as.xor_(ct3, ct3, bt);
            as.sb(ct3, ct2, i);
        }
        as.la(cout, "a_out");
        as.add(a0, cout, coff);
        as.la(a1, "a_ks");
        as.la(a2, "a_rk");
        as.call("aes_block");
        // chain = out block
        as.la(cout, "a_out");
        as.add(cout, cout, coff);
        as.la(ct, "a_ctr");
        for (int i = 0; i < 16; i++) {
            as.lb(ct2, cout, i);
            as.sb(ct2, ct, i);
        }
        as.addi(coff, coff, 16);
        as.bltu(coff, clen, ".cbc_loop");
        as.pop(ir::regRa);
        as.ret();
        as.endFunction();
    }

    emitAes(as);

    Workload w;
    w.name = name;
    w.suite = "BearSSL";
    w.program = as.finalize();
    uint64_t key_addr = as.dataAddr("a_key");
    uint64_t iv_addr = as.dataAddr("a_iv");
    uint64_t msg_addr = as.dataAddr("a_msg");
    uint64_t out_addr = as.dataAddr("a_out");

    w.setInput = [=](sim::Machine &m, int which) {
        pokeBytes(m, key_addr,
                  patternBytes(16, static_cast<uint8_t>(which + 110)));
        pokeBytes(m, iv_addr, patternBytes(16, 0x12));
        pokeBytes(m, msg_addr, patternBytes(msg_len, 0x34));
    };
    w.check = [=](const sim::Machine &m) {
        auto key = patternBytes(16, 112);
        auto iv = patternBytes(16, 0x12);
        auto msg = patternBytes(msg_len, 0x34);
        auto expect = ctr_mode
            ? ref::aes128Ctr(key.data(), iv.data(), msg)
            : ref::aes128CbcEncrypt(key.data(), iv.data(), msg);
        return peekBytes(m, out_addr, msg_len) == expect;
    };
    w.secretRegions = {{key_addr, key_addr + 16},
                       {msg_addr, msg_addr + 256}};
    return w;
}

} // namespace

Workload
aesCtrWorkload()
{
    return makeAesMode("AES_CTR", /*ctr=*/true, 64);
}

Workload
cbcCtWorkload()
{
    return makeAesMode("CBC_ct", /*ctr=*/false, 64);
}

} // namespace cassandra::crypto
