/**
 * @file
 * Constant-time AES-128 IR kernel in the spirit of BearSSL's aes_ct:
 * no table lookups — the S-box is computed arithmetically via the
 * GF(2^8) inverse (x^254 by a fixed square-multiply chain) plus the
 * affine map, so no memory access depends on secret data.
 */

#ifndef CASSANDRA_CRYPTO_KERNELS_AES_KERNEL_HH
#define CASSANDRA_CRYPTO_KERNELS_AES_KERNEL_HH

#include "crypto/kernels/common.hh"

namespace cassandra::crypto {

/**
 * Define gf_mul / aes_sbox / aes_expand(rk, key) /
 * aes_block(out, in, rk) in the assembler.
 */
void emitAes(Assembler &as);

/** BearSSL-style AES-128-CTR workload. */
Workload aesCtrWorkload();
/** BearSSL-style AES-128-CBC encryption workload. */
Workload cbcCtWorkload();

} // namespace cassandra::crypto

#endif // CASSANDRA_CRYPTO_KERNELS_AES_KERNEL_HH
