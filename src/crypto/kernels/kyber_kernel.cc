/**
 * @file
 * Kyber-style KEM IR kernel (n = 256, q = 3329, eta = 2): NTT/INTT,
 * basemul, CBD noise sampling and SHAKE128 matrix expansion with
 * rejection sampling — the paper's example of branches whose traces
 * are random across runs (footnote 3). The workload runs the full
 * keygen + encrypt + decrypt flow and checks the ciphertext and the
 * decrypted message against the C++ reference.
 */

#include "crypto/kernels/common.hh"
#include "crypto/kernels/keccak_kernel.hh"
#include "crypto/kernels/kyber_kernel.hh"
#include "crypto/ref/kyber.hh"

namespace cassandra::crypto {

namespace {

constexpr int kQ = ref::kyberQ;
constexpr int kN = ref::kyberN;
constexpr int64_t kBarrettMu = 41285357; // floor(2^37 / q)

// NTT/poly registers: x18..x35.
constexpr RegId nk = 18, nlen = 19, nstart = 20, nj = 21, nz = 22,
                nt = 23, nt2 = 24, nt3 = 25, np = 26, nzp = 27, njl = 28,
                nlayer = 29, nend = 30, nt4 = 31;
// Driver registers: x40..x56 (survive shake/keccak which use x18..x52).
// NOTE: keccak's shake uses up to x62, so drivers around shake calls
// must stash state in memory instead.
constexpr RegId gi = 40, gj = 41, gt = 42, gt2 = 43, gt3 = 44, gpos = 45,
                ggot = 46, gblocks = 47;

/** reg = reg mod q via Barrett + two conditional subtracts.
 * Requires 0 <= reg < 2^37; clobbers t1, t2. */
void
emitModQ(Assembler &as, RegId reg, RegId t1, RegId t2)
{
    as.li(t1, kBarrettMu);
    as.mul(t1, reg, t1);
    as.shri(t1, t1, 37);
    as.li(t2, kQ);
    as.mul(t1, t1, t2);
    as.sub(reg, reg, t1);
    for (int i = 0; i < 2; i++) {
        as.sltiu(t1, reg, kQ);
        as.xori(t1, t1, 1);
        as.addi(t2, reg, -kQ);
        as.cmovnz(reg, t1, t2);
    }
}

/** Emit ntt / intt / basemul / poly_add over "kb_zetas". */
void
emitNtt(Assembler &as)
{
    // Zeta table (public constants).
    as.allocData("kb_zetas", 128 * 2, 8);
    {
        const auto &z = ref::kyberZetas();
        for (int i = 0; i < 128; i++) {
            uint8_t b[2] = {static_cast<uint8_t>(z[i] & 0xff),
                            static_cast<uint8_t>(z[i] >> 8)};
            as.setData("kb_zetas", 2 * i, b, 2);
        }
    }

    // ntt(a0 = poly)
    as.beginFunction("kyber_ntt", true);
    as.li(nk, 1);
    as.forLoop(nlayer, 0, 7, [&] {
        as.li(nlen, 128);
        as.shr(nlen, nlen, nlayer);
        as.li(nstart, 0);
        as.label(".ntt_start");
        as.la(nzp, "kb_zetas");
        as.shli(nt, nk, 1);
        as.add(nzp, nzp, nt);
        as.lh(nz, nzp, 0);
        as.addi(nk, nk, 1);
        as.mv(nj, nstart);
        as.add(nend, nstart, nlen);
        as.label(".ntt_j");
        // t = zeta * p[j+len] mod q
        as.shli(nt, nj, 1);
        as.add(np, a0, nt);
        as.shli(nt, nlen, 1);
        as.add(nt3, np, nt); // &p[j+len]
        as.lh(nt, nt3, 0);
        as.mul(nt, nt, nz);
        emitModQ(as, nt, nt2, nt4);
        // p[j+len] = p[j] - t + q; p[j] = p[j] + t
        as.lh(nt2, np, 0);
        as.add(nt4, nt2, nt);
        emitModQ(as, nt4, njl, nz); // careful: nz reloaded below
        as.sh(nt4, np, 0);
        as.addi(nt4, nt2, kQ);
        as.sub(nt4, nt4, nt);
        emitModQ(as, nt4, njl, nt2);
        as.sh(nt4, nt3, 0);
        // reload zeta (clobbered as a temp above)
        as.lh(nz, nzp, 0);
        as.addi(nj, nj, 1);
        as.blt(nj, nend, ".ntt_j");
        // start += 2*len
        as.shli(nt, nlen, 1);
        as.add(nstart, nstart, nt);
        as.li(nt, kN);
        as.blt(nstart, nt, ".ntt_start");
    });
    as.ret();
    as.endFunction();

    // intt(a0 = poly)
    as.beginFunction("kyber_intt", true);
    as.li(nk, 127);
    as.forLoop(nlayer, 0, 7, [&] {
        // len = 2 << layer
        as.li(nlen, 2);
        as.shl(nlen, nlen, nlayer);
        as.li(nstart, 0);
        as.label(".intt_start");
        as.la(nzp, "kb_zetas");
        as.shli(nt, nk, 1);
        as.add(nzp, nzp, nt);
        as.lh(nz, nzp, 0);
        as.addi(nk, nk, -1);
        as.mv(nj, nstart);
        as.add(nend, nstart, nlen);
        as.label(".intt_j");
        as.shli(nt, nj, 1);
        as.add(np, a0, nt);
        as.shli(nt, nlen, 1);
        as.add(nt3, np, nt);
        as.lh(nt, np, 0);   // t = p[j]
        as.lh(nt2, nt3, 0); // p[j+len]
        // p[j] = t + p[j+len] mod q
        as.add(nt4, nt, nt2);
        emitModQ(as, nt4, njl, nz);
        as.sh(nt4, np, 0);
        as.lh(nz, nzp, 0);
        // p[j+len] = zeta * (p[j+len] - t + q) mod q
        as.addi(nt4, nt2, kQ);
        as.sub(nt4, nt4, nt);
        emitModQ(as, nt4, njl, nt2);
        as.mul(nt4, nt4, nz);
        emitModQ(as, nt4, njl, nt2);
        as.sh(nt4, nt3, 0);
        as.addi(nj, nj, 1);
        as.blt(nj, nend, ".intt_j");
        as.shli(nt, nlen, 1);
        as.add(nstart, nstart, nt);
        as.li(nt, kN);
        as.blt(nstart, nt, ".intt_start");
    });
    // Scale by 128^-1 mod q = 3303.
    as.mv(np, a0);
    as.forLoop(nj, 0, kN, [&] {
        as.lh(nt, np, 0);
        as.li(nt2, 3303);
        as.mul(nt, nt, nt2);
        emitModQ(as, nt, nt2, nt3);
        as.sh(nt, np, 0);
        as.addi(np, np, 2);
    });
    as.ret();
    as.endFunction();

    // basemul(a0 = dst, a1 = x, a2 = y)
    as.beginFunction("kyber_basemul", true);
    as.la(nzp, "kb_zetas", 64 * 2);
    as.forLoop(nj, 0, kN / 4, [&] {
        as.lh(nz, nzp, 0);
        as.addi(nzp, nzp, 2);
        auto mulmod = [&](RegId dst, RegId x, RegId y) {
            as.mul(dst, x, y);
            emitModQ(as, dst, nt3, nt4);
        };
        // offsets
        as.shli(nt, nj, 3); // 4 coefficients * 2 bytes
        as.add(np, a1, nt);
        as.add(nstart, a2, nt);
        as.add(nend, a0, nt);
        // r0 = a1*b1*zeta + a0*b0
        as.lh(nt, np, 2);
        as.lh(nt2, nstart, 2);
        mulmod(nk, nt, nt2);
        mulmod(nk, nk, nz);
        as.lh(nt, np, 0);
        as.lh(nt2, nstart, 0);
        mulmod(nlen, nt, nt2);
        as.add(nk, nk, nlen);
        emitModQ(as, nk, nt3, nt4);
        as.sh(nk, nend, 0);
        // r1 = a0*b1 + a1*b0
        as.lh(nt, np, 0);
        as.lh(nt2, nstart, 2);
        mulmod(nk, nt, nt2);
        as.lh(nt, np, 2);
        as.lh(nt2, nstart, 0);
        mulmod(nlen, nt, nt2);
        as.add(nk, nk, nlen);
        emitModQ(as, nk, nt3, nt4);
        as.sh(nk, nend, 2);
        // r2 = a3*b3*(q - zeta) + a2*b2
        as.lh(nt, np, 6);
        as.lh(nt2, nstart, 6);
        mulmod(nk, nt, nt2);
        as.li(nt, kQ);
        as.sub(nt, nt, nz);
        mulmod(nk, nk, nt);
        as.lh(nt, np, 4);
        as.lh(nt2, nstart, 4);
        mulmod(nlen, nt, nt2);
        as.add(nk, nk, nlen);
        emitModQ(as, nk, nt3, nt4);
        as.sh(nk, nend, 4);
        // r3 = a2*b3 + a3*b2
        as.lh(nt, np, 4);
        as.lh(nt2, nstart, 6);
        mulmod(nk, nt, nt2);
        as.lh(nt, np, 6);
        as.lh(nt2, nstart, 4);
        mulmod(nlen, nt, nt2);
        as.add(nk, nk, nlen);
        emitModQ(as, nk, nt3, nt4);
        as.sh(nk, nend, 6);
    });
    as.ret();
    as.endFunction();

    // poly_add(a0 = dst, a1 = x, a2 = y): dst = x + y mod q.
    as.beginFunction("kyber_poly_add", true);
    as.forLoop(nj, 0, kN, [&] {
        as.shli(nt, nj, 1);
        as.add(np, a1, nt);
        as.lh(nt2, np, 0);
        as.add(np, a2, nt);
        as.lh(nt3, np, 0);
        as.add(nt2, nt2, nt3);
        as.sltiu(nt3, nt2, kQ);
        as.xori(nt3, nt3, 1);
        as.addi(nt4, nt2, -kQ);
        as.cmovnz(nt2, nt3, nt4);
        as.add(np, a0, nt);
        as.sh(nt2, np, 0);
    });
    as.ret();
    as.endFunction();

    // cbd(a0 = poly, a1 = buf128): eta = 2 centered binomial.
    as.beginFunction("kyber_cbd", true);
    as.forLoop(nj, 0, kN / 8, [&] {
        as.shli(nt, nj, 2);
        as.add(np, a1, nt);
        as.lw(nt, np, 0);
        // d = (t & 0x55555555) + ((t >> 1) & 0x55555555)
        as.li(nt2, 0x55555555);
        as.and_(nt3, nt, nt2);
        as.shri(nt, nt, 1);
        as.and_(nt, nt, nt2);
        as.add(nt3, nt3, nt);
        // 8 coefficients
        for (int c = 0; c < 8; c++) {
            as.shri(nt, nt3, 4 * c);
            as.andi(nt2, nt, 0x3);  // a
            as.shri(nt, nt, 2);
            as.andi(nt, nt, 0x3);   // b
            as.sub(nt2, nt2, nt);
            as.addi(nt2, nt2, kQ);  // a - b + q
            as.sltiu(nt, nt2, kQ);
            as.xori(nt, nt, 1);
            as.addi(nt4, nt2, -kQ);
            as.cmovnz(nt2, nt, nt4);
            as.shli(nt, nj, 4); // 8 coefficients * 2 bytes
            as.add(np, a0, nt);
            as.sh(nt2, np, 2 * c);
        }
    });
    as.ret();
    as.endFunction();
}

} // namespace

void
emitKyberHelpers(Assembler &as, int k)
{
    const size_t poly_bytes = kN * 2;
    as.allocData("kb_seed_a", 8, 8);
    as.allocData("kb_seed_n", 8, 8);
    as.allocData("kb_coins", 8, 8);
    as.allocData("kb_msg", 32, 8);
    as.allocData("kb_msg_out", 32, 8);
    as.allocData("kb_prf_in", 16, 8);
    as.allocData("kb_cbd_buf", 128, 8);
    as.allocData("kb_uni_buf", 168 * 6, 8);
    as.allocData("kb_a", poly_bytes * k * k, 8);
    as.allocData("kb_s", poly_bytes * k, 8);
    as.allocData("kb_t", poly_bytes * k, 8);
    as.allocData("kb_e", poly_bytes * k, 8);
    as.allocData("kb_r", poly_bytes * k, 8);
    as.allocData("kb_e1", poly_bytes * k, 8);
    as.allocData("kb_e2", poly_bytes, 8);
    as.allocData("kb_u", poly_bytes * k, 8);
    as.allocData("kb_v", poly_bytes, 8);
    as.allocData("kb_acc", poly_bytes, 8);
    as.allocData("kb_prod", poly_bytes, 8);

    const int seed_len = 3; // matches the reference tests

    // ---- helpers emitted as functions ----

    // kyber_uniform(a0 = poly, a1 = i, a2 = j): rejection-sample from
    // SHAKE128(seed_a || i || j). Matches the reference: regenerate a
    // longer stream (same prefix, XOF) when it runs dry.
    as.beginFunction("kyber_uniform", true);
    as.push(ir::regRa);
    as.push(a0);
    // prf_in = seed_a || i || j
    as.la(gt, "kb_seed_a");
    as.la(gt2, "kb_prf_in");
    for (int b = 0; b < seed_len; b++) {
        as.lb(gt3, gt, b);
        as.sb(gt3, gt2, b);
    }
    as.sb(a1, gt2, seed_len);
    as.sb(a2, gt2, seed_len + 1);
    as.li(gblocks, 3);
    as.label(".uni_retry");
    // stream = shake128(prf_in, blocks * 168)
    as.la(a0, "kb_uni_buf");
    as.li(gt, 168);
    as.mul(a1, gblocks, gt);
    as.la(a2, "kb_prf_in");
    as.li(a3, seed_len + 2);
    as.li(a4, 168);
    as.push(gblocks);
    as.call("shake");
    as.pop(gblocks);
    // parse
    as.li(gpos, 0);
    as.li(ggot, 0);
    as.li(gt3, 168);
    as.mul(gt3, gblocks, gt3); // stream length
    as.ld(gt2, ir::regSp, 0);  // poly pointer (peeked from stack)
    as.la(gt, "kb_uni_buf");
    as.label(".uni_scan");
    // stop when got == 256 or pos + 3 > len
    as.li(gj, kN);
    as.bge(ggot, gj, ".uni_done");
    as.addi(gj, gpos, 3);
    as.blt(gt3, gj, ".uni_dry");
    as.add(gj, gt, gpos);
    as.lb(gi, gj, 0);
    as.lb(nt, gj, 1);
    as.lb(nt2, gj, 2);
    as.addi(gpos, gpos, 3);
    // d1 = b0 | ((b1 & 0xf) << 8); d2 = (b1 >> 4) | (b2 << 4)
    as.andi(nt3, nt, 0xf);
    as.shli(nt3, nt3, 8);
    as.or_(gi, gi, nt3);
    as.shri(nt, nt, 4);
    as.shli(nt2, nt2, 4);
    as.or_(nt, nt, nt2);
    // if d1 < q and got < 256: p[got++] = d1  (rejection branch!)
    as.sltiu(nt2, gi, kQ);
    as.beq(nt2, ir::regZero, ".uni_skip1");
    as.shli(nt2, ggot, 1);
    as.add(nt2, gt2, nt2);
    as.sh(gi, nt2, 0);
    as.addi(ggot, ggot, 1);
    as.label(".uni_skip1");
    as.li(gj, kN);
    as.bge(ggot, gj, ".uni_done");
    as.sltiu(nt2, nt, kQ);
    as.beq(nt2, ir::regZero, ".uni_skip2");
    as.shli(nt2, ggot, 1);
    as.add(nt2, gt2, nt2);
    as.sh(nt, nt2, 0);
    as.addi(ggot, ggot, 1);
    as.label(".uni_skip2");
    as.j(".uni_scan");
    as.label(".uni_dry");
    as.addi(gblocks, gblocks, 1);
    as.j(".uni_retry");
    as.label(".uni_done");
    as.pop(a0);
    as.pop(ir::regRa);
    as.ret();
    as.endFunction();

    // kyber_cbd_sample(a0 = poly, a1 = nonce, a2 = seed_sym_addr):
    // poly = CBD(shake256(seed || nonce, 128)).
    as.beginFunction("kyber_cbd_sample", true);
    as.push(ir::regRa);
    as.push(a0);
    as.la(gt2, "kb_prf_in");
    as.mv(gt, a2);
    for (int b = 0; b < seed_len; b++) {
        as.lb(gt3, gt, b);
        as.sb(gt3, gt2, b);
    }
    as.sb(a1, gt2, seed_len);
    as.la(a0, "kb_cbd_buf");
    as.li(a1, 128);
    as.la(a2, "kb_prf_in");
    as.li(a3, seed_len + 1);
    as.li(a4, 136); // SHAKE256
    as.call("shake");
    as.pop(a0);
    as.la(a1, "kb_cbd_buf");
    as.call("kyber_cbd");
    as.pop(ir::regRa);
    as.ret();
    as.endFunction();

    // matvec(a0 = dst_vec, a1 = mat, a2 = vec, a3 = transpose):
    // dst[i] = sum_j mat[i][j] (or mat[j][i]) o vec[j] in NTT domain.
    as.beginFunction("kyber_matvec", true);
    as.push(ir::regRa);
    constexpr RegId mi = 53, mj = 54, mdst = 55, mmat = 56, mvec = 57,
                    mtr = 58, mt = 59, mt2 = 60;
    as.mv(mdst, a0);
    as.mv(mmat, a1);
    as.mv(mvec, a2);
    as.mv(mtr, a3);
    as.forLoop(mi, 0, k, [&] {
        // zero acc
        as.la(mt, "kb_acc");
        as.forLoop(mj, 0, kN / 4, [&] {
            as.sd(ir::regZero, mt, 0);
            as.addi(mt, mt, 8);
        });
        as.forLoop(mj, 0, k, [&] {
            // index = transpose ? j*k+i : i*k+j
            as.li(mt, k);
            as.mul(mt, mi, mt);
            as.add(mt, mt, mj);
            as.li(mt2, k);
            as.mul(mt2, mj, mt2);
            as.add(mt2, mt2, mi);
            as.cmovnz(mt, mtr, mt2);
            as.li(mt2, static_cast<int64_t>(poly_bytes));
            as.mul(mt, mt, mt2);
            as.add(a1, mmat, mt);
            as.li(mt2, static_cast<int64_t>(poly_bytes));
            as.mul(mt, mj, mt2);
            as.add(a2, mvec, mt);
            as.la(a0, "kb_prod");
            as.call("kyber_basemul");
            as.la(a0, "kb_acc");
            as.la(a1, "kb_acc");
            as.la(a2, "kb_prod");
            as.call("kyber_poly_add");
        });
        as.li(mt, static_cast<int64_t>(poly_bytes));
        as.mul(mt, mi, mt);
        as.add(a0, mdst, mt);
        as.la(a1, "kb_acc");
        as.li(a2, kN);
        // copy acc into dst[i]
        as.forLoop(mj, 0, kN, [&] {
            as.lh(mt2, a1, 0);
            as.sh(mt2, a0, 0);
            as.addi(a0, a0, 2);
            as.addi(a1, a1, 2);
        });
    });
    as.pop(ir::regRa);
    as.ret();
    as.endFunction();
}

void
emitKyberKem(Assembler &as, int k)
{
    const size_t poly_bytes = kN * 2;
    as.beginFunction("kyber_kem", true);
    as.push(ir::regRa);
    constexpr RegId ki = 53, kt = 54, kt2 = 55, kt3 = 56;

    // keygen: A matrix.
    for (int i = 0; i < k; i++) {
        for (int j = 0; j < k; j++) {
            as.la(a0, "kb_a",
                  static_cast<int64_t>(poly_bytes) * (i * k + j));
            as.li(a1, i);
            as.li(a2, j);
            as.call("kyber_uniform");
        }
    }
    // s, e: CBD + NTT.
    for (int i = 0; i < k; i++) {
        as.la(a0, "kb_s", static_cast<int64_t>(poly_bytes) * i);
        as.li(a1, i);
        as.la(a2, "kb_seed_n");
        as.call("kyber_cbd_sample");
        as.la(a0, "kb_e", static_cast<int64_t>(poly_bytes) * i);
        as.li(a1, k + i);
        as.la(a2, "kb_seed_n");
        as.call("kyber_cbd_sample");
        as.la(a0, "kb_s", static_cast<int64_t>(poly_bytes) * i);
        as.call("kyber_ntt");
        as.la(a0, "kb_e", static_cast<int64_t>(poly_bytes) * i);
        as.call("kyber_ntt");
    }
    // t = A s + e (NTT domain).
    as.la(a0, "kb_t");
    as.la(a1, "kb_a");
    as.la(a2, "kb_s");
    as.li(a3, 0);
    as.call("kyber_matvec");
    for (int i = 0; i < k; i++) {
        as.la(a0, "kb_t", static_cast<int64_t>(poly_bytes) * i);
        as.la(a1, "kb_t", static_cast<int64_t>(poly_bytes) * i);
        as.la(a2, "kb_e", static_cast<int64_t>(poly_bytes) * i);
        as.call("kyber_poly_add");
    }

    // encrypt: r, e1 (CBD), e2; r to NTT.
    for (int i = 0; i < k; i++) {
        as.la(a0, "kb_r", static_cast<int64_t>(poly_bytes) * i);
        as.li(a1, i);
        as.la(a2, "kb_coins");
        as.call("kyber_cbd_sample");
        as.la(a0, "kb_e1", static_cast<int64_t>(poly_bytes) * i);
        as.li(a1, k + i);
        as.la(a2, "kb_coins");
        as.call("kyber_cbd_sample");
        as.la(a0, "kb_r", static_cast<int64_t>(poly_bytes) * i);
        as.call("kyber_ntt");
    }
    as.la(a0, "kb_e2");
    as.li(a1, 2 * k);
    as.la(a2, "kb_coins");
    as.call("kyber_cbd_sample");
    // u = INTT(A^T r) + e1
    as.la(a0, "kb_u");
    as.la(a1, "kb_a");
    as.la(a2, "kb_r");
    as.li(a3, 1);
    as.call("kyber_matvec");
    for (int i = 0; i < k; i++) {
        as.la(a0, "kb_u", static_cast<int64_t>(poly_bytes) * i);
        as.call("kyber_intt");
        as.la(a0, "kb_u", static_cast<int64_t>(poly_bytes) * i);
        as.la(a1, "kb_u", static_cast<int64_t>(poly_bytes) * i);
        as.la(a2, "kb_e1", static_cast<int64_t>(poly_bytes) * i);
        as.call("kyber_poly_add");
    }
    // v = INTT(t . r) + e2 + encode(msg)
    as.la(kt, "kb_v");
    as.forLoop(ki, 0, kN / 4, [&] {
        as.sd(ir::regZero, kt, 0);
        as.addi(kt, kt, 8);
    });
    for (int j = 0; j < k; j++) {
        as.la(a0, "kb_prod");
        as.la(a1, "kb_t", static_cast<int64_t>(poly_bytes) * j);
        as.la(a2, "kb_r", static_cast<int64_t>(poly_bytes) * j);
        as.call("kyber_basemul");
        as.la(a0, "kb_v");
        as.la(a1, "kb_v");
        as.la(a2, "kb_prod");
        as.call("kyber_poly_add");
    }
    as.la(a0, "kb_v");
    as.call("kyber_intt");
    as.la(a0, "kb_v");
    as.la(a1, "kb_v");
    as.la(a2, "kb_e2");
    as.call("kyber_poly_add");
    // += bit * (q+1)/2
    as.la(kt, "kb_v");
    as.la(kt2, "kb_msg");
    as.forLoop(ki, 0, kN, [&] {
        as.shri(kt3, ki, 3);
        as.add(kt3, kt2, kt3);
        as.lb(kt3, kt3, 0);
        as.andi(nt, ki, 7);
        as.shr(kt3, kt3, nt);
        as.andi(kt3, kt3, 1);
        as.li(nt, (kQ + 1) / 2);
        as.mul(kt3, kt3, nt);
        as.lh(nt, kt, 0);
        as.add(nt, nt, kt3);
        // mod q
        as.sltiu(nt2, nt, kQ);
        as.xori(nt2, nt2, 1);
        as.addi(nt3, nt, -kQ);
        as.cmovnz(nt, nt2, nt3);
        as.sh(nt, kt, 0);
        as.addi(kt, kt, 2);
    });

    // decrypt: acc = INTT(s . NTT(u)); msg_out from v - acc.
    as.la(kt, "kb_acc");
    as.forLoop(ki, 0, kN / 4, [&] {
        as.sd(ir::regZero, kt, 0);
        as.addi(kt, kt, 8);
    });
    for (int j = 0; j < k; j++) {
        as.la(a0, "kb_u", static_cast<int64_t>(poly_bytes) * j);
        as.call("kyber_ntt");
        as.la(a0, "kb_prod");
        as.la(a1, "kb_s", static_cast<int64_t>(poly_bytes) * j);
        as.la(a2, "kb_u", static_cast<int64_t>(poly_bytes) * j);
        as.call("kyber_basemul");
        as.la(a0, "kb_acc");
        as.la(a1, "kb_acc");
        as.la(a2, "kb_prod");
        as.call("kyber_poly_add");
    }
    as.la(a0, "kb_acc");
    as.call("kyber_intt");
    // msg_out bits: d = v - acc mod q; bit = q/4 < d < 3q/4.
    as.la(kt, "kb_msg_out");
    as.forLoop(ki, 0, 4, [&] {
        as.sd(ir::regZero, kt, 0);
        as.addi(kt, kt, 8);
    });
    as.la(kt, "kb_v");
    as.la(kt2, "kb_acc");
    as.la(kt3, "kb_msg_out");
    as.forLoop(ki, 0, kN, [&] {
        as.lh(nt, kt, 0);
        as.lh(nt2, kt2, 0);
        as.addi(nt, nt, kQ);
        as.sub(nt, nt, nt2);
        as.sltiu(nt2, nt, kQ);
        as.xori(nt2, nt2, 1);
        as.addi(nt3, nt, -kQ);
        as.cmovnz(nt, nt2, nt3);
        // dist to 0/q: dist = d > q/2 ? q - d : d; bit = dist > q/4
        as.li(nt2, kQ);
        as.sub(nt2, nt2, nt);
        as.slti(nt3, nt, kQ / 2 + 1);
        as.xori(nt3, nt3, 1);
        as.cmovnz(nt, nt3, nt2);
        as.slti(nt2, nt, kQ / 4 + 1);
        as.xori(nt2, nt2, 1); // bit
        // msg_out[i/8] |= bit << (i%8)
        as.andi(nt3, ki, 7);
        as.shl(nt2, nt2, nt3);
        as.shri(nt3, ki, 3);
        as.add(nt3, kt3, nt3);
        as.lb(nt4, nt3, 0);
        as.or_(nt4, nt4, nt2);
        as.sb(nt4, nt3, 0);
        as.addi(kt, kt, 2);
        as.addi(kt2, kt2, 2);
    });
    as.pop(ir::regRa);
    as.ret();
    as.endFunction();

    emitNtt(as);
    emitKeccak(as);
}

Workload
kyberWorkload(int k)
{
    Assembler as;
    emitKyberHelpers(as, k);

    // ---- main flow: keygen + encrypt + decrypt ----
    as.beginFunction("main", false);
    as.call("kyber_kem");
    as.halt();
    as.endFunction();

    emitKyberKem(as, k);

    Workload w;
    w.name = k == 2 ? "kyber512" : "kyber768";
    w.suite = "PQC";
    w.program = as.finalize();
    uint64_t seed_a_addr = as.dataAddr("kb_seed_a");
    uint64_t seed_n_addr = as.dataAddr("kb_seed_n");
    uint64_t coins_addr = as.dataAddr("kb_coins");
    uint64_t msg_addr = as.dataAddr("kb_msg");
    uint64_t msg_out_addr = as.dataAddr("kb_msg_out");
    uint64_t v_addr = as.dataAddr("kb_v");

    w.setInput = [=](sim::Machine &m, int which) {
        // The A seed is public randomness; it differs across the two
        // *analysis* inputs (0/1) so the rejection-sampling branches
        // are detected as input-dependent (paper footnote 3). For the
        // contract pair (3/4) only genuine secrets vary — the CBD
        // noise seed and the message — which exercise no branches.
        uint8_t base = static_cast<uint8_t>(which == 2 ? 0 : which + 1);
        uint8_t pub = which == 0 || which == 1
            ? static_cast<uint8_t>(which + 1) : 0;
        pokeBytes(m, seed_a_addr,
                  {static_cast<uint8_t>(1 + pub), 2, 3});
        pokeBytes(m, seed_n_addr, {4, static_cast<uint8_t>(5 + base), 6});
        pokeBytes(m, coins_addr, {7, 8, static_cast<uint8_t>(9 + base)});
        pokeBytes(m, msg_addr,
                  patternBytes(32, static_cast<uint8_t>(11 * (base + 1))));
    };
    w.check = [=](const sim::Machine &m) {
        std::vector<uint8_t> seed_a = {1, 2, 3};
        std::vector<uint8_t> seed_n = {4, 5, 6};
        std::vector<uint8_t> coins = {7, 8, 9};
        auto kp = ref::kyberKeyGen(k, seed_a, seed_n);
        std::array<uint8_t, 32> msg;
        auto mv = patternBytes(32, 11);
        std::copy(mv.begin(), mv.end(), msg.begin());
        auto ct = ref::kyberEncrypt(kp, k, msg, coins);
        // Compare the v polynomial and the decrypted message.
        auto vb = peekBytes(m, v_addr, kN * 2);
        for (int i = 0; i < kN; i++) {
            int16_t got = static_cast<int16_t>(
                vb[2 * i] | (vb[2 * i + 1] << 8));
            if (got != ct.v[i])
                return false;
        }
        auto out = peekBytes(m, msg_out_addr, 32);
        return std::equal(mv.begin(), mv.end(), out.begin());
    };
    w.secretRegions = {{seed_n_addr, seed_n_addr + 8},
                       {msg_addr, msg_addr + 32}};
    return w;
}

} // namespace cassandra::crypto
