#include "crypto/kernels/keccak_kernel.hh"

#include "crypto/ref/keccak.hh"

namespace cassandra::crypto {

namespace {

constexpr uint64_t kRoundConst[24] = {
    0x0000000000000001ull, 0x0000000000008082ull, 0x800000000000808aull,
    0x8000000080008000ull, 0x000000000000808bull, 0x0000000080000001ull,
    0x8000000080008081ull, 0x8000000000008009ull, 0x000000000000008aull,
    0x0000000000000088ull, 0x0000000080008009ull, 0x000000008000000aull,
    0x000000008000808bull, 0x800000000000008bull, 0x8000000000008089ull,
    0x8000000000008003ull, 0x8000000000008002ull, 0x8000000000000080ull,
    0x000000000000800aull, 0x800000008000000aull, 0x8000000080008081ull,
    0x8000000000008080ull, 0x0000000080000001ull, 0x8000000080008008ull,
};

constexpr int kRotation[25] = {
    0,  1,  62, 28, 27, 36, 44, 6,  55, 20, 3,  10, 43,
    25, 39, 41, 45, 15, 21, 8,  18, 2,  61, 56, 14,
};

// Lanes a[0..24] in x18..x42; c0..c4 in x43..x47; temps x48..x50;
// round counter x51; round-constant pointer x52.
constexpr RegId la0 = 18, lc0 = 43, lt0 = 48, lt1 = 49, lt2 = 50,
                lrnd = 51, lrcp = 52;

RegId
lane(int i)
{
    return static_cast<RegId>(la0 + i);
}

RegId
c(int i)
{
    return static_cast<RegId>(lc0 + i);
}

} // namespace

void
emitKeccak(Assembler &as)
{
    as.allocData("kc_rc", 24 * 8, 8);
    for (int i = 0; i < 24; i++)
        as.setData64("kc_rc", i, kRoundConst[i]);
    as.allocData("kc_buf", 200, 8);

    // keccak_f(a0 = state)
    as.beginFunction("keccak_f", true);
    for (int i = 0; i < 25; i++)
        as.ld(lane(i), a0, 8 * i);

    as.la(lrcp, "kc_rc");
    as.forLoop(lrnd, 0, 24, [&] {
        // Theta.
        for (int x = 0; x < 5; x++) {
            as.xor_(c(x), lane(x), lane(x + 5));
            as.xor_(c(x), c(x), lane(x + 10));
            as.xor_(c(x), c(x), lane(x + 15));
            as.xor_(c(x), c(x), lane(x + 20));
        }
        for (int x = 0; x < 5; x++) {
            // d = c[x-1] ^ rotl(c[x+1], 1); fold into the column.
            as.rotli(lt0, c((x + 1) % 5), 1);
            as.xor_(lt0, lt0, c((x + 4) % 5));
            for (int y = 0; y < 5; y++)
                as.xor_(lane(x + 5 * y), lane(x + 5 * y), lt0);
        }
        // Rho + Pi via the 24-step permutation cycle (one temp).
        {
            int x = 1, y = 0;
            as.mv(lt1, lane(1));
            for (int i = 0; i < 24; i++) {
                int nx = y;
                int ny = (2 * x + 3 * y) % 5;
                int idx = nx + 5 * ny;
                as.mv(lt2, lane(idx));
                as.rotli(lane(idx), lt1, kRotation[x + 5 * y]);
                as.mv(lt1, lt2);
                x = nx;
                y = ny;
            }
        }
        // Chi: a[x] ^= ~a[x+1] & a[x+2] per row, with the originals of
        // a[0] and a[1] saved for the wrap-around terms.
        for (int y = 0; y < 5; y++) {
            as.mv(lt0, lane(5 * y));     // original a[0][y]
            as.mv(lt1, lane(5 * y + 1)); // original a[1][y]
            for (int x = 0; x < 5; x++) {
                RegId ax1 = x < 4 ? lane(5 * y + x + 1) : lt0;
                RegId ax2 = x < 3 ? lane(5 * y + x + 2)
                                  : (x == 3 ? lt0 : lt1);
                if (x == 3)
                    ax1 = lane(5 * y + 4);
                as.li(lt2, -1);
                as.xor_(lt2, lt2, ax1);
                as.and_(lt2, lt2, ax2);
                as.xor_(lane(5 * y + x), lane(5 * y + x), lt2);
            }
        }
        // Iota.
        as.ld(lt0, lrcp, 0);
        as.xor_(lane(0), lane(0), lt0);
        as.addi(lrcp, lrcp, 8);
    });

    for (int i = 0; i < 25; i++)
        as.sd(lane(i), a0, 8 * i);
    as.ret();
    as.endFunction();

    // shake(a0 = out, a1 = outlen, a2 = in, a3 = inlen, a4 = rate)
    // State lives in kc_buf[0..199]; absorbs full blocks then the
    // padded tail; squeezes outlen bytes.
    as.allocData("kc_state", 200, 8);
    as.beginFunction("shake", true);
    as.push(ir::regRa);
    constexpr RegId sout = 53, solen = 54, sin = 55, silen = 56,
                    srate = 57, soff = 58, st = 59, st2 = 60, st3 = 61,
                    scnt = 62;
    as.mv(sout, a0);
    as.mv(solen, a1);
    as.mv(sin, a2);
    as.mv(silen, a3);
    as.mv(srate, a4);

    // Zero the state.
    as.la(st, "kc_state");
    as.forLoop(scnt, 0, 25, [&] {
        as.sd(ir::regZero, st, 0);
        as.addi(st, st, 8);
    });

    // Absorb full rate blocks.
    as.li(soff, 0);
    as.label(".shk_absorb");
    as.add(st, soff, srate);
    as.bltu(silen, st, ".shk_tail"); // inlen < off + rate ?
    as.la(st, "kc_state");
    as.add(st2, sin, soff);
    as.li(scnt, 0);
    as.label(".shk_xor");
    as.add(st3, st2, scnt);
    as.lb(st3, st3, 0);
    as.add(lt0, st, scnt);
    as.lb(lt1, lt0, 0);
    as.xor_(lt1, lt1, st3);
    as.sb(lt1, lt0, 0);
    as.addi(scnt, scnt, 1);
    as.bltu(scnt, srate, ".shk_xor");
    as.la(a0, "kc_state");
    as.call("keccak_f");
    as.add(soff, soff, srate);
    as.j(".shk_absorb");

    // Tail: pad with 0x1f ... 0x80 and absorb.
    as.label(".shk_tail");
    as.sub(st2, silen, soff); // rem
    as.la(st, "kc_state");
    as.add(st3, sin, soff);
    as.li(scnt, 0);
    as.label(".shk_txor");
    as.bge(scnt, st2, ".shk_tdone");
    as.add(lt0, st3, scnt);
    as.lb(lt0, lt0, 0);
    as.add(lt1, st, scnt);
    as.lb(lt2, lt1, 0);
    as.xor_(lt2, lt2, lt0);
    as.sb(lt2, lt1, 0);
    as.addi(scnt, scnt, 1);
    as.j(".shk_txor");
    as.label(".shk_tdone");
    as.add(lt0, st, st2);
    as.lb(lt1, lt0, 0);
    as.xori(lt1, lt1, 0x1f);
    as.sb(lt1, lt0, 0);
    as.addi(lt0, srate, -1);
    as.add(lt0, st, lt0);
    as.lb(lt1, lt0, 0);
    as.xori(lt1, lt1, 0x80);
    as.sb(lt1, lt0, 0);
    as.la(a0, "kc_state");
    as.call("keccak_f");

    // Squeeze.
    as.li(soff, 0);
    as.label(".shk_squeeze");
    as.bge(soff, solen, ".shk_done");
    // chunk = min(rate, outlen - off)
    as.sub(st2, solen, soff);
    as.sltu(lt0, srate, st2);
    as.cmovnz(st2, lt0, srate);
    as.la(st, "kc_state");
    as.li(scnt, 0);
    as.label(".shk_copy");
    as.bge(scnt, st2, ".shk_copied");
    as.add(lt0, st, scnt);
    as.lb(lt0, lt0, 0);
    as.add(lt1, sout, soff);
    as.add(lt1, lt1, scnt);
    as.sb(lt0, lt1, 0);
    as.addi(scnt, scnt, 1);
    as.j(".shk_copy");
    as.label(".shk_copied");
    as.add(soff, soff, st2);
    as.bge(soff, solen, ".shk_done");
    as.la(a0, "kc_state");
    as.call("keccak_f");
    as.j(".shk_squeeze");
    as.label(".shk_done");
    as.pop(ir::regRa);
    as.ret();
    as.endFunction();
}

Workload
shakeWorkload()
{
    Assembler as;
    as.allocData("shk_msg", 1024, 8);
    as.allocData("shk_out", 64, 8);

    as.beginFunction("main", false);
    as.la(a0, "shk_out");
    as.li(a1, 64);
    as.la(a2, "shk_msg");
    as.li(a3, 1024);
    as.li(a4, 168); // SHAKE128
    as.call("shake");
    as.halt();
    as.endFunction();

    emitKeccak(as);

    Workload w;
    w.name = "SHAKE";
    w.suite = "BearSSL";
    w.program = as.finalize();
    uint64_t msg_addr = as.dataAddr("shk_msg");
    uint64_t out_addr = as.dataAddr("shk_out");

    w.setInput = [=](sim::Machine &m, int which) {
        pokeBytes(m, msg_addr,
                  patternBytes(1024, static_cast<uint8_t>(which + 100)));
    };
    w.check = [=](const sim::Machine &m) {
        auto msg = patternBytes(1024, 102);
        auto expect = ref::shake128(msg, 64);
        return peekBytes(m, out_addr, 64) == expect;
    };
    w.secretRegions = {{msg_addr, msg_addr + 1024}};
    return w;
}

} // namespace cassandra::crypto
