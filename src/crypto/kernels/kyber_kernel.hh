/**
 * @file
 * Kyber (ML-KEM) kernel emitters, reusable by composite workloads.
 *
 * Split in two so kyberWorkload() can keep its historical code layout
 * (main sits between the helpers and kyber_kem; BTU indexing is
 * PC-based, so moving functions would change simulated cycles):
 * emitKyberHelpers() allocates the kb_* data and emits the sampling
 * helpers, emitKyberKem() emits kyber_kem plus the NTT and Keccak
 * routines it calls. Callers provide their own main (or segment call
 * site) invoking "kyber_kem".
 */

#ifndef CASSANDRA_CRYPTO_KERNELS_KYBER_KERNEL_HH
#define CASSANDRA_CRYPTO_KERNELS_KYBER_KERNEL_HH

#include "crypto/kernels/common.hh"

namespace cassandra::crypto {

/** kb_* data + kyber_uniform / kyber_cbd_sample / kyber_matvec. */
void emitKyberHelpers(Assembler &as, int k);

/** kyber_kem (keygen + encrypt + decrypt) + NTT + Keccak. */
void emitKyberKem(Assembler &as, int k);

} // namespace cassandra::crypto

#endif // CASSANDRA_CRYPTO_KERNELS_KYBER_KERNEL_HH
