/**
 * @file
 * Generic constant-time Montgomery big-integer IR library (the analog
 * of BearSSL's shared i31/i62 code) plus the workloads built on it:
 * ModPow, RSA, X25519 (EC Montgomery ladder) and an ECDSA-like signer.
 *
 * Numbers are little-endian arrays of 32-bit limbs. All routines are
 * constant-time: fixed loop bounds, square-and-multiply-always
 * exponentiation, cmov-based conditional subtraction and ladder swaps.
 */

#ifndef CASSANDRA_CRYPTO_KERNELS_BIGINT_KERNEL_HH
#define CASSANDRA_CRYPTO_KERNELS_BIGINT_KERNEL_HH

#include "crypto/kernels/common.hh"

namespace cassandra::crypto {

/**
 * Define the bignum routines in the assembler:
 *   mont_mul(dst, a, b, mod, n0inv, nlimbs)          CIOS product
 *   bn_copy(dst, src, nlimbs)
 *   mod_add(dst, a, b, mod, nlimbs)
 *   mod_sub(dst, a, b, mod, nlimbs)
 *   bn_cswap(a, b, bit, nlimbs)
 *   mont_pow(dst, base, exp, mod, n0inv, nlimbs, rr) normal-domain pow
 *
 * @param unroll_inner emit the CIOS inner loops straight-line for a
 *        fixed limb count (donna-style flat code) instead of counted
 *        loops; nlimbs must then equal fixed_limbs at runtime.
 */
void emitBignum(Assembler &as, bool unroll_inner = false,
                int fixed_limbs = 8);

/**
 * Define the x25519_ladder() crypto function (and its ec_* data
 * symbols: ec_scalar, ec_point, ec_out plus curve constants). Requires
 * emitBignum in the same program.
 */
void emitX25519Ladder(Assembler &as);

/** Montgomery modular exponentiation workload (256-bit, i31-style). */
Workload modPowWorkload();
/** RSA-style modular exponentiation workload (512-bit; see DESIGN.md
 * for the scaling note relative to the paper's RSA-2048). */
Workload rsaWorkload();
/** BearSSL-style X25519 scalar multiplication (generic bignum). */
Workload ecC25519Workload();
/** OpenSSL/donna-style X25519 (unrolled CIOS inner loops). */
Workload curve25519OpensslWorkload();
/** ECDSA-like signature: SHA-256 digest + ladder + mod-q arithmetic. */
Workload ecdsaWorkload();

} // namespace cassandra::crypto

#endif // CASSANDRA_CRYPTO_KERNELS_BIGINT_KERNEL_HH
