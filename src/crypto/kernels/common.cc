#include "crypto/kernels/common.hh"

namespace cassandra::crypto {

void
pokeBytes(sim::Machine &machine, uint64_t addr,
          const std::vector<uint8_t> &bytes)
{
    machine.writeBytes(addr, bytes.data(), bytes.size());
}

std::vector<uint8_t>
peekBytes(const sim::Machine &machine, uint64_t addr, size_t len)
{
    std::vector<uint8_t> out(len);
    machine.readBytes(addr, out.data(), len);
    return out;
}

std::vector<uint8_t>
patternBytes(size_t len, uint8_t seed)
{
    std::vector<uint8_t> out(len);
    uint32_t state = 0x12345678u + seed * 0x9e3779b9u;
    for (size_t i = 0; i < len; i++) {
        state = state * 1664525u + 1013904223u;
        out[i] = static_cast<uint8_t>(state >> 24);
    }
    return out;
}

} // namespace cassandra::crypto
