/**
 * @file
 * ChaCha20 IR kernel (RFC 8439) and its workloads.
 *
 * Two implementation styles mirror the paper's suites: the BearSSL
 * style keeps the 10 double-rounds in a counted loop over a fixed-size
 * buffer; the OpenSSL style fully unrolls the round loop and accepts a
 * variable-length message, making its stream loop input-dependent
 * (the paper's §4.3 example of a branch without a replayable trace).
 */

#ifndef CASSANDRA_CRYPTO_KERNELS_CHACHA20_KERNEL_HH
#define CASSANDRA_CRYPTO_KERNELS_CHACHA20_KERNEL_HH

#include "crypto/kernels/common.hh"

namespace cassandra::crypto {

/**
 * Define the crypto function chacha20_xor(out, msg, len, key, nonce,
 * counter) in the assembler. len must be a multiple of 64.
 *
 * @param unroll_rounds emit the 10 double-rounds straight-line instead
 *        of as a counted loop
 */
void emitChaCha20(Assembler &as, bool unroll_rounds);

/** BearSSL-style workload: fixed 256-byte buffer, rolled rounds. */
Workload chacha20CtWorkload();

/** OpenSSL-style workload: variable-length stream, unrolled rounds. */
Workload chacha20OpensslWorkload();

} // namespace cassandra::crypto

#endif // CASSANDRA_CRYPTO_KERNELS_CHACHA20_KERNEL_HH
