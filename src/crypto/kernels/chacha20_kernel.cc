#include "crypto/kernels/chacha20_kernel.hh"

#include "crypto/ref/chacha20.hh"

namespace cassandra::crypto {

namespace {

// Register plan: s0..s15 in x18..x33, w0..w15 in x34..x49,
// scratch x50..x56.
constexpr RegId sreg0 = 18;
constexpr RegId wreg0 = 34;
constexpr RegId roff = 50;   ///< current byte offset into the stream
constexpr RegId rloop = 51;  ///< round-loop counter
constexpr RegId rtmp = 52;
constexpr RegId routp = 53;  ///< &out[off]
constexpr RegId rword = 54;  ///< keystream/message word

RegId
s(int i)
{
    return static_cast<RegId>(sreg0 + i);
}

RegId
w(int i)
{
    return static_cast<RegId>(wreg0 + i);
}

/** One quarter round on working registers a, b, c, d. */
void
quarterRound(Assembler &as, int a, int b, int c, int d)
{
    as.addw(w(a), w(a), w(b));
    as.xor_(w(d), w(d), w(a));
    as.rotlwi(w(d), w(d), 16);
    as.addw(w(c), w(c), w(d));
    as.xor_(w(b), w(b), w(c));
    as.rotlwi(w(b), w(b), 12);
    as.addw(w(a), w(a), w(b));
    as.xor_(w(d), w(d), w(a));
    as.rotlwi(w(d), w(d), 8);
    as.addw(w(c), w(c), w(d));
    as.xor_(w(b), w(b), w(c));
    as.rotlwi(w(b), w(b), 7);
}

void
doubleRound(Assembler &as)
{
    quarterRound(as, 0, 4, 8, 12);
    quarterRound(as, 1, 5, 9, 13);
    quarterRound(as, 2, 6, 10, 14);
    quarterRound(as, 3, 7, 11, 15);
    quarterRound(as, 0, 5, 10, 15);
    quarterRound(as, 1, 6, 11, 12);
    quarterRound(as, 2, 7, 8, 13);
    quarterRound(as, 3, 4, 9, 14);
}

} // namespace

void
emitChaCha20(Assembler &as, bool unroll_rounds)
{
    as.beginFunction("chacha20_xor", /*crypto=*/true);

    // Stream loop over 64-byte blocks: roff = 0 .. len.
    as.li(roff, 0);
    as.label(".cc20_stream");

    // State setup: constants, key, counter, nonce.
    as.li(s(0), 0x61707865);
    as.li(s(1), 0x3320646e);
    as.li(s(2), 0x79622d32);
    as.li(s(3), 0x6b206574);
    for (int i = 0; i < 8; i++)
        as.lw(s(4 + i), a3, 4 * i);
    as.shri(rtmp, roff, 6);
    as.addw(s(12), a5, rtmp); // counter + block index
    for (int i = 0; i < 3; i++)
        as.lw(s(13 + i), a4, 4 * i);

    for (int i = 0; i < 16; i++)
        as.mv(w(i), s(i));

    if (unroll_rounds) {
        for (int round = 0; round < 10; round++)
            doubleRound(as);
    } else {
        as.forLoop(rloop, 0, 10, [&] { doubleRound(as); });
    }

    // w += s; keystream XOR message -> out.
    for (int i = 0; i < 16; i++)
        as.addw(w(i), w(i), s(i));
    as.add(rtmp, a1, roff); // &msg[off]
    as.add(routp, a0, roff);
    for (int i = 0; i < 16; i++) {
        as.lw(rword, rtmp, 4 * i);
        as.xor_(rword, rword, w(i));
        as.sw(rword, routp, 4 * i);
    }

    as.addi(roff, roff, 64);
    as.bltu(roff, a2, ".cc20_stream");
    as.ret();
    as.endFunction();
}

namespace {

Workload
makeChaCha20(const std::string &name, const std::string &suite,
             bool unroll, bool variable_len, size_t eval_len)
{
    Assembler as;
    size_t max_len = 1024;
    as.allocData("key", 32);
    as.allocData("nonce", 12, 4);
    as.allocData("msg", max_len, 64);
    as.allocData("out", max_len, 64);
    as.allocData("len", 8);

    as.beginFunction("main", /*crypto=*/false);
    as.la(a0, "out");
    as.la(a1, "msg");
    as.la(rtmp, "len");
    as.ld(a2, rtmp, 0);
    as.la(a3, "key");
    as.la(a4, "nonce");
    as.li(a5, 1); // initial counter
    as.call("chacha20_xor");
    as.halt();
    as.endFunction();

    emitChaCha20(as, unroll);

    Workload work;
    work.name = name;
    work.suite = suite;
    work.program = as.finalize();
    uint64_t key_addr = as.dataAddr("key");
    uint64_t nonce_addr = as.dataAddr("nonce");
    uint64_t msg_addr = as.dataAddr("msg");
    uint64_t out_addr = as.dataAddr("out");
    uint64_t len_addr = as.dataAddr("len");

    work.setInput = [=](sim::Machine &m, int which) {
        // Inputs 0/1: analysis (different secrets; different lengths
        // when variable_len). Input 2: evaluation. Inputs 3/4:
        // contract pairs (secrets differ, public params identical).
        uint8_t key_seed = static_cast<uint8_t>(1 + which);
        size_t len = eval_len;
        if (variable_len && which == 0)
            len = eval_len > 128 ? eval_len - 128 : 64;
        pokeBytes(m, key_addr, patternBytes(32, key_seed));
        pokeBytes(m, nonce_addr, patternBytes(12, 0x40));
        pokeBytes(m, msg_addr, patternBytes(len, 0x50));
        m.write64(len_addr, len);
    };
    work.check = [=](const sim::Machine &m) {
        size_t len = eval_len;
        auto key = patternBytes(32, 3);
        auto nonce = patternBytes(12, 0x40);
        auto msg = patternBytes(len, 0x50);
        auto expect = ref::chacha20Xor(key.data(), nonce.data(), 1, msg);
        return peekBytes(m, out_addr, len) == expect;
    };
    work.secretRegions = {{key_addr, key_addr + 32},
                          {msg_addr, msg_addr + max_len}};
    return work;
}

} // namespace

Workload
chacha20CtWorkload()
{
    return makeChaCha20("ChaCha20_ct", "BearSSL", /*unroll=*/false,
                        /*variable_len=*/false, 256);
}

Workload
chacha20OpensslWorkload()
{
    return makeChaCha20("chacha20", "OpenSSL", /*unroll=*/true,
                        /*variable_len=*/true, 512);
}

} // namespace cassandra::crypto
