/**
 * @file
 * SPHINCS-like WOTS+ signing IR kernel with the three hash backends
 * the paper evaluates (shake / sha2 / haraka-like). Scaled parameters
 * (n = 8, w = 16, tree height 3) preserve the chain/digit loop nests;
 * the Merkle auth path is served from the signer's cached tree (a
 * standard implementation strategy), so the measured region is the
 * message hash, digit computation and the 19 WOTS chains. See
 * DESIGN.md for the scaling notes.
 */

#include "crypto/kernels/aes_kernel.hh"
#include "crypto/kernels/keccak_kernel.hh"
#include "crypto/kernels/sha256_kernel.hh"
#include "crypto/ref/sphincs.hh"

namespace cassandra::crypto {

namespace {

constexpr int kN = 8;        ///< hash bytes
constexpr int kLen = 2 * kN + 3;
constexpr uint32_t kLeaf = 5;

constexpr uint8_t kHarakaKey[16] = {0x9d, 0x7b, 0x81, 0x75, 0xf0, 0xfe,
                                    0xc5, 0xb2, 0x0a, 0xc0, 0x20, 0xe6,
                                    0x4c, 0x70, 0x84, 0x06};

} // namespace

Workload
sphincsWorkload(const std::string &backend)
{
    ref::SphincsParams params;
    params.n = kN;
    params.w = 16;
    params.treeHeight = 3;
    if (backend == "shake")
        params.hash = ref::SphincsHash::Shake;
    else if (backend == "sha2")
        params.hash = ref::SphincsHash::Sha2;
    else
        params.hash = ref::SphincsHash::Haraka;

    Assembler as;
    as.allocData("sp_seed", 4, 8);
    as.allocData("sp_msg", 16, 8);
    as.allocData("sp_mhash", kN, 8);
    as.allocData("sp_digits", kLen, 8);
    as.allocData("sp_out", kLen * kN, 8);
    as.allocData("sp_hbuf", 80, 8);
    as.allocData("sp_val", kN, 8);
    as.allocData("sp_c", 8, 8);
    as.allocData("sp_i", 8, 8);
    as.allocData("sp_dig", 8, 8);
    if (params.hash == ref::SphincsHash::Sha2)
        as.allocData("sp_dig32", 32, 8);
    if (params.hash == ref::SphincsHash::Haraka) {
        as.allocData("sp_hkey", 16, 8);
        as.setData("sp_hkey", 0, kHarakaKey, 16);
        as.allocData("sp_hrk", 176, 8);
        as.allocData("sp_hst", 16, 8);
        as.allocData("sp_hin", 16, 8);
    }

    constexpr RegId st = 36, st2 = 37, st3 = 38, st4 = 39;

    // sphincs_hash(a0 = out8, a1 = in, a2 = len, a3 = addr)
    as.beginFunction("sphincs_hash", true);
    as.push(ir::regRa);
    // hbuf = addr (8 bytes LE) || in[0..len)
    as.la(st, "sp_hbuf");
    for (int i = 0; i < 8; i++) {
        as.shri(st2, a3, 8 * i);
        as.andi(st2, st2, 0xff);
        as.sb(st2, st, i);
    }
    as.li(st3, 0);
    as.label(".sph_copy");
    as.bge(st3, a2, ".sph_copied");
    as.add(st2, a1, st3);
    as.lb(st2, st2, 0);
    as.add(st4, st, st3);
    as.sb(st2, st4, 8);
    as.addi(st3, st3, 1);
    as.j(".sph_copy");
    as.label(".sph_copied");
    as.push(a0);
    switch (params.hash) {
      case ref::SphincsHash::Shake:
        as.pop(a0);
        as.addi(a3, a2, 8);
        as.li(a1, kN);
        as.la(a2, "sp_hbuf");
        as.li(a4, 136); // SHAKE256
        as.call("shake");
        break;
      case ref::SphincsHash::Sha2:
        as.addi(a2, a2, 8);
        as.la(a0, "sp_dig32");
        as.la(a1, "sp_hbuf");
        as.call("sha256_full");
        as.pop(a0);
        as.la(st, "sp_dig32");
        for (int i = 0; i < kN; i++) {
            as.lb(st2, st, i);
            as.sb(st2, a0, i);
        }
        break;
      case ref::SphincsHash::Haraka:
      {
        // AES-CBC-MAC over hbuf with 0x80 padding (mirrors the
        // reference construction exactly).
        as.addi(st3, a2, 8); // total length
        as.add(st2, st, st3);
        as.li(st4, 0x80);
        as.sb(st4, st2, 0);
        as.addi(st3, st3, 1);
        // pad to a multiple of 16
        as.label(".sph_pad");
        as.andi(st2, st3, 15);
        as.beq(st2, ir::regZero, ".sph_padded");
        as.add(st2, st, st3);
        as.sb(ir::regZero, st2, 0);
        as.addi(st3, st3, 1);
        as.j(".sph_pad");
        as.label(".sph_padded");
        // state = 0
        as.la(st2, "sp_hst");
        as.sd(ir::regZero, st2, 0);
        as.sd(ir::regZero, st2, 8);
        // per block: in = state ^ buf; state = AES(in)
        as.push(st3); // total padded length
        as.li(st4, 0);
        as.label(".sph_blk");
        as.la(st, "sp_hbuf");
        as.add(st, st, st4);
        as.la(st2, "sp_hst");
        as.la(st3, "sp_hin");
        for (int i = 0; i < 16; i++) {
            as.lb(a0, st, i);
            as.lb(a1, st2, i);
            as.xor_(a0, a0, a1);
            as.sb(a0, st3, i);
        }
        as.la(a0, "sp_hst");
        as.la(a1, "sp_hin");
        as.la(a2, "sp_hrk");
        as.push(st4);
        as.call("aes_block2");
        as.pop(st4);
        as.addi(st4, st4, 16);
        as.ld(st3, ir::regSp, 0);
        as.blt(st4, st3, ".sph_blk");
        as.pop(st3);
        as.pop(a0);
        as.la(st, "sp_hst");
        for (int i = 0; i < kN; i++) {
            as.lb(st2, st, i);
            as.sb(st2, a0, i);
        }
        break;
      }
    }
    as.pop(ir::regRa);
    as.ret();
    as.endFunction();

    // sphincs_sign(): WOTS chains for the fixed leaf.
    as.beginFunction("sphincs_sign", true);
    as.push(ir::regRa);
    // msg hash.
    as.la(a0, "sp_mhash");
    as.la(a1, "sp_msg");
    as.li(a2, 16);
    as.li(a3, 0x5150);
    as.call("sphincs_hash");
    // digits: nibbles high-then-low per byte, plus 3 checksum digits.
    as.la(st, "sp_mhash");
    as.la(st2, "sp_digits");
    as.li(st3, 0); // checksum
    for (int b = 0; b < kN; b++) {
        as.lb(st4, st, b);
        as.shri(a1, st4, 4);
        as.sb(a1, st2, 2 * b);
        as.li(a2, 15);
        as.sub(a2, a2, a1);
        as.add(st3, st3, a2);
        as.andi(a1, st4, 0xf);
        as.sb(a1, st2, 2 * b + 1);
        as.li(a2, 15);
        as.sub(a2, a2, a1);
        as.add(st3, st3, a2);
    }
    for (int i = 0; i < 3; i++) {
        as.shri(a1, st3, 4 * (2 - i));
        as.andi(a1, a1, 0xf);
        as.sb(a1, st2, 2 * kN + i);
    }

    // Chains: for c in 0..len-1.
    as.la(st, "sp_c");
    as.sd(ir::regZero, st, 0);
    as.label(".spn_chain");
    // chain seed: hash(0xfeed0000 + leaf, seed || leaf16 || c)
    as.la(st, "sp_hbuf", 32); // staging area for the seed input
    as.la(st2, "sp_seed");
    for (int i = 0; i < 4; i++) {
        as.lb(st3, st2, i);
        as.sb(st3, st, i);
    }
    as.li(st3, kLeaf & 0xff);
    as.sb(st3, st, 4);
    as.li(st3, (kLeaf >> 8) & 0xff);
    as.sb(st3, st, 5);
    as.la(st4, "sp_c");
    as.ld(st3, st4, 0);
    as.sb(st3, st, 6);
    as.la(a0, "sp_val");
    as.mv(a1, st);
    as.li(a2, 7);
    as.li(a3, 0xfeed0000u + kLeaf);
    as.call("sphincs_hash");
    // steps: digits[c] iterations of val = H(addr*256 + i, val),
    // addr = (leaf << 16) | c.
    as.la(st, "sp_digits");
    as.la(st2, "sp_c");
    as.ld(st3, st2, 0);
    as.add(st, st, st3);
    as.lb(st4, st, 0);
    as.la(st, "sp_dig");
    as.sd(st4, st, 0);
    as.la(st, "sp_i");
    as.sd(ir::regZero, st, 0);
    as.label(".spn_step");
    as.la(st, "sp_i");
    as.ld(st2, st, 0);
    as.la(st, "sp_dig");
    as.ld(st3, st, 0);
    as.bge(st2, st3, ".spn_step_done");
    // addr = ((leaf << 16) | c) * 256 + i
    as.la(st, "sp_c");
    as.ld(st3, st, 0);
    as.li(a3, static_cast<int64_t>(kLeaf) << 16);
    as.or_(a3, a3, st3);
    as.shli(a3, a3, 8);
    as.add(a3, a3, st2);
    as.la(a0, "sp_val");
    as.la(a1, "sp_val");
    as.li(a2, kN);
    as.call("sphincs_hash");
    as.la(st, "sp_i");
    as.ld(st2, st, 0);
    as.addi(st2, st2, 1);
    as.sd(st2, st, 0);
    as.j(".spn_step");
    as.label(".spn_step_done");
    // out[c] = val
    as.la(st, "sp_c");
    as.ld(st2, st, 0);
    as.shli(st3, st2, 3);
    as.la(st4, "sp_out");
    as.add(st4, st4, st3);
    as.la(st, "sp_val");
    for (int i = 0; i < kN; i++) {
        as.lb(st3, st, i);
        as.sb(st3, st4, i);
    }
    as.la(st, "sp_c");
    as.ld(st2, st, 0);
    as.addi(st2, st2, 1);
    as.sd(st2, st, 0);
    as.slti(st3, st2, kLen);
    as.bne(st3, ir::regZero, ".spn_chain");
    as.pop(ir::regRa);
    as.ret();
    as.endFunction();

    as.beginFunction("main", false);
    if (params.hash == ref::SphincsHash::Haraka) {
        // Expand the fixed Haraka key once.
        as.la(a0, "sp_hrk");
        as.la(a1, "sp_hkey");
        as.call("aes_expand");
    }
    as.call("sphincs_sign");
    as.halt();
    as.endFunction();

    switch (params.hash) {
      case ref::SphincsHash::Shake:
        emitKeccak(as);
        break;
      case ref::SphincsHash::Sha2:
        emitSha256(as, /*unroll=*/false);
        break;
      case ref::SphincsHash::Haraka:
        emitAes(as);
        break;
    }

    Workload w;
    w.name = "sphincs-" + backend + "-128s";
    w.suite = "PQC";
    w.program = as.finalize();
    uint64_t seed_addr = as.dataAddr("sp_seed");
    uint64_t msg_addr = as.dataAddr("sp_msg");
    uint64_t out_addr = as.dataAddr("sp_out");

    w.setInput = [=](sim::Machine &m, int which) {
        // Message is public and fixed; the secret seed varies.
        pokeBytes(m, seed_addr,
                  patternBytes(4, static_cast<uint8_t>(which + 130)));
        pokeBytes(m, msg_addr, patternBytes(16, 0x21));
    };
    w.check = [=](const sim::Machine &m) {
        ref::SphincsKey key;
        key.seed = patternBytes(4, 132);
        auto msg = patternBytes(16, 0x21);
        auto sig = ref::sphincsSign(params, key, msg, kLeaf);
        for (int c = 0; c < kLen; c++) {
            auto got = peekBytes(m, out_addr + 8 * c, kN);
            if (!std::equal(sig.wotsSig[c].begin(), sig.wotsSig[c].end(),
                            got.begin()))
                return false;
        }
        return true;
    };
    w.secretRegions = {{seed_addr, seed_addr + 4}};
    return w;
}

} // namespace cassandra::crypto
