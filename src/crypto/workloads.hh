/**
 * @file
 * Workload registry: every benchmark the paper evaluates (Fig. 7 /
 * Table 1 rows) plus the SpectreGuard-style synthetic mixes (Fig. 8).
 */

#ifndef CASSANDRA_CRYPTO_WORKLOADS_HH
#define CASSANDRA_CRYPTO_WORKLOADS_HH

#include <vector>

#include "crypto/kernels/bigint_kernel.hh"
#include "crypto/kernels/chacha20_kernel.hh"
#include "crypto/kernels/sha256_kernel.hh"
#include "crypto/kernels/common.hh"

namespace cassandra::crypto {

// Declared in their kernel translation units.
Workload aesCtrWorkload();       ///< BearSSL AES_CTR
Workload cbcCtWorkload();        ///< BearSSL CBC_ct
Workload desCtWorkload();        ///< BearSSL DES_ct
Workload poly1305Workload();     ///< BearSSL Poly1305_ctmul
Workload shakeWorkload();        ///< BearSSL SHAKE
Workload kyberWorkload(int k);   ///< PQC kyber512 (k=2) / kyber768 (k=3)
/** PQC sphincs-{shake,sha2,haraka}-128s analogs (scaled; DESIGN.md). */
Workload sphincsWorkload(const std::string &backend);

/**
 * SpectreGuard-style synthetic mix (Fig. 8): a sandboxed pointer-
 * chasing/branchy region interleaved with a crypto primitive.
 *
 * @param crypto_kernel "chacha20" (public stack) or "curve25519"
 *        (secret-annotated stack)
 * @param sandbox_pct percentage of dynamic work that is sandbox code
 *        (90/75/50/25/0)
 */
Workload syntheticMixWorkload(const std::string &crypto_kernel,
                              int sandbox_pct);

/**
 * Composite server request mix (`server/<mix>/<n>` registry family):
 * n simulated requests through core::CompositeWorkloadBuilder. The
 * "tls" mix interleaves x25519 + kyber768 handshakes (two sessions
 * per run, at requests 0 and ~n/2) with one ChaCha20-Poly1305 record
 * op per request, each request seeded deterministically from its
 * index. maxDynInsts is sized from n.
 */
Workload serverMixWorkload(const std::string &mix, uint64_t n);

/**
 * All cryptographic workloads of Fig. 7, in the paper's order.
 * Thin wrapper over WorkloadRegistry::global() (workload_registry.hh),
 * which also offers by-name lookup and suite filters.
 */
std::vector<Workload> allCryptoWorkloads();

/** Subset by suite name ("BearSSL", "OpenSSL", "PQC"). */
std::vector<Workload> suiteWorkloads(const std::string &suite);

} // namespace cassandra::crypto

#endif // CASSANDRA_CRYPTO_WORKLOADS_HH
