/**
 * @file
 * Reference Poly1305 one-time authenticator (RFC 8439 §2.5).
 */

#ifndef CASSANDRA_CRYPTO_REF_POLY1305_HH
#define CASSANDRA_CRYPTO_REF_POLY1305_HH

#include <array>
#include <cstdint>
#include <vector>

namespace cassandra::crypto::ref {

std::array<uint8_t, 16> poly1305Mac(const uint8_t key[32],
                                    const std::vector<uint8_t> &msg);

} // namespace cassandra::crypto::ref

#endif // CASSANDRA_CRYPTO_REF_POLY1305_HH
