#include <cstddef>
#include <algorithm>
#include <cstring>
#include "crypto/ref/des.hh"

namespace cassandra::crypto::ref {

namespace {

// Standard DES tables (FIPS 46-3), 1-based bit numbering from the spec.
constexpr int kIp[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
};

constexpr int kExpansion[48] = {
    32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,
    8,  9,  10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
};

constexpr int kPerm[32] = {
    16, 7,  20, 21, 29, 12, 28, 17, 1,  15, 23, 26, 5,  18, 31, 10,
    2,  8,  24, 14, 32, 27, 3,  9,  19, 13, 30, 6,  22, 11, 4,  25,
};

constexpr int kPc1[56] = {
    57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34, 26, 18,
    10, 2,  59, 51, 43, 35, 27, 19, 11, 3,  60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7,  62, 54, 46, 38, 30, 22,
    14, 6,  61, 53, 45, 37, 29, 21, 13, 5,  28, 20, 12, 4,
};

constexpr int kPc2[48] = {
    14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10,
    23, 19, 12, 4,  26, 8,  16, 7,  27, 20, 13, 2,
    41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
};

constexpr int kShifts[16] = {1, 1, 2, 2, 2, 2, 2, 2,
                             1, 2, 2, 2, 2, 2, 2, 1};

constexpr uint8_t kSboxSpec[8][4][16] = {
    {{14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7},
     {0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8},
     {4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0},
     {15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13}},
    {{15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10},
     {3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5},
     {0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15},
     {13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9}},
    {{10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8},
     {13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1},
     {13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7},
     {1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12}},
    {{7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15},
     {13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9},
     {10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4},
     {3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14}},
    {{2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9},
     {14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6},
     {4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14},
     {11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3}},
    {{12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11},
     {10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8},
     {9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6},
     {4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13}},
    {{4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1},
     {13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6},
     {1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2},
     {6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12}},
    {{13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7},
     {1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2},
     {7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8},
     {2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11}},
};

/** Flatten the row/column S-box spec into a 6-bit-index table. */
std::array<std::array<uint8_t, 64>, 8>
buildSboxes()
{
    std::array<std::array<uint8_t, 64>, 8> out{};
    for (int b = 0; b < 8; b++) {
        for (int i = 0; i < 64; i++) {
            int row = ((i >> 5) << 1) | (i & 1);
            int col = (i >> 1) & 0xf;
            out[b][i] = kSboxSpec[b][row][col];
        }
    }
    return out;
}

/** Extract bit `pos` (1-based, MSB-first) of a width-bit value. */
inline uint64_t
bitOf(uint64_t v, int pos, int width)
{
    return (v >> (width - pos)) & 1;
}

uint64_t
permute(uint64_t v, const int *table, int out_bits, int in_bits)
{
    uint64_t r = 0;
    for (int i = 0; i < out_bits; i++)
        r = (r << 1) | bitOf(v, table[i], in_bits);
    return r;
}

} // namespace

const std::array<std::array<uint8_t, 64>, 8> &
desSboxes()
{
    static const auto sboxes = buildSboxes();
    return sboxes;
}

DesRoundKeys
desKeySchedule(const uint8_t key[8])
{
    uint64_t k = 0;
    for (int i = 0; i < 8; i++)
        k = (k << 8) | key[i];
    uint64_t pc1 = permute(k, kPc1, 56, 64);
    uint32_t c = static_cast<uint32_t>(pc1 >> 28) & 0xfffffff;
    uint32_t d = static_cast<uint32_t>(pc1) & 0xfffffff;
    DesRoundKeys rk{};
    for (int round = 0; round < 16; round++) {
        int s = kShifts[round];
        c = ((c << s) | (c >> (28 - s))) & 0xfffffff;
        d = ((d << s) | (d >> (28 - s))) & 0xfffffff;
        uint64_t cd = (static_cast<uint64_t>(c) << 28) | d;
        rk[round] = permute(cd, kPc2, 48, 56);
    }
    return rk;
}

void
desEncryptBlock(const DesRoundKeys &rk, const uint8_t in[8], uint8_t out[8])
{
    const auto &sboxes = desSboxes();
    uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v = (v << 8) | in[i];
    uint64_t ip = permute(v, kIp, 64, 64);
    uint32_t l = static_cast<uint32_t>(ip >> 32);
    uint32_t r = static_cast<uint32_t>(ip);
    for (int round = 0; round < 16; round++) {
        uint64_t e = permute(r, kExpansion, 48, 32) ^ rk[round];
        uint32_t f = 0;
        for (int b = 0; b < 8; b++) {
            int idx = static_cast<int>((e >> (42 - 6 * b)) & 0x3f);
            f = (f << 4) | sboxes[b][idx];
        }
        f = static_cast<uint32_t>(permute(f, kPerm, 32, 32));
        uint32_t t = l ^ f;
        l = r;
        r = t;
    }
    // Final permutation is the inverse of IP applied to R||L.
    uint64_t preout = (static_cast<uint64_t>(r) << 32) | l;
    uint64_t fp = 0;
    // Build FP as the inverse of IP on the fly.
    for (int i = 0; i < 64; i++) {
        // Output bit i+1 of FP is input bit j where kIp[j-1] == i+1.
        for (int j = 0; j < 64; j++) {
            if (kIp[j] == i + 1) {
                fp = (fp << 1) | bitOf(preout, j + 1, 64);
                break;
            }
        }
    }
    for (int i = 0; i < 8; i++)
        out[i] = static_cast<uint8_t>(fp >> (56 - 8 * i));
}

std::vector<uint8_t>
desEcbEncrypt(const uint8_t key[8], const std::vector<uint8_t> &msg)
{
    DesRoundKeys rk = desKeySchedule(key);
    std::vector<uint8_t> out(msg.size());
    for (size_t off = 0; off + 8 <= msg.size(); off += 8)
        desEncryptBlock(rk, msg.data() + off, out.data() + off);
    return out;
}

} // namespace cassandra::crypto::ref
