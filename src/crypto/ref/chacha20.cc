#include <cstddef>
#include <algorithm>
#include <cstring>
#include "crypto/ref/chacha20.hh"

namespace cassandra::crypto::ref {

namespace {

inline uint32_t
rotl32(uint32_t x, int n)
{
    return (x << n) | (x >> (32 - n));
}

inline void
quarterRound(uint32_t &a, uint32_t &b, uint32_t &c, uint32_t &d)
{
    a += b; d ^= a; d = rotl32(d, 16);
    c += d; b ^= c; b = rotl32(b, 12);
    a += b; d ^= a; d = rotl32(d, 8);
    c += d; b ^= c; b = rotl32(b, 7);
}

inline uint32_t
load32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
        (static_cast<uint32_t>(p[2]) << 16) |
        (static_cast<uint32_t>(p[3]) << 24);
}

} // namespace

std::array<uint8_t, 64>
chacha20Block(const uint8_t key[32], const uint8_t nonce[12],
              uint32_t counter)
{
    uint32_t s[16];
    s[0] = 0x61707865; s[1] = 0x3320646e;
    s[2] = 0x79622d32; s[3] = 0x6b206574;
    for (int i = 0; i < 8; i++)
        s[4 + i] = load32(key + 4 * i);
    s[12] = counter;
    for (int i = 0; i < 3; i++)
        s[13 + i] = load32(nonce + 4 * i);

    uint32_t k[16];
    for (int i = 0; i < 16; i++)
        k[i] = s[i];
    for (int round = 0; round < 10; round++) {
        quarterRound(k[0], k[4], k[8], k[12]);
        quarterRound(k[1], k[5], k[9], k[13]);
        quarterRound(k[2], k[6], k[10], k[14]);
        quarterRound(k[3], k[7], k[11], k[15]);
        quarterRound(k[0], k[5], k[10], k[15]);
        quarterRound(k[1], k[6], k[11], k[12]);
        quarterRound(k[2], k[7], k[8], k[13]);
        quarterRound(k[3], k[4], k[9], k[14]);
    }
    std::array<uint8_t, 64> out;
    for (int i = 0; i < 16; i++) {
        uint32_t v = k[i] + s[i];
        out[4 * i + 0] = static_cast<uint8_t>(v);
        out[4 * i + 1] = static_cast<uint8_t>(v >> 8);
        out[4 * i + 2] = static_cast<uint8_t>(v >> 16);
        out[4 * i + 3] = static_cast<uint8_t>(v >> 24);
    }
    return out;
}

std::vector<uint8_t>
chacha20Xor(const uint8_t key[32], const uint8_t nonce[12], uint32_t counter,
            const std::vector<uint8_t> &msg)
{
    std::vector<uint8_t> out(msg.size());
    for (size_t off = 0; off < msg.size(); off += 64) {
        auto ks = chacha20Block(key, nonce,
                                counter + static_cast<uint32_t>(off / 64));
        size_t n = std::min<size_t>(64, msg.size() - off);
        for (size_t i = 0; i < n; i++)
            out[off + i] = msg[off + i] ^ ks[i];
    }
    return out;
}

} // namespace cassandra::crypto::ref
