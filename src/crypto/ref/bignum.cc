#include <cstddef>
#include <algorithm>
#include <cstring>
#include "crypto/ref/bignum.hh"

namespace cassandra::crypto::ref {

bool
geq(const Limbs &a, const Limbs &b)
{
    for (size_t i = a.size(); i-- > 0;) {
        if (a[i] != b[i])
            return a[i] > b[i];
    }
    return true;
}

Limbs
subLimbs(const Limbs &a, const Limbs &b)
{
    Limbs r(a.size());
    uint64_t borrow = 0;
    for (size_t i = 0; i < a.size(); i++) {
        uint64_t d = static_cast<uint64_t>(a[i]) - b[i] - borrow;
        r[i] = static_cast<uint32_t>(d);
        borrow = (d >> 63) & 1;
    }
    return r;
}

MontCtx
montInit(const Limbs &mod)
{
    MontCtx ctx;
    ctx.mod = mod;
    // Newton iteration for -m^-1 mod 2^32.
    uint32_t m0 = mod[0];
    uint32_t inv = 1;
    for (int i = 0; i < 5; i++)
        inv *= 2 - m0 * inv;
    ctx.n0inv = static_cast<uint32_t>(-static_cast<int64_t>(inv));

    // R^2 mod m by 2n*32 doublings of 1.
    size_t n = mod.size();
    Limbs r(n, 0);
    r[0] = 1;
    // First reduce R mod m: repeatedly double n*32 times starting from 1,
    // then continue doubling another n*32 times for R^2.
    for (size_t bit = 0; bit < 2 * n * 32; bit++) {
        // r = 2r mod m
        uint32_t carry = 0;
        for (size_t i = 0; i < n; i++) {
            uint32_t next = r[i] >> 31;
            r[i] = (r[i] << 1) | carry;
            carry = next;
        }
        if (carry || geq(r, mod))
            r = subLimbs(r, mod);
    }
    ctx.rr = r;
    return ctx;
}

Limbs
montMul(const MontCtx &ctx, const Limbs &a, const Limbs &b)
{
    size_t n = ctx.mod.size();
    std::vector<uint64_t> t(n + 2, 0);
    for (size_t i = 0; i < n; i++) {
        // t += a[i] * b
        uint64_t carry = 0;
        for (size_t j = 0; j < n; j++) {
            uint64_t v = t[j] +
                static_cast<uint64_t>(a[i]) * b[j] + carry;
            t[j] = v & 0xffffffff;
            carry = v >> 32;
        }
        uint64_t v = t[n] + carry;
        t[n] = v & 0xffffffff;
        t[n + 1] += v >> 32;

        // m = t[0] * n0inv mod 2^32; t += m * mod; t >>= 32
        uint32_t m = static_cast<uint32_t>(t[0]) * ctx.n0inv;
        carry = 0;
        for (size_t j = 0; j < n; j++) {
            uint64_t w = t[j] +
                static_cast<uint64_t>(m) * ctx.mod[j] + carry;
            t[j] = w & 0xffffffff;
            carry = w >> 32;
        }
        v = t[n] + carry;
        t[n] = v & 0xffffffff;
        t[n + 1] += v >> 32;
        // shift down one limb
        for (size_t j = 0; j < n + 1; j++)
            t[j] = t[j + 1];
        t[n + 1] = 0;
    }
    Limbs r(n);
    for (size_t i = 0; i < n; i++)
        r[i] = static_cast<uint32_t>(t[i]);
    bool overflow = t[n] != 0;
    if (overflow || geq(r, ctx.mod))
        r = subLimbs(r, ctx.mod);
    return r;
}

Limbs
modPow(const MontCtx &ctx, const Limbs &base, const Limbs &exp)
{
    size_t n = ctx.mod.size();
    // to Montgomery domain
    Limbs x = montMul(ctx, base, ctx.rr);
    Limbs one(n, 0);
    one[0] = 1;
    Limbs acc = montMul(ctx, one, ctx.rr); // R mod m

    // Fixed square-and-multiply-always, MSB to LSB.
    for (size_t bit = exp.size() * 32; bit-- > 0;) {
        acc = montMul(ctx, acc, acc);
        Limbs mult = montMul(ctx, acc, x);
        uint32_t take = (exp[bit / 32] >> (bit % 32)) & 1;
        // Constant-time select.
        for (size_t i = 0; i < n; i++) {
            uint32_t mask = ~(take - 1); // all ones if take == 1
            acc[i] = (acc[i] & ~mask) | (mult[i] & mask);
        }
    }
    return montMul(ctx, acc, one); // out of Montgomery domain
}

} // namespace cassandra::crypto::ref
