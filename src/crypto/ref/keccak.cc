#include <cstddef>
#include <algorithm>
#include <cstring>
#include "crypto/ref/keccak.hh"

namespace cassandra::crypto::ref {

namespace {

constexpr uint64_t kRoundConst[24] = {
    0x0000000000000001ull, 0x0000000000008082ull, 0x800000000000808aull,
    0x8000000080008000ull, 0x000000000000808bull, 0x0000000080000001ull,
    0x8000000080008081ull, 0x8000000000008009ull, 0x000000000000008aull,
    0x0000000000000088ull, 0x0000000080008009ull, 0x000000008000000aull,
    0x000000008000808bull, 0x800000000000008bull, 0x8000000000008089ull,
    0x8000000000008003ull, 0x8000000000008002ull, 0x8000000000000080ull,
    0x000000000000800aull, 0x800000008000000aull, 0x8000000080008081ull,
    0x8000000000008080ull, 0x0000000080000001ull, 0x8000000080008008ull,
};

constexpr int kRotation[25] = {
    0,  1,  62, 28, 27, 36, 44, 6,  55, 20, 3,  10, 43,
    25, 39, 41, 45, 15, 21, 8,  18, 2,  61, 56, 14,
};

inline uint64_t
rotl64(uint64_t x, int n)
{
    return n ? (x << n) | (x >> (64 - n)) : x;
}

std::vector<uint8_t>
sponge(const std::vector<uint8_t> &msg, size_t rate, uint8_t domain,
       size_t out_len)
{
    std::array<uint64_t, 25> st{};
    std::vector<uint8_t> padded = msg;
    padded.push_back(domain);
    while (padded.size() % rate != 0)
        padded.push_back(0);
    padded[padded.size() - 1] ^= 0x80;

    for (size_t off = 0; off < padded.size(); off += rate) {
        for (size_t i = 0; i < rate; i++) {
            st[i / 8] ^= static_cast<uint64_t>(padded[off + i])
                << (8 * (i % 8));
        }
        keccakF1600(st);
    }

    std::vector<uint8_t> out;
    while (out.size() < out_len) {
        for (size_t i = 0; i < rate && out.size() < out_len; i++)
            out.push_back(static_cast<uint8_t>(st[i / 8] >> (8 * (i % 8))));
        if (out.size() < out_len)
            keccakF1600(st);
    }
    return out;
}

} // namespace

void
keccakF1600(std::array<uint64_t, 25> &a)
{
    for (int round = 0; round < 24; round++) {
        // Theta.
        uint64_t c[5], d[5];
        for (int x = 0; x < 5; x++) {
            c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
        }
        for (int x = 0; x < 5; x++)
            d[x] = c[(x + 4) % 5] ^ rotl64(c[(x + 1) % 5], 1);
        for (int i = 0; i < 25; i++)
            a[i] ^= d[i % 5];
        // Rho + Pi.
        uint64_t b[25];
        for (int x = 0; x < 5; x++) {
            for (int y = 0; y < 5; y++) {
                int src = x + 5 * y;
                int dst = y + 5 * ((2 * x + 3 * y) % 5);
                b[dst] = rotl64(a[src], kRotation[src]);
            }
        }
        // Chi.
        for (int y = 0; y < 5; y++) {
            for (int x = 0; x < 5; x++) {
                a[x + 5 * y] = b[x + 5 * y] ^
                    (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
            }
        }
        // Iota.
        a[0] ^= kRoundConst[round];
    }
}

std::array<uint8_t, 32>
sha3_256(const std::vector<uint8_t> &msg)
{
    auto v = sponge(msg, 136, 0x06, 32);
    std::array<uint8_t, 32> out;
    std::copy(v.begin(), v.end(), out.begin());
    return out;
}

std::vector<uint8_t>
shake128(const std::vector<uint8_t> &msg, size_t out_len)
{
    return sponge(msg, 168, 0x1f, out_len);
}

std::vector<uint8_t>
shake256(const std::vector<uint8_t> &msg, size_t out_len)
{
    return sponge(msg, 136, 0x1f, out_len);
}

} // namespace cassandra::crypto::ref
