/**
 * @file
 * Reference AES-128 (FIPS 197): block encryption, CTR and CBC modes.
 * The S-box is derived from GF(2^8) inversion at startup rather than
 * typed in, so the table is correct by construction.
 */

#ifndef CASSANDRA_CRYPTO_REF_AES128_HH
#define CASSANDRA_CRYPTO_REF_AES128_HH

#include <array>
#include <cstdint>
#include <vector>

namespace cassandra::crypto::ref {

/** 11 round keys of 16 bytes each. */
using AesRoundKeys = std::array<uint8_t, 176>;

AesRoundKeys aes128KeyExpand(const uint8_t key[16]);

void aes128EncryptBlock(const AesRoundKeys &rk, const uint8_t in[16],
                        uint8_t out[16]);

/** CTR mode keystream XOR (big-endian 128-bit counter in iv). */
std::vector<uint8_t> aes128Ctr(const uint8_t key[16], const uint8_t iv[16],
                               const std::vector<uint8_t> &msg);

/** CBC mode encryption; msg length must be a multiple of 16. */
std::vector<uint8_t> aes128CbcEncrypt(const uint8_t key[16],
                                      const uint8_t iv[16],
                                      const std::vector<uint8_t> &msg);

/**
 * Two full AES rounds (SubBytes/ShiftRows/MixColumns/AddRoundKey) after
 * an initial whitening with rk[0] — the Haraka-style permutation used
 * by the SPHINCS haraka backend.
 */
void aes128TwoRounds(const AesRoundKeys &rk, const uint8_t in[16],
                     uint8_t out[16]);

/** The AES S-box (exposed for the IR kernel's data segment). */
const std::array<uint8_t, 256> &aesSbox();

} // namespace cassandra::crypto::ref

#endif // CASSANDRA_CRYPTO_REF_AES128_HH
