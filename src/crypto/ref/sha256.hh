/**
 * @file
 * Reference SHA-256 (FIPS 180-4), HMAC-SHA256 (RFC 2104) and the
 * TLS 1.2 PRF (RFC 5246 P_SHA256).
 */

#ifndef CASSANDRA_CRYPTO_REF_SHA256_HH
#define CASSANDRA_CRYPTO_REF_SHA256_HH

#include <array>
#include <cstdint>
#include <vector>

namespace cassandra::crypto::ref {

using Digest256 = std::array<uint8_t, 32>;

Digest256 sha256(const std::vector<uint8_t> &msg);

Digest256 hmacSha256(const std::vector<uint8_t> &key,
                     const std::vector<uint8_t> &msg);

/** TLS 1.2 PRF with SHA-256: P_SHA256(secret, label || seed). */
std::vector<uint8_t> tls12Prf(const std::vector<uint8_t> &secret,
                              const std::vector<uint8_t> &label_seed,
                              size_t out_len);

} // namespace cassandra::crypto::ref

#endif // CASSANDRA_CRYPTO_REF_SHA256_HH
