/**
 * @file
 * Reference Kyber-style lattice KEM core (CRYSTALS-Kyber parameters:
 * n = 256, q = 3329, eta = 2; k = 2 for kyber512, k = 3 for kyber768).
 *
 * This is a faithful implementation of the components whose control
 * flow the paper analyzes — NTT/INTT over Z_q[x]/(x^256+1), SHAKE-based
 * matrix expansion with *rejection sampling* (the paper's example of a
 * branch with random traces, footnote 3), CBD noise sampling, and the
 * IND-CPA encrypt path — rather than a certified Kyber; the FO
 * transform and encodings are simplified (documented per function).
 */

#ifndef CASSANDRA_CRYPTO_REF_KYBER_HH
#define CASSANDRA_CRYPTO_REF_KYBER_HH

#include <array>
#include <cstdint>
#include <vector>

namespace cassandra::crypto::ref {

inline constexpr int kyberN = 256;
inline constexpr int kyberQ = 3329;

using Poly = std::array<int16_t, kyberN>;

/** Zeta table in bit-reversed order (computed at startup from root 17). */
const std::array<int16_t, 128> &kyberZetas();

/** In-place forward NTT (Cooley-Tukey, standard Kyber layout). */
void kyberNtt(Poly &p);
/** In-place inverse NTT including the n^-1 scaling. */
void kyberInvNtt(Poly &p);
/** Pointwise multiplication in the NTT domain (basemul pairs). */
Poly kyberBaseMul(const Poly &a, const Poly &b);

/** Rejection-sample a uniform polynomial from a SHAKE128 stream. */
Poly kyberSampleUniform(const std::vector<uint8_t> &seed, uint8_t i,
                        uint8_t j);
/** Centered binomial (eta = 2) noise from a SHAKE256 PRF stream. */
Poly kyberSampleCbd(const std::vector<uint8_t> &seed, uint8_t nonce);

/** Simplified IND-CPA encryption of a 32-byte message (k = 2 or 3). */
struct KyberCiphertext
{
    std::vector<Poly> u; ///< k polynomials
    Poly v;
};

struct KyberKeyPair
{
    std::vector<Poly> aHat; ///< k*k matrix, row-major, NTT domain
    std::vector<Poly> sHat; ///< secret, NTT domain
    std::vector<Poly> tHat; ///< public t = A s + e, NTT domain
};

KyberKeyPair kyberKeyGen(int k, const std::vector<uint8_t> &seed_a,
                         const std::vector<uint8_t> &seed_noise);

KyberCiphertext kyberEncrypt(const KyberKeyPair &kp, int k,
                             const std::array<uint8_t, 32> &msg,
                             const std::vector<uint8_t> &coins);

std::array<uint8_t, 32> kyberDecrypt(const KyberKeyPair &kp, int k,
                                     const KyberCiphertext &ct);

} // namespace cassandra::crypto::ref

#endif // CASSANDRA_CRYPTO_REF_KYBER_HH
