#include <cstddef>
#include <algorithm>
#include <cstring>
#include "crypto/ref/poly1305.hh"

#include <algorithm>

namespace cassandra::crypto::ref {

/**
 * 26-bit limb implementation (the classic donna layout, which is also
 * what the IR kernel mirrors).
 */
std::array<uint8_t, 16>
poly1305Mac(const uint8_t key[32], const std::vector<uint8_t> &msg)
{
    auto load32 = [](const uint8_t *p) {
        return static_cast<uint32_t>(p[0]) |
            (static_cast<uint32_t>(p[1]) << 8) |
            (static_cast<uint32_t>(p[2]) << 16) |
            (static_cast<uint32_t>(p[3]) << 24);
    };

    uint32_t r0 = load32(key + 0) & 0x3ffffff;
    uint32_t r1 = (load32(key + 3) >> 2) & 0x3ffff03;
    uint32_t r2 = (load32(key + 6) >> 4) & 0x3ffc0ff;
    uint32_t r3 = (load32(key + 9) >> 6) & 0x3f03fff;
    uint32_t r4 = (load32(key + 12) >> 8) & 0x00fffff;
    uint32_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;

    uint64_t h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0;
    size_t off = 0;
    while (off < msg.size()) {
        uint8_t block[17] = {};
        size_t n = std::min<size_t>(16, msg.size() - off);
        for (size_t i = 0; i < n; i++)
            block[i] = msg[off + i];
        block[n] = 1; // the 2^(8n) bit
        off += n;

        h0 += load32(block + 0) & 0x3ffffff;
        h1 += (load32(block + 3) >> 2) & 0x3ffffff;
        h2 += (load32(block + 6) >> 4) & 0x3ffffff;
        h3 += (load32(block + 9) >> 6) & 0x3ffffff;
        h4 += (load32(block + 12) >> 8) |
            (static_cast<uint64_t>(block[16]) << 24);

        uint64_t d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        uint64_t d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        uint64_t d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        uint64_t d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        uint64_t d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        uint64_t c;
        c = d0 >> 26; d0 &= 0x3ffffff;
        d1 += c; c = d1 >> 26; d1 &= 0x3ffffff;
        d2 += c; c = d2 >> 26; d2 &= 0x3ffffff;
        d3 += c; c = d3 >> 26; d3 &= 0x3ffffff;
        d4 += c; c = d4 >> 26; d4 &= 0x3ffffff;
        d0 += c * 5; c = d0 >> 26; d0 &= 0x3ffffff;
        d1 += c;

        h0 = d0; h1 = d1; h2 = d2; h3 = d3; h4 = d4;
    }

    // Final carry propagation mod 2^130 - 5.
    uint64_t c = h1 >> 26; h1 &= 0x3ffffff;
    h2 += c; c = h2 >> 26; h2 &= 0x3ffffff;
    h3 += c; c = h3 >> 26; h3 &= 0x3ffffff;
    h4 += c; c = h4 >> 26; h4 &= 0x3ffffff;
    h0 += c * 5; c = h0 >> 26; h0 &= 0x3ffffff;
    h1 += c;

    // Compute h - p via h + 5 - 2^130 and constant-time select.
    uint64_t g0 = h0 + 5; c = g0 >> 26; g0 &= 0x3ffffff;
    uint64_t g1 = h1 + c; c = g1 >> 26; g1 &= 0x3ffffff;
    uint64_t g2 = h2 + c; c = g2 >> 26; g2 &= 0x3ffffff;
    uint64_t g3 = h3 + c; c = g3 >> 26; g3 &= 0x3ffffff;
    uint64_t g4 = h4 + c - (1ull << 26);

    uint64_t mask = (g4 >> 63) - 1; // all-ones if h >= p
    h0 = (h0 & ~mask) | (g0 & mask);
    h1 = (h1 & ~mask) | (g1 & mask);
    h2 = (h2 & ~mask) | (g2 & mask);
    h3 = (h3 & ~mask) | (g3 & mask);
    h4 = (h4 & ~mask) | (g4 & mask & 0x3ffffff);

    // Serialize to 128 bits and add s = key[16..31].
    uint64_t f0 = (h0 | (h1 << 26)) & 0xffffffff;
    uint64_t f1 = ((h1 >> 6) | (h2 << 20)) & 0xffffffff;
    uint64_t f2 = ((h2 >> 12) | (h3 << 14)) & 0xffffffff;
    uint64_t f3 = ((h3 >> 18) | (h4 << 8)) & 0xffffffff;

    uint64_t t;
    t = f0 + load32(key + 16); f0 = t & 0xffffffff;
    t = f1 + load32(key + 20) + (t >> 32); f1 = t & 0xffffffff;
    t = f2 + load32(key + 24) + (t >> 32); f2 = t & 0xffffffff;
    t = f3 + load32(key + 28) + (t >> 32); f3 = t & 0xffffffff;

    std::array<uint8_t, 16> tag;
    uint32_t words[4] = {static_cast<uint32_t>(f0),
                         static_cast<uint32_t>(f1),
                         static_cast<uint32_t>(f2),
                         static_cast<uint32_t>(f3)};
    for (int i = 0; i < 4; i++) {
        tag[4 * i + 0] = static_cast<uint8_t>(words[i]);
        tag[4 * i + 1] = static_cast<uint8_t>(words[i] >> 8);
        tag[4 * i + 2] = static_cast<uint8_t>(words[i] >> 16);
        tag[4 * i + 3] = static_cast<uint8_t>(words[i] >> 24);
    }
    return tag;
}

} // namespace cassandra::crypto::ref
