/**
 * @file
 * Reference big-number arithmetic and constant-time Montgomery modular
 * exponentiation (the ModPow/RSA workloads' ground truth).
 *
 * Numbers are little-endian vectors of 32-bit limbs, fixed-width per
 * operation. The modular exponentiation uses a Montgomery ladder-free
 * fixed left-to-right square-and-multiply-always schedule: the same
 * multiply count regardless of exponent bits, mirroring the IR kernel.
 */

#ifndef CASSANDRA_CRYPTO_REF_BIGNUM_HH
#define CASSANDRA_CRYPTO_REF_BIGNUM_HH

#include <cstdint>
#include <vector>

namespace cassandra::crypto::ref {

using Limbs = std::vector<uint32_t>; ///< little-endian 32-bit limbs

/** Montgomery context for an odd modulus of n limbs. */
struct MontCtx
{
    Limbs mod;      ///< modulus m
    uint32_t n0inv; ///< -m^-1 mod 2^32
    Limbs rr;       ///< R^2 mod m (R = 2^(32*n))
};

MontCtx montInit(const Limbs &mod);

/** Montgomery product: a*b*R^-1 mod m (CIOS). */
Limbs montMul(const MontCtx &ctx, const Limbs &a, const Limbs &b);

/** base^exp mod m via square-and-multiply-always. */
Limbs modPow(const MontCtx &ctx, const Limbs &base, const Limbs &exp);

/** Comparison helper: a >= b (equal widths). */
bool geq(const Limbs &a, const Limbs &b);

/** a - b (equal widths, a >= b). */
Limbs subLimbs(const Limbs &a, const Limbs &b);

} // namespace cassandra::crypto::ref

#endif // CASSANDRA_CRYPTO_REF_BIGNUM_HH
