/**
 * @file
 * Reference ChaCha20 stream cipher (RFC 8439). Used to verify the IR
 * kernels and as the paper's running example (§4.1).
 */

#ifndef CASSANDRA_CRYPTO_REF_CHACHA20_HH
#define CASSANDRA_CRYPTO_REF_CHACHA20_HH

#include <array>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace cassandra::crypto::ref {

/** One 64-byte keystream block. */
std::array<uint8_t, 64> chacha20Block(const uint8_t key[32],
                                      const uint8_t nonce[12],
                                      uint32_t counter);

/** XOR a message with the keystream (encrypt == decrypt). */
std::vector<uint8_t> chacha20Xor(const uint8_t key[32],
                                 const uint8_t nonce[12], uint32_t counter,
                                 const std::vector<uint8_t> &msg);

} // namespace cassandra::crypto::ref

#endif // CASSANDRA_CRYPTO_REF_CHACHA20_HH
