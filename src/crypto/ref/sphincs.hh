/**
 * @file
 * Reference SPHINCS-like stateless hash-based signature core.
 *
 * A scaled-down but structurally faithful analog of SPHINCS+-128s: a
 * WOTS+ one-time signature (w = 16) under a single Merkle tree, with
 * the three hash backends the paper evaluates (shake / sha2 / a
 * haraka-like AES-permutation construction). The hypertree and FORS
 * layers are collapsed into one tree so a full sign+verify runs in
 * millions rather than billions of instructions; the WOTS chain loops,
 * leaf loops and tree loops — the control flow the paper analyzes —
 * are preserved.
 */

#ifndef CASSANDRA_CRYPTO_REF_SPHINCS_HH
#define CASSANDRA_CRYPTO_REF_SPHINCS_HH

#include <cstdint>
#include <vector>

namespace cassandra::crypto::ref {

/** Hash backends mirroring sphincs-{shake,sha2,haraka}-128s. */
enum class SphincsHash
{
    Shake,
    Sha2,
    Haraka,
};

/** Scaled-down parameter set. */
struct SphincsParams
{
    SphincsHash hash = SphincsHash::Shake;
    int n = 16;         ///< hash output bytes
    int w = 16;         ///< Winternitz parameter
    int treeHeight = 4; ///< 2^h WOTS leaves
};

/** n-byte tweakable hash of the backend (address is a domain tweak). */
std::vector<uint8_t> sphincsHash(const SphincsParams &params,
                                 uint64_t address,
                                 const std::vector<uint8_t> &in);

struct SphincsSignature
{
    uint32_t leafIdx = 0;
    std::vector<std::vector<uint8_t>> wotsSig; ///< len chains
    std::vector<std::vector<uint8_t>> authPath;
};

struct SphincsKey
{
    std::vector<uint8_t> seed; ///< secret seed
    std::vector<uint8_t> root; ///< public root
};

/** Number of WOTS chains (len1 + len2) for the parameter set. */
int sphincsWotsLen(const SphincsParams &params);

SphincsKey sphincsKeyGen(const SphincsParams &params,
                         const std::vector<uint8_t> &seed);

SphincsSignature sphincsSign(const SphincsParams &params,
                             const SphincsKey &key,
                             const std::vector<uint8_t> &msg,
                             uint32_t leaf_idx);

bool sphincsVerify(const SphincsParams &params,
                   const std::vector<uint8_t> &root,
                   const std::vector<uint8_t> &msg,
                   const SphincsSignature &sig);

} // namespace cassandra::crypto::ref

#endif // CASSANDRA_CRYPTO_REF_SPHINCS_HH
