#include <cstddef>
#include <algorithm>
#include <cstring>
#include "crypto/ref/kyber.hh"

#include "crypto/ref/keccak.hh"

namespace cassandra::crypto::ref {

namespace {

constexpr int16_t kQ = kyberQ;

int16_t
modQ(int32_t a)
{
    int32_t r = a % kQ;
    if (r < 0)
        r += kQ;
    return static_cast<int16_t>(r);
}

int16_t
powMod(int16_t base, int e)
{
    int32_t r = 1, b = base;
    while (e) {
        if (e & 1)
            r = r * b % kQ;
        b = b * b % kQ;
        e >>= 1;
    }
    return static_cast<int16_t>(r);
}

uint8_t
bitrev7(uint8_t x)
{
    uint8_t r = 0;
    for (int i = 0; i < 7; i++)
        r |= ((x >> i) & 1) << (6 - i);
    return r;
}

std::array<int16_t, 128>
buildZetas()
{
    std::array<int16_t, 128> z{};
    for (int i = 0; i < 128; i++)
        z[i] = powMod(17, bitrev7(static_cast<uint8_t>(i)));
    return z;
}

} // namespace

const std::array<int16_t, 128> &
kyberZetas()
{
    static const auto zetas = buildZetas();
    return zetas;
}

void
kyberNtt(Poly &p)
{
    const auto &zetas = kyberZetas();
    int k = 1;
    for (int len = 128; len >= 2; len >>= 1) {
        for (int start = 0; start < kyberN; start += 2 * len) {
            int16_t zeta = zetas[k++];
            for (int j = start; j < start + len; j++) {
                int16_t t = modQ(static_cast<int32_t>(zeta) * p[j + len]);
                p[j + len] = modQ(p[j] - t);
                p[j] = modQ(p[j] + t);
            }
        }
    }
}

void
kyberInvNtt(Poly &p)
{
    const auto &zetas = kyberZetas();
    int k = 127;
    for (int len = 2; len <= 128; len <<= 1) {
        for (int start = 0; start < kyberN; start += 2 * len) {
            int16_t zeta = zetas[k--];
            for (int j = start; j < start + len; j++) {
                int16_t t = p[j];
                p[j] = modQ(t + p[j + len]);
                p[j + len] = modQ(
                    static_cast<int32_t>(zeta) * modQ(p[j + len] - t));
            }
        }
    }
    // Undo the deferred halving of the 7 Gentleman-Sande layers:
    // multiply by 2^-7 = 128^-1 mod q.
    int16_t ninv = powMod(128, kQ - 2);
    for (auto &c : p)
        c = modQ(static_cast<int32_t>(c) * ninv);
}

Poly
kyberBaseMul(const Poly &a, const Poly &b)
{
    const auto &zetas = kyberZetas();
    Poly r{};
    for (int i = 0; i < kyberN / 4; i++) {
        int16_t zeta = zetas[64 + i];
        auto mul = [&](int16_t x, int16_t y) {
            return modQ(static_cast<int32_t>(x) * y);
        };
        // (a0 + a1 X)(b0 + b1 X) mod (X^2 - zeta)
        int j = 4 * i;
        r[j] = modQ(mul(a[j + 1], b[j + 1]) * static_cast<int32_t>(1));
        r[j] = modQ(mul(r[j], zeta) + mul(a[j], b[j]));
        r[j + 1] = modQ(mul(a[j], b[j + 1]) + mul(a[j + 1], b[j]));
        // second pair uses -zeta
        r[j + 2] = modQ(mul(mul(a[j + 3], b[j + 3]), kQ - zeta) +
                        mul(a[j + 2], b[j + 2]));
        r[j + 3] = modQ(mul(a[j + 2], b[j + 3]) +
                        mul(a[j + 3], b[j + 2]));
    }
    return r;
}

Poly
kyberSampleUniform(const std::vector<uint8_t> &seed, uint8_t i, uint8_t j)
{
    std::vector<uint8_t> in = seed;
    in.push_back(i);
    in.push_back(j);
    Poly p{};
    int got = 0;
    size_t blocks = 3;
    std::vector<uint8_t> stream = shake128(in, blocks * 168);
    size_t pos = 0;
    // Rejection sampling: candidate 12-bit values >= q are discarded.
    while (got < kyberN) {
        if (pos + 3 > stream.size()) {
            blocks++;
            stream = shake128(in, blocks * 168);
        }
        uint16_t d1 = static_cast<uint16_t>(stream[pos] |
                                            ((stream[pos + 1] & 0xf) << 8));
        uint16_t d2 = static_cast<uint16_t>((stream[pos + 1] >> 4) |
                                            (stream[pos + 2] << 4));
        pos += 3;
        if (d1 < kQ && got < kyberN)
            p[got++] = static_cast<int16_t>(d1);
        if (d2 < kQ && got < kyberN)
            p[got++] = static_cast<int16_t>(d2);
    }
    return p;
}

Poly
kyberSampleCbd(const std::vector<uint8_t> &seed, uint8_t nonce)
{
    std::vector<uint8_t> in = seed;
    in.push_back(nonce);
    std::vector<uint8_t> buf = shake256(in, kyberN / 2); // eta = 2
    Poly p{};
    for (int i = 0; i < kyberN / 8; i++) {
        uint32_t t = static_cast<uint32_t>(buf[4 * i]) |
            (static_cast<uint32_t>(buf[4 * i + 1]) << 8) |
            (static_cast<uint32_t>(buf[4 * i + 2]) << 16) |
            (static_cast<uint32_t>(buf[4 * i + 3]) << 24);
        uint32_t d = (t & 0x55555555) + ((t >> 1) & 0x55555555);
        for (int j = 0; j < 8; j++) {
            int16_t a = static_cast<int16_t>((d >> (4 * j)) & 0x3);
            int16_t b = static_cast<int16_t>((d >> (4 * j + 2)) & 0x3);
            p[8 * i + j] = modQ(a - b);
        }
    }
    return p;
}

KyberKeyPair
kyberKeyGen(int k, const std::vector<uint8_t> &seed_a,
            const std::vector<uint8_t> &seed_noise)
{
    KyberKeyPair kp;
    kp.aHat.resize(static_cast<size_t>(k) * k);
    kp.sHat.resize(k);
    kp.tHat.resize(k);
    for (int i = 0; i < k; i++) {
        for (int j = 0; j < k; j++) {
            kp.aHat[i * k + j] = kyberSampleUniform(
                seed_a, static_cast<uint8_t>(i), static_cast<uint8_t>(j));
        }
    }
    std::vector<Poly> e(k);
    for (int i = 0; i < k; i++) {
        kp.sHat[i] =
            kyberSampleCbd(seed_noise, static_cast<uint8_t>(i));
        e[i] = kyberSampleCbd(seed_noise, static_cast<uint8_t>(k + i));
        kyberNtt(kp.sHat[i]);
        kyberNtt(e[i]);
    }
    for (int i = 0; i < k; i++) {
        Poly acc{};
        for (int j = 0; j < k; j++) {
            Poly prod = kyberBaseMul(kp.aHat[i * k + j], kp.sHat[j]);
            for (int c = 0; c < kyberN; c++)
                acc[c] = modQ(acc[c] + prod[c]);
        }
        for (int c = 0; c < kyberN; c++)
            acc[c] = modQ(acc[c] + e[i][c]);
        kp.tHat[i] = acc;
    }
    return kp;
}

KyberCiphertext
kyberEncrypt(const KyberKeyPair &kp, int k,
             const std::array<uint8_t, 32> &msg,
             const std::vector<uint8_t> &coins)
{
    std::vector<Poly> r(k), e1(k);
    for (int i = 0; i < k; i++) {
        r[i] = kyberSampleCbd(coins, static_cast<uint8_t>(i));
        e1[i] = kyberSampleCbd(coins, static_cast<uint8_t>(k + i));
        kyberNtt(r[i]);
    }
    Poly e2 = kyberSampleCbd(coins, static_cast<uint8_t>(2 * k));

    KyberCiphertext ct;
    ct.u.resize(k);
    for (int i = 0; i < k; i++) {
        Poly acc{};
        for (int j = 0; j < k; j++) {
            // A^T: element (j, i)
            Poly prod = kyberBaseMul(kp.aHat[j * k + i], r[j]);
            for (int c = 0; c < kyberN; c++)
                acc[c] = modQ(acc[c] + prod[c]);
        }
        kyberInvNtt(acc);
        for (int c = 0; c < kyberN; c++)
            acc[c] = modQ(acc[c] + e1[i][c]);
        ct.u[i] = acc;
    }

    Poly acc{};
    for (int j = 0; j < k; j++) {
        Poly prod = kyberBaseMul(kp.tHat[j], r[j]);
        for (int c = 0; c < kyberN; c++)
            acc[c] = modQ(acc[c] + prod[c]);
    }
    kyberInvNtt(acc);
    for (int c = 0; c < kyberN; c++) {
        int bit = (msg[c / 8] >> (c % 8)) & 1;
        acc[c] = modQ(acc[c] + e2[c] + bit * ((kQ + 1) / 2));
    }
    ct.v = acc;
    return ct;
}

std::array<uint8_t, 32>
kyberDecrypt(const KyberKeyPair &kp, int k, const KyberCiphertext &ct)
{
    Poly acc{};
    for (int j = 0; j < k; j++) {
        Poly u = ct.u[j];
        kyberNtt(u);
        Poly prod = kyberBaseMul(kp.sHat[j], u);
        for (int c = 0; c < kyberN; c++)
            acc[c] = modQ(acc[c] + prod[c]);
    }
    kyberInvNtt(acc);
    std::array<uint8_t, 32> msg{};
    for (int c = 0; c < kyberN; c++) {
        int16_t d = modQ(ct.v[c] - acc[c]);
        // Decode: closest to q/2 -> 1.
        int dist = d > kQ / 2 ? kQ - d : d;
        int bit = (kQ / 2 - dist) < kQ / 4 ? 1 : 0;
        msg[c / 8] |= static_cast<uint8_t>(bit << (c % 8));
    }
    return msg;
}

} // namespace cassandra::crypto::ref
