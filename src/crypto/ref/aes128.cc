#include "crypto/ref/aes128.hh"

#include <algorithm>
#include <cstddef>

namespace cassandra::crypto::ref {

namespace {

uint8_t
gfMul(uint8_t a, uint8_t b)
{
    uint8_t p = 0;
    for (int i = 0; i < 8; i++) {
        if (b & 1)
            p ^= a;
        uint8_t hi = a & 0x80;
        a <<= 1;
        if (hi)
            a ^= 0x1b;
        b >>= 1;
    }
    return p;
}

std::array<uint8_t, 256>
buildSbox()
{
    // Inverses via Fermat: a^254 in GF(2^8).
    std::array<uint8_t, 256> inv{};
    for (int a = 1; a < 256; a++) {
        uint8_t x = static_cast<uint8_t>(a);
        uint8_t r = 1;
        // a^254 = a^(2+4+8+16+32+64+128)
        uint8_t sq = x;
        for (int bit = 1; bit < 8; bit++) {
            sq = gfMul(sq, sq);
            r = gfMul(r, sq);
        }
        inv[a] = r;
    }
    std::array<uint8_t, 256> sbox{};
    for (int a = 0; a < 256; a++) {
        uint8_t x = inv[a];
        uint8_t y = x;
        for (int i = 0; i < 4; i++) {
            y = static_cast<uint8_t>((y << 1) | (y >> 7));
            x ^= y;
        }
        sbox[a] = x ^ 0x63;
    }
    return sbox;
}

} // namespace

const std::array<uint8_t, 256> &
aesSbox()
{
    static const std::array<uint8_t, 256> sbox = buildSbox();
    return sbox;
}

AesRoundKeys
aes128KeyExpand(const uint8_t key[16])
{
    const auto &sbox = aesSbox();
    AesRoundKeys rk{};
    for (int i = 0; i < 16; i++)
        rk[i] = key[i];
    uint8_t rcon = 1;
    for (int i = 16; i < 176; i += 4) {
        uint8_t t[4] = {rk[i - 4], rk[i - 3], rk[i - 2], rk[i - 1]};
        if (i % 16 == 0) {
            uint8_t tmp = t[0];
            t[0] = sbox[t[1]] ^ rcon;
            t[1] = sbox[t[2]];
            t[2] = sbox[t[3]];
            t[3] = sbox[tmp];
            rcon = gfMul(rcon, 2);
        }
        for (int j = 0; j < 4; j++)
            rk[i + j] = rk[i - 16 + j] ^ t[j];
    }
    return rk;
}

void
aes128EncryptBlock(const AesRoundKeys &rk, const uint8_t in[16],
                   uint8_t out[16])
{
    const auto &sbox = aesSbox();
    uint8_t s[16];
    for (int i = 0; i < 16; i++)
        s[i] = in[i] ^ rk[i];
    for (int round = 1; round <= 10; round++) {
        // SubBytes.
        for (int i = 0; i < 16; i++)
            s[i] = sbox[s[i]];
        // ShiftRows (column-major state layout).
        uint8_t t[16];
        for (int c = 0; c < 4; c++) {
            for (int r = 0; r < 4; r++)
                t[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
        if (round < 10) {
            // MixColumns.
            for (int c = 0; c < 4; c++) {
                uint8_t *col = t + 4 * c;
                uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
                s[4 * c + 0] =
                    gfMul(a0, 2) ^ gfMul(a1, 3) ^ a2 ^ a3;
                s[4 * c + 1] =
                    a0 ^ gfMul(a1, 2) ^ gfMul(a2, 3) ^ a3;
                s[4 * c + 2] =
                    a0 ^ a1 ^ gfMul(a2, 2) ^ gfMul(a3, 3);
                s[4 * c + 3] =
                    gfMul(a0, 3) ^ a1 ^ a2 ^ gfMul(a3, 2);
            }
        } else {
            for (int i = 0; i < 16; i++)
                s[i] = t[i];
        }
        for (int i = 0; i < 16; i++)
            s[i] ^= rk[16 * round + i];
    }
    for (int i = 0; i < 16; i++)
        out[i] = s[i];
}

void
aes128TwoRounds(const AesRoundKeys &rk, const uint8_t in[16], uint8_t out[16])
{
    const auto &sbox = aesSbox();
    uint8_t s[16];
    for (int i = 0; i < 16; i++)
        s[i] = in[i] ^ rk[i];
    for (int round = 1; round <= 2; round++) {
        for (int i = 0; i < 16; i++)
            s[i] = sbox[s[i]];
        uint8_t t[16];
        for (int c = 0; c < 4; c++) {
            for (int r = 0; r < 4; r++)
                t[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
        for (int c = 0; c < 4; c++) {
            uint8_t *col = t + 4 * c;
            uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
            s[4 * c + 0] = gfMul(a0, 2) ^ gfMul(a1, 3) ^ a2 ^ a3;
            s[4 * c + 1] = a0 ^ gfMul(a1, 2) ^ gfMul(a2, 3) ^ a3;
            s[4 * c + 2] = a0 ^ a1 ^ gfMul(a2, 2) ^ gfMul(a3, 3);
            s[4 * c + 3] = gfMul(a0, 3) ^ a1 ^ a2 ^ gfMul(a3, 2);
        }
        for (int i = 0; i < 16; i++)
            s[i] ^= rk[16 * round + i];
    }
    for (int i = 0; i < 16; i++)
        out[i] = s[i];
}

std::vector<uint8_t>
aes128Ctr(const uint8_t key[16], const uint8_t iv[16],
          const std::vector<uint8_t> &msg)
{
    AesRoundKeys rk = aes128KeyExpand(key);
    std::vector<uint8_t> out(msg.size());
    uint8_t ctr[16];
    for (int i = 0; i < 16; i++)
        ctr[i] = iv[i];
    for (size_t off = 0; off < msg.size(); off += 16) {
        uint8_t ks[16];
        aes128EncryptBlock(rk, ctr, ks);
        size_t n = std::min<size_t>(16, msg.size() - off);
        for (size_t i = 0; i < n; i++)
            out[off + i] = msg[off + i] ^ ks[i];
        for (int i = 15; i >= 0; i--) {
            if (++ctr[i])
                break;
        }
    }
    return out;
}

std::vector<uint8_t>
aes128CbcEncrypt(const uint8_t key[16], const uint8_t iv[16],
                 const std::vector<uint8_t> &msg)
{
    AesRoundKeys rk = aes128KeyExpand(key);
    std::vector<uint8_t> out(msg.size());
    uint8_t chain[16];
    for (int i = 0; i < 16; i++)
        chain[i] = iv[i];
    for (size_t off = 0; off + 16 <= msg.size(); off += 16) {
        uint8_t in[16];
        for (int i = 0; i < 16; i++)
            in[i] = msg[off + i] ^ chain[i];
        aes128EncryptBlock(rk, in, out.data() + off);
        for (int i = 0; i < 16; i++)
            chain[i] = out[off + i];
    }
    return out;
}

} // namespace cassandra::crypto::ref
