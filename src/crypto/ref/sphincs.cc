#include <cstddef>
#include <algorithm>
#include <cstring>
#include "crypto/ref/sphincs.hh"

#include "crypto/ref/aes128.hh"
#include "crypto/ref/keccak.hh"
#include "crypto/ref/sha256.hh"

namespace cassandra::crypto::ref {

namespace {

/** Base-w digits of the message plus the WOTS checksum digits. */
std::vector<int>
wotsDigits(const SphincsParams &params, const std::vector<uint8_t> &msg_hash)
{
    std::vector<int> digits;
    for (uint8_t b : msg_hash) {
        digits.push_back(b >> 4);
        digits.push_back(b & 0xf);
    }
    int csum = 0;
    for (int d : digits)
        csum += params.w - 1 - d;
    // 3 checksum digits cover len1 * (w-1) <= 480 < 16^3.
    for (int i = 0; i < 3; i++)
        digits.push_back((csum >> (4 * (2 - i))) & 0xf);
    return digits;
}

} // namespace

int
sphincsWotsLen(const SphincsParams &params)
{
    return 2 * params.n + 3;
}

std::vector<uint8_t>
sphincsHash(const SphincsParams &params, uint64_t address,
            const std::vector<uint8_t> &in)
{
    std::vector<uint8_t> buf;
    for (int i = 0; i < 8; i++)
        buf.push_back(static_cast<uint8_t>(address >> (8 * i)));
    buf.insert(buf.end(), in.begin(), in.end());

    switch (params.hash) {
      case SphincsHash::Shake:
        return shake256(buf, params.n);
      case SphincsHash::Sha2:
      {
        auto d = sha256(buf);
        return std::vector<uint8_t>(d.begin(), d.begin() + params.n);
      }
      case SphincsHash::Haraka:
      {
        // Haraka-like: AES-CBC-MAC style permutation over the input,
        // keyed with a fixed constant; two full AES rounds per 16-byte
        // block, as in real Haraka (the IR kernel mirrors this).
        uint8_t key[16] = {0x9d, 0x7b, 0x81, 0x75, 0xf0, 0xfe, 0xc5,
                           0xb2, 0x0a, 0xc0, 0x20, 0xe6, 0x4c, 0x70,
                           0x84, 0x06};
        AesRoundKeys rk = aes128KeyExpand(key);
        uint8_t state[16] = {};
        buf.push_back(0x80);
        while (buf.size() % 16 != 0)
            buf.push_back(0);
        for (size_t off = 0; off < buf.size(); off += 16) {
            uint8_t in_block[16];
            for (int i = 0; i < 16; i++)
                in_block[i] = state[i] ^ buf[off + i];
            aes128TwoRounds(rk, in_block, state);
        }
        return std::vector<uint8_t>(state, state + params.n);
      }
    }
    return {};
}

namespace {

/** Apply `steps` WOTS chain steps starting from `start` position. */
std::vector<uint8_t>
chain(const SphincsParams &params, std::vector<uint8_t> value,
      uint64_t addr, int start, int steps)
{
    for (int i = start; i < start + steps; i++)
        value = sphincsHash(params, addr * 256 + i, value);
    return value;
}

/** Secret chain seed for (leaf, chain). */
std::vector<uint8_t>
chainSeed(const SphincsParams &params, const std::vector<uint8_t> &seed,
          uint32_t leaf, int chain_idx)
{
    std::vector<uint8_t> in = seed;
    in.push_back(static_cast<uint8_t>(leaf));
    in.push_back(static_cast<uint8_t>(leaf >> 8));
    in.push_back(static_cast<uint8_t>(chain_idx));
    return sphincsHash(params, 0xfeed0000u + leaf, in);
}

/** Public WOTS key hash of one leaf. */
std::vector<uint8_t>
wotsLeaf(const SphincsParams &params, const std::vector<uint8_t> &seed,
         uint32_t leaf)
{
    int len = sphincsWotsLen(params);
    std::vector<uint8_t> concat;
    for (int c = 0; c < len; c++) {
        auto sk = chainSeed(params, seed, leaf, c);
        auto pk = chain(params, sk, (static_cast<uint64_t>(leaf) << 16) | c,
                        0, params.w - 1);
        concat.insert(concat.end(), pk.begin(), pk.end());
    }
    return sphincsHash(params, 0xbeef0000u + leaf, concat);
}

std::vector<uint8_t>
treeNode(const SphincsParams &params, const std::vector<uint8_t> &seed,
         int level, uint32_t index)
{
    if (level == 0)
        return wotsLeaf(params, seed, index);
    auto left = treeNode(params, seed, level - 1, 2 * index);
    auto right = treeNode(params, seed, level - 1, 2 * index + 1);
    std::vector<uint8_t> in = left;
    in.insert(in.end(), right.begin(), right.end());
    return sphincsHash(params,
                       0xaaaa0000u + (static_cast<uint64_t>(level) << 20) +
                           index,
                       in);
}

} // namespace

SphincsKey
sphincsKeyGen(const SphincsParams &params, const std::vector<uint8_t> &seed)
{
    SphincsKey key;
    key.seed = seed;
    key.root = treeNode(params, seed, params.treeHeight, 0);
    return key;
}

SphincsSignature
sphincsSign(const SphincsParams &params, const SphincsKey &key,
            const std::vector<uint8_t> &msg, uint32_t leaf_idx)
{
    SphincsSignature sig;
    sig.leafIdx = leaf_idx;

    auto msg_hash = sphincsHash(params, 0x5150, msg);
    auto digits = wotsDigits(params, msg_hash);

    for (int c = 0; c < sphincsWotsLen(params); c++) {
        auto sk = chainSeed(params, key.seed, leaf_idx, c);
        sig.wotsSig.push_back(
            chain(params, sk, (static_cast<uint64_t>(leaf_idx) << 16) | c,
                  0, digits[c]));
    }
    uint32_t idx = leaf_idx;
    for (int level = 0; level < params.treeHeight; level++) {
        sig.authPath.push_back(
            treeNode(params, key.seed, level, idx ^ 1));
        idx >>= 1;
    }
    return sig;
}

bool
sphincsVerify(const SphincsParams &params, const std::vector<uint8_t> &root,
              const std::vector<uint8_t> &msg, const SphincsSignature &sig)
{
    auto msg_hash = sphincsHash(params, 0x5150, msg);
    auto digits = wotsDigits(params, msg_hash);

    std::vector<uint8_t> concat;
    for (int c = 0; c < sphincsWotsLen(params); c++) {
        auto pk = chain(params, sig.wotsSig[c],
                        (static_cast<uint64_t>(sig.leafIdx) << 16) | c,
                        digits[c], params.w - 1 - digits[c]);
        concat.insert(concat.end(), pk.begin(), pk.end());
    }
    auto node = sphincsHash(params, 0xbeef0000u + sig.leafIdx, concat);

    uint32_t idx = sig.leafIdx;
    for (int level = 0; level < params.treeHeight; level++) {
        std::vector<uint8_t> in;
        if (idx & 1) {
            in = sig.authPath[level];
            in.insert(in.end(), node.begin(), node.end());
        } else {
            in = node;
            in.insert(in.end(), sig.authPath[level].begin(),
                      sig.authPath[level].end());
        }
        idx >>= 1;
        node = sphincsHash(params,
                           0xaaaa0000u +
                               (static_cast<uint64_t>(level + 1) << 20) +
                               idx,
                           in);
    }
    return node == root;
}

} // namespace cassandra::crypto::ref
