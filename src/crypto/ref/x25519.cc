#include <cstddef>
#include <algorithm>
#include <cstring>
#include "crypto/ref/x25519.hh"

namespace cassandra::crypto::ref {

namespace {

using u128 = unsigned __int128;

/** Field element: 5 x 51-bit limbs, little-endian. */
struct Fe
{
    uint64_t v[5] = {0, 0, 0, 0, 0};
};

constexpr uint64_t kMask51 = (1ull << 51) - 1;

Fe
feAdd(const Fe &a, const Fe &b)
{
    Fe r;
    for (int i = 0; i < 5; i++)
        r.v[i] = a.v[i] + b.v[i];
    return r;
}

Fe
feSub(const Fe &a, const Fe &b)
{
    // Add 4p before subtracting to keep limbs positive.
    Fe r;
    r.v[0] = a.v[0] + 0xfffffffffffdaull * 2 - b.v[0];
    for (int i = 1; i < 5; i++)
        r.v[i] = a.v[i] + 0xffffffffffffeull * 2 - b.v[i];
    return r;
}

Fe
feCarry(const Fe &a)
{
    Fe r = a;
    uint64_t c;
    for (int i = 0; i < 4; i++) {
        c = r.v[i] >> 51;
        r.v[i] &= kMask51;
        r.v[i + 1] += c;
    }
    c = r.v[4] >> 51;
    r.v[4] &= kMask51;
    r.v[0] += c * 19;
    c = r.v[0] >> 51;
    r.v[0] &= kMask51;
    r.v[1] += c;
    return r;
}

Fe
feMul(const Fe &a, const Fe &b)
{
    u128 t[5] = {};
    for (int i = 0; i < 5; i++) {
        for (int j = 0; j < 5; j++) {
            u128 prod = static_cast<u128>(a.v[i]) * b.v[j];
            int k = i + j;
            if (k >= 5) {
                k -= 5;
                prod *= 19;
            }
            t[k] += prod;
        }
    }
    Fe r;
    uint64_t carry = 0;
    for (int i = 0; i < 5; i++) {
        u128 v = t[i] + carry;
        r.v[i] = static_cast<uint64_t>(v) & kMask51;
        carry = static_cast<uint64_t>(v >> 51);
    }
    r.v[0] += carry * 19;
    return feCarry(r);
}

Fe
feMul121666(const Fe &a)
{
    Fe r;
    u128 carry = 0;
    for (int i = 0; i < 5; i++) {
        u128 v = static_cast<u128>(a.v[i]) * 121666 + carry;
        r.v[i] = static_cast<uint64_t>(v) & kMask51;
        carry = v >> 51;
    }
    r.v[0] += static_cast<uint64_t>(carry) * 19;
    return feCarry(r);
}

Fe
feInvert(const Fe &a)
{
    // a^(p-2) with p = 2^255 - 19: 254 squarings, constant schedule.
    Fe r = a;
    Fe result;
    result.v[0] = 1;
    // Exponent bits of p-2 = 2^255 - 21: all ones except bits 1 and 3...
    // Use simple square-and-multiply over the fixed constant exponent.
    // p - 2 = 0x7fff...ffeb
    uint8_t exp[32];
    for (int i = 0; i < 32; i++)
        exp[i] = 0xff;
    exp[0] = 0xeb;
    exp[31] = 0x7f;
    for (int bit = 254; bit >= 0; bit--) {
        result = feMul(result, result);
        if ((exp[bit / 8] >> (bit % 8)) & 1)
            result = feMul(result, r);
    }
    return result;
}

Fe
feFromBytes(const uint8_t s[32])
{
    auto load64 = [&](int off) {
        uint64_t v = 0;
        for (int i = 7; i >= 0; i--)
            v = (v << 8) | s[off + i];
        return v;
    };
    Fe r;
    r.v[0] = load64(0) & kMask51;
    r.v[1] = (load64(6) >> 3) & kMask51;
    r.v[2] = (load64(12) >> 6) & kMask51;
    r.v[3] = (load64(19) >> 1) & kMask51;
    r.v[4] = (load64(24) >> 12) & kMask51;
    return r;
}

void
feToBytes(uint8_t out[32], const Fe &a)
{
    Fe t = feCarry(feCarry(a));
    // Fully reduce mod p.
    uint64_t q = (t.v[0] + 19) >> 51;
    q = (t.v[1] + q) >> 51;
    q = (t.v[2] + q) >> 51;
    q = (t.v[3] + q) >> 51;
    q = (t.v[4] + q) >> 51;
    t.v[0] += 19 * q;
    uint64_t carry;
    for (int i = 0; i < 4; i++) {
        carry = t.v[i] >> 51;
        t.v[i] &= kMask51;
        t.v[i + 1] += carry;
    }
    t.v[4] &= kMask51;

    uint64_t w0 = t.v[0] | (t.v[1] << 51);
    uint64_t w1 = (t.v[1] >> 13) | (t.v[2] << 38);
    uint64_t w2 = (t.v[2] >> 26) | (t.v[3] << 25);
    uint64_t w3 = (t.v[3] >> 39) | (t.v[4] << 12);
    uint64_t words[4] = {w0, w1, w2, w3};
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 8; j++)
            out[8 * i + j] = static_cast<uint8_t>(words[i] >> (8 * j));
    }
}

void
feCswap(Fe &a, Fe &b, uint64_t swap)
{
    uint64_t mask = 0 - swap;
    for (int i = 0; i < 5; i++) {
        uint64_t x = mask & (a.v[i] ^ b.v[i]);
        a.v[i] ^= x;
        b.v[i] ^= x;
    }
}

} // namespace

std::array<uint8_t, 32>
x25519(const uint8_t scalar[32], const uint8_t point[32])
{
    uint8_t e[32];
    for (int i = 0; i < 32; i++)
        e[i] = scalar[i];
    e[0] &= 248;
    e[31] &= 127;
    e[31] |= 64;

    Fe x1 = feFromBytes(point);
    Fe x2;
    x2.v[0] = 1;
    Fe z2; // zero
    Fe x3 = x1;
    Fe z3;
    z3.v[0] = 1;

    uint64_t swap = 0;
    for (int t = 254; t >= 0; t--) {
        uint64_t bit = (e[t / 8] >> (t % 8)) & 1;
        swap ^= bit;
        feCswap(x2, x3, swap);
        feCswap(z2, z3, swap);
        swap = bit;

        Fe a = feCarry(feAdd(x2, z2));
        Fe b = feCarry(feSub(x2, z2));
        Fe aa = feMul(a, a);
        Fe bb = feMul(b, b);
        x2 = feMul(aa, bb);
        Fe e_ = feCarry(feSub(aa, bb));
        Fe c = feCarry(feAdd(x3, z3));
        Fe d = feCarry(feSub(x3, z3));
        Fe da = feMul(d, a);
        Fe cb = feMul(c, b);
        Fe t0 = feCarry(feAdd(da, cb));
        x3 = feMul(t0, t0);
        Fe t1 = feCarry(feSub(da, cb));
        Fe t2 = feMul(t1, t1);
        z3 = feMul(t2, x1);
        Fe t3 = feMul121666(e_);
        Fe t4 = feCarry(feAdd(bb, t3));
        z2 = feMul(e_, t4);
    }
    feCswap(x2, x3, swap);
    feCswap(z2, z3, swap);

    Fe out = feMul(x2, feInvert(z2));
    std::array<uint8_t, 32> result;
    feToBytes(result.data(), out);
    return result;
}

std::array<uint8_t, 32>
x25519BasePoint()
{
    std::array<uint8_t, 32> bp{};
    bp[0] = 9;
    return bp;
}

} // namespace cassandra::crypto::ref
