/**
 * @file
 * Reference Keccak-f[1600], SHA3-256 and SHAKE128 (FIPS 202).
 */

#ifndef CASSANDRA_CRYPTO_REF_KECCAK_HH
#define CASSANDRA_CRYPTO_REF_KECCAK_HH

#include <array>
#include <cstdint>
#include <vector>

namespace cassandra::crypto::ref {

/** In-place Keccak-f[1600] permutation over 25 lanes. */
void keccakF1600(std::array<uint64_t, 25> &state);

std::array<uint8_t, 32> sha3_256(const std::vector<uint8_t> &msg);

/** SHAKE128 XOF. */
std::vector<uint8_t> shake128(const std::vector<uint8_t> &msg,
                              size_t out_len);

/** SHAKE256 XOF. */
std::vector<uint8_t> shake256(const std::vector<uint8_t> &msg,
                              size_t out_len);

} // namespace cassandra::crypto::ref

#endif // CASSANDRA_CRYPTO_REF_KECCAK_HH
