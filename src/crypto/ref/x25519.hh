/**
 * @file
 * Reference X25519 scalar multiplication (RFC 7748) via the constant-
 * time Montgomery ladder over GF(2^255 - 19).
 */

#ifndef CASSANDRA_CRYPTO_REF_X25519_HH
#define CASSANDRA_CRYPTO_REF_X25519_HH

#include <array>
#include <cstdint>

namespace cassandra::crypto::ref {

/** out = scalar * point (u-coordinates, little-endian byte strings). */
std::array<uint8_t, 32> x25519(const uint8_t scalar[32],
                               const uint8_t point[32]);

/** The RFC 7748 base point (u = 9). */
std::array<uint8_t, 32> x25519BasePoint();

} // namespace cassandra::crypto::ref

#endif // CASSANDRA_CRYPTO_REF_X25519_HH
