/**
 * @file
 * Reference DES block cipher (FIPS 46-3). Only encryption of single
 * blocks is needed (the workload mirrors BearSSL's des_ct tests).
 */

#ifndef CASSANDRA_CRYPTO_REF_DES_HH
#define CASSANDRA_CRYPTO_REF_DES_HH

#include <array>
#include <cstdint>
#include <vector>

namespace cassandra::crypto::ref {

/** 16 round keys of 48 bits each. */
using DesRoundKeys = std::array<uint64_t, 16>;

DesRoundKeys desKeySchedule(const uint8_t key[8]);

void desEncryptBlock(const DesRoundKeys &rk, const uint8_t in[8],
                     uint8_t out[8]);

/** ECB over a multiple-of-8 message (enough for the workload). */
std::vector<uint8_t> desEcbEncrypt(const uint8_t key[8],
                                   const std::vector<uint8_t> &msg);

/** The 8 DES S-boxes, flattened as sbox[box][6-bit index]. */
const std::array<std::array<uint8_t, 64>, 8> &desSboxes();

} // namespace cassandra::crypto::ref

#endif // CASSANDRA_CRYPTO_REF_DES_HH
