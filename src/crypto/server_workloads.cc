/**
 * @file
 * Composite server request-mix workloads (the `server/<mix>/<n>`
 * registry family).
 *
 * A mix models what a busy endpoint actually executes, kernel-crypto
 * style: TLS-shaped handshakes (x25519 + kyber768) interleaved with
 * ChaCha20-Poly1305 record processing over n simulated requests. The
 * driver loop and the per-request input seeding come from
 * core::CompositeWorkloadBuilder; every kernel function is the same
 * emitter the single-kernel workloads use.
 *
 * The handshake cadence is fixed at two sessions per run (requests 0
 * and ~n/2) no matter how large n is: session setup is rare relative
 * to record traffic on a real endpoint, and a fixed count keeps the
 * kyber rejection-sampling branches — the only irregular traces in
 * the mix — at an n-independent size, so Algorithm 2 accumulator
 * memory stays flat as n grows. The record segment fires every
 * request; its branch traces are short-period periodic and fold to a
 * few chunks regardless of n.
 */

#include "crypto/kernels/bigint_kernel.hh"
#include "crypto/kernels/chacha20_kernel.hh"
#include "crypto/kernels/common.hh"
#include "crypto/kernels/kyber_kernel.hh"
#include "crypto/kernels/poly1305_kernel.hh"
#include "crypto/ref/x25519.hh"
#include "crypto/workloads.hh"

#include <algorithm>
#include <stdexcept>

namespace cassandra::crypto {

namespace {

/** Record size processed per request (fixed: varying lengths would
 * make the record-loop traces aperiodic and input-dependent). */
constexpr int64_t kRecordBytes = 512;

using core::CompositeWorkloadBuilder;
using core::SegmentBinding;
using core::WorkloadSegment;

WorkloadSegment
tlsHandshakeSegment(uint64_t n)
{
    WorkloadSegment seg;
    seg.name = "handshake";
    seg.every = std::max<uint64_t>(1, (n + 1) / 2);
    seg.emitOnce = [](Assembler &as) {
        emitX25519Ladder(as);
        // Unrolled 8-limb bignum loops: same BTU-friendly layout the
        // single-kernel curve25519 workloads use.
        emitBignum(as, /*unroll_inner=*/true, 8);
        emitKyberHelpers(as, /*k=*/3);
        emitKyberKem(as, /*k=*/3);
        // The ladder masks the point's top bit in place (idempotent,
        // so repeat firings are safe); the base point is program data.
        auto base = ref::x25519BasePoint();
        as.setData("ec_point", 0, base.data(), base.size());
    };
    seg.emitCall = [](Assembler &as) {
        as.call("x25519_ladder");
        as.call("kyber_kem");
    };
    seg.bindings = {
        {"ec_scalar", 0, 32, SegmentBinding::Kind::Secret},
        // Public A-matrix seed: varied across the two analysis inputs
        // so the rejection-sampling branches are flagged
        // input-dependent, exactly like the kyber768 workload.
        {"kb_seed_a", 0, 8, SegmentBinding::Kind::PublicVaried},
        {"kb_seed_n", 0, 8, SegmentBinding::Kind::Secret},
        {"kb_coins", 0, 8, SegmentBinding::Kind::Secret},
        {"kb_msg", 0, 32, SegmentBinding::Kind::Secret},
    };
    seg.annotateSecrets = [](const Assembler &as,
                             std::vector<core::SecretRegion> &out) {
        // curve25519 field-element work buffers hold secret-derived
        // values (same annotation the synthetic curve25519 mix has).
        out.push_back({as.dataAddr("ec_x1"), as.dataAddr("ec_zinv") + 32});
    };
    // One x25519 ladder (~3M) + one kyber768 keygen/enc/dec (~9M).
    seg.instsPerFiring = 13'000'000;
    return seg;
}

WorkloadSegment
tlsRecordSegment()
{
    WorkloadSegment seg;
    seg.name = "record";
    seg.every = 1;
    seg.emitOnce = [](Assembler &as) {
        emitChaCha20(as, /*unroll_rounds=*/false);
        emitPoly1305(as);
        as.allocData("sv_key", 32, 8);
        as.allocData("sv_nonce", 16, 8);
        as.allocData("sv_msg", static_cast<size_t>(kRecordBytes), 64);
        as.allocData("sv_out", static_cast<size_t>(kRecordBytes), 64);
        as.allocData("sv_tag", 16, 8);
        as.allocData("sv_polykey", 32, 8);
    };
    seg.emitCall = [](Assembler &as) {
        // Encrypt one record with the request index as block counter,
        // then MAC the ciphertext.
        {
            casm::Assembler::Temp t(as);
            as.la(t, "cw_req");
            as.ld(a5, t, 0);
        }
        as.addi(a5, a5, 1);
        as.la(a0, "sv_out");
        as.la(a1, "sv_msg");
        as.li(a2, kRecordBytes);
        as.la(a3, "sv_key");
        as.la(a4, "sv_nonce");
        as.call("chacha20_xor");
        as.la(a0, "sv_tag");
        as.la(a1, "sv_polykey");
        as.la(a2, "sv_out");
        as.li(a3, kRecordBytes);
        as.call("poly1305");
    };
    seg.bindings = {
        {"sv_key", 0, 32, SegmentBinding::Kind::Secret},
        {"sv_msg", 0, static_cast<size_t>(kRecordBytes),
         SegmentBinding::Kind::Secret},
        {"sv_polykey", 0, 32, SegmentBinding::Kind::Secret},
        {"sv_nonce", 0, 16, SegmentBinding::Kind::PublicFixed},
    };
    // chacha20 over 512 B (~10k) + poly1305 over 512 B (~6k) + fills.
    seg.instsPerFiring = 60'000;
    return seg;
}

} // namespace

Workload
serverMixWorkload(const std::string &mix, uint64_t n)
{
    if (mix != "tls")
        throw std::invalid_argument("unknown server mix: " + mix);
    CompositeWorkloadBuilder builder(
        "server/" + mix + "/" + std::to_string(n), "Server", n);
    builder.addSegment(tlsHandshakeSegment(n));
    builder.addSegment(tlsRecordSegment());
    // curve25519 spills secret field elements to the stack (same
    // annotation the synthetic curve25519 mixes carry).
    builder.addSecretRegion(
        {ir::Program::stackTop - 65536, ir::Program::stackTop});
    return builder.build();
}

} // namespace cassandra::crypto
