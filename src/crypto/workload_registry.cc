#include "crypto/workload_registry.hh"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "crypto/workloads.hh"

namespace cassandra::crypto {

namespace {

std::string
lowered(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

WorkloadRegistry
buildGlobal()
{
    WorkloadRegistry reg;
    // BearSSL suite (Fig. 7 / Table 1 order).
    reg.add("AES_CTR", "BearSSL", aesCtrWorkload);
    reg.add("CBC_ct", "BearSSL", cbcCtWorkload);
    reg.add("ChaCha20_ct", "BearSSL", chacha20CtWorkload);
    reg.add("DES_ct", "BearSSL", desCtWorkload);
    reg.add("EC_c25519_i31", "BearSSL", ecC25519Workload);
    reg.add("ECDSA_i31", "BearSSL", ecdsaWorkload);
    reg.add("ModPow_i31", "BearSSL", modPowWorkload);
    reg.add("MultiHash", "BearSSL", multiHashWorkload);
    reg.add("Poly1305_ctmul", "BearSSL", poly1305Workload);
    reg.add("RSA_i62", "BearSSL", rsaWorkload);
    reg.add("SHA-256", "BearSSL", sha256BearsslWorkload);
    reg.add("SHAKE", "BearSSL", shakeWorkload);
    reg.add("TLS PRF", "BearSSL", tlsPrfWorkload);
    // OpenSSL suite.
    reg.add("chacha20", "OpenSSL", chacha20OpensslWorkload);
    reg.add("curve25519", "OpenSSL", curve25519OpensslWorkload);
    reg.add("sha256", "OpenSSL", sha256OpensslWorkload);
    // PQC suite (parameterized kernels bound per entry).
    reg.add("kyber512", "PQC", [] { return kyberWorkload(2); });
    reg.add("kyber768", "PQC", [] { return kyberWorkload(3); });
    reg.add("sphincs-haraka-128s", "PQC",
            [] { return sphincsWorkload("haraka"); });
    reg.add("sphincs-sha2-128s", "PQC",
            [] { return sphincsWorkload("sha2"); });
    reg.add("sphincs-shake-128s", "PQC",
            [] { return sphincsWorkload("shake"); });
    // SpectreGuard-style synthetic mixes (Fig. 8 grid).
    for (const char *kernel : {"chacha20", "curve25519"}) {
        for (int pct : {90, 75, 50, 25, 0}) {
            std::string name = std::string("synthetic/") + kernel + "/" +
                std::to_string(pct);
            reg.add(name, "Synthetic", [kernel, pct] {
                return syntheticMixWorkload(kernel, pct);
            });
        }
    }
    // Composite server request mixes (standard sizes; any other n is
    // reachable through the server/<mix>/<n> parameterized fallback).
    for (uint64_t n : {16u, 64u, 256u}) {
        std::string name = "server/tls/" + std::to_string(n);
        reg.add(name, "Server", [n] { return serverMixWorkload("tls", n); });
    }
    return reg;
}

} // namespace

const WorkloadRegistry &
WorkloadRegistry::global()
{
    static const WorkloadRegistry reg = buildGlobal();
    return reg;
}

void
WorkloadRegistry::add(std::string name, std::string suite, Factory factory)
{
    std::string key = lowered(name);
    auto it = index_.find(key);
    if (it != index_.end()) {
        entries_[it->second] =
            Entry{std::move(name), std::move(suite), std::move(factory)};
        return;
    }
    index_.emplace(std::move(key), entries_.size());
    entries_.push_back(
        Entry{std::move(name), std::move(suite), std::move(factory)});
}

const WorkloadRegistry::Entry *
WorkloadRegistry::find(const std::string &name) const
{
    auto it = index_.find(lowered(name));
    return it == index_.end() ? nullptr : &entries_[it->second];
}

bool
WorkloadRegistry::parseSynthetic(const std::string &name,
                                 std::string &kernel, int &pct)
{
    const std::string prefix = "synthetic/";
    if (name.compare(0, prefix.size(), prefix) != 0)
        return false;
    size_t slash = name.find('/', prefix.size());
    if (slash == std::string::npos || slash + 1 >= name.size())
        return false;
    kernel = name.substr(prefix.size(), slash - prefix.size());
    const std::string pct_str = name.substr(slash + 1);
    // Valid percentages are 0..99: at most two digits.
    if (pct_str.empty() || pct_str.size() > 2 ||
        !std::all_of(pct_str.begin(), pct_str.end(),
                     [](unsigned char c) { return std::isdigit(c); }))
        return false;
    pct = std::stoi(pct_str);
    return kernel == "chacha20" || kernel == "curve25519";
}

bool
WorkloadRegistry::parseServer(const std::string &name, std::string &mix,
                              uint64_t &n)
{
    const std::string prefix = "server/";
    if (name.compare(0, prefix.size(), prefix) != 0)
        return false;
    size_t slash = name.find('/', prefix.size());
    if (slash == std::string::npos || slash + 1 >= name.size())
        return false;
    mix = name.substr(prefix.size(), slash - prefix.size());
    const std::string n_str = name.substr(slash + 1);
    // Canonical request counts: 1..999999, no leading zeros (one
    // spelling per workload keeps fingerprints and cache keys unique).
    if (n_str.empty() || n_str.size() > 6 || n_str[0] == '0' ||
        !std::all_of(n_str.begin(), n_str.end(),
                     [](unsigned char c) { return std::isdigit(c); }))
        return false;
    n = std::stoull(n_str);
    return mix == "tls";
}

bool
WorkloadRegistry::contains(const std::string &name) const
{
    std::string kernel;
    int pct = 0;
    std::string mix;
    uint64_t n = 0;
    return find(name) != nullptr ||
        parseSynthetic(lowered(name), kernel, pct) ||
        parseServer(lowered(name), mix, n);
}

core::Workload
WorkloadRegistry::make(const std::string &name) const
{
    if (const Entry *e = find(name))
        return e->factory();

    // Parameterized fallbacks: any synthetic/<kernel>/<pct> or
    // server/<mix>/<n> name.
    std::string kernel;
    int pct = 0;
    if (parseSynthetic(lowered(name), kernel, pct))
        return syntheticMixWorkload(kernel, pct);
    std::string mix;
    uint64_t n = 0;
    if (parseServer(lowered(name), mix, n))
        return serverMixWorkload(mix, n);

    std::ostringstream msg;
    msg << "unknown workload \"" << name << "\"; known workloads:";
    for (const Entry &e : entries_)
        msg << " " << e.name;
    throw std::invalid_argument(msg.str());
}

const std::string &
WorkloadRegistry::suiteOf(const std::string &name) const
{
    if (const Entry *e = find(name))
        return e->suite;
    static const std::string synthetic = "Synthetic";
    std::string kernel;
    int pct = 0;
    if (parseSynthetic(lowered(name), kernel, pct))
        return synthetic;
    static const std::string server = "Server";
    std::string mix;
    uint64_t n = 0;
    if (parseServer(lowered(name), mix, n))
        return server;
    throw std::invalid_argument("unknown workload \"" + name + "\"");
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.name);
    return out;
}

std::vector<std::string>
WorkloadRegistry::names(const std::string &suite) const
{
    std::vector<std::string> out;
    for (const Entry &e : entries_) {
        if (e.suite == suite)
            out.push_back(e.name);
    }
    return out;
}

std::vector<std::string>
WorkloadRegistry::suites() const
{
    std::vector<std::string> out;
    for (const Entry &e : entries_) {
        if (std::find(out.begin(), out.end(), e.suite) == out.end())
            out.push_back(e.suite);
    }
    return out;
}

std::vector<core::Workload>
WorkloadRegistry::makeSuite(const std::string &suite) const
{
    std::vector<core::Workload> out;
    for (const Entry &e : entries_) {
        if (e.suite == suite)
            out.push_back(e.factory());
    }
    return out;
}

std::function<core::Workload(const std::string &)>
WorkloadRegistry::resolver() const
{
    return [this](const std::string &name) { return make(name); };
}

} // namespace cassandra::crypto
