#include "ir/program.hh"

#include <iomanip>
#include <sstream>

namespace cassandra::ir {

std::string
Program::functionAt(uint64_t pc) const
{
    for (const auto &f : functions) {
        if (pc >= f.entry && pc < f.end)
            return f.name;
    }
    return "?";
}

std::string
Program::disassemble() const
{
    std::ostringstream os;
    // Invert the label map for annotation.
    std::map<uint64_t, std::vector<std::string>> by_pc;
    for (const auto &[name, pc] : labels)
        by_pc[pc].push_back(name);

    for (size_t i = 0; i < insts.size(); i++) {
        uint64_t pc = pcOf(i);
        auto it = by_pc.find(pc);
        if (it != by_pc.end()) {
            for (const auto &name : it->second)
                os << name << ":\n";
        }
        os << "  0x" << std::hex << std::setw(6) << std::setfill('0') << pc
           << std::dec << std::setfill(' ') << "  "
           << (isCryptoPc(pc) ? "[k] " : "    ") << insts[i].toString()
           << "\n";
    }
    return os.str();
}

} // namespace cassandra::ir
