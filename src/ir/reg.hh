/**
 * @file
 * Register identifiers for the Cassandra IR.
 *
 * The IR models a RISC-like machine with 64 general-purpose 64-bit
 * integer registers. Register x0 is hard-wired to zero (writes are
 * discarded), mirroring RISC-V. A light-weight software calling
 * convention is defined on top: x1 is the link register, x2 the stack
 * pointer, x10..x17 are argument/return registers and x18..x63 are
 * general scratch/saved registers (the macro-assembler's register
 * allocator manages them; there is no hardware distinction).
 */

#ifndef CASSANDRA_IR_REG_HH
#define CASSANDRA_IR_REG_HH

#include <cstdint>
#include <string>

namespace cassandra::ir {

/** Number of architectural integer registers. */
inline constexpr int numRegs = 64;

/** A register identifier; valid values are 0..numRegs-1. */
using RegId = uint8_t;

/** The always-zero register. */
inline constexpr RegId regZero = 0;
/** Link register (written by call instructions). */
inline constexpr RegId regRa = 1;
/** Stack pointer by convention. */
inline constexpr RegId regSp = 2;
/** First argument/return register; a0..a7 are x10..x17. */
inline constexpr RegId regA0 = 10;

/** Return the conventional assembly name of a register (x0, ra, sp, a0..). */
std::string regName(RegId reg);

} // namespace cassandra::ir

#endif // CASSANDRA_IR_REG_HH
