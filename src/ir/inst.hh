/**
 * @file
 * Instruction definitions for the Cassandra IR.
 *
 * The instruction set is a 64-bit RISC-like subset extended with the
 * constant-time conveniences cryptographic kernels rely on (rotates and
 * a conditional move). Control flow instructions carry absolute target
 * PCs after assembly; every instruction occupies instBytes bytes of the
 * (fictional) code address space so that PCs look like real addresses.
 */

#ifndef CASSANDRA_IR_INST_HH
#define CASSANDRA_IR_INST_HH

#include <cstdint>
#include <string>

#include "ir/reg.hh"

namespace cassandra::ir {

/** Byte size of every instruction; PCs advance by this amount. */
inline constexpr uint64_t instBytes = 4;

/** Opcodes of the Cassandra IR. */
enum class Opcode : uint8_t
{
    // ALU, register-register
    Add, Sub, And, Or, Xor, Shl, Shr, Sar, Rotl, Rotr,
    Mul, Mulh, Mulhu, Slt, Sltu,
    // 32-bit word forms (results zero-extended to 64 bits)
    Addw, Subw, Mulw,
    // ALU, register-immediate
    Addi, Andi, Ori, Xori, Shli, Shri, Sari, Rotli, Slti, Sltiu,
    // 32-bit word immediate forms
    Addiw, Rotlwi,
    // Constant generation
    Li,
    /**
     * Constant-time conditional move: rd = (regs[rs1] != 0) ? regs[rs2]
     * : rd. Reads rd as an implicit source (like x86 CMOV); executes in
     * constant time regardless of the condition.
     */
    Cmovnz,
    // Memory: 64/32/16/8-bit loads (zero-extending) and stores
    Ld, Lw, Lh, Lb,
    Sd, Sw, Sh, Sb,
    // Control flow
    Beq, Bne, Blt, Bge, Bltu, Bgeu,  ///< conditional direct branches
    Jal,                             ///< direct call/jump, writes link
    Jalr,                            ///< indirect call/jump via register
    Ret,                             ///< return (pops the RSB)
    // Misc
    Nop, Halt,
};

/** Broad execution class used by the timing model and the tracer. */
enum class ExecClass : uint8_t
{
    IntAlu,
    IntMul,
    Load,
    Store,
    CondBranch,
    DirectJump,   ///< JAL (call or unconditional jump)
    IndirectJump, ///< JALR
    Return,
    Nop,
    Halt,
};

/** A single IR instruction. */
struct Inst
{
    Opcode op = Opcode::Nop;
    RegId rd = 0;
    RegId rs1 = 0;
    RegId rs2 = 0;
    /**
     * Immediate operand. For ALU-immediate ops this is the literal; for
     * memory ops the address offset; for direct control flow the
     * absolute target PC (after label resolution); for Jalr the offset
     * added to regs[rs1].
     */
    int64_t imm = 0;

    /** Execution class of this opcode. */
    ExecClass execClass() const;

    /** True for any instruction that can redirect the PC. */
    bool isControlFlow() const;
    /** True for conditional direct branches. */
    bool isCondBranch() const;
    /** True for Jal with rd != x0 (a call that pushes the RSB). */
    bool isCall() const;
    /** True for Ret. */
    bool isReturn() const;
    /** True for Jalr. */
    bool isIndirect() const;
    /** True for loads. */
    bool isLoad() const;
    /** True for stores. */
    bool isStore() const;
    /** Byte width of a memory access (0 for non-memory ops). */
    int memBytes() const;

    /** Human-readable disassembly (targets printed as hex PCs). */
    std::string toString() const;
};

/** Mnemonic of an opcode. */
std::string opcodeName(Opcode op);

} // namespace cassandra::ir

#endif // CASSANDRA_IR_INST_HH
