/**
 * @file
 * Instruction definitions for the Cassandra IR.
 *
 * The instruction set is a 64-bit RISC-like subset extended with the
 * constant-time conveniences cryptographic kernels rely on (rotates and
 * a conditional move). Control flow instructions carry absolute target
 * PCs after assembly; every instruction occupies instBytes bytes of the
 * (fictional) code address space so that PCs look like real addresses.
 */

#ifndef CASSANDRA_IR_INST_HH
#define CASSANDRA_IR_INST_HH

#include <cstdint>
#include <string>

#include "ir/reg.hh"

namespace cassandra::ir {

/** Byte size of every instruction; PCs advance by this amount. */
inline constexpr uint64_t instBytes = 4;

/** Opcodes of the Cassandra IR. */
enum class Opcode : uint8_t
{
    // ALU, register-register
    Add, Sub, And, Or, Xor, Shl, Shr, Sar, Rotl, Rotr,
    Mul, Mulh, Mulhu, Slt, Sltu,
    // 32-bit word forms (results zero-extended to 64 bits)
    Addw, Subw, Mulw,
    // ALU, register-immediate
    Addi, Andi, Ori, Xori, Shli, Shri, Sari, Rotli, Slti, Sltiu,
    // 32-bit word immediate forms
    Addiw, Rotlwi,
    // Constant generation
    Li,
    /**
     * Constant-time conditional move: rd = (regs[rs1] != 0) ? regs[rs2]
     * : rd. Reads rd as an implicit source (like x86 CMOV); executes in
     * constant time regardless of the condition.
     */
    Cmovnz,
    // Memory: 64/32/16/8-bit loads (zero-extending) and stores
    Ld, Lw, Lh, Lb,
    Sd, Sw, Sh, Sb,
    // Control flow
    Beq, Bne, Blt, Bge, Bltu, Bgeu,  ///< conditional direct branches
    Jal,                             ///< direct call/jump, writes link
    Jalr,                            ///< indirect call/jump via register
    Ret,                             ///< return (pops the RSB)
    // Misc
    Nop, Halt,
};

/** Broad execution class used by the timing model and the tracer. */
enum class ExecClass : uint8_t
{
    IntAlu,
    IntMul,
    Load,
    Store,
    CondBranch,
    DirectJump,   ///< JAL (call or unconditional jump)
    IndirectJump, ///< JALR
    Return,
    Nop,
    Halt,
};

/** A single IR instruction. */
struct Inst
{
    Opcode op = Opcode::Nop;
    RegId rd = 0;
    RegId rs1 = 0;
    RegId rs2 = 0;
    /**
     * Immediate operand. For ALU-immediate ops this is the literal; for
     * memory ops the address offset; for direct control flow the
     * absolute target PC (after label resolution); for Jalr the offset
     * added to regs[rs1].
     */
    int64_t imm = 0;

    // The class/width predicates are queried several times per dynamic
    // op by the replay loop (~80M calls per CI sweep), so they must
    // inline to a switch the compiler can lower to a table load; only
    // the string formatting stays out of line.

    /** Execution class of this opcode. */
    constexpr ExecClass
    execClass() const
    {
        switch (op) {
          case Opcode::Mul:
          case Opcode::Mulh:
          case Opcode::Mulhu:
          case Opcode::Mulw:
            return ExecClass::IntMul;
          case Opcode::Ld:
          case Opcode::Lw:
          case Opcode::Lh:
          case Opcode::Lb:
            return ExecClass::Load;
          case Opcode::Sd:
          case Opcode::Sw:
          case Opcode::Sh:
          case Opcode::Sb:
            return ExecClass::Store;
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge:
          case Opcode::Bltu:
          case Opcode::Bgeu:
            return ExecClass::CondBranch;
          case Opcode::Jal:
            return ExecClass::DirectJump;
          case Opcode::Jalr:
            return ExecClass::IndirectJump;
          case Opcode::Ret:
            return ExecClass::Return;
          case Opcode::Nop:
            return ExecClass::Nop;
          case Opcode::Halt:
            return ExecClass::Halt;
          default:
            return ExecClass::IntAlu;
        }
    }

    /** True for any instruction that can redirect the PC. */
    constexpr bool
    isControlFlow() const
    {
        const ExecClass cls = execClass();
        return cls == ExecClass::CondBranch ||
            cls == ExecClass::DirectJump ||
            cls == ExecClass::IndirectJump || cls == ExecClass::Return;
    }

    /** True for conditional direct branches. */
    constexpr bool
    isCondBranch() const
    {
        return execClass() == ExecClass::CondBranch;
    }

    /** True for Jal with rd != x0 (a call that pushes the RSB). */
    constexpr bool
    isCall() const
    {
        return op == Opcode::Jal && rd != regZero;
    }

    /** True for Ret. */
    constexpr bool
    isReturn() const
    {
        return op == Opcode::Ret;
    }

    /** True for Jalr. */
    constexpr bool
    isIndirect() const
    {
        return op == Opcode::Jalr;
    }

    /** True for loads. */
    constexpr bool
    isLoad() const
    {
        return execClass() == ExecClass::Load;
    }

    /** True for stores. */
    constexpr bool
    isStore() const
    {
        return execClass() == ExecClass::Store;
    }

    /** Byte width of a memory access (0 for non-memory ops). */
    constexpr int
    memBytes() const
    {
        switch (op) {
          case Opcode::Ld:
          case Opcode::Sd:
            return 8;
          case Opcode::Lw:
          case Opcode::Sw:
            return 4;
          case Opcode::Lh:
          case Opcode::Sh:
            return 2;
          case Opcode::Lb:
          case Opcode::Sb:
            return 1;
          default:
            return 0;
        }
    }

    /** Human-readable disassembly (targets printed as hex PCs). */
    std::string toString() const;
};

/** Mnemonic of an opcode. */
std::string opcodeName(Opcode op);

} // namespace cassandra::ir

#endif // CASSANDRA_IR_INST_HH
