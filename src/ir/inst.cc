#include "ir/inst.hh"

#include <array>
#include <sstream>

namespace cassandra::ir {

std::string
regName(RegId reg)
{
    if (reg == regZero)
        return "x0";
    if (reg == regRa)
        return "ra";
    if (reg == regSp)
        return "sp";
    if (reg >= regA0 && reg < regA0 + 8)
        return "a" + std::to_string(reg - regA0);
    return "x" + std::to_string(reg);
}

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Sar: return "sar";
      case Opcode::Rotl: return "rotl";
      case Opcode::Rotr: return "rotr";
      case Opcode::Mul: return "mul";
      case Opcode::Mulh: return "mulh";
      case Opcode::Mulhu: return "mulhu";
      case Opcode::Slt: return "slt";
      case Opcode::Sltu: return "sltu";
      case Opcode::Addw: return "addw";
      case Opcode::Subw: return "subw";
      case Opcode::Mulw: return "mulw";
      case Opcode::Addiw: return "addiw";
      case Opcode::Rotlwi: return "rotlwi";
      case Opcode::Addi: return "addi";
      case Opcode::Andi: return "andi";
      case Opcode::Ori: return "ori";
      case Opcode::Xori: return "xori";
      case Opcode::Shli: return "shli";
      case Opcode::Shri: return "shri";
      case Opcode::Sari: return "sari";
      case Opcode::Rotli: return "rotli";
      case Opcode::Slti: return "slti";
      case Opcode::Sltiu: return "sltiu";
      case Opcode::Li: return "li";
      case Opcode::Cmovnz: return "cmovnz";
      case Opcode::Ld: return "ld";
      case Opcode::Lw: return "lw";
      case Opcode::Lh: return "lh";
      case Opcode::Lb: return "lb";
      case Opcode::Sd: return "sd";
      case Opcode::Sw: return "sw";
      case Opcode::Sh: return "sh";
      case Opcode::Sb: return "sb";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Bltu: return "bltu";
      case Opcode::Bgeu: return "bgeu";
      case Opcode::Jal: return "jal";
      case Opcode::Jalr: return "jalr";
      case Opcode::Ret: return "ret";
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
    }
    return "???";
}

std::string
Inst::toString() const
{
    std::ostringstream os;
    os << opcodeName(op);
    switch (execClass()) {
      case ExecClass::IntAlu:
      case ExecClass::IntMul:
        if (op == Opcode::Li) {
            os << " " << regName(rd) << ", " << imm;
        } else if (op == Opcode::Nop) {
            // nothing
        } else if (op == Opcode::Cmovnz) {
            os << " " << regName(rd) << ", " << regName(rs1) << ", "
               << regName(rs2);
        } else {
            os << " " << regName(rd) << ", " << regName(rs1);
            switch (op) {
              case Opcode::Addi: case Opcode::Andi: case Opcode::Ori:
              case Opcode::Xori: case Opcode::Shli: case Opcode::Shri:
              case Opcode::Sari: case Opcode::Rotli: case Opcode::Slti:
              case Opcode::Sltiu: case Opcode::Addiw: case Opcode::Rotlwi:
                os << ", " << imm;
                break;
              default:
                os << ", " << regName(rs2);
            }
        }
        break;
      case ExecClass::Load:
        os << " " << regName(rd) << ", " << imm << "(" << regName(rs1)
           << ")";
        break;
      case ExecClass::Store:
        os << " " << regName(rs2) << ", " << imm << "(" << regName(rs1)
           << ")";
        break;
      case ExecClass::CondBranch:
        os << " " << regName(rs1) << ", " << regName(rs2) << ", 0x"
           << std::hex << imm;
        break;
      case ExecClass::DirectJump:
        os << " " << regName(rd) << ", 0x" << std::hex << imm;
        break;
      case ExecClass::IndirectJump:
        os << " " << regName(rd) << ", " << regName(rs1) << ", " << imm;
        break;
      default:
        break;
    }
    return os.str();
}

} // namespace cassandra::ir
