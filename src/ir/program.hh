/**
 * @file
 * Program container for the Cassandra IR.
 *
 * A Program is the output of the macro-assembler: a code segment
 * (vector of instructions, PC = index * instBytes + codeBase), a data
 * segment initialization image, symbol tables for labels and functions,
 * and the crypto PC ranges that a Cassandra-enabled processor keeps in
 * its Crypto PC Ranges status register (see paper §5.2).
 */

#ifndef CASSANDRA_IR_PROGRAM_HH
#define CASSANDRA_IR_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/inst.hh"

namespace cassandra::ir {

/** A half-open PC interval [lo, hi) marking crypto-tagged code. */
struct PcRange
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    bool contains(uint64_t pc) const { return pc >= lo && pc < hi; }
};

/** A named function symbol spanning [entry, end) in the code segment. */
struct FuncSymbol
{
    std::string name;
    uint64_t entry = 0;
    uint64_t end = 0;
};

/** An assembled program. */
class Program
{
  public:
    /** Base address of the code segment. */
    static constexpr uint64_t codeBase = 0x10000;
    /** Base address of the data segment. */
    static constexpr uint64_t dataBase = 0x100000;
    /** Base address of the (downward-growing) stack. */
    static constexpr uint64_t stackTop = 0x8000000;

    std::vector<Inst> insts;
    /** Initial contents of the data segment, starting at dataBase. */
    std::vector<uint8_t> dataImage;
    /** Label name -> PC. */
    std::map<std::string, uint64_t> labels;
    /** Function symbols in code order. */
    std::vector<FuncSymbol> functions;
    /** PC ranges tagged as crypto code (paper's @kappa tag). */
    std::vector<PcRange> cryptoRanges;
    /** Entry PC. */
    uint64_t entry = codeBase;

    /** Number of instructions. */
    size_t size() const { return insts.size(); }

    /** True if pc maps to a valid instruction slot. */
    bool
    validPc(uint64_t pc) const
    {
        return pc >= codeBase && pc < codeBase + insts.size() * instBytes &&
            (pc - codeBase) % instBytes == 0;
    }

    /** Instruction at a given PC; pc must be valid. */
    const Inst &
    at(uint64_t pc) const
    {
        return insts[(pc - codeBase) / instBytes];
    }

    /** PC of the i-th instruction. */
    static uint64_t
    pcOf(size_t index)
    {
        return codeBase + index * instBytes;
    }

    /** True if pc lies in any crypto range. */
    bool
    isCryptoPc(uint64_t pc) const
    {
        for (const auto &r : cryptoRanges) {
            if (r.contains(pc))
                return true;
        }
        return false;
    }

    /** Name of the function containing pc, or "?" if none. */
    std::string functionAt(uint64_t pc) const;

    /** Full disassembly listing (for debugging and examples). */
    std::string disassemble() const;
};

} // namespace cassandra::ir

#endif // CASSANDRA_IR_PROGRAM_HH
