/**
 * @file
 * Trace-driven out-of-order core timing model.
 *
 * The model replays the dynamic instruction stream produced by the
 * functional simulator and computes, for every instruction, its fetch,
 * dispatch, issue, completion and commit times under the configured
 * resources (widths, ROB/IQ/LQ/SQ/RF, functional units, caches) and the
 * configured protection scheme:
 *
 *  - UnsafeBaseline: LTAGE + BTB + RSB predict everything; mispredicted
 *    branches stall fetch until they resolve (trace-driven squash
 *    model) and pay a pipeline-refill redirect penalty.
 *  - Cassandra: crypto branches never touch the BPU; the BTU supplies
 *    the exact sequential target (hint word for single-target branches,
 *    TRC/PAT replay otherwise). Input-dependent branches stall fetch
 *    until they resolve. Non-crypto branches whose *predicted* target
 *    lies in a crypto PC range stall until resolved (integrity check,
 *    scenarios 5/6 of the security analysis).
 *  - CassandraStl: Cassandra plus data-flow hardening — loads never
 *    forward from the store queue (they always access memory) and wait
 *    until all older stores have resolved.
 *  - CassandraLite: only single-target hints; multi-target crypto
 *    branches stall until resolve (paper Q3).
 *  - Spt: loads may only issue once every older branch has resolved
 *    (transmitters delayed while speculative under a constant-time
 *    policy, where every register is potentially secret).
 *  - Prospect: instructions with tainted operands may only issue once
 *    every older branch has resolved; taint originates at loads from
 *    annotated secret regions, propagates through registers and memory,
 *    and registers are declassified when execution leaves a crypto
 *    region.
 *  - CassandraProspect: Prospect rules, but crypto branches are
 *    resolved by the BTU and therefore never open a speculation window.
 */

#ifndef CASSANDRA_UARCH_PIPELINE_HH
#define CASSANDRA_UARCH_PIPELINE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "btu/btu.hh"
#include "core/sim_config.hh"
#include "core/trace_image.hh"
#include "core/workload.hh"
#include "uarch/bpu.hh"
#include "uarch/cache.hh"
#include "uarch/params.hh"

namespace cassandra::uarch {

/** One dynamic instruction of the timing trace. */
struct TimingOp
{
    uint64_t pc = 0;
    uint64_t memAddr = 0;
    uint64_t nextPc = 0;
    const ir::Inst *inst = nullptr;
    bool crypto = false;
    bool tainted = false; ///< ProSpeCT: a source operand holds a secret
};

using TimingTrace = std::vector<TimingOp>;

/**
 * Ops per nextBatch() request on the replay hot path: 4K ops keep the
 * six parallel arrays (~100 KiB live) L2-resident while amortizing the
 * per-batch virtual dispatch to nothing.
 */
inline constexpr size_t timingOpBatchOps = 4096;

/**
 * A structure-of-arrays view of a run of consecutive timing ops:
 * parallel `pc`/`memAddr`/`nextPc`/`inst`/flag arrays of `size`
 * elements. The arrays are owned by the producing TimingOpSource and
 * stay valid until its next nextBatch()/next() call.
 */
struct OpBatch
{
    const uint64_t *pc = nullptr;
    const uint64_t *memAddr = nullptr;
    const uint64_t *nextPc = nullptr;
    const ir::Inst *const *inst = nullptr;
    const uint8_t *crypto = nullptr;  ///< 0/1 per op
    const uint8_t *tainted = nullptr; ///< 0/1 per op (ProSpeCT)
    size_t size = 0;
};

/** Owning backing store for an OpBatch (one array per column). */
struct OpBatchStorage
{
    std::vector<uint64_t> pc;
    std::vector<uint64_t> memAddr;
    std::vector<uint64_t> nextPc;
    std::vector<const ir::Inst *> inst;
    std::vector<uint8_t> crypto;
    std::vector<uint8_t> tainted;

    void
    resize(size_t n)
    {
        pc.resize(n);
        memAddr.resize(n);
        nextPc.resize(n);
        inst.resize(n);
        crypto.resize(n);
        tainted.resize(n);
    }

    /** View of elements [offset, offset + n). */
    OpBatch
    view(size_t offset, size_t n) const
    {
        OpBatch b;
        b.pc = pc.data() + offset;
        b.memAddr = memAddr.data() + offset;
        b.nextPc = nextPc.data() + offset;
        b.inst = inst.data() + offset;
        b.crypto = crypto.data() + offset;
        b.tainted = tainted.data() + offset;
        b.size = n;
        return b;
    }
};

/**
 * A forward-only stream of timing ops. The timing model and the taint
 * pre-pass consume traces exclusively through this interface, so a
 * whole in-memory trace and a chunked on-disk trace (core/trace_stream
 * TraceCursor) replay through identical code and produce bit-identical
 * results.
 */
class TimingOpSource
{
  public:
    virtual ~TimingOpSource() = default;

    /**
     * The next op of the stream, nullptr at the end. The returned
     * pointer stays valid until the following next() call.
     */
    virtual const TimingOp *next() = 0;

    /**
     * Bulk form: fill `out` with the next run of up to `max_ops` ops
     * and return its size (0 only at end of stream). The view stays
     * valid until the following nextBatch()/next() call; next() and
     * nextBatch() share one stream position and may be interleaved.
     *
     * The default implementation adapts next() one op at a time — it
     * is the scalar reference the batched overrides are tested
     * against. Sources with a native batch decode override it.
     */
    virtual size_t nextBatch(OpBatch &out, size_t max_ops);

  private:
    /** Lazily-allocated storage of the default nextBatch(). */
    std::unique_ptr<OpBatchStorage> fallback_;
};

/** Transpose a whole in-memory trace into SoA columns (resizes `out`).
 * Produces exactly the columns TraceSpanSource::nextBatch would. */
void buildOpBatchStorage(const TimingTrace &trace, OpBatchStorage &out);

/** TimingOpSource over an in-memory trace. */
class TraceSpanSource final : public TimingOpSource
{
  public:
    explicit TraceSpanSource(const TimingTrace &trace) : trace_(trace) {}

    /**
     * Shares a prebuilt whole-trace SoA mirror (buildOpBatchStorage of
     * the same trace, which must outlive the source): nextBatch serves
     * zero-copy views into it instead of transposing per batch, so a
     * trace replayed by many cells is transposed once, not per run.
     */
    TraceSpanSource(const TimingTrace &trace, const OpBatchStorage &soa)
        : trace_(trace), shared_(&soa)
    {
    }

    const TimingOp *
    next() override
    {
        return pos_ < trace_.size() ? &trace_[pos_++] : nullptr;
    }

    /** Native batch path: shared-mirror views, or one AoS -> SoA
     * transpose per batch without a mirror. */
    size_t nextBatch(OpBatch &out, size_t max_ops) override;

  private:
    const TimingTrace &trace_;
    const OpBatchStorage *shared_ = nullptr;
    size_t pos_ = 0;
    OpBatchStorage soa_;
};

/**
 * Per-op taint flags at one bit per op (vs. the ~40 B/op cost of a
 * duplicated taint-annotated trace). Bit i holds the ProSpeCT
 * source-operand taint of dynamic op i.
 */
class TaintBitmap
{
  public:
    TaintBitmap() = default;
    explicit TaintBitmap(size_t ops)
        : size_(ops), words_((ops + 63) / 64, 0)
    {
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void set(size_t i) { words_[i >> 6] |= 1ull << (i & 63); }

    /**
     * Build from preassembled 64-bit words, bit i of word i/64 being
     * op i's taint (the fused analysis pass accumulates words without
     * knowing the final op count). Words are padded/truncated to the
     * op count; bits at or beyond `ops` must be zero.
     */
    static TaintBitmap
    fromWords(size_t ops, std::vector<uint64_t> words)
    {
        TaintBitmap b;
        b.size_ = ops;
        words.resize((ops + 63) / 64, 0);
        b.words_ = std::move(words);
        return b;
    }

    bool
    test(size_t i) const
    {
        return i < size_ && ((words_[i >> 6] >> (i & 63)) & 1) != 0;
    }

    /** Number of tainted ops. */
    uint64_t count() const;

  private:
    size_t size_ = 0;
    std::vector<uint64_t> words_;
};

/**
 * Incremental form of the taint walk behind annotateTaint and
 * computeTaintBitmap: feed() consumes one executed op and returns its
 * source-operand taint. Both the scalar walkers and the fused
 * analysis pipeline's batch consumer drive this one state machine, so
 * their verdicts are bit-for-bit equal by construction. `regions`
 * must outlive the walker.
 */
class TaintWalker
{
  public:
    explicit TaintWalker(const std::vector<core::SecretRegion> &regions)
        : regions_(&regions)
    {
    }

    /** One op in execution order: its instruction, effective memory
     * address (loads/stores) and whether its pc is in a crypto range.
     * Returns the op's source-operand taint; updates the walk state. */
    bool feed(const ir::Inst &inst, uint64_t mem_addr, bool crypto);

  private:
    bool memIsTainted(uint64_t addr, int bytes) const;

    const std::vector<core::SecretRegion> *regions_;
    std::array<bool, ir::numRegs> regTaint_{};
    std::unordered_set<uint64_t> memTaint_; ///< 8-byte granules
    bool prevCrypto_ = false;
};

/**
 * Record the dynamic instruction stream of a workload run (evaluation
 * input by default).
 */
TimingTrace recordTrace(const core::Workload &workload, int which = 2);

/**
 * Streaming form: feed every op to `sink` instead of materializing a
 * vector (the op's inst pointer is valid during the callback). Returns
 * the number of ops recorded. This is the memory-lean producer behind
 * TraceMode::Stream.
 */
/**
 * Record the evaluation trace into `trace` AND its SoA replay mirror
 * in one pass (count-first: a throwaway functional replay sizes both
 * exactly, so neither ever reallocates). Returns the op count.
 */
uint64_t recordTrace(const core::Workload &workload, int which,
                     TimingTrace &trace, OpBatchStorage &mirror);

uint64_t recordTrace(const core::Workload &workload, int which,
                     const std::function<void(const TimingOp &)> &sink);

/**
 * ProSpeCT taint pre-pass: mark instructions whose source operands are
 * tainted, propagating from loads out of the secret regions through
 * registers and memory, with register declassification at crypto-region
 * exits.
 */
void annotateTaint(TimingTrace &trace, const ir::Program &program,
                   const std::vector<core::SecretRegion> &regions);

/**
 * Bitmap form of the taint pre-pass: one streaming pass over `src`
 * producing 1 bit/op. Bit i equals the `tainted` flag annotateTaint
 * would write on op i (both run the same walker).
 *
 * @param num_ops op count of the stream (sizes the bitmap)
 */
TaintBitmap
computeTaintBitmap(TimingOpSource &src,
                   const std::vector<core::SecretRegion> &regions,
                   size_t num_ops);

/**
 * Re-attach a deserialized timing trace to its program: resolves each
 * op's instruction pointer and crypto flag from its PC. Throws
 * std::invalid_argument when a PC falls outside the program (stale
 * artifact against a changed binary).
 */
void relinkTimingTrace(TimingTrace &trace, const ir::Program &program);

/** Aggregate timing statistics of one run. */
struct CoreStats
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;

    uint64_t branches = 0;
    uint64_t cryptoBranches = 0;
    uint64_t condMispredicts = 0;
    uint64_t indirectMispredicts = 0;
    uint64_t returnMispredicts = 0;
    uint64_t decodeRedirects = 0;
    uint64_t integrityStalls = 0;
    uint64_t resolveStalls = 0; ///< crypto stall-until-resolve events
    uint64_t btuFillStalls = 0;
    uint64_t btuWindowStalls = 0;
    uint64_t btuFlushes = 0;
    /** BTU redirects that disagreed with the sequential target. The
     * Cassandra guarantee is that this is always zero. */
    uint64_t btuMismatches = 0;

    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t stlForwards = 0;
    uint64_t schemeLoadDelays = 0;  ///< SPT/STL delayed loads
    uint64_t prospectBlocks = 0;    ///< tainted ops delayed

    uint64_t icacheMissBubbles = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }
};

/** The out-of-order core. */
class OooCore
{
  public:
    /**
     * @param config full simulation configuration (scheme + core +
     *        BTU geometry); flows into the Btu constructor
     * @param image trace image for Cassandra schemes (may be null for
     *        baseline/SPT/ProSpeCT)
     * @param program the program (crypto ranges, static instructions)
     */
    OooCore(const core::SimConfig &config, const ir::Program &program,
            const core::TraceImage *image = nullptr);

    /** Legacy form: default BTU geometry. */
    OooCore(const CoreParams &params, Scheme scheme,
            const ir::Program &program,
            const core::TraceImage *image = nullptr);

    /**
     * Run the timing model over an op stream. When `taint` is given it
     * supplies the ProSpeCT per-op taint flags (bit i for op i);
     * otherwise each op's own `tainted` flag is used.
     */
    CoreStats run(TimingOpSource &src, const TaintBitmap *taint = nullptr);

    /** Run over a recorded in-memory trace (op-embedded taint flags). */
    CoreStats run(const TimingTrace &trace);

    const btu::Btu *btuUnit() const { return btu_.get(); }
    const TagePredictor &tage() const { return tage_; }
    const Btb &btb() const { return btb_; }
    const MemoryHierarchy &memory() const { return memory_; }
    const CoreParams &params() const { return params_; }
    const btu::BtuParams &btuParams() const { return btuParams_; }
    Scheme scheme() const { return scheme_; }

  private:
    /** Per-cycle usage counters with lazy epoch reset. */
    class UsageRing
    {
      public:
        explicit UsageRing(uint32_t limit) : limit_(limit) {}

        /** True if a slot at this cycle is still free. */
        bool
        free(uint64_t cycle)
        {
            Slot &s = slotFor(cycle);
            return s.count < limit_;
        }

        void
        take(uint64_t cycle)
        {
            Slot &s = slotFor(cycle);
            s.count++;
        }

        /** free() + take() with a single slot probe: claim a slot at
         * this cycle if one is still open. */
        bool
        tryTake(uint64_t cycle)
        {
            Slot &s = slotFor(cycle);
            if (s.count >= limit_)
                return false;
            s.count++;
            return true;
        }

        /** Release a slot claimed at this cycle (pair of tryTake, for
         * all-or-nothing claims across two rings). */
        void
        release(uint64_t cycle)
        {
            slotFor(cycle).count--;
        }

      private:
        struct Slot
        {
            uint64_t cycle = ~0ull;
            uint32_t count = 0;
        };

        Slot &
        slotFor(uint64_t cycle)
        {
            Slot &s = slots_[cycle & (size_ - 1)];
            if (s.cycle != cycle) {
                s.cycle = cycle;
                s.count = 0;
            }
            return s;
        }

        /**
         * Ring span in cycles. Live issue/commit timestamps spread at
         * most a few hundred cycles apart (bounded by the ROB window),
         * so 1K slots can never alias two live cycles; at 16 B/slot
         * the five rings of a run stay cache-resident (~80 KiB total)
         * instead of thrashing a multi-MiB working set.
         */
        static constexpr size_t size_ = 1 << 10;
        std::array<Slot, size_> slots_{};
        uint32_t limit_;
    };

    /** History ring of timestamps (for ROB/LQ/SQ/RF occupancy). */
    class TimeRing
    {
      public:
        explicit TimeRing(size_t depth) : times_(depth, 0) {}

        /** Timestamp pushed `depth` entries ago (0 if not yet full). */
        uint64_t
        oldest() const
        {
            return times_[head_];
        }

        void
        push(uint64_t t)
        {
            times_[head_] = t;
            // Conditional wrap: depth is a runtime value, so a modulo
            // here would be an integer division on every push.
            head_ = head_ + 1 == times_.size() ? 0 : head_ + 1;
        }

      private:
        std::vector<uint64_t> times_;
        size_t head_ = 0;
    };

    /** isCryptoPc(pc) for valid pcs, 0/1 per static instruction; the
     * linear crypto-range scan stays as the fallback for pcs outside
     * the code segment. Built once per core for Cassandra schemes. */
    bool predictedCryptoPc(uint64_t pc) const;

    CoreParams params_;
    btu::BtuParams btuParams_;
    Scheme scheme_;
    const ir::Program &program_;
    const core::TraceImage *image_;
    std::unique_ptr<btu::Btu> btu_;
    TagePredictor tage_;
    Btb btb_;
    Rsb rsb_;
    MemoryHierarchy memory_;
    std::vector<uint8_t> cryptoPcMap_;
};

} // namespace cassandra::uarch

#endif // CASSANDRA_UARCH_PIPELINE_HH
