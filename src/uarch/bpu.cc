#include "uarch/bpu.hh"

namespace cassandra::uarch {

// --- TAGE -----------------------------------------------------------------

TagePredictor::TagePredictor()
{
    bimodal_.assign(1u << bimodalBits, 0);
    for (auto &t : tables_)
        t.assign(1u << tableBits, {});
    loopTable_.assign(128, {});
}

uint64_t
TagePredictor::foldHistory(int bits, int length) const
{
    // Fold `length` newest history bits into a `bits`-wide value.
    uint64_t hist = length >= 64 ? ghr_ : (ghr_ & ((1ull << length) - 1));
    uint64_t folded = 0;
    while (hist) {
        folded ^= hist & ((1ull << bits) - 1);
        hist >>= bits;
    }
    return folded;
}

uint32_t
TagePredictor::tableIndex(int table, uint64_t pc) const
{
    uint64_t h = foldHistory(tableBits, histLen_[table]);
    uint64_t idx = (pc >> 2) ^ (pc >> (tableBits + 2)) ^ h ^
        (static_cast<uint64_t>(table) << 3);
    return static_cast<uint32_t>(idx & ((1u << tableBits) - 1));
}

uint16_t
TagePredictor::tableTag(int table, uint64_t pc) const
{
    uint64_t h = foldHistory(tagBits, histLen_[table]);
    uint64_t tag = (pc >> 2) ^ (h << 1) ^ (pc >> 7);
    return static_cast<uint16_t>(tag & ((1u << tagBits) - 1));
}

TagePredictor::LoopEntry &
TagePredictor::loopEntryFor(uint64_t pc)
{
    // The table size is a power of two (see the constructor): mask,
    // don't divide — this runs twice per conditional branch.
    return loopTable_[(pc >> 2) & (loopTable_.size() - 1)];
}

bool
TagePredictor::predict(uint64_t pc)
{
    stats_.condLookups++;
    last_ = {};
    for (int t = 0; t < numTables; t++) {
        last_.idx[t] = tableIndex(t, pc);
        last_.tag[t] = tableTag(t, pc);
    }

    // TAGE component: longest-history tag hit provides the prediction.
    for (int t = numTables - 1; t >= 0; t--) {
        const TaggedEntry &e = tables_[t][last_.idx[t]];
        if (e.tag == last_.tag[t]) {
            last_.provider = t;
            last_.pred = e.ctr >= 0;
            break;
        }
    }
    if (last_.provider < 0)
        last_.pred = bimodal_[(pc >> 2) & ((1u << bimodalBits) - 1)] >= 0;

    // Loop predictor override: when confident about the trip count of a
    // loop branch, predict taken for tripCount iterations then
    // not-taken (this is what makes LTAGE near-perfect on the fixed
    // loops of crypto code after warm-up).
    LoopEntry &loop = loopEntryFor(pc);
    if (loop.valid && loop.pc == pc && loop.confidence >= 3 &&
        loop.tripCount > 0) {
        last_.loopUsed = true;
        last_.loopPred = loop.currentCount + 1 < loop.tripCount;
        stats_.loopOverrides++;
        return last_.loopPred;
    }
    return last_.pred;
}

void
TagePredictor::update(uint64_t pc, bool taken)
{
    stats_.updates++;
    bool final_pred = last_.loopUsed ? last_.loopPred : last_.pred;
    if (final_pred != taken)
        stats_.condMispredicts++;

    // Loop predictor training: count consecutive taken runs terminated
    // by a not-taken; a stable run length builds confidence.
    LoopEntry &loop = loopEntryFor(pc);
    if (!loop.valid || loop.pc != pc) {
        loop = {};
        loop.valid = true;
        loop.pc = pc;
    }
    if (taken) {
        loop.currentCount++;
        if (loop.tripCount && loop.currentCount > loop.tripCount)
            loop.confidence = 0; // run longer than learned: distrust
    } else {
        uint32_t run = loop.currentCount + 1; // include the exit
        if (run == loop.tripCount) {
            if (loop.confidence < 7)
                loop.confidence++;
        } else {
            loop.tripCount = run;
            loop.confidence = 0;
        }
        loop.currentCount = 0;
    }

    // TAGE training.
    auto bump = [taken](int8_t &ctr, int8_t lo, int8_t hi) {
        if (taken && ctr < hi)
            ctr++;
        if (!taken && ctr > lo)
            ctr--;
    };
    if (last_.provider >= 0) {
        TaggedEntry &e =
            tables_[last_.provider][last_.idx[last_.provider]];
        bool was_correct = (e.ctr >= 0) == taken;
        bump(e.ctr, -4, 3);
        if (was_correct && e.useful < 3)
            e.useful++;
        else if (!was_correct && e.useful > 0)
            e.useful--;
    } else {
        bump(bimodal_[(pc >> 2) & ((1u << bimodalBits) - 1)], -2, 1);
    }

    // Allocate a longer-history entry on a TAGE mispredict.
    if (last_.pred != taken && last_.provider < numTables - 1) {
        rng_ = rng_ * 6364136223846793005ull + 1442695040888963407ull;
        int start = last_.provider + 1 + static_cast<int>(rng_ >> 62) % 2;
        for (int t = start; t < numTables; t++) {
            TaggedEntry &e = tables_[t][last_.idx[t]];
            if (e.useful == 0) {
                e.tag = last_.tag[t];
                e.ctr = taken ? 0 : -1;
                e.useful = 0;
                break;
            }
        }
    }

    ghr_ = (ghr_ << 1) | (taken ? 1 : 0);
}

// --- BTB --------------------------------------------------------------------

Btb::Btb(size_t entries)
{
    entries_.resize(entries);
    if (entries != 0 && (entries & (entries - 1)) == 0)
        mask_ = entries - 1;
}

uint64_t
Btb::predict(uint64_t pc)
{
    lookups++;
    // Branchless hit check: the batch replay path calls this once per
    // predicted-taken branch, and the hit/miss pattern is effectively
    // random — a conditional select beats a mispredicting branch.
    const Entry &e = entries_[mask_ ? (pc >> 2) & mask_
                                    : (pc >> 2) % entries_.size()];
    const bool hit = e.valid & (e.pc == pc);
    misses += hit ? 0 : 1;
    return hit ? e.target : 0;
}

void
Btb::update(uint64_t pc, uint64_t target)
{
    Entry &e = entries_[mask_ ? (pc >> 2) & mask_
                              : (pc >> 2) % entries_.size()];
    e.valid = true;
    e.pc = pc;
    e.target = target;
}

// --- RSB -------------------------------------------------------------------

Rsb::Rsb(size_t depth)
{
    stack_.assign(depth, 0);
}

void
Rsb::push(uint64_t return_pc)
{
    stack_[top_] = return_pc;
    top_ = top_ + 1 == stack_.size() ? 0 : top_ + 1;
    if (count_ < stack_.size())
        count_++;
}

uint64_t
Rsb::pop()
{
    if (count_ == 0)
        return 0;
    top_ = (top_ == 0 ? stack_.size() : top_) - 1;
    count_--;
    return stack_[top_];
}

} // namespace cassandra::uarch
