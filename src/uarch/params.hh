/**
 * @file
 * Core configuration (paper Table 3: a Golden-Cove-like OoO core).
 */

#ifndef CASSANDRA_UARCH_PARAMS_HH
#define CASSANDRA_UARCH_PARAMS_HH

#include <cstdint>
#include <cstddef>
#include <string>

namespace cassandra::uarch {

/** Geometry/latency of one cache level. */
struct CacheParams
{
    uint32_t sizeBytes = 0;
    uint32_t lineBytes = 64;
    uint32_t ways = 8;
    uint32_t latency = 5; ///< cycles on hit at this level
};

/** Protection scheme run by the core. */
enum class Scheme
{
    UnsafeBaseline,    ///< speculative BPU everywhere (vulnerable)
    Cassandra,         ///< BTU replay for crypto branches
    CassandraStl,      ///< Cassandra + data-flow (STL) hardening
    CassandraLite,     ///< hints only; multi-target crypto stalls (Q3)
    Spt,               ///< SPT-style: speculative loads delayed
    Prospect,          ///< ProSpeCT-style: tainted ops never speculative
    CassandraProspect, ///< Cassandra + ProSpeCT for non-crypto (Fig. 8)
};

const char *schemeName(Scheme s);

/**
 * Parse a scheme from its display name ("Cassandra+STL") or enum
 * spelling ("CassandraStl"), case-insensitively.
 * @throws std::invalid_argument listing the valid names.
 */
Scheme schemeFromName(const std::string &name);

/** True if the scheme uses the BTU for crypto branches. */
inline bool
schemeUsesBtu(Scheme s)
{
    return s == Scheme::Cassandra || s == Scheme::CassandraStl ||
        s == Scheme::CassandraProspect;
}

/** True if the scheme applies the crypto fetch flow at all. */
inline bool
schemeIsCassandra(Scheme s)
{
    return schemeUsesBtu(s) || s == Scheme::CassandraLite;
}

/** Full core configuration. */
struct CoreParams
{
    // Widths (Table 3: 8 F/D/I/C).
    uint32_t fetchWidth = 8;
    uint32_t commitWidth = 8;
    uint32_t issueWidth = 8;

    // Windows (Table 3).
    uint32_t robSize = 512;
    uint32_t iqSize = 96;
    uint32_t lqSize = 192;
    uint32_t sqSize = 114;
    uint32_t intRegs = 280;

    // Frontend.
    uint32_t frontendDepth = 12;  ///< fetch-to-dispatch latency
    uint32_t decodeRedirect = 4;  ///< bubble for decode-time redirects
    uint32_t redirectPenalty = 12;///< resolve-to-refetch bubble

    // Functional units (per-cycle issue bandwidth per class).
    uint32_t numAlu = 6;
    uint32_t numMul = 2;
    uint32_t numLsu = 3;

    // Latencies.
    uint32_t aluLatency = 1;
    uint32_t mulLatency = 3;
    uint32_t storeLatency = 1;

    // Memory hierarchy (Table 3).
    CacheParams l1i{32 * 1024, 64, 8, 5};
    CacheParams l1d{48 * 1024, 64, 12, 5};
    CacheParams l2{1280 * 1024, 64, 16, 14};
    CacheParams l3{30 * 1024 * 1024, 64, 16, 40};
    uint32_t memLatency = 200;

    /**
     * Interrupt-driven BTU flush period in cycles; 0 disables. Q4 uses
     * 250 Hz at a 3 GHz clock = 12M cycles. (BTU geometry and fill
     * latency live in btu::BtuParams, threaded via core::SimConfig.)
     */
    uint64_t btuFlushPeriod = 0;
};

} // namespace cassandra::uarch

#endif // CASSANDRA_UARCH_PARAMS_HH
